// Partition-tolerance tests (DESIGN.md §13): quorum-fenced death verdicts,
// split-brain root election with partition epochs, dual-primary resolution
// after a heal, degraded minority-side queries, anti-entropy peer skipping,
// and the seeded 5-node asymmetric-split scenario whose recovery logs must
// replay byte-identically.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "fault/plan.hpp"
#include "orb/resilience.hpp"
#include "support/test_components.hpp"

namespace clc::core {
namespace {

using testing::calculator_package;
using testing::counter_package;

CohesionConfig fast_cohesion() {
  CohesionConfig cfg;
  cfg.heartbeat = seconds(1);
  cfg.group_size = 8;  // flat tree: every node is a direct child of the root
  cfg.query_timeout = seconds(3);
  return cfg;
}

FailoverConfig fast_failover() {
  FailoverConfig cfg;
  cfg.checkpoint_interval = seconds(2);
  cfg.replicas = 2;
  return cfg;
}

/// N-node world with converged membership and fast checkpointing.
struct World {
  explicit World(std::size_t n) : net(fast_cohesion(), fast_failover()) {
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(&net.add_node());
    net.settle();
  }
  [[nodiscard]] std::vector<NodeId> ids(std::size_t first,
                                        std::size_t last) const {
    std::vector<NodeId> out;
    for (std::size_t i = first; i <= last; ++i) out.push_back(nodes[i]->id());
    return out;
  }
  /// All recovery logs, concatenated with node prefixes: the determinism
  /// fingerprint the replay tests compare byte for byte.
  [[nodiscard]] std::string fingerprint() const {
    std::ostringstream out;
    for (const Node* n : nodes) {
      for (const auto& line : n->recovery_log())
        out << n->id().to_string() << "|" << line << "\n";
    }
    return out.str();
  }
  [[nodiscard]] std::size_t root_count() const {
    std::size_t roots = 0;
    for (Node* n : nodes) roots += n->cohesion().is_root() ? 1u : 0u;
    return roots;
  }
  LocalNetwork net;
  std::vector<Node*> nodes;
};

// ------------------------------------------------------------ quorum fencing

TEST(Partition, MinorityDefersVerdictsWhileMajorityEvictsWithQuorum) {
  World w(5);
  Node& old_root = *w.nodes[0];
  Node& new_root = *w.nodes[2];
  ASSERT_TRUE(old_root.cohesion().is_root());

  w.net.partition(w.ids(0, 1), w.ids(2, 4));  // {1,2} | {3,4,5}
  w.net.advance(seconds(30));

  // Minority root: peers timed out, but 1 self-vote + 1 confirmation is
  // below the quorum of 3, so the verdict is deferred -- suspected, never
  // tombstoned, and the deferral is counted.
  for (std::size_t i = 2; i <= 4; ++i) {
    const NodeId far = w.nodes[i]->id();
    EXPECT_TRUE(old_root.cohesion().is_suspected(far))
        << far.to_string() << " should be suspected on the minority root";
    EXPECT_FALSE(old_root.cohesion().has_tombstone(far))
        << far.to_string() << " was evicted without quorum";
  }
  EXPECT_GT(old_root.metrics().counter("cohesion.verdicts_deferred").value(),
            0u);
  EXPECT_GT(old_root.metrics().counter("cohesion.suspected").value(), 0u);

  // Majority side: the surviving replica promoted itself (3 of 5 is a
  // majority), evicted the unreachable pair with quorum confirmations, and
  // bumped the partition epoch past the pre-split value.
  EXPECT_TRUE(new_root.cohesion().is_root())
      << "majority-side replica never promoted";
  EXPECT_TRUE(new_root.cohesion().has_tombstone(old_root.id()));
  EXPECT_TRUE(new_root.cohesion().has_tombstone(w.nodes[1]->id()));
  EXPECT_GE(new_root.cohesion().epoch(), 2u);
  // The minority root never saw a quorum, so its epoch never moved.
  EXPECT_EQ(old_root.cohesion().epoch(), 1u);
}

TEST(Partition, AntiEntropySkipsSuspectedPeers) {
  World w(5);
  Node& old_root = *w.nodes[0];
  w.net.partition(w.ids(0, 1), w.ids(2, 4));
  w.net.advance(seconds(25));
  // The minority root rotates anti-entropy over its directory; suspected
  // peers are skipped instead of burning rounds on unreachable partners.
  EXPECT_GT(
      old_root.metrics().counter("registry.antientropy_skipped").value(), 0u)
      << "anti-entropy kept courting suspected peers";
}

// -------------------------------------------------- the 5-node E2E scenario

TEST(Partition, SplitBrainHealsToSingleRootAndNoDualPrimary) {
  World w(5);
  Node& minority_root = *w.nodes[0];   // node 1
  Node& origin = *w.nodes[1];          // node 2: hosts the instance
  Node& holder = *w.nodes[2];          // node 3: lowest majority-side holder
  ASSERT_TRUE(origin.install(counter_package()).ok());
  ASSERT_TRUE(minority_root.install(calculator_package()).ok());
  auto bound = origin.acquire_local("demo.counter", VersionConstraint{});
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  for (int i = 0; i < 7; ++i)
    ASSERT_TRUE(origin.orb().call(bound->primary, "increment").ok());
  w.net.advance(seconds(5));  // checkpoint rounds ship state to the holders
  ASSERT_GE(holder.held_checkpoints().size(), 1u)
      << "majority-side holder never received a checkpoint";

  w.net.partition(w.ids(0, 1), w.ids(2, 4));  // {1,2} | {3,4,5}
  w.net.advance(seconds(35));

  // Majority side: new root, quorum eviction of the minority, and a
  // checkpoint-driven restore of the instance stranded on node 2.
  ASSERT_TRUE(holder.cohesion().is_root());
  EXPECT_EQ(
      holder.metrics().counter("failover.instances_restored").value(), 1u);
  auto restored =
      holder.container().find_active("demo.counter", VersionConstraint{});
  ASSERT_TRUE(restored.ok()) << "majority side never restored the instance";

  // Minority side keeps serving what it can see, tagged as degraded.
  ComponentQuery q;
  q.name_pattern = "demo.*";
  auto partial = origin.query_network_detailed(q);
  ASSERT_TRUE(partial.ok()) << partial.error().to_string();
  EXPECT_TRUE(partial->degraded) << "minority answer not tagged degraded";
  ASSERT_FALSE(partial->hits.empty());
  bool saw_minority_component = false;
  for (const auto& h : partial->hits)
    saw_minority_component |= h.node == minority_root.id();
  EXPECT_TRUE(saw_minority_component);
  EXPECT_GT(origin.metrics().counter("node.degraded_queries").value(), 0u);
  // Checkpoint shipping toward the unreachable holder hit the cut link.
  EXPECT_GT(origin.metrics().counter("orb.partitioned").value(), 0u);

  w.net.heal_partition();
  w.net.advance(seconds(40));

  // One root, everyone joined, one partition epoch.
  EXPECT_EQ(w.root_count(), 1u);
  EXPECT_TRUE(holder.cohesion().is_root())
      << "higher-epoch root lost the reconciliation tie-break";
  for (Node* n : w.nodes) {
    EXPECT_TRUE(n->cohesion().joined())
        << n->id().to_string() << " never rejoined after the heal";
    EXPECT_EQ(n->cohesion().epoch(), holder.cohesion().epoch())
        << n->id().to_string() << " disagrees on the partition epoch";
  }

  // Dual-primary resolution: the restore verdict carries a higher epoch
  // than node 2's original instance, so the original yields. Exactly one
  // copy survives, on the majority side, with the checkpointed state.
  EXPECT_GE(
      origin.metrics().counter("failover.dual_primary_resolved").value(), 1u)
      << "original primary never yielded";
  EXPECT_FALSE(
      origin.container().find_active("demo.counter", VersionConstraint{}).ok())
      << "both primaries survived the heal";
  auto survivor =
      holder.container().find_active("demo.counter", VersionConstraint{});
  ASSERT_TRUE(survivor.ok()) << "surviving copy was killed too";
  auto port = holder.container().provided_port(*survivor, "counter");
  ASSERT_TRUE(port.ok());
  auto value = holder.orb().call(*port, "value");
  ASSERT_TRUE(value.ok()) << value.error().to_string();
  // No committed majority-side state lost: every pre-split increment that
  // reached a checkpoint is in the survivor.
  EXPECT_EQ(*value, orb::Value(std::int64_t{7}));

  // Stale references to the retired copy fail *retryably*, so policy-driven
  // clients re-resolve to the survivor. (Called through the origin's own
  // ORB: it still knows the interface, but the key is retired.)
  auto stale = origin.orb().call(bound->primary, "value");
  ASSERT_FALSE(stale.ok()) << "retired instance still answers";
  EXPECT_TRUE(orb::errc_is_retryable(stale.error().code))
      << stale.error().to_string();

  // And a fresh query regains full coverage: no degraded tag, and the
  // survivor's host is advertised. (Node 2 may still appear -- the *package*
  // stays installed there; only its live primary was retired.)
  ComponentQuery after;
  after.name_pattern = "demo.counter";
  auto healed = minority_root.query_network_detailed(after);
  ASSERT_TRUE(healed.ok()) << healed.error().to_string();
  EXPECT_FALSE(healed->degraded);
  bool saw_survivor = false;
  for (const auto& h : healed->hits) saw_survivor |= h.node == holder.id();
  EXPECT_TRUE(saw_survivor) << "survivor's host missing from healed query";
}

// ------------------------------------------------------------- determinism

/// The acceptance scenario: 3/2 asymmetric-leaning split during active
/// checkpointing, heal, reconciliation. Returns the concatenated recovery
/// logs -- the byte-exact determinism fingerprint.
std::string run_split_scenario() {
  World w(5);
  Node& origin = *w.nodes[1];
  EXPECT_TRUE(origin.install(counter_package()).ok());
  auto bound = origin.acquire_local("demo.counter", VersionConstraint{});
  EXPECT_TRUE(bound.ok());
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(origin.orb().call(bound->primary, "increment").ok());
  w.net.advance(seconds(5));
  w.net.partition(w.ids(0, 1), w.ids(2, 4));
  // Asymmetric wrinkle on top of the split: the minority root also loses
  // its *outbound* half-link toward node 2 for a while.
  w.net.cut_link(w.nodes[0]->id(), w.nodes[1]->id());
  w.net.advance(seconds(20));
  w.net.restore_link(w.nodes[0]->id(), w.nodes[1]->id());
  w.net.advance(seconds(15));
  w.net.heal_partition();
  w.net.advance(seconds(40));
  EXPECT_EQ(w.root_count(), 1u);
  return w.fingerprint();
}

TEST(Partition, SplitScenarioRecoveryLogsReplayIdentical) {
  const std::string first = run_split_scenario();
  const std::string second = run_split_scenario();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same scenario, different recovery history";
}

TEST(Partition, SeededRandomSchedulesConvergeAndReplay) {
  auto run = [](std::uint64_t seed) {
    World w(5);
    Node& origin = *w.nodes[1];
    EXPECT_TRUE(origin.install(counter_package()).ok());
    EXPECT_TRUE(
        origin.acquire_local("demo.counter", VersionConstraint{}).ok());
    const auto schedule = fault::PartitionSchedule::random(
        seed, w.ids(0, 4), 3, w.net.now() + seconds(40), seconds(6),
        seconds(12), /*asymmetric_probability=*/0.5);
    w.net.set_partition_schedule(schedule);
    w.net.advance(seconds(60));  // past the horizon + longest episode
    w.net.heal_partition();      // safety net for unhealed directions
    w.net.advance(seconds(40));
    EXPECT_EQ(w.root_count(), 1u) << "seed " << seed << " never converged";
    for (Node* n : w.nodes)
      EXPECT_TRUE(n->cohesion().joined())
          << "seed " << seed << ": " << n->id().to_string() << " stranded";
    return w.fingerprint();
  };
  EXPECT_EQ(run(0xC1C), run(0xC1C)) << "same seed, different chaos run";
}

}  // namespace
}  // namespace clc::core
