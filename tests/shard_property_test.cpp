// Property tests for the consistent-hash shard map (core/shard.hpp).
//
// The zone-sharded registry leans on two quantitative promises:
//  * spread  -- with vnodes=128, no holder owns more than ~2x its ideal
//               share of keys;
//  * stability -- adding or removing one holder of R remaps only the keys
//               adjacent to its ring points (about K/R of K keys), never a
//               wholesale reshuffle.
// These tests pin both with a large synthetic keyspace, plus the agreement
// property every router depends on: two independently built rings with the
// same holder set place every key identically.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/shard.hpp"

using clc::core::ShardMap;
using clc::core::shard_hash;

namespace {

constexpr std::size_t kKeys = 10000;

std::vector<std::string> make_keys() {
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i)
    keys.push_back("component-" + std::to_string(i) + "/impl");
  return keys;
}

std::map<std::string, std::uint32_t> placement(const ShardMap& ring,
                                               const std::vector<std::string>& keys) {
  std::map<std::string, std::uint32_t> out;
  for (const auto& k : keys) out[k] = ring.owner_of(k);
  return out;
}

}  // namespace

TEST(ShardHash, DeterministicAndDispersed) {
  EXPECT_EQ(shard_hash("alpha"), shard_hash("alpha"));
  EXPECT_NE(shard_hash("alpha"), shard_hash("beta"));
  EXPECT_NE(shard_hash(""), shard_hash("a"));
  // Near-identical keys must not collide (FNV-1a avalanche sanity).
  EXPECT_NE(shard_hash("svc1"), shard_hash("svc2"));
}

TEST(ShardMapProperty, SpreadWithinTwiceIdeal) {
  const auto keys = make_keys();
  for (std::size_t holders : {2u, 4u, 8u, 16u, 32u}) {
    ShardMap ring;
    for (std::uint32_t z = 1; z <= holders; ++z) ring.add_holder(z);
    std::map<std::uint32_t, std::size_t> load;
    for (const auto& k : keys) load[ring.owner_of(k)] += 1;
    const double ideal = static_cast<double>(kKeys) / static_cast<double>(holders);
    for (std::uint32_t z = 1; z <= holders; ++z) {
      EXPECT_LT(static_cast<double>(load[z]), 2.0 * ideal)
          << "holder " << z << " of " << holders << " owns " << load[z]
          << " keys (ideal " << ideal << ")";
      EXPECT_GT(load[z], 0u) << "holder " << z << " of " << holders
                             << " owns nothing";
    }
  }
}

TEST(ShardMapProperty, JoinRemapsAtMostItsShare) {
  const auto keys = make_keys();
  for (std::size_t holders : {4u, 8u, 16u}) {
    ShardMap ring;
    for (std::uint32_t z = 1; z <= holders; ++z) ring.add_holder(z);
    const auto before = placement(ring, keys);

    const std::uint32_t joiner = static_cast<std::uint32_t>(holders) + 1;
    ring.add_holder(joiner);
    std::size_t moved = 0;
    for (const auto& k : keys) {
      const std::uint32_t now = ring.owner_of(k);
      if (now != before.at(k)) {
        ++moved;
        // Every remapped key must land on the joiner: keys never shuffle
        // between pre-existing holders.
        EXPECT_EQ(now, joiner) << k;
      }
    }
    // Expectation is K/(R+1); allow slack up to K/R.
    EXPECT_LE(moved, kKeys / holders)
        << "join of holder " << joiner << " moved " << moved << " keys";
    EXPECT_GT(moved, 0u);
  }
}

TEST(ShardMapProperty, CrashRemapsOnlyTheVictimsKeys) {
  const auto keys = make_keys();
  for (std::size_t holders : {4u, 8u, 16u}) {
    ShardMap ring;
    for (std::uint32_t z = 1; z <= holders; ++z) ring.add_holder(z);
    const auto before = placement(ring, keys);

    const std::uint32_t victim = 2;  // any holder; eviction == crash here
    ring.remove_holder(victim);
    for (const auto& k : keys) {
      const std::uint32_t now = ring.owner_of(k);
      if (before.at(k) != victim) {
        // Survivors keep every key they already owned.
        EXPECT_EQ(now, before.at(k)) << k;
      } else {
        EXPECT_NE(now, victim) << k;
      }
    }
  }
}

TEST(ShardMapProperty, RejoinRestoresPlacement) {
  // Crash + rejoin of the same holder is a no-op for the mapping: ring
  // points are a pure function of (holder, vnode index).
  const auto keys = make_keys();
  ShardMap ring;
  for (std::uint32_t z = 1; z <= 8; ++z) ring.add_holder(z);
  const auto before = placement(ring, keys);
  ring.remove_holder(5);
  ring.add_holder(5);
  EXPECT_EQ(placement(ring, keys), before);
}

TEST(ShardMapProperty, IndependentRingsAgree) {
  // Two routers that learned the same holder set in different orders must
  // place every key identically -- owner_of is pure configuration.
  const auto keys = make_keys();
  ShardMap a, b;
  for (std::uint32_t z : {1u, 2u, 3u, 4u, 5u, 6u}) a.add_holder(z);
  for (std::uint32_t z : {6u, 3u, 1u, 5u, 2u, 4u}) b.add_holder(z);
  EXPECT_EQ(placement(a, keys), placement(b, keys));
}

TEST(ShardMap, EmptyAndSingle) {
  ShardMap ring;
  EXPECT_EQ(ring.owner_of("anything"), 0u);
  ring.add_holder(7);
  EXPECT_EQ(ring.owner_of("anything"), 7u);
  EXPECT_EQ(ring.owner_of("other"), 7u);
  ring.remove_holder(7);
  EXPECT_EQ(ring.owner_of("anything"), 0u);
}
