// Property-based tests across module boundaries:
//  - typed-value marshaling: for randomly generated IDL types and random
//    values of those types, marshal/unmarshal is the identity;
//  - cohesion membership: under arbitrary (seeded) churn schedules, the
//    network converges back to a single root whose directory holds exactly
//    the alive nodes, and queries still resolve.
//  - wire robustness: a frame subjected to arbitrary byte flips and
//    truncation either decodes or reports an error -- it never crashes,
//    over-reads, or wedges the server's frame handler.
#include <gtest/gtest.h>

#include <memory>

#include "core/cohesion.hpp"
#include "orb/message.hpp"
#include "orb/orb.hpp"
#include "orb/value.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace clc {
namespace {

// ---------------------------------------------------------------------------
// Random typed values.

class TypeAndValueGen {
 public:
  TypeAndValueGen(idl::InterfaceRepository& repo, Rng& rng)
      : repo_(repo), rng_(rng) {}

  /// Generate a random type (registering any needed struct/enum defs) and a
  /// random value conforming to it.
  std::pair<idl::TypeRef, orb::Value> generate(int depth = 0) {
    const int pick = static_cast<int>(rng_.next_in(0, depth >= 3 ? 9 : 12));
    using idl::TypeKind;
    switch (pick) {
      case 0: return {idl::TypeRef::primitive(TypeKind::tk_boolean),
                      orb::Value(rng_.chance(0.5))};
      case 1: return {idl::TypeRef::primitive(TypeKind::tk_octet),
                      orb::Value(static_cast<std::uint8_t>(rng_.next_u64()))};
      case 2: return {idl::TypeRef::primitive(TypeKind::tk_short),
                      orb::Value(static_cast<std::int16_t>(rng_.next_u64()))};
      case 3: return {idl::TypeRef::primitive(TypeKind::tk_ushort),
                      orb::Value(static_cast<std::uint16_t>(rng_.next_u64()))};
      case 4: return {idl::TypeRef::primitive(TypeKind::tk_long),
                      orb::Value(static_cast<std::int32_t>(rng_.next_u64()))};
      case 5: return {idl::TypeRef::primitive(TypeKind::tk_ulong),
                      orb::Value(static_cast<std::uint32_t>(rng_.next_u64()))};
      case 6: return {idl::TypeRef::primitive(TypeKind::tk_longlong),
                      orb::Value(static_cast<std::int64_t>(rng_.next_u64()))};
      case 7: return {idl::TypeRef::primitive(TypeKind::tk_double),
                      orb::Value(rng_.next_double() * 1e6 - 5e5)};
      case 8: {
        std::string s;
        const auto len = rng_.next_below(24);
        for (std::uint64_t i = 0; i < len; ++i)
          s.push_back(static_cast<char>('a' + rng_.next_below(26)));
        return {idl::TypeRef::primitive(TypeKind::tk_string),
                orb::Value(std::move(s))};
      }
      case 9: {  // octet sequence (Bytes fast path)
        Bytes b(rng_.next_below(40));
        for (auto& x : b) x = static_cast<std::uint8_t>(rng_.next_u64());
        return {idl::TypeRef::sequence(
                    idl::TypeRef::primitive(TypeKind::tk_octet)),
                orb::Value(std::move(b))};
      }
      case 10: {  // sequence of a random element type
        auto [elem_type, proto] = generate(depth + 1);
        // generate_of canonicalizes octet sequences to Bytes, matching the
        // wire representation unmarshal produces.
        return generate_of(idl::TypeRef::sequence(elem_type), depth);
      }
      case 11: {  // struct with random fields
        const std::string name = "fuzz::S" + std::to_string(next_id_++);
        idl::StructDef def;
        def.scoped_name = name;
        orb::StructValue sv;
        sv.type_name = name;
        const auto fields = 1 + rng_.next_below(4);
        for (std::uint64_t i = 0; i < fields; ++i) {
          auto [ft, fv] = generate(depth + 1);
          const std::string fname = "f" + std::to_string(i);
          def.fields.push_back({fname, ft});
          sv.fields.emplace_back(fname, std::move(fv));
        }
        idl::Specification spec;
        spec.structs.push_back(def);
        EXPECT_TRUE(repo_.register_spec(spec).ok());
        return {idl::TypeRef::named(idl::TypeKind::tk_struct, name),
                orb::Value(std::move(sv))};
      }
      default: {  // enum
        const std::string name = "fuzz::E" + std::to_string(next_id_++);
        idl::EnumDef def;
        def.scoped_name = name;
        const auto labels = 1 + rng_.next_below(5);
        for (std::uint64_t i = 0; i < labels; ++i)
          def.enumerators.push_back("l" + std::to_string(i));
        idl::Specification spec;
        spec.enums.push_back(def);
        EXPECT_TRUE(repo_.register_spec(spec).ok());
        return {idl::TypeRef::named(idl::TypeKind::tk_enum, name),
                orb::Value(orb::EnumValue{
                    name, static_cast<std::uint32_t>(rng_.next_below(labels))})};
      }
    }
  }

  /// A fresh random value of an already-generated type.
  std::pair<idl::TypeRef, orb::Value> generate_of(const idl::TypeRef& type,
                                                  int depth) {
    using idl::TypeKind;
    switch (type.kind) {
      case TypeKind::tk_boolean: return {type, orb::Value(rng_.chance(0.5))};
      case TypeKind::tk_octet:
        return {type, orb::Value(static_cast<std::uint8_t>(rng_.next_u64()))};
      case TypeKind::tk_short:
        return {type, orb::Value(static_cast<std::int16_t>(rng_.next_u64()))};
      case TypeKind::tk_ushort:
        return {type, orb::Value(static_cast<std::uint16_t>(rng_.next_u64()))};
      case TypeKind::tk_long:
        return {type, orb::Value(static_cast<std::int32_t>(rng_.next_u64()))};
      case TypeKind::tk_ulong:
        return {type, orb::Value(static_cast<std::uint32_t>(rng_.next_u64()))};
      case TypeKind::tk_longlong:
        return {type, orb::Value(static_cast<std::int64_t>(rng_.next_u64()))};
      case TypeKind::tk_double:
        return {type, orb::Value(rng_.next_double())};
      case TypeKind::tk_string: {
        std::string s;
        const auto len = rng_.next_below(12);
        for (std::uint64_t i = 0; i < len; ++i)
          s.push_back(static_cast<char>('a' + rng_.next_below(26)));
        return {type, orb::Value(std::move(s))};
      }
      case TypeKind::tk_sequence: {
        if (type.element->kind == TypeKind::tk_octet) {
          Bytes b(rng_.next_below(16));
          for (auto& x : b) x = static_cast<std::uint8_t>(rng_.next_u64());
          return {type, orb::Value(std::move(b))};
        }
        orb::Value::Sequence seq;
        const auto len = rng_.next_below(4);
        for (std::uint64_t i = 0; i < len; ++i)
          seq.push_back(generate_of(*type.element, depth + 1).second);
        return {type, orb::Value(std::move(seq))};
      }
      case TypeKind::tk_struct: {
        const idl::StructDef* def = repo_.find_struct(type.name);
        orb::StructValue sv;
        sv.type_name = type.name;
        for (const auto& f : def->fields)
          sv.fields.emplace_back(f.name,
                                 generate_of(f.type, depth + 1).second);
        return {type, orb::Value(std::move(sv))};
      }
      case TypeKind::tk_enum: {
        const idl::EnumDef* def = repo_.find_enum(type.name);
        return {type,
                orb::Value(orb::EnumValue{
                    type.name, static_cast<std::uint32_t>(
                                   rng_.next_below(def->enumerators.size()))})};
      }
      default: return {type, orb::Value(rng_.chance(0.5))};
    }
  }

 private:
  idl::InterfaceRepository& repo_;
  Rng& rng_;
  int next_id_ = 0;
};

class ValueMarshalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValueMarshalProperty, RandomTypedValuesRoundTrip) {
  idl::InterfaceRepository repo;
  Rng rng(GetParam());
  TypeAndValueGen gen(repo, rng);
  for (int trial = 0; trial < 60; ++trial) {
    auto [type, value] = gen.generate();
    orb::CdrWriter w;
    w.begin_encapsulation();
    auto m = marshal_value(value, type, repo, w);
    ASSERT_TRUE(m.ok()) << m.error().to_string() << " for "
                        << type.to_string();
    orb::CdrReader r(w.data());
    ASSERT_TRUE(r.begin_encapsulation().ok());
    auto back = unmarshal_value(type, repo, r);
    ASSERT_TRUE(back.ok()) << back.error().to_string() << " for "
                           << type.to_string();
    EXPECT_TRUE(*back == value)
        << "type " << type.to_string() << ": " << value.to_string() << " -> "
        << back->to_string();
    EXPECT_TRUE(r.exhausted());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueMarshalProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 999u));

class DeepNestingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeepNestingProperty, DeeplyNestedSequencesAndStructsRoundTrip) {
  idl::InterfaceRepository repo;
  Rng rng(GetParam());
  TypeAndValueGen gen(repo, rng);
  for (int trial = 0; trial < 20; ++trial) {
    // A random base type wrapped in several sequence layers pushes nesting
    // well past what the uniform generator reaches on its own.
    auto [base, ignored] = gen.generate(2);
    idl::TypeRef type = base;
    const int layers = 2 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < layers; ++i) type = idl::TypeRef::sequence(type);
    auto [_, value] = gen.generate_of(type, 0);

    orb::CdrWriter w;
    w.begin_encapsulation();
    auto m = marshal_value(value, type, repo, w);
    ASSERT_TRUE(m.ok()) << m.error().to_string();
    orb::CdrReader r(w.data());
    ASSERT_TRUE(r.begin_encapsulation().ok());
    auto back = unmarshal_value(type, repo, r);
    ASSERT_TRUE(back.ok()) << back.error().to_string();
    EXPECT_TRUE(*back == value) << type.to_string();
    EXPECT_TRUE(r.exhausted());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepNestingProperty,
                         ::testing::Values(11u, 57u, 4242u));

// ---------------------------------------------------------------------------
// Wire robustness under corruption.

orb::RequestMessage random_request(Rng& rng) {
  orb::RequestMessage m;
  m.request_id = RequestId{rng.next_u64()};
  m.object_key = Uuid{rng.next_u64(), rng.next_u64()};
  m.interface_name = "t::Iface" + std::to_string(rng.next_below(100));
  m.operation = "op" + std::to_string(rng.next_below(100));
  m.response_expected = rng.chance(0.9);
  m.args.resize(rng.next_below(64));
  for (auto& b : m.args) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto contexts = rng.next_below(3);
  for (std::uint64_t i = 0; i < contexts; ++i) {
    orb::ServiceContext ctx;
    ctx.id = static_cast<std::uint32_t>(rng.next_u64());
    ctx.data.resize(rng.next_below(16));
    for (auto& b : ctx.data) b = static_cast<std::uint8_t>(rng.next_u64());
    m.service_contexts.push_back(std::move(ctx));
  }
  return m;
}

orb::ReplyMessage random_reply(Rng& rng) {
  orb::ReplyMessage m;
  m.request_id = RequestId{rng.next_u64()};
  m.status = static_cast<orb::ReplyStatus>(rng.next_below(4));
  m.exception_id = "t::Err" + std::to_string(rng.next_below(100));
  m.payload.resize(rng.next_below(64));
  for (auto& b : m.payload) b = static_cast<std::uint8_t>(rng.next_u64());
  return m;
}

/// Flip a few bytes and/or truncate; always returns a different buffer.
Bytes mutate_frame(const Bytes& frame, Rng& rng) {
  Bytes out = frame;
  if (!out.empty() && rng.chance(0.3))
    out.resize(rng.next_below(out.size()));  // truncation, possibly to empty
  const auto flips = 1 + rng.next_below(4);
  for (std::uint64_t i = 0; i < flips && !out.empty(); ++i)
    out[rng.next_below(out.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
  return out;
}

class FrameCorruptionProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FrameCorruptionProperty, CorruptFramesErrorOutButNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const Bytes frame = rng.chance(0.5) ? random_request(rng).encode()
                                        : random_reply(rng).encode();
    const Bytes bad = mutate_frame(frame, rng);

    orb::CdrReader r(bad);
    auto type = decode_frame_header(r);
    if (!type.ok()) continue;  // rejected at the header: fine
    if (*type == orb::MessageType::request) {
      // Decoding either succeeds (the flip hit padding or a payload byte)
      // or reports an error; the reader must never touch bytes past the
      // frame (asan-checked in CI).
      (void)orb::RequestMessage::decode(r);
    } else if (*type == orb::MessageType::reply) {
      (void)orb::ReplyMessage::decode(r);
    }
  }
}

TEST_P(FrameCorruptionProperty, ServerFrameHandlerSurvivesArbitraryBytes) {
  auto repo = std::make_shared<idl::InterfaceRepository>();
  orb::Orb orb(NodeId{1}, repo);
  auto servant = std::make_shared<orb::DynamicServant>("t::Sink");
  servant->on("poke", [](orb::ServerRequest&) -> Result<void> { return {}; });
  (void)orb.activate(servant);

  Rng rng(GetParam() * 33 + 1);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes bad;
    if (rng.chance(0.5)) {
      bad = mutate_frame(random_request(rng).encode(), rng);
    } else {
      bad.resize(rng.next_below(80));  // pure noise
      for (auto& b : bad) b = static_cast<std::uint8_t>(rng.next_u64());
    }
    // Must return (an error reply or nothing), never crash or over-read.
    (void)orb.handle_frame(bad);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameCorruptionProperty,
                         ::testing::Values(2u, 23u, 5005u));

// ---------------------------------------------------------------------------
// Cohesion convergence under churn.

class ChurnPeer : public sim::SimHost {
 public:
  ChurnPeer(NodeId id, core::CohesionConfig cfg, sim::SimNetwork& net,
            sim::Simulator& sim)
      : net_(net),
        sim_(sim),
        node_(id, cfg, [this, id](NodeId to, const core::ProtoMessage& m) {
          net_.send(id, to, m.encode());
        }) {}
  void on_message(NodeId from, const Bytes& payload) override {
    (void)from;
    if (!alive) return;
    auto m = core::ProtoMessage::decode(payload);
    if (m.ok()) node_.on_message(*m, sim_.now());
  }
  sim::SimNetwork& net_;
  sim::Simulator& sim_;
  core::CohesionNode node_;
  bool alive = true;
};

class ChurnConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnConvergence, SingleRootAndCompleteDirectoryAfterChurn) {
  sim::Simulator sim;
  sim::SimNetwork net(sim, GetParam());
  net.set_link_model({.base_latency = milliseconds(5),
                      .jitter = milliseconds(2),
                      .bytes_per_second = 0,
                      .drop_probability = 0.02});  // mild loss too
  core::CohesionConfig cfg;
  cfg.heartbeat = seconds(1);
  cfg.group_size = 4;

  constexpr std::size_t kN = 24;
  std::vector<std::unique_ptr<ChurnPeer>> peers;
  std::function<void(ChurnPeer*)> tick = [&](ChurnPeer* p) {
    if (!p->alive) return;
    p->node_.on_tick(sim.now());
    sim.schedule_after(cfg.heartbeat / 2, [&tick, p] { tick(p); });
  };
  for (std::size_t i = 1; i <= kN; ++i) {
    peers.push_back(std::make_unique<ChurnPeer>(NodeId{i}, cfg, net, sim));
    net.attach(NodeId{i}, peers.back().get());
    ChurnPeer* p = peers.back().get();
    if (i == 1) {
      p->node_.start_as_first(sim.now());
    } else {
      sim.schedule_after(milliseconds(20) * static_cast<Duration>(i),
                         [p, &sim] { p->node_.start_joining(NodeId{1}, sim.now()); });
    }
    sim.schedule_after(cfg.heartbeat / 2, [&tick, p] { tick(p); });
  }
  sim.run_until(seconds(20));

  // Churn: random kills (never all roots at once) and re-joins.
  Rng rng(GetParam() * 31 + 7);
  for (int event = 0; event < 10; ++event) {
    const std::size_t victim = 1 + rng.next_below(kN - 1);  // spare node 1
    ChurnPeer* p = peers[victim].get();
    if (p->alive) {
      p->alive = false;
      net.detach(p->node_.id());
    } else {
      // Restart as a fresh process under the same id.
      auto reborn = std::make_unique<ChurnPeer>(p->node_.id(), cfg, net, sim);
      net.attach(reborn->node_.id(), reborn.get());
      ChurnPeer* raw = reborn.get();
      raw->node_.start_joining(NodeId{1}, sim.now());
      sim.schedule_after(cfg.heartbeat / 2, [&tick, raw] { tick(raw); });
      peers[victim] = std::move(reborn);
    }
    sim.run_until(sim.now() + seconds(static_cast<std::int64_t>(
                                 2 + rng.next_below(5))));
  }
  sim.run_until(sim.now() + seconds(40));  // settle

  // Invariants: exactly one root among alive peers; its directory equals
  // the alive set; every alive peer is joined.
  std::vector<const core::CohesionNode*> roots;
  std::set<NodeId> alive;
  for (const auto& p : peers) {
    if (!p->alive) continue;
    alive.insert(p->node_.id());
    if (p->node_.is_root()) roots.push_back(&p->node_);
  }
  ASSERT_EQ(roots.size(), 1u) << "seed " << GetParam();
  const auto dir = roots[0]->directory_nodes();
  const std::set<NodeId> dir_set(dir.begin(), dir.end());
  EXPECT_EQ(dir_set, alive) << "seed " << GetParam();
  for (const auto& p : peers) {
    if (p->alive) {
      EXPECT_TRUE(p->node_.joined())
          << "node " << p->node_.id().value << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnConvergence,
                         ::testing::Values(3u, 14u, 159u, 2653u));

}  // namespace
}  // namespace clc
