// Tests for typed Values, wire messages, the loopback transport and
// end-to-end dynamic invocation through the Orb (local, loopback and TCP).
#include <gtest/gtest.h>

#include <memory>

#include "orb/message.hpp"
#include "orb/orb.hpp"
#include "orb/tcp.hpp"
#include "orb/transport.hpp"
#include "orb/value.hpp"

namespace clc::orb {
namespace {

std::shared_ptr<idl::InterfaceRepository> make_repo(const char* extra = "") {
  auto repo = std::make_shared<idl::InterfaceRepository>();
  if (*extra != '\0') {
    auto r = repo->register_idl(extra);
    EXPECT_TRUE(r.ok()) << r.error().to_string();
  }
  return repo;
}

// ---------------------------------------------------------------- values

const char* kShapesIdl = R"(
module t {
  struct Point { double x; double y; };
  struct Shape { string name; sequence<Point> outline; };
  enum Mode { off, slow, fast };
  typedef sequence<long> Longs;
  exception Overload { string reason; long load; };
  interface Calc {
    long add(in long a, in long b);
    double mean(in Longs values) raises (Overload);
    string concat(in string a, inout string b, out long total);
    oneway void fire(in string event);
    Point centroid(in Shape s);
    any echo(in any v);
    readonly attribute string version;
  };
};
)";

TEST(Values, StructRoundTrip) {
  auto repo = make_repo(kShapesIdl);
  Value v = make_struct(
      "t::Shape",
      {{"name", Value(std::string("tri"))},
       {"outline",
        Value(Value::Sequence{
            make_struct("t::Point", {{"x", 0.0}, {"y", 0.0}}),
            make_struct("t::Point", {{"x", 1.0}, {"y", 2.0}})})}});
  CdrWriter w;
  w.begin_encapsulation();
  ASSERT_TRUE(marshal_value(v, idl::TypeRef::named(idl::TypeKind::tk_struct,
                                                   "t::Shape"),
                            *repo, w)
                  .ok());
  CdrReader r(w.data());
  ASSERT_TRUE(r.begin_encapsulation().ok());
  auto back = unmarshal_value(
      idl::TypeRef::named(idl::TypeKind::tk_struct, "t::Shape"), *repo, r);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(*back, v);
  EXPECT_TRUE(r.exhausted());
}

TEST(Values, EnumRoundTripAndValidation) {
  auto repo = make_repo(kShapesIdl);
  auto v = make_enum("t::Mode", "fast", *repo);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as<EnumValue>().index, 2u);
  EXPECT_FALSE(make_enum("t::Mode", "warp", *repo).ok());
  EXPECT_FALSE(make_enum("t::Missing", "x", *repo).ok());

  const auto type = idl::TypeRef::named(idl::TypeKind::tk_enum, "t::Mode");
  CdrWriter w;
  ASSERT_TRUE(marshal_value(*v, type, *repo, w).ok());
  CdrReader r(w.data());
  auto back = unmarshal_value(type, *repo, r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *v);
}

TEST(Values, EnumOrdinalOutOfRangeRejectedOnWire) {
  auto repo = make_repo(kShapesIdl);
  CdrWriter w;
  w.write_ulong(99);
  CdrReader r(w.data());
  auto back = unmarshal_value(
      idl::TypeRef::named(idl::TypeKind::tk_enum, "t::Mode"), *repo, r);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, Errc::corrupt_data);
}

TEST(Values, TypedefResolvedThroughRepository) {
  auto repo = make_repo(kShapesIdl);
  const auto type = idl::TypeRef::named(idl::TypeKind::tk_alias, "t::Longs");
  Value v = Value::Sequence{Value(std::int32_t{1}), Value(std::int32_t{2})};
  CdrWriter w;
  ASSERT_TRUE(marshal_value(v, type, *repo, w).ok());
  CdrReader r(w.data());
  auto back = unmarshal_value(type, *repo, r);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->is<Value::Sequence>());
  EXPECT_EQ(back->as<Value::Sequence>().size(), 2u);
}

TEST(Values, TypeMismatchRejected) {
  auto repo = make_repo(kShapesIdl);
  CdrWriter w;
  // string value against long type
  auto r1 = marshal_value(Value("oops"),
                          idl::TypeRef::primitive(idl::TypeKind::tk_long),
                          *repo, w);
  EXPECT_FALSE(r1.ok());
  // wrong field name for struct
  auto r2 = marshal_value(
      make_struct("t::Point", {{"x", 1.0}, {"z", 2.0}}),
      idl::TypeRef::named(idl::TypeKind::tk_struct, "t::Point"), *repo, w);
  EXPECT_FALSE(r2.ok());
  // missing field
  auto r3 = marshal_value(
      make_struct("t::Point", {{"x", 1.0}}),
      idl::TypeRef::named(idl::TypeKind::tk_struct, "t::Point"), *repo, w);
  EXPECT_FALSE(r3.ok());
}

TEST(Values, BoundedSequenceEnforced) {
  auto repo = make_repo("typedef sequence<long, 2> Two;");
  const auto type = idl::TypeRef::named(idl::TypeKind::tk_alias, "Two");
  Value ok_value = Value::Sequence{Value(std::int32_t{1}), Value(std::int32_t{2})};
  Value too_long =
      Value::Sequence{Value(std::int32_t{1}), Value(std::int32_t{2}), Value(std::int32_t{3})};
  CdrWriter w;
  EXPECT_TRUE(marshal_value(ok_value, type, *repo, w).ok());
  EXPECT_FALSE(marshal_value(too_long, type, *repo, w).ok());
}

TEST(Values, HostileSequenceLengthRejected) {
  auto repo = make_repo(kShapesIdl);
  CdrWriter w;
  w.write_ulong(0xffffffffu);  // claims 4G elements, no payload
  CdrReader r(w.data());
  auto back = unmarshal_value(
      idl::TypeRef::sequence(idl::TypeRef::primitive(idl::TypeKind::tk_long)),
      *repo, r);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, Errc::corrupt_data);
}

TEST(Values, AnyCarriesTypeAndValue) {
  auto repo = make_repo(kShapesIdl);
  AnyValue any;
  any.type = idl::TypeRef::named(idl::TypeKind::tk_struct, "t::Point");
  any.value = std::make_shared<Value>(
      make_struct("t::Point", {{"x", 4.0}, {"y", 5.0}}));
  const auto type = idl::TypeRef::primitive(idl::TypeKind::tk_any);
  CdrWriter w;
  ASSERT_TRUE(marshal_value(Value(any), type, *repo, w).ok());
  CdrReader r(w.data());
  auto back = unmarshal_value(type, *repo, r);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  const auto& av = back->as<AnyValue>();
  EXPECT_EQ(av.type.name, "t::Point");
  EXPECT_EQ(*av.value->as<StructValue>().field("y"), Value(5.0));
}

TEST(Values, ObjectRefRoundTrip) {
  auto repo = make_repo(kShapesIdl);
  ObjectRef ref;
  ref.node = NodeId{7};
  ref.key = Uuid{123, 456};
  ref.interface_name = "t::Calc";
  ref.endpoint = "loop:1";
  const auto type = idl::TypeRef::named(idl::TypeKind::tk_objref, "t::Calc");
  CdrWriter w;
  ASSERT_TRUE(marshal_value(Value(ref), type, *repo, w).ok());
  CdrReader r(w.data());
  auto back = unmarshal_value(type, *repo, r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->as<ObjectRef>(), ref);
}

TEST(Values, ToStringReadable) {
  Value v = make_struct("P", {{"x", 1.5}, {"s", Value("hi")}});
  EXPECT_EQ(v.to_string(), "P{x=1.5, s=\"hi\"}");
  EXPECT_EQ(Value(Value::Sequence{Value(true), Value(false)}).to_string(),
            "[true, false]");
  EXPECT_EQ(Value().to_string(), "void");
}

TEST(Values, NumericWidening) {
  EXPECT_EQ(*Value(std::int16_t{-3}).to_int(), -3);
  EXPECT_EQ(*Value(std::uint8_t{200}).to_int(), 200);
  EXPECT_EQ(*Value(true).to_int(), 1);
  EXPECT_DOUBLE_EQ(*Value(std::int32_t{4}).to_double(), 4.0);
  EXPECT_DOUBLE_EQ(*Value(2.5f).to_double(), 2.5);
  EXPECT_FALSE(Value("nope").to_int().ok());
}

// ---------------------------------------------------------------- messages

TEST(Messages, RequestRoundTrip) {
  RequestMessage m;
  m.request_id = RequestId{42};
  m.object_key = Uuid{1, 2};
  m.interface_name = "t::Calc";
  m.operation = "add";
  m.response_expected = true;
  m.args = {9, 8, 7};
  const Bytes frame = m.encode();

  CdrReader r(frame);
  auto type = decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MessageType::request);
  auto back = RequestMessage::decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->request_id, m.request_id);
  EXPECT_EQ(back->object_key, m.object_key);
  EXPECT_EQ(back->operation, "add");
  EXPECT_EQ(back->args, m.args);
}

TEST(Messages, ReplyRoundTrip) {
  ReplyMessage m;
  m.request_id = RequestId{43};
  m.status = ReplyStatus::user_exception;
  m.exception_id = "t::Overload";
  m.payload = {1, 2};
  const Bytes frame = m.encode();
  CdrReader r(frame);
  ASSERT_TRUE(decode_frame_header(r).ok());
  auto back = ReplyMessage::decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->status, ReplyStatus::user_exception);
  EXPECT_EQ(back->exception_id, "t::Overload");
}

TEST(Messages, BadMagicRejected) {
  Bytes junk = {'X', 'X', 'X', 'X', 1, 0, 1};
  CdrReader r(junk);
  EXPECT_FALSE(decode_frame_header(r).ok());
}

TEST(Messages, ControlFrames) {
  const Bytes frame = encode_control(MessageType::ping);
  CdrReader r(frame);
  auto type = decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MessageType::ping);
}

// ---------------------------------------------------------------- loopback

TEST(Loopback, RegisterDetachReattach) {
  LoopbackNetwork net;
  auto ep = net.register_endpoint([](BytesView) { return Bytes{1}; });
  auto r = net.roundtrip(ep, Bytes{0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Bytes{1});

  net.detach(ep);
  EXPECT_FALSE(net.roundtrip(ep, Bytes{0}).ok());
  EXPECT_EQ(net.roundtrip(ep, Bytes{0}).error().code, Errc::unreachable);

  ASSERT_TRUE(net.reattach(ep, [](BytesView) { return Bytes{2}; }).ok());
  EXPECT_EQ(*net.roundtrip(ep, Bytes{0}), Bytes{2});
  EXPECT_FALSE(net.reattach(ep, [](BytesView) { return Bytes{}; }).ok());
}

TEST(Loopback, StatsAccumulate) {
  LoopbackNetwork net;
  auto ep = net.register_endpoint([](BytesView) { return Bytes{9, 9}; });
  net.reset_stats();
  ASSERT_TRUE(net.roundtrip(ep, Bytes{1, 2, 3}).ok());
  auto s = net.stats();
  EXPECT_EQ(s.messages, 2u);  // request + reply
  EXPECT_EQ(s.bytes, 5u);
}

TEST(Loopback, DropInjection) {
  LoopbackNetwork net;
  auto ep = net.register_endpoint([](BytesView) { return Bytes{1}; });
  net.set_config({.latency = 0, .bytes_per_second = 0, .drop_probability = 1.0});
  EXPECT_FALSE(net.roundtrip(ep, Bytes{0}).ok());
  EXPECT_GT(net.stats().dropped, 0u);
  // One-way drops are silent.
  EXPECT_TRUE(net.send_oneway(ep, Bytes{0}).ok());
}

// ---------------------------------------------------------------- orb e2e

/// Servant used across the invocation tests.
std::shared_ptr<DynamicServant> make_calc_servant() {
  auto servant = std::make_shared<DynamicServant>("t::Calc");
  servant->on("add", [](ServerRequest& req) -> Result<void> {
    const auto a = req.arg(0).to_int();
    const auto b = req.arg(1).to_int();
    if (!a || !b) return Error{Errc::invalid_argument, "bad args"};
    req.set_result(Value(static_cast<std::int32_t>(*a + *b)));
    return {};
  });
  servant->on("mean", [](ServerRequest& req) -> Result<void> {
    const auto& seq = req.arg(0).as<Value::Sequence>();
    if (seq.size() > 3) {
      req.raise(UserException{
          "t::Overload",
          make_struct("t::Overload",
                      {{"reason", Value("too many")},
                       {"load", Value(static_cast<std::int32_t>(seq.size()))}})});
      return {};
    }
    double sum = 0;
    for (const auto& v : seq) sum += static_cast<double>(*v.to_int());
    req.set_result(Value(seq.empty() ? 0.0 : sum / static_cast<double>(seq.size())));
    return {};
  });
  servant->on("concat", [](ServerRequest& req) -> Result<void> {
    const auto a = req.arg(0).as<std::string>();
    const auto b = req.arg(1).as<std::string>();
    req.set_result(Value(a + b));
    req.args()[1] = Value(b + "'");                               // inout
    req.args()[2] = Value(static_cast<std::int32_t>(a.size() + b.size()));  // out
    return {};
  });
  servant->on("fire", [](ServerRequest&) -> Result<void> { return {}; });
  servant->on("_get_version", [](ServerRequest& req) -> Result<void> {
    req.set_result(Value("1.2.3"));
    return {};
  });
  servant->on("echo", [](ServerRequest& req) -> Result<void> {
    req.set_result(req.arg(0));
    return {};
  });
  return servant;
}

struct OrbPair {
  std::shared_ptr<idl::InterfaceRepository> repo;
  std::shared_ptr<LoopbackNetwork> net;
  std::unique_ptr<Orb> server;
  std::unique_ptr<Orb> client;
  ObjectRef calc;
};

OrbPair make_orb_pair() {
  OrbPair p;
  p.repo = make_repo(kShapesIdl);
  p.net = std::make_shared<LoopbackNetwork>();
  p.server = std::make_unique<Orb>(NodeId{1}, p.repo);
  p.client = std::make_unique<Orb>(NodeId{2}, p.repo);
  auto* server = p.server.get();
  p.server->set_endpoint(p.net->register_endpoint(
      [server](BytesView frame) { return server->handle_frame(frame); }));
  auto* client = p.client.get();
  p.client->set_endpoint(p.net->register_endpoint(
      [client](BytesView frame) { return client->handle_frame(frame); }));
  p.server->add_transport("loop", p.net);
  p.client->add_transport("loop", p.net);
  p.calc = p.server->activate(make_calc_servant());
  return p;
}

TEST(OrbInvoke, RemoteCallReturnsResult) {
  auto p = make_orb_pair();
  auto r = p.client->call(p.calc, "add",
                          {Value(std::int32_t{20}), Value(std::int32_t{22})});
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(*r, Value(std::int32_t{42}));
}

TEST(OrbInvoke, LocalCallFastPath) {
  auto p = make_orb_pair();
  auto r = p.server->call(p.calc, "add",
                          {Value(std::int32_t{1}), Value(std::int32_t{2})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value(std::int32_t{3}));
  EXPECT_EQ(p.server->stats().local_dispatches, 1u);
}

TEST(OrbInvoke, OutAndInoutParams) {
  auto p = make_orb_pair();
  std::vector<Value> args = {Value("foo"), Value("bar"), Value()};
  auto out = p.client->invoke(p.calc, "concat", args);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_FALSE(out->exception.has_value());
  EXPECT_EQ(out->result, Value("foobar"));
  EXPECT_EQ(args[1], Value("bar'"));
  EXPECT_EQ(args[2], Value(std::int32_t{6}));
}

TEST(OrbInvoke, UserExceptionCarriesPayload) {
  auto p = make_orb_pair();
  std::vector<Value> args = {Value(Value::Sequence{
      Value(std::int32_t{1}), Value(std::int32_t{2}), Value(std::int32_t{3}),
      Value(std::int32_t{4})})};
  auto out = p.client->invoke(p.calc, "mean", args);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  ASSERT_TRUE(out->exception.has_value());
  EXPECT_EQ(out->exception->type_name, "t::Overload");
  EXPECT_EQ(out->exception->field_text("reason"), "too many");
  // call() surfaces it as a remote_exception error.
  auto c = p.client->call(
      p.calc, "mean",
      {Value(Value::Sequence{Value(std::int32_t{1}), Value(std::int32_t{2}),
                             Value(std::int32_t{3}), Value(std::int32_t{4})})});
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.error().code, Errc::remote_exception);
}

TEST(OrbInvoke, NoExceptionPathOfRaisingOp) {
  auto p = make_orb_pair();
  auto r = p.client->call(
      p.calc, "mean",
      {Value(Value::Sequence{Value(std::int32_t{2}), Value(std::int32_t{4})})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value(3.0));
}

TEST(OrbInvoke, AttributeAccessor) {
  auto p = make_orb_pair();
  auto r = p.client->call(p.calc, "_get_version");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value("1.2.3"));
}

TEST(OrbInvoke, OnewayDoesNotWait) {
  auto p = make_orb_pair();
  auto r = p.client->send(p.calc, "fire", {Value("evt")});
  EXPECT_TRUE(r.ok());
}

TEST(OrbInvoke, AnyEchoes) {
  auto p = make_orb_pair();
  AnyValue any;
  any.type = idl::TypeRef::primitive(idl::TypeKind::tk_string);
  any.value = std::make_shared<Value>(Value("inside"));
  auto r = p.client->call(p.calc, "echo", {Value(any)});
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(*r->as<AnyValue>().value, Value("inside"));
}

TEST(OrbInvoke, ErrorsSurfaceAsSystemExceptions) {
  auto p = make_orb_pair();
  // Unknown operation at the IDL level fails client-side.
  auto bad_op = p.client->call(p.calc, "nonexistent");
  EXPECT_FALSE(bad_op.ok());
  // Wrong argument count fails client-side.
  auto bad_argc = p.client->call(p.calc, "add", {Value(std::int32_t{1})});
  EXPECT_FALSE(bad_argc.ok());
  // Stale object key -> object_not_found from the server.
  ObjectRef stale = p.calc;
  stale.key = Uuid{9, 9};
  auto r = p.client->call(stale, "add",
                          {Value(std::int32_t{1}), Value(std::int32_t{2})});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
  // Nil ref rejected.
  EXPECT_FALSE(p.client->call(kNilRef, "add").ok());
}

TEST(OrbInvoke, DeactivateStopsDispatch) {
  auto p = make_orb_pair();
  ASSERT_TRUE(p.server->deactivate(p.calc.key).ok());
  EXPECT_FALSE(p.server->deactivate(p.calc.key).ok());
  auto r = p.client->call(p.calc, "add",
                          {Value(std::int32_t{1}), Value(std::int32_t{2})});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
  EXPECT_EQ(p.server->active_count(), 0u);
}

TEST(OrbInvoke, UndeclaredUserExceptionBecomesSystemException) {
  auto p = make_orb_pair();
  auto rogue = std::make_shared<DynamicServant>("t::Calc");
  rogue->on("add", [](ServerRequest& req) -> Result<void> {
    req.raise(UserException{"t::Overload",
                            make_struct("t::Overload",
                                        {{"reason", Value("rogue")},
                                         {"load", Value(std::int32_t{1})}})});
    return {};
  });
  auto ref = p.server->activate(rogue);
  auto r = p.client->call(ref, "add",
                          {Value(std::int32_t{1}), Value(std::int32_t{2})});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::remote_exception);
}

TEST(OrbInvoke, PingPong) {
  auto p = make_orb_pair();
  EXPECT_TRUE(p.client->ping(p.calc.endpoint).ok());
  p.net->detach(p.calc.endpoint);
  EXPECT_FALSE(p.client->ping(p.calc.endpoint).ok());
}

TEST(OrbInvoke, BaseInterfaceViewDispatchesDerived) {
  auto repo = make_repo(
      "interface Base { long f(); };"
      "interface Impl : Base { long g(); };");
  Orb orb(NodeId{1}, repo);
  auto servant = std::make_shared<DynamicServant>("Impl");
  servant->on("f", [](ServerRequest& req) -> Result<void> {
    req.set_result(Value(std::int32_t{10}));
    return {};
  });
  auto ref = orb.activate(servant);
  // Narrow the reference to the base interface; dispatch must still work.
  ObjectRef base_view = ref;
  base_view.interface_name = "Base";
  auto r = orb.call(base_view, "f");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(*r, Value(std::int32_t{10}));
}

// ---------------------------------------------------------------- tcp

TEST(Tcp, RoundTripOverRealSockets) {
  auto repo = make_repo(kShapesIdl);
  Orb server(NodeId{1}, repo);
  TcpServer listener;
  auto ep = listener.start(
      [&server](BytesView frame) { return server.handle_frame(frame); });
  ASSERT_TRUE(ep.ok()) << ep.error().to_string();
  server.set_endpoint(*ep);
  auto calc = server.activate(make_calc_servant());

  Orb client(NodeId{2}, repo);
  client.set_endpoint("tcp:127.0.0.1:0");  // not serving, just distinct
  client.add_transport("tcp", std::make_shared<TcpTransport>());

  auto r = client.call(calc, "add",
                       {Value(std::int32_t{40}), Value(std::int32_t{2})});
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(*r, Value(std::int32_t{42}));

  // Several sequential calls reuse the pooled connection.
  for (int i = 0; i < 20; ++i) {
    auto rr = client.call(calc, "add",
                          {Value(std::int32_t{i}), Value(std::int32_t{i})});
    ASSERT_TRUE(rr.ok());
    EXPECT_EQ(*rr, Value(std::int32_t{2 * i}));
  }
  // Oneway over TCP.
  EXPECT_TRUE(client.send(calc, "fire", {Value("x")}).ok());
  listener.stop();
  auto after = client.call(calc, "add",
                           {Value(std::int32_t{1}), Value(std::int32_t{1})});
  EXPECT_FALSE(after.ok());
}

TEST(Tcp, ConnectionRefusedReported) {
  TcpTransport t;
  auto r = t.roundtrip("tcp:127.0.0.1:1", Bytes{1});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unreachable);
  EXPECT_FALSE(t.roundtrip("tcp:bad", Bytes{1}).ok());
  EXPECT_FALSE(t.roundtrip("http:x:80", Bytes{1}).ok());
}

}  // namespace
}  // namespace clc::orb
