// Mega-cluster scale tier: 1000-node virtual-time scenarios.
//
// These run the full cohesion + zone-routing stack -- 16 zone trees, a
// roots-of-roots layer, the consistent-hash sharded registry -- under the
// discrete-event simulator. Everything here is `scale`-labelled and excluded
// from the default unit tier (see tests/CMakeLists.txt); CI runs it as its
// own job with a generous timeout.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "sim/megacluster.hpp"

using namespace clc;
using namespace clc::core;
using namespace clc::sim;

namespace {

MegaClusterConfig big_config(std::uint64_t seed = 7) {
  MegaClusterConfig cfg;
  cfg.nodes = 1000;
  cfg.zones = 16;
  cfg.seed = seed;
  return cfg;
}

std::size_t joined_count(MegaCluster& mc) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < mc.size(); ++i)
    if (mc.node(i).alive && mc.node(i).cohesion().joined()) ++n;
  return n;
}

}  // namespace

// The acceptance scenario: bring up 1000 nodes across 16 zones, install
// uniquely named components, resolve them through the sharded registry from
// near and far, kill a zone root (failover is zone-scoped), then split the
// cluster into three zone-aligned partitions and heal it.
TEST(MegaClusterScale, Scenario1000) {
  MegaCluster mc(big_config());
  mc.build();

  // ---- bring-up: everyone joined, every zone has exactly one root.
  EXPECT_EQ(joined_count(mc), mc.size());
  ASSERT_EQ(mc.zone_count(), 16u);
  for (std::uint32_t z = 1; z <= mc.zone_count(); ++z) {
    ASSERT_NE(mc.zone_root_index(z), static_cast<std::size_t>(-1))
        << "zone " << z << " has no root";
  }
  // The roots-of-roots layer agrees on a single super root.
  const auto super = mc.node(0).router()->super_root(mc.sim().now());
  EXPECT_NE(super.second.value, 0u);
  for (std::uint32_t z = 1; z <= mc.zone_count(); ++z) {
    const std::size_t r = mc.zone_root_index(z);
    EXPECT_EQ(mc.node(r).router()->super_root(mc.sim().now()), super);
  }

  // ---- install one uniquely named component on every 10th node and let
  // the digests climb the trees and the publishes reach the shard owners.
  for (std::size_t i = 0; i < mc.size(); i += 10)
    mc.install(i, "svc" + std::to_string(i));
  mc.run_for(seconds(20));

  // In-zone resolve: name hosted in the asker's own zone.
  {
    auto r = mc.resolve(3, "svc0");  // node 0 and node 3 share zone 1
    ASSERT_EQ(r.hits.size(), 1u);
    EXPECT_EQ(r.hits[0].name, "svc0");
    EXPECT_EQ(r.hits[0].zone, 1u);
    EXPECT_FALSE(r.degraded);
  }
  // Cross-zone resolve: node in zone 1 finds a component hosted in the last
  // zone, through at most one ring hop.
  {
    const std::size_t far = (mc.size() / 10 - 1) * 10;  // highest installed
    auto r = mc.resolve(3, "svc" + std::to_string(far));
    ASSERT_EQ(r.hits.size(), 1u);
    EXPECT_EQ(r.hits[0].zone, mc.zone_of_index(far));
    EXPECT_FALSE(r.degraded);
  }
  // Absent name: clean miss, not a timeout.
  {
    auto r = mc.resolve(500, "no-such-component");
    EXPECT_TRUE(r.hits.empty());
    EXPECT_FALSE(r.degraded);
  }

  // ---- zone-scoped crash + failover: kill zone 2's root; a replica
  // promotes inside zone 2 (nobody else's root changes), the new root
  // republishes, and resolves for zone-2 names recover.
  std::vector<std::size_t> roots_before(mc.zone_count() + 1);
  for (std::uint32_t z = 1; z <= mc.zone_count(); ++z)
    roots_before[z] = mc.zone_root_index(z);
  const std::size_t dead_root = roots_before[2];
  mc.crash(dead_root);
  mc.run_for(seconds(45));

  const std::size_t new_root = mc.zone_root_index(2);
  ASSERT_NE(new_root, static_cast<std::size_t>(-1)) << "zone 2 never re-rooted";
  EXPECT_NE(new_root, dead_root);
  for (std::uint32_t z = 1; z <= mc.zone_count(); ++z) {
    if (z == 2) continue;
    EXPECT_EQ(mc.zone_root_index(z), roots_before[z])
        << "failover leaked outside zone 2";
  }
  {
    // A zone-2 name, asked from another zone: the shard path must have been
    // rebuilt around the new zone-2 root.
    std::size_t in_zone2 = 0;
    for (std::size_t i = 0; i < mc.size(); i += 10)
      if (mc.zone_of_index(i) == 2 && i != dead_root) { in_zone2 = i; break; }
    auto r = mc.resolve(900, "svc" + std::to_string(in_zone2));
    ASSERT_EQ(r.hits.size(), 1u);
    EXPECT_EQ(r.hits[0].zone, 2u);
  }

  // ---- 3-way zone-aligned partition: {1..5} | {6..10} | {11..16}.
  // Pick an installed name that is neither hosted in zone 1 nor shard-owned
  // by zones 1..5, so resolving it from zone 1 *must* ring-hop across the
  // split.
  const std::size_t z1_root = mc.zone_root_index(1);
  std::string far_owned;
  for (std::size_t i = 0; i < mc.size(); i += 10) {
    const std::string name = "svc" + std::to_string(i);
    if (mc.zone_of_index(i) != 1 &&
        mc.node(z1_root).router()->owner_zone(name, mc.sim().now()) >= 6) {
      far_owned = name;
      break;
    }
  }
  ASSERT_FALSE(far_owned.empty());
  mc.partition_zones({{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10},
                      {11, 12, 13, 14, 15, 16}});
  // Immediately after the split the ring hop crosses the partition and
  // times out: partial coverage, reported as degraded.
  {
    auto r = mc.resolve(3, far_owned);
    EXPECT_TRUE(r.hits.empty());
    EXPECT_TRUE(r.degraded);
  }
  mc.run_for(seconds(30));
  // Once the remote zones are suspect the ring shrinks to the local group:
  // in-group resolves are clean again, cross-group names simply don't exist
  // on this side of the split.
  {
    auto r = mc.resolve(3, "svc100");  // zone 2: same group as the asker
    ASSERT_EQ(r.hits.size(), 1u);
    EXPECT_EQ(r.hits[0].zone, 2u);
  }
  {
    auto r = mc.resolve(3, "svc990");
    EXPECT_TRUE(r.hits.empty());
  }

  // ---- heal: the zone table re-converges, publishes repopulate the full
  // ring, cross-group resolves work again.
  mc.heal();
  mc.run_for(seconds(40));
  {
    auto r = mc.resolve(3, "svc990");
    ASSERT_EQ(r.hits.size(), 1u);
    EXPECT_EQ(r.hits[0].zone, mc.zone_of_index(990));
    EXPECT_FALSE(r.degraded);
  }
  EXPECT_EQ(joined_count(mc), mc.size() - 1);  // only the crashed root is down
}

namespace {

// One full 1000-node life: bring-up, seeded churn, a 3-way zone partition
// and its heal. Returns the cluster's event log digest.
std::string chaotic_run(std::uint64_t seed) {
  MegaCluster mc(big_config(seed));
  mc.build();

  std::vector<NodeId> victims;
  for (std::size_t i = 0; i < mc.size(); i += 7)
    victims.push_back(mc.node(i).id());
  const auto churn = fault::CrashSchedule::random(
      seed, victims, /*count=*/40, /*horizon=*/seconds(60),
      /*min_downtime=*/seconds(5), /*max_downtime=*/seconds(25));
  mc.apply_churn(churn);

  mc.run_for(seconds(20));
  mc.partition_zones({{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10},
                      {11, 12, 13, 14, 15, 16}});
  mc.run_for(seconds(25));
  mc.heal();
  mc.run_for(seconds(40));
  return mc.log_digest();
}

}  // namespace

// Determinism: the same seed replays the same 1000-node life byte for byte
// -- every promotion, demotion, death verdict, crash and restart at the
// same virtual microsecond. This is what makes scale failures debuggable.
TEST(MegaClusterReplay, IdenticalEventLogSameSeed) {
  const std::string first = chaotic_run(11);
  const std::string second = chaotic_run(11);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}
