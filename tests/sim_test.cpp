// Tests for the discrete-event simulator and the simulated network:
// deterministic ordering, virtual time, latency/drop/partition modelling.
#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace clc::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule_at(5, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ActionsMayScheduleMore) {
  Simulator sim;
  int fired = 0;
  std::function<void()> recur = [&]() {
    ++fired;
    if (fired < 5) sim.schedule_after(10, recur);
  };
  sim.schedule_after(0, recur);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100);  // clock advances even with nothing to do
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule_at(50, [] {});
  sim.run();
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });  // in the past
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, RunawayGuardThrows) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule_after(1, forever); };
  sim.schedule_after(0, forever);
  EXPECT_THROW(sim.run(1000), std::runtime_error);
}

// ---------------------------------------------------------------- network

class Recorder : public SimHost {
 public:
  void on_message(NodeId from, const Bytes& payload) override {
    messages.emplace_back(from, payload);
  }
  std::vector<std::pair<NodeId, Bytes>> messages;
};

TEST(SimNetwork, DeliversWithLatency) {
  Simulator sim;
  SimNetwork net(sim);
  net.set_link_model({.base_latency = 500, .jitter = 0,
                      .bytes_per_second = 0, .drop_probability = 0});
  Recorder a, b;
  net.attach(NodeId{1}, &a);
  net.attach(NodeId{2}, &b);
  net.send(NodeId{1}, NodeId{2}, Bytes{42});
  EXPECT_TRUE(b.messages.empty());
  sim.run();
  EXPECT_EQ(sim.now(), 500);
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].first, NodeId{1});
  EXPECT_EQ(b.messages[0].second, Bytes{42});
}

TEST(SimNetwork, BandwidthAddsPerByteDelay) {
  Simulator sim;
  SimNetwork net(sim);
  net.set_link_model({.base_latency = 0, .jitter = 0,
                      .bytes_per_second = 1000.0, .drop_probability = 0});
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);
  net.send(NodeId{1}, NodeId{2}, Bytes(500, 0));  // 0.5 s at 1 kB/s
  sim.run();
  EXPECT_EQ(sim.now(), 500000);
}

TEST(SimNetwork, TopologyLatencyFunction) {
  Simulator sim;
  SimNetwork net(sim);
  net.set_latency_fn([](NodeId a, NodeId b) {
    return a.value / 100 == b.value / 100 ? milliseconds(1) : milliseconds(50);
  });
  Recorder near, far;
  net.attach(NodeId{101}, nullptr);
  net.attach(NodeId{102}, &near);
  net.attach(NodeId{205}, &far);
  net.send(NodeId{101}, NodeId{102}, Bytes{1});
  net.send(NodeId{101}, NodeId{205}, Bytes{1});
  sim.run_until(milliseconds(2));
  EXPECT_EQ(near.messages.size(), 1u);
  EXPECT_TRUE(far.messages.empty());
  sim.run_until(milliseconds(60));
  EXPECT_EQ(far.messages.size(), 1u);
}

TEST(SimNetwork, DeliveryCallbackFiresAtVirtualDeliveryTime) {
  Simulator sim;
  SimNetwork net(sim);
  net.set_link_model({.base_latency = 500, .jitter = 0,
                      .bytes_per_second = 0, .drop_probability = 0});
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);
  int delivered = 0;
  Duration fired_at = -1;
  net.send(NodeId{1}, NodeId{2}, Bytes{7}, [&](bool ok) {
    delivered += ok;
    fired_at = sim.now();
  });
  EXPECT_EQ(delivered, 0);  // nothing before the latency elapses
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(fired_at, 500);
  ASSERT_EQ(b.messages.size(), 1u);
}

TEST(SimNetwork, DeliveryCallbackReportsLosses) {
  Simulator sim;
  SimNetwork net(sim);
  net.set_link_model({.base_latency = 100, .jitter = 0,
                      .bytes_per_second = 0, .drop_probability = 0});
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);

  // Send-time loss (partition): callback fires immediately with false.
  net.partition({NodeId{1}}, {NodeId{2}});
  bool send_time_loss_reported = false;
  net.send(NodeId{1}, NodeId{2}, Bytes{1},
           [&](bool ok) { send_time_loss_reported = !ok; });
  EXPECT_TRUE(send_time_loss_reported);
  net.heal_partition();

  // Delivery-time loss (crash while in flight): callback fires at the
  // delivery instant with false.
  bool in_flight_loss_reported = false;
  net.send(NodeId{1}, NodeId{2}, Bytes{2},
           [&](bool ok) { in_flight_loss_reported = !ok; });
  net.detach(NodeId{2});
  sim.run();
  EXPECT_TRUE(in_flight_loss_reported);
  EXPECT_TRUE(b.messages.empty());
}

TEST(SimNetwork, PipelinedSendsCompleteInDeliveryOrder) {
  Simulator sim;
  SimNetwork net(sim);
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);
  // Later submission with a shorter modelled latency overtakes an earlier
  // one -- the completion order is delivery order, as on a real link.
  std::vector<int> completion_order;
  net.set_latency_fn([](NodeId, NodeId) { return milliseconds(10); });
  net.send(NodeId{1}, NodeId{2}, Bytes{1},
           [&](bool) { completion_order.push_back(1); });
  net.set_latency_fn([](NodeId, NodeId) { return milliseconds(1); });
  net.send(NodeId{1}, NodeId{2}, Bytes{2},
           [&](bool) { completion_order.push_back(2); });
  sim.run();
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], 2);
  EXPECT_EQ(completion_order[1], 1);
}

TEST(SimNetwork, CrashDropsInFlight) {
  Simulator sim;
  SimNetwork net(sim);
  net.set_link_model({.base_latency = 100, .jitter = 0,
                      .bytes_per_second = 0, .drop_probability = 0});
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);
  net.send(NodeId{1}, NodeId{2}, Bytes{1});
  net.detach(NodeId{2});  // crash before delivery
  sim.run();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_FALSE(net.attached(NodeId{2}));
}

TEST(SimNetwork, RestartDropsFramesAddressedToOldIncarnation) {
  Simulator sim;
  SimNetwork net(sim);
  net.set_link_model({.base_latency = 100, .jitter = 0,
                      .bytes_per_second = 0, .drop_probability = 0});
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);
  net.send(NodeId{1}, NodeId{2}, Bytes{1});
  // The destination restarts while the frame is in flight: the frame was
  // addressed to incarnation 1 and must not reach incarnation 2.
  net.set_incarnation(NodeId{2}, 2);
  sim.run();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_EQ(net.metrics().counter("sim.stale_incarnation_dropped").value(),
            1u);
  // Frames sent after the restart reach the new incarnation normally.
  net.send(NodeId{1}, NodeId{2}, Bytes{2});
  sim.run();
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].second, Bytes{2});
}

TEST(SimNetwork, HealedPartitionCannotResurrectPreRestartTraffic) {
  Simulator sim;
  SimNetwork net(sim);
  net.set_link_model({.base_latency = 50000, .jitter = 0,
                      .bytes_per_second = 0, .drop_probability = 0});
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);
  net.send(NodeId{1}, NodeId{2}, Bytes{7});  // in flight for 50 ms
  net.partition({NodeId{1}}, {NodeId{2}});
  sim.schedule_after(10000, [&net] {
    net.heal_partition();
    net.set_incarnation(NodeId{2}, 2);  // node 2 restarted during the cut
  });
  sim.run();
  // The heal released the pre-partition frame, but it belongs to the old
  // incarnation and is fenced at the transport boundary.
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(net.metrics().counter("sim.stale_incarnation_dropped").value(),
            1u);
}

TEST(SimNetwork, PartitionBlocksAcrossButNotWithin) {
  Simulator sim;
  SimNetwork net(sim);
  Recorder r2, r3;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &r2);
  net.attach(NodeId{3}, &r3);
  net.partition({NodeId{1}, NodeId{2}}, {NodeId{3}});
  net.send(NodeId{1}, NodeId{2}, Bytes{1});  // same side: ok
  net.send(NodeId{1}, NodeId{3}, Bytes{1});  // across: dropped
  sim.run();
  EXPECT_EQ(r2.messages.size(), 1u);
  EXPECT_TRUE(r3.messages.empty());
  net.heal_partition();
  net.send(NodeId{1}, NodeId{3}, Bytes{1});
  sim.run();
  EXPECT_EQ(r3.messages.size(), 1u);
}

TEST(SimNetwork, AsymmetricCutBlocksOneDirectionOnly) {
  Simulator sim;
  SimNetwork net(sim);
  Recorder r1, r2;
  net.attach(NodeId{1}, &r1);
  net.attach(NodeId{2}, &r2);
  net.cut_link(NodeId{1}, NodeId{2});  // 1→2 down, 2→1 still up
  EXPECT_TRUE(net.link_cut(NodeId{1}, NodeId{2}));
  EXPECT_FALSE(net.link_cut(NodeId{2}, NodeId{1}));
  net.send(NodeId{1}, NodeId{2}, Bytes{1});
  net.send(NodeId{2}, NodeId{1}, Bytes{2});
  sim.run();
  EXPECT_TRUE(r2.messages.empty());
  ASSERT_EQ(r1.messages.size(), 1u);
  net.restore_link(NodeId{1}, NodeId{2});
  net.send(NodeId{1}, NodeId{2}, Bytes{3});
  sim.run();
  EXPECT_EQ(r2.messages.size(), 1u);
}

TEST(SimNetwork, InFlightFrameDroppedByCutAppearingBeforeDelivery) {
  // A frame sent over a healthy link but still in flight when the cut
  // lands must be lost: link state applies at *delivery* time.
  Simulator sim;
  SimNetwork net(sim);
  net.set_link_model({.base_latency = 100, .jitter = 0,
                      .bytes_per_second = 0, .drop_probability = 0});
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);
  bool delivered = true;
  net.send(NodeId{1}, NodeId{2}, Bytes{1},
           [&](bool ok) { delivered = ok; });
  sim.schedule_at(50, [&net] { net.cut_link(NodeId{1}, NodeId{2}); });
  sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST(SimNetwork, InFlightFrameSurvivesHealBeforeDelivery) {
  // The converse: a cut that heals while the frame is still in flight does
  // not retroactively kill it -- only the state at the delivery instant
  // counts.
  Simulator sim;
  SimNetwork net(sim);
  net.set_link_model({.base_latency = 100, .jitter = 0,
                      .bytes_per_second = 0, .drop_probability = 0});
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);
  bool delivered = false;
  net.send(NodeId{1}, NodeId{2}, Bytes{9},
           [&](bool ok) { delivered = ok; });
  sim.schedule_at(20, [&net] { net.cut_link(NodeId{1}, NodeId{2}); });
  sim.schedule_at(60, [&net] { net.restore_link(NodeId{1}, NodeId{2}); });
  sim.run();
  EXPECT_TRUE(delivered);
  ASSERT_EQ(b.messages.size(), 1u);
}

TEST(SimNetwork, PartitionScheduleCutsAndHealsAtItsVirtualTimes) {
  Simulator sim;
  SimNetwork net(sim);
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);
  fault::PartitionSchedule schedule;
  schedule.events.push_back(
      fault::PartitionSchedule::split(100, 200, {NodeId{1}}, {NodeId{2}}));
  net.apply_schedule(schedule);
  auto probe = [&](Duration at) {
    sim.schedule_at(at, [&net] { net.send(NodeId{1}, NodeId{2}, Bytes{1}); });
  };
  probe(50);   // before the split: delivered
  probe(150);  // during: dropped
  probe(350);  // after the heal: delivered
  sim.run();
  EXPECT_EQ(b.messages.size(), 2u);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST(SimNetwork, DropProbabilityAndStats) {
  Simulator sim;
  SimNetwork net(sim, 7);
  net.set_link_model({.base_latency = 1, .jitter = 0,
                      .bytes_per_second = 0, .drop_probability = 0.5});
  Recorder b;
  net.attach(NodeId{1}, nullptr);
  net.attach(NodeId{2}, &b);
  for (int i = 0; i < 1000; ++i) net.send(NodeId{1}, NodeId{2}, Bytes{1, 2});
  sim.run();
  const auto& s = net.stats();
  EXPECT_EQ(s.messages_sent, 1000u);
  EXPECT_EQ(s.messages_delivered + s.messages_dropped, 1000u);
  EXPECT_GT(s.messages_dropped, 350u);
  EXPECT_LT(s.messages_dropped, 650u);
  EXPECT_EQ(s.bytes_sent, 2000u);
  EXPECT_EQ(net.bytes_sent_by(NodeId{1}), 2000u);
  EXPECT_EQ(net.bytes_sent_by(NodeId{2}), 0u);
  net.reset_stats();
  EXPECT_EQ(net.stats().messages_sent, 0u);
}

TEST(SimNetwork, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    SimNetwork net(sim, seed);
    net.set_link_model({.base_latency = 10, .jitter = 20,
                        .bytes_per_second = 0, .drop_probability = 0.3});
    Recorder b;
    net.attach(NodeId{1}, nullptr);
    net.attach(NodeId{2}, &b);
    for (int i = 0; i < 200; ++i)
      net.send(NodeId{1}, NodeId{2}, Bytes{static_cast<std::uint8_t>(i)});
    sim.run();
    return std::make_pair(b.messages.size(), sim.now());
  };
  EXPECT_EQ(run_once(9), run_once(9));
  EXPECT_NE(run_once(9), run_once(10));  // different seed, different world
}

}  // namespace
}  // namespace clc::sim
