// Reduced mega-cluster scenario (256 nodes, 8 zones): the same stack as
// tests/scale_test.cpp at a size the sanitizer jobs can afford. tsan runs
// this tier (label `scale_smoke`) instead of the full 1000-node tier.
#include <gtest/gtest.h>

#include <string>

#include "sim/megacluster.hpp"

using namespace clc;
using namespace clc::core;
using namespace clc::sim;

namespace {

MegaClusterConfig smoke_config() {
  MegaClusterConfig cfg;
  cfg.nodes = 256;
  cfg.zones = 8;
  cfg.seed = 5;
  return cfg;
}

}  // namespace

TEST(MegaClusterSmoke, BringUpResolveAndZoneFailover256) {
  MegaCluster mc(smoke_config());
  mc.build();

  ASSERT_EQ(mc.zone_count(), 8u);
  for (std::uint32_t z = 1; z <= mc.zone_count(); ++z)
    ASSERT_NE(mc.zone_root_index(z), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < mc.size(); ++i)
    EXPECT_TRUE(mc.node(i).cohesion().joined()) << "node " << i + 1;

  for (std::size_t i = 0; i < mc.size(); i += 8)
    mc.install(i, "smoke" + std::to_string(i));
  mc.run_for(seconds(20));

  // Cross-zone sharded resolve (node 2 is in zone 1; index 248 in zone 8).
  auto r = mc.resolve(2, "smoke248");
  ASSERT_EQ(r.hits.size(), 1u);
  EXPECT_EQ(r.hits[0].zone, mc.zone_of_index(248));
  EXPECT_FALSE(r.degraded);

  // Zone-scoped failover: crash zone 3's root, a replica promotes, and the
  // sharded path to a zone-3 name is rebuilt.
  const std::size_t old_root = mc.zone_root_index(3);
  mc.crash(old_root);
  mc.run_for(seconds(45));
  const std::size_t new_root = mc.zone_root_index(3);
  ASSERT_NE(new_root, static_cast<std::size_t>(-1));
  EXPECT_NE(new_root, old_root);

  std::size_t hosted = 0;
  for (std::size_t i = 0; i < mc.size(); i += 8)
    if (mc.zone_of_index(i) == 3 && i != old_root) { hosted = i; break; }
  auto r2 = mc.resolve(200, "smoke" + std::to_string(hosted));
  ASSERT_EQ(r2.hits.size(), 1u);
  EXPECT_EQ(r2.hits[0].zone, 3u);
}
