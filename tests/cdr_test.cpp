// Tests for CDR marshaling: alignment, byte orders, bounds checking, and a
// property-based round-trip sweep over randomly generated primitive runs.
#include <gtest/gtest.h>

#include "orb/cdr.hpp"
#include "util/rng.hpp"

namespace clc::orb {
namespace {

TEST(Cdr, PrimitiveRoundTripNativeOrder) {
  CdrWriter w;
  w.begin_encapsulation();
  w.write_octet(0xab);
  w.write_boolean(true);
  w.write_short(-1234);
  w.write_ushort(65000);
  w.write_long(-100000);
  w.write_ulong(4000000000u);
  w.write_longlong(-5000000000LL);
  w.write_ulonglong(18000000000000000000ULL);
  w.write_float(3.25f);
  w.write_double(-2.5e300);
  w.write_string("hello");

  CdrReader r(w.data());
  ASSERT_TRUE(r.begin_encapsulation().ok());
  EXPECT_EQ(*r.read_octet(), 0xab);
  EXPECT_EQ(*r.read_boolean(), true);
  EXPECT_EQ(*r.read_short(), -1234);
  EXPECT_EQ(*r.read_ushort(), 65000);
  EXPECT_EQ(*r.read_long(), -100000);
  EXPECT_EQ(*r.read_ulong(), 4000000000u);
  EXPECT_EQ(*r.read_longlong(), -5000000000LL);
  EXPECT_EQ(*r.read_ulonglong(), 18000000000000000000ULL);
  EXPECT_EQ(*r.read_float(), 3.25f);
  EXPECT_EQ(*r.read_double(), -2.5e300);
  EXPECT_EQ(*r.read_string(), "hello");
  EXPECT_TRUE(r.exhausted());
}

class CdrByteOrder : public ::testing::TestWithParam<ByteOrder> {};

TEST_P(CdrByteOrder, CrossEndianRoundTrip) {
  // Writer uses the parameterized order; the reader discovers it from the
  // encapsulation flag (receiver-makes-right).
  CdrWriter w(GetParam());
  w.begin_encapsulation();
  w.write_long(-42);
  w.write_double(1.5);
  w.write_string("endian");
  w.write_ulonglong(0x0123456789abcdefULL);

  CdrReader r(w.data());
  ASSERT_TRUE(r.begin_encapsulation().ok());
  EXPECT_EQ(r.order(), GetParam());
  EXPECT_EQ(*r.read_long(), -42);
  EXPECT_EQ(*r.read_double(), 1.5);
  EXPECT_EQ(*r.read_string(), "endian");
  EXPECT_EQ(*r.read_ulonglong(), 0x0123456789abcdefULL);
}

INSTANTIATE_TEST_SUITE_P(BothOrders, CdrByteOrder,
                         ::testing::Values(ByteOrder::little_endian,
                                           ByteOrder::big_endian),
                         [](const auto& info) {
                           return info.param == ByteOrder::little_endian
                                      ? "little"
                                      : "big";
                         });

TEST(Cdr, AlignmentMatchesCdrRules) {
  CdrWriter w;                 // no encapsulation: offsets start at 0
  w.write_octet(1);            // offset 0
  w.write_long(2);             // aligns to 4 -> padding at 1..3
  EXPECT_EQ(w.size(), 8u);
  w.write_octet(3);            // offset 8
  w.write_double(4.0);         // aligns to 8 -> padding at 9..15
  EXPECT_EQ(w.size(), 24u);
  w.write_short(5);            // offset 24, already 2-aligned
  EXPECT_EQ(w.size(), 26u);

  CdrReader r(w.data());
  EXPECT_EQ(*r.read_octet(), 1);
  EXPECT_EQ(*r.read_long(), 2);
  EXPECT_EQ(*r.read_octet(), 3);
  EXPECT_EQ(*r.read_double(), 4.0);
  EXPECT_EQ(*r.read_short(), 5);
}

TEST(Cdr, EmptyString) {
  CdrWriter w;
  w.write_string("");
  CdrReader r(w.data());
  EXPECT_EQ(*r.read_string(), "");
}

TEST(Cdr, BytesRoundTrip) {
  CdrWriter w;
  const Bytes payload = {1, 2, 3, 0, 255};
  w.write_bytes(payload);
  w.write_bytes({});
  CdrReader r(w.data());
  EXPECT_EQ(*r.read_bytes(), payload);
  EXPECT_TRUE(r.read_bytes()->empty());
}

TEST(Cdr, TruncationDetected) {
  CdrWriter w;
  w.write_long(7);
  const Bytes& full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    CdrReader r(BytesView(full.data(), cut));
    EXPECT_FALSE(r.read_long().ok()) << "cut=" << cut;
  }
}

TEST(Cdr, TruncatedStringDetected) {
  CdrWriter w;
  w.write_string("truncate me");
  Bytes data = w.data();
  data.resize(data.size() - 3);
  CdrReader r(data);
  auto s = r.read_string();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Errc::corrupt_data);
}

TEST(Cdr, StringMissingNulDetected) {
  CdrWriter w;
  w.write_string("abc");
  Bytes data = w.data();
  data.back() = 'x';  // clobber the NUL
  CdrReader r(data);
  EXPECT_FALSE(r.read_string().ok());
}

TEST(Cdr, BadByteOrderFlagRejected) {
  Bytes data = {7};
  CdrReader r(data);
  EXPECT_FALSE(r.begin_encapsulation().ok());
}

// Property test: a random schedule of typed writes reads back identically,
// under both byte orders and across many seeds.
class CdrFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdrFuzzRoundTrip, RandomScheduleRoundTrips) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 40; ++iteration) {
    const ByteOrder order =
        rng.chance(0.5) ? ByteOrder::little_endian : ByteOrder::big_endian;
    CdrWriter w(order);
    w.begin_encapsulation();
    struct Step {
      int kind;
      std::uint64_t bits;
      std::string text;
    };
    std::vector<Step> steps;
    const int n = static_cast<int>(rng.next_in(1, 30));
    for (int i = 0; i < n; ++i) {
      Step s;
      s.kind = static_cast<int>(rng.next_in(0, 7));
      s.bits = rng.next_u64();
      switch (s.kind) {
        case 0: w.write_octet(static_cast<std::uint8_t>(s.bits)); break;
        case 1: w.write_short(static_cast<std::int16_t>(s.bits)); break;
        case 2: w.write_long(static_cast<std::int32_t>(s.bits)); break;
        case 3: w.write_longlong(static_cast<std::int64_t>(s.bits)); break;
        case 4: {
          float f;
          auto u = static_cast<std::uint32_t>(s.bits >> 9);  // avoid NaN-ish
          std::memcpy(&f, &u, sizeof f);
          w.write_float(f);
          break;
        }
        case 5: {
          const auto len = rng.next_below(32);
          s.text.clear();
          for (std::uint64_t k = 0; k < len; ++k)
            s.text.push_back(static_cast<char>('a' + rng.next_below(26)));
          w.write_string(s.text);
          break;
        }
        case 6: w.write_boolean((s.bits & 1) != 0); break;
        case 7: w.write_double(static_cast<double>(s.bits) * 0.5); break;
      }
      steps.push_back(std::move(s));
    }
    CdrReader r(w.data());
    ASSERT_TRUE(r.begin_encapsulation().ok());
    for (const auto& s : steps) {
      switch (s.kind) {
        case 0:
          EXPECT_EQ(*r.read_octet(), static_cast<std::uint8_t>(s.bits));
          break;
        case 1:
          EXPECT_EQ(*r.read_short(), static_cast<std::int16_t>(s.bits));
          break;
        case 2:
          EXPECT_EQ(*r.read_long(), static_cast<std::int32_t>(s.bits));
          break;
        case 3:
          EXPECT_EQ(*r.read_longlong(), static_cast<std::int64_t>(s.bits));
          break;
        case 4: {
          float f;
          auto u = static_cast<std::uint32_t>(s.bits >> 9);
          std::memcpy(&f, &u, sizeof f);
          EXPECT_EQ(*r.read_float(), f);
          break;
        }
        case 5:
          EXPECT_EQ(*r.read_string(), s.text);
          break;
        case 6:
          EXPECT_EQ(*r.read_boolean(), (s.bits & 1) != 0);
          break;
        case 7:
          EXPECT_EQ(*r.read_double(), static_cast<double>(s.bits) * 0.5);
          break;
      }
    }
    EXPECT_TRUE(r.exhausted());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdrFuzzRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace clc::orb
