// Overload robustness tests (DESIGN.md §16): admission-control shedding
// with priority classes and CoDel, the BUSY wire path (Errc::overloaded,
// retryable but never a breaker failure), credit-window backpressure
// adoption on the client, endpoint backoff memory across calls, the
// session's shed-without-rebind behavior, the closed-loop LoadManager, and
// the 5x-overload chaos scenario where application work sheds while the
// control plane (cohesion heartbeats, failover checkpoints) keeps flowing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/load_manager.hpp"
#include "core/node.hpp"
#include "orb/resilience.hpp"
#include "session/session.hpp"
#include "sim/openloop.hpp"
#include "support/test_components.hpp"

namespace clc::core {
namespace {

using testing::calculator_package;
using testing::counter_package;

CohesionConfig fast_cohesion() {
  CohesionConfig cfg;
  cfg.heartbeat = seconds(1);
  cfg.group_size = 8;
  cfg.query_timeout = seconds(3);
  return cfg;
}

FailoverConfig fast_failover() {
  FailoverConfig cfg;
  cfg.checkpoint_interval = seconds(2);
  cfg.replicas = 2;
  return cfg;
}

struct World {
  explicit World(std::size_t n) : net(fast_cohesion(), fast_failover()) {
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(&net.add_node());
    net.settle();
  }
  LocalNetwork net;
  std::vector<Node*> nodes;
};

AdmissionConfig tight_admission() {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.drain_rate = 1.0;
  cfg.max_queue_delay = milliseconds(100);
  cfg.codel_target = milliseconds(5);
  cfg.codel_interval = milliseconds(100);
  return cfg;
}

// ------------------------------------------------------ admission controller

TEST(Admission, DisabledAdmitsEverythingWithoutModelling) {
  obs::MetricsRegistry metrics;
  AdmissionController ctrl(metrics);  // enabled=false by default
  for (int i = 0; i < 1000; ++i)
    EXPECT_TRUE(ctrl.admit(CallClass::application, 0, seconds(1)).ok());
  EXPECT_EQ(ctrl.admitted_count(), 1000u);
  EXPECT_EQ(ctrl.shed_count(), 0u);
  EXPECT_EQ(ctrl.queue_delay(0), 0) << "disabled controller must not model";
}

TEST(Admission, ShedsApplicationBeyondHardBound) {
  obs::MetricsRegistry metrics;
  AdmissionController ctrl(metrics, tight_admission());
  // Stuff 150ms of work: above the 100ms application bound, below the
  // 200ms control bound (headroom 1.0).
  ASSERT_TRUE(ctrl.admit(CallClass::application, 0, milliseconds(150)).ok());
  EXPECT_EQ(ctrl.queue_delay(0), milliseconds(150));

  auto app = ctrl.admit(CallClass::application, 0);
  ASSERT_FALSE(app.ok());
  EXPECT_EQ(app.error().code, Errc::overloaded);
  EXPECT_TRUE(orb::errc_is_retryable(Errc::overloaded));

  // Control traffic still admits inside its headroom...
  EXPECT_TRUE(ctrl.admit(CallClass::control, 0).ok());
  // ...but is shed once even the control bound is blown.
  ASSERT_TRUE(ctrl.admit(CallClass::control, 0, milliseconds(100)).ok());
  auto control = ctrl.admit(CallClass::control, 0);
  ASSERT_FALSE(control.ok());
  EXPECT_EQ(control.error().code, Errc::overloaded);
  EXPECT_EQ(ctrl.shed_control_count(), 1u);
}

TEST(Admission, BacklogDrainsWithVirtualTime) {
  obs::MetricsRegistry metrics;
  AdmissionController ctrl(metrics, tight_admission());
  ASSERT_TRUE(ctrl.admit(CallClass::application, 0, milliseconds(150)).ok());
  ASSERT_FALSE(ctrl.admit(CallClass::application, 0).ok());
  // 100ms later the model has drained to 50ms: admits again.
  EXPECT_EQ(ctrl.queue_delay(milliseconds(100)), milliseconds(50));
  EXPECT_TRUE(ctrl.admit(CallClass::application, milliseconds(100)).ok());
}

TEST(Admission, CodelShedsSustainedStandingQueueAndRecovers) {
  obs::MetricsRegistry metrics;
  AdmissionConfig cfg = tight_admission();
  AdmissionController ctrl(metrics, cfg);
  // Hold the delay near 20ms (above target, far below the hard bound) by
  // re-filling what drains each millisecond; CoDel must start shedding
  // once the delay has stayed above target for a full interval.
  TimePoint now = 0;
  ASSERT_TRUE(ctrl.admit(CallClass::application, now, milliseconds(20)).ok());
  std::uint64_t shed = 0;
  for (int i = 0; i < 300; ++i) {
    now += milliseconds(1);
    if (!ctrl.admit(CallClass::application, now, milliseconds(1)).ok()) ++shed;
  }
  EXPECT_GT(shed, 0u) << "sustained standing queue never triggered CoDel";
  EXPECT_EQ(ctrl.shed_control_count(), 0u);

  // Once the queue fully drains, CoDel exits dropping mode.
  now += seconds(1);
  EXPECT_EQ(ctrl.queue_delay(now), 0);
  EXPECT_TRUE(ctrl.admit(CallClass::application, now).ok());
}

TEST(Admission, CreditWindowShrinksTowardOneUnderPressure) {
  obs::MetricsRegistry metrics;
  AdmissionController ctrl(metrics, tight_admission());
  EXPECT_EQ(ctrl.credit_window(0), 0u) << "unpressured: no hint at all";

  ASSERT_TRUE(ctrl.admit(CallClass::application, 0, milliseconds(20)).ok());
  const std::uint32_t mid = ctrl.credit_window(0);
  EXPECT_GE(mid, 1u);
  EXPECT_LE(mid, tight_admission().credit_full_window);

  ASSERT_TRUE(ctrl.admit(CallClass::application, 0, milliseconds(90)).ok());
  EXPECT_EQ(ctrl.credit_window(0), 1u) << "at/over the bound: minimum credit";
  EXPECT_TRUE(ctrl.under_pressure(0));
}

TEST(Admission, TightenClampsBetweenFloorAndConfiguredMaximum) {
  obs::MetricsRegistry metrics;
  AdmissionController ctrl(metrics, tight_admission());
  for (int i = 0; i < 50; ++i) ctrl.tighten(0.5);
  EXPECT_EQ(ctrl.max_queue_delay(), tight_admission().min_queue_delay);
  for (int i = 0; i < 50; ++i) ctrl.tighten(2.0);
  EXPECT_EQ(ctrl.max_queue_delay(), tight_admission().max_queue_delay);
}

// ------------------------------------------------- BUSY wire path + breaker

/// Two-node world with a remote calculator binding from nodes[0] to
/// nodes[1], and the server's admission pre-loaded with `backlog` of work.
struct OverloadedPair {
  explicit OverloadedPair(Duration backlog = milliseconds(300)) : w(2) {
    server = w.nodes[1];
    client = w.nodes[0];
    EXPECT_TRUE(server->install(calculator_package()).ok());
    w.net.settle();
    auto b = client->resolve("demo.calculator", VersionConstraint{},
                             Binding::remote);
    EXPECT_TRUE(b.ok()) << b.error().to_string();
    bound = *b;
    server->admission().configure(tight_admission());
    if (backlog > 0)
      EXPECT_TRUE(server->admission()
                      .admit(CallClass::application, w.net.now(), backlog)
                      .ok());
  }
  World w;
  Node* server;
  Node* client;
  BoundComponent bound;
};

TEST(OverloadWire, ShedCallReturnsRetryableOverloadedNotABreakerTrip) {
  OverloadedPair p;
  for (int i = 0; i < 20; ++i) {
    auto out = p.client->orb().call(p.bound.primary, "add",
                                    {orb::Value(std::int32_t{1}),
                                     orb::Value(std::int32_t{2})});
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.error().code, Errc::overloaded);
  }
  // 20 consecutive sheds and the breaker is still closed: shed != dead.
  EXPECT_EQ(p.client->orb().breaker_state(p.bound.primary.endpoint),
            orb::CircuitBreaker::State::closed);
  EXPECT_GE(p.server->orb().metrics().counter("orb.server_shed").value(),
            20u);
  EXPECT_GE(p.server->admission().shed_count(), 20u);
}

TEST(OverloadWire, RetryLandsOnceTheQueueDrains) {
  OverloadedPair p;
  // The node orb's sleep advances the virtual clock, so retry backoff IS
  // drain time: 150ms then 300ms of backoff drains the 300ms backlog.
  orb::InvocationPolicies pol = p.client->orb().invocation_policies();
  pol.retry.max_attempts = 3;
  pol.retry.initial_backoff = milliseconds(150);
  pol.retry.backoff_multiplier = 2.0;
  pol.retry.jitter = 0.0;
  p.client->orb().set_invocation_policies(pol);

  auto out = p.client->orb().call(p.bound.primary, "add",
                                  {orb::Value(std::int32_t{19}),
                                   orb::Value(std::int32_t{23})},
                                  {.idempotent = true});
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(*out, orb::Value(std::int32_t{42}));
}

TEST(OverloadWire, ControlPlaneCallsStillAdmitWhileApplicationSheds) {
  // 150ms backlog: above the 100ms application bound, inside the 200ms
  // control bound (headroom 1.0).
  OverloadedPair p(milliseconds(150));
  auto app = p.client->orb().call(p.bound.primary, "add",
                                  {orb::Value(std::int32_t{1}),
                                   orb::Value(std::int32_t{2})});
  ASSERT_FALSE(app.ok());
  EXPECT_EQ(app.error().code, Errc::overloaded);
  // A clc::* call against the same node admits under the control headroom:
  // the directory lookup is served, not shed.
  auto dir_ref = p.client->directory_ref(p.server->id());
  ASSERT_TRUE(dir_ref.ok());
  auto lookup = p.client->orb().call(*dir_ref, "lookup",
                                     {orb::Value(std::string{"nope"})},
                                     {.idempotent = true});
  EXPECT_NE(lookup.error().code, Errc::overloaded)
      << "control-plane call was shed before application traffic";
  EXPECT_EQ(p.server->admission().shed_control_count(), 0u);
}

// --------------------------------------------------- credit-window adoption

TEST(Backpressure, ClientAdoptsServerCreditHintAndRampsBack) {
  // Moderate pressure (20ms > codel target, < bound): calls still admit
  // and replies carry a shrunken credit window.
  OverloadedPair p(milliseconds(20));
  const std::string& endpoint = p.bound.primary.endpoint;
  EXPECT_EQ(p.client->orb().endpoint_credit_window(endpoint), 0u);

  auto out = p.client->orb().call(p.bound.primary, "add",
                                  {orb::Value(std::int32_t{1}),
                                   orb::Value(std::int32_t{2})});
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  const std::uint32_t window = p.client->orb().endpoint_credit_window(endpoint);
  EXPECT_GE(window, 1u);
  EXPECT_LE(window, tight_admission().credit_full_window);
  EXPECT_GE(p.client->orb().metrics().counter("orb.credit_hints").value(), 1u);

  // Let the queue drain; hint-free successful replies ramp the window
  // additively until the endpoint returns to unlimited (0). Time must
  // keep moving, else the calls themselves re-pressure the server.
  p.w.net.advance(seconds(1));
  std::uint32_t last = window;
  for (int i = 0; i < 300 && last != 0; ++i) {
    p.w.net.clock().advance(milliseconds(1));
    ASSERT_TRUE(p.client->orb()
                    .call(p.bound.primary, "add",
                          {orb::Value(std::int32_t{1}),
                           orb::Value(std::int32_t{2})})
                    .ok());
    last = p.client->orb().endpoint_credit_window(endpoint);
  }
  EXPECT_EQ(last, 0u) << "window never recovered to unlimited";
}

TEST(Backpressure, BusyReplyAlsoCarriesTheCreditHint) {
  OverloadedPair p;  // 300ms backlog: sheds, and pressure implies a hint
  auto out = p.client->orb().call(p.bound.primary, "add",
                                  {orb::Value(std::int32_t{1}),
                                   orb::Value(std::int32_t{2})});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(p.client->orb().endpoint_credit_window(p.bound.primary.endpoint),
            1u)
      << "a shedding server should clamp the client to minimum credit";
}

// ---------------------------------------------------- endpoint backoff memory

TEST(BackoffMemory, FailureStreakSurvivesAcrossCallsAndResetsOnSuccess) {
  OverloadedPair p;  // permanently overloaded while we never advance time
  orb::InvocationPolicies pol = p.client->orb().invocation_policies();
  pol.retry.max_attempts = 2;
  pol.retry.initial_backoff = milliseconds(10);
  pol.retry.backoff_multiplier = 2.0;
  pol.retry.jitter = 0.0;
  p.client->orb().set_invocation_policies(pol);

  std::vector<Duration> sleeps;
  p.client->orb().set_sleep_fn([&](Duration d) { sleeps.push_back(d); });

  const auto call = [&] {
    return p.client->orb().call(p.bound.primary, "add",
                                {orb::Value(std::int32_t{1}),
                                 orb::Value(std::int32_t{2})},
                                {.idempotent = true});
  };
  // Call 1: attempt 1 fails, backs off from the base delay, attempt 2
  // fails -- streak is now 2.
  ASSERT_FALSE(call().ok());
  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_EQ(sleeps[0], milliseconds(10));
  EXPECT_EQ(p.client->orb().endpoint_failure_streak(p.bound.primary.endpoint),
            2);

  // Call 2 against the same endpoint: its FIRST backoff resumes from the
  // remembered streak (position 3 = 40ms), not from the base delay. This
  // is the half-open-probe fix: a failed probe no longer restarts the
  // backoff ladder.
  ASSERT_FALSE(call().ok());
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[1], milliseconds(40));
  EXPECT_EQ(p.client->orb().endpoint_failure_streak(p.bound.primary.endpoint),
            4);

  // Success wipes the streak.
  p.client->orb().set_sleep_fn(
      [&](Duration d) { p.w.net.clock().advance(d); });
  p.w.net.advance(seconds(1));
  ASSERT_TRUE(call().ok());
  EXPECT_EQ(p.client->orb().endpoint_failure_streak(p.bound.primary.endpoint),
            0);
}

// ------------------------------------------------- session shed-aware backoff

TEST(SessionOverload, ShedCallBacksOffWithoutInvalidatingTheBinding) {
  World w(3);
  Node& host = *w.nodes[1];
  Node& client = *w.nodes[2];
  ASSERT_TRUE(host.install(counter_package()).ok());
  ASSERT_TRUE(host.acquire_local("demo.counter", VersionConstraint{}).ok());
  w.net.settle();

  session::SessionConfig cfg;
  for (Node* n : w.nodes) {
    auto ref = client.directory_ref(n->id());
    ASSERT_TRUE(ref.ok());
    cfg.directory.push_back(*ref);
  }
  cfg.rebind_deadline = seconds(5);
  session::Session s(client.orb(), cfg);
  s.set_clock(&w.net.clock());
  s.set_sleep_fn([&w](Duration d) { w.net.advance(d); });
  ASSERT_TRUE(s.call("demo.counter", "increment").ok());
  const auto cached_before = s.cached("demo.counter");
  ASSERT_TRUE(cached_before.ok());
  const std::uint64_t rebinds_before =
      client.orb().metrics().counter("session.rebinds").value();

  // Overload the host; the session's call sheds, backs off (draining the
  // virtual queue underneath), and lands -- all on the SAME cached ref.
  host.admission().configure(tight_admission());
  ASSERT_TRUE(host.admission()
                  .admit(CallClass::application, w.net.now(), milliseconds(300))
                  .ok());
  auto out = s.call("demo.counter", "increment");
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_GE(
      client.orb().metrics().counter("session.backpressure_backoffs").value(),
      1u);
  EXPECT_EQ(client.orb().metrics().counter("session.rebinds").value(),
            rebinds_before)
      << "an overloaded (alive) binding must not be rebound";
  auto cached_after = s.cached("demo.counter");
  ASSERT_TRUE(cached_after.ok()) << "shed call evicted the cached record";
  EXPECT_EQ(cached_after->host, cached_before->host);
}

// ------------------------------------------------------------- load manager

TEST(LoadManagerLoop, ReplicatesOffTheHotNodeAndTightensOnSloBreach) {
  World w(3);
  Node& hot = *w.nodes[0];
  for (Node* n : w.nodes) {
    ASSERT_TRUE(n->install(calculator_package()).ok());
    n->admission().configure(tight_admission());
  }
  ASSERT_TRUE(hot.acquire_local("demo.calculator", VersionConstraint{}).ok());
  w.net.settle();

  LoadManagerConfig cfg;
  cfg.interval = seconds(1);
  cfg.cooldown = seconds(2);
  cfg.replicate_above = milliseconds(10);
  LoadManager lm(w.net, cfg);

  // Keep the hot node's queue pegged near the bound across several rounds.
  for (int round = 0; round < 6; ++round) {
    (void)hot.admission().admit(CallClass::application, w.net.now(),
                                milliseconds(90));
    lm.tick(w.net.now());
    w.net.advance(seconds(1));
  }
  EXPECT_GE(lm.replications(), 1u) << "hot component never replicated";
  EXPECT_GE(lm.tightenings(), 1u) << "SLO breach never tightened admission";
  EXPECT_LT(hot.admission().max_queue_delay(),
            tight_admission().max_queue_delay);

  std::size_t hosting = 0;
  for (Node* n : w.nodes)
    if (!n->container().instance_ids().empty()) ++hosting;
  EXPECT_GE(hosting, 2u);

  // Calm cluster: the bound relaxes back toward the configured maximum.
  for (int round = 0; round < 20; ++round) {
    lm.tick(w.net.now());
    w.net.advance(seconds(1));
  }
  EXPECT_GE(lm.relaxations(), 1u);
  EXPECT_EQ(hot.admission().max_queue_delay(),
            tight_admission().max_queue_delay);
}

// ------------------------------------------------------------- chaos: 5x load

TEST(OverloadChaos, FiveTimesCapacityShedsLoadButNeverCohesionOrCheckpoints) {
  World w(3);
  for (Node* n : w.nodes) {
    ASSERT_TRUE(n->install(calculator_package()).ok());
    ASSERT_TRUE(
        n->acquire_local("demo.calculator", VersionConstraint{}).ok());
    n->admission().configure(tight_admission());
  }
  w.net.settle();

  // Open-loop arrivals at 5x the fleet's aggregate service capacity.
  const double mean_us = 0.9 * 200 + 0.09 * 2000 + 0.01 * 20000;
  sim::OpenLoopConfig wl;
  wl.arrival_rate_hz = 5.0 * 3.0 * 1e6 / mean_us;
  wl.virtual_users = 100000;
  wl.seed = 0xC0DE;
  sim::OpenLoopGenerator gen(wl, w.net.now());

  std::size_t rr = 0;
  std::uint64_t shed = 0, admitted = 0;
  const TimePoint until = w.net.now() + seconds(15);
  while (w.net.now() < until) {
    w.net.advance(milliseconds(100), milliseconds(100));
    for (const sim::Arrival& a : gen.drain_until(w.net.now())) {
      Node* n = w.nodes[rr++ % w.nodes.size()];
      if (n->admission().admit(CallClass::application, a.at, a.cost).ok())
        ++admitted;
      else
        ++shed;
    }
  }

  // Application work was heavily shed...
  EXPECT_GT(shed, admitted) << "5x overload should shed most app calls";
  for (Node* n : w.nodes) {
    // ...but no control-plane message ever was,
    EXPECT_EQ(n->admission().shed_control_count(), 0u)
        << "node " << n->id().to_string() << " shed control traffic";
    // no peer was suspected, let alone declared dead (no false verdicts),
    for (Node* peer : w.nodes) {
      if (peer == n) continue;
      EXPECT_FALSE(n->cohesion().has_tombstone(peer->id()))
          << n->id().to_string() << " falsely declared "
          << peer->id().to_string() << " dead";
      EXPECT_FALSE(n->cohesion().is_suspected(peer->id()))
          << n->id().to_string() << " falsely suspects "
          << peer->id().to_string();
    }
  }
  // ...and failover checkpoints kept replicating under full overload.
  std::size_t holders = 0;
  for (Node* n : w.nodes)
    if (n->held_checkpoints().size() > 0) ++holders;
  EXPECT_GE(holders, 1u) << "checkpoint traffic stalled under overload";
}

}  // namespace
}  // namespace clc::core
