// Chaos layer tests: deterministic fault plans, the FaultyTransport
// decorator, client-side resilience (deadline / retry / circuit breaker)
// and seeded fault schedules driven through whole Node networks, both
// in-process (LocalNetwork) and in the discrete-event simulator.
//
// Everything here is deterministic: fault decisions are pure functions of
// (seed, sequence number), time is a ManualClock, and backoff "sleeps"
// advance virtual time. The replay tests assert exactly that.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "fault/faulty_transport.hpp"
#include "fault/plan.hpp"
#include "orb/orb.hpp"
#include "orb/resilience.hpp"
#include "orb/transport.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/test_components.hpp"
#include "util/clock.hpp"

namespace clc {
namespace {

bool same_decision(const fault::FaultDecision& a,
                   const fault::FaultDecision& b) {
  return a.drop == b.drop && a.duplicate == b.duplicate &&
         a.reset == b.reset && a.delay == b.delay &&
         a.corrupt_offsets == b.corrupt_offsets;
}

// ---------------------------------------------------------------- fault plan

TEST(FaultPlan, DecideIsAPureFunctionOfSeedAndSequence) {
  fault::FaultPlan plan;
  plan.seed = 0xfeed;
  plan.drop_probability = 0.2;
  plan.duplicate_probability = 0.1;
  plan.reset_probability = 0.05;
  plan.corrupt_probability = 0.1;
  plan.delay_probability = 0.2;
  plan.delay_min = milliseconds(1);
  plan.delay_max = milliseconds(5);
  for (std::uint64_t seq = 0; seq < 512; ++seq) {
    EXPECT_TRUE(same_decision(plan.decide(seq, 128), plan.decide(seq, 128)))
        << "seq " << seq;
  }
  // A different seed yields a different schedule.
  fault::FaultPlan other = plan;
  other.seed = 0xbeef;
  int differing = 0;
  for (std::uint64_t seq = 0; seq < 512; ++seq)
    differing += !same_decision(plan.decide(seq, 128), other.decide(seq, 128));
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, DropRateTracksProbability) {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.drop_probability = 0.3;
  int drops = 0;
  constexpr int kN = 10000;
  for (std::uint64_t seq = 0; seq < kN; ++seq)
    drops += plan.decide(seq, 64).drop;
  EXPECT_NEAR(static_cast<double>(drops) / kN, 0.3, 0.03);
}

TEST(FaultPlan, InactiveWhenAllProbabilitiesZero) {
  fault::FaultPlan plan;
  plan.seed = 1;
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(plan.decide(0, 64).any());
  plan.drop_probability = 0.01;
  EXPECT_TRUE(plan.active());
}

TEST(CrashSchedule, SameSeedReplaysTheSameTimetable) {
  std::vector<NodeId> nodes;
  for (std::uint64_t i = 1; i <= 10; ++i) nodes.push_back(NodeId{i});
  const auto a = fault::CrashSchedule::random(99, nodes, 4, seconds(60),
                                              seconds(2), seconds(8));
  const auto b = fault::CrashSchedule::random(99, nodes, 4, seconds(60),
                                              seconds(2), seconds(8));
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.events.size(), 4u);
  std::set<std::uint64_t> victims;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    victims.insert(a.events[i].node.value);
    EXPECT_LT(a.events[i].at, seconds(60));
    EXPECT_GE(a.events[i].restart_after, seconds(2));
    EXPECT_LE(a.events[i].restart_after, seconds(8));
    if (i > 0) EXPECT_GE(a.events[i].at, a.events[i - 1].at);
  }
  EXPECT_EQ(victims.size(), 4u) << "a node is crashed at most once";
  const auto c = fault::CrashSchedule::random(100, nodes, 4, seconds(60),
                                              seconds(2), seconds(8));
  EXPECT_NE(a.events, c.events) << "different seeds should differ";
}

TEST(PartitionSchedule, SameSeedReplaysTheSameTimetable) {
  std::vector<NodeId> nodes;
  for (std::uint64_t i = 1; i <= 8; ++i) nodes.push_back(NodeId{i});
  const auto a = fault::PartitionSchedule::random(
      0x9a27, nodes, 5, seconds(120), seconds(4), seconds(12), 0.5);
  const auto b = fault::PartitionSchedule::random(
      0x9a27, nodes, 5, seconds(120), seconds(4), seconds(12), 0.5);
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.events.size(), 5u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const auto& ev = a.events[i];
    EXPECT_LT(ev.at, seconds(120));
    EXPECT_GE(ev.heal_after, seconds(4));
    EXPECT_LE(ev.heal_after, seconds(12));
    EXPECT_FALSE(ev.cuts.empty());
    // Every cut is between two distinct known nodes, each direction listed
    // at most once.
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (const fault::LinkCut& c : ev.cuts) {
      EXPECT_NE(c.from, c.to);
      EXPECT_TRUE(seen.insert({c.from.value, c.to.value}).second);
    }
    if (i > 0) EXPECT_GE(ev.at, a.events[i - 1].at);
  }
  // Asymmetric probability 0.5 over 5 episodes: with this seed both shapes
  // must occur (a symmetric episode has both directions of each pair, an
  // asymmetric one only minority→majority).
  int asymmetric = 0;
  for (const auto& ev : a.events) {
    bool symmetric = true;
    for (const fault::LinkCut& c : ev.cuts) {
      symmetric = symmetric &&
                  std::find(ev.cuts.begin(), ev.cuts.end(),
                            fault::LinkCut{c.to, c.from}) != ev.cuts.end();
    }
    asymmetric += !symmetric;
  }
  EXPECT_GT(asymmetric, 0);
  EXPECT_LT(asymmetric, 5);
  const auto c = fault::PartitionSchedule::random(
      0x9a28, nodes, 5, seconds(120), seconds(4), seconds(12), 0.5);
  EXPECT_NE(a.events, c.events) << "different seeds should differ";
}

TEST(FaultInjector, IdenticalPlansReplayIdenticalEventLogs) {
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.drop_probability = 0.15;
  plan.duplicate_probability = 0.1;
  plan.reset_probability = 0.05;
  plan.corrupt_probability = 0.2;
  plan.delay_probability = 0.1;
  plan.delay_min = microseconds(100);
  plan.delay_max = milliseconds(2);

  fault::FaultInjector a;
  fault::FaultInjector b;
  a.arm(plan);
  b.arm(plan);
  for (int i = 0; i < 500; ++i) {
    const std::size_t size = 32 + static_cast<std::size_t>(i % 100);
    (void)a.next(size);
    (void)b.next(size);
  }
  EXPECT_EQ(a.sequence(), b.sequence());
  EXPECT_EQ(a.events(), b.events());
  EXPECT_FALSE(a.events().empty());
}

TEST(FaultInjector, ArmRestartsTheScheduleAndDisarmStopsIt) {
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.drop_probability = 1.0;
  fault::FaultInjector inj;
  inj.arm(plan);
  EXPECT_TRUE(inj.active());
  EXPECT_TRUE(inj.next(8).drop);
  const auto first = inj.events();
  inj.arm(plan);  // restart: sequence and log reset
  EXPECT_EQ(inj.sequence(), 0u);
  EXPECT_TRUE(inj.next(8).drop);
  EXPECT_EQ(inj.events(), first);
  inj.disarm();
  EXPECT_FALSE(inj.active());
}

TEST(FaultInjector, CorruptFlipsExactlyTheDecidedBytes) {
  fault::FaultDecision d;
  d.corrupt_offsets = {0, 3};
  Bytes frame = {0x10, 0x20, 0x30, 0x40};
  fault::FaultInjector::corrupt(frame, d);
  EXPECT_EQ(frame, (Bytes{0x10 ^ 0xA5, 0x20, 0x30, 0x40 ^ 0xA5}));
  // Offsets wrap instead of over-running short frames.
  fault::FaultDecision wide;
  wide.corrupt_offsets = {5};
  Bytes tiny = {0xFF, 0x00};
  fault::FaultInjector::corrupt(tiny, wide);
  EXPECT_EQ(tiny, (Bytes{0xFF, 0x00 ^ 0xA5}));
}

// ------------------------------------------------------------ faulty transport

constexpr const char* kCalcIdl = R"(
module f { interface Calc { long add(in long a, in long b);
                            oneway void fire(in string tag); }; };
)";

/// A server/client Orb pair whose client traffic crosses a FaultyTransport,
/// with virtual time (deadlines and backoff advance a ManualClock).
struct FaultyPair {
  std::shared_ptr<idl::InterfaceRepository> repo;
  std::shared_ptr<orb::LoopbackNetwork> net;
  std::shared_ptr<fault::FaultyTransport> faults;
  std::unique_ptr<orb::Orb> server;
  std::unique_ptr<orb::Orb> client;
  ManualClock clock;
  orb::ObjectRef calc;
  int served = 0;
  int fired = 0;
};

std::unique_ptr<FaultyPair> make_faulty_pair() {
  auto p = std::make_unique<FaultyPair>();
  p->repo = std::make_shared<idl::InterfaceRepository>();
  EXPECT_TRUE(p->repo->register_idl(kCalcIdl).ok());
  p->net = std::make_shared<orb::LoopbackNetwork>();
  p->faults = std::make_shared<fault::FaultyTransport>(p->net);
  p->server = std::make_unique<orb::Orb>(NodeId{1}, p->repo);
  p->client = std::make_unique<orb::Orb>(NodeId{2}, p->repo);
  auto* server = p->server.get();
  p->server->set_endpoint(p->net->register_endpoint(
      [server](BytesView frame) { return server->handle_frame(frame); }));
  p->client->add_transport("loop", p->faults);
  FaultyPair* raw = p.get();
  p->client->set_clock(&p->clock);
  p->client->set_sleep_fn([raw](Duration d) { raw->clock.advance(d); });
  p->faults->set_sleep_fn([raw](Duration d) { raw->clock.advance(d); });
  auto servant = std::make_shared<orb::DynamicServant>("f::Calc");
  servant->on("add", [raw](orb::ServerRequest& req) -> Result<void> {
    ++raw->served;
    req.set_result(orb::Value(static_cast<std::int32_t>(
        *req.arg(0).to_int() + *req.arg(1).to_int())));
    return {};
  });
  servant->on("fire", [raw](orb::ServerRequest&) -> Result<void> {
    ++raw->fired;
    return {};
  });
  p->calc = p->server->activate(servant);
  return p;
}

fault::FaultPlan only(double fault::FaultPlan::*knob) {
  fault::FaultPlan plan;
  plan.seed = 1;
  plan.*knob = 1.0;
  return plan;
}

TEST(FaultyTransport, PassThroughWhenDisarmed) {
  auto p = make_faulty_pair();
  auto r = p->client->call(p->calc, "add",
                           {orb::Value(std::int32_t{2}),
                            orb::Value(std::int32_t{3})});
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(*r, orb::Value(std::int32_t{5}));
}

TEST(FaultyTransport, DropSurfacesAsTimeout) {
  auto p = make_faulty_pair();
  p->faults->injector().arm(only(&fault::FaultPlan::drop_probability));
  auto r = p->client->call(p->calc, "add",
                           {orb::Value(std::int32_t{1}),
                            orb::Value(std::int32_t{1})});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::timeout);
  EXPECT_EQ(p->served, 0);
}

TEST(FaultyTransport, ResetSurfacesAsUnreachable) {
  auto p = make_faulty_pair();
  p->faults->injector().arm(only(&fault::FaultPlan::reset_probability));
  auto r = p->client->call(p->calc, "add",
                           {orb::Value(std::int32_t{1}),
                            orb::Value(std::int32_t{1})});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unreachable);
}

TEST(FaultyTransport, DuplicateReplaysTheRequestAgainstTheServer) {
  auto p = make_faulty_pair();
  p->faults->injector().arm(only(&fault::FaultPlan::duplicate_probability));
  auto r = p->client->call(p->calc, "add",
                           {orb::Value(std::int32_t{20}),
                            orb::Value(std::int32_t{22})});
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(*r, orb::Value(std::int32_t{42}));
  EXPECT_EQ(p->served, 2);  // idempotent server absorbed the duplicate
}

TEST(FaultyTransport, CorruptionSurfacesAsErrorsNeverCrashes) {
  auto p = make_faulty_pair();
  fault::FaultPlan plan = only(&fault::FaultPlan::corrupt_probability);
  plan.corrupt_max_bytes = 6;
  p->faults->injector().arm(plan);
  int failures = 0;
  for (int i = 0; i < 32; ++i) {
    auto r = p->client->call(p->calc, "add",
                             {orb::Value(std::int32_t{i}),
                              orb::Value(std::int32_t{i})});
    failures += !r.ok();
  }
  // Every frame had bytes flipped; most invocations must have noticed (a
  // flip can land in alignment padding, so not necessarily all), and none
  // crashed or hung.
  EXPECT_GT(failures, 0);
}

TEST(FaultyTransport, InjectedDelayAdvancesVirtualTimeOnly) {
  auto p = make_faulty_pair();
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.delay_probability = 1.0;
  plan.delay_min = milliseconds(10);
  plan.delay_max = milliseconds(10);
  p->faults->injector().arm(plan);
  const TimePoint before = p->clock.now();
  auto r = p->client->call(p->calc, "add",
                           {orb::Value(std::int32_t{1}),
                            orb::Value(std::int32_t{2})});
  ASSERT_TRUE(r.ok());
  // Request and reply crossings are delayed independently.
  EXPECT_EQ(p->clock.now() - before, milliseconds(20));
}

TEST(FaultyTransport, OnewayDropIsSilentButResetSurfaces) {
  auto p = make_faulty_pair();
  p->faults->injector().arm(only(&fault::FaultPlan::drop_probability));
  auto dropped = p->client->send(p->calc, "fire", {orb::Value("a")});
  EXPECT_TRUE(dropped.ok());  // fire-and-forget: a lost oneway is not an error
  EXPECT_EQ(p->fired, 0);

  p->faults->injector().arm(only(&fault::FaultPlan::reset_probability));
  auto reset = p->client->send(p->calc, "fire", {orb::Value("b")});
  ASSERT_FALSE(reset.ok());
  EXPECT_EQ(reset.error().code, Errc::unreachable);
}

// ----------------------------------------------------------------- resilience

TEST(Resilience, RetryableErrcsAreTransportClassOnly) {
  EXPECT_TRUE(orb::errc_is_retryable(Errc::timeout));
  EXPECT_TRUE(orb::errc_is_retryable(Errc::unreachable));
  EXPECT_TRUE(orb::errc_is_retryable(Errc::io_error));
  EXPECT_TRUE(orb::errc_is_retryable(Errc::corrupt_data));
  EXPECT_FALSE(orb::errc_is_retryable(Errc::not_found));
  EXPECT_FALSE(orb::errc_is_retryable(Errc::invalid_argument));
  EXPECT_FALSE(orb::errc_is_retryable(Errc::remote_exception));
  EXPECT_FALSE(orb::errc_is_retryable(Errc::refused));
}

TEST(Resilience, BackoffGrowsExponentiallyWithBoundedJitter) {
  orb::RetryPolicy policy;
  policy.initial_backoff = milliseconds(2);
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0;
  Rng rng(5);
  EXPECT_EQ(orb::backoff_delay(policy, 1, rng), milliseconds(2));
  EXPECT_EQ(orb::backoff_delay(policy, 2, rng), milliseconds(4));
  EXPECT_EQ(orb::backoff_delay(policy, 3, rng), milliseconds(8));

  policy.jitter = 0.5;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const Duration base = milliseconds(2) << (attempt - 1);
    const Duration d = orb::backoff_delay(policy, attempt, rng);
    EXPECT_GE(d, base / 2) << "attempt " << attempt;
    EXPECT_LE(d, base + base / 2) << "attempt " << attempt;
  }
}

/// Transport test double: fails a scripted number of round-trips (-1 =
/// forever), then passes through to the wrapped transport.
class ScriptedTransport final : public orb::Transport {
 public:
  explicit ScriptedTransport(std::shared_ptr<orb::Transport> inner)
      : inner_(std::move(inner)) {}

  int fail_next = 0;
  Errc failure = Errc::timeout;
  int calls = 0;

  Result<Bytes> roundtrip(const std::string& endpoint,
                          BytesView frame) override {
    ++calls;
    if (fail_next != 0) {
      if (fail_next > 0) --fail_next;
      return Error{failure, "scripted transport failure"};
    }
    return inner_->roundtrip(endpoint, frame);
  }
  Result<void> send_oneway(const std::string& endpoint,
                           BytesView frame) override {
    return inner_->send_oneway(endpoint, frame);
  }

 private:
  std::shared_ptr<orb::Transport> inner_;
};

struct ResilientPair {
  std::unique_ptr<FaultyPair> base;
  std::shared_ptr<ScriptedTransport> scripted;
};

ResilientPair make_resilient_pair(const orb::InvocationPolicies& policies) {
  ResilientPair r;
  r.base = make_faulty_pair();
  r.scripted = std::make_shared<ScriptedTransport>(r.base->net);
  // Replace the faulty decorator with the scripted double for exact control.
  r.base->client->add_transport("loop", r.scripted);
  r.base->client->set_invocation_policies(policies);
  return r;
}

TEST(Resilience, IdempotentCallsRetryThroughTransientFailures) {
  orb::InvocationPolicies policies;
  policies.retry.max_attempts = 4;
  policies.retry.initial_backoff = milliseconds(1);
  auto p = make_resilient_pair(policies);
  p.scripted->fail_next = 2;

  auto r = p.base->client->call(p.base->calc, "add",
                                {orb::Value(std::int32_t{40}),
                                 orb::Value(std::int32_t{2})},
                                {.idempotent = true});
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(*r, orb::Value(std::int32_t{42}));
  EXPECT_EQ(p.scripted->calls, 3);
  EXPECT_EQ(p.base->client->metrics().counter("orb.retries").value(), 2u);
  EXPECT_GT(p.base->clock.now(), 0);  // backoff advanced virtual time
}

TEST(Resilience, NonIdempotentCallsNeverRetry) {
  orb::InvocationPolicies policies;
  policies.retry.max_attempts = 4;
  auto p = make_resilient_pair(policies);
  p.scripted->fail_next = 1;

  auto r = p.base->client->call(p.base->calc, "add",
                                {orb::Value(std::int32_t{1}),
                                 orb::Value(std::int32_t{1})});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::timeout);
  EXPECT_EQ(p.scripted->calls, 1);
  EXPECT_EQ(p.base->client->metrics().counter("orb.retries").value(), 0u);
}

TEST(Resilience, ModelErrorsAreNotRetriedEvenWhenIdempotent) {
  orb::InvocationPolicies policies;
  policies.retry.max_attempts = 4;
  auto p = make_resilient_pair(policies);
  p.scripted->fail_next = -1;
  p.scripted->failure = Errc::not_found;

  auto r = p.base->client->call(p.base->calc, "add",
                                {orb::Value(std::int32_t{1}),
                                 orb::Value(std::int32_t{1})},
                                {.idempotent = true});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
  EXPECT_EQ(p.scripted->calls, 1);
}

TEST(Resilience, DeadlineBoundsTheTotalRetryBudget) {
  orb::InvocationPolicies policies;
  policies.deadline = milliseconds(10);
  policies.retry.max_attempts = 1000;
  policies.retry.initial_backoff = milliseconds(1);
  auto p = make_resilient_pair(policies);
  p.scripted->fail_next = -1;

  auto r = p.base->client->call(p.base->calc, "add",
                                {orb::Value(std::int32_t{1}),
                                 orb::Value(std::int32_t{1})},
                                {.idempotent = true});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::timeout);
  EXPECT_LT(p.scripted->calls, 40);  // far fewer than max_attempts
  EXPECT_GE(p.base->clock.now(), milliseconds(10));
  EXPECT_EQ(
      p.base->client->metrics().counter("orb.deadline_exceeded").value(), 1u);
}

TEST(Resilience, PerCallDeadlineOverridesThePolicy) {
  orb::InvocationPolicies policies;
  policies.deadline = seconds(60);
  policies.retry.max_attempts = 1000;
  policies.retry.initial_backoff = milliseconds(1);
  auto p = make_resilient_pair(policies);
  p.scripted->fail_next = -1;

  auto r = p.base->client->call(p.base->calc, "add",
                                {orb::Value(std::int32_t{1}),
                                 orb::Value(std::int32_t{1})},
                                {.idempotent = true, .deadline = milliseconds(4)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::timeout);
  EXPECT_LT(p.base->clock.now(), milliseconds(60));
}

// ----------------------------------------------------------- circuit breaker

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresAndProbesHalfOpen) {
  orb::BreakerPolicy policy;
  policy.enabled = true;
  policy.failure_threshold = 2;
  policy.open_duration = seconds(1);
  orb::CircuitBreaker cb(policy);
  using State = orb::CircuitBreaker::State;

  const TimePoint t0 = seconds(100);
  EXPECT_TRUE(cb.admit(t0).ok());
  EXPECT_FALSE(cb.on_failure(t0));
  EXPECT_EQ(cb.state(), State::closed);
  EXPECT_TRUE(cb.on_failure(t0));  // threshold reached: flips to open
  EXPECT_EQ(cb.state(), State::open);

  auto rejected = cb.admit(t0 + milliseconds(10));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, Errc::refused);

  // Cool-down passed: one half-open probe admitted, a second refused.
  EXPECT_TRUE(cb.admit(t0 + seconds(1) + milliseconds(1)).ok());
  EXPECT_EQ(cb.state(), State::half_open);
  EXPECT_FALSE(cb.admit(t0 + seconds(1) + milliseconds(2)).ok());

  cb.on_success();
  EXPECT_EQ(cb.state(), State::closed);
  EXPECT_TRUE(cb.admit(t0 + seconds(2)).ok());
}

TEST(CircuitBreaker, FailedProbeReopensTheCircuit) {
  orb::BreakerPolicy policy;
  policy.enabled = true;
  policy.failure_threshold = 1;
  policy.open_duration = seconds(1);
  orb::CircuitBreaker cb(policy);
  using State = orb::CircuitBreaker::State;

  EXPECT_TRUE(cb.on_failure(0));
  EXPECT_EQ(cb.state(), State::open);
  EXPECT_TRUE(cb.admit(seconds(2)).ok());  // probe
  EXPECT_TRUE(cb.on_failure(seconds(2)));
  EXPECT_EQ(cb.state(), State::open);
  EXPECT_FALSE(cb.admit(seconds(2) + milliseconds(500)).ok());
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveFailureCount) {
  orb::BreakerPolicy policy;
  policy.enabled = true;
  policy.failure_threshold = 3;
  orb::CircuitBreaker cb(policy);
  EXPECT_FALSE(cb.on_failure(0));
  EXPECT_FALSE(cb.on_failure(0));
  cb.on_success();
  EXPECT_FALSE(cb.on_failure(0));
  EXPECT_FALSE(cb.on_failure(0));
  EXPECT_EQ(cb.state(), orb::CircuitBreaker::State::closed);
}

TEST(Resilience, BreakerOpensFailsFastAndRecovers) {
  orb::InvocationPolicies policies;
  policies.breaker.enabled = true;
  policies.breaker.failure_threshold = 3;
  policies.breaker.open_duration = seconds(1);
  auto p = make_resilient_pair(policies);
  p.scripted->fail_next = -1;
  using State = orb::CircuitBreaker::State;
  auto add_once = [&] {
    return p.base->client->call(p.base->calc, "add",
                                {orb::Value(std::int32_t{1}),
                                 orb::Value(std::int32_t{1})});
  };

  for (int i = 0; i < 3; ++i) EXPECT_FALSE(add_once().ok());
  EXPECT_EQ(p.base->client->breaker_state(p.base->calc.endpoint), State::open);
  EXPECT_EQ(
      p.base->client->metrics().counter("orb.breaker_opened").value(), 1u);

  // Open circuit: fail fast without touching the transport.
  const int calls_before = p.scripted->calls;
  auto rejected = add_once();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, Errc::refused);
  EXPECT_EQ(p.scripted->calls, calls_before);
  EXPECT_GE(
      p.base->client->metrics().counter("orb.breaker_rejected").value(), 1u);

  // After the cool-down a healthy probe closes the circuit again.
  p.base->clock.advance(seconds(1) + milliseconds(1));
  p.scripted->fail_next = 0;
  auto recovered = add_once();
  ASSERT_TRUE(recovered.ok()) << recovered.error().to_string();
  EXPECT_EQ(p.base->client->breaker_state(p.base->calc.endpoint),
            State::closed);
}

// ------------------------------------------------- whole-network chaos runs

struct ChaosOutcome {
  int successes = 0;
  std::vector<fault::FaultEvent> events;
  bool all_joined = false;

  bool operator==(const ChaosOutcome&) const = default;
};

/// One seeded chaos scenario: three nodes, remote-bound calculator, 100
/// calls under an armed fault plan, then disarm and settle.
ChaosOutcome run_chaos_scenario(std::uint64_t seed) {
  core::LocalNetwork net;
  core::Node& a = net.add_node();
  core::Node& b = net.add_node();
  net.add_node();
  EXPECT_TRUE(a.install(testing::calculator_package()).ok());
  net.settle();

  auto bound = b.resolve("demo.calculator", VersionConstraint{},
                         core::Binding::remote);
  EXPECT_TRUE(bound.ok()) << bound.error().to_string();

  fault::FaultPlan plan;
  plan.seed = seed;
  plan.drop_probability = 0.08;
  plan.reset_probability = 0.02;
  plan.corrupt_probability = 0.02;
  plan.delay_probability = 0.05;
  plan.delay_min = milliseconds(1);
  plan.delay_max = milliseconds(5);
  net.faults().injector().arm(plan);

  ChaosOutcome outcome;
  for (int i = 0; i < 100; ++i) {
    auto r = b.orb().call(bound->primary, "add",
                          {orb::Value(std::int32_t{i}),
                           orb::Value(std::int32_t{1})},
                          {.idempotent = true});
    if (r.ok() && *r == orb::Value(std::int32_t{i + 1})) ++outcome.successes;
  }
  outcome.events = net.faults().injector().events();
  net.faults().injector().disarm();

  // The cohesion layer lived through the same faults (its heartbeats and
  // queries crossed the decorator too); after the chaos window the network
  // must still be whole.
  net.settle();
  outcome.all_joined = true;
  for (core::Node* n : net.nodes())
    outcome.all_joined = outcome.all_joined && n->cohesion().joined();
  return outcome;
}

TEST(Chaos, RetriesKeepCallsSucceedingUnderSeededFaults) {
  const ChaosOutcome outcome = run_chaos_scenario(0xc4a05);
  // ~12% of messages are faulted; with 4 attempts per call the expected
  // failure rate is well under 1%.
  EXPECT_GE(outcome.successes, 97);
  EXPECT_FALSE(outcome.events.empty());
  EXPECT_TRUE(outcome.all_joined);
}

TEST(Chaos, IdenticalSeedsReplayIdenticalSchedulesAndOutcomes) {
  const ChaosOutcome first = run_chaos_scenario(0xd1ce);
  const ChaosOutcome second = run_chaos_scenario(0xd1ce);
  EXPECT_EQ(first, second);
  // And a different seed produces a different fault schedule.
  const ChaosOutcome other = run_chaos_scenario(0x0dd);
  EXPECT_NE(first.events, other.events);
}

// ------------------------------------------------------ simulator integration

class RecordingHost : public sim::SimHost {
 public:
  void on_message(NodeId, const Bytes& payload) override {
    received.push_back(payload);
  }
  std::vector<Bytes> received;
};

struct SimOutcome {
  std::vector<Bytes> delivered;
  std::vector<fault::FaultEvent> events;

  bool operator==(const SimOutcome&) const = default;
};

SimOutcome run_sim_scenario(std::uint64_t seed) {
  sim::Simulator sim;
  sim::SimNetwork net(sim, 42);
  net.set_link_model({.base_latency = milliseconds(2),
                      .jitter = milliseconds(1),
                      .bytes_per_second = 0,
                      .drop_probability = 0});
  fault::FaultInjector injector;
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.drop_probability = 0.2;
  plan.duplicate_probability = 0.1;
  plan.corrupt_probability = 0.2;
  plan.delay_probability = 0.2;
  plan.delay_min = milliseconds(1);
  plan.delay_max = milliseconds(20);
  injector.arm(plan);
  net.set_fault_injector(&injector);

  RecordingHost alice;
  RecordingHost bob;
  net.attach(NodeId{1}, &alice);
  net.attach(NodeId{2}, &bob);
  for (int i = 0; i < 200; ++i) {
    sim.schedule_after(milliseconds(10) * static_cast<Duration>(i), [&net, i] {
      net.send(NodeId{1}, NodeId{2},
               Bytes{static_cast<std::uint8_t>(i),
                     static_cast<std::uint8_t>(i >> 8), 0x5A, 0x5A});
    });
  }
  sim.run_until(seconds(60));

  SimOutcome out;
  out.delivered = bob.received;
  out.events = injector.events();
  return out;
}

TEST(SimFaults, PlanDropsDelaysAndCorruptsSimulatedTraffic) {
  const SimOutcome out = run_sim_scenario(0x51f);
  // Some messages dropped...
  EXPECT_LT(out.delivered.size(), 200u);
  EXPECT_GT(out.delivered.size(), 100u);
  // ...and at least one delivered frame carries flipped bytes.
  int corrupted = 0;
  for (const Bytes& b : out.delivered)
    corrupted += b.size() == 4 && (b[2] != 0x5A || b[3] != 0x5A);
  EXPECT_GT(corrupted, 0);
  EXPECT_FALSE(out.events.empty());
}

TEST(SimFaults, SameSeedReplaysTheSimulationExactly) {
  const SimOutcome first = run_sim_scenario(0xace);
  const SimOutcome second = run_sim_scenario(0xace);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace clc
