// Tests for the XML DOM parser/writer used by component descriptors.
#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace clc::xml {
namespace {

TEST(XmlParse, MinimalDocument) {
  auto doc = parse("<root/>");
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  EXPECT_EQ(doc->root->name(), "root");
  EXPECT_TRUE(doc->root->text().empty());
  EXPECT_TRUE(doc->root->children().empty());
}

TEST(XmlParse, DeclarationCaptured) {
  auto doc = parse("<?xml version=\"1.1\" encoding=\"ascii\"?><r/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->version, "1.1");
  EXPECT_EQ(doc->encoding, "ascii");
}

TEST(XmlParse, AttributesBothQuoteStyles) {
  auto doc = parse(R"(<c name="video.decoder" version='2.1.0'/>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->attr("name"), "video.decoder");
  EXPECT_EQ(doc->root->attr("version"), "2.1.0");
  EXPECT_TRUE(doc->root->has_attr("name"));
  EXPECT_FALSE(doc->root->has_attr("missing"));
  EXPECT_EQ(doc->root->attr("missing"), "");
}

TEST(XmlParse, NestedChildrenAndText) {
  auto doc = parse(
      "<component>\n"
      "  <name>whiteboard</name>\n"
      "  <ports><provides>IDraw</provides><uses>IDisplay</uses></ports>\n"
      "</component>");
  ASSERT_TRUE(doc.ok());
  const Element& root = *doc->root;
  EXPECT_EQ(root.find_text("name"), "whiteboard");
  EXPECT_EQ(root.find_text("ports/provides"), "IDraw");
  EXPECT_EQ(root.find_text("ports/uses"), "IDisplay");
  EXPECT_EQ(root.find_text("ports/missing", "dflt"), "dflt");
  EXPECT_EQ(root.find("ports/provides")->name(), "provides");
  EXPECT_EQ(root.find("nope"), nullptr);
}

TEST(XmlParse, RepeatedChildren) {
  auto doc = parse("<deps><dep>a</dep><dep>b</dep><other/><dep>c</dep></deps>");
  ASSERT_TRUE(doc.ok());
  auto deps = doc->root->children_named("dep");
  ASSERT_EQ(deps.size(), 3u);
  EXPECT_EQ(deps[0]->text(), "a");
  EXPECT_EQ(deps[1]->text(), "b");
  EXPECT_EQ(deps[2]->text(), "c");
}

TEST(XmlParse, EntitiesDecoded) {
  auto doc = parse("<t a=\"&lt;x&gt;\">&amp;&quot;&apos;&#65;&#x42;</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->attr("a"), "<x>");
  EXPECT_EQ(doc->root->text(), "&\"'AB");
}

TEST(XmlParse, NumericEntityUtf8) {
  auto doc = parse("<t>&#233;&#x20AC;</t>");  // é €
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "\xc3\xa9\xe2\x82\xac");
}

TEST(XmlParse, CommentsAndPIsSkipped) {
  auto doc = parse(
      "<!-- header --><?pi data?><r><!-- inner -->"
      "<a/><?x y?></r><!-- trailer -->");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->children().size(), 1u);
}

TEST(XmlParse, DoctypeSkipped) {
  auto doc = parse(
      "<!DOCTYPE softpkg SYSTEM \"osd.dtd\" [ <!ENTITY x \"y\"> ]>"
      "<softpkg/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->name(), "softpkg");
}

TEST(XmlParse, CdataPreserved) {
  auto doc = parse("<t><![CDATA[a <raw> & b]]></t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "a <raw> & b");
}

TEST(XmlParse, WhitespaceAroundChildrenTrimmed) {
  auto doc = parse("<r>\n  <a/>\n</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "");
}

struct BadXmlCase {
  const char* label;
  const char* input;
};

class XmlParseErrors : public ::testing::TestWithParam<BadXmlCase> {};

TEST_P(XmlParseErrors, Rejected) {
  auto doc = parse(GetParam().input);
  EXPECT_FALSE(doc.ok()) << GetParam().label;
  if (!doc.ok()) {
    EXPECT_EQ(doc.error().code, Errc::parse_error);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table, XmlParseErrors,
    ::testing::Values(
        BadXmlCase{"empty", ""},
        BadXmlCase{"text_only", "just text"},
        BadXmlCase{"unterminated_tag", "<r"},
        BadXmlCase{"unterminated_elem", "<r>"},
        BadXmlCase{"mismatched_end", "<a></b>"},
        BadXmlCase{"dup_attr", "<a x=\"1\" x=\"2\"/>"},
        BadXmlCase{"bad_attr", "<a x=1/>"},
        BadXmlCase{"unknown_entity", "<a>&nope;</a>"},
        BadXmlCase{"unterminated_comment", "<!-- never closed"},
        BadXmlCase{"content_after_root", "<a/><b/>"},
        BadXmlCase{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadXmlCase{"missing_attr_eq", "<a x \"1\"/>"}),
    [](const auto& info) { return info.param.label; });

TEST(XmlParse, ErrorsCarryLocation) {
  auto doc = parse("<a>\n<b></c></a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().message.find("xml:2:"), std::string::npos)
      << doc.error().message;
}

TEST(XmlWrite, EscapesSpecialCharacters) {
  Element e("t");
  e.set_attr("a", "<&\">");
  e.set_text("1 < 2 & 3");
  const std::string s = e.to_string(-1);
  EXPECT_EQ(s, "<t a=\"&lt;&amp;&quot;&gt;\">1 &lt; 2 &amp; 3</t>");
}

TEST(XmlWrite, ParsePrintParseFixpoint) {
  const char* input =
      "<softpkg name=\"clc.demo\" version=\"1.0.0\">"
      "<description>demo &amp; test</description>"
      "<implementation arch=\"x86_64\" os=\"linux\">"
      "<dependency name=\"codec\" constraint=\"&gt;=2.0\"/>"
      "</implementation>"
      "</softpkg>";
  auto d1 = parse(input);
  ASSERT_TRUE(d1.ok());
  const std::string printed1 = d1->to_string();
  auto d2 = parse(printed1);
  ASSERT_TRUE(d2.ok()) << d2.error().to_string();
  EXPECT_EQ(printed1, d2->to_string());
}

TEST(XmlWrite, BuilderApi) {
  Element root("assembly");
  root.set_attr("name", "app");
  auto& inst = root.add_child("instance");
  inst.set_attr("component", "gui.part");
  inst.set_text("main");
  EXPECT_EQ(root.children().size(), 1u);
  auto parsed = parse(root.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->root->child("instance")->attr("component"), "gui.part");
  EXPECT_EQ(parsed->root->child("instance")->text(), "main");
}

TEST(XmlWrite, SetAttrOverwrites) {
  Element e("x");
  e.set_attr("k", "1");
  e.set_attr("k", "2");
  EXPECT_EQ(e.attributes().size(), 1u);
  EXPECT_EQ(e.attr("k"), "2");
}

}  // namespace
}  // namespace clc::xml
