// Wire-format freeze tests: every frame kind re-encoded and compared
// byte-for-byte against the golden fixtures in support/golden_frames.hpp.
// A drift in any of these bytes breaks interop with peers running older
// builds, so a failing test here means either (a) an accidental protocol
// change -- fix the code -- or (b) a deliberate one -- regenerate the
// fixtures in the same commit and say so in its message.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/proto.hpp"
#include "core/zone.hpp"
#include "dir/record.hpp"
#include "idl/repository.hpp"
#include "orb/cdr.hpp"
#include "orb/message.hpp"
#include "orb/orb.hpp"
#include "orb/transport.hpp"
#include "support/golden_frames.hpp"

namespace clc {
namespace {

// The fixtures pin the little-endian encoding; CDR is receiver-makes-right,
// so a big-endian host legitimately produces different (equally valid)
// bytes. Skip rather than pin a second fixture set nothing exercises.
#define SKIP_UNLESS_LITTLE_ENDIAN()                                   \
  if (orb::native_order() != orb::ByteOrder::little_endian)           \
  GTEST_SKIP() << "golden fixtures pin the little-endian encoding"

orb::RequestMessage golden_request() {
  orb::RequestMessage m;
  m.request_id = RequestId{7};
  m.object_key = Uuid{0x1122334455667788ULL, 0x99aabbccddeeff00ULL};
  m.interface_name = "t::Calc";
  m.operation = "add";
  m.response_expected = true;
  m.args = {0x00, 0x01, 0x02, 0x03};
  return m;
}

TEST(WireGolden, RequestFrameBytesAreFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  EXPECT_EQ(testing::to_hex(golden_request().encode()),
            testing::kGoldenRequest);
}

TEST(WireGolden, EmptyServiceContextListAddsNoBytes) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  // The context trailer must stay absent (not "present but empty") when no
  // interceptor attached metadata: old decoders never read those bytes.
  orb::RequestMessage m = golden_request();
  m.service_contexts.clear();
  EXPECT_EQ(testing::to_hex(m.encode()), testing::kGoldenRequest);
}

TEST(WireGolden, RequestWithServiceContextIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  orb::RequestMessage m = golden_request();
  m.service_contexts.push_back({0x11, Bytes{0xAA, 0xBB}});
  EXPECT_EQ(testing::to_hex(m.encode()),
            testing::kGoldenRequestWithContext);
}

TEST(WireGolden, ReplyFrameBytesAreFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  orb::ReplyMessage m;
  m.request_id = RequestId{7};
  m.status = orb::ReplyStatus::no_exception;
  m.payload = {0x01, 0x02};
  EXPECT_EQ(testing::to_hex(m.encode()), testing::kGoldenReply);
}

TEST(WireGolden, SystemExceptionReplyIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  orb::ReplyMessage m;
  m.request_id = RequestId{8};
  m.status = orb::ReplyStatus::system_exception;
  m.exception_id = "timeout";
  m.payload = bytes_of("boom");
  EXPECT_EQ(testing::to_hex(m.encode()),
            testing::kGoldenSystemExceptionReply);
}

TEST(WireGolden, BusyReplyIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  orb::ReplyMessage m;
  m.request_id = RequestId{9};
  m.status = orb::ReplyStatus::busy;
  m.exception_id = "overloaded";
  m.payload = bytes_of("admission queue full");
  EXPECT_EQ(testing::to_hex(m.encode()), testing::kGoldenBusyReply);
}

TEST(WireGolden, ReplyWithCreditContextIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  orb::ReplyMessage m;
  m.request_id = RequestId{7};
  m.status = orb::ReplyStatus::no_exception;
  m.payload = {0x01, 0x02};
  orb::CreditContext credit;
  credit.window = 8;
  credit.queue_delay_us = 2500;
  credit.attach(m.service_contexts);
  EXPECT_EQ(testing::to_hex(m.encode()),
            testing::kGoldenReplyWithCreditContext);
}

TEST(WireGolden, ReplyWithoutCreditContextMatchesPreCreditBytes) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  // The credit hint must stay strictly opt-in: a hint-free reply encodes
  // exactly the bytes it did before the credit context existed.
  orb::ReplyMessage m;
  m.request_id = RequestId{7};
  m.status = orb::ReplyStatus::no_exception;
  m.payload = {0x01, 0x02};
  EXPECT_EQ(testing::to_hex(m.encode()), testing::kGoldenReply);
}

TEST(WireGolden, FrozenBusyReplyDecodesToOriginalFields) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes frame = testing::from_hex(testing::kGoldenBusyReply);
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, orb::MessageType::reply);
  auto m = orb::ReplyMessage::decode(r);
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  EXPECT_EQ(m->request_id, RequestId{9});
  EXPECT_EQ(m->status, orb::ReplyStatus::busy);
  EXPECT_EQ(m->exception_id, "overloaded");
  EXPECT_EQ(string_of(m->payload), "admission queue full");
}

TEST(WireGolden, FrozenCreditContextDecodesToOriginalFields) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes frame =
      testing::from_hex(testing::kGoldenReplyWithCreditContext);
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  auto m = orb::ReplyMessage::decode(r);
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  auto credit = orb::CreditContext::find(m->service_contexts);
  ASSERT_TRUE(credit.has_value());
  EXPECT_EQ(credit->window, 8u);
  EXPECT_EQ(credit->queue_delay_us, 2500u);
}

TEST(WireGolden, ControlFramesAreFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  EXPECT_EQ(testing::to_hex(orb::encode_control(orb::MessageType::ping)),
            testing::kGoldenPing);
  EXPECT_EQ(testing::to_hex(orb::encode_control(orb::MessageType::pong)),
            testing::kGoldenPong);
}

// Decoding the pinned bytes must keep producing the original field values:
// this is what actually guarantees an old peer's frames stay readable.
TEST(WireGolden, FrozenRequestBytesDecodeToOriginalFields) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes frame = testing::from_hex(testing::kGoldenRequestWithContext);
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, orb::MessageType::request);
  auto m = orb::RequestMessage::decode(r);
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  EXPECT_EQ(m->request_id, RequestId{7});
  EXPECT_EQ(m->object_key, (Uuid{0x1122334455667788ULL, 0x99aabbccddeeff00ULL}));
  EXPECT_EQ(m->interface_name, "t::Calc");
  EXPECT_EQ(m->operation, "add");
  EXPECT_TRUE(m->response_expected);
  EXPECT_EQ(m->args, (Bytes{0x00, 0x01, 0x02, 0x03}));
  ASSERT_EQ(m->service_contexts.size(), 1u);
  EXPECT_EQ(m->service_contexts[0].id, 0x11u);
  EXPECT_EQ(m->service_contexts[0].data, (Bytes{0xAA, 0xBB}));
}

// --- Service directory (PR 6) ---------------------------------------------

dir::ServiceRecord golden_dir_record() {
  dir::ServiceRecord rec;
  rec.service = "demo.counter";
  rec.ref.node = NodeId{5};
  rec.ref.key = Uuid{0x1122334455667788ULL, 0x99aabbccddeeff00ULL};
  rec.ref.interface_name = "demo::Counter";
  rec.ref.endpoint = "loop://5";
  rec.ref.incarnation = 2;
  rec.host = NodeId{5};
  rec.incarnation = 2;
  rec.epoch = 3;
  rec.stamp = 42000000;
  rec.retired = false;
  rec.idl = "module demo { interface Counter { }; };";
  return rec;
}

orb::RequestMessage golden_notify_request() {
  const dir::DirNotification n{dir::ChangeKind::moved, golden_dir_record()};
  orb::RequestMessage m;
  m.request_id = RequestId{9};
  m.object_key = Uuid{0xABCDABCD00000001ULL, 0x42};
  m.interface_name = "clc::DirSubscriber";
  m.operation = "notify";
  m.response_expected = false;  // oneway push
  orb::CdrWriter args;
  args.write_bytes(n.encode());
  m.args = args.take();
  return m;
}

TEST(WireGolden, DirRecordBytesAreFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  EXPECT_EQ(testing::to_hex(golden_dir_record().encode()),
            testing::kGoldenDirRecord);
}

TEST(WireGolden, DirNotificationBytesAreFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const dir::DirNotification n{dir::ChangeKind::moved, golden_dir_record()};
  EXPECT_EQ(testing::to_hex(n.encode()), testing::kGoldenDirNotification);
}

TEST(WireGolden, DirNotifyRequestFrameIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  EXPECT_EQ(testing::to_hex(golden_notify_request().encode()),
            testing::kGoldenDirNotifyRequest);
}

TEST(WireGolden, DirNotifyRequestWithServiceContextIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  orb::RequestMessage m = golden_notify_request();
  m.service_contexts.push_back({0x22, Bytes{0xCA, 0xFE}});
  EXPECT_EQ(testing::to_hex(m.encode()),
            testing::kGoldenDirNotifyRequestWithContext);
}

TEST(WireGolden, FrozenDirRecordBytesDecodeToOriginalFields) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes blob = testing::from_hex(testing::kGoldenDirRecord);
  auto rec = dir::ServiceRecord::decode(blob);
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  EXPECT_EQ(*rec, golden_dir_record());
  EXPECT_EQ(rec->service, "demo.counter");
  EXPECT_EQ(rec->ref.endpoint, "loop://5");
  EXPECT_EQ(rec->host, NodeId{5});
  EXPECT_EQ(rec->epoch, 3u);
  EXPECT_EQ(rec->stamp, 42000000);
  EXPECT_FALSE(rec->retired);
}

TEST(WireGolden, FrozenDirNotificationBytesDecodeToOriginalFields) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes blob = testing::from_hex(testing::kGoldenDirNotification);
  auto n = dir::DirNotification::decode(blob);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(n->kind, dir::ChangeKind::moved);
  EXPECT_EQ(n->record, golden_dir_record());
}

TEST(WireGolden, FrozenDirNotifyRequestDecodesAsOnewayCarryingNotification) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes frame =
      testing::from_hex(testing::kGoldenDirNotifyRequestWithContext);
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, orb::MessageType::request);
  auto m = orb::RequestMessage::decode(r);
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  EXPECT_EQ(m->interface_name, "clc::DirSubscriber");
  EXPECT_EQ(m->operation, "notify");
  EXPECT_FALSE(m->response_expected);
  ASSERT_EQ(m->service_contexts.size(), 1u);
  EXPECT_EQ(m->service_contexts[0].id, 0x22u);
  // The args payload is one DirBlob holding the notification encapsulation.
  orb::CdrReader args(m->args);
  auto blob = args.read_bytes();
  ASSERT_TRUE(blob.ok());
  auto n = dir::DirNotification::decode(*blob);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(n->kind, dir::ChangeKind::moved);
  EXPECT_EQ(n->record, golden_dir_record());
}

// --- Zone layer (PR 7) -----------------------------------------------------

core::ProtoMessage golden_heartbeat(std::uint32_t zone) {
  core::ProtoMessage m;
  m.kind = "heartbeat";
  m.sender = NodeId{3};
  m.set("names", "calc@1.2.0");
  if (zone != 0) m.set_int("zn", static_cast<std::int64_t>(zone));
  return m;
}

TEST(WireGolden, UnzonedHeartbeatKeepsPreZoneBytes) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  // The zone fields are elided at their defaults: a node with zone=0 emits
  // the exact frame it emitted before the zone layer existed.
  EXPECT_EQ(testing::to_hex(golden_heartbeat(0).encode()),
            testing::kGoldenHeartbeatUnzoned);
}

TEST(WireGolden, ZonedHeartbeatFrameIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  EXPECT_EQ(testing::to_hex(golden_heartbeat(4).encode()),
            testing::kGoldenHeartbeatZoned);
}

TEST(WireGolden, ZoneHelloFrameIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  core::ProtoMessage m;
  m.kind = "z_hello";
  m.sender = NodeId{64};
  m.set_int("zn", 4);
  m.set_int("zep", 7);
  EXPECT_EQ(testing::to_hex(m.encode()), testing::kGoldenZoneHello);
}

TEST(WireGolden, FrozenZoneHelloDecodesToOriginalFields) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes frame = testing::from_hex(testing::kGoldenZoneHello);
  auto m = core::ProtoMessage::decode(frame);
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  EXPECT_EQ(m->kind, "z_hello");
  EXPECT_EQ(m->sender, NodeId{64});
  EXPECT_EQ(m->field_int("zn"), 4);
  EXPECT_EQ(m->field_int("zep"), 7);
}

TEST(WireGolden, ZonePublishLabelBlobIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes blob =
      core::ZoneRouter::encode_labels({"calc@1.2.0", "stats@2.0.1"});
  EXPECT_EQ(testing::to_hex(blob), testing::kGoldenZoneLabelsBlob);
  const auto labels = core::ZoneRouter::decode_labels(blob);
  EXPECT_EQ(labels,
            (std::vector<std::string>{"calc@1.2.0", "stats@2.0.1"}));
}

TEST(WireGolden, ZoneHitsBlobIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const std::vector<core::ZoneHit> hits{
      {"calc", Version{1, 2, 0}, 4, NodeId{64}},
      {"stats", Version{2, 0, 1}, 9, NodeId{567}},
  };
  const Bytes blob = core::ZoneRouter::encode_zone_hits(hits);
  EXPECT_EQ(testing::to_hex(blob), testing::kGoldenZoneHitsBlob);
  EXPECT_EQ(core::ZoneRouter::decode_zone_hits(blob), hits);
}

TEST(WireGolden, RequestWithZoneContextIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  orb::RequestMessage m = golden_request();
  orb::ZoneContext{4, 7}.attach(m.service_contexts);
  EXPECT_EQ(testing::to_hex(m.encode()),
            testing::kGoldenRequestWithZoneContext);
}

TEST(WireGolden, FrozenZoneContextRequestDecodesToZoneAndEpoch) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes frame =
      testing::from_hex(testing::kGoldenRequestWithZoneContext);
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  auto m = orb::RequestMessage::decode(r);
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  // The zone context rides the generic service-context trailer: the base
  // request fields are untouched.
  EXPECT_EQ(m->operation, "add");
  const auto zc = orb::ZoneContext::find(m->service_contexts);
  ASSERT_TRUE(zc.has_value());
  EXPECT_EQ(zc->zone, 4u);
  EXPECT_EQ(zc->zone_epoch, 7u);
}

TEST(WireGolden, ZoneContextAbsentOnLegacyFrames) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  // A pre-zone peer's frame simply has no ZONE context; find() reports
  // that instead of inventing defaults.
  const Bytes frame = testing::from_hex(testing::kGoldenRequestWithContext);
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  auto m = orb::RequestMessage::decode(r);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(orb::ZoneContext::find(m->service_contexts).has_value());
}

TEST(WireGolden, FrozenReplyBytesDecodeToOriginalFields) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes frame = testing::from_hex(testing::kGoldenSystemExceptionReply);
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, orb::MessageType::reply);
  auto m = orb::ReplyMessage::decode(r);
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  EXPECT_EQ(m->request_id, RequestId{8});
  EXPECT_EQ(m->status, orb::ReplyStatus::system_exception);
  EXPECT_EQ(m->exception_id, "timeout");
  EXPECT_EQ(m->payload, bytes_of("boom"));
  EXPECT_TRUE(m->service_contexts.empty());
}

// ------------------------------------------------- hedging stays off-wire

// DESIGN.md §17 promises hedging and health-aware ranking are pure client
// policy: the wire sees only ordinary request frames. Prove it end to end
// by capturing the raw bytes a server receives from (a) a plain call and
// (b) an identically-shaped hedged call, and comparing them byte for byte.
// No endian skip -- both frames come from the same host, whatever it is.
TEST(WireGolden, HedgedInvocationEmitsByteIdenticalRequestFrames) {
  auto repo = std::make_shared<idl::InterfaceRepository>();
  ASSERT_TRUE(repo
                  ->register_idl(
                      "module w { interface Calc {"
                      " long add(in long a, in long b); }; };")
                  .ok());
  auto net = std::make_shared<orb::LoopbackNetwork>();

  orb::Orb server(NodeId{1}, repo);
  std::vector<Bytes> frames;
  server.set_endpoint(net->register_endpoint([&](BytesView frame) {
    frames.emplace_back(frame.begin(), frame.end());
    return server.handle_frame(frame);
  }));
  server.add_transport("loop", net);
  auto servant = std::make_shared<orb::DynamicServant>("w::Calc");
  servant->on("add", [](orb::ServerRequest& req) -> Result<void> {
    req.set_result(orb::Value(std::int32_t{42}));
    return {};
  });
  const orb::ObjectRef calc = server.activate(servant);

  // Two fresh clients with the same node id, so per-orb state (request-id
  // counters) starts identically. The hedged one gets a decoy second
  // replica and a captured timer: the primary succeeds inline, so neither
  // the timer nor the hedge leg ever fires.
  const auto make_client = [&] {
    auto c = std::make_unique<orb::Orb>(NodeId{2}, repo);
    auto* raw = c.get();
    c->set_endpoint(net->register_endpoint(
        [raw](BytesView frame) { return raw->handle_frame(frame); }));
    c->add_transport("loop", net);
    return c;
  };

  auto plain = make_client();
  auto r1 = plain->call(calc, "add",
                        {orb::Value(std::int32_t{20}),
                         orb::Value(std::int32_t{22})},
                        {.idempotent = true});
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  ASSERT_EQ(frames.size(), 1u);

  auto hedger = make_client();
  orb::InvocationPolicies pol;
  pol.hedge.enabled = true;
  hedger->set_invocation_policies(pol);
  hedger->set_timer_fn([](Duration, std::function<void()>) {
    FAIL() << "an inline success must never arm the hedge timer";
  });
  orb::ObjectRef decoy = calc;
  decoy.endpoint = "loop:999";  // never contacted: primary wins inline
  auto r2 = hedger->call_hedged({calc, decoy}, "add",
                                {orb::Value(std::int32_t{20}),
                                 orb::Value(std::int32_t{22})},
                                {.idempotent = true});
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  ASSERT_EQ(frames.size(), 2u)
      << "the hedged call must put exactly one frame on the wire";

  EXPECT_EQ(testing::to_hex(frames[0]), testing::to_hex(frames[1]))
      << "hedging must be invisible on the wire";
}

}  // namespace
}  // namespace clc
