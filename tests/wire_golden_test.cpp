// Wire-format freeze tests: every frame kind re-encoded and compared
// byte-for-byte against the golden fixtures in support/golden_frames.hpp.
// A drift in any of these bytes breaks interop with peers running older
// builds, so a failing test here means either (a) an accidental protocol
// change -- fix the code -- or (b) a deliberate one -- regenerate the
// fixtures in the same commit and say so in its message.
#include <gtest/gtest.h>

#include <string>

#include "orb/cdr.hpp"
#include "orb/message.hpp"
#include "support/golden_frames.hpp"

namespace clc {
namespace {

// The fixtures pin the little-endian encoding; CDR is receiver-makes-right,
// so a big-endian host legitimately produces different (equally valid)
// bytes. Skip rather than pin a second fixture set nothing exercises.
#define SKIP_UNLESS_LITTLE_ENDIAN()                                   \
  if (orb::native_order() != orb::ByteOrder::little_endian)           \
  GTEST_SKIP() << "golden fixtures pin the little-endian encoding"

orb::RequestMessage golden_request() {
  orb::RequestMessage m;
  m.request_id = RequestId{7};
  m.object_key = Uuid{0x1122334455667788ULL, 0x99aabbccddeeff00ULL};
  m.interface_name = "t::Calc";
  m.operation = "add";
  m.response_expected = true;
  m.args = {0x00, 0x01, 0x02, 0x03};
  return m;
}

TEST(WireGolden, RequestFrameBytesAreFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  EXPECT_EQ(testing::to_hex(golden_request().encode()),
            testing::kGoldenRequest);
}

TEST(WireGolden, EmptyServiceContextListAddsNoBytes) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  // The context trailer must stay absent (not "present but empty") when no
  // interceptor attached metadata: old decoders never read those bytes.
  orb::RequestMessage m = golden_request();
  m.service_contexts.clear();
  EXPECT_EQ(testing::to_hex(m.encode()), testing::kGoldenRequest);
}

TEST(WireGolden, RequestWithServiceContextIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  orb::RequestMessage m = golden_request();
  m.service_contexts.push_back({0x11, Bytes{0xAA, 0xBB}});
  EXPECT_EQ(testing::to_hex(m.encode()),
            testing::kGoldenRequestWithContext);
}

TEST(WireGolden, ReplyFrameBytesAreFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  orb::ReplyMessage m;
  m.request_id = RequestId{7};
  m.status = orb::ReplyStatus::no_exception;
  m.payload = {0x01, 0x02};
  EXPECT_EQ(testing::to_hex(m.encode()), testing::kGoldenReply);
}

TEST(WireGolden, SystemExceptionReplyIsFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  orb::ReplyMessage m;
  m.request_id = RequestId{8};
  m.status = orb::ReplyStatus::system_exception;
  m.exception_id = "timeout";
  m.payload = bytes_of("boom");
  EXPECT_EQ(testing::to_hex(m.encode()),
            testing::kGoldenSystemExceptionReply);
}

TEST(WireGolden, ControlFramesAreFrozen) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  EXPECT_EQ(testing::to_hex(orb::encode_control(orb::MessageType::ping)),
            testing::kGoldenPing);
  EXPECT_EQ(testing::to_hex(orb::encode_control(orb::MessageType::pong)),
            testing::kGoldenPong);
}

// Decoding the pinned bytes must keep producing the original field values:
// this is what actually guarantees an old peer's frames stay readable.
TEST(WireGolden, FrozenRequestBytesDecodeToOriginalFields) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes frame = testing::from_hex(testing::kGoldenRequestWithContext);
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, orb::MessageType::request);
  auto m = orb::RequestMessage::decode(r);
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  EXPECT_EQ(m->request_id, RequestId{7});
  EXPECT_EQ(m->object_key, (Uuid{0x1122334455667788ULL, 0x99aabbccddeeff00ULL}));
  EXPECT_EQ(m->interface_name, "t::Calc");
  EXPECT_EQ(m->operation, "add");
  EXPECT_TRUE(m->response_expected);
  EXPECT_EQ(m->args, (Bytes{0x00, 0x01, 0x02, 0x03}));
  ASSERT_EQ(m->service_contexts.size(), 1u);
  EXPECT_EQ(m->service_contexts[0].id, 0x11u);
  EXPECT_EQ(m->service_contexts[0].data, (Bytes{0xAA, 0xBB}));
}

TEST(WireGolden, FrozenReplyBytesDecodeToOriginalFields) {
  SKIP_UNLESS_LITTLE_ENDIAN();
  const Bytes frame = testing::from_hex(testing::kGoldenSystemExceptionReply);
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, orb::MessageType::reply);
  auto m = orb::ReplyMessage::decode(r);
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  EXPECT_EQ(m->request_id, RequestId{8});
  EXPECT_EQ(m->status, orb::ReplyStatus::system_exception);
  EXPECT_EQ(m->exception_id, "timeout");
  EXPECT_EQ(m->payload, bytes_of("boom"));
  EXPECT_TRUE(m->service_contexts.empty());
}

}  // namespace
}  // namespace clc
