// Integration tests: full Node stack over the in-process LocalNetwork --
// install, distributed resolution, remote binding, package fetching,
// dependency injection, migration with state transfer, events across
// nodes, QoS admission, PDA thin nodes, applications, aggregation.
#include <gtest/gtest.h>

#include "core/aggregation.hpp"
#include "core/application.hpp"
#include "core/introspect.hpp"
#include "core/node.hpp"
#include "support/test_components.hpp"

namespace clc::core {
namespace {

using testing::calculator_package;
using testing::counter_package;
using testing::greeter_package;
using testing::montecarlo_package;
using testing::ticker_package;
using testing::vendor_key;

CohesionConfig fast_cohesion() {
  CohesionConfig cfg;
  cfg.heartbeat = seconds(1);
  cfg.group_size = 4;
  cfg.query_timeout = seconds(3);
  return cfg;
}

/// N-node world with converged membership.
struct World {
  explicit World(std::size_t n) : net(fast_cohesion()) {
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(&net.add_node());
    net.settle();
  }
  LocalNetwork net;
  std::vector<Node*> nodes;
};

TEST(NodeStack, InstallAndLocalResolve) {
  World w(1);
  Node& n = *w.nodes[0];
  ASSERT_TRUE(n.install(calculator_package()).ok());
  EXPECT_EQ(n.repository().size(), 1u);

  auto bound = n.resolve("demo.calculator", VersionConstraint{});
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  EXPECT_EQ(bound->host, n.id());
  auto sum = n.orb().call(bound->primary, "add",
                          {orb::Value(std::int32_t{19}),
                           orb::Value(std::int32_t{23})});
  ASSERT_TRUE(sum.ok()) << sum.error().to_string();
  EXPECT_EQ(*sum, orb::Value(std::int32_t{42}));
}

TEST(NodeStack, ResolveReusesActiveInstance) {
  World w(1);
  Node& n = *w.nodes[0];
  ASSERT_TRUE(n.install(calculator_package()).ok());
  auto a = n.resolve("demo.calculator", VersionConstraint{});
  auto b = n.resolve("demo.calculator", VersionConstraint{});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->instance_token, b->instance_token);
  EXPECT_EQ(n.container().size(), 1u);
}

TEST(NodeStack, SignatureEnforcedForTrustedVendor) {
  World w(1);
  Node& n = *w.nodes[0];
  n.repository().trust_vendor("clc-demo", bytes_of("the-wrong-key"));
  auto r = n.install(calculator_package());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::signature_mismatch);
  n.repository().trust_vendor("clc-demo", vendor_key());
  EXPECT_TRUE(n.install(calculator_package()).ok());
}

TEST(NodeStack, RemoteResolveAndInvocation) {
  World w(4);
  ASSERT_TRUE(w.nodes[2]->install(calculator_package()).ok());
  w.net.settle();  // digest reaches the MRMs

  auto bound = w.nodes[0]->resolve("demo.calculator", VersionConstraint{},
                                   Binding::remote);
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  EXPECT_EQ(bound->host, w.nodes[2]->id());
  EXPECT_FALSE(bound->fetched);
  // The component's IDL was imported during binding; calls work from here.
  auto product = w.nodes[0]->orb().call(bound->primary, "mul",
                                        {orb::Value(std::int32_t{6}),
                                         orb::Value(std::int32_t{7})});
  ASSERT_TRUE(product.ok()) << product.error().to_string();
  EXPECT_EQ(*product, orb::Value(std::int32_t{42}));
}

TEST(NodeStack, FetchLocalMovesThePackage) {
  World w(3);
  ASSERT_TRUE(w.nodes[1]->install(calculator_package()).ok());
  w.net.settle();

  auto bound = w.nodes[0]->resolve("demo.calculator", VersionConstraint{},
                                   Binding::fetch_local);
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  EXPECT_EQ(bound->host, w.nodes[0]->id());
  EXPECT_TRUE(bound->fetched);
  EXPECT_TRUE(w.nodes[0]->repository().has("demo.calculator",
                                           VersionConstraint{}));
  auto sum = w.nodes[0]->orb().call(bound->primary, "add",
                                    {orb::Value(std::int32_t{1}),
                                     orb::Value(std::int32_t{2})});
  ASSERT_TRUE(sum.ok());
}

TEST(NodeStack, AutoBindingFetchesBandwidthSensitiveComponents) {
  World w(3);
  // High min-bandwidth counter: the paper's MPEG-decoder criterion.
  ASSERT_TRUE(w.nodes[1]->install(counter_package(5000)).ok());
  ASSERT_TRUE(w.nodes[2]->install(calculator_package()).ok());
  w.net.settle();

  auto heavy = w.nodes[0]->resolve("demo.counter", VersionConstraint{});
  ASSERT_TRUE(heavy.ok()) << heavy.error().to_string();
  EXPECT_EQ(heavy->host, w.nodes[0]->id()) << "bandwidth-hungry: fetch local";
  auto light = w.nodes[0]->resolve("demo.calculator", VersionConstraint{});
  ASSERT_TRUE(light.ok());
  EXPECT_EQ(light->host, w.nodes[2]->id()) << "cheap component: use remote";
}

TEST(NodeStack, ResolveUnknownComponentFails) {
  World w(2);
  auto r = w.nodes[0]->resolve("does.not.exist", VersionConstraint{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
}

TEST(NodeStack, DependencyInjectedThroughNetwork) {
  // Requirement 6 end-to-end: greeter on node A, calculator only on node B;
  // calling greet() makes the container resolve the dependency remotely.
  World w(3);
  ASSERT_TRUE(w.nodes[0]->install(greeter_package()).ok());
  ASSERT_TRUE(w.nodes[2]->install(calculator_package()).ok());
  w.net.settle();

  auto bound = w.nodes[0]->resolve("demo.greeter", VersionConstraint{});
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  auto greeting =
      w.nodes[0]->orb().call(bound->primary, "greet", {orb::Value("ada")});
  ASSERT_TRUE(greeting.ok()) << greeting.error().to_string();
  EXPECT_EQ(*greeting, orb::Value("hello ada #4"));
}

TEST(NodeStack, QosAdmissionRejectsOverload) {
  World w(1);
  Node& n = *w.nodes[0];
  ASSERT_TRUE(n.install(calculator_package()).ok());
  // Saturate the node: admission must fail afterwards.
  n.resources().set_ambient_cpu_load(0.99);
  pkg::ComponentDescription heavy;
  heavy.name = "x";
  heavy.qos.max_cpu_load = 0.5;
  EXPECT_FALSE(n.resources().can_host(heavy));
  n.resources().set_ambient_cpu_load(0.1);
  EXPECT_TRUE(n.resources().can_host(heavy));
}

TEST(NodeStack, PdaNodeUsesComponentsRemotely) {
  CohesionConfig cfg = fast_cohesion();
  LocalNetwork net(cfg);
  Node& server = net.add_node();
  NodeProfile pda_profile;
  pda_profile.arch = "arm";
  pda_profile.device = DeviceClass::pda;
  pda_profile.total_memory_kb = 16 * 1024;
  Node& pda = net.add_node(pda_profile);
  net.settle();

  ASSERT_TRUE(server.install(calculator_package()).ok());
  net.settle();

  // Installation refused on the PDA (requirement 8)...
  auto direct = pda.install(calculator_package());
  ASSERT_FALSE(direct.ok());
  // ...but the PDA participates as a peer and uses the component remotely,
  // even under auto binding.
  auto bound = pda.resolve("demo.calculator", VersionConstraint{});
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  EXPECT_EQ(bound->host, server.id());
  auto sum = pda.orb().call(bound->primary, "add",
                            {orb::Value(std::int32_t{20}),
                             orb::Value(std::int32_t{22})});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, orb::Value(std::int32_t{42}));
}

TEST(NodeStack, MigrationPreservesState) {
  World w(2);
  Node& a = *w.nodes[0];
  Node& b = *w.nodes[1];
  ASSERT_TRUE(a.install(counter_package()).ok());
  w.net.settle();

  auto bound = a.acquire_local("demo.counter", VersionConstraint{});
  ASSERT_TRUE(bound.ok());
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(a.orb().call(bound->primary, "increment").ok());

  const InstanceId id{
      static_cast<std::uint64_t>(std::stoull(bound->instance_token))};
  auto moved = a.migrate_instance(id, b.id());
  ASSERT_TRUE(moved.ok()) << moved.error().to_string();
  EXPECT_EQ(moved->host, b.id());
  EXPECT_EQ(a.container().size(), 0u);
  EXPECT_EQ(b.container().size(), 1u);
  // Target node installed the shipped package on demand.
  EXPECT_TRUE(b.repository().has("demo.counter", VersionConstraint{}));

  auto value = a.orb().call(moved->primary, "value");
  ASSERT_TRUE(value.ok()) << value.error().to_string();
  EXPECT_EQ(*value, orb::Value(std::int64_t{5}));
  // And keeps counting on the new host.
  ASSERT_TRUE(a.orb().call(moved->primary, "increment").ok());
  EXPECT_EQ(*a.orb().call(moved->primary, "value"),
            orb::Value(std::int64_t{6}));
}

TEST(NodeStack, MigrationToUnknownNodeAborts) {
  World w(1);
  Node& a = *w.nodes[0];
  ASSERT_TRUE(a.install(counter_package()).ok());
  auto bound = a.acquire_local("demo.counter", VersionConstraint{});
  ASSERT_TRUE(bound.ok());
  const InstanceId id{
      static_cast<std::uint64_t>(std::stoull(bound->instance_token))};
  auto moved = a.migrate_instance(id, NodeId{999});
  ASSERT_FALSE(moved.ok());
  // Aborted migration resumes locally.
  EXPECT_EQ(a.container().size(), 1u);
  EXPECT_TRUE(a.orb().call(bound->primary, "increment").ok());
}

TEST(NodeStack, EventsFlowAcrossNodes) {
  World w(2);
  Node& producer_node = *w.nodes[0];
  Node& consumer_node = *w.nodes[1];
  ASSERT_TRUE(producer_node.install(ticker_package()).ok());
  w.net.settle();

  auto ticker = producer_node.acquire_local("demo.ticker", VersionConstraint{});
  ASSERT_TRUE(ticker.ok());

  // Consumer side: a callback servant subscribed to the producer's channel.
  std::vector<std::string> received;
  auto consumer = consumer_node.orb().activate(
      std::make_shared<CallbackEventConsumer>([&](const orb::Value& event) {
        const auto& any = event.as<orb::AnyValue>();
        received.push_back(any.value->as<std::string>());
      }));
  ASSERT_TRUE(consumer_node
                  .subscribe_on(producer_node.id(), "demo.Tick", consumer)
                  .ok());

  ASSERT_TRUE(
      producer_node.orb().call(ticker->primary, "fire", {orb::Value("t1")})
          .ok());
  ASSERT_TRUE(
      producer_node.orb().call(ticker->primary, "fire", {orb::Value("t2")})
          .ok());
  EXPECT_EQ(received, (std::vector<std::string>{"t1", "t2"}));
}

TEST(NodeStack, ApplicationDeploysAcrossNodes) {
  World w(3);
  ASSERT_TRUE(w.nodes[1]->install(calculator_package()).ok());
  ASSERT_TRUE(w.nodes[0]->install(greeter_package()).ok());
  w.net.settle();

  auto spec = AssemblySpec::from_xml(R"(
    <assembly name="greeting-app">
      <instance name="greet" component="demo.greeter"/>
      <instance name="math" component="demo.calculator" binding="remote"/>
      <connection from="greet" port="calc" to="math"/>
    </assembly>)");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();

  auto app = Application::deploy(*w.nodes[0], *spec);
  ASSERT_TRUE(app.ok()) << app.error().to_string();
  EXPECT_EQ(app->instances().size(), 2u);
  EXPECT_EQ(app->remote_instance_count(), 1u);  // math runs on node 1
  auto greeting = app->call("greet", "greet", {orb::Value("grace")});
  ASSERT_TRUE(greeting.ok()) << greeting.error().to_string();
  EXPECT_EQ(*greeting, orb::Value("hello grace #6"));
}

TEST(NodeStack, AssemblySpecXmlRoundTrip) {
  AssemblySpec spec;
  spec.name = "demo";
  spec.instances = {{"a", "c.x", VersionConstraint{}, Binding::auto_decide},
                    {"b", "c.y", *VersionConstraint::parse(">=2.0"),
                     Binding::remote}};
  spec.connections = {{"a", "out", "b", "in"}};
  auto back = AssemblySpec::from_xml(spec.to_xml());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->name, "demo");
  ASSERT_EQ(back->instances.size(), 2u);
  EXPECT_EQ(back->instances[1].binding, Binding::remote);
  EXPECT_EQ(back->instances[1].constraint.to_string(), ">=2.0.0");
  ASSERT_EQ(back->connections.size(), 1u);
  EXPECT_EQ(back->connections[0].to_port, "in");
}

TEST(NodeStack, AssemblySpecRejectsBadDocuments) {
  EXPECT_FALSE(AssemblySpec::from_xml("<assembly/>").ok());
  EXPECT_FALSE(AssemblySpec::from_xml(
                   "<assembly name=\"x\">"
                   "<connection from=\"a\" port=\"p\" to=\"b\"/></assembly>")
                   .ok());
  EXPECT_FALSE(AssemblySpec::from_xml(
                   "<assembly name=\"x\">"
                   "<instance name=\"a\" component=\"c\"/>"
                   "<instance name=\"a\" component=\"d\"/></assembly>")
                   .ok());
}

TEST(NodeStack, AggregationDistributesChunks) {
  World w(4);
  ASSERT_TRUE(w.nodes[0]->install(montecarlo_package()).ok());
  w.net.settle();

  auto bound = w.nodes[0]->acquire_local("demo.montecarlo", VersionConstraint{});
  ASSERT_TRUE(bound.ok());
  ASSERT_TRUE(w.nodes[0]
                  ->orb()
                  .call(bound->primary, "configure",
                        {orb::Value(std::int64_t{40000})})
                  .ok());
  const InstanceId id{
      static_cast<std::uint64_t>(std::stoull(bound->instance_token))};

  std::vector<NodeId> volunteers = {w.nodes[1]->id(), w.nodes[2]->id(),
                                    w.nodes[3]->id()};
  auto report = run_data_parallel(*w.nodes[0], id, 6, volunteers);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report->chunks, 6u);
  EXPECT_EQ(report->remote_chunks, 6u);
  // Volunteers received the component on demand.
  EXPECT_TRUE(w.nodes[1]->repository().has("demo.montecarlo",
                                           VersionConstraint{}));
  orb::CdrReader r(report->result);
  auto pi = r.read_double();
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR(*pi, 3.1415, 0.08);
}

TEST(NodeStack, AggregationSurvivesVolunteerCrash) {
  World w(3);
  ASSERT_TRUE(w.nodes[0]->install(montecarlo_package()).ok());
  w.net.settle();
  auto bound = w.nodes[0]->acquire_local("demo.montecarlo", VersionConstraint{});
  ASSERT_TRUE(bound.ok());
  const InstanceId id{
      static_cast<std::uint64_t>(std::stoull(bound->instance_token))};

  w.net.crash(w.nodes[2]->id());  // volunteer dies before the run
  std::vector<NodeId> volunteers = {w.nodes[1]->id(), w.nodes[2]->id()};
  auto report = run_data_parallel(*w.nodes[0], id, 4, volunteers);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report->chunks, 4u);
  EXPECT_EQ(report->recovered_chunks, 2u) << "crashed volunteer's chunks re-ran";
  orb::CdrReader r(report->result);
  EXPECT_NEAR(*r.read_double(), 3.14, 0.15);
}

TEST(NodeStack, RegistryReflectsInstancesAndAssemblies) {
  World w(1);
  Node& n = *w.nodes[0];
  ASSERT_TRUE(n.install(greeter_package()).ok());
  ASSERT_TRUE(n.install(calculator_package()).ok());
  auto greeter = n.acquire_local("demo.greeter", VersionConstraint{});
  auto calc = n.acquire_local("demo.calculator", VersionConstraint{});
  ASSERT_TRUE(greeter.ok() && calc.ok());
  const InstanceId gid{
      static_cast<std::uint64_t>(std::stoull(greeter->instance_token))};
  ASSERT_TRUE(n.container().connect(gid, "calc", calc->primary).ok());

  // Fig. 1 reflection: instances, their state, ports, and the assembly.
  EXPECT_EQ(n.registry().instances().size(), 2u);
  const InstanceRecord* rec = n.registry().instance(gid);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->component, "demo.greeter");
  EXPECT_EQ(rec->state, InstanceState::active);
  EXPECT_EQ(rec->provided_ports.count("greeter"), 1u);
  auto assembly = n.registry().assembly();
  ASSERT_EQ(assembly.size(), 1u);
  EXPECT_EQ(assembly[0].from_port, "calc");

  // Digest reflects both installed components.
  const RegistryDigest digest = n.registry().digest();
  EXPECT_EQ(digest.components.size(), 2u);
  EXPECT_GT(digest.cpu_load, 0.0);  // reservations show up as load
}

TEST(NodeStack, CrashedHostStopsAnsweringQueries) {
  World w(4);
  ASSERT_TRUE(w.nodes[3]->install(calculator_package()).ok());
  w.net.settle();
  ASSERT_TRUE(w.nodes[0]
                  ->resolve("demo.calculator", VersionConstraint{},
                            Binding::remote)
                  .ok());
  w.net.crash(w.nodes[3]->id());
  w.net.advance(seconds(10));  // failure detection removes the digest
  auto r = w.nodes[0]->resolve("demo.calculator", VersionConstraint{},
                               Binding::remote);
  EXPECT_FALSE(r.ok());
}


TEST(NodeStack, ReplicationKeepsOriginalRunning) {
  World w(2);
  Node& a = *w.nodes[0];
  Node& b = *w.nodes[1];
  ASSERT_TRUE(a.install(calculator_package()).ok());  // replicable=true
  ASSERT_TRUE(a.install(counter_package()).ok());     // replicable=false
  w.net.settle();

  auto calc = a.acquire_local("demo.calculator", VersionConstraint{});
  ASSERT_TRUE(calc.ok());
  const InstanceId cid{
      static_cast<std::uint64_t>(std::stoull(calc->instance_token))};
  auto replica = a.replicate_instance(cid, b.id());
  ASSERT_TRUE(replica.ok()) << replica.error().to_string();
  EXPECT_EQ(replica->host, b.id());
  // Both copies answer; the package travelled to b on demand.
  EXPECT_TRUE(a.orb()
                  .call(calc->primary, "add",
                        {orb::Value(std::int32_t{1}), orb::Value(std::int32_t{2})})
                  .ok());
  auto via_replica = a.orb().call(replica->primary, "add",
                                  {orb::Value(std::int32_t{2}),
                                   orb::Value(std::int32_t{3})});
  ASSERT_TRUE(via_replica.ok());
  EXPECT_EQ(*via_replica, orb::Value(std::int32_t{5}));
  EXPECT_EQ(a.container().size(), 1u);
  EXPECT_EQ(b.container().size(), 1u);

  // Non-replicable components are refused.
  auto counter = a.acquire_local("demo.counter", VersionConstraint{});
  ASSERT_TRUE(counter.ok());
  const InstanceId kid{
      static_cast<std::uint64_t>(std::stoull(counter->instance_token))};
  auto refused = a.replicate_instance(kid, b.id());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, Errc::refused);
}

TEST(NodeStack, IntrospectionReflectsTheNetwork) {
  World w(2);
  Node& a = *w.nodes[0];
  ASSERT_TRUE(a.install(greeter_package()).ok());
  ASSERT_TRUE(a.install(calculator_package()).ok());
  auto greeter = a.acquire_local("demo.greeter", VersionConstraint{});
  auto calc = a.acquire_local("demo.calculator", VersionConstraint{});
  ASSERT_TRUE(greeter.ok() && calc.ok());
  const InstanceId gid{
      static_cast<std::uint64_t>(std::stoull(greeter->instance_token))};
  ASSERT_TRUE(a.container().connect(gid, "calc", calc->primary).ok());

  const std::string xml_view = network_view_xml(w.net);
  auto doc = xml::parse(xml_view);
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  auto nodes = doc->root->children_named("node");
  ASSERT_EQ(nodes.size(), 2u);
  // Node a: palette lists both components; instances carry state + wiring.
  const xml::Element* node_a = nodes[0];
  EXPECT_EQ(node_a->find("palette")->children().size(), 2u);
  auto instance_els = node_a->find("instances")->children_named("instance");
  ASSERT_EQ(instance_els.size(), 2u);
  bool saw_connection = false;
  for (const auto* inst : instance_els) {
    EXPECT_EQ(inst->attr("state"), "active");
    saw_connection |= inst->child("connection") != nullptr;
  }
  EXPECT_TRUE(saw_connection);

  const std::string text_view = network_view_text(w.net);
  EXPECT_NE(text_view.find("demo.greeter"), std::string::npos);
  EXPECT_NE(text_view.find("calc->demo::Calculator"), std::string::npos);
}

}  // namespace
}  // namespace clc::core
