// Reusable demo components for integration tests and benchmarks.
//
// Each helper builds a signed component package (descriptor XML + IDL +
// per-platform binaries) and registers the entry symbol's factory in the
// process-wide ExecutorRegistry -- exactly what installing a real DLL-
// carrying package would achieve.
#pragma once

#include <memory>
#include <string>

#include "core/instance.hpp"
#include "orb/cdr.hpp"
#include "orb/orb.hpp"
#include "pkg/package.hpp"
#include "util/rng.hpp"

namespace clc::testing {

inline Bytes vendor_key() { return bytes_of("clc-demo-vendor-key"); }

inline pkg::BinaryImpl binary_for(const std::string& arch,
                                  const std::string& entry_symbol,
                                  std::size_t image_size = 4096) {
  pkg::BinaryImpl b;
  b.arch = arch;
  b.os = "linux";
  b.orb = "clc";
  b.entry_symbol = entry_symbol;
  b.image.resize(image_size);
  Rng rng(fnv1a64(bytes_of(entry_symbol)));
  for (auto& byte : b.image) byte = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

// ---------------------------------------------------------------------------
// demo.calculator: stateless provider of demo::Calculator.

class CalculatorInstance : public core::ComponentInstance {
 public:
  Result<void> initialize(core::InstanceContext& ctx) override {
    auto servant = std::make_shared<orb::DynamicServant>("demo::Calculator");
    servant->on("add", [](orb::ServerRequest& req) -> Result<void> {
      req.set_result(orb::Value(static_cast<std::int32_t>(
          *req.arg(0).to_int() + *req.arg(1).to_int())));
      return {};
    });
    servant->on("mul", [](orb::ServerRequest& req) -> Result<void> {
      req.set_result(orb::Value(static_cast<std::int32_t>(
          *req.arg(0).to_int() * *req.arg(1).to_int())));
      return {};
    });
    return ctx.provide_port("calc", std::move(servant)).ok()
               ? Result<void>{}
               : Result<void>{Errc::bad_state, "port registration failed"};
  }
};

inline Bytes calculator_package(const Version& version = {1, 0, 0}) {
  (void)core::ExecutorRegistry::global().register_symbol(
      "create_calculator",
      [] { return std::make_unique<CalculatorInstance>(); });
  pkg::ComponentDescription d;
  d.name = "demo.calculator";
  d.version = version;
  d.summary = "Stateless arithmetic service";
  d.mobile = true;
  d.replicable = true;
  d.stateless = true;
  d.security.vendor = "clc-demo";
  d.ports = {{pkg::PortKind::provides, "calc", "demo::Calculator"}};
  d.factory_interface = "demo::Calculator";
  pkg::PackageBuilder b(d);
  b.set_idl(
      "module demo { interface Calculator {"
      " long add(in long a, in long b);"
      " long mul(in long a, in long b); }; };");
  b.add_binary(binary_for("x86_64", "create_calculator"));
  b.add_binary(binary_for("arm", "create_calculator"));
  auto built = b.build(vendor_key());
  return built.value();
}

// ---------------------------------------------------------------------------
// demo.greeter: uses demo::Calculator through a declared dependency.

class GreeterInstance : public core::ComponentInstance {
 public:
  Result<void> initialize(core::InstanceContext& ctx) override {
    auto servant = std::make_shared<orb::DynamicServant>("demo::Greeter");
    servant->on("greet", [&ctx](orb::ServerRequest& req) -> Result<void> {
      // Length of the name, computed through the calculator dependency --
      // exercised to prove automatic dependency management (requirement 6).
      const auto name = req.arg(0).as<std::string>();
      auto sum = ctx.call_port(
          "calc", "add",
          {orb::Value(static_cast<std::int32_t>(name.size())),
           orb::Value(std::int32_t{1})});
      if (!sum) return sum.error();
      req.set_result(orb::Value("hello " + name + " #" +
                                std::to_string(*sum->to_int())));
      return {};
    });
    return ctx.provide_port("greeter", std::move(servant)).ok()
               ? Result<void>{}
               : Result<void>{Errc::bad_state, "port registration failed"};
  }
};

inline Bytes greeter_package() {
  (void)core::ExecutorRegistry::global().register_symbol(
      "create_greeter", [] { return std::make_unique<GreeterInstance>(); });
  pkg::ComponentDescription d;
  d.name = "demo.greeter";
  d.version = {1, 0, 0};
  d.summary = "Greets people, needs a calculator";
  d.security.vendor = "clc-demo";
  d.dependencies = {{"demo.calculator", VersionConstraint{}}};
  d.ports = {{pkg::PortKind::provides, "greeter", "demo::Greeter"},
             {pkg::PortKind::uses, "calc", "demo::Calculator"}};
  d.factory_interface = "demo::Greeter";
  pkg::PackageBuilder b(d);
  b.set_idl(
      "module demo {"
      " interface Calculator { long add(in long a, in long b);"
      "                        long mul(in long a, in long b); };"
      " interface Greeter { string greet(in string name); }; };");
  b.add_binary(binary_for("x86_64", "create_greeter"));
  auto built = b.build(vendor_key());
  return built.value();
}

// ---------------------------------------------------------------------------
// demo.counter: stateful + mobile (migration test subject).

class CounterInstance : public core::ComponentInstance {
 public:
  Result<void> initialize(core::InstanceContext& ctx) override {
    auto servant = std::make_shared<orb::DynamicServant>("demo::Counter");
    servant->on("increment", [this](orb::ServerRequest&) -> Result<void> {
      ++count_;
      return {};
    });
    servant->on("value", [this](orb::ServerRequest& req) -> Result<void> {
      req.set_result(orb::Value(static_cast<std::int64_t>(count_)));
      return {};
    });
    return ctx.provide_port("counter", std::move(servant)).ok()
               ? Result<void>{}
               : Result<void>{Errc::bad_state, "port registration failed"};
  }
  Result<Bytes> externalize_state() override {
    orb::CdrWriter w;
    w.write_longlong(count_);
    return w.take();
  }
  Result<void> internalize_state(BytesView state) override {
    orb::CdrReader r(state);
    auto v = r.read_longlong();
    if (!v) return v.error();
    count_ = *v;
    return {};
  }

 private:
  std::int64_t count_ = 0;
};

inline Bytes counter_package(double min_bandwidth_kbps = 0) {
  (void)core::ExecutorRegistry::global().register_symbol(
      "create_counter", [] { return std::make_unique<CounterInstance>(); });
  pkg::ComponentDescription d;
  d.name = "demo.counter";
  d.version = {1, 0, 0};
  d.summary = "Stateful counter";
  d.mobile = true;
  d.security.vendor = "clc-demo";
  d.qos.min_bandwidth_kbps = min_bandwidth_kbps;
  d.ports = {{pkg::PortKind::provides, "counter", "demo::Counter"}};
  d.factory_interface = "demo::Counter";
  pkg::PackageBuilder b(d);
  b.set_idl(
      "module demo { interface Counter {"
      " void increment(); long long value(); }; };");
  b.add_binary(binary_for("x86_64", "create_counter"));
  b.add_binary(binary_for("arm", "create_counter"));
  auto built = b.build(vendor_key());
  return built.value();
}

// ---------------------------------------------------------------------------
// demo.montecarlo: aggregatable (data-parallel pi estimation).

class MonteCarloInstance : public core::ComponentInstance {
 public:
  Result<void> initialize(core::InstanceContext& ctx) override {
    auto servant = std::make_shared<orb::DynamicServant>("demo::MonteCarlo");
    servant->on("configure", [this](orb::ServerRequest& req) -> Result<void> {
      samples_ = static_cast<std::uint64_t>(*req.arg(0).to_int());
      return {};
    });
    return ctx.provide_port("mc", std::move(servant)).ok()
               ? Result<void>{}
               : Result<void>{Errc::bad_state, "port registration failed"};
  }

  Result<std::vector<Bytes>> split_work(std::size_t parts) override {
    if (parts == 0) parts = 1;
    std::vector<Bytes> chunks;
    const std::uint64_t per = samples_ / parts;
    for (std::size_t i = 0; i < parts; ++i) {
      const std::uint64_t n =
          i + 1 == parts ? samples_ - per * (parts - 1) : per;
      orb::CdrWriter w;
      w.write_ulonglong(0x5eed + i);  // chunk seed
      w.write_ulonglong(n);
      chunks.push_back(w.take());
    }
    return chunks;
  }

  Result<Bytes> process_chunk(BytesView chunk) override {
    orb::CdrReader r(chunk);
    auto seed = r.read_ulonglong();
    if (!seed) return seed.error();
    auto n = r.read_ulonglong();
    if (!n) return n.error();
    Rng rng(*seed);
    std::uint64_t inside = 0;
    for (std::uint64_t i = 0; i < *n; ++i) {
      const double x = rng.next_double();
      const double y = rng.next_double();
      inside += (x * x + y * y <= 1.0);
    }
    orb::CdrWriter w;
    w.write_ulonglong(inside);
    w.write_ulonglong(*n);
    return w.take();
  }

  Result<Bytes> gather(const std::vector<Bytes>& partials) override {
    std::uint64_t inside = 0, total = 0;
    for (const auto& p : partials) {
      orb::CdrReader r(p);
      auto i = r.read_ulonglong();
      if (!i) return i.error();
      auto n = r.read_ulonglong();
      if (!n) return n.error();
      inside += *i;
      total += *n;
    }
    orb::CdrWriter w;
    w.write_double(total == 0 ? 0.0
                              : 4.0 * static_cast<double>(inside) /
                                    static_cast<double>(total));
    return w.take();
  }

 private:
  std::uint64_t samples_ = 100000;
};

inline Bytes montecarlo_package() {
  (void)core::ExecutorRegistry::global().register_symbol(
      "create_montecarlo",
      [] { return std::make_unique<MonteCarloInstance>(); });
  pkg::ComponentDescription d;
  d.name = "demo.montecarlo";
  d.version = {1, 0, 0};
  d.summary = "Data-parallel pi estimator";
  d.mobile = true;
  d.aggregatable = true;
  d.stateless = true;
  d.security.vendor = "clc-demo";
  d.ports = {{pkg::PortKind::provides, "mc", "demo::MonteCarlo"}};
  d.factory_interface = "demo::MonteCarlo";
  pkg::PackageBuilder b(d);
  b.set_idl(
      "module demo { interface MonteCarlo {"
      " void configure(in long long samples); }; };");
  b.add_binary(binary_for("x86_64", "create_montecarlo"));
  b.add_binary(binary_for("arm", "create_montecarlo"));
  auto built = b.build(vendor_key());
  return built.value();
}

// ---------------------------------------------------------------------------
// demo.ticker / demo.display: event producer and consumer pair.

class TickerInstance : public core::ComponentInstance {
 public:
  Result<void> initialize(core::InstanceContext& ctx) override {
    ctx_ = &ctx;
    auto servant = std::make_shared<orb::DynamicServant>("demo::Ticker");
    servant->on("fire", [this](orb::ServerRequest& req) -> Result<void> {
      return ctx_->emit("ticks", req.arg(0));
    });
    return ctx.provide_port("ticker", std::move(servant)).ok()
               ? Result<void>{}
               : Result<void>{Errc::bad_state, "port registration failed"};
  }

 private:
  core::InstanceContext* ctx_ = nullptr;
};

inline Bytes ticker_package() {
  (void)core::ExecutorRegistry::global().register_symbol(
      "create_ticker", [] { return std::make_unique<TickerInstance>(); });
  pkg::ComponentDescription d;
  d.name = "demo.ticker";
  d.version = {1, 0, 0};
  d.summary = "Publishes demo.Tick events";
  d.security.vendor = "clc-demo";
  d.ports = {{pkg::PortKind::provides, "ticker", "demo::Ticker"},
             {pkg::PortKind::emits, "ticks", "demo.Tick"}};
  d.factory_interface = "demo::Ticker";
  pkg::PackageBuilder b(d);
  b.set_idl("module demo { interface Ticker { void fire(in string tag); }; };");
  b.add_binary(binary_for("x86_64", "create_ticker"));
  auto built = b.build(vendor_key());
  return built.value();
}

}  // namespace clc::testing
