// Golden wire-format fixtures: the exact bytes the CLCP framing produced
// when these fixtures were recorded. wire_golden_test.cpp re-encodes the
// same logical messages and compares byte-for-byte, so any accidental
// change to the frame layout -- magic, version, header field order, CDR
// alignment, the service-context trailer -- fails loudly instead of
// silently breaking cross-version interop.
//
// The fixtures are little-endian encodings (CDR is receiver-makes-right;
// the byte-order octet inside the encapsulation says which order follows).
// Tests skip on big-endian hosts rather than pinning a second set.
//
// To regenerate after a *deliberate* protocol change: re-encode the
// fixture messages below (see wire_golden_test.cpp for the field values),
// hex-dump the frames, and update these strings in the same commit that
// changes the protocol -- never in a separate "fix the test" commit.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace clc::testing {

// RequestMessage{id=7, key={1122334455667788, 99aabbccddeeff00}, "t::Calc",
// "add", response_expected, args={00 01 02 03}}, no service contexts.
constexpr const char* kGoldenRequest =
    "434c4350010001000700000000000000887766554433221100ffeeddccbbaa99"
    "08000000743a3a43616c63000400000061646400010000000400000000010203";

// Same request with one service context {id=0x11, data={aa bb}} trailing.
constexpr const char* kGoldenRequestWithContext =
    "434c4350010001000700000000000000887766554433221100ffeeddccbbaa99"
    "08000000743a3a43616c63000400000061646400010000000400000000010203"
    "010000001100000002000000aabb";

// ReplyMessage{id=7, no_exception, payload={01 02}}.
constexpr const char* kGoldenReply =
    "434c435001010100070000000000000000000000010000000000000002000000"
    "0102";

// ReplyMessage{id=8, system_exception, "timeout", payload="boom"}.
constexpr const char* kGoldenSystemExceptionReply =
    "434c4350010101000800000000000000020000000800000074696d656f757400"
    "04000000626f6f6d";

// Control frames: magic, version, type -- no body.
constexpr const char* kGoldenPing = "434c43500102";
constexpr const char* kGoldenPong = "434c43500103";

inline Bytes from_hex(const std::string& hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  auto nibble = [](char c) -> std::uint8_t {
    return static_cast<std::uint8_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  };
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) |
                                            nibble(hex[i + 1])));
  return out;
}

inline std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

}  // namespace clc::testing
