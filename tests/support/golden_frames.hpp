// Golden wire-format fixtures: the exact bytes the CLCP framing produced
// when these fixtures were recorded. wire_golden_test.cpp re-encodes the
// same logical messages and compares byte-for-byte, so any accidental
// change to the frame layout -- magic, version, header field order, CDR
// alignment, the service-context trailer -- fails loudly instead of
// silently breaking cross-version interop.
//
// The fixtures are little-endian encodings (CDR is receiver-makes-right;
// the byte-order octet inside the encapsulation says which order follows).
// Tests skip on big-endian hosts rather than pinning a second set.
//
// To regenerate after a *deliberate* protocol change: re-encode the
// fixture messages below (see wire_golden_test.cpp for the field values),
// hex-dump the frames, and update these strings in the same commit that
// changes the protocol -- never in a separate "fix the test" commit.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace clc::testing {

// RequestMessage{id=7, key={1122334455667788, 99aabbccddeeff00}, "t::Calc",
// "add", response_expected, args={00 01 02 03}}, no service contexts.
constexpr const char* kGoldenRequest =
    "434c4350010001000700000000000000887766554433221100ffeeddccbbaa99"
    "08000000743a3a43616c63000400000061646400010000000400000000010203";

// Same request with one service context {id=0x11, data={aa bb}} trailing.
constexpr const char* kGoldenRequestWithContext =
    "434c4350010001000700000000000000887766554433221100ffeeddccbbaa99"
    "08000000743a3a43616c63000400000061646400010000000400000000010203"
    "010000001100000002000000aabb";

// ReplyMessage{id=7, no_exception, payload={01 02}}.
constexpr const char* kGoldenReply =
    "434c435001010100070000000000000000000000010000000000000002000000"
    "0102";

// ReplyMessage{id=8, system_exception, "timeout", payload="boom"}.
constexpr const char* kGoldenSystemExceptionReply =
    "434c4350010101000800000000000000020000000800000074696d656f757400"
    "04000000626f6f6d";

// Overload robustness (PR 8): the BUSY reply an admission-controlled node
// sheds a call with, and a normal reply carrying a piggybacked credit-
// window hint. A reply with NO contexts stays byte-identical to
// kGoldenReply above -- the credit trailer is opt-in, old peers never see
// new bytes unless the server attached them.

// ReplyMessage{id=9, busy, "overloaded", payload="admission queue full"}.
constexpr const char* kGoldenBusyReply =
    "434c4350010101000900000000000000040000000b0000006f7665726c6f6164"
    "656400001400000061646d697373696f6e2071756575652066756c6c";

// kGoldenReply's message + CreditContext{window=8, queue_delay_us=2500}
// attached as service context 0x43524454 ("CRDT").
constexpr const char* kGoldenReplyWithCreditContext =
    "434c435001010100070000000000000000000000010000000000000002000000"
    "010200000100000054445243100000000100000008000000c409000000000000";

// Control frames: magic, version, type -- no body.
constexpr const char* kGoldenPing = "434c43500102";
constexpr const char* kGoldenPong = "434c43500103";

// ---------------------------------------------------------------------------
// Service directory fixtures (PR 6): the replicated directory's record and
// change-notification encodings, plus the full oneway `notify` request
// frame that carries a notification to a subscribed session. Frozen for
// the same reason as the CLCP frames above -- directory replicas and
// sessions on different builds must keep exchanging these bytes.

// ServiceRecord{"demo.counter", ref{node=5, key={1122334455667788,
// 99aabbccddeeff00}, "demo::Counter", "loop://5", inc=2}, host=5, inc=2,
// epoch=3, stamp=42000000, active, idl="module demo { interface Counter
// { }; };"} -- the trailing IDL string is what lets a session register
// the service's types from the record alone.
constexpr const char* kGoldenDirRecord =
    "010000000d00000064656d6f2e636f756e746572000000000500000000000000"
    "887766554433221100ffeeddccbbaa990e00000064656d6f3a3a436f756e7465"
    "72000000090000006c6f6f703a2f2f3500000000000000000200000000000000"
    "05000000000000000200000000000000030000000000000080de800200000000"
    "00000000280000006d6f64756c652064656d6f207b20696e7465726661636520"
    "436f756e746572207b207d3b207d3b00";

// DirNotification{moved, <record above>}.
constexpr const char* kGoldenDirNotification =
    "010100000d00000064656d6f2e636f756e746572000000000500000000000000"
    "887766554433221100ffeeddccbbaa990e00000064656d6f3a3a436f756e7465"
    "72000000090000006c6f6f703a2f2f3500000000000000000200000000000000"
    "05000000000000000200000000000000030000000000000080de800200000000"
    "00000000280000006d6f64756c652064656d6f207b20696e7465726661636520"
    "436f756e746572207b207d3b207d3b00";

// RequestMessage{id=9, key={abcdabcd00000001, 42}, "clc::DirSubscriber",
// "notify", oneway (no response), args=<notification above as DirBlob>},
// no service contexts.
constexpr const char* kGoldenDirNotifyRequest =
    "434c435001000100090000000000000001000000cdabcdab4200000000000000"
    "13000000636c633a3a446972537562736372696265720000070000006e6f7469"
    "66790000b4000000b0000000010100000d00000064656d6f2e636f756e746572"
    "000000000500000000000000887766554433221100ffeeddccbbaa990e000000"
    "64656d6f3a3a436f756e746572000000090000006c6f6f703a2f2f3500000000"
    "0000000002000000000000000500000000000000020000000000000003000000"
    "0000000080de80020000000000000000280000006d6f64756c652064656d6f20"
    "7b20696e7465726661636520436f756e746572207b207d3b207d3b00";

// Same notify request with one service context {id=0x22, data={ca fe}}.
constexpr const char* kGoldenDirNotifyRequestWithContext =
    "434c435001000100090000000000000001000000cdabcdab4200000000000000"
    "13000000636c633a3a446972537562736372696265720000070000006e6f7469"
    "66790000b4000000b0000000010100000d00000064656d6f2e636f756e746572"
    "000000000500000000000000887766554433221100ffeeddccbbaa990e000000"
    "64656d6f3a3a436f756e746572000000090000006c6f6f703a2f2f3500000000"
    "0000000002000000000000000500000000000000020000000000000003000000"
    "0000000080de80020000000000000000280000006d6f64756c652064656d6f20"
    "7b20696e7465726661636520436f756e746572207b207d3b207d3b0001000000"
    "2200000002000000cafe";

// ---------------------------------------------------------------------------
// Zone layer fixtures (PR 7): the roots-of-roots frames and the zone-epoch
// wire fields. Two invariants are frozen here: (a) the new z_* frames and
// blobs themselves, and (b) that pre-zone frames are *byte-identical* when
// the zone fields sit at their defaults -- an unzoned node keeps emitting
// exactly the bytes it emitted before the zone layer existed.

// ProtoMessage{kind="heartbeat", sender=3, fields={names: "calc@1.2.0"}}
// from an unzoned node: no "zn", no "ep"/"inc" (elided at their defaults).
constexpr const char* kGoldenHeartbeatUnzoned =
    "010000000a00000068656172746265617400000000000000030000000000000001"
    "000000060000006e616d65730000000b00000063616c6340312e322e3000000000"
    "0000";

// The same heartbeat from a node in zone 4: only the "zn" field is added.
constexpr const char* kGoldenHeartbeatZoned =
    "010000000a00000068656172746265617400000000000000030000000000000002"
    "000000060000006e616d65730000000b00000063616c6340312e322e3000000300"
    "00007a6e0000020000003400000000000000";

// z_hello{sender=64 (zone 4's root), zn=4, zep=7}: the roots-of-roots
// gossip beacon carrying the zone epoch (fields sort alphabetically, so
// "zep" precedes "zn").
constexpr const char* kGoldenZoneHello =
    "01000000080000007a5f68656c6c6f00400000000000000002000000040000007a"
    "6570000200000037000000030000007a6e0000020000003400000000000000";

// z_publish label batch: {"calc@1.2.0", "stats@2.0.1"}.
constexpr const char* kGoldenZoneLabelsBlob =
    "01000000020000000b00000063616c6340312e322e3000000c0000007374617473"
    "40322e302e3100";

// z_hits payload: [{calc 1.2.0 zone=4 root=64}, {stats 2.0.1 zone=9
// root=567}] -- versions travel as their dotted string form.
constexpr const char* kGoldenZoneHitsBlob =
    "01000000020000000500000063616c630000000006000000312e322e3000000004"
    "00000000000000400000000000000006000000737461747300000006000000322e"
    "302e3100000009000000000000003702000000000000";

// RequestMessage kGoldenRequest + ZoneContext{zone=4, epoch=7} attached as
// service context 0x5a4f4e45 ("ZONE").
constexpr const char* kGoldenRequestWithZoneContext =
    "434c4350010001000700000000000000887766554433221100ffeeddccbbaa99"
    "08000000743a3a43616c63000400000061646400010000000400000000010203"
    "01000000454e4f5a100000000100000004000000"
    "0700000000000000";

inline Bytes from_hex(const std::string& hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  auto nibble = [](char c) -> std::uint8_t {
    return static_cast<std::uint8_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  };
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) |
                                            nibble(hex[i + 1])));
  return out;
}

inline std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

}  // namespace clc::testing
