// Session + replicated service directory tests (DESIGN.md §14): record
// fencing and table convergence, directory change notification, and the
// E16 acceptance scenarios -- a session client that runs uninterrupted
// through the E13 crash-failover and E15 partition-heal storylines with
// zero application-visible errors, while a bare-Orb client surfaces them.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "dir/directory.hpp"
#include "dir/record.hpp"
#include "fault/plan.hpp"
#include "orb/resilience.hpp"
#include "session/session.hpp"
#include "support/test_components.hpp"

namespace clc::core {
namespace {

using testing::counter_package;

CohesionConfig fast_cohesion() {
  CohesionConfig cfg;
  cfg.heartbeat = seconds(1);
  cfg.group_size = 8;  // flat tree: every node is a direct child of the root
  cfg.query_timeout = seconds(3);
  return cfg;
}

FailoverConfig fast_failover() {
  FailoverConfig cfg;
  cfg.checkpoint_interval = seconds(2);
  cfg.replicas = 2;
  return cfg;
}

/// N-node world with converged membership and fast checkpointing.
struct World {
  explicit World(std::size_t n) : net(fast_cohesion(), fast_failover()) {
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(&net.add_node());
    net.settle();
  }
  [[nodiscard]] std::vector<NodeId> ids(std::size_t first,
                                        std::size_t last) const {
    std::vector<NodeId> out;
    for (std::size_t i = first; i <= last; ++i) out.push_back(nodes[i]->id());
    return out;
  }
  /// Every node's Directory servant, in node order -- the replica set a
  /// session is configured with (superset of the R true replicas, so a
  /// majority-side session can reach a restorer's local table mid-split).
  [[nodiscard]] std::vector<orb::ObjectRef> directory_refs(Node& from) const {
    std::vector<orb::ObjectRef> out;
    for (Node* n : nodes) {
      auto ref = from.directory_ref(n->id());
      EXPECT_TRUE(ref.ok()) << ref.error().to_string();
      if (ref.ok()) out.push_back(*ref);
    }
    return out;
  }
  /// Concatenated recovery logs: the determinism fingerprint.
  [[nodiscard]] std::string fingerprint() const {
    std::ostringstream out;
    for (const Node* n : nodes) {
      for (const auto& line : n->recovery_log())
        out << n->id().to_string() << "|" << line << "\n";
    }
    return out.str();
  }
  LocalNetwork net;
  std::vector<Node*> nodes;
};

/// Wire a session's time sources to the world's virtual clock, so rebind
/// backoff *advances the network* -- failure detection and failover run
/// underneath a blocked call exactly as real time would let them.
void wire_session(session::Session& s, World& w) {
  s.set_clock(&w.net.clock());
  s.set_sleep_fn([&w](Duration d) { w.net.advance(d); });
}

dir::ServiceRecord make_record(const std::string& service, std::uint64_t host,
                               std::uint64_t epoch, std::uint64_t stamp,
                               bool retired = false) {
  dir::ServiceRecord rec;
  rec.service = service;
  rec.ref.node = NodeId{host};
  rec.ref.key = Uuid{0xABC0, host};
  rec.ref.interface_name = "demo::Counter";
  rec.ref.endpoint = "loop://" + std::to_string(host);
  rec.ref.incarnation = 1;
  rec.host = NodeId{host};
  rec.incarnation = 1;
  rec.epoch = epoch;
  rec.stamp = stamp;
  rec.retired = retired;
  return rec;
}

// ------------------------------------------------------------ record fencing

TEST(Directory, NewerThanOrdersByEpochThenStampThenRetiredThenHost) {
  const auto base = make_record("s", 2, 1, 100);
  // Higher epoch wins regardless of stamp.
  EXPECT_TRUE(make_record("s", 3, 2, 50).newer_than(base));
  EXPECT_FALSE(base.newer_than(make_record("s", 3, 2, 50)));
  // Same epoch: later stamp wins.
  EXPECT_TRUE(make_record("s", 3, 1, 101).newer_than(base));
  // Same epoch and stamp: a tombstone beats an active record.
  EXPECT_TRUE(make_record("s", 2, 1, 100, true).newer_than(base));
  EXPECT_FALSE(base.newer_than(make_record("s", 2, 1, 100, true)));
  // Full tie falls back to the lower host id (total, symmetric order).
  const auto low = make_record("s", 1, 1, 100);
  EXPECT_TRUE(low.newer_than(base));
  EXPECT_FALSE(base.newer_than(low));
}

TEST(Directory, ApplyFencesStaleRecordsAndDetectsDuplicates) {
  dir::ServiceDirectory d;
  EXPECT_EQ(d.apply(make_record("s", 2, 1, 100)),
            dir::ApplyResult::accepted_new);
  EXPECT_EQ(d.apply(make_record("s", 2, 1, 100)), dir::ApplyResult::unchanged);
  // A stale stamp and a stale epoch both lose to the stored record.
  EXPECT_EQ(d.apply(make_record("s", 3, 1, 50)), dir::ApplyResult::fenced);
  EXPECT_EQ(d.apply(make_record("s", 3, 2, 200)),
            dir::ApplyResult::accepted_changed);
  EXPECT_EQ(d.apply(make_record("s", 2, 1, 300)), dir::ApplyResult::fenced)
      << "lower epoch must lose even with a later stamp";
  auto rec = d.lookup("s");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->host, NodeId{3});
}

TEST(Directory, RetirementFencesByEstablishmentEpoch) {
  dir::ServiceDirectory d;
  // The split-brain winner's record: host 3, post-verdict epoch 2.
  ASSERT_EQ(d.apply(make_record("s", 3, 2, 200)),
            dir::ApplyResult::accepted_new);
  // The loser retires *its own* copy under the epoch that established it
  // (epoch 1, pre-split -- see Node::retire_instance). Even with a later
  // stamp it must not tombstone the winner's post-verdict binding.
  EXPECT_EQ(d.apply(make_record("s", 2, 1, 900, true)),
            dir::ApplyResult::fenced);
  EXPECT_TRUE(d.lookup("s").ok());
  // A tombstone from the binding's own generation does apply.
  EXPECT_EQ(d.apply(make_record("s", 3, 2, 901, true)),
            dir::ApplyResult::accepted_changed);
  EXPECT_FALSE(d.lookup("s").ok()) << "tombstoned service still resolves";
}

TEST(Directory, NotificationsCarryTheChangeKindAndSkipSilentTombstones) {
  dir::ServiceDirectory d;
  std::vector<std::string> seen;
  d.set_notify_fn([&seen](const orb::ObjectRef&, const dir::DirNotification& n) {
    seen.push_back(std::string(dir::change_kind_name(n.kind)) + ":" +
                   n.record.service);
  });
  orb::ObjectRef sub;
  sub.node = NodeId{9};
  sub.key = Uuid{1, 9};
  sub.interface_name = "clc::DirSubscriber";
  sub.endpoint = "loop://9";
  d.subscribe(sub);
  d.subscribe(sub);  // idempotent
  EXPECT_EQ(d.subscriber_count(), 1u);

  // A tombstone arriving before any active record (gossip reorder) is
  // stored for fencing but announces nothing.
  d.apply(make_record("ghost", 4, 1, 10, true));
  EXPECT_TRUE(seen.empty());

  d.apply(make_record("s", 2, 1, 100));            // added
  d.apply(make_record("s", 3, 1, 200));            // moved
  d.apply(make_record("s", 3, 1, 300, true));      // retired
  EXPECT_EQ(seen,
            (std::vector<std::string>{"added:s", "moved:s", "retired:s"}));

  d.unsubscribe(sub);
  d.apply(make_record("s", 3, 2, 400));
  EXPECT_EQ(seen.size(), 3u) << "unsubscribed ref still notified";
}

TEST(Directory, MergeIsOrderIndependentAndTablesConvergeByteEqual) {
  // The property the anti-entropy exchange relies on: applying the same
  // record set in any order yields byte-identical tables.
  const std::vector<dir::ServiceRecord> records = {
      make_record("a", 2, 1, 100),          make_record("a", 3, 2, 50),
      make_record("a", 2, 1, 400, true),  // loser's establishment-epoch
                                          // tombstone: late stamp, old epoch
      make_record("b", 4, 1, 10),           make_record("b", 4, 1, 20, true),
  };
  dir::ServiceDirectory forward;
  dir::ServiceDirectory reverse;
  for (const auto& r : records) forward.apply(r);
  for (auto it = records.rbegin(); it != records.rend(); ++it)
    reverse.apply(*it);
  EXPECT_EQ(forward.encode_table(), reverse.encode_table());
  // And merge_table() of one into an empty replica reproduces it exactly.
  dir::ServiceDirectory merged;
  auto n = merged.merge_table(forward.encode_table());
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(merged.encode_table(), forward.encode_table());
}

// ---------------------------------------------------- gossip convergence

TEST(Directory, GossipSpreadsALocalRecordWithinBoundedRounds) {
  CohesionConfig cfg = fast_cohesion();
  cfg.anti_entropy_every = 2;  // gossip period = 2s of virtual time
  LocalNetwork net(cfg, fast_failover());
  std::vector<Node*> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(&net.add_node());
  net.settle();

  // Apply a record at a NON-replica node's local table only (the situation
  // a mid-partition restore leaves behind: the publish push could not reach
  // the replica set). Anti-entropy alone must carry it over.
  Node& publisher = *nodes[3];
  ASSERT_EQ(publisher.directory().apply(make_record("x.test", 4, 1, 100)),
            dir::ApplyResult::accepted_new);

  // Bound: the publisher trades with one replica per round (round-robin
  // over the R=2 replicas), so both replicas have the record within two
  // rounds; one heartbeat of slack covers tick phase.
  net.advance(seconds(2 * 2 + 1));
  const Bytes want = publisher.directory().encode_table();
  for (std::size_t i : {0u, 1u}) {
    EXPECT_EQ(nodes[i]->directory().encode_table(), want)
        << "replica " << nodes[i]->id().to_string()
        << " did not converge within two anti-entropy rounds";
    EXPECT_TRUE(nodes[i]->directory().lookup("x.test").ok());
  }
}

// --------------------------------------------------- session fundamentals

TEST(Session, PublishPushesNotificationsIntoTheSessionCache) {
  World w(3);
  Node& client = *w.nodes[2];
  session::SessionConfig cfg;
  cfg.directory = w.directory_refs(client);
  session::Session s(client.orb(), cfg, &client.tracer());
  wire_session(s, w);
  EXPECT_EQ(s.cache_size(), 0u);

  // A service appearing *after* attach reaches the cache by push alone.
  Node& host = *w.nodes[1];
  ASSERT_TRUE(host.install(counter_package()).ok());
  ASSERT_TRUE(host.acquire_local("demo.counter", VersionConstraint{}).ok());
  EXPECT_EQ(s.cache_size(), 1u);
  auto cached = s.cached("demo.counter");
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->host, host.id());
  EXPECT_GE(
      client.orb().metrics().counter("dir.notifications").value(), 1u);

  // The next resolve is a pure cache hit, and calls work end to end.
  ASSERT_TRUE(s.resolve("demo.counter").ok());
  EXPECT_GE(client.orb().metrics().counter("session.cache_hits").value(), 1u);
  ASSERT_TRUE(s.call("demo.counter", "increment").ok());
  auto value = s.call("demo.counter", "value");
  ASSERT_TRUE(value.ok()) << value.error().to_string();
  EXPECT_EQ(*value, orb::Value(std::int64_t{1}));
}

TEST(Session, NodeResolveShortCircuitsThroughAttachedSessionCache) {
  World w(3);
  Node& host = *w.nodes[1];
  Node& client = *w.nodes[2];
  ASSERT_TRUE(host.install(counter_package()).ok());
  ASSERT_TRUE(host.acquire_local("demo.counter", VersionConstraint{}).ok());
  w.net.settle();

  session::SessionConfig cfg;
  cfg.directory = w.directory_refs(client);
  session::Session s(client.orb(), cfg);
  wire_session(s, w);
  ASSERT_TRUE(s.resolve("demo.counter").ok());  // warm the cache

  client.attach_session(&s);
  auto bound = client.resolve("demo.counter", VersionConstraint{},
                              Binding::remote);
  client.attach_session(nullptr);
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  EXPECT_EQ(bound->host, host.id());
  EXPECT_GE(client.metrics().counter("node.query_cache_hits").value(), 1u)
      << "resolve went to a distributed query despite the session cache";
}

TEST(Session, AsyncInvocationReportsAttemptsAndFinalEndpoint) {
  World w(3);
  Node& a = *w.nodes[0];
  Node& b = *w.nodes[1];
  ASSERT_TRUE(b.install(counter_package()).ok());
  w.net.settle();
  auto bound = a.resolve("demo.counter", VersionConstraint{}, Binding::remote);
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();

  // Healthy path: one attempt, landed on the host's endpoint.
  auto ok = a.orb().invoke_async(bound->primary, "value", {},
                                 {.idempotent = true});
  ASSERT_TRUE(ok.take().ok());
  EXPECT_EQ(ok.attempts(), 1);
  EXPECT_EQ(ok.final_endpoint(), bound->primary.endpoint);

  // Dead endpoint: the idempotent retry machinery burns every configured
  // attempt, and the handle reports the totals after completion.
  w.net.crash(b.id());
  auto dead = a.orb().invoke_async(bound->primary, "value", {},
                                   {.idempotent = true});
  auto outcome = dead.take();
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(orb::errc_is_retryable(outcome.error().code));
  EXPECT_EQ(dead.attempts(),
            a.orb().invocation_policies().retry.max_attempts);
  EXPECT_EQ(dead.final_endpoint(), bound->primary.endpoint);
}

// ------------------------------------------------- E16a: crash failover

TEST(SessionE16, SessionRidesThroughCrashFailoverWithZeroErrors) {
  World w(5);
  Node& victim = *w.nodes[4];
  Node& client = *w.nodes[3];
  ASSERT_TRUE(victim.install(counter_package()).ok());
  auto hosted = victim.acquire_local("demo.counter", VersionConstraint{});
  ASSERT_TRUE(hosted.ok());
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(victim.orb().call(hosted->primary, "increment").ok());
  w.net.advance(seconds(5));  // checkpoints reach the holders

  session::SessionConfig cfg;
  cfg.directory = w.directory_refs(client);
  session::Session s(client.orb(), cfg, &client.tracer());
  wire_session(s, w);

  // Pre-crash traffic through the session, plus a bare-Orb control client
  // that resolves once and keeps the raw reference.
  for (int i = 0; i < 2; ++i)
    ASSERT_TRUE(s.call("demo.counter", "increment").ok());
  auto pre = s.call("demo.counter", "value");
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(*pre, orb::Value(std::int64_t{5}));
  auto bare = client.resolve("demo.counter", VersionConstraint{},
                             Binding::remote);
  ASSERT_TRUE(bare.ok());
  victim.checkpoint_now();  // freeze value=5 into the holders' checkpoints

  w.net.crash(victim.id());

  // The headline: every post-crash session call succeeds. The first one
  // blocks inside the rebind loop while its backoff sleeps advance virtual
  // time through detection, the death verdict and the holder's restore.
  for (int i = 0; i < 5; ++i) {
    auto r = s.call("demo.counter", "increment");
    ASSERT_TRUE(r.ok()) << "post-crash call " << i << ": "
                        << r.error().to_string();
  }
  auto post = s.call("demo.counter", "value");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(*post, orb::Value(std::int64_t{10}))
      << "restored state lost or duplicated increments";

  // The session rebound at least once, surfaced zero errors, and heard
  // about the failover through directory pushes.
  auto& m = client.orb().metrics();
  EXPECT_GE(m.counter("session.rebinds").value(), 1u);
  EXPECT_EQ(m.counter("session.errors").value(), 0u);
  EXPECT_GE(m.counter("dir.notifications").value(), 1u);
  auto now_hosted = s.cached("demo.counter");
  ASSERT_TRUE(now_hosted.ok());
  EXPECT_NE(now_hosted->host, victim.id());

  // The bare-Orb client, by contrast, surfaces the crash to the app.
  auto stale = client.orb().call(bare->primary, "value");
  ASSERT_FALSE(stale.ok()) << "stale pre-crash reference still answers";
  EXPECT_TRUE(orb::errc_is_retryable(stale.error().code));
}

// --------------------------------------------- E16b: partition and heal

TEST(SessionE16, SessionRidesThroughPartitionHealWithZeroErrors) {
  World w(5);
  Node& origin = *w.nodes[1];  // node 2: hosts the instance (minority side)
  Node& restorer = *w.nodes[2];  // node 3: lowest majority-side holder
  Node& client = *w.nodes[3];  // node 4: session client (majority side)
  ASSERT_TRUE(origin.install(counter_package()).ok());
  auto hosted = origin.acquire_local("demo.counter", VersionConstraint{});
  ASSERT_TRUE(hosted.ok());
  for (int i = 0; i < 7; ++i)
    ASSERT_TRUE(origin.orb().call(hosted->primary, "increment").ok());
  w.net.advance(seconds(5));  // checkpoints reach the holders

  session::SessionConfig cfg;
  cfg.directory = w.directory_refs(client);
  session::Session s(client.orb(), cfg, &client.tracer());
  wire_session(s, w);
  auto pre = s.call("demo.counter", "value");
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(*pre, orb::Value(std::int64_t{7}));
  auto bare = client.resolve("demo.counter", VersionConstraint{},
                             Binding::remote);
  ASSERT_TRUE(bare.ok());

  w.net.partition(w.ids(0, 1), w.ids(2, 4));  // {1,2} | {3,4,5}

  // Majority-side session traffic: the cached reference points across the
  // cut, so the first call rebinds -- its backoff drives the majority
  // through promotion, quorum eviction and the checkpoint restore, then
  // the directory lookup finds the restorer's *local* table (the true
  // replicas are both minority-side; the session's replica list spans all
  // nodes precisely for this).
  for (int i = 0; i < 2; ++i) {
    auto r = s.call("demo.counter", "increment");
    ASSERT_TRUE(r.ok()) << "mid-partition call " << i << ": "
                        << r.error().to_string();
  }
  auto mid = s.call("demo.counter", "value");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, orb::Value(std::int64_t{9}));
  auto rebound = s.cached("demo.counter");
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(rebound->host, restorer.id());
  EXPECT_GE(rebound->epoch, 2u) << "restored record missing the new epoch";

  // The bare client's pre-split reference fails across the cut.
  auto cut = client.orb().call(bare->primary, "value");
  ASSERT_FALSE(cut.ok());
  EXPECT_TRUE(orb::errc_is_retryable(cut.error().code));

  w.net.heal_partition();
  w.net.advance(seconds(40));  // reconciliation + anti-entropy rounds

  // Post-heal: the origin's copy yielded (dual-primary resolution) and its
  // establishment-epoch tombstone cannot outrank the winner, so the
  // session's binding survives untouched and calls keep succeeding.
  auto post = s.call("demo.counter", "value");
  ASSERT_TRUE(post.ok()) << post.error().to_string();
  EXPECT_EQ(*post, orb::Value(std::int64_t{9}));
  EXPECT_EQ(client.orb().metrics().counter("session.errors").value(), 0u);

  // Directory convergence after the heal, bounded by the anti-entropy
  // cadence (40s covers the cohesion reconciliation plus several rounds):
  // the two true replicas and the restorer hold byte-identical tables
  // whose record names the majority-side survivor.
  const Bytes want = restorer.directory().encode_table();
  EXPECT_EQ(w.nodes[0]->directory().encode_table(), want);
  EXPECT_EQ(w.nodes[1]->directory().encode_table(), want);
  auto rec = w.nodes[0]->directory().lookup("demo.counter");
  ASSERT_TRUE(rec.ok()) << "loser's tombstone killed the winner's record";
  EXPECT_EQ(rec->host, restorer.id());
}

// ----------------------------------------------------- seeded chaos run

struct SessionChaosOutcome {
  int successes = 0;
  std::string fingerprint;
  std::vector<std::string> session_events;

  bool operator==(const SessionChaosOutcome&) const = default;
};

/// 5 nodes, 10% message drop from a seeded plan, a mid-run crash of the
/// hosting node: the session client must sustain (near-)total success, and
/// the whole run must replay byte-identically from the seed.
SessionChaosOutcome run_session_chaos(std::uint64_t seed) {
  World w(5);
  Node& victim = *w.nodes[4];
  Node& client = *w.nodes[1];
  EXPECT_TRUE(victim.install(counter_package()).ok());
  EXPECT_TRUE(victim.acquire_local("demo.counter", VersionConstraint{}).ok());
  w.net.advance(seconds(5));

  session::SessionConfig cfg;
  cfg.directory = w.directory_refs(client);
  session::Session s(client.orb(), cfg);
  wire_session(s, w);

  fault::FaultPlan plan;
  plan.seed = seed;
  plan.drop_probability = 0.1;
  w.net.faults().injector().arm(plan);

  SessionChaosOutcome out;
  constexpr int kCalls = 100;
  for (int i = 0; i < kCalls; ++i) {
    if (i == kCalls / 2) w.net.crash(victim.id());
    // No value assertions here: a dropped *reply* makes the idempotent
    // retry re-execute the increment, so only success/failure is checked.
    out.successes += s.call("demo.counter", "increment").ok();
  }
  w.net.faults().injector().disarm();
  EXPECT_GE(out.successes, (kCalls * 999) / 1000)
      << "session availability under 10% drop fell below 99.9%";

  out.fingerprint = w.fingerprint();
  out.session_events = s.event_log();
  return out;
}

// ------------------------------------ group binding + health-aware rebind

// DESIGN.md §17: members published under "<group>#<tag>" form a replica
// group; resolve_group ranks them by endpoint health and call_group rides
// a member crash through the hedged path -- the first call after the
// crash succeeds via an immediate hedge, and the ranking then demotes the
// crashed member so later calls bind straight to the survivor.
TEST(Session, GroupCallRidesMemberCrashThroughHedgeAndRebindsByHealth) {
  World w(4);
  Node& a = *w.nodes[1];
  Node& b = *w.nodes[2];
  Node& client = *w.nodes[3];
  ASSERT_TRUE(a.install(counter_package()).ok());
  ASSERT_TRUE(b.install(counter_package()).ok());
  // Install (without acquiring) on the client too: call_group marshals
  // through the local interface repository.
  ASSERT_TRUE(client.install(counter_package()).ok());
  auto ha = a.acquire_local("demo.counter", VersionConstraint{});
  auto hb = b.acquire_local("demo.counter", VersionConstraint{});
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  a.publish_service("demo.group#1", ha->primary);
  b.publish_service("demo.group#2", hb->primary);
  w.net.advance(seconds(10));  // records replicate to every directory

  // Hedging on, retries off: a dead primary surfaces after one attempt
  // and the hedge leg -- not the retry loop -- covers it.
  orb::InvocationPolicies pol;
  pol.hedge.enabled = true;
  client.orb().set_invocation_policies(pol);

  session::SessionConfig cfg;
  cfg.directory = w.directory_refs(client);
  session::Session s(client.orb(), cfg);
  wire_session(s, w);

  auto members = s.resolve_group("demo.group");
  ASSERT_TRUE(members.ok()) << members.error().to_string();
  ASSERT_EQ(members->size(), 2u);
  auto warm = s.call_group("demo.group", "value");
  ASSERT_TRUE(warm.ok()) << warm.error().to_string();
  auto& metrics = client.orb().metrics();
  EXPECT_EQ(metrics.counter("orb.hedges").value(), 0u);

  // Crash whichever member the health ranking currently favours. The next
  // call still lands on it first, fails fast, and the hedge leg to the
  // survivor wins without an application-visible error.
  auto ranked = s.resolve_group("demo.group");
  ASSERT_TRUE(ranked.ok());
  w.net.crash(ranked->front().node);
  auto r = s.call_group("demo.group", "value");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(metrics.counter("orb.hedges").value(), 1u);
  EXPECT_EQ(metrics.counter("orb.hedge_wins").value(), 1u);

  // The recorded failure streak now demotes the crashed member: the next
  // resolve reorders the group (counted as a health rebind) and the call
  // binds straight to the survivor -- no further hedges spent.
  ASSERT_TRUE(s.call_group("demo.group", "value").ok());
  EXPECT_GE(metrics.counter("session.rebind_health").value(), 1u);
  EXPECT_EQ(metrics.counter("orb.hedges").value(), 1u);
}

TEST(SessionChaos, SustainsSuccessThroughDropsAndCrashAndReplaysExactly) {
  const SessionChaosOutcome first = run_session_chaos(0x5e55);
  EXPECT_FALSE(first.fingerprint.empty()) << "no recovery activity recorded";
  EXPECT_FALSE(first.session_events.empty());
  const SessionChaosOutcome second = run_session_chaos(0x5e55);
  EXPECT_EQ(first, second) << "same seed, different chaos run";
}

}  // namespace
}  // namespace clc::core
