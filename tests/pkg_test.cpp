// Tests for the packaging substrate: SHA-256/HMAC against published
// vectors, LZSS round-trips (property-based), archive integrity, descriptor
// schema, and end-to-end package build/verify/slice.
#include <gtest/gtest.h>

#include "pkg/archive.hpp"
#include "pkg/descriptor.hpp"
#include "pkg/lzss.hpp"
#include "pkg/package.hpp"
#include "pkg/sha256.hpp"
#include "util/rng.hpp"

namespace clc::pkg {
namespace {

// ---------------------------------------------------------------- sha256

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(digest_hex(Sha256::hash(bytes_of(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(digest_hex(Sha256::hash(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      digest_hex(Sha256::hash(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(bytes_of(chunk));
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes data(rng.next_below(5000));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto oneshot = Sha256::hash(data);
    Sha256 h;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t take =
          std::min<std::size_t>(rng.next_below(130) + 1, data.size() - pos);
      h.update(BytesView(data.data() + pos, take));
      pos += take;
    }
    EXPECT_EQ(h.finish(), oneshot);
  }
}

TEST(Hmac, Rfc4231Vectors) {
  // RFC 4231 test case 1.
  Bytes key(20, 0x0b);
  EXPECT_EQ(digest_hex(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2 ("Jefe").
  EXPECT_EQ(digest_hex(hmac_sha256(bytes_of("Jefe"),
                                   bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Long key (> block size) gets hashed first: test case 6.
  Bytes long_key(131, 0xaa);
  EXPECT_EQ(digest_hex(hmac_sha256(
                long_key, bytes_of("Test Using Larger Than Block-Size Key - "
                                   "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---------------------------------------------------------------- lzss

TEST(Lzss, EmptyInput) {
  const Bytes c = lzss_compress({});
  auto d = lzss_decompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->empty());
}

TEST(Lzss, RepetitiveInputCompressesWell) {
  std::string text;
  for (int i = 0; i < 200; ++i)
    text += "the quick brown fox jumps over the lazy dog. ";
  const Bytes input = bytes_of(text);
  const Bytes c = lzss_compress(input);
  EXPECT_LT(c.size(), input.size() / 4);
  auto d = lzss_decompress(c);
  ASSERT_TRUE(d.ok()) << d.error().to_string();
  EXPECT_EQ(*d, input);
}

TEST(Lzss, RunLengthOverlappingMatch) {
  Bytes input(10000, 'x');
  const Bytes c = lzss_compress(input);
  EXPECT_LT(c.size(), 200u);
  auto d = lzss_decompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, input);
}

TEST(Lzss, IncompressibleGrowthBounded) {
  Rng rng(77);
  Bytes input(4096);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u64());
  const Bytes c = lzss_compress(input);
  // Worst case: 1 flag bit per literal + 4 header bytes.
  EXPECT_LE(c.size(), input.size() + input.size() / 8 + 8);
  auto d = lzss_decompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, input);
}

class LzssRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LzssRoundTrip, RandomStructuredBuffers) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    // Structured randomness: random alphabet size and repeated chunks, the
    // shapes real descriptors/binaries have.
    Bytes input;
    const int chunks = static_cast<int>(rng.next_in(0, 40));
    const int alphabet = static_cast<int>(rng.next_in(2, 60));
    Bytes motif(rng.next_below(300) + 1);
    for (auto& b : motif)
      b = static_cast<std::uint8_t>(rng.next_below(alphabet));
    for (int c = 0; c < chunks; ++c) {
      if (rng.chance(0.5)) {
        input.insert(input.end(), motif.begin(), motif.end());
      } else {
        const auto extra = rng.next_below(200);
        for (std::uint64_t i = 0; i < extra; ++i)
          input.push_back(static_cast<std::uint8_t>(rng.next_below(alphabet)));
      }
    }
    const Bytes c = lzss_compress(input);
    auto d = lzss_decompress(c);
    ASSERT_TRUE(d.ok()) << d.error().to_string();
    EXPECT_EQ(*d, input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzssRoundTrip,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(Lzss, CorruptStreamsRejected) {
  const Bytes input = bytes_of("abcabcabcabcabcabc");
  Bytes c = lzss_compress(input);
  // Truncations at every point must fail cleanly, never crash or hang.
  for (std::size_t cut = 0; cut < c.size(); ++cut) {
    auto d = lzss_decompress(BytesView(c.data(), cut));
    EXPECT_FALSE(d.ok()) << "cut=" << cut;
  }
  // Claimed size longer than the stream delivers.
  Bytes huge = c;
  huge[0] = 0xff;
  huge[1] = 0xff;
  EXPECT_FALSE(lzss_decompress(huge).ok());
}

// ---------------------------------------------------------------- archive

TEST(Archive, WriteExtractRoundTrip) {
  ArchiveWriter w;
  const Bytes text = bytes_of(std::string(500, 'z') + "descriptor");
  Bytes blob(2000);
  Rng rng(3);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_u64());
  ASSERT_TRUE(w.add("META/descriptor.xml", text).ok());
  ASSERT_TRUE(w.add("bin/x86_64-linux-clc", blob).ok());
  ASSERT_TRUE(w.add("empty", {}).ok());

  auto reader = ArchiveReader::open(w.finish());
  ASSERT_TRUE(reader.ok()) << reader.error().to_string();
  ASSERT_EQ(reader->entries().size(), 3u);
  EXPECT_TRUE(reader->contains("empty"));
  EXPECT_FALSE(reader->contains("nope"));
  EXPECT_EQ(*reader->extract("META/descriptor.xml"), text);
  EXPECT_EQ(*reader->extract("bin/x86_64-linux-clc"), blob);
  EXPECT_TRUE(reader->extract("empty")->empty());
  EXPECT_FALSE(reader->extract("nope").ok());
  // Repetitive entry was stored compressed; random one raw.
  EXPECT_TRUE(reader->entries()[0].compressed);
  EXPECT_FALSE(reader->entries()[1].compressed);
}

TEST(Archive, DuplicateAndEmptyNamesRejected) {
  ArchiveWriter w;
  ASSERT_TRUE(w.add("a", bytes_of("x")).ok());
  EXPECT_FALSE(w.add("a", bytes_of("y")).ok());
  EXPECT_FALSE(w.add("", bytes_of("y")).ok());
}

TEST(Archive, CorruptPayloadDetectedByDigest) {
  ArchiveWriter w;
  ASSERT_TRUE(w.add("f", bytes_of("payload-payload-payload"), true).ok());
  Bytes data = w.finish();
  // Flip one byte somewhere in the stored payload region.
  bool flipped_detected = false;
  for (std::size_t i = 10; i < data.size(); ++i) {
    Bytes mutated = data;
    mutated[i] ^= 0x40;
    auto reader = ArchiveReader::open(std::move(mutated));
    if (!reader.ok()) {
      flipped_detected = true;
      continue;
    }
    auto content = reader->extract("f");
    if (!content.ok() || *content != bytes_of("payload-payload-payload"))
      flipped_detected = true;
  }
  EXPECT_TRUE(flipped_detected);
}

TEST(Archive, NotAnArchiveRejected) {
  EXPECT_FALSE(ArchiveReader::open(bytes_of("garbage")).ok());
  EXPECT_FALSE(ArchiveReader::open({}).ok());
}

TEST(Archive, PartialFetchSmallerThanTotal) {
  ArchiveWriter w;
  ASSERT_TRUE(w.add("meta", bytes_of("small"), true).ok());
  Bytes big(100000, 7);
  ASSERT_TRUE(w.add("big1", big, true).ok());
  ASSERT_TRUE(w.add("big2", big, true).ok());
  Bytes data = w.finish();
  auto reader = ArchiveReader::open(std::move(data));
  ASSERT_TRUE(reader.ok());
  const auto partial = reader->partial_fetch_size({"meta", "big1"});
  const auto full = reader->partial_fetch_size({"meta", "big1", "big2"});
  EXPECT_LT(partial, full);
  EXPECT_LT(partial, full - 90000);
}

// ---------------------------------------------------------------- descriptor

ComponentDescription sample_description() {
  ComponentDescription d;
  d.name = "video.mpeg.decoder";
  d.version = *Version::parse("2.1.3");
  d.summary = "Decodes MPEG streams";
  d.hardware.architectures = {"x86_64", "arm"};
  d.hardware.operating_systems = {"linux"};
  d.hardware.min_memory_kb = 4096;
  d.dependencies.push_back(
      {"codec.core", *VersionConstraint::parse(">=2.0")});
  d.dependencies.push_back({"util.buffers", *VersionConstraint::parse("any")});
  d.mobile = true;
  d.replicable = true;
  d.stateless = false;
  d.aggregatable = false;
  d.license = {"pay-per-use", 0.25};
  d.security.vendor = "acme";
  d.qos = {0.75, 8192, 512.0};
  d.ports = {
      {PortKind::provides, "frames", "vid::FrameSink"},
      {PortKind::uses, "stream", "vid::Stream"},
      {PortKind::emits, "stats", "vid::Stats"},
      {PortKind::consumes, "control", "vid::Control"},
  };
  d.factory_interface = "vid::Decoder";
  d.framework_services = {"events", "migration"};
  return d;
}

TEST(Descriptor, XmlRoundTrip) {
  const ComponentDescription d = sample_description();
  auto back = ComponentDescription::from_xml(d.to_xml());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->name, d.name);
  EXPECT_EQ(back->version, d.version);
  EXPECT_EQ(back->summary, d.summary);
  EXPECT_EQ(back->hardware.architectures, d.hardware.architectures);
  EXPECT_EQ(back->hardware.min_memory_kb, d.hardware.min_memory_kb);
  ASSERT_EQ(back->dependencies.size(), 2u);
  EXPECT_EQ(back->dependencies[0].to_string(), "codec.core >=2.0.0");
  EXPECT_EQ(back->mobile, d.mobile);
  EXPECT_EQ(back->replicable, d.replicable);
  EXPECT_EQ(back->license.model, "pay-per-use");
  EXPECT_DOUBLE_EQ(back->license.cost_per_use, 0.25);
  EXPECT_EQ(back->security.vendor, "acme");
  EXPECT_DOUBLE_EQ(back->qos.max_cpu_load, 0.75);
  EXPECT_EQ(back->qos.max_memory_kb, 8192u);
  ASSERT_EQ(back->ports.size(), 4u);
  EXPECT_EQ(back->ports[1].kind, PortKind::uses);
  EXPECT_EQ(back->ports[1].type, "vid::Stream");
  EXPECT_EQ(back->factory_interface, "vid::Decoder");
  EXPECT_EQ(back->framework_services,
            (std::vector<std::string>{"events", "migration"}));
}

TEST(Descriptor, MinimalDocument) {
  auto d = ComponentDescription::from_xml(
      "<softpkg name=\"tiny\" version=\"1.0\"/>");
  ASSERT_TRUE(d.ok()) << d.error().to_string();
  EXPECT_EQ(d->name, "tiny");
  EXPECT_TRUE(d->mobile);         // defaults
  EXPECT_FALSE(d->replicable);
  EXPECT_EQ(d->license.model, "free");
}

TEST(Descriptor, Errors) {
  EXPECT_FALSE(ComponentDescription::from_xml("<x/>").ok());
  EXPECT_FALSE(ComponentDescription::from_xml("<softpkg version=\"1.0\"/>").ok());
  EXPECT_FALSE(ComponentDescription::from_xml("<softpkg name=\"a\"/>").ok());
  EXPECT_FALSE(ComponentDescription::from_xml(
                   "<softpkg name=\"a\" version=\"1.0\">"
                   "<ports><teleports name=\"p\" type=\"T\"/></ports>"
                   "</softpkg>")
                   .ok());
  EXPECT_FALSE(ComponentDescription::from_xml(
                   "<softpkg name=\"a\" version=\"1.0\">"
                   "<ports><uses name=\"p\" type=\"T\"/>"
                   "<provides name=\"p\" type=\"U\"/></ports>"
                   "</softpkg>")
                   .ok());  // duplicate port name
  EXPECT_FALSE(ComponentDescription::from_xml(
                   "<softpkg name=\"a\" version=\"1.0\">"
                   "<dependencies><dependency name=\"d\" constraint=\"bogus\"/>"
                   "</dependencies></softpkg>")
                   .ok());
}

TEST(Descriptor, HardwareMatching) {
  const ComponentDescription d = sample_description();
  EXPECT_TRUE(d.hardware.allows("x86_64", "linux", "clc", 8192));
  EXPECT_TRUE(d.hardware.allows("arm", "linux", "anyorb", 4096));
  EXPECT_FALSE(d.hardware.allows("sparc", "linux", "clc", 8192));
  EXPECT_FALSE(d.hardware.allows("x86_64", "windows", "clc", 8192));
  EXPECT_FALSE(d.hardware.allows("x86_64", "linux", "clc", 1024));
  const HardwareSpec any_hw;
  EXPECT_TRUE(any_hw.allows("pda", "palmos", "micro", 64));
}

// ---------------------------------------------------------------- package

Bytes make_image(std::size_t size, std::uint8_t seed) {
  Bytes image(size);
  for (std::size_t i = 0; i < size; ++i)
    image[i] = static_cast<std::uint8_t>(seed + i % 97);
  return image;
}

Result<Bytes> build_sample_package() {
  PackageBuilder b(sample_description());
  b.set_idl("module vid { interface Decoder { void decode(in string s); }; };");
  b.add_binary({"x86_64", "linux", "clc", "create_decoder",
                make_image(50000, 1)});
  b.add_binary({"arm", "linux", "clc", "create_decoder_arm",
                make_image(20000, 2)});
  return b.build(bytes_of("acme-secret-key"));
}

TEST(Package, BuildOpenRoundTrip) {
  auto data = build_sample_package();
  ASSERT_TRUE(data.ok()) << data.error().to_string();
  auto p = Package::open(*data);
  ASSERT_TRUE(p.ok()) << p.error().to_string();
  EXPECT_EQ(p->description().name, "video.mpeg.decoder");
  EXPECT_NE(p->idl().find("interface Decoder"), std::string::npos);
  EXPECT_EQ(p->binary_entries().size(), 2u);
  EXPECT_TRUE(p->supports("arm", "linux", "clc"));
  EXPECT_FALSE(p->supports("sparc", "solaris", "clc"));
  auto bin = p->binary_for("x86_64", "linux", "clc");
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(bin->entry_symbol, "create_decoder");
  EXPECT_EQ(bin->image.size(), 50000u);
  EXPECT_FALSE(p->binary_for("sparc", "solaris", "clc").ok());
}

TEST(Package, SignatureVerification) {
  auto data = build_sample_package();
  ASSERT_TRUE(data.ok());
  auto p = Package::open(*data);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->verify(bytes_of("acme-secret-key")).ok());
  auto bad = p->verify(bytes_of("wrong-key"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::signature_mismatch);
}

TEST(Package, TamperedBinaryFailsVerification) {
  auto data = build_sample_package();
  ASSERT_TRUE(data.ok());
  // Re-build the archive with one binary swapped, keeping the signature.
  auto original = ArchiveReader::open(*data);
  ASSERT_TRUE(original.ok());
  ArchiveWriter w;
  for (const auto& e : original->entries()) {
    Bytes content = *original->extract(e.name);
    if (e.name == "bin/arm-linux-clc") content[10] ^= 0xff;
    ASSERT_TRUE(w.add(e.name, content).ok());
  }
  auto p = Package::open(w.finish());
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->verify(bytes_of("acme-secret-key")).ok());
}

TEST(Package, RequiresBinary) {
  PackageBuilder b(sample_description());
  b.set_idl("module vid {};");
  EXPECT_FALSE(b.build(bytes_of("k")).ok());
}

TEST(Package, DuplicatePlatformRejected) {
  PackageBuilder b(sample_description());
  b.set_idl("module vid {};");
  b.add_binary({"x86_64", "linux", "clc", "a", make_image(100, 1)});
  b.add_binary({"x86_64", "linux", "clc", "b", make_image(100, 2)});
  EXPECT_FALSE(b.build(bytes_of("k")).ok());
}

TEST(Package, SliceForPdaIsSmaller) {
  auto data = build_sample_package();
  ASSERT_TRUE(data.ok());
  auto p = Package::open(*data);
  ASSERT_TRUE(p.ok());
  auto slice = p->slice_for_platform("arm", "linux", "clc");
  ASSERT_TRUE(slice.ok()) << slice.error().to_string();
  EXPECT_LT(slice->size(), p->total_size());
  auto sliced = Package::open(*slice);
  ASSERT_TRUE(sliced.ok()) << sliced.error().to_string();
  EXPECT_EQ(sliced->description().name, p->description().name);
  EXPECT_TRUE(sliced->supports("arm", "linux", "clc"));
  EXPECT_FALSE(sliced->supports("x86_64", "linux", "clc"));
  EXPECT_FALSE(sliced->slice_for_platform("x86_64", "linux", "clc").ok());
  // Partial fetch accounting mirrors the slice economics.
  EXPECT_LT(p->partial_fetch_size("arm", "linux", "clc"), p->total_size());
}

TEST(Package, OpenRejectsNonPackages) {
  EXPECT_FALSE(Package::open(bytes_of("junk")).ok());
  ArchiveWriter w;
  ASSERT_TRUE(w.add("random", bytes_of("data")).ok());
  EXPECT_FALSE(Package::open(w.finish()).ok());
}

}  // namespace
}  // namespace clc::pkg
