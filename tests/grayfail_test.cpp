// Gray-failure tolerance tier (DESIGN.md §17). Four layers under test:
//
//  * PhiAccrualDetector -- warm-up, monotone suspicion, the slow-peer
//    verdict with hysteresis, and determinism: the same arrival trace
//    replays to a byte-identical phi timeline (the property the whole
//    adaptive detection stack leans on).
//  * CohesionNode under the discrete-event simulator -- a peer whose
//    process merely runs slow is marked `slow` but NEVER tombstoned, while
//    a genuinely dead peer is tombstoned within twice the fixed
//    dead_after bound; and two same-seed runs produce identical phi
//    timelines end to end.
//  * SimNetwork gray-fault injection -- sender-side degradation is one-way
//    asymmetric, stuck-worker stalls defer frames without loss, and
//    GraySchedule::random replays from the seed alone.
//  * Orb hedged requests + health-aware ranking -- failure-triggered and
//    timer-fired hedges, the ~5% budget gate, replica ranking by health
//    score, and the failure-streak half-life decay.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "core/cohesion.hpp"
#include "core/phi.hpp"
#include "fault/faulty_transport.hpp"
#include "fault/plan.hpp"
#include "orb/orb.hpp"
#include "orb/resilience.hpp"
#include "orb/tcp.hpp"
#include "orb/transport.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace clc {
namespace {

// ------------------------------------------------------------ phi accrual

core::PhiConfig small_phi() {
  core::PhiConfig pc;
  pc.expected_interval = milliseconds(100);
  pc.window = 4;
  pc.min_samples = 2;
  return pc;
}

TEST(Phi, ColdDetectorReportsNothingUntilWarmed) {
  core::PhiAccrualDetector d(small_phi());
  EXPECT_FALSE(d.warmed());
  EXPECT_EQ(d.phi(seconds(10)), 0.0);
  d.record_arrival(0);  // anchors time only, no interval yet
  EXPECT_EQ(d.sample_count(), 0u);
  d.record_arrival(100'000);  // first interval
  EXPECT_FALSE(d.warmed());
  EXPECT_EQ(d.phi(seconds(10)), 0.0)
      << "an unwarmed detector must defer to the fixed bounds";
  d.record_arrival(200'000);  // second interval: min_samples reached
  EXPECT_TRUE(d.warmed());
  EXPECT_GT(d.phi(seconds(10)), 0.0);
}

TEST(Phi, SuspicionGrowsWithSilence) {
  core::PhiAccrualDetector d(small_phi());
  TimePoint t = 0;
  for (int i = 0; i < 6; ++i) {
    d.record_arrival(t);
    t += milliseconds(100);
  }
  const double quiet = d.phi(milliseconds(50));
  const double late = d.phi(milliseconds(300));
  const double dead = d.phi(seconds(2));
  EXPECT_LT(quiet, late);
  EXPECT_LT(late, dead);
}

TEST(Phi, SameTraceReplaysByteIdentical) {
  // A jittered trace drawn once from a seeded Rng, fed to two detectors:
  // every probe must agree exactly (==, not near) -- the detector is pure
  // arithmetic, so any divergence would break chaos-run replayability.
  Rng rng(0xFEED);
  std::vector<TimePoint> trace;
  TimePoint t = 0;
  for (int i = 0; i < 64; ++i) {
    t += milliseconds(90) + static_cast<Duration>(rng.next_below(20'001));
    trace.push_back(t);
  }
  core::PhiConfig pc;
  pc.expected_interval = milliseconds(100);
  core::PhiAccrualDetector a(pc);
  core::PhiAccrualDetector b(pc);
  for (TimePoint tp : trace) {
    a.record_arrival(tp);
    b.record_arrival(tp);
  }
  for (Duration silence :
       {milliseconds(50), milliseconds(150), milliseconds(300), seconds(1)}) {
    EXPECT_EQ(a.phi(silence), b.phi(silence));
  }
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stddev(), b.stddev());
  EXPECT_EQ(a.slow(), b.slow());
  EXPECT_EQ(a.sample_count(), b.sample_count());
}

TEST(Phi, SlowVerdictIsStickyUntilRecoveryThreshold) {
  core::PhiAccrualDetector d(small_phi());
  TimePoint t = 0;
  const auto feed = [&](Duration interval, int n) {
    for (int i = 0; i < n; ++i) {
      t += interval;
      d.record_arrival(t);
    }
  };
  d.record_arrival(t);
  feed(milliseconds(100), 5);  // on time: mean == expected
  EXPECT_FALSE(d.slow());
  feed(milliseconds(300), 4);  // window all 3x expected -> slow
  EXPECT_TRUE(d.slow());
  // 150ms sits between slow_recover_factor (1.4x = 140ms) and slow_factor
  // (2x = 200ms): the dead band. Hysteresis keeps the verdict.
  feed(milliseconds(150), 4);
  EXPECT_TRUE(d.slow()) << "verdict must not flap inside the dead band";
  feed(milliseconds(120), 4);  // below 140ms: recovered
  EXPECT_FALSE(d.slow());
}

TEST(Phi, ResetForgetsHistory) {
  core::PhiAccrualDetector d(small_phi());
  TimePoint t = 0;
  for (int i = 0; i < 8; ++i) {
    d.record_arrival(t);
    t += milliseconds(300);
  }
  ASSERT_TRUE(d.warmed());
  ASSERT_TRUE(d.slow());
  d.reset();
  EXPECT_FALSE(d.warmed());
  EXPECT_FALSE(d.slow());
  EXPECT_EQ(d.sample_count(), 0u);
  EXPECT_EQ(d.phi(seconds(10)), 0.0);
}

// --------------------------------------- cohesion: slow vs dead verdicts

core::CohesionConfig gray_cohesion() {
  core::CohesionConfig cfg;
  cfg.heartbeat = seconds(1);
  cfg.suspect_after = 3;
  cfg.dead_after = 5;
  cfg.group_size = 8;  // flat tree: everyone a direct child of the root
  cfg.phi_window = 8;  // short window so the slow verdict turns over fast
  return cfg;
}

/// One simulated peer: a CohesionNode wired to the SimNetwork, with a
/// *controllable* tick period -- slowing the ticks models a gray process
/// whose event loop (and therefore heartbeats) runs late.
class GrayPeer : public sim::SimHost {
 public:
  GrayPeer(NodeId id, core::CohesionConfig cfg, sim::SimNetwork& net,
           sim::Simulator& sim)
      : net_(net),
        sim_(sim),
        node_(id, cfg, [this, id](NodeId to, const core::ProtoMessage& m) {
          net_.send(id, to, m.encode());
        }) {
    node_.set_digest_provider([] { return core::RegistryDigest{}; });
  }

  void on_message(NodeId from, const Bytes& payload) override {
    (void)from;
    if (!alive_) return;
    auto m = core::ProtoMessage::decode(payload);
    if (m.ok()) node_.on_message(*m, sim_.now());
  }

  core::CohesionNode& node() { return node_; }
  [[nodiscard]] bool alive() const { return alive_; }
  void kill() { alive_ = false; }
  void tick() {
    if (alive_) node_.on_tick(sim_.now());
  }

  Duration tick_period = 0;  // set by the world; mutable mid-run

 private:
  sim::SimNetwork& net_;
  sim::Simulator& sim_;
  core::CohesionNode node_;
  bool alive_ = true;
};

class GrayWorld {
 public:
  explicit GrayWorld(core::CohesionConfig cfg, std::uint64_t seed)
      : net_(sim_, seed), cfg_(cfg) {
    net_.set_link_model({.base_latency = milliseconds(5),
                         .jitter = milliseconds(1),
                         .bytes_per_second = 0,
                         .drop_probability = 0});
  }

  void build(std::size_t n) {
    for (std::size_t i = 1; i <= n; ++i) {
      auto peer = std::make_unique<GrayPeer>(NodeId{i}, cfg_, net_, sim_);
      GrayPeer& ref = *peer;
      ref.tick_period = cfg_.heartbeat / 2;
      net_.attach(NodeId{i}, peer.get());
      peers_.push_back(std::move(peer));
      if (i == 1) {
        ref.node().start_as_first(sim_.now());
      } else {
        sim_.schedule_after(milliseconds(10) * static_cast<Duration>(i),
                            [&ref, this] {
                              ref.node().start_joining(NodeId{1}, sim_.now());
                            });
      }
      sim_.schedule_after(ref.tick_period, [this, &ref] { tick_loop(ref); });
    }
  }

  GrayPeer& peer(std::uint64_t id) {
    for (auto& p : peers_)
      if (p->node().id() == NodeId{id}) return *p;
    throw std::runtime_error("no peer");
  }

  void kill(std::uint64_t id) {
    peer(id).kill();
    net_.detach(NodeId{id});
  }

  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }

 private:
  void tick_loop(GrayPeer& p) {
    if (!p.alive()) return;  // dead peers stop ticking
    p.tick();
    sim_.schedule_after(p.tick_period, [this, &p] { tick_loop(p); });
  }

  sim::Simulator sim_;
  sim::SimNetwork net_;
  core::CohesionConfig cfg_;
  std::vector<std::unique_ptr<GrayPeer>> peers_;
};

TEST(GrayCohesion, PhiTimelineReplaysIdenticallyFromTheSeed) {
  const auto run = [] {
    GrayWorld w(gray_cohesion(), 7);
    w.build(4);
    std::vector<double> timeline;
    for (int step = 0; step < 60; ++step) {
      w.run_for(milliseconds(500));
      for (std::uint64_t n = 2; n <= 4; ++n)
        timeline.push_back(
            w.peer(1).node().phi_of(NodeId{n}, w.sim().now()));
    }
    return timeline;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "phi timelines diverge at sample " << i;
  EXPECT_GT(*std::max_element(a.begin(), a.end()), 0.0)
      << "detectors never warmed: the timeline is vacuously identical";
}

TEST(GrayCohesion, SlowPeerIsMarkedButNeverTombstonedWhileDeadPeerIs) {
  const auto cfg = gray_cohesion();
  GrayWorld w(cfg, 11);
  w.build(5);
  w.run_for(seconds(15));  // converge membership, warm the detectors
  auto& root = w.peer(1).node();

  // Gray peer 4: its event loop now runs at 3x the heartbeat, so its
  // beats arrive stretched -- alive, just degraded.
  w.peer(4).tick_period = 3 * cfg.heartbeat;
  w.run_for(seconds(30));
  EXPECT_TRUE(root.is_slow(NodeId{4}));
  EXPECT_FALSE(root.has_tombstone(NodeId{4}));
  EXPECT_GE(root.metrics().counter("cohesion.slow_marked").value(), 1u);

  // Kill peer 5 outright and measure detection latency against the fixed
  // bound, asserting all along that the slow peer is never tombstoned.
  const TimePoint killed_at = w.sim().now();
  w.kill(5);
  TimePoint dead_at = 0;
  while (w.sim().now() < killed_at + seconds(30)) {
    w.run_for(milliseconds(500));
    ASSERT_FALSE(root.has_tombstone(NodeId{4}))
        << "slow-but-alive peer tombstoned at t=" << w.sim().now();
    if (root.has_tombstone(NodeId{5})) {
      dead_at = w.sim().now();
      break;
    }
  }
  ASSERT_NE(dead_at, 0) << "dead peer was never tombstoned";
  EXPECT_LE(dead_at - killed_at,
            2 * cfg.dead_after * cfg.heartbeat + seconds(1))
      << "adaptive detection must not be slower than 2x the fixed bound";

  // The slow peer rode through the whole episode as a member.
  EXPECT_TRUE(root.is_slow(NodeId{4}));
  const auto known = root.known_nodes();
  EXPECT_NE(std::find(known.begin(), known.end(), NodeId{4}), known.end());
}

TEST(GrayCohesion, SlowVerdictRecoversWhenThePeerSpeedsUp) {
  const auto cfg = gray_cohesion();
  GrayWorld w(cfg, 13);
  w.build(4);
  w.run_for(seconds(15));
  auto& root = w.peer(1).node();

  w.peer(3).tick_period = 3 * cfg.heartbeat;
  w.run_for(seconds(30));
  ASSERT_TRUE(root.is_slow(NodeId{3}));
  ASSERT_FALSE(root.has_tombstone(NodeId{3}));

  w.peer(3).tick_period = cfg.heartbeat / 2;  // the stall clears
  w.run_for(seconds(20));
  EXPECT_FALSE(root.is_slow(NodeId{3}));
  EXPECT_GE(root.metrics().counter("cohesion.slow_recovered").value(), 1u);
}

// -------------------------------------------- sim-network gray injection

struct CaptureHost : sim::SimHost {
  explicit CaptureHost(sim::Simulator& s) : sim(&s) {}
  void on_message(NodeId, const Bytes&) override {
    arrivals.push_back(sim->now());
  }
  sim::Simulator* sim;
  std::vector<TimePoint> arrivals;
};

TEST(GrayNetwork, DegradationSlowsOutboundOnly) {
  sim::Simulator sim;
  sim::SimNetwork net(sim, 1);
  net.set_link_model({.base_latency = milliseconds(1)});
  CaptureHost a(sim);
  CaptureHost b(sim);
  net.attach(NodeId{1}, &a);
  net.attach(NodeId{2}, &b);

  net.set_node_degradation(NodeId{1}, 10.0, milliseconds(5));
  ASSERT_TRUE(net.degraded(NodeId{1}));
  net.send(NodeId{1}, NodeId{2}, bytes_of("gray outbound"));
  net.send(NodeId{2}, NodeId{1}, bytes_of("healthy inbound"));
  sim.run_until(seconds(1));

  ASSERT_EQ(b.arrivals.size(), 1u);
  ASSERT_EQ(a.arrivals.size(), 1u);
  // Gray sender: base 1ms x factor 10 + 5ms pad. Reverse path untouched.
  EXPECT_EQ(b.arrivals[0], milliseconds(1) * 10 + milliseconds(5));
  EXPECT_EQ(a.arrivals[0], milliseconds(1));

  net.clear_node_degradation(NodeId{1});
  EXPECT_FALSE(net.degraded(NodeId{1}));
}

TEST(GrayNetwork, StallDefersDeliveryWithoutLoss) {
  sim::Simulator sim;
  sim::SimNetwork net(sim, 1);
  net.set_link_model({.base_latency = milliseconds(1)});
  CaptureHost a(sim);
  CaptureHost b(sim);
  net.attach(NodeId{1}, &a);
  net.attach(NodeId{2}, &b);

  net.stall_node(NodeId{2}, milliseconds(100));
  bool delivered = false;
  net.send(NodeId{1}, NodeId{2}, bytes_of("x"),
           [&](bool ok) { delivered = ok; });
  sim.run_until(seconds(1));

  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0], milliseconds(100))
      << "the frame must sit in the queue until the stall lifts";
  EXPECT_TRUE(delivered) << "a stuck worker defers frames, never drops them";
}

TEST(GrayNetwork, GrayScheduleReplaysFromTheSeedAlone) {
  const std::vector<NodeId> nodes{NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};
  const auto a = fault::GraySchedule::random(99, nodes, 3, seconds(60),
                                             seconds(5), seconds(10), 2.0,
                                             10.0, /*stall_probability=*/1.0);
  const auto b = fault::GraySchedule::random(99, nodes, 3, seconds(60),
                                             seconds(5), seconds(10), 2.0,
                                             10.0, /*stall_probability=*/1.0);
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.events.size(), 3u);
  std::set<NodeId> victims;
  for (const auto& ev : a.events) {
    victims.insert(ev.node);
    EXPECT_GE(ev.service_factor, 2.0);
    EXPECT_LE(ev.service_factor, 10.0);
    EXPECT_GE(ev.duration, seconds(5));
    EXPECT_LE(ev.duration, seconds(10));
    EXPECT_GT(ev.stall_period, 0);  // probability 1: every episode stalls
    EXPECT_GT(ev.stall_duration, 0);
  }
  EXPECT_EQ(victims.size(), 3u) << "a node is degraded at most once";
}

TEST(GrayNetwork, AppliedScheduleDegradesAndClearsOnTime) {
  sim::Simulator sim;
  sim::SimNetwork net(sim, 1);
  fault::GraySchedule sched;
  sched.events.push_back({.node = NodeId{2},
                          .at = milliseconds(50),
                          .duration = milliseconds(100),
                          .service_factor = 4.0});
  net.apply_gray_schedule(sched);
  sim.run_until(milliseconds(40));
  EXPECT_FALSE(net.degraded(NodeId{2}));
  sim.run_until(milliseconds(60));
  EXPECT_TRUE(net.degraded(NodeId{2}));
  sim.run_until(milliseconds(200));
  EXPECT_FALSE(net.degraded(NodeId{2}));
}

// ------------------------------------- hedged requests + health ranking

const char* kGrayIdl = R"(
module g {
  interface Calc {
    long add(in long a, in long b);
  };
};
)";

std::shared_ptr<orb::DynamicServant> calc_servant() {
  auto servant = std::make_shared<orb::DynamicServant>("g::Calc");
  servant->on("add", [](orb::ServerRequest& req) -> Result<void> {
    const auto a = req.arg(0).to_int();
    const auto b = req.arg(1).to_int();
    if (!a || !b) return Error{Errc::invalid_argument, "bad args"};
    req.set_result(orb::Value(static_cast<std::int32_t>(*a + *b)));
    return {};
  });
  return servant;
}

/// One client + N live servers on a shared loopback network; the client's
/// traffic crosses a (disarmed) FaultyTransport and its hedge timers are
/// captured instead of spawning threads.
struct Fleet {
  std::shared_ptr<idl::InterfaceRepository> repo;
  std::shared_ptr<orb::LoopbackNetwork> net;
  std::shared_ptr<fault::FaultyTransport> faulty;
  std::unique_ptr<orb::Orb> client;
  std::vector<std::unique_ptr<orb::Orb>> servers;
  std::vector<orb::ObjectRef> calcs;
  std::vector<std::pair<Duration, std::function<void()>>> timers;

  explicit Fleet(std::size_t n_servers) {
    repo = std::make_shared<idl::InterfaceRepository>();
    EXPECT_TRUE(repo->register_idl(kGrayIdl).ok());
    net = std::make_shared<orb::LoopbackNetwork>();
    faulty = std::make_shared<fault::FaultyTransport>(net);
    client = std::make_unique<orb::Orb>(NodeId{100}, repo);
    auto* c = client.get();
    client->set_endpoint(net->register_endpoint(
        [c](BytesView frame) { return c->handle_frame(frame); }));
    client->add_transport("loop", faulty);
    client->set_timer_fn([this](Duration d, std::function<void()> fire) {
      timers.emplace_back(d, std::move(fire));
    });
    for (std::size_t i = 0; i < n_servers; ++i) {
      auto server = std::make_unique<orb::Orb>(NodeId{1 + i}, repo);
      auto* s = server.get();
      server->set_endpoint(net->register_endpoint(
          [s](BytesView frame) { return s->handle_frame(frame); }));
      server->add_transport("loop", net);
      calcs.push_back(server->activate(calc_servant()));
      servers.push_back(std::move(server));
    }
  }

  [[nodiscard]] static orb::InvocationPolicies hedged(std::uint64_t burst = 16,
                                                      double budget = 0.05) {
    orb::InvocationPolicies p;
    p.hedge.enabled = true;
    p.hedge.burst = burst;
    p.hedge.budget = budget;
    return p;
  }

  [[nodiscard]] std::uint64_t counter(const char* name) {
    return client->metrics().counter(name).value();
  }

  [[nodiscard]] Result<orb::Value> add(std::vector<orb::ObjectRef> replicas) {
    return client->call_hedged(
        std::move(replicas), "add",
        {orb::Value(std::int32_t{20}), orb::Value(std::int32_t{22})},
        {.idempotent = true});
  }
};

TEST(Hedge, FailingPrimaryTriggersImmediateHedgeAndWins) {
  Fleet f(1);
  f.client->set_invocation_policies(Fleet::hedged());
  orb::ObjectRef dead = f.calcs[0];
  dead.endpoint = "loop:dead";  // nothing registered there -> unreachable

  auto r = f.add({dead, f.calcs[0]});
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(*r, orb::Value(std::int32_t{42}));
  EXPECT_EQ(f.counter("orb.hedges"), 1u);
  EXPECT_EQ(f.counter("orb.hedge_wins"), 1u);
  EXPECT_TRUE(f.timers.empty())
      << "a failure-triggered hedge must not wait for the p95 timer";
}

TEST(Hedge, DisabledPolicyNeverHedges) {
  Fleet f(1);  // policy left at its default: hedging off
  orb::ObjectRef dead = f.calcs[0];
  dead.endpoint = "loop:dead";
  auto r = f.add({dead, f.calcs[0]});
  EXPECT_FALSE(r.ok()) << "with hedging off the call rides the primary only";
  EXPECT_EQ(f.counter("orb.hedges"), 0u);
}

TEST(Hedge, NonIdempotentCallsNeverHedge) {
  Fleet f(1);
  f.client->set_invocation_policies(Fleet::hedged());
  orb::ObjectRef dead = f.calcs[0];
  dead.endpoint = "loop:dead";
  auto r = f.client->call_hedged(
      {dead, f.calcs[0]}, "add",
      {orb::Value(std::int32_t{1}), orb::Value(std::int32_t{2})},
      {.idempotent = false});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(f.counter("orb.hedges"), 0u)
      << "a lost non-idempotent request must never be sent twice";
}

TEST(Hedge, BudgetDeclinedSurfacesThePrimaryOutcome) {
  Fleet f(1);
  f.client->set_invocation_policies(Fleet::hedged(/*burst=*/0, /*budget=*/0));
  orb::ObjectRef dead = f.calcs[0];
  dead.endpoint = "loop:dead";
  auto r = f.add({dead, f.calcs[0]});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unreachable);
  EXPECT_EQ(f.counter("orb.hedges"), 0u);
}

TEST(Hedge, BurstAdmitsExactlyItsSizeWhenTheRatioIsZero) {
  Fleet f(1);
  f.client->set_invocation_policies(Fleet::hedged(/*burst=*/1, /*budget=*/0));
  orb::ObjectRef dead_a = f.calcs[0];
  dead_a.endpoint = "loop:dead_a";
  orb::ObjectRef dead_b = f.calcs[0];
  dead_b.endpoint = "loop:dead_b";
  EXPECT_FALSE(f.add({dead_a, dead_b}).ok());  // hedge issued, both legs die
  EXPECT_EQ(f.counter("orb.hedges"), 1u);

  orb::ObjectRef dead_c = f.calcs[0];
  dead_c.endpoint = "loop:dead_c";
  orb::ObjectRef dead_d = f.calcs[0];
  dead_d.endpoint = "loop:dead_d";
  EXPECT_FALSE(f.add({dead_c, dead_d}).ok());  // burst spent: declined
  EXPECT_EQ(f.counter("orb.hedges"), 1u);
}

TEST(Hedge, InlineSuccessNeverArmsTimerOrHedge) {
  Fleet f(2);
  f.client->set_invocation_policies(Fleet::hedged());
  auto r = f.add({f.calcs[0], f.calcs[1]});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, orb::Value(std::int32_t{42}));
  EXPECT_EQ(f.counter("orb.hedges"), 0u);
  EXPECT_TRUE(f.timers.empty())
      << "a primary that answered before the race began needs no timer";
}

TEST(Hedge, TimerFiredHedgeWinsOverASilentPrimary) {
  // The full tail-cutting race needs a primary that is genuinely in flight
  // when invoke_hedged returns, so this test runs over real TCP: the gray
  // server wedges inside dispatch until released, the p95 timer (captured,
  // fired manually) launches the speculative leg, and the healthy replica's
  // reply completes the call while the primary is still stuck.
  auto repo = std::make_shared<idl::InterfaceRepository>();
  ASSERT_TRUE(repo->register_idl(kGrayIdl).ok());

  std::mutex m;
  std::condition_variable cv;
  bool released = false;

  orb::Orb slow_server(NodeId{1}, repo);
  auto slow_servant = std::make_shared<orb::DynamicServant>("g::Calc");
  slow_servant->on("add", [&](orb::ServerRequest& req) -> Result<void> {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return released; });
    req.set_result(orb::Value(std::int32_t{-1}));
    return {};
  });
  orb::TcpServer slow_listener;
  auto slow_ep = slow_listener.start([&slow_server](BytesView frame) {
    return slow_server.handle_frame(frame);
  });
  ASSERT_TRUE(slow_ep.ok()) << slow_ep.error().to_string();
  slow_server.set_endpoint(*slow_ep);
  const auto slow_calc = slow_server.activate(slow_servant);

  orb::Orb fast_server(NodeId{2}, repo);
  orb::TcpServer fast_listener;
  auto fast_ep = fast_listener.start([&fast_server](BytesView frame) {
    return fast_server.handle_frame(frame);
  });
  ASSERT_TRUE(fast_ep.ok()) << fast_ep.error().to_string();
  fast_server.set_endpoint(*fast_ep);
  const auto fast_calc = fast_server.activate(calc_servant());

  orb::Orb client(NodeId{3}, repo);
  client.set_endpoint("tcp:127.0.0.1:0");  // not serving, just distinct
  client.add_transport("tcp", std::make_shared<orb::TcpTransport>());
  client.set_invocation_policies(Fleet::hedged());
  std::vector<std::function<void()>> fires;
  client.set_timer_fn([&fires](Duration, std::function<void()> fire) {
    fires.push_back(std::move(fire));
  });

  auto pending = client.invoke_hedged(
      {slow_calc, fast_calc}, "add",
      {orb::Value(std::int32_t{20}), orb::Value(std::int32_t{22})},
      {.idempotent = true});
  // The primary is wedged inside the gray server, so the timer was armed.
  ASSERT_EQ(fires.size(), 1u);
  fires[0]();  // the virtual p95 elapses: the speculative leg launches

  auto out = pending.take();
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(out->result, orb::Value(std::int32_t{42}));
  EXPECT_EQ(client.metrics().counter("orb.hedges").value(), 1u);
  EXPECT_EQ(client.metrics().counter("orb.hedge_wins").value(), 1u);

  {
    std::lock_guard lock(m);
    released = true;
  }
  cv.notify_all();  // unwedge the primary; its late reply is discarded
  slow_listener.stop();
  fast_listener.stop();
}

TEST(Health, RankingPrefersTheLowLatencyReplica) {
  Fleet f(2);
  for (int i = 0; i < 8; ++i) {
    f.client->health().record(f.calcs[0].endpoint, milliseconds(50));
    f.client->health().record(f.calcs[1].endpoint, milliseconds(1));
  }
  EXPECT_GT(f.client->endpoint_health_score(f.calcs[0].endpoint),
            f.client->endpoint_health_score(f.calcs[1].endpoint));
  std::vector<orb::ObjectRef> replicas{f.calcs[0], f.calcs[1]};
  f.client->rank_by_health(replicas);
  EXPECT_EQ(replicas[0].endpoint, f.calcs[1].endpoint);

  // A collocated replica beats any remote one: its score is exactly zero.
  orb::ObjectRef self = f.calcs[0];
  self.endpoint = f.client->endpoint();
  EXPECT_EQ(f.client->endpoint_health_score(self.endpoint), 0.0);
  replicas.push_back(self);
  f.client->rank_by_health(replicas);
  EXPECT_EQ(replicas[0].endpoint, f.client->endpoint());
}

TEST(Health, FailuresPushAReplicaDownTheRanking) {
  Fleet f(1);
  orb::ObjectRef dead = f.calcs[0];
  dead.endpoint = "loop:dead";
  // Fresh endpoints tie, so the stable sort preserves caller order.
  std::vector<orb::ObjectRef> replicas{dead, f.calcs[0]};
  f.client->rank_by_health(replicas);
  EXPECT_EQ(replicas[0].endpoint, dead.endpoint);

  (void)f.client->call(dead, "add",
                       {orb::Value(std::int32_t{1}), orb::Value(std::int32_t{2})},
                       {.idempotent = true});
  EXPECT_EQ(f.client->endpoint_failure_streak("loop:dead"), 1);
  replicas = {dead, f.calcs[0]};
  f.client->rank_by_health(replicas);
  EXPECT_EQ(replicas[0].endpoint, f.calcs[0].endpoint)
      << "one observed failure must demote the gray endpoint";
}

TEST(Health, FailureStreakDecaysWithIdleTimeAndResetsOnSuccess) {
  Fleet f(1);
  ManualClock clock;
  f.client->set_clock(&clock);

  orb::ObjectRef dead = f.calcs[0];
  dead.endpoint = "loop:dead";
  const auto args = [] {
    return std::vector<orb::Value>{orb::Value(std::int32_t{1}),
                                   orb::Value(std::int32_t{2})};
  };
  for (int i = 0; i < 4; ++i)
    EXPECT_FALSE(f.client->call(dead, "add", args(), {.idempotent = true}).ok());
  EXPECT_EQ(f.client->endpoint_failure_streak("loop:dead"), 4);

  // Half-life decay: the streak halves per 10 idle seconds since the last
  // failure (regression for the gray-then-heal endpoint that used to carry
  // its full penalty forever).
  clock.advance(seconds(10));
  EXPECT_EQ(f.client->endpoint_failure_streak("loop:dead"), 2);
  clock.advance(seconds(10));  // 2 half-lives since the last failure
  EXPECT_EQ(f.client->endpoint_failure_streak("loop:dead"), 1);
  clock.advance(seconds(20));  // 4 half-lives
  EXPECT_EQ(f.client->endpoint_failure_streak("loop:dead"), 0);

  // Success resets instantly -- no ride-down. Fail through an armed fault
  // plan against the *live* server, then heal it and call again.
  f.faulty->injector().arm({.seed = 9, .drop_probability = 1.0});
  for (int i = 0; i < 3; ++i)
    EXPECT_FALSE(
        f.client->call(f.calcs[0], "add", args(), {.idempotent = true}).ok());
  EXPECT_EQ(f.client->endpoint_failure_streak(f.calcs[0].endpoint), 3);
  f.faulty->injector().disarm();
  EXPECT_TRUE(
      f.client->call(f.calcs[0], "add", args(), {.idempotent = true}).ok());
  EXPECT_EQ(f.client->endpoint_failure_streak(f.calcs[0].endpoint), 0);
}

}  // namespace
}  // namespace clc
