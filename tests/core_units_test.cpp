// Unit tests for the core building blocks in isolation: ProtoMessage,
// RegistryDigest/Query codecs, scoring, ResourceManager admission,
// ComponentRepository, Container lifecycle, and the event hub.
#include <gtest/gtest.h>

#include "core/container.hpp"
#include "core/events.hpp"
#include "core/proto.hpp"
#include "core/query.hpp"
#include "core/registry.hpp"
#include "core/repository.hpp"
#include "core/resource.hpp"
#include "support/test_components.hpp"

namespace clc::core {
namespace {

// ---------------------------------------------------------------- proto

TEST(Proto, RoundTrip) {
  ProtoMessage m;
  m.kind = "heartbeat";
  m.sender = NodeId{42};
  m.set("names", "a\nb");
  m.set_int("count", -7);
  m.set_double("load", 0.25);
  m.blob = {1, 2, 3};
  auto back = ProtoMessage::decode(m.encode());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->kind, "heartbeat");
  EXPECT_EQ(back->sender, NodeId{42});
  EXPECT_EQ(back->field("names"), "a\nb");
  EXPECT_EQ(back->field_int("count"), -7);
  EXPECT_DOUBLE_EQ(back->field_double("load"), 0.25);
  EXPECT_EQ(back->blob, (Bytes{1, 2, 3}));
  EXPECT_EQ(back->field("missing", "dflt"), "dflt");
  EXPECT_EQ(back->field_int("missing", 9), 9);
  EXPECT_EQ(back->field_int("names", 5), 5);  // non-numeric -> fallback
}

TEST(Proto, DecodeRejectsGarbage) {
  EXPECT_FALSE(ProtoMessage::decode(Bytes{1, 2}).ok());
  EXPECT_FALSE(ProtoMessage::decode({}).ok());
}

// ---------------------------------------------------------------- digests

TEST(Digest, RoundTrip) {
  RegistryDigest d;
  d.node = NodeId{7};
  d.cpu_load = 0.5;
  d.memory_free_kb = 1024;
  d.device = DeviceClass::pda;
  d.revision = 3;
  d.components = {{"a.b", Version{1, 2, 3}, true, 0.5},
                  {"c.d", Version{2, 0, 0}, false, 0.0}};
  auto back = RegistryDigest::decode(d.encode());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->node, NodeId{7});
  EXPECT_EQ(back->device, DeviceClass::pda);
  ASSERT_EQ(back->components.size(), 2u);
  EXPECT_EQ(back->components[0].name, "a.b");
  EXPECT_EQ(back->components[0].version, (Version{1, 2, 3}));
  EXPECT_FALSE(back->components[1].mobile);
}

TEST(Digest, HostileCountRejected) {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_ulonglong(1);
  w.write_double(0);
  w.write_ulonglong(0);
  w.write_octet(0);
  w.write_ulonglong(0);
  w.write_ulong(0xffffffffu);  // absurd component count
  EXPECT_FALSE(RegistryDigest::decode(w.data()).ok());
}

TEST(Query, CodecAndMatching) {
  ComponentQuery q;
  q.name_pattern = "video.*";
  q.constraint = *VersionConstraint::parse(">=2.0");
  q.require_mobile = true;
  q.max_results = 3;
  auto back = ComponentQuery::decode(q.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name_pattern, "video.*");
  EXPECT_EQ(back->max_results, 3u);

  EXPECT_TRUE(q.matches({"video.decoder", Version{2, 1, 0}, true, 0}));
  EXPECT_FALSE(q.matches({"video.decoder", Version{1, 9, 0}, true, 0}));
  EXPECT_FALSE(q.matches({"video.decoder", Version{2, 1, 0}, false, 0}));
  EXPECT_FALSE(q.matches({"audio.mixer", Version{2, 1, 0}, true, 0}));
}

TEST(Query, HitsCodecRoundTrip) {
  std::vector<QueryHit> hits = {
      {NodeId{1}, "a", Version{1, 0, 0}, true, 0.5, 0.2, DeviceClass::server},
      {NodeId{2}, "b", Version{2, 0, 0}, false, 0.0, 0.9, DeviceClass::pda}};
  auto back = decode_hits(encode_hits(hits));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, hits);
}

TEST(Query, ScoringPrefersLocalityThenLoadThenCost) {
  PlacementContext ctx;
  ctx.querying_node = NodeId{1};
  ctx.group_members = {NodeId{2}};
  QueryHit local{NodeId{1}, "c", Version{1, 0, 0}, true, 0, 0.9,
                 DeviceClass::workstation};
  QueryHit group{NodeId{2}, "c", Version{1, 0, 0}, true, 0, 0.0,
                 DeviceClass::server};
  QueryHit far{NodeId{3}, "c", Version{1, 0, 0}, true, 0, 0.0,
               DeviceClass::server};
  QueryHit costly = far;
  costly.node = NodeId{4};
  costly.cost_per_use = 5.0;
  EXPECT_GT(score_hit(local, ctx), score_hit(group, ctx));
  EXPECT_GT(score_hit(group, ctx), score_hit(far, ctx));
  EXPECT_GT(score_hit(far, ctx), score_hit(costly, ctx));

  std::vector<QueryHit> hits = {costly, far, group, local};
  rank_hits(hits, ctx);
  EXPECT_EQ(hits[0].node, NodeId{1});
  EXPECT_EQ(hits[1].node, NodeId{2});
  EXPECT_EQ(hits[3].node, NodeId{4});
}

TEST(Query, RankingDeterministicTieBreak) {
  PlacementContext ctx;
  ctx.querying_node = NodeId{99};
  std::vector<QueryHit> hits = {
      {NodeId{5}, "c", Version{1, 0, 0}, true, 0, 0.3, DeviceClass::server},
      {NodeId{3}, "c", Version{1, 0, 0}, true, 0, 0.3, DeviceClass::server}};
  rank_hits(hits, ctx);
  EXPECT_EQ(hits[0].node, NodeId{3});  // equal score: lower id first
}

// ---------------------------------------------------------------- resources

pkg::ComponentDescription demand(double cpu, std::uint64_t mem_kb = 0) {
  pkg::ComponentDescription d;
  d.name = "x";
  d.qos.max_cpu_load = cpu;
  d.qos.max_memory_kb = mem_kb;
  return d;
}

TEST(Resources, AdmissionAccounting) {
  NodeProfile p;
  p.cpu_power = 1.0;
  p.total_memory_kb = 1000;
  ResourceManager rm(p);
  EXPECT_TRUE(rm.can_host(demand(0.5, 400)));
  ASSERT_TRUE(rm.reserve(InstanceId{1}, demand(0.5, 400)).ok());
  EXPECT_DOUBLE_EQ(rm.load().cpu_load, 0.5);
  EXPECT_EQ(rm.memory_free_kb(), 600u);
  EXPECT_TRUE(rm.can_host(demand(0.5, 600)));
  EXPECT_FALSE(rm.can_host(demand(0.6, 0)));
  EXPECT_FALSE(rm.can_host(demand(0.1, 700)));
  ASSERT_FALSE(rm.reserve(InstanceId{1}, demand(0.1)).ok());  // duplicate
  rm.release(InstanceId{1});
  EXPECT_DOUBLE_EQ(rm.load().cpu_load, 0.0);
  EXPECT_EQ(rm.reservations(), 0u);
  rm.release(InstanceId{1});  // idempotent
}

TEST(Resources, CpuPowerScalesDemand) {
  NodeProfile strong;
  strong.cpu_power = 4.0;
  ResourceManager rm(strong);
  // A 0.8-CPU component uses only 0.2 of a 4x node.
  ASSERT_TRUE(rm.reserve(InstanceId{1}, demand(0.8)).ok());
  EXPECT_DOUBLE_EQ(rm.load().cpu_load, 0.2);
  EXPECT_DOUBLE_EQ(rm.cpu_headroom(), 0.8 * 4.0);
}

TEST(Resources, AmbientLoadCounts) {
  ResourceManager rm(NodeProfile{});
  rm.set_ambient_cpu_load(0.7);
  EXPECT_FALSE(rm.can_host(demand(0.5)));
  EXPECT_TRUE(rm.can_host(demand(0.2)));
}

TEST(Resources, PdaCannotInstall) {
  NodeProfile pda;
  pda.device = DeviceClass::pda;
  ResourceManager rm(pda);
  EXPECT_FALSE(rm.can_host(demand(0.01)));
  EXPECT_FALSE(rm.profile().can_install());
}

TEST(Resources, HardwareFilter) {
  NodeProfile p;
  p.arch = "sparc";
  ResourceManager rm(p);
  pkg::ComponentDescription d = demand(0.1);
  d.hardware.architectures = {"x86_64", "arm"};
  EXPECT_FALSE(rm.can_host(d));
  d.hardware.architectures = {"sparc"};
  EXPECT_TRUE(rm.can_host(d));
}

// ---------------------------------------------------------------- repository

struct RepoFixture {
  RepoFixture()
      : types(std::make_shared<idl::InterfaceRepository>()),
        repo(NodeProfile{}, types) {}
  std::shared_ptr<idl::InterfaceRepository> types;
  ComponentRepository repo;
};

TEST(Repository, InstallFindRemove) {
  RepoFixture f;
  ASSERT_TRUE(f.repo.install(testing::calculator_package({1, 0, 0})).ok());
  ASSERT_TRUE(f.repo.install(testing::calculator_package({2, 1, 0})).ok());
  EXPECT_EQ(f.repo.size(), 2u);
  EXPECT_EQ(f.repo.revision(), 2u);

  // Best version satisfying the constraint.
  auto best = f.repo.find("demo.calculator", VersionConstraint{});
  ASSERT_TRUE(best.ok());
  EXPECT_EQ((*best)->description.version, (Version{2, 1, 0}));
  auto v1 = f.repo.find("demo.calculator", *VersionConstraint::parse("<2.0"));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*v1)->description.version, (Version{1, 0, 0}));
  EXPECT_FALSE(f.repo.find("demo.calculator",
                           *VersionConstraint::parse(">=3.0")).ok());

  // Duplicate install rejected; remove works.
  EXPECT_FALSE(f.repo.install(testing::calculator_package({1, 0, 0})).ok());
  ASSERT_TRUE(f.repo.remove("demo.calculator", {1, 0, 0}).ok());
  EXPECT_FALSE(f.repo.remove("demo.calculator", {1, 0, 0}).ok());
  EXPECT_EQ(f.repo.size(), 1u);
  EXPECT_EQ(f.repo.revision(), 3u);
}

TEST(Repository, IdlRegisteredOnInstall) {
  RepoFixture f;
  ASSERT_TRUE(f.repo.install(testing::calculator_package()).ok());
  EXPECT_NE(f.types->find_interface("demo::Calculator"), nullptr);
  auto idl_text = f.repo.idl_of("demo.calculator", {1, 0, 0});
  ASSERT_TRUE(idl_text.ok());
  EXPECT_NE(idl_text->find("Calculator"), std::string::npos);
}

TEST(Repository, LoadUnload) {
  RepoFixture f;
  ASSERT_TRUE(f.repo.install(testing::calculator_package()).ok());
  EXPECT_FALSE(f.repo.unload("demo.calculator", {1, 0, 0}).ok());
  auto factory = f.repo.load("demo.calculator", {1, 0, 0});
  ASSERT_TRUE(factory.ok());
  EXPECT_NE((*factory)(), nullptr);
  EXPECT_TRUE(f.repo.unload("demo.calculator", {1, 0, 0}).ok());
  EXPECT_FALSE(f.repo.load("missing", {1, 0, 0}).ok());
}

TEST(Repository, ExportRespectsPlatformAndMobility) {
  RepoFixture f;
  ASSERT_TRUE(f.repo.install(testing::calculator_package()).ok());
  NodeProfile workstation;
  auto full = f.repo.export_package("demo.calculator", {1, 0, 0}, workstation);
  ASSERT_TRUE(full.ok());
  NodeProfile pda;
  pda.arch = "arm";
  pda.device = DeviceClass::pda;
  auto slice = f.repo.export_package("demo.calculator", {1, 0, 0}, pda);
  ASSERT_TRUE(slice.ok());
  EXPECT_LT(slice->size(), full->size());
  NodeProfile alien;
  alien.arch = "mips";
  EXPECT_FALSE(
      f.repo.export_package("demo.calculator", {1, 0, 0}, alien).ok());
}

TEST(Repository, WrongPlatformInstallRejected) {
  auto types = std::make_shared<idl::InterfaceRepository>();
  NodeProfile sparc;
  sparc.arch = "sparc";
  ComponentRepository repo(sparc, types);
  auto r = repo.install(testing::calculator_package());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unsupported);
}

// ---------------------------------------------------------------- container

struct ContainerFixture {
  ContainerFixture()
      : types(std::make_shared<idl::InterfaceRepository>()),
        orb(NodeId{1}, types),
        repo(NodeProfile{}, types),
        resources(NodeProfile{}),
        registry(NodeId{1}, repo, resources),
        events(orb),
        container(Container::Services{&orb, &repo, &resources, &events,
                                      &registry, {}}) {
    (void)repo.install(testing::counter_package());
  }
  std::shared_ptr<idl::InterfaceRepository> types;
  orb::Orb orb;
  ComponentRepository repo;
  ResourceManager resources;
  ComponentRegistry registry;
  EventChannelHub events;
  Container container;
};

TEST(ContainerUnit, LifecycleAndPorts) {
  ContainerFixture f;
  auto id = f.container.create("demo.counter", VersionConstraint{});
  ASSERT_TRUE(id.ok()) << id.error().to_string();
  EXPECT_EQ(f.container.size(), 1u);
  EXPECT_EQ(f.resources.reservations(), 1u);
  auto port = f.container.provided_port(*id, "counter");
  ASSERT_TRUE(port.ok());
  EXPECT_FALSE(port->is_nil());
  EXPECT_FALSE(f.container.provided_port(*id, "bogus").ok());

  ASSERT_TRUE(f.container.passivate(*id).ok());
  EXPECT_FALSE(f.container.passivate(*id).ok());  // already passive
  ASSERT_TRUE(f.container.activate(*id).ok());
  ASSERT_TRUE(f.container.destroy(*id).ok());
  EXPECT_EQ(f.container.size(), 0u);
  EXPECT_EQ(f.resources.reservations(), 0u);
  EXPECT_FALSE(f.container.destroy(*id).ok());
}

TEST(ContainerUnit, CreateFailsForMissingComponent) {
  ContainerFixture f;
  EXPECT_FALSE(f.container.create("no.such", VersionConstraint{}).ok());
}

TEST(ContainerUnit, SnapshotRestoreEquivalence) {
  ContainerFixture f;
  auto id = f.container.create("demo.counter", VersionConstraint{});
  ASSERT_TRUE(id.ok());
  auto impl = f.container.implementation(*id);
  ASSERT_TRUE(impl.ok());
  // Drive the counter through its own servant.
  auto port = f.container.provided_port(*id, "counter");
  for (int i = 0; i < 3; ++i) (void)f.orb.call(*port, "increment");

  auto snapshot = f.container.capture(*id);
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().to_string();
  EXPECT_EQ(snapshot->component, "demo.counter");
  ASSERT_TRUE(f.container.destroy(*id).ok());

  auto restored = f.container.restore(*snapshot);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  auto port2 = f.container.provided_port(*restored, "counter");
  auto value = f.orb.call(*port2, "value");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, orb::Value(std::int64_t{3}));
}

TEST(ContainerUnit, ConnectChecksPortAndInterface) {
  ContainerFixture f;
  (void)f.repo.install(testing::greeter_package());
  (void)f.repo.install(testing::calculator_package());
  auto greeter = f.container.create("demo.greeter", VersionConstraint{});
  auto calc = f.container.create("demo.calculator", VersionConstraint{});
  ASSERT_TRUE(greeter.ok() && calc.ok());
  auto calc_port = f.container.provided_port(*calc, "calc");
  ASSERT_TRUE(calc_port.ok());
  // Valid connection.
  EXPECT_TRUE(f.container.connect(*greeter, "calc", *calc_port).ok());
  // Unknown port.
  EXPECT_FALSE(f.container.connect(*greeter, "nope", *calc_port).ok());
  // Provides-port used as uses-port.
  EXPECT_FALSE(f.container.connect(*calc, "calc", *calc_port).ok());
  // Interface mismatch: wire a Counter where a Calculator is needed.
  auto counter = f.container.create("demo.counter", VersionConstraint{});
  ASSERT_TRUE(counter.ok());
  auto counter_port = f.container.provided_port(*counter, "counter");
  EXPECT_FALSE(f.container.connect(*greeter, "calc", *counter_port).ok());
}

TEST(ContainerUnit, FindActiveRespectsConstraint) {
  ContainerFixture f;
  auto id = f.container.create("demo.counter", VersionConstraint{});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(f.container.find_active("demo.counter", VersionConstraint{}).ok());
  EXPECT_FALSE(f.container
                   .find_active("demo.counter",
                                *VersionConstraint::parse(">=9.0"))
                   .ok());
  (void)f.container.passivate(*id);
  EXPECT_FALSE(
      f.container.find_active("demo.counter", VersionConstraint{}).ok());
}

// ---------------------------------------------------------------- events

TEST(Events, LocalSubscribeUnsubscribe) {
  auto types = std::make_shared<idl::InterfaceRepository>();
  orb::Orb o(NodeId{1}, types);
  EventChannelHub hub(o);
  int got = 0;
  auto sub = hub.subscribe_local("t", [&got](const orb::Value&) { ++got; });
  hub.publish("t", orb::Value("x"));
  hub.publish("other", orb::Value("x"));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(hub.consumer_count("t"), 1u);
  hub.unsubscribe_local("t", sub);
  hub.publish("t", orb::Value("x"));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(hub.published_count(), 3u);
  // Only channels with subscribers exist; publishing alone creates none.
  EXPECT_EQ(hub.channels(), (std::vector<std::string>{"t"}));
}

TEST(Events, LocalConsumerSeesBoxedAny) {
  auto types = std::make_shared<idl::InterfaceRepository>();
  orb::Orb o(NodeId{1}, types);
  EventChannelHub hub(o);
  orb::Value seen;
  hub.subscribe_local("t", [&seen](const orb::Value& v) { seen = v; });
  hub.publish("t", orb::Value(std::int32_t{5}));
  ASSERT_TRUE(seen.is<orb::AnyValue>());
  EXPECT_EQ(*seen.as<orb::AnyValue>().value, orb::Value(std::int32_t{5}));
}

TEST(Events, DeadRemoteConsumerDroppedAfterFailures) {
  auto types = std::make_shared<idl::InterfaceRepository>();
  orb::Orb o(NodeId{1}, types);
  EventChannelHub hub(o);
  orb::ObjectRef ghost;
  ghost.node = NodeId{9};
  ghost.key = Uuid{1, 2};
  ghost.interface_name = "clc::EventConsumer";
  ghost.endpoint = "loop:404";  // no transport registered -> send fails
  ASSERT_TRUE(hub.subscribe_remote("t", ghost).ok());
  EXPECT_FALSE(hub.subscribe_remote("t", ghost).ok());  // duplicate
  EXPECT_EQ(hub.consumer_count("t"), 1u);
  for (int i = 0; i < 3; ++i) hub.publish("t", orb::Value("x"));
  EXPECT_EQ(hub.consumer_count("t"), 0u);  // evicted
  EXPECT_FALSE(hub.subscribe_remote("t", orb::ObjectRef{}).ok());  // nil
}

}  // namespace
}  // namespace clc::core
