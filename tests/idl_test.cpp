// Tests for the IDL lexer, parser and Interface Repository.
#include <gtest/gtest.h>

#include "idl/lexer.hpp"
#include "idl/parser.hpp"
#include "idl/repository.hpp"

namespace clc::idl {
namespace {

// ---------------------------------------------------------------- lexer

TEST(IdlLexer, TokenKinds) {
  auto toks = tokenize("interface Foo { long add(in long a); };");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks->size(), 5u);
  EXPECT_TRUE((*toks)[0].is_kw("interface"));
  EXPECT_EQ((*toks)[1].kind, TokKind::identifier);
  EXPECT_EQ((*toks)[1].text, "Foo");
  EXPECT_TRUE((*toks)[2].is_punct("{"));
  EXPECT_EQ(toks->back().kind, TokKind::end);
}

TEST(IdlLexer, CommentsAndPreprocessorSkipped) {
  auto toks = tokenize(
      "// line comment\n"
      "#include <orb.idl>\n"
      "/* block\n comment */ module /*x*/ M { };");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[0].is_kw("module"));
}

TEST(IdlLexer, ScopedNameOperator) {
  auto toks = tokenize("a::b");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].text, "::");
  EXPECT_EQ((*toks)[1].kind, TokKind::punct);
}

TEST(IdlLexer, Errors) {
  EXPECT_FALSE(tokenize("/* never closed").ok());
  EXPECT_FALSE(tokenize("interface @").ok());
}

TEST(IdlLexer, LineColumnTracking) {
  auto toks = tokenize("module\n  M");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[1].line, 2);
  EXPECT_EQ((*toks)[1].col, 3);
}

// ---------------------------------------------------------------- parser

TEST(IdlParse, PrimitiveTypes) {
  auto spec = parse(
      "struct AllPrims {"
      " boolean b; octet o; short s; unsigned short us;"
      " long l; unsigned long ul; long long ll; unsigned long long ull;"
      " float f; double d; string str; any a;"
      "};");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  ASSERT_EQ(spec->structs.size(), 1u);
  const auto& fields = spec->structs[0].fields;
  ASSERT_EQ(fields.size(), 12u);
  EXPECT_EQ(fields[0].type.kind, TypeKind::tk_boolean);
  EXPECT_EQ(fields[3].type.kind, TypeKind::tk_ushort);
  EXPECT_EQ(fields[6].type.kind, TypeKind::tk_longlong);
  EXPECT_EQ(fields[7].type.kind, TypeKind::tk_ulonglong);
  EXPECT_EQ(fields[11].type.kind, TypeKind::tk_any);
}

TEST(IdlParse, Sequences) {
  auto spec = parse(
      "typedef sequence<long> LongSeq;"
      "typedef sequence<sequence<string>, 8> Matrix;");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  ASSERT_EQ(spec->typedefs.size(), 2u);
  EXPECT_EQ(spec->typedefs[0].target.kind, TypeKind::tk_sequence);
  EXPECT_EQ(spec->typedefs[0].target.element->kind, TypeKind::tk_long);
  EXPECT_EQ(spec->typedefs[0].target.bound, 0u);
  EXPECT_EQ(spec->typedefs[1].target.bound, 8u);
  EXPECT_EQ(spec->typedefs[1].target.element->kind, TypeKind::tk_sequence);
  EXPECT_EQ(spec->typedefs[1].target.to_string(),
            "sequence<sequence<string>,8>");
}

TEST(IdlParse, ModuleScoping) {
  auto spec = parse(
      "module clc { module gfx {"
      "  struct Point { double x; double y; };"
      "  interface Canvas { void draw(in Point p); };"
      "}; };");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  ASSERT_EQ(spec->structs.size(), 1u);
  EXPECT_EQ(spec->structs[0].scoped_name, "clc::gfx::Point");
  ASSERT_EQ(spec->interfaces.size(), 1u);
  EXPECT_EQ(spec->interfaces[0].scoped_name, "clc::gfx::Canvas");
  // Point resolved to its fully scoped name inside the operation.
  EXPECT_EQ(spec->interfaces[0].operations[0].params[0].type.name,
            "clc::gfx::Point");
}

TEST(IdlParse, OuterScopeResolution) {
  auto spec = parse(
      "module a { struct S { long v; }; "
      "  module b { interface I { S get(); }; }; };");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec->interfaces[0].operations[0].result.name, "a::S");
}

TEST(IdlParse, GloballyQualifiedName) {
  auto spec = parse(
      "struct G { long v; };"
      "module m { interface I { ::G get(); }; };");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec->interfaces[0].operations[0].result.name, "G");
}

TEST(IdlParse, MultiDeclaratorFieldsAndAttributes) {
  auto spec = parse(
      "interface I { attribute long width, height; };"
      "struct P { double x, y; };");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec->interfaces[0].attributes.size(), 2u);
  EXPECT_EQ(spec->structs[0].fields.size(), 2u);
}

TEST(IdlParse, InterfaceInheritanceAndMembers) {
  auto spec = parse(
      "interface Base { void ping(); };"
      "interface Mixin { void pong(); };"
      "exception Bad { string reason; };"
      "interface Derived : Base, Mixin {"
      "  readonly attribute string name;"
      "  long compute(in long a, inout double b, out string c) raises (Bad);"
      "  oneway void notify(in string msg);"
      "};");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  const auto& d = spec->interfaces[2];
  EXPECT_EQ(d.bases, (std::vector<std::string>{"Base", "Mixin"}));
  ASSERT_EQ(d.operations.size(), 2u);
  const auto& op = d.operations[0];
  EXPECT_EQ(op.params[0].direction, ParamDirection::in);
  EXPECT_EQ(op.params[1].direction, ParamDirection::inout);
  EXPECT_EQ(op.params[2].direction, ParamDirection::out);
  EXPECT_EQ(op.raises, (std::vector<std::string>{"Bad"}));
  EXPECT_TRUE(d.operations[1].oneway);
  ASSERT_EQ(d.attributes.size(), 1u);
  EXPECT_TRUE(d.attributes[0].readonly);
}

TEST(IdlParse, ForwardDeclaration) {
  auto spec = parse(
      "interface Node;"
      "interface Edge { Node from(); };"
      "interface Node { void visit(); };");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec->interfaces.size(), 2u);
  EXPECT_EQ(spec->interfaces[0].operations[0].result.name, "Node");
}

TEST(IdlParse, NestedTypesInInterface) {
  auto spec = parse(
      "interface Repo {"
      "  struct Entry { string key; };"
      "  enum Mode { fast, safe };"
      "  typedef sequence<Entry> Entries;"
      "  Entries list(in Mode m);"
      "};");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec->structs[0].scoped_name, "Repo::Entry");
  EXPECT_EQ(spec->enums[0].scoped_name, "Repo::Mode");
  EXPECT_EQ(spec->interfaces[0].operations[0].result.name, "Repo::Entries");
}

struct BadIdlCase {
  const char* label;
  const char* source;
};

class IdlParseErrors : public ::testing::TestWithParam<BadIdlCase> {};

TEST_P(IdlParseErrors, Rejected) {
  auto spec = parse(GetParam().source);
  EXPECT_FALSE(spec.ok()) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Table, IdlParseErrors,
    ::testing::Values(
        BadIdlCase{"undefined_type", "interface I { Unknown get(); };"},
        BadIdlCase{"dup_struct", "struct S { long a; }; struct S { long a; };"},
        BadIdlCase{"dup_field", "struct S { long a; long a; };"},
        BadIdlCase{"dup_enumerator", "enum E { a, a };"},
        BadIdlCase{"dup_operation",
                   "interface I { void f(); void f(); };"},
        BadIdlCase{"dup_param", "interface I { void f(in long a, in long a); };"},
        BadIdlCase{"void_field", "struct S { void v; };"},
        BadIdlCase{"void_param", "interface I { void f(in void v); };"},
        BadIdlCase{"sequence_of_void", "typedef sequence<void> V;"},
        BadIdlCase{"missing_direction", "interface I { void f(long a); };"},
        BadIdlCase{"oneway_nonvoid", "interface I { oneway long f(); };"},
        BadIdlCase{"oneway_out_param",
                   "interface I { oneway void f(out long a); };"},
        BadIdlCase{"oneway_raises",
                   "exception E { string w; };"
                   "interface I { oneway void f() raises (E); };"},
        BadIdlCase{"raises_non_exception",
                   "struct S { long a; };"
                   "interface I { void f() raises (S); };"},
        BadIdlCase{"base_not_interface",
                   "struct S { long a; }; interface I : S { };"},
        BadIdlCase{"base_forward_only",
                   "interface F; interface I : F { };"},
        BadIdlCase{"unterminated_module", "module M { "},
        BadIdlCase{"missing_semicolon", "struct S { long a; }"},
        BadIdlCase{"unsigned_alone", "struct S { unsigned x; };"}),
    [](const auto& info) { return info.param.label; });

// ---------------------------------------------------------------- repository

const char* kGraphicsIdl = R"(
module gfx {
  struct Point { double x; double y; };
  enum Color { red, green, blue };
  typedef sequence<Point> Polygon;
  exception OutOfBounds { string what; };
  interface Shape {
    readonly attribute string id;
    attribute gfx::Color color;
    void move(in Point delta) raises (OutOfBounds);
  };
  interface Polygonal : Shape {
    Polygon outline();
  };
};
)";

TEST(IfR, RegisterAndLookup) {
  InterfaceRepository repo;
  ASSERT_TRUE(repo.register_idl(kGraphicsIdl).ok());
  EXPECT_NE(repo.find_struct("gfx::Point"), nullptr);
  EXPECT_NE(repo.find_struct("gfx::OutOfBounds"), nullptr);
  EXPECT_TRUE(repo.find_struct("gfx::OutOfBounds")->is_exception);
  EXPECT_NE(repo.find_enum("gfx::Color"), nullptr);
  EXPECT_EQ(repo.find_enum("gfx::Color")->index_of("green"), 1);
  EXPECT_EQ(repo.find_enum("gfx::Color")->index_of("purple"), -1);
  EXPECT_NE(repo.find_interface("gfx::Shape"), nullptr);
  EXPECT_NE(repo.find_typedef("gfx::Polygon"), nullptr);
  EXPECT_EQ(repo.find_struct("nope"), nullptr);
}

TEST(IfR, IdempotentReRegistration) {
  InterfaceRepository repo;
  ASSERT_TRUE(repo.register_idl(kGraphicsIdl).ok());
  EXPECT_TRUE(repo.register_idl(kGraphicsIdl).ok());
}

TEST(IfR, ConflictingRedefinitionRejected) {
  InterfaceRepository repo;
  ASSERT_TRUE(repo.register_idl("struct S { long a; };").ok());
  auto r = repo.register_idl("struct S { double a; };");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::already_exists);
  // Compatible re-registration still fine.
  EXPECT_TRUE(repo.register_idl("struct S { long a; };").ok());
}

TEST(IfR, AliasResolution) {
  InterfaceRepository repo;
  ASSERT_TRUE(repo
                  .register_idl("typedef long Meters;"
                                "typedef Meters Distance;"
                                "typedef sequence<Distance> Path;")
                  .ok());
  auto t = repo.resolve_alias(TypeRef::named(TypeKind::tk_alias, "Distance"));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->kind, TypeKind::tk_long);
  auto missing = repo.resolve_alias(TypeRef::named(TypeKind::tk_alias, "X"));
  EXPECT_FALSE(missing.ok());
}

TEST(IfR, FlattenOperationsBaseFirstWithAttributes) {
  InterfaceRepository repo;
  ASSERT_TRUE(repo.register_idl(kGraphicsIdl).ok());
  auto ops = repo.flatten_operations("gfx::Polygonal");
  ASSERT_TRUE(ops.ok()) << ops.error().to_string();
  std::vector<std::string> names;
  for (const auto& op : *ops) names.push_back(op.name);
  EXPECT_EQ(names, (std::vector<std::string>{"move", "_get_id", "_get_color",
                                             "_set_color", "outline"}));
  // Readonly attribute produced no setter.
  for (const auto& n : names) EXPECT_NE(n, "_set_id");
}

TEST(IfR, FindOperationIncludesInherited) {
  InterfaceRepository repo;
  ASSERT_TRUE(repo.register_idl(kGraphicsIdl).ok());
  auto op = repo.find_operation("gfx::Polygonal", "move");
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op->raises, (std::vector<std::string>{"gfx::OutOfBounds"}));
  EXPECT_FALSE(repo.find_operation("gfx::Polygonal", "nope").ok());
  EXPECT_FALSE(repo.find_operation("gfx::Missing", "move").ok());
}

TEST(IfR, IsARelation) {
  InterfaceRepository repo;
  ASSERT_TRUE(repo.register_idl(kGraphicsIdl).ok());
  EXPECT_TRUE(repo.is_a("gfx::Polygonal", "gfx::Shape"));
  EXPECT_TRUE(repo.is_a("gfx::Shape", "gfx::Shape"));
  EXPECT_FALSE(repo.is_a("gfx::Shape", "gfx::Polygonal"));
  EXPECT_FALSE(repo.is_a("gfx::Missing", "gfx::Shape"));
}

TEST(IfR, DiamondInheritanceFlattensOnce) {
  InterfaceRepository repo;
  ASSERT_TRUE(repo
                  .register_idl("interface A { void fa(); };"
                                "interface B : A { void fb(); };"
                                "interface C : A { void fc(); };"
                                "interface D : B, C { void fd(); };")
                  .ok());
  auto ops = repo.flatten_operations("D");
  ASSERT_TRUE(ops.ok());
  int fa_count = 0;
  for (const auto& op : *ops) fa_count += (op.name == "fa");
  EXPECT_EQ(fa_count, 1);
  EXPECT_EQ(ops->size(), 4u);
}

TEST(IfR, InterfaceNamesSorted) {
  InterfaceRepository repo;
  ASSERT_TRUE(repo.register_idl("interface B {}; interface A {};").ok());
  EXPECT_EQ(repo.interface_names(), (std::vector<std::string>{"A", "B"}));
}

}  // namespace
}  // namespace clc::idl
