// Unit and property tests for clc_util: bytes, ids, rng, strings, versions,
// results, logging.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"
#include "util/log.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/version.hpp"

namespace clc {
namespace {

// ---------------------------------------------------------------- bytes

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // non-hex
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, StringConversionRoundTrip) {
  const std::string s = "hello \x01 world";
  EXPECT_EQ(string_of(bytes_of(s)), s);
}

TEST(Bytes, Fnv1aKnownValues) {
  // FNV-1a 64 published test vectors.
  EXPECT_EQ(fnv1a64(bytes_of("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64(bytes_of("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64(bytes_of("foobar")), 0x85944171f73967e8ULL);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximation) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.25);
}

// ---------------------------------------------------------------- ids

TEST(Uuid, RandomNotNilAndUnique) {
  Rng rng(3);
  std::unordered_set<Uuid> seen;
  for (int i = 0; i < 1000; ++i) {
    const Uuid u = Uuid::random(rng);
    EXPECT_FALSE(u.is_nil());
    EXPECT_TRUE(seen.insert(u).second);
  }
}

TEST(Uuid, StringRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const Uuid u = Uuid::random(rng);
    EXPECT_EQ(Uuid::parse(u.to_string()), u);
  }
}

TEST(Uuid, ParseRejectsBadInput) {
  EXPECT_TRUE(Uuid::parse("").is_nil());
  EXPECT_TRUE(Uuid::parse("abc").is_nil());
  EXPECT_TRUE(Uuid::parse(std::string(32, 'g')).is_nil());
}

TEST(TypedIds, NotInterchangeableButComparable) {
  const NodeId n{7};
  const NodeId m{9};
  EXPECT_LT(n, m);
  EXPECT_TRUE(n.valid());
  EXPECT_FALSE(NodeId{}.valid());
  static_assert(!std::is_convertible_v<NodeId, InstanceId>);
  static_assert(!std::is_convertible_v<std::uint64_t, NodeId>);
}

// ---------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, PrefixSuffix) {
  EXPECT_TRUE(starts_with("component.xml", "component"));
  EXPECT_FALSE(starts_with("c", "component"));
  EXPECT_TRUE(ends_with("component.xml", ".xml"));
  EXPECT_FALSE(ends_with("x", ".xml"));
}

TEST(Strings, GlobMatch) {
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("video.*", "video.decoder"));
  EXPECT_FALSE(glob_match("video.*", "audio.decoder"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("*decoder*", "video.mpeg.decoder.v2"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_TRUE(glob_match("a*b*c", "a_xx_b_yy_c"));
  EXPECT_FALSE(glob_match("a*b*c", "a_xx_c"));
}

// ---------------------------------------------------------------- version

TEST(Version, ParseAndPrint) {
  auto v = Version::parse("1.2.3");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->major, 1u);
  EXPECT_EQ(v->minor, 2u);
  EXPECT_EQ(v->patch, 3u);
  EXPECT_EQ(v->to_string(), "1.2.3");
}

TEST(Version, ShortForms) {
  EXPECT_EQ(Version::parse("2")->to_string(), "2.0.0");
  EXPECT_EQ(Version::parse("2.5")->to_string(), "2.5.0");
  EXPECT_EQ(Version::parse(" 1.0.0 ")->to_string(), "1.0.0");
}

TEST(Version, ParseErrors) {
  EXPECT_FALSE(Version::parse("").ok());
  EXPECT_FALSE(Version::parse("1.").ok());
  EXPECT_FALSE(Version::parse(".1").ok());
  EXPECT_FALSE(Version::parse("1.2.3.4").ok());
  EXPECT_FALSE(Version::parse("1.x").ok());
  EXPECT_FALSE(Version::parse("99999999999").ok());
}

TEST(Version, Ordering) {
  EXPECT_LT(*Version::parse("1.2.3"), *Version::parse("1.2.4"));
  EXPECT_LT(*Version::parse("1.9.9"), *Version::parse("2.0.0"));
  EXPECT_EQ(*Version::parse("1.2"), *Version::parse("1.2.0"));
}

struct ConstraintCase {
  const char* constraint;
  const char* version;
  bool expect;
};

class VersionConstraintMatch
    : public ::testing::TestWithParam<ConstraintCase> {};

TEST_P(VersionConstraintMatch, Matches) {
  const auto& p = GetParam();
  auto c = VersionConstraint::parse(p.constraint);
  ASSERT_TRUE(c.ok()) << p.constraint;
  auto v = Version::parse(p.version);
  ASSERT_TRUE(v.ok()) << p.version;
  EXPECT_EQ(c->matches(*v), p.expect)
      << p.constraint << " vs " << p.version;
}

INSTANTIATE_TEST_SUITE_P(
    Table, VersionConstraintMatch,
    ::testing::Values(
        ConstraintCase{"any", "0.0.1", true},
        ConstraintCase{"*", "9.9.9", true},
        ConstraintCase{">=1.2", "1.2.0", true},
        ConstraintCase{">=1.2", "1.1.9", false},
        ConstraintCase{">1.2", "1.2.0", false},
        ConstraintCase{">1.2", "1.2.1", true},
        ConstraintCase{"<=2.0", "2.0.0", true},
        ConstraintCase{"<2.0", "2.0.0", false},
        ConstraintCase{"==1.0.0", "1.0.0", true},
        ConstraintCase{"==1.0.0", "1.0.1", false},
        ConstraintCase{"!=1.0.0", "1.0.1", true},
        ConstraintCase{"1.5", "1.5.0", true},    // bare version == exact
        ConstraintCase{"1.5", "1.5.1", false},
        ConstraintCase{"~2.1", "2.1.0", true},   // compatible: same major
        ConstraintCase{"~2.1", "2.9.0", true},
        ConstraintCase{"~2.1", "3.0.0", false},
        ConstraintCase{"~2.1", "2.0.9", false}));

TEST(VersionConstraint, ParseErrors) {
  EXPECT_FALSE(VersionConstraint::parse(">=").ok());
  EXPECT_FALSE(VersionConstraint::parse("abc").ok());
}

TEST(VersionConstraint, RoundTripToString) {
  for (const char* s : {"==1.2.3", ">=1.0.0", "<2.0.0", "~3.1.0", "any"}) {
    auto c = VersionConstraint::parse(s);
    ASSERT_TRUE(c.ok());
    auto c2 = VersionConstraint::parse(c->to_string());
    ASSERT_TRUE(c2.ok());
    EXPECT_EQ(c->to_string(), c2->to_string());
  }
}

// ---------------------------------------------------------------- result

TEST(Result, ValueAccess) {
  Result<int> r = 42;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, ErrorAccess) {
  Result<int> r = Error{Errc::not_found, "missing"};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
  EXPECT_EQ(r.error().to_string(), "not_found: missing");
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_THROW((void)r.value(), BadResultAccess);
}

TEST(Result, VoidSpecialization) {
  Result<void> good = ok_result();
  EXPECT_TRUE(good.ok());
  EXPECT_NO_THROW(good.value());
  Result<void> bad{Errc::timeout, "late"};
  EXPECT_FALSE(bad.ok());
  EXPECT_THROW(bad.value(), BadResultAccess);
}

TEST(Result, MapPropagates) {
  Result<int> r = 10;
  auto s = r.map([](int v) { return v * 2; });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, 20);
  Result<int> e = Error{Errc::timeout, "t"};
  auto f = e.map([](int v) { return v * 2; });
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error().code, Errc::timeout);
}

TEST(Errc, AllNamesStable) {
  EXPECT_STREQ(errc_name(Errc::ok), "ok");
  EXPECT_STREQ(errc_name(Errc::signature_mismatch), "signature_mismatch");
  EXPECT_STREQ(errc_name(Errc::unreachable), "unreachable");
}

// ---------------------------------------------------------------- clock

TEST(Clock, ManualClockAdvances) {
  ManualClock c(100);
  EXPECT_EQ(c.now(), 100);
  c.advance(milliseconds(5));
  EXPECT_EQ(c.now(), 100 + 5000);
  c.set(seconds(1));
  EXPECT_EQ(c.now(), 1000000);
}

TEST(Clock, SystemClockMonotone) {
  SystemClock c;
  const auto a = c.now();
  const auto b = c.now();
  EXPECT_LE(a, b);
}

TEST(Clock, DurationHelpers) {
  EXPECT_EQ(milliseconds(3), 3000);
  EXPECT_EQ(seconds(2), 2000000);
  EXPECT_DOUBLE_EQ(to_seconds(1500000), 1.5);
}

// ---------------------------------------------------------------- log

TEST(Log, CaptureAndLevelFilter) {
  std::string sink;
  set_log_capture(&sink);
  set_log_level(LogLevel::warn);
  CLC_LOG(info, "node") << "ignored";
  CLC_LOG(warn, "node") << "kept " << 42;
  set_log_level(LogLevel::off);
  set_log_capture(nullptr);
  EXPECT_EQ(sink, "[WARN] node: kept 42\n");
}

}  // namespace
}  // namespace clc
