// Crash fault tolerance tests (DESIGN.md §11): node crash/restart lifecycle
// with incarnation fencing, stale-reference rejection, checkpoint-based
// instance failover, registry anti-entropy repair after rebirth, and the
// seeded 5-node recovery scenario whose event log must replay identically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/node.hpp"
#include "orb/resilience.hpp"
#include "support/test_components.hpp"

namespace clc::core {
namespace {

using testing::counter_package;

CohesionConfig fast_cohesion() {
  CohesionConfig cfg;
  cfg.heartbeat = seconds(1);
  cfg.group_size = 4;
  cfg.query_timeout = seconds(3);
  return cfg;
}

FailoverConfig fast_failover() {
  FailoverConfig cfg;
  cfg.checkpoint_interval = seconds(2);
  cfg.replicas = 2;
  return cfg;
}

/// N-node world with converged membership and fast checkpointing.
struct World {
  explicit World(std::size_t n) : net(fast_cohesion(), fast_failover()) {
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(&net.add_node());
    net.settle();
  }
  LocalNetwork net;
  std::vector<Node*> nodes;
};

// ------------------------------------------------------- crash/restart basics

TEST(Crash, RestartKeepsDiskAndBumpsIncarnation) {
  World w(3);
  Node& b = *w.nodes[1];
  ASSERT_TRUE(b.install(counter_package()).ok());
  const std::string old_endpoint = b.endpoint();

  w.net.crash(b.id());
  EXPECT_TRUE(w.net.is_crashed(b.id()));
  EXPECT_EQ(b.container().size(), 0u);
  EXPECT_EQ(b.repository().size(), 0u);  // RAM view gone until reload

  w.net.restart(b.id());
  EXPECT_FALSE(w.net.is_crashed(b.id()));
  EXPECT_EQ(b.incarnation(), 2u);
  EXPECT_NE(b.endpoint(), old_endpoint);  // fresh endpoint, stale refs die
  // The "disk" survived the crash: installed packages are back.
  EXPECT_TRUE(b.repository().has("demo.counter", VersionConstraint{}));
  w.net.settle();
  EXPECT_TRUE(b.cohesion().joined());
}

TEST(Crash, CrashedNodeLosesHeldCheckpoints) {
  World w(3);
  Node& a = *w.nodes[0];
  ASSERT_TRUE(a.install(counter_package()).ok());
  ASSERT_TRUE(a.acquire_local("demo.counter", VersionConstraint{}).ok());
  a.checkpoint_now();
  Node& b = *w.nodes[1];
  ASSERT_GE(b.held_checkpoints().size(), 1u);
  w.net.crash(b.id());
  EXPECT_EQ(b.held_checkpoints().size(), 0u);
}

TEST(Crash, StaleReferenceFailsRetryably) {
  World w(3);
  Node& a = *w.nodes[0];
  Node& b = *w.nodes[1];
  ASSERT_TRUE(b.install(counter_package()).ok());
  w.net.settle();
  auto bound = a.resolve("demo.counter", VersionConstraint{}, Binding::remote);
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  ASSERT_TRUE(a.orb().call(bound->primary, "increment").ok());

  w.net.crash(b.id());
  w.net.restart(b.id());
  w.net.settle();
  // The pre-crash reference names the old incarnation's endpoint: the call
  // must fail, and fail *retryably* so policy-driven clients re-resolve.
  auto stale = a.orb().call(bound->primary, "increment");
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(orb::errc_is_retryable(stale.error().code))
      << stale.error().to_string();
}

// ------------------------------------------------------------------ failover

TEST(Crash, LeafDeathRestoresInstanceWithState) {
  World w(4);
  Node& victim = *w.nodes[3];
  ASSERT_TRUE(victim.install(counter_package()).ok());
  auto bound = victim.acquire_local("demo.counter", VersionConstraint{});
  ASSERT_TRUE(bound.ok());
  for (int i = 0; i < 7; ++i)
    ASSERT_TRUE(victim.orb().call(bound->primary, "increment").ok());
  // Let at least one checkpoint round ship the state to the holders.
  w.net.advance(seconds(5));
  Node& holder = *w.nodes[0];  // lowest-id peer is always in the holder set
  ASSERT_GE(holder.held_checkpoints().size(), 1u);

  w.net.crash(victim.id());
  w.net.advance(seconds(15));  // detection + node_dead broadcast + restore

  EXPECT_EQ(holder.metrics().counter("failover.instances_restored").value(),
            1u);
  auto restored = holder.container().find_active("demo.counter",
                                                 VersionConstraint{});
  ASSERT_TRUE(restored.ok()) << "instance was not re-instantiated";
  auto port = holder.container().provided_port(*restored, "counter");
  ASSERT_TRUE(port.ok());
  auto value = holder.orb().call(*port, "value");
  ASSERT_TRUE(value.ok()) << value.error().to_string();
  EXPECT_EQ(*value, orb::Value(std::int64_t{7}));  // externalized state intact
}

TEST(Crash, ExactlyOneHolderRestores) {
  World w(5);
  Node& victim = *w.nodes[4];
  ASSERT_TRUE(victim.install(counter_package()).ok());
  ASSERT_TRUE(victim.acquire_local("demo.counter", VersionConstraint{}).ok());
  w.net.advance(seconds(5));
  w.net.crash(victim.id());
  w.net.advance(seconds(20));
  std::uint64_t restored = 0;
  std::size_t live_instances = 0;
  for (Node* n : w.nodes) {
    if (w.net.is_crashed(n->id())) continue;
    restored += n->metrics().counter("failover.instances_restored").value();
    live_instances += n->container().size();
  }
  EXPECT_EQ(restored, 1u) << "holder election must pick a unique winner";
  EXPECT_EQ(live_instances, 1u);
}

TEST(Crash, RestartedOriginCheckpointsAreFenced) {
  World w(3);
  Node& a = *w.nodes[0];
  Node& b = *w.nodes[1];
  ASSERT_TRUE(b.install(counter_package()).ok());
  auto bound = b.acquire_local("demo.counter", VersionConstraint{});
  ASSERT_TRUE(bound.ok());
  ASSERT_TRUE(b.orb().call(bound->primary, "increment").ok());
  w.net.advance(seconds(5));
  ASSERT_GE(a.held_checkpoints().size(), 1u);

  // B restarts: its incarnation-1 checkpoints must never be restored (the
  // new life owns its instances), so a later B death purges them first.
  w.net.crash(b.id());
  w.net.restart(b.id());
  w.net.settle();
  ASSERT_EQ(b.incarnation(), 2u);
  w.net.crash(b.id());
  w.net.advance(seconds(15));
  EXPECT_EQ(a.metrics().counter("failover.instances_restored").value(), 0u);
  EXPECT_EQ(a.held_checkpoints().records_for(b.id()).size(), 0u);
}

// ------------------------------------------------- registry anti-entropy

TEST(Crash, RejoinUnderHigherIncarnationClearsTombstones) {
  World w(3);
  Node& a = *w.nodes[0];
  Node& b = *w.nodes[1];
  Node& c = *w.nodes[2];
  ASSERT_TRUE(c.install(counter_package()).ok());
  w.net.settle();

  w.net.crash(c.id());
  w.net.advance(seconds(12));  // detection + node_dead broadcast
  EXPECT_TRUE(a.cohesion().has_tombstone(c.id()));
  // Dead node's registry entries no longer answer queries.
  ComponentQuery q;
  q.name_pattern = "demo.counter";
  auto gone = a.query_network(q);
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->empty()) << "stale registry entry survived the death";

  w.net.restart(c.id());
  w.net.advance(seconds(20));  // rejoin + heartbeats + anti-entropy rounds
  EXPECT_EQ(c.incarnation(), 2u);
  for (Node* n : {&a, &b}) {
    EXPECT_FALSE(n->cohesion().has_tombstone(c.id()))
        << "node " << n->id().to_string() << " still fences the reborn node";
    EXPECT_EQ(n->cohesion().known_incarnation(c.id()), 2u);
  }
  // The reborn node re-installed from disk and serves queries again.
  auto back = a.query_network(q);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ(back->front().node, c.id());
}

TEST(Crash, AntiEntropySpreadsMissedDeathVerdict) {
  CohesionConfig cfg = fast_cohesion();
  cfg.anti_entropy_every = 2;
  LocalNetwork net(cfg, fast_failover());
  std::vector<Node*> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(&net.add_node());
  net.settle();
  Node& victim = *nodes[3];
  net.crash(victim.id());
  net.advance(seconds(25));  // detection + several anti-entropy rounds
  for (Node* n : nodes) {
    if (net.is_crashed(n->id())) continue;
    EXPECT_TRUE(n->cohesion().has_tombstone(victim.id()))
        << "node " << n->id().to_string() << " missed the death verdict";
  }
}

// ----------------------------------------------- seeded 5-node acceptance

/// The acceptance scenario: 5 nodes, a stateful instance on the root MRM,
/// crash the root, verify recovery end to end, then restart it. Returns the
/// concatenated per-node recovery logs for replay-determinism comparison.
std::vector<std::string> run_root_crash_scenario() {
  World w(5);
  Node& root = *w.nodes[0];
  EXPECT_TRUE(root.cohesion().is_root()) << "node 1 should found the network";
  EXPECT_TRUE(root.install(counter_package()).ok());
  auto bound = root.acquire_local("demo.counter", VersionConstraint{});
  EXPECT_TRUE(bound.ok());
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(root.orb().call(bound->primary, "increment").ok());
  w.net.advance(seconds(5));  // checkpoints reach the holders

  Node& client = *w.nodes[3];
  auto remote = client.resolve("demo.counter", VersionConstraint{},
                               Binding::remote);
  EXPECT_TRUE(remote.ok());

  // Crash the root MRM (it hosts the stateful instance AND the directory).
  w.net.crash(root.id());
  w.net.advance(seconds(25));  // detection + promotion + failover

  // Exactly one replica promoted, the directory survived.
  std::uint64_t promotions = 0;
  std::vector<Node*> alive;
  for (Node* n : w.nodes) {
    if (w.net.is_crashed(n->id())) continue;
    alive.push_back(n);
    promotions += n->cohesion().stats().promotions;
  }
  EXPECT_EQ(promotions, 1u);

  // The in-flight idempotent invocation path: the old reference fails
  // retryably, a re-resolve binds the re-instantiated instance, and the
  // externalized state is intact.
  auto stale = client.orb().call(remote->primary, "value");
  EXPECT_FALSE(stale.ok());
  EXPECT_TRUE(orb::errc_is_retryable(stale.error().code));
  auto rebound = client.resolve("demo.counter", VersionConstraint{},
                                Binding::remote);
  EXPECT_TRUE(rebound.ok()) << "instance was not re-instantiated elsewhere";
  if (rebound.ok()) {
    auto value = client.orb().call(rebound->primary, "value");
    EXPECT_TRUE(value.ok());
    if (value.ok()) EXPECT_EQ(*value, orb::Value(std::int64_t{3}));
  }

  // Restart the old root: it must rejoin under a higher incarnation with
  // zero stale state surviving anti-entropy.
  w.net.restart(root.id());
  w.net.advance(seconds(25));
  EXPECT_EQ(root.incarnation(), 2u);
  EXPECT_TRUE(root.cohesion().joined());
  EXPECT_FALSE(root.cohesion().is_root()) << "reborn node must not split-brain";
  for (Node* n : alive) {
    EXPECT_FALSE(n->cohesion().has_tombstone(root.id()));
    EXPECT_EQ(n->cohesion().known_incarnation(root.id()), 2u);
  }

  std::vector<std::string> log;
  for (Node* n : w.nodes) {
    log.push_back("node " + n->id().to_string());
    for (const std::string& line : n->recovery_log()) log.push_back(line);
  }
  return log;
}

TEST(CrashChaos, RootCrashRecoveryLogIdenticalAcrossRuns) {
  const auto first = run_root_crash_scenario();
  const auto second = run_root_crash_scenario();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "crash recovery must replay deterministically";
}

}  // namespace
}  // namespace clc::core
