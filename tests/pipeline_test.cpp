// Concurrency tier: asynchronous pipelined invocations.
//
// Exercises the AMI surface (PendingInvocation), true pipelining over the
// multiplexed TCP transport (many requests in flight on one connection,
// replies correlated by id), the server-side parallel dispatch pool, the
// loopback async worker pool, and chaos variants where a seeded fault plan
// drops, delays and reorders messages mid-pipeline. Everything here runs
// under ThreadSanitizer in CI -- the assertions are invariants (no lost or
// duplicated reply, every reply matches its request), not timings.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/node.hpp"
#include "fault/faulty_transport.hpp"
#include "orb/orb.hpp"
#include "orb/resilience.hpp"
#include "orb/tcp.hpp"
#include "orb/transport.hpp"
#include "orb/value.hpp"
#include "support/test_components.hpp"
#include "util/clock.hpp"

namespace clc::orb {
namespace {

const char* kEchoIdl = R"(
module p {
  interface Echo {
    long twice(in long v);
    string shout(in string s);
    long slow(in long v);
    oneway void fire(in string event);
  };
};
)";

std::shared_ptr<idl::InterfaceRepository> make_repo() {
  auto repo = std::make_shared<idl::InterfaceRepository>();
  EXPECT_TRUE(repo->register_idl(kEchoIdl).ok());
  return repo;
}

/// Servant counters shared with test assertions; atomics because the TCP
/// server dispatches on a worker pool.
struct Served {
  std::atomic<int> calls{0};
  std::atomic<int> fired{0};
  // Concurrency probe for the dispatch-pool test.
  std::mutex mutex;
  std::condition_variable cv;
  int inflight = 0;
  int peak_inflight = 0;
};

std::shared_ptr<DynamicServant> make_echo_servant(Served* served) {
  auto servant = std::make_shared<DynamicServant>("p::Echo");
  servant->on("twice", [served](ServerRequest& req) -> Result<void> {
    served->calls.fetch_add(1);
    req.set_result(
        Value(static_cast<std::int32_t>(2 * *req.arg(0).to_int())));
    return {};
  });
  servant->on("shout", [served](ServerRequest& req) -> Result<void> {
    served->calls.fetch_add(1);
    req.set_result(Value(req.arg(0).as<std::string>() + "!"));
    return {};
  });
  servant->on("slow", [served](ServerRequest& req) -> Result<void> {
    served->calls.fetch_add(1);
    {
      std::unique_lock lock(served->mutex);
      ++served->inflight;
      served->peak_inflight = std::max(served->peak_inflight,
                                       served->inflight);
      served->cv.notify_all();
      // Hold until a second request is dispatched alongside us (or a
      // generous timeout, so an accidentally serial server still finishes).
      served->cv.wait_for(lock, std::chrono::seconds(2),
                          [served] { return served->peak_inflight >= 2; });
      --served->inflight;
    }
    req.set_result(Value(static_cast<std::int32_t>(*req.arg(0).to_int())));
    return {};
  });
  servant->on("fire", [served](ServerRequest&) -> Result<void> {
    served->fired.fetch_add(1);
    return {};
  });
  return servant;
}

/// One Orb pair joined by the in-process loopback (inline completion).
struct LoopPair {
  std::shared_ptr<idl::InterfaceRepository> repo = make_repo();
  std::shared_ptr<LoopbackNetwork> net = std::make_shared<LoopbackNetwork>();
  Served served;
  std::unique_ptr<Orb> server;
  std::unique_ptr<Orb> client;
  ObjectRef echo;

  LoopPair() {
    server = std::make_unique<Orb>(NodeId{1}, repo);
    client = std::make_unique<Orb>(NodeId{2}, repo);
    auto* s = server.get();
    server->set_endpoint(net->register_endpoint(
        [s](BytesView frame) { return s->handle_frame(frame); }));
    client->add_transport("loop", net);
    echo = server->activate(make_echo_servant(&served));
  }
};

/// One Orb pair joined by real sockets with a parallel dispatch pool.
struct TcpPair {
  std::shared_ptr<idl::InterfaceRepository> repo = make_repo();
  Served served;
  std::unique_ptr<Orb> server;
  std::unique_ptr<Orb> client;
  TcpServer listener;
  ObjectRef echo;

  explicit TcpPair(std::size_t workers = 4) {
    server = std::make_unique<Orb>(NodeId{1}, repo);
    client = std::make_unique<Orb>(NodeId{2}, repo);
    auto* s = server.get();
    auto ep = listener.start(
        [s](BytesView frame) { return s->handle_frame(frame); },
        /*port=*/0, workers);
    EXPECT_TRUE(ep.ok()) << ep.error().to_string();
    server->set_endpoint(*ep);
    client->set_endpoint("tcp:127.0.0.1:0");  // distinct, not serving
    client->add_transport("tcp", std::make_shared<TcpTransport>());
    echo = server->activate(make_echo_servant(&served));
  }
};

// ------------------------------------------------------- pending handles

TEST(PendingInvocation, CompletesInlineOverLoopback) {
  LoopPair p;
  auto pending = p.client->invoke_async(p.echo, "twice",
                                        {Value(std::int32_t{21})});
  ASSERT_TRUE(pending.valid());
  // Loopback with no worker pool completes on the caller thread.
  EXPECT_TRUE(pending.ready());
  EXPECT_GT(pending.request_id(), 0u);
  auto out = pending.take();
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(out->result, Value(std::int32_t{42}));
}

TEST(PendingInvocation, ThenRunsForCompletedAndPendingInvocations) {
  LoopPair p;
  int ran = 0;
  auto pending = p.client->invoke_async(p.echo, "shout", {Value("hey")});
  pending.then([&ran](const Result<InvokeOutcome>& out) {
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out->result, Value(std::string("hey!")));
    ++ran;
  });
  EXPECT_EQ(ran, 1);  // already complete: continuation ran inline
}

TEST(PendingInvocation, ErrorsCompleteTheHandleNotThrow) {
  LoopPair p;
  auto nil = p.client->invoke_async(ObjectRef{}, "twice",
                                    {Value(std::int32_t{1})});
  ASSERT_TRUE(nil.ready());
  EXPECT_EQ(nil.take().error().code, Errc::invalid_argument);

  auto bad_op = p.client->invoke_async(p.echo, "no_such_op", {});
  ASSERT_TRUE(bad_op.ready());
  EXPECT_FALSE(bad_op.take().ok());
}

TEST(PendingInvocation, TakeArgsReturnsOutParams) {
  // twice has no out params, but take_args must still hand the vector back.
  LoopPair p;
  auto pending = p.client->invoke_async(p.echo, "twice",
                                        {Value(std::int32_t{5})});
  auto args = pending.take_args();
  ASSERT_EQ(args.size(), 1u);
  EXPECT_EQ(args[0], Value(std::int32_t{5}));
}

// ------------------------------------------------------------- tcp pipeline

TEST(TcpPipeline, ManyInFlightRequestsCorrelateReplies) {
  TcpPair p;
  constexpr int kDepth = 64;
  std::vector<PendingInvocation> pending;
  pending.reserve(kDepth);
  for (int i = 0; i < kDepth; ++i)
    pending.push_back(p.client->invoke_async(
        p.echo, "twice", {Value(static_cast<std::int32_t>(i))}));

  // Request ids are monotone in issue order and unique.
  for (int i = 1; i < kDepth; ++i)
    EXPECT_LT(pending[i - 1].request_id(), pending[i].request_id());

  // Every reply matches its own request -- demultiplexing by correlation
  // id, not arrival order.
  for (int i = 0; i < kDepth; ++i) {
    auto out = pending[i].take();
    ASSERT_TRUE(out.ok()) << i << ": " << out.error().to_string();
    EXPECT_EQ(out->result, Value(static_cast<std::int32_t>(2 * i)));
  }
  EXPECT_EQ(p.served.calls.load(), kDepth);
}

TEST(TcpPipeline, ServerDispatchesPipelinedRequestsConcurrently) {
  TcpPair p(/*workers=*/4);
  auto a = p.client->invoke_async(p.echo, "slow", {Value(std::int32_t{1})});
  auto b = p.client->invoke_async(p.echo, "slow", {Value(std::int32_t{2})});
  ASSERT_TRUE(a.take().ok());
  ASSERT_TRUE(b.take().ok());
  // Both requests travelled the same connection; the dispatch pool must
  // have executed them simultaneously (each blocks until it sees the other).
  EXPECT_GE(p.served.peak_inflight, 2);
}

TEST(TcpPipeline, MultiThreadedClientsShareOneConnection) {
  TcpPair p;
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 50;
  std::atomic<int> ok{0}, mismatched{0};
  std::mutex ids_mutex;
  std::set<std::uint64_t> ids;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::pair<std::int32_t, PendingInvocation>> mine;
      mine.reserve(kCallsPerThread);
      for (int i = 0; i < kCallsPerThread; ++i) {
        const auto v = static_cast<std::int32_t>(t * kCallsPerThread + i);
        mine.emplace_back(v, p.client->invoke_async(p.echo, "twice",
                                                    {Value(v)}));
      }
      for (auto& [v, pending] : mine) {
        {
          std::lock_guard lock(ids_mutex);
          // Ids must be unique across all threads (no reply stealing).
          EXPECT_TRUE(ids.insert(pending.request_id()).second);
        }
        auto out = pending.take();
        if (!out.ok())
          continue;
        (out->result == Value(static_cast<std::int32_t>(2 * v)) ? ok
                                                                : mismatched)
            .fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  // No reply was lost, duplicated or delivered to the wrong caller.
  EXPECT_EQ(ok.load(), kThreads * kCallsPerThread);
  EXPECT_EQ(mismatched.load(), 0);
  EXPECT_EQ(p.served.calls.load(), kThreads * kCallsPerThread);
}

TEST(TcpPipeline, OnewaySubmissionsDoNotBlockThePipeline) {
  TcpPair p;
  // Interleave oneways with request/replies on the same connection.
  std::vector<PendingInvocation> pending;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(p.client->send(p.echo, "fire", {Value("evt")}).ok());
    pending.push_back(p.client->invoke_async(
        p.echo, "twice", {Value(static_cast<std::int32_t>(i))}));
  }
  for (int i = 0; i < 16; ++i) {
    auto out = pending[i].take();
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    EXPECT_EQ(out->result, Value(static_cast<std::int32_t>(2 * i)));
  }
  // Oneways eventually execute; the dispatch pool may still be running the
  // last one when the final reply lands, so poll briefly.
  for (int i = 0; i < 200 && p.served.fired.load() < 16; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(p.served.fired.load(), 16);
}

TEST(TcpPipeline, ServerStopFailsPendingInvocationsCleanly) {
  TcpPair p;
  // Prime the connection so the client reader is up.
  ASSERT_TRUE(p.client->call(p.echo, "twice", {Value(std::int32_t{1})}).ok());
  p.listener.stop();
  auto pending = p.client->invoke_async(p.echo, "twice",
                                        {Value(std::int32_t{2})});
  auto out = pending.take();
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(errc_is_retryable(out.error().code));
}

// ------------------------------------------------------- loopback workers

TEST(LoopbackWorkers, AsyncPoolPreservesEveryReply) {
  LoopPair p;
  p.net->start_async_workers(4);
  constexpr int kCalls = 200;
  std::vector<PendingInvocation> pending;
  pending.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i)
    pending.push_back(p.client->invoke_async(
        p.echo, "twice", {Value(static_cast<std::int32_t>(i))}));
  for (int i = 0; i < kCalls; ++i) {
    auto out = pending[i].take();
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    EXPECT_EQ(out->result, Value(static_cast<std::int32_t>(2 * i)));
  }
  EXPECT_EQ(p.served.calls.load(), kCalls);
  p.net->stop_async_workers();
}

TEST(LoopbackWorkers, StopFailsQueuedSubmissionsInsteadOfLosingThem) {
  LoopbackNetwork net;
  net.start_async_workers(1);
  net.stop_async_workers();  // idempotent, empty queue
  // With workers stopped, submit() falls back to inline completion.
  std::atomic<bool> completed{false};
  net.submit("loop:404", Bytes{1}, [&completed](Result<Bytes> r) {
    EXPECT_FALSE(r.ok());
    completed.store(true);
  });
  EXPECT_TRUE(completed.load());
}

// ------------------------------------------------------------------ chaos

/// Deterministic chaos: seeded drops mid-pipeline with retry armed.
/// Loopback completes inline, virtual clock absorbs the backoff, so the
/// whole schedule is a pure function of the plan seed.
TEST(PipelineChaos, SeededDropsMidPipelineRetryOrFailCleanly) {
  LoopPair p;
  auto faults = std::make_shared<fault::FaultyTransport>(p.net);
  p.client->add_transport("loop", faults);  // replace the direct loopback
  ManualClock clock;
  p.client->set_clock(&clock);
  p.client->set_sleep_fn([&clock](Duration d) { clock.advance(d); });
  faults->set_sleep_fn([&clock](Duration d) { clock.advance(d); });

  InvocationPolicies policies;
  policies.retry.max_attempts = 3;
  p.client->set_invocation_policies(policies);

  fault::FaultPlan plan;
  plan.seed = 7;
  plan.drop_probability = 0.3;
  faults->injector().arm(plan);

  constexpr int kCalls = 64;
  InvokeOptions idem;
  idem.idempotent = true;
  int succeeded = 0, timed_out = 0;
  for (int i = 0; i < kCalls; ++i) {
    auto pending = p.client->invoke_async(
        p.echo, "twice", {Value(static_cast<std::int32_t>(i))}, idem);
    auto out = pending.take();
    if (out.ok()) {
      EXPECT_EQ(out->result, Value(static_cast<std::int32_t>(2 * i)));
      ++succeeded;
    } else {
      EXPECT_EQ(out.error().code, Errc::timeout);
      ++timed_out;
    }
  }
  EXPECT_EQ(succeeded + timed_out, kCalls);
  // 30% drop with 3 attempts: most calls get through, some do not.
  EXPECT_GT(succeeded, kCalls / 2);
  EXPECT_GT(p.client->metrics().counter("orb.retries").value(), 0u);

  faults->injector().disarm();
  auto clean = p.client->call(p.echo, "twice", {Value(std::int32_t{3})});
  ASSERT_TRUE(clean.ok());
}

/// Chaos + real concurrency: injected delays reorder replies across the
/// loopback worker pool; correlation must still route every reply to its
/// own pending invocation.
TEST(PipelineChaos, InjectedDelaysReorderRepliesWithoutCrosstalk) {
  LoopPair p;
  auto faults = std::make_shared<fault::FaultyTransport>(p.net);
  p.client->add_transport("loop", faults);
  p.net->start_async_workers(4);

  fault::FaultPlan plan;
  plan.seed = 11;
  plan.delay_probability = 0.5;
  plan.delay_min = 500;   // µs, real sleeps on the worker threads
  plan.delay_max = 3000;
  faults->injector().arm(plan);

  constexpr int kCalls = 48;
  std::vector<PendingInvocation> pending;
  pending.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i)
    pending.push_back(p.client->invoke_async(
        p.echo, "twice", {Value(static_cast<std::int32_t>(i))}));
  for (int i = 0; i < kCalls; ++i) {
    auto out = pending[i].take();
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    EXPECT_EQ(out->result, Value(static_cast<std::int32_t>(2 * i)));
  }
  EXPECT_EQ(p.served.calls.load(), kCalls);
  p.net->stop_async_workers();
}

/// Partition chaos on the async path: an invoke_async across a severed
/// link must fail with *retryable* Errc::unreachable (so AMI callers can
/// re-issue after a heal), the per-endpoint circuit breaker must open
/// under the failure burst and fail fast, and after the heal its half-open
/// probe must close it again -- availability recovers without restarting
/// anything.
TEST(PipelineChaos, PartitionFailsInvokeAsyncRetryablyAndBreakerRecovers) {
  core::CohesionConfig fast;
  fast.heartbeat = seconds(1);
  core::FailoverConfig no_ckpt;
  no_ckpt.checkpoint_interval = 0;
  core::LocalNetwork world(fast, no_ckpt);
  core::Node& a = world.add_node();
  core::Node& b = world.add_node();
  ASSERT_TRUE(b.install(clc::testing::calculator_package()).ok());
  world.settle();
  auto bound = a.resolve("demo.calculator", VersionConstraint{},
                         core::Binding::remote);
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  InvokeOptions idem;
  idem.idempotent = true;
  auto add_async = [&](std::int32_t v) {
    return a.orb().invoke_async(bound->primary, "add",
                                {Value(v), Value(std::int32_t{1})}, idem);
  };

  // Warm path: pipelined call completes across the healthy link.
  {
    auto out = add_async(1).take();
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    EXPECT_EQ(out->result, Value(std::int32_t{2}));
  }

  world.partition({a.id()}, {b.id()});
  {
    auto out = add_async(2).take();
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.error().code, Errc::unreachable);
    EXPECT_TRUE(errc_is_retryable(out.error().code));
  }
  EXPECT_GT(a.metrics().counter("orb.partitioned").value(), 0u);

  // Keep failing until the breaker opens; open means fail-fast refusals
  // that never touch the link.
  for (int i = 0; i < 8; ++i) (void)add_async(i).take();
  using State = CircuitBreaker::State;
  EXPECT_EQ(a.orb().breaker_state(bound->primary.endpoint), State::open);
  const std::uint64_t blocked_before =
      a.metrics().counter("orb.partitioned").value();
  {
    auto out = add_async(9).take();
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.error().code, Errc::refused);
  }
  EXPECT_EQ(a.metrics().counter("orb.partitioned").value(), blocked_before);

  // Heal; after the cool-down the half-open probe succeeds and the breaker
  // closes again (cohesion's own heartbeats may already have probed it).
  world.heal_partition();
  world.advance(fast.heartbeat * 5 / 2);
  {
    auto out = add_async(10).take();
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    EXPECT_EQ(out->result, Value(std::int32_t{11}));
  }
  EXPECT_EQ(a.orb().breaker_state(bound->primary.endpoint), State::closed);
}

}  // namespace
}  // namespace clc::orb
