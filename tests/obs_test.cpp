// Tests for the observability subsystem: the unified metrics registry, the
// Portable-Interceptors-style chain (ordering + service-context transport
// through real wire frames), and distributed tracing (context propagation,
// parent/child linkage across nodes, causal-tree stitching).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "obs/interceptor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orb/message.hpp"
#include "orb/orb.hpp"
#include "orb/transport.hpp"
#include "session/session.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/test_components.hpp"

namespace clc::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  c.add(5);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBucketsAndSummary) {
  Histogram h({10, 100, 1000});
  for (std::uint64_t v : {1u, 5u, 50u, 500u, 5000u}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5556u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_DOUBLE_EQ(h.mean(), 5556.0 / 5.0);
  // Buckets: (..10]=2, (10..100]=1, (100..1000]=1, overflow=1.
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
  // Median falls in the first bucket.
  EXPECT_LE(h.quantile(0.5), 100.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{0, 0, 0, 0}));
}

TEST(Metrics, RegistryFindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.hits");
  Counter& b = reg.counter("x.hits");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(reg.counter("x.hits").value(), 1u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, PrefixScopedResetLeavesOtherMetricsAlone) {
  MetricsRegistry reg;
  reg.counter("orb.calls").inc(7);
  reg.counter("transport.bytes").inc(9);
  reg.gauge("orb.load").set(3.0);
  reg.reset("orb.");
  EXPECT_EQ(reg.counter("orb.calls").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("orb.load").value(), 0.0);
  EXPECT_EQ(reg.counter("transport.bytes").value(), 9u);
  reg.reset();  // no prefix: everything
  EXPECT_EQ(reg.counter("transport.bytes").value(), 0u);
}

TEST(Metrics, JsonSnapshotContainsEveryMetricKind) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("a.level").set(1.5);
  reg.histogram("a.lat", {10, 100}).observe(42);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"a.level\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.lat\""), std::string::npos);
  // Structurally sane: balanced braces, no trailing comma before a brace.
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(Metrics, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny"), "x\\ny");
}

// ------------------------------------------------- service context wire

TEST(ServiceContexts, RequestMessageRoundTrip) {
  orb::RequestMessage req;
  req.request_id = RequestId{7};
  req.object_key = Uuid{1, 2};
  req.interface_name = "t::Calc";
  req.operation = "add";
  req.args = bytes_of("payload");
  req.service_contexts.push_back({0x11, bytes_of("alpha")});
  req.service_contexts.push_back({0x22, bytes_of("beta")});

  const Bytes frame = req.encode();
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  ASSERT_EQ(*type, orb::MessageType::request);
  auto back = orb::RequestMessage::decode(r);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->operation, "add");
  ASSERT_EQ(back->service_contexts.size(), 2u);
  EXPECT_EQ(back->service_contexts[0], req.service_contexts[0]);
  EXPECT_EQ(back->service_contexts[1], req.service_contexts[1]);
}

TEST(ServiceContexts, ReplyMessageRoundTrip) {
  orb::ReplyMessage rep;
  rep.request_id = RequestId{9};
  rep.status = orb::ReplyStatus::no_exception;
  rep.payload = bytes_of("result");
  rep.service_contexts.push_back({kTraceContextId, bytes_of("ctx")});

  const Bytes frame = rep.encode();
  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  ASSERT_EQ(*type, orb::MessageType::reply);
  auto back = orb::ReplyMessage::decode(r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->service_contexts.size(), 1u);
  EXPECT_EQ(back->service_contexts[0].id, kTraceContextId);
  EXPECT_EQ(back->service_contexts[0].data, bytes_of("ctx"));
}

TEST(ServiceContexts, FrameWithoutContextsDecodesToEmpty) {
  // Hand-build the frame exactly as a pre-context encoder would have:
  // same fields, no trailing context block.
  orb::CdrWriter w;
  for (std::uint8_t m : {'C', 'L', 'C', 'P'}) w.write_octet(m);
  w.write_octet(1);  // version
  w.write_octet(0);  // MessageType::request
  w.begin_encapsulation();
  w.write_ulonglong(3);  // request id
  w.write_ulonglong(0xAA);
  w.write_ulonglong(0xBB);
  w.write_string("t::Calc");
  w.write_string("add");
  w.write_boolean(true);
  w.write_bytes(bytes_of("args"));
  const Bytes frame = w.take();

  orb::CdrReader r(frame);
  auto type = orb::decode_frame_header(r);
  ASSERT_TRUE(type.ok());
  auto back = orb::RequestMessage::decode(r);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->request_id.value, 3u);
  EXPECT_EQ(back->operation, "add");
  EXPECT_TRUE(back->service_contexts.empty());
}

TEST(ServiceContexts, EmptyContextListAddsNoBytes) {
  orb::RequestMessage req;
  req.request_id = RequestId{1};
  req.interface_name = "i";
  req.operation = "op";
  const Bytes without = req.encode();
  req.service_contexts.push_back({5, bytes_of("x")});
  const Bytes with = req.encode();
  EXPECT_GT(with.size(), without.size());
  req.service_contexts.clear();
  EXPECT_EQ(req.encode(), without);
}

// ----------------------------------------------------------- interceptors

const char* kCalcIdl = R"(
module t {
  interface Calc {
    long add(in long a, in long b);
    long boom();
  };
};
)";

/// Records every hook it sees into a shared log, and exercises contexts:
/// the client attaches "<name>-req", the server attaches "<name>-rep".
struct RecordingClient : ClientInterceptor {
  RecordingClient(std::string name, std::vector<std::string>& log)
      : name(std::move(name)), log(log) {}
  void send_request(RequestInfo& info) override {
    log.push_back(name + ":send_request:" + info.operation());
    info.add_context({0x100, bytes_of(name + "-req")});
    info.slot(this) = info.request_id();
  }
  void receive_reply(RequestInfo& info) override {
    log.push_back(name + ":receive_reply:" +
                  (info.success() ? "ok" : info.error_id()));
    slot_matched = info.slot(this) == info.request_id();
    for (const auto& c : info.incoming())
      if (c.id == 0x200) reply_contexts.push_back(std::string(
          c.data.begin(), c.data.end()));
  }
  std::string name;
  std::vector<std::string>& log;
  std::vector<std::string> reply_contexts;
  bool slot_matched = false;
};

struct RecordingServer : ServerInterceptor {
  RecordingServer(std::string name, std::vector<std::string>& log)
      : name(std::move(name)), log(log) {}
  void receive_request(RequestInfo& info) override {
    log.push_back(name + ":receive_request:" + info.operation());
    for (const auto& c : info.incoming())
      if (c.id == 0x100) request_contexts.push_back(std::string(
          c.data.begin(), c.data.end()));
  }
  void send_reply(RequestInfo& info) override {
    log.push_back(name + ":send_reply:" +
                  (info.success() ? "ok" : info.error_id()));
    info.add_context({0x200, bytes_of(name + "-rep")});
  }
  std::string name;
  std::vector<std::string>& log;
  std::vector<std::string> request_contexts;
};

struct OrbPair {
  std::shared_ptr<idl::InterfaceRepository> repo;
  std::shared_ptr<orb::LoopbackNetwork> net;
  std::unique_ptr<orb::Orb> server;
  std::unique_ptr<orb::Orb> client;
  orb::ObjectRef calc;
};

OrbPair make_orb_pair() {
  OrbPair p;
  p.repo = std::make_shared<idl::InterfaceRepository>();
  EXPECT_TRUE(p.repo->register_idl(kCalcIdl).ok());
  p.net = std::make_shared<orb::LoopbackNetwork>();
  p.server = std::make_unique<orb::Orb>(NodeId{1}, p.repo);
  p.client = std::make_unique<orb::Orb>(NodeId{2}, p.repo);
  auto* server = p.server.get();
  p.server->set_endpoint(p.net->register_endpoint(
      [server](BytesView frame) { return server->handle_frame(frame); }));
  p.server->add_transport("loop", p.net);
  p.client->add_transport("loop", p.net);
  auto servant = std::make_shared<orb::DynamicServant>("t::Calc");
  servant->on("add", [](orb::ServerRequest& req) -> Result<void> {
    req.set_result(orb::Value(static_cast<std::int32_t>(
        *req.arg(0).to_int() + *req.arg(1).to_int())));
    return {};
  });
  p.calc = p.server->activate(std::move(servant));
  return p;
}

TEST(Interceptors, HooksRunInOrderAcrossTheWire) {
  auto p = make_orb_pair();
  std::vector<std::string> log;
  auto c1 = std::make_shared<RecordingClient>("c1", log);
  auto c2 = std::make_shared<RecordingClient>("c2", log);
  auto s1 = std::make_shared<RecordingServer>("s1", log);
  auto s2 = std::make_shared<RecordingServer>("s2", log);
  p.client->add_client_interceptor(c1);
  p.client->add_client_interceptor(c2);
  p.server->add_server_interceptor(s1);
  p.server->add_server_interceptor(s2);

  auto r = p.client->call(p.calc, "add",
                          {orb::Value(std::int32_t{20}),
                           orb::Value(std::int32_t{22})});
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(*r, orb::Value(std::int32_t{42}));

  // Request direction in registration order, reply direction reversed.
  const std::vector<std::string> expected = {
      "c1:send_request:add",    "c2:send_request:add",
      "s1:receive_request:add", "s2:receive_request:add",
      "s2:send_reply:ok",       "s1:send_reply:ok",
      "c2:receive_reply:ok",    "c1:receive_reply:ok",
  };
  EXPECT_EQ(log, expected);
}

TEST(Interceptors, ServiceContextsTravelBothDirections) {
  auto p = make_orb_pair();
  std::vector<std::string> log;
  auto client_i = std::make_shared<RecordingClient>("c", log);
  auto server_i = std::make_shared<RecordingServer>("s", log);
  p.client->add_client_interceptor(client_i);
  p.server->add_server_interceptor(server_i);

  auto r = p.client->call(p.calc, "add",
                          {orb::Value(std::int32_t{1}),
                           orb::Value(std::int32_t{2})});
  ASSERT_TRUE(r.ok());
  // Client's request context reached the server...
  EXPECT_EQ(server_i->request_contexts,
            (std::vector<std::string>{"c-req"}));
  // ...and the server's reply context came back to the client.
  EXPECT_EQ(client_i->reply_contexts, (std::vector<std::string>{"s-rep"}));
  // The per-interceptor slot survived from send_request to receive_reply.
  EXPECT_TRUE(client_i->slot_matched);
}

TEST(Interceptors, ReplyHookSeesFailureOutcome) {
  auto p = make_orb_pair();
  std::vector<std::string> log;
  auto client_i = std::make_shared<RecordingClient>("c", log);
  p.client->add_client_interceptor(client_i);

  // The IDL declares boom() but the servant has no handler: the failure
  // happens server-side and the reply hook must see it.
  auto r = p.client->call(p.calc, "boom", {});
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "c:send_request:boom");
  EXPECT_NE(log[1], "c:receive_reply:ok");
}

TEST(Interceptors, DirectCollocationPolicySkipsChain) {
  auto p = make_orb_pair();
  std::vector<std::string> log;
  p.server->add_client_interceptor(
      std::make_shared<RecordingClient>("c", log));
  p.server->add_server_interceptor(
      std::make_shared<RecordingServer>("s", log));

  // Collocated call: the server orb invokes its own object. The default
  // `direct` policy is the classic ORB collocation optimization -- the
  // interceptor chain stays off the local fast path.
  ASSERT_EQ(p.server->collocation_policy(), orb::CollocationPolicy::direct);
  auto r = p.server->call(p.calc, "add",
                          {orb::Value(std::int32_t{1}),
                           orb::Value(std::int32_t{2})});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(log.empty());

  // `through_frame` restores strict CORBA PI semantics: all four hooks run
  // even when caller and target share an Orb.
  p.server->set_collocation_policy(orb::CollocationPolicy::through_frame);
  r = p.server->call(p.calc, "add",
                     {orb::Value(std::int32_t{3}),
                      orb::Value(std::int32_t{4})});
  ASSERT_TRUE(r.ok());
  const std::vector<std::string> expected = {
      "c:send_request:add", "s:receive_request:add",
      "s:send_reply:ok", "c:receive_reply:ok"};
  EXPECT_EQ(log, expected);
}

struct ThrowingClient : ClientInterceptor {
  void send_request(RequestInfo&) override { throw std::runtime_error("boom"); }
  void receive_reply(RequestInfo&) override { ++reply_throws; throw 42; }
  int reply_throws = 0;
};

struct ThrowingServer : ServerInterceptor {
  void receive_request(RequestInfo&) override {
    throw std::runtime_error("server boom");
  }
};

TEST(Interceptors, ThrowingInterceptorIsIsolatedFromTheInvocation) {
  auto p = make_orb_pair();
  std::vector<std::string> log;
  auto healthy_before = std::make_shared<RecordingClient>("a", log);
  auto thrower = std::make_shared<ThrowingClient>();
  auto healthy_after = std::make_shared<RecordingClient>("b", log);
  auto server_thrower = std::make_shared<ThrowingServer>();
  auto server_healthy = std::make_shared<RecordingServer>("s", log);
  p.client->add_client_interceptor(healthy_before);
  p.client->add_client_interceptor(thrower);
  p.client->add_client_interceptor(healthy_after);
  p.server->add_server_interceptor(server_thrower);
  p.server->add_server_interceptor(server_healthy);

  for (int i = 0; i < 3; ++i) {
    auto r = p.client->call(p.calc, "add",
                            {orb::Value(std::int32_t{i}),
                             orb::Value(std::int32_t{1})});
    // The invocation itself must not fail: observability is advisory.
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(*r, orb::Value(std::int32_t{i + 1}));
  }

  // Healthy interceptors ran on every hook, in order, around the thrower.
  const std::vector<std::string> one_call = {
      "a:send_request:add", "b:send_request:add", "s:receive_request:add",
      "s:send_reply:ok",    "b:receive_reply:ok", "a:receive_reply:ok",
  };
  std::vector<std::string> expected;
  for (int i = 0; i < 3; ++i)
    expected.insert(expected.end(), one_call.begin(), one_call.end());
  EXPECT_EQ(log, expected);

  // Contexts attached by the healthy interceptors still rode the frames --
  // one per call, not accumulated across repeats (no leak between calls).
  EXPECT_EQ(server_healthy->request_contexts,
            (std::vector<std::string>{"a-req", "b-req",
                                      "a-req", "b-req",
                                      "a-req", "b-req"}));
  EXPECT_EQ(healthy_before->reply_contexts,
            (std::vector<std::string>{"s-rep", "s-rep", "s-rep"}));

  // Every swallowed exception is accounted: client-side send_request +
  // receive_reply plus the server-side receive_request, per call.
  EXPECT_EQ(thrower->reply_throws, 3);
  EXPECT_EQ(p.client->metrics().counter("orb.interceptor_errors").value(), 6u);
  EXPECT_EQ(p.server->metrics().counter("orb.interceptor_errors").value(), 3u);
}

// ----------------------------------------------------------------- traces

TEST(Trace, ContextEncodesAndDecodes) {
  TraceContext ctx;
  ctx.trace_id = Uuid{0xDEADBEEF, 0xFEEDFACE};
  ctx.span_id = 42;
  ctx.parent_span_id = 7;
  auto back = TraceContext::decode(ctx.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, ctx.trace_id);
  EXPECT_EQ(back->span_id, 42u);
  EXPECT_EQ(back->parent_span_id, 7u);
  EXPECT_FALSE(TraceContext::decode(bytes_of("garbage")).has_value());
}

TEST(Trace, SpansNestOnOneTracer) {
  auto sink = std::make_shared<TraceCollector>();
  Tracer tracer(NodeId{1}, sink);
  {
    ScopedSpan outer(tracer, "outer");
    ScopedSpan inner(tracer, "inner");
    EXPECT_EQ(inner.context().trace_id, outer.context().trace_id);
    EXPECT_EQ(inner.context().parent_span_id, outer.id());
  }
  auto spans = sink->spans();
  ASSERT_EQ(spans.size(), 2u);  // inner recorded first (closed first)
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].parent_span_id, spans[1].span_id);
  EXPECT_FALSE(tracer.active());
}

TEST(Trace, CollectorEvictsOldestWhenFull) {
  TraceCollector sink(3);
  for (int i = 1; i <= 5; ++i) {
    SpanRecord s;
    s.trace_id = Uuid{1, 1};
    s.span_id = static_cast<std::uint64_t>(i);
    sink.record(s);
  }
  EXPECT_EQ(sink.span_count(), 3u);
  EXPECT_EQ(sink.evicted(), 2u);
  EXPECT_EQ(sink.spans().front().span_id, 3u);
}

TEST(Trace, ServerSpanParentsToClientSpanAcrossTheWire) {
  auto p = make_orb_pair();
  auto sink = std::make_shared<TraceCollector>();
  Tracer client_tracer(NodeId{2}, sink);
  Tracer server_tracer(NodeId{1}, sink);
  p.client->add_client_interceptor(
      std::make_shared<TraceClientInterceptor>(client_tracer));
  p.server->add_server_interceptor(
      std::make_shared<TraceServerInterceptor>(server_tracer));

  auto r = p.client->call(p.calc, "add",
                          {orb::Value(std::int32_t{40}),
                           orb::Value(std::int32_t{2})});
  ASSERT_TRUE(r.ok());

  auto spans = sink->spans();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord* client_span = nullptr;
  const SpanRecord* server_span = nullptr;
  for (const auto& s : spans) {
    if (s.kind == SpanKind::client) client_span = &s;
    if (s.kind == SpanKind::server) server_span = &s;
  }
  ASSERT_NE(client_span, nullptr);
  ASSERT_NE(server_span, nullptr);
  // The acceptance property: one trace, server span parented to the
  // client span that carried the context over.
  EXPECT_EQ(server_span->trace_id, client_span->trace_id);
  EXPECT_EQ(server_span->parent_span_id, client_span->span_id);
  EXPECT_NE(server_span->node, client_span->node);
  EXPECT_EQ(client_span->name, "call:add");
  EXPECT_EQ(server_span->name, "serve:add");
}

// --------------------------------------------------- node-level tracing

core::CohesionConfig fast_cohesion() {
  core::CohesionConfig cfg;
  cfg.heartbeat = seconds(1);
  cfg.group_size = 4;
  cfg.query_timeout = seconds(3);
  return cfg;
}

TEST(Trace, ResolveStitchesMultiNodeCausalTree) {
  core::LocalNetwork net(fast_cohesion());
  core::Node& a = net.add_node();
  core::Node& b = net.add_node();
  net.settle();
  ASSERT_TRUE(b.install(testing::calculator_package()).ok());
  net.settle();
  net.trace_collector()->clear();

  auto bound = a.resolve("demo.calculator", VersionConstraint{},
                         core::Binding::remote);
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  EXPECT_EQ(bound->host, b.id());

  // Find the resolve root span and stitch its trace.
  auto spans = net.trace_collector()->spans();
  Uuid trace_id;
  for (const auto& s : spans)
    if (s.name == "resolve:demo.calculator") trace_id = s.trace_id;
  ASSERT_FALSE(trace_id.is_nil());

  auto roots = net.trace_collector()->tree(trace_id);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].span.span_id,
            net.trace_collector()->spans_of(trace_id).back().span_id);
  EXPECT_EQ(roots[0].span.name, "resolve:demo.calculator");
  EXPECT_FALSE(roots[0].children.empty());
  // The one logical operation touched both nodes and nested at least
  // root -> client call -> server serve.
  EXPECT_GE(net.trace_collector()->nodes_of(trace_id).size(), 2u);
  EXPECT_GE(net.trace_collector()->depth_of(trace_id), 3u);
  // Render is a non-empty indented tree (debugging aid).
  EXPECT_NE(net.trace_collector()->render(trace_id).find("resolve:"),
            std::string::npos);
}

TEST(Trace, RemoteInvocationOnBoundPortCarriesContext) {
  core::LocalNetwork net(fast_cohesion());
  core::Node& a = net.add_node();
  core::Node& b = net.add_node();
  net.settle();
  ASSERT_TRUE(b.install(testing::calculator_package()).ok());
  net.settle();

  auto bound = a.resolve("demo.calculator", VersionConstraint{},
                         core::Binding::remote);
  ASSERT_TRUE(bound.ok());
  net.trace_collector()->clear();

  auto sum = a.orb().call(bound->primary, "add",
                          {orb::Value(std::int32_t{19}),
                           orb::Value(std::int32_t{23})});
  ASSERT_TRUE(sum.ok());
  auto spans = net.trace_collector()->spans();
  ASSERT_EQ(spans.size(), 2u);
  const auto& server_span = spans[0];  // server closes first
  const auto& client_span = spans[1];
  EXPECT_EQ(server_span.kind, SpanKind::server);
  EXPECT_EQ(client_span.kind, SpanKind::client);
  EXPECT_EQ(server_span.parent_span_id, client_span.span_id);
  EXPECT_EQ(server_span.trace_id, client_span.trace_id);
  EXPECT_EQ(server_span.node, b.id());
  EXPECT_EQ(client_span.node, a.id());
}

// ------------------------------------------------- reset_stats symmetry

TEST(ResetStats, OrbTransportAndSimResetConsistently) {
  // Orb: counters come back as zero and keep counting afterwards.
  auto p = make_orb_pair();
  ASSERT_TRUE(p.client
                  ->call(p.calc, "add",
                         {orb::Value(std::int32_t{1}),
                          orb::Value(std::int32_t{2})})
                  .ok());
  EXPECT_EQ(p.client->stats().invocations_sent, 1u);
  EXPECT_EQ(p.server->stats().invocations_served, 1u);
  p.client->reset_stats();
  p.server->reset_stats();
  EXPECT_EQ(p.client->stats().invocations_sent, 0u);
  EXPECT_EQ(p.server->stats().invocations_served, 0u);
  ASSERT_TRUE(p.client
                  ->call(p.calc, "add",
                         {orb::Value(std::int32_t{3}),
                          orb::Value(std::int32_t{4})})
                  .ok());
  EXPECT_EQ(p.client->stats().invocations_sent, 1u);

  // Transport.
  EXPECT_GT(p.net->stats().messages, 0u);
  p.net->reset_stats();
  EXPECT_EQ(p.net->stats().messages, 0u);
  EXPECT_EQ(p.net->stats().bytes, 0u);

  // Sim network: reset clears the per-node byte accounting too (this was
  // the historical inconsistency).
  sim::Simulator simulator;
  sim::SimNetwork sim_net(simulator);
  sim_net.send(NodeId{1}, NodeId{2}, bytes_of("hello"));
  simulator.run();
  EXPECT_EQ(sim_net.stats().messages_sent, 1u);
  EXPECT_GT(sim_net.bytes_sent_by(NodeId{1}), 0u);
  sim_net.reset_stats();
  EXPECT_EQ(sim_net.stats().messages_sent, 0u);
  EXPECT_EQ(sim_net.stats().bytes_sent, 0u);
  EXPECT_EQ(sim_net.bytes_sent_by(NodeId{1}), 0u);
}

TEST(NodeMetrics, UnifiedRegistryCollectsEveryLayer) {
  core::LocalNetwork net(fast_cohesion());
  core::Node& a = net.add_node();
  core::Node& b = net.add_node();
  net.settle();
  ASSERT_TRUE(a.install(testing::calculator_package()).ok());
  auto bound = a.resolve("demo.calculator", VersionConstraint{});
  ASSERT_TRUE(bound.ok());

  // One registry per node carries orb, cohesion and resource metrics.
  EXPECT_GT(a.metrics().counter("orb.invocations_sent").value(), 0u);
  EXPECT_GT(a.metrics().counter("cohesion.heartbeats_sent").value(), 0u);
  EXPECT_GT(a.metrics().gauge("resource.instance_count").value(), 0.0);
  EXPECT_GT(b.metrics().counter("orb.invocations_served").value(), 0u);
  const std::string json = a.metrics().to_json();
  EXPECT_NE(json.find("orb.invoke_us"), std::string::npos);
}

TEST(NodeMetrics, GrayFailureTelemetryIsRegisteredUpFront) {
  // The hedging and health-aware-binding counters must exist (and export)
  // from construction, not on first use: dashboards key on the names being
  // present even when their value is still zero. counter() is find-or-create,
  // so the real assertion is json presence on a freshly built orb + session.
  orb::Orb orb(NodeId{1}, std::make_shared<idl::InterfaceRepository>());
  session::Session session(orb, session::SessionConfig{});
  const std::string json = orb.metrics().to_json();
  EXPECT_NE(json.find("orb.hedges"), std::string::npos);
  EXPECT_NE(json.find("orb.hedge_wins"), std::string::npos);
  EXPECT_NE(json.find("session.rebind_health"), std::string::npos);
  EXPECT_EQ(orb.metrics().counter("orb.hedges").value(), 0u);
  EXPECT_EQ(orb.metrics().counter("orb.hedge_wins").value(), 0u);
  EXPECT_EQ(orb.metrics().counter("session.rebind_health").value(), 0u);
}

}  // namespace
}  // namespace clc::obs
