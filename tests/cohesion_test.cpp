// Protocol tests: membership, hierarchy formation, soft-consistency
// digests, distributed queries, failure detection, MRM/root replication and
// the flat/strong baseline modes -- all under the discrete-event simulator.
#include <gtest/gtest.h>

#include <memory>

#include "core/cohesion.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace clc::core {
namespace {

using sim::SimHost;
using sim::SimNetwork;
using sim::Simulator;

/// One simulated CORBA-LC peer: a CohesionNode wired to the SimNetwork.
class SimPeer : public SimHost {
 public:
  SimPeer(NodeId id, CohesionConfig cfg, SimNetwork& net, Simulator& sim)
      : net_(net),
        sim_(sim),
        node_(id, cfg, [this, id](NodeId to, const ProtoMessage& m) {
          net_.send(id, to, m.encode());
        }) {
    node_.set_digest_provider([this] {
      RegistryDigest d;
      d.components = components_;
      d.cpu_load = cpu_load_;
      return d;
    });
  }

  void on_message(NodeId from, const Bytes& payload) override {
    (void)from;
    if (!alive_) return;
    auto m = ProtoMessage::decode(payload);
    if (m.ok()) node_.on_message(*m, sim_.now());
  }

  /// Install a synthetic component into this peer's advertised digest.
  void advertise(const std::string& name, const Version& v, bool mobile = true,
                 double cost = 0) {
    components_.push_back(ComponentSummary{name, v, mobile, cost});
  }
  void set_cpu_load(double load) { cpu_load_ = load; }

  CohesionNode& node() { return node_; }
  [[nodiscard]] bool alive() const { return alive_; }
  void kill() { alive_ = false; }
  void tick() {
    if (alive_) node_.on_tick(sim_.now());
  }

 private:
  SimNetwork& net_;
  Simulator& sim_;
  CohesionNode node_;
  std::vector<ComponentSummary> components_;
  double cpu_load_ = 0;
  bool alive_ = true;
};

/// Test world: N peers, periodic ticks, convenience drivers.
class World {
 public:
  explicit World(CohesionConfig cfg, std::uint64_t seed = 1)
      : net_(sim_, seed), cfg_(cfg) {
    net_.set_link_model({.base_latency = milliseconds(5),
                         .jitter = milliseconds(1),
                         .bytes_per_second = 0,
                         .drop_probability = 0});
  }

  SimPeer& spawn(std::uint64_t id) {
    auto peer = std::make_unique<SimPeer>(NodeId{id}, cfg_, net_, sim_);
    SimPeer& ref = *peer;
    net_.attach(NodeId{id}, peer.get());
    peers_.push_back(std::move(peer));
    schedule_ticks(ref);
    return ref;
  }

  /// Build a network of n peers with ids 1..n; peer 1 founds it.
  void build(std::size_t n) {
    for (std::size_t i = 1; i <= n; ++i) {
      SimPeer& p = spawn(i);
      if (i == 1) {
        p.node().start_as_first(sim_.now());
      } else {
        // Stagger joins so the directory grows incrementally.
        sim_.schedule_after(milliseconds(10) * static_cast<Duration>(i),
                            [&p, this] {
                              p.node().start_joining(NodeId{1}, sim_.now());
                            });
      }
    }
  }

  void kill(std::uint64_t id) {
    peer(id).kill();
    net_.detach(NodeId{id});
  }

  SimPeer& peer(std::uint64_t id) {
    for (auto& p : peers_) {
      if (p->node().id() == NodeId{id}) return *p;
    }
    throw std::runtime_error("no peer " + std::to_string(id));
  }

  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }

  /// Synchronous query helper: issue and run the sim until the callback.
  std::vector<QueryHit> query(std::uint64_t from, const ComponentQuery& q) {
    std::vector<QueryHit> result;
    bool done = false;
    peer(from).node().query(q, sim_.now(), [&](std::vector<QueryHit> hits) {
      result = std::move(hits);
      done = true;
    });
    for (int guard = 0; !done && guard < 10000; ++guard) {
      if (!sim_.step()) run_for(cfg_.heartbeat / 2);
    }
    EXPECT_TRUE(done) << "query never completed";
    return result;
  }

  [[nodiscard]] std::size_t joined_count() const {
    std::size_t n = 0;
    for (const auto& p : peers_) n += p->alive() && p->node().joined();
    return n;
  }
  [[nodiscard]] std::vector<const CohesionNode*> roots() const {
    std::vector<const CohesionNode*> out;
    for (const auto& p : peers_) {
      if (p->alive() && p->node().is_root()) out.push_back(&p->node());
    }
    return out;
  }

  Simulator& sim() { return sim_; }
  SimNetwork& net() { return net_; }

 private:
  void schedule_ticks(SimPeer& p) {
    const Duration period = cfg_.heartbeat / 2;
    sim_.schedule_after(period, [this, &p, period] { tick_loop(p, period); });
  }
  void tick_loop(SimPeer& p, Duration period) {
    if (!p.alive()) return;  // dead peers stop ticking
    p.tick();
    sim_.schedule_after(period, [this, &p, period] { tick_loop(p, period); });
  }

  Simulator sim_;
  SimNetwork net_;
  CohesionConfig cfg_;
  std::vector<std::unique_ptr<SimPeer>> peers_;
};

CohesionConfig hier_config(std::size_t group_size = 4) {
  CohesionConfig cfg;
  cfg.mode = CohesionConfig::Mode::hierarchical;
  cfg.heartbeat = seconds(1);
  cfg.group_size = group_size;
  cfg.query_timeout = seconds(3);
  return cfg;
}

ComponentQuery query_for(const std::string& pattern,
                         std::uint32_t max_results = 8) {
  ComponentQuery q;
  q.name_pattern = pattern;
  q.max_results = max_results;
  return q;
}

// ---------------------------------------------------------------- formation

TEST(Cohesion, NetworkFormsWithSingleRoot) {
  World w(hier_config());
  w.build(20);
  w.run_for(seconds(15));
  EXPECT_EQ(w.joined_count(), 20u);
  ASSERT_EQ(w.roots().size(), 1u);
  EXPECT_EQ(w.roots()[0]->id(), NodeId{1});
  EXPECT_EQ(w.roots()[0]->directory_nodes().size(), 20u);
}

TEST(Cohesion, HierarchyHasMultipleLevels) {
  World w(hier_config(4));
  w.build(20);
  w.run_for(seconds(15));
  // 20 nodes with groups of 4: depth must exceed 2 (root -> MRM -> member).
  EXPECT_GE(w.roots()[0]->subtree_depth(), 3);
  // Root has at most group_size children-ish structure: every alive node
  // got a parent.
  int parents = 0;
  for (std::uint64_t id = 2; id <= 20; ++id)
    parents += w.peer(id).node().parent().valid();
  EXPECT_EQ(parents, 19);
}

TEST(Cohesion, SingletonNetworkAnswersQueriesLocally) {
  World w(hier_config());
  SimPeer& only = w.spawn(1);
  only.advertise("solo.component", Version{1, 0, 0});
  only.node().start_as_first(w.sim().now());
  auto hits = w.query(1, query_for("solo.*"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].component, "solo.component");
  EXPECT_EQ(hits[0].node, NodeId{1});
}

// ---------------------------------------------------------------- queries

TEST(Cohesion, QueryFindsComponentAcrossTheNetwork) {
  World w(hier_config(4));
  w.build(20);
  w.peer(17).advertise("video.decoder", Version{2, 1, 0});
  w.run_for(seconds(15));  // digests propagate with heartbeats
  auto hits = w.query(3, query_for("video.decoder"));
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, NodeId{17});
  EXPECT_EQ(hits[0].version, (Version{2, 1, 0}));
}

TEST(Cohesion, QueryRanksLocalAboveRemote) {
  World w(hier_config(4));
  w.build(10);
  w.peer(3).advertise("calc", Version{1, 0, 0});
  w.peer(9).advertise("calc", Version{1, 0, 0});
  w.run_for(seconds(15));
  auto hits = w.query(3, query_for("calc"));
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, NodeId{3}) << "local copy must win";
}

TEST(Cohesion, QueryHonoursVersionConstraint) {
  World w(hier_config(4));
  w.build(8);
  w.peer(5).advertise("codec", Version{1, 9, 0});
  w.peer(6).advertise("codec", Version{2, 2, 0});
  w.run_for(seconds(12));
  ComponentQuery q = query_for("codec");
  q.constraint = *VersionConstraint::parse(">=2.0");
  auto hits = w.query(2, q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, NodeId{6});
}

TEST(Cohesion, QueryHonoursMobilityRequirement) {
  World w(hier_config(4));
  w.build(6);
  w.peer(4).advertise("pinned", Version{1, 0, 0}, /*mobile=*/false);
  w.run_for(seconds(12));
  ComponentQuery q = query_for("pinned");
  q.require_mobile = true;
  EXPECT_TRUE(w.query(2, q).empty());
  q.require_mobile = false;
  EXPECT_EQ(w.query(2, q).size(), 1u);
}

TEST(Cohesion, MissingComponentYieldsEmptyAfterTimeout) {
  World w(hier_config(4));
  w.build(12);
  w.run_for(seconds(12));
  auto hits = w.query(7, query_for("no.such.thing"));
  EXPECT_TRUE(hits.empty());
}

TEST(Cohesion, NewComponentBecomesVisibleAfterHeartbeat) {
  // Requirement 5: seamlessly integrate new components at run time.
  World w(hier_config(4));
  w.build(12);
  w.run_for(seconds(10));
  EXPECT_TRUE(w.query(2, query_for("late.arrival")).empty());
  w.peer(11).advertise("late.arrival", Version{1, 0, 0});
  w.run_for(seconds(6));  // a few heartbeats
  auto hits = w.query(2, query_for("late.arrival"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, NodeId{11});
}

TEST(Cohesion, GlobPatternsMatchFamilies) {
  World w(hier_config(4));
  w.build(10);
  w.peer(4).advertise("gui.button", Version{1, 0, 0});
  w.peer(7).advertise("gui.canvas", Version{1, 0, 0});
  w.peer(9).advertise("net.socket", Version{1, 0, 0});
  w.run_for(seconds(12));
  auto hits = w.query(2, query_for("gui.*"));
  EXPECT_EQ(hits.size(), 2u);
}

// ---------------------------------------------------------------- failures

TEST(Cohesion, DeadLeafLeavesDirectory) {
  World w(hier_config(4));
  w.build(10);
  w.run_for(seconds(12));
  ASSERT_EQ(w.roots()[0]->directory_nodes().size(), 10u);
  w.kill(10);
  w.run_for(seconds(12));  // > dead_after heartbeats
  EXPECT_EQ(w.roots()[0]->directory_nodes().size(), 9u);
}

TEST(Cohesion, MrmDeathReparentsOrphans) {
  World w(hier_config(4));
  w.build(12);
  w.run_for(seconds(12));
  // Find an interior node (an MRM that is not the root).
  std::uint64_t mrm_id = 0;
  for (std::uint64_t id = 2; id <= 12; ++id) {
    if (w.peer(id).node().is_mrm()) {
      mrm_id = id;
      break;
    }
  }
  ASSERT_NE(mrm_id, 0u) << "no interior MRM formed";
  w.peer(4).advertise("survivor", Version{1, 0, 0});
  w.run_for(seconds(5));
  w.kill(mrm_id);
  w.run_for(seconds(20));  // detection + topology repair
  EXPECT_EQ(w.roots().size(), 1u);
  EXPECT_EQ(w.roots()[0]->directory_nodes().size(), 11u);
  // The network still answers queries (from a node that was orphaned or not).
  const std::uint64_t asker = mrm_id == 2 ? 3 : 2;
  auto hits = w.query(asker, query_for("survivor"));
  EXPECT_GE(hits.size(), 1u);
}

TEST(Cohesion, RootDeathPromotesReplica) {
  World w(hier_config(4));
  w.build(12);
  w.run_for(seconds(15));  // directory replicas synced
  w.peer(8).advertise("after.failover", Version{1, 0, 0});
  w.run_for(seconds(5));
  w.kill(1);
  w.run_for(seconds(40));  // detection + staggered promotion + re-join waves
  auto roots = w.roots();
  ASSERT_EQ(roots.size(), 1u) << "exactly one new root must emerge";
  EXPECT_NE(roots[0]->id(), NodeId{1});
  EXPECT_GE(roots[0]->stats().promotions, 1u);
  // Network functional again.
  auto hits = w.query(5, query_for("after.failover"));
  EXPECT_GE(hits.size(), 1u);
}

TEST(Cohesion, RootAndLowestReplicaDieInSameSuspectWindow) {
  World w(hier_config(4));
  w.build(12);
  w.run_for(seconds(15));  // directory replicas synced
  w.peer(7).advertise("double.fault", Version{1, 0, 0});
  w.run_for(seconds(5));
  // The root's replica list is its lowest-id children in join order; kill
  // the root AND the rank-0 replica inside one suspect window, so the
  // promotion must skip the dead first-in-line replica.
  auto root_children = w.roots()[0]->children();
  ASSERT_GE(root_children.size(), 2u);
  std::uint64_t lowest_replica = root_children.front().value;
  for (NodeId c : root_children)
    if (c.value < lowest_replica) lowest_replica = c.value;
  w.kill(1);
  w.kill(lowest_replica);
  w.run_for(seconds(40));  // detection + staggered promotion + re-joins

  auto roots = w.roots();
  ASSERT_EQ(roots.size(), 1u) << "directory must survive the double fault";
  EXPECT_NE(roots[0]->id(), NodeId{1});
  EXPECT_NE(roots[0]->id().value, lowest_replica);
  EXPECT_EQ(roots[0]->directory_nodes().size(), 10u);
  // Exactly one promotion network-wide: the rank-1 replica and nobody else.
  std::uint64_t promotions = 0;
  for (std::uint64_t id = 1; id <= 12; ++id) {
    if (id == 1 || id == lowest_replica) continue;
    promotions += w.peer(id).node().stats().promotions;
  }
  EXPECT_EQ(promotions, 1u);
  // The network still answers queries.
  auto hits = w.query(roots[0]->id().value, query_for("double.*"));
  EXPECT_GE(hits.size(), 1u);
}

TEST(Cohesion, KilledNodeCanRejoinSeamlessly) {
  World w(hier_config(4));
  w.build(8);
  w.run_for(seconds(12));
  w.kill(6);
  w.run_for(seconds(12));
  EXPECT_EQ(w.roots()[0]->directory_nodes().size(), 7u);
  // Re-join under the same id (fresh peer object, like a restarted host).
  SimPeer& reborn = w.spawn(6);
  reborn.advertise("reborn.component", Version{1, 0, 0});
  reborn.node().start_joining(NodeId{1}, w.sim().now());
  w.run_for(seconds(12));
  EXPECT_EQ(w.roots()[0]->directory_nodes().size(), 8u);
  auto hits = w.query(2, query_for("reborn.*"));
  EXPECT_EQ(hits.size(), 1u);
}

// ---------------------------------------------------------------- baselines

CohesionConfig flat_config() {
  CohesionConfig cfg;
  cfg.mode = CohesionConfig::Mode::flat_query;
  cfg.heartbeat = seconds(1);
  cfg.query_timeout = seconds(3);
  return cfg;
}

TEST(Cohesion, FlatModeRosterAndQueries) {
  World w(flat_config());
  w.build(10);
  w.run_for(seconds(10));
  EXPECT_EQ(w.joined_count(), 10u);
  w.peer(7).advertise("flat.component", Version{1, 0, 0});
  auto hits = w.query(2, query_for("flat.*"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, NodeId{7});
}

TEST(Cohesion, FlatModeDetectsDeadNodes) {
  World w(flat_config());
  w.build(6);
  w.run_for(seconds(10));
  w.kill(5);
  w.run_for(seconds(12));
  for (std::uint64_t id : {1ull, 2ull, 3ull}) {
    auto known = w.peer(id).node().known_nodes();
    EXPECT_EQ(std::count(known.begin(), known.end(), NodeId{5}), 0)
        << "node " << id << " still believes 5 is alive";
  }
}

TEST(Cohesion, StrongModeAnswersLocallyWithZeroQueryTraffic) {
  CohesionConfig cfg = flat_config();
  cfg.mode = CohesionConfig::Mode::strong;
  World w(cfg);
  w.build(8);
  w.peer(6).advertise("strong.component", Version{1, 0, 0});
  w.run_for(seconds(10));  // broadcasts propagate
  const auto before = w.net().stats().messages_sent;
  auto hits = w.query(2, query_for("strong.*"));
  const auto after = w.net().stats().messages_sent;
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, NodeId{6});
  EXPECT_EQ(before, after) << "strong-mode queries must be local";
}

TEST(Cohesion, SoftConsistencyUsesLessBandwidthThanStrong) {
  // The paper's central protocol claim (E3's shape, asserted coarsely).
  auto run_mode = [](CohesionConfig::Mode mode) {
    CohesionConfig cfg;
    cfg.mode = mode;
    cfg.heartbeat = seconds(1);
    World w(cfg);
    w.build(24);
    for (std::uint64_t id = 1; id <= 24; ++id)
      w.peer(id).advertise("c" + std::to_string(id), Version{1, 0, 0});
    w.run_for(seconds(10));
    w.net().reset_stats();
    w.run_for(seconds(20));  // steady state
    return w.net().stats().bytes_sent;
  };
  const auto hier = run_mode(CohesionConfig::Mode::hierarchical);
  const auto strong = run_mode(CohesionConfig::Mode::strong);
  EXPECT_LT(hier * 3, strong)
      << "hierarchical soft consistency should use far less bandwidth";
}

}  // namespace
}  // namespace clc::core
