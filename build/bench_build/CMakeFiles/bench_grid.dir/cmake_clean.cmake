file(REMOVE_RECURSE
  "../bench/bench_grid"
  "../bench/bench_grid.pdb"
  "CMakeFiles/bench_grid.dir/bench_grid.cpp.o"
  "CMakeFiles/bench_grid.dir/bench_grid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
