file(REMOVE_RECURSE
  "../bench/bench_invocation"
  "../bench/bench_invocation.pdb"
  "CMakeFiles/bench_invocation.dir/bench_invocation.cpp.o"
  "CMakeFiles/bench_invocation.dir/bench_invocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
