# Empty dependencies file for bench_invocation.
# This may be replaced when dependencies are built.
