# Empty dependencies file for bench_cscw.
# This may be replaced when dependencies are built.
