file(REMOVE_RECURSE
  "../bench/bench_cscw"
  "../bench/bench_cscw.pdb"
  "CMakeFiles/bench_cscw.dir/bench_cscw.cpp.o"
  "CMakeFiles/bench_cscw.dir/bench_cscw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cscw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
