file(REMOVE_RECURSE
  "../bench/bench_deployment"
  "../bench/bench_deployment.pdb"
  "CMakeFiles/bench_deployment.dir/bench_deployment.cpp.o"
  "CMakeFiles/bench_deployment.dir/bench_deployment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
