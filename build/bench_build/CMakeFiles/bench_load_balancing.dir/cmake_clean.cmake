file(REMOVE_RECURSE
  "../bench/bench_load_balancing"
  "../bench/bench_load_balancing.pdb"
  "CMakeFiles/bench_load_balancing.dir/bench_load_balancing.cpp.o"
  "CMakeFiles/bench_load_balancing.dir/bench_load_balancing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
