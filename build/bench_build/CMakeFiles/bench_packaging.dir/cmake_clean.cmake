file(REMOVE_RECURSE
  "../bench/bench_packaging"
  "../bench/bench_packaging.pdb"
  "CMakeFiles/bench_packaging.dir/bench_packaging.cpp.o"
  "CMakeFiles/bench_packaging.dir/bench_packaging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
