file(REMOVE_RECURSE
  "../bench/bench_consistency"
  "../bench/bench_consistency.pdb"
  "CMakeFiles/bench_consistency.dir/bench_consistency.cpp.o"
  "CMakeFiles/bench_consistency.dir/bench_consistency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
