# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/idl_test[1]_include.cmake")
include("/root/repo/build/tests/cdr_test[1]_include.cmake")
include("/root/repo/build/tests/orb_test[1]_include.cmake")
include("/root/repo/build/tests/pkg_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cohesion_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/core_units_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
