file(REMOVE_RECURSE
  "CMakeFiles/pkg_test.dir/pkg_test.cpp.o"
  "CMakeFiles/pkg_test.dir/pkg_test.cpp.o.d"
  "pkg_test"
  "pkg_test.pdb"
  "pkg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
