file(REMOVE_RECURSE
  "CMakeFiles/cohesion_test.dir/cohesion_test.cpp.o"
  "CMakeFiles/cohesion_test.dir/cohesion_test.cpp.o.d"
  "cohesion_test"
  "cohesion_test.pdb"
  "cohesion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohesion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
