# Empty compiler generated dependencies file for cohesion_test.
# This may be replaced when dependencies are built.
