# Empty compiler generated dependencies file for grid_montecarlo.
# This may be replaced when dependencies are built.
