file(REMOVE_RECURSE
  "CMakeFiles/grid_montecarlo.dir/grid_montecarlo.cpp.o"
  "CMakeFiles/grid_montecarlo.dir/grid_montecarlo.cpp.o.d"
  "grid_montecarlo"
  "grid_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
