# Empty compiler generated dependencies file for cscw_whiteboard.
# This may be replaced when dependencies are built.
