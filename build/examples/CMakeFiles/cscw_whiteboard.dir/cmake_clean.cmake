file(REMOVE_RECURSE
  "CMakeFiles/cscw_whiteboard.dir/cscw_whiteboard.cpp.o"
  "CMakeFiles/cscw_whiteboard.dir/cscw_whiteboard.cpp.o.d"
  "cscw_whiteboard"
  "cscw_whiteboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cscw_whiteboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
