file(REMOVE_RECURSE
  "CMakeFiles/clc_sim.dir/network.cpp.o"
  "CMakeFiles/clc_sim.dir/network.cpp.o.d"
  "CMakeFiles/clc_sim.dir/simulator.cpp.o"
  "CMakeFiles/clc_sim.dir/simulator.cpp.o.d"
  "libclc_sim.a"
  "libclc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
