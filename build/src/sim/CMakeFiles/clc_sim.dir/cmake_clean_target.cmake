file(REMOVE_RECURSE
  "libclc_sim.a"
)
