# Empty compiler generated dependencies file for clc_sim.
# This may be replaced when dependencies are built.
