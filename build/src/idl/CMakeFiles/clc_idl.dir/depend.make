# Empty dependencies file for clc_idl.
# This may be replaced when dependencies are built.
