file(REMOVE_RECURSE
  "CMakeFiles/clc_idl.dir/lexer.cpp.o"
  "CMakeFiles/clc_idl.dir/lexer.cpp.o.d"
  "CMakeFiles/clc_idl.dir/parser.cpp.o"
  "CMakeFiles/clc_idl.dir/parser.cpp.o.d"
  "CMakeFiles/clc_idl.dir/repository.cpp.o"
  "CMakeFiles/clc_idl.dir/repository.cpp.o.d"
  "libclc_idl.a"
  "libclc_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
