file(REMOVE_RECURSE
  "libclc_idl.a"
)
