file(REMOVE_RECURSE
  "libclc_pkg.a"
)
