file(REMOVE_RECURSE
  "CMakeFiles/clc_pkg.dir/archive.cpp.o"
  "CMakeFiles/clc_pkg.dir/archive.cpp.o.d"
  "CMakeFiles/clc_pkg.dir/descriptor.cpp.o"
  "CMakeFiles/clc_pkg.dir/descriptor.cpp.o.d"
  "CMakeFiles/clc_pkg.dir/lzss.cpp.o"
  "CMakeFiles/clc_pkg.dir/lzss.cpp.o.d"
  "CMakeFiles/clc_pkg.dir/package.cpp.o"
  "CMakeFiles/clc_pkg.dir/package.cpp.o.d"
  "CMakeFiles/clc_pkg.dir/sha256.cpp.o"
  "CMakeFiles/clc_pkg.dir/sha256.cpp.o.d"
  "libclc_pkg.a"
  "libclc_pkg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_pkg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
