# Empty compiler generated dependencies file for clc_pkg.
# This may be replaced when dependencies are built.
