file(REMOVE_RECURSE
  "libclc_xml.a"
)
