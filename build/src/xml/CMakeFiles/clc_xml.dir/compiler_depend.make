# Empty compiler generated dependencies file for clc_xml.
# This may be replaced when dependencies are built.
