file(REMOVE_RECURSE
  "CMakeFiles/clc_xml.dir/xml.cpp.o"
  "CMakeFiles/clc_xml.dir/xml.cpp.o.d"
  "libclc_xml.a"
  "libclc_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
