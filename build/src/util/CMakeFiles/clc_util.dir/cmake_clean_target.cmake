file(REMOVE_RECURSE
  "libclc_util.a"
)
