file(REMOVE_RECURSE
  "CMakeFiles/clc_util.dir/bytes.cpp.o"
  "CMakeFiles/clc_util.dir/bytes.cpp.o.d"
  "CMakeFiles/clc_util.dir/ids.cpp.o"
  "CMakeFiles/clc_util.dir/ids.cpp.o.d"
  "CMakeFiles/clc_util.dir/log.cpp.o"
  "CMakeFiles/clc_util.dir/log.cpp.o.d"
  "CMakeFiles/clc_util.dir/strings.cpp.o"
  "CMakeFiles/clc_util.dir/strings.cpp.o.d"
  "CMakeFiles/clc_util.dir/version.cpp.o"
  "CMakeFiles/clc_util.dir/version.cpp.o.d"
  "libclc_util.a"
  "libclc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
