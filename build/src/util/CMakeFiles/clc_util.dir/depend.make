# Empty dependencies file for clc_util.
# This may be replaced when dependencies are built.
