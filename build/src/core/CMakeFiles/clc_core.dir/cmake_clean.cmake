file(REMOVE_RECURSE
  "CMakeFiles/clc_core.dir/aggregation.cpp.o"
  "CMakeFiles/clc_core.dir/aggregation.cpp.o.d"
  "CMakeFiles/clc_core.dir/application.cpp.o"
  "CMakeFiles/clc_core.dir/application.cpp.o.d"
  "CMakeFiles/clc_core.dir/cohesion.cpp.o"
  "CMakeFiles/clc_core.dir/cohesion.cpp.o.d"
  "CMakeFiles/clc_core.dir/container.cpp.o"
  "CMakeFiles/clc_core.dir/container.cpp.o.d"
  "CMakeFiles/clc_core.dir/events.cpp.o"
  "CMakeFiles/clc_core.dir/events.cpp.o.d"
  "CMakeFiles/clc_core.dir/instance.cpp.o"
  "CMakeFiles/clc_core.dir/instance.cpp.o.d"
  "CMakeFiles/clc_core.dir/introspect.cpp.o"
  "CMakeFiles/clc_core.dir/introspect.cpp.o.d"
  "CMakeFiles/clc_core.dir/node.cpp.o"
  "CMakeFiles/clc_core.dir/node.cpp.o.d"
  "CMakeFiles/clc_core.dir/proto.cpp.o"
  "CMakeFiles/clc_core.dir/proto.cpp.o.d"
  "CMakeFiles/clc_core.dir/query.cpp.o"
  "CMakeFiles/clc_core.dir/query.cpp.o.d"
  "CMakeFiles/clc_core.dir/registry.cpp.o"
  "CMakeFiles/clc_core.dir/registry.cpp.o.d"
  "CMakeFiles/clc_core.dir/repository.cpp.o"
  "CMakeFiles/clc_core.dir/repository.cpp.o.d"
  "CMakeFiles/clc_core.dir/resource.cpp.o"
  "CMakeFiles/clc_core.dir/resource.cpp.o.d"
  "libclc_core.a"
  "libclc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
