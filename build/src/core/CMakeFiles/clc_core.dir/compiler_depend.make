# Empty compiler generated dependencies file for clc_core.
# This may be replaced when dependencies are built.
