
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cpp" "src/core/CMakeFiles/clc_core.dir/aggregation.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/aggregation.cpp.o.d"
  "/root/repo/src/core/application.cpp" "src/core/CMakeFiles/clc_core.dir/application.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/application.cpp.o.d"
  "/root/repo/src/core/cohesion.cpp" "src/core/CMakeFiles/clc_core.dir/cohesion.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/cohesion.cpp.o.d"
  "/root/repo/src/core/container.cpp" "src/core/CMakeFiles/clc_core.dir/container.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/container.cpp.o.d"
  "/root/repo/src/core/events.cpp" "src/core/CMakeFiles/clc_core.dir/events.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/events.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/clc_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/introspect.cpp" "src/core/CMakeFiles/clc_core.dir/introspect.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/introspect.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/clc_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/node.cpp.o.d"
  "/root/repo/src/core/proto.cpp" "src/core/CMakeFiles/clc_core.dir/proto.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/proto.cpp.o.d"
  "/root/repo/src/core/query.cpp" "src/core/CMakeFiles/clc_core.dir/query.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/query.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/clc_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/repository.cpp" "src/core/CMakeFiles/clc_core.dir/repository.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/repository.cpp.o.d"
  "/root/repo/src/core/resource.cpp" "src/core/CMakeFiles/clc_core.dir/resource.cpp.o" "gcc" "src/core/CMakeFiles/clc_core.dir/resource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orb/CMakeFiles/clc_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/pkg/CMakeFiles/clc_pkg.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/clc_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/clc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
