file(REMOVE_RECURSE
  "libclc_core.a"
)
