
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orb/message.cpp" "src/orb/CMakeFiles/clc_orb.dir/message.cpp.o" "gcc" "src/orb/CMakeFiles/clc_orb.dir/message.cpp.o.d"
  "/root/repo/src/orb/orb.cpp" "src/orb/CMakeFiles/clc_orb.dir/orb.cpp.o" "gcc" "src/orb/CMakeFiles/clc_orb.dir/orb.cpp.o.d"
  "/root/repo/src/orb/tcp.cpp" "src/orb/CMakeFiles/clc_orb.dir/tcp.cpp.o" "gcc" "src/orb/CMakeFiles/clc_orb.dir/tcp.cpp.o.d"
  "/root/repo/src/orb/transport.cpp" "src/orb/CMakeFiles/clc_orb.dir/transport.cpp.o" "gcc" "src/orb/CMakeFiles/clc_orb.dir/transport.cpp.o.d"
  "/root/repo/src/orb/value.cpp" "src/orb/CMakeFiles/clc_orb.dir/value.cpp.o" "gcc" "src/orb/CMakeFiles/clc_orb.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idl/CMakeFiles/clc_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
