# Empty dependencies file for clc_orb.
# This may be replaced when dependencies are built.
