file(REMOVE_RECURSE
  "CMakeFiles/clc_orb.dir/message.cpp.o"
  "CMakeFiles/clc_orb.dir/message.cpp.o.d"
  "CMakeFiles/clc_orb.dir/orb.cpp.o"
  "CMakeFiles/clc_orb.dir/orb.cpp.o.d"
  "CMakeFiles/clc_orb.dir/tcp.cpp.o"
  "CMakeFiles/clc_orb.dir/tcp.cpp.o.d"
  "CMakeFiles/clc_orb.dir/transport.cpp.o"
  "CMakeFiles/clc_orb.dir/transport.cpp.o.d"
  "CMakeFiles/clc_orb.dir/value.cpp.o"
  "CMakeFiles/clc_orb.dir/value.cpp.o.d"
  "libclc_orb.a"
  "libclc_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
