file(REMOVE_RECURSE
  "libclc_orb.a"
)
