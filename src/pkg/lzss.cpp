#include "pkg/lzss.hpp"

#include <array>
#include <cstring>
#include <vector>

namespace clc::pkg {

namespace {

constexpr std::size_t kWindow = 32768;     // 15-bit offsets
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;     // length-3 fits one byte
constexpr std::size_t kHashSize = 1 << 15;
constexpr int kMaxChain = 64;              // match-search effort bound

std::uint32_t hash3(const std::uint8_t* p) noexcept {
  const std::uint32_t v = std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
                          (std::uint32_t{p[2]} << 16);
  return (v * 2654435761u) >> (32 - 15);
}

}  // namespace

Bytes lzss_compress(BytesView input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  // Header: uncompressed size, little-endian u32.
  const auto n = static_cast<std::uint32_t>(input.size());
  out.push_back(static_cast<std::uint8_t>(n));
  out.push_back(static_cast<std::uint8_t>(n >> 8));
  out.push_back(static_cast<std::uint8_t>(n >> 16));
  out.push_back(static_cast<std::uint8_t>(n >> 24));
  if (input.empty()) return out;

  // Hash chains: head[h] = most recent position with hash h; prev[i % W]
  // links back through earlier positions sharing the hash.
  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(kWindow, -1);

  std::size_t flag_at = 0;  // position of the current flag byte in `out`
  int flag_bit = 8;         // 8 => need a fresh flag byte

  auto put_flag = [&](bool is_match) {
    if (flag_bit == 8) {
      flag_at = out.size();
      out.push_back(0);
      flag_bit = 0;
    }
    if (is_match) out[flag_at] |= static_cast<std::uint8_t>(1u << flag_bit);
    ++flag_bit;
  };

  std::size_t pos = 0;
  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= input.size()) {
      const std::uint32_t h = hash3(input.data() + pos);
      std::int32_t cand = head[h];
      int chain = kMaxChain;
      const std::size_t limit = std::min(kMaxMatch, input.size() - pos);
      while (cand >= 0 && chain-- > 0 &&
             pos - static_cast<std::size_t>(cand) <= kWindow) {
        const auto* a = input.data() + pos;
        const auto* b = input.data() + cand;
        std::size_t len = 0;
        while (len < limit && a[len] == b[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - static_cast<std::size_t>(cand);
          if (len == limit) break;
        }
        cand = prev[static_cast<std::size_t>(cand) % kWindow];
      }
    }

    auto index_position = [&](std::size_t p) {
      if (p + kMinMatch <= input.size()) {
        const std::uint32_t h = hash3(input.data() + p);
        prev[p % kWindow] = head[h];
        head[h] = static_cast<std::int32_t>(p);
      }
    };

    if (best_len >= kMinMatch) {
      put_flag(true);
      const auto dist = static_cast<std::uint16_t>(best_dist - 1);  // 15 bits
      out.push_back(static_cast<std::uint8_t>(dist));
      out.push_back(static_cast<std::uint8_t>(dist >> 8));
      out.push_back(static_cast<std::uint8_t>(best_len - kMinMatch));
      for (std::size_t i = 0; i < best_len; ++i) index_position(pos + i);
      pos += best_len;
    } else {
      put_flag(false);
      out.push_back(input[pos]);
      index_position(pos);
      ++pos;
    }
  }
  return out;
}

Result<Bytes> lzss_decompress(BytesView in) {
  if (in.size() < 4) return Error{Errc::corrupt_data, "lzss: short header"};
  const std::uint32_t n = std::uint32_t{in[0]} | (std::uint32_t{in[1]} << 8) |
                          (std::uint32_t{in[2]} << 16) |
                          (std::uint32_t{in[3]} << 24);
  Bytes out;
  out.reserve(n);
  std::size_t pos = 4;
  std::uint8_t flags = 0;
  int flag_bit = 8;
  while (out.size() < n) {
    if (flag_bit == 8) {
      if (pos >= in.size()) return Error{Errc::corrupt_data, "lzss: truncated flags"};
      flags = in[pos++];
      flag_bit = 0;
    }
    const bool is_match = (flags >> flag_bit) & 1;
    ++flag_bit;
    if (is_match) {
      if (pos + 3 > in.size())
        return Error{Errc::corrupt_data, "lzss: truncated match"};
      const std::size_t dist =
          (std::size_t{in[pos]} | (std::size_t{in[pos + 1]} << 8)) + 1;
      const std::size_t len = std::size_t{in[pos + 2]} + kMinMatch;
      pos += 3;
      if (dist > out.size())
        return Error{Errc::corrupt_data, "lzss: offset before start"};
      if (out.size() + len > n)
        return Error{Errc::corrupt_data, "lzss: output overrun"};
      // Byte-by-byte copy: matches may overlap themselves (RLE case).
      std::size_t src = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    } else {
      if (pos >= in.size())
        return Error{Errc::corrupt_data, "lzss: truncated literal"};
      if (out.size() + 1 > n)
        return Error{Errc::corrupt_data, "lzss: output overrun"};
      out.push_back(in[pos++]);
    }
  }
  return out;
}

}  // namespace clc::pkg
