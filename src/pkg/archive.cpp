#include "pkg/archive.hpp"

#include "orb/cdr.hpp"
#include "pkg/lzss.hpp"

namespace clc::pkg {

namespace {
constexpr std::uint8_t kMagic[4] = {'C', 'L', 'C', 'A'};
constexpr std::uint8_t kFormatVersion = 1;
constexpr std::uint8_t kFlagCompressed = 0x01;
}  // namespace

Result<void> ArchiveWriter::add(const std::string& name, BytesView content,
                                bool force_raw) {
  if (name.empty())
    return Error{Errc::invalid_argument, "entry name must not be empty"};
  for (const auto& e : entries_) {
    if (e.name == name)
      return Error{Errc::already_exists, "duplicate entry " + name};
  }
  Entry e;
  e.name = name;
  e.original_size = content.size();
  e.digest = Sha256::hash(content);
  if (!force_raw) {
    Bytes compressed = lzss_compress(content);
    if (compressed.size() < content.size()) {
      e.compressed = true;
      e.stored = std::move(compressed);
    }
  }
  if (!e.compressed) e.stored.assign(content.begin(), content.end());
  entries_.push_back(std::move(e));
  return {};
}

Bytes ArchiveWriter::finish() const {
  orb::CdrWriter w;
  for (std::uint8_t m : kMagic) w.write_octet(m);
  w.write_octet(kFormatVersion);
  w.begin_encapsulation();
  w.write_ulong(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    w.write_string(e.name);
    w.write_octet(e.compressed ? kFlagCompressed : 0);
    w.write_ulonglong(e.original_size);
    w.write_bytes(e.stored);
    for (std::uint8_t b : e.digest) w.write_octet(b);
  }
  return w.take();
}

Result<ArchiveReader> ArchiveReader::open(Bytes data) {
  orb::CdrReader r(data);
  for (std::uint8_t expect : kMagic) {
    auto b = r.read_octet();
    if (!b) return b.error();
    if (*b != expect) return Error{Errc::corrupt_data, "not a CLC archive"};
  }
  auto version = r.read_octet();
  if (!version) return version.error();
  if (*version != kFormatVersion)
    return Error{Errc::unsupported,
                 "archive format version " + std::to_string(*version)};
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
  auto count = r.read_ulong();
  if (!count) return count.error();

  ArchiveReader reader;
  for (std::uint32_t i = 0; i < *count; ++i) {
    Stored s;
    auto name = r.read_string();
    if (!name) return name.error();
    s.info.name = std::move(*name);
    auto flags = r.read_octet();
    if (!flags) return flags.error();
    s.info.compressed = (*flags & kFlagCompressed) != 0;
    auto original = r.read_ulonglong();
    if (!original) return original.error();
    s.info.original_size = *original;
    auto payload = r.read_bytes();
    if (!payload) return payload.error();
    s.payload = std::move(*payload);
    s.info.stored_size = s.payload.size();
    for (auto& b : s.digest) {
      auto o = r.read_octet();
      if (!o) return o.error();
      b = *o;
    }
    s.info.digest_hex = digest_hex(s.digest);
    reader.entries_.push_back(s.info);
    reader.stored_.push_back(std::move(s));
  }
  return reader;
}

bool ArchiveReader::contains(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

Result<Bytes> ArchiveReader::extract(const std::string& name) const {
  for (const auto& s : stored_) {
    if (s.info.name != name) continue;
    Bytes content;
    if (s.info.compressed) {
      auto d = lzss_decompress(s.payload);
      if (!d) return d.error();
      content = std::move(*d);
    } else {
      content = s.payload;
    }
    if (content.size() != s.info.original_size)
      return Error{Errc::corrupt_data, "size mismatch in entry " + name};
    if (Sha256::hash(content) != s.digest)
      return Error{Errc::corrupt_data, "digest mismatch in entry " + name};
    return content;
  }
  return Error{Errc::not_found, "no entry " + name};
}

std::uint64_t ArchiveReader::partial_fetch_size(
    const std::vector<std::string>& names) const {
  // Directory overhead: name + flags + sizes + digest per *listed* entry
  // (a partial fetch still reads the whole directory), plus payloads of the
  // requested entries only.
  std::uint64_t size = 6;  // magic + version + order flag
  for (const auto& e : entries_)
    size += e.name.size() + 1 + 4 /*len*/ + 1 /*flags*/ + 8 /*orig*/ +
            4 /*payload len*/ + 32 /*digest*/;
  for (const auto& name : names) {
    for (const auto& e : entries_) {
      if (e.name == name) size += e.stored_size;
    }
  }
  return size;
}

}  // namespace clc::pkg
