#include "pkg/package.hpp"

#include <algorithm>

#include "orb/cdr.hpp"
#include "util/strings.hpp"

namespace clc::pkg {

namespace {
constexpr const char* kDescriptorEntry = "META/descriptor.xml";
constexpr const char* kIdlEntry = "META/component.idl";
constexpr const char* kSignatureEntry = "META/signature";
}  // namespace

Result<Bytes> PackageBuilder::build(BytesView signing_key) const {
  if (binaries_.empty())
    return Error{Errc::invalid_argument,
                 "package needs at least one binary implementation"};
  {
    std::vector<std::string> names;
    for (const auto& b : binaries_) names.push_back(b.entry_name());
    std::sort(names.begin(), names.end());
    if (std::adjacent_find(names.begin(), names.end()) != names.end())
      return Error{Errc::invalid_argument,
                   "duplicate binary platform in package"};
  }
  ArchiveWriter w;
  if (auto r = w.add(kDescriptorEntry, bytes_of(description_.to_xml()));
      !r.ok())
    return r.error();
  if (auto r = w.add(kIdlEntry, bytes_of(idl_)); !r.ok()) return r.error();
  for (const auto& b : binaries_) {
    // The stored form carries entry symbol then image; symbol first so
    // binary_for can split without a length prefix ambiguity.
    orb::CdrWriter payload;
    payload.write_string(b.entry_symbol);
    payload.write_bytes(b.image);
    if (auto r = w.add(b.entry_name(), payload.data()); !r.ok())
      return r.error();
  }
  // Sign the manifest of what we have so far, then append the signature.
  Bytes unsigned_archive = w.finish();
  auto reader = ArchiveReader::open(std::move(unsigned_archive));
  if (!reader) return reader.error();
  const auto mac =
      hmac_sha256(signing_key, bytes_of(signing_manifest(*reader)));
  if (auto r = w.add(kSignatureEntry, bytes_of(digest_hex(mac)),
                     /*force_raw=*/true);
      !r.ok())
    return r.error();
  return w.finish();
}

std::string signing_manifest(const ArchiveReader& archive) {
  std::vector<std::string> rows;
  for (const auto& e : archive.entries()) {
    if (e.name == kSignatureEntry) continue;
    rows.push_back(e.name + "=" + e.digest_hex);
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) {
    out += row;
    out += '\n';
  }
  return out;
}

Result<Package> Package::open(Bytes data) {
  Package p;
  p.raw_size_ = data.size();
  p.raw_ = data;
  auto archive = ArchiveReader::open(std::move(data));
  if (!archive) return archive.error();
  p.archive_ = std::move(*archive);

  auto descriptor = p.archive_.extract(kDescriptorEntry);
  if (!descriptor)
    return Error{Errc::corrupt_data,
                 "package missing descriptor: " + descriptor.error().message};
  auto parsed = ComponentDescription::from_xml(string_of(*descriptor));
  if (!parsed) return parsed.error();
  p.description_ = std::move(*parsed);

  auto idl_text = p.archive_.extract(kIdlEntry);
  if (!idl_text)
    return Error{Errc::corrupt_data, "package missing component.idl"};
  p.idl_ = string_of(*idl_text);

  if (p.binary_entries().empty())
    return Error{Errc::corrupt_data, "package carries no binaries"};
  return p;
}

std::vector<std::string> Package::binary_entries() const {
  std::vector<std::string> out;
  for (const auto& e : archive_.entries()) {
    if (starts_with(e.name, "bin/")) out.push_back(e.name);
  }
  return out;
}

bool Package::supports(const std::string& arch, const std::string& os,
                       const std::string& orb) const {
  return archive_.contains("bin/" + arch + "-" + os + "-" + orb);
}

Result<BinaryImpl> Package::binary_for(const std::string& arch,
                                       const std::string& os,
                                       const std::string& orb) const {
  const std::string entry = "bin/" + arch + "-" + os + "-" + orb;
  auto payload = archive_.extract(entry);
  if (!payload)
    return Error{Errc::not_found, description_.name + " has no binary for " +
                                      arch + "-" + os + "-" + orb};
  orb::CdrReader r(*payload);
  BinaryImpl b;
  b.arch = arch;
  b.os = os;
  b.orb = orb;
  auto symbol = r.read_string();
  if (!symbol) return symbol.error();
  b.entry_symbol = std::move(*symbol);
  auto image = r.read_bytes();
  if (!image) return image.error();
  b.image = std::move(*image);
  return b;
}

Result<void> Package::verify(BytesView key) const {
  auto sig = archive_.extract(kSignatureEntry);
  if (!sig)
    return Error{Errc::signature_mismatch, "package is unsigned"};
  const auto mac = hmac_sha256(key, bytes_of(signing_manifest(archive_)));
  if (string_of(*sig) != digest_hex(mac))
    return Error{Errc::signature_mismatch,
                 "signature of " + description_.name +
                     " does not verify against the vendor key"};
  return {};
}

Result<Bytes> Package::slice_for_platform(const std::string& arch,
                                          const std::string& os,
                                          const std::string& orb) const {
  auto binary = binary_for(arch, os, orb);
  if (!binary) return binary.error();
  ArchiveWriter w;
  auto descriptor = archive_.extract(kDescriptorEntry);
  if (!descriptor) return descriptor.error();
  if (auto r = w.add(kDescriptorEntry, *descriptor); !r.ok()) return r.error();
  auto idl_text = archive_.extract(kIdlEntry);
  if (!idl_text) return idl_text.error();
  if (auto r = w.add(kIdlEntry, *idl_text); !r.ok()) return r.error();
  orb::CdrWriter payload;
  payload.write_string(binary->entry_symbol);
  payload.write_bytes(binary->image);
  if (auto r = w.add(binary->entry_name(), payload.data()); !r.ok())
    return r.error();
  // A slice cannot carry the original signature (the manifest changed); it
  // is meant for devices that trust the node that sliced it for them.
  return w.finish();
}

std::uint64_t Package::partial_fetch_size(const std::string& arch,
                                          const std::string& os,
                                          const std::string& orb) const {
  return archive_.partial_fetch_size(
      {kDescriptorEntry, kIdlEntry, kSignatureEntry,
       "bin/" + arch + "-" + os + "-" + orb});
}

}  // namespace clc::pkg
