// SHA-256 and HMAC-SHA256, implemented from the FIPS 180-4 specification.
//
// Used for component package integrity digests and producer signatures
// (§2.1.1 of the paper requires installers to verify who made a component;
// we realize that with keyed HMAC signatures -- see DESIGN.md substitution
// table).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace clc::pkg {

/// Incremental SHA-256.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalize and return the digest; the object must be reset() before reuse.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  static Digest hash(BytesView data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// HMAC-SHA256 per RFC 2104.
Sha256::Digest hmac_sha256(BytesView key, BytesView message);

/// Digest rendered as lowercase hex.
std::string digest_hex(const Sha256::Digest& d);

}  // namespace clc::pkg
