// LZSS compression.
//
// The paper requires packages to "admit compression to overcome the
// efficient transmission of the component through possibly long and slow
// communication lines" (§2.3). We implement a classic LZSS: a 32 KiB
// sliding window with hash-chain match search, 3..258 byte matches, and a
// bit-flagged token stream (1 flag bit per token, packed 8 per flag byte):
//   flag 0 -> literal byte
//   flag 1 -> 2-byte little-endian (offset-1 : 11+5 bits is too small for a
//             32 KiB window, so we use 15 bits offset) + 1 byte (length-3)
// Incompressible inputs grow by at most 1/8 + a few header bytes; the
// archive layer stores whichever of raw/compressed is smaller.
#pragma once

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace clc::pkg {

/// Compress `input`. Output begins with the u32 (LE) uncompressed size.
Bytes lzss_compress(BytesView input);

/// Decompress; validates sizes/offsets and fails on corrupt streams.
Result<Bytes> lzss_decompress(BytesView compressed);

}  // namespace clc::pkg
