// Component packages: self-contained installable binary units (§2.3).
//
// A package is a CLC archive with a fixed layout:
//   META/descriptor.xml   -- the ComponentDescription
//   META/component.idl    -- IDL for the component's types and interfaces
//   META/signature        -- HMAC-SHA256 over all other entries' digests
//   bin/<arch>-<os>-<orb> -- one binary image per supported platform
// Binaries for different architectures/OSes/ORBs live side by side
// (requirement: "storing binaries for different architectures"), and
// `slice_for_platform` produces the stripped package a tiny device would
// fetch: metadata plus exactly one binary.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pkg/archive.hpp"
#include "pkg/descriptor.hpp"
#include "pkg/sha256.hpp"

namespace clc::pkg {

/// One platform-specific implementation inside a package.
struct BinaryImpl {
  std::string arch;          // "x86_64", "arm", "pda"
  std::string os;            // "linux", "windows", "palmos"
  std::string orb;           // ORB flavour, normally "clc"
  std::string entry_symbol;  // factory entry point in the image
  Bytes image;               // the "DLL" payload

  [[nodiscard]] std::string entry_name() const {
    return "bin/" + arch + "-" + os + "-" + orb;
  }
};

class PackageBuilder {
 public:
  explicit PackageBuilder(ComponentDescription description)
      : description_(std::move(description)) {}

  PackageBuilder& set_idl(std::string idl_text) {
    idl_ = std::move(idl_text);
    return *this;
  }
  PackageBuilder& add_binary(BinaryImpl binary) {
    binaries_.push_back(std::move(binary));
    return *this;
  }

  /// Build and sign the package. The signing key represents the producer's
  /// secret; verification needs the same key (see DESIGN.md substitutions).
  Result<Bytes> build(BytesView signing_key) const;

 private:
  ComponentDescription description_;
  std::string idl_;
  std::vector<BinaryImpl> binaries_;
};

/// Canonical signing input: per-entry "name=hexdigest\n", sorted by name,
/// with the signature entry itself excluded.
std::string signing_manifest(const ArchiveReader& archive);

class Package {
 public:
  /// Open and structurally validate (descriptor parses, layout complete).
  static Result<Package> open(Bytes data);

  [[nodiscard]] const ComponentDescription& description() const noexcept {
    return description_;
  }
  [[nodiscard]] const std::string& idl() const noexcept { return idl_; }

  /// Entry names of all binaries ("bin/arch-os-orb").
  [[nodiscard]] std::vector<std::string> binary_entries() const;

  /// Load one platform's binary (decompresses + digest-checks it).
  [[nodiscard]] Result<BinaryImpl> binary_for(const std::string& arch,
                                              const std::string& os,
                                              const std::string& orb) const;

  /// True when the package ships a binary runnable on the platform.
  [[nodiscard]] bool supports(const std::string& arch, const std::string& os,
                              const std::string& orb) const;

  /// Verify the producer signature with the vendor's key.
  [[nodiscard]] Result<void> verify(BytesView key) const;

  /// Rebuild a minimal package containing metadata + the one binary for the
  /// given platform: what a PDA-class node actually transfers.
  [[nodiscard]] Result<Bytes> slice_for_platform(const std::string& arch,
                                                 const std::string& os,
                                                 const std::string& orb) const;

  /// Serialized size of the package as opened.
  [[nodiscard]] std::uint64_t total_size() const noexcept { return raw_size_; }
  /// Bytes a partial fetch of metadata + one platform binary would move.
  [[nodiscard]] std::uint64_t partial_fetch_size(const std::string& arch,
                                                 const std::string& os,
                                                 const std::string& orb) const;

  /// Raw archive bytes (for shipping the package over the network).
  [[nodiscard]] const Bytes& raw() const noexcept { return raw_; }

 private:
  ComponentDescription description_;
  std::string idl_;
  ArchiveReader archive_;
  Bytes raw_;
  std::uint64_t raw_size_ = 0;
};

}  // namespace clc::pkg
