// Component descriptions -- the static and dynamic dimensions of §2.1.
//
// A ComponentDescription carries everything the paper requires a component
// to state about itself:
//   static / binary-package dimension (§2.1.1): hardware, OS and ORB
//     dependencies; other components needed; mobility; replication;
//     aggregation; pay-per-use licensing; security (producer identity);
//   dynamic / component-type dimension (§2.1.2): provided/used interface
//     ports, produced/consumed event ports, factory interface, framework
//     services required and QoS needs.
// Descriptions serialize to/from an OSD-derived XML schema and travel
// inside packages and registry digests.
#pragma once

#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/version.hpp"
#include "xml/xml.hpp"

namespace clc::pkg {

/// Dependency on another component (requirement 6 of the paper).
struct DependencySpec {
  std::string component;
  VersionConstraint constraint;

  [[nodiscard]] std::string to_string() const {
    return component + " " + constraint.to_string();
  }
};

/// Hardware / platform requirements for physical installation on a node.
struct HardwareSpec {
  std::vector<std::string> architectures;  // empty = any
  std::vector<std::string> operating_systems;
  std::vector<std::string> orbs;
  std::uint64_t min_memory_kb = 0;

  [[nodiscard]] bool allows(const std::string& arch, const std::string& os,
                            const std::string& orb,
                            std::uint64_t memory_kb) const;
};

/// Run-time QoS requirements the container must honour (§2.1.2).
struct QosSpec {
  double max_cpu_load = 0.1;        // fraction of one reference CPU
  std::uint64_t max_memory_kb = 0;  // 0 = unbounded
  double min_bandwidth_kbps = 0;    // needed to use this component remotely
};

/// Port kinds: synchronous interfaces and asynchronous events (§2.1.2).
enum class PortKind { provides, uses, emits, consumes };

const char* port_kind_name(PortKind k) noexcept;

struct PortSpec {
  PortKind kind = PortKind::provides;
  std::string name;  // port name, unique within the component
  std::string type;  // interface scoped name or event type name
};

/// Pay-per-use licensing information (§2.1.1).
struct LicenseSpec {
  std::string model = "free";  // "free" | "pay-per-use" | "subscription"
  double cost_per_use = 0.0;
};

/// Producer identity; the signature itself lives in the package.
struct SecuritySpec {
  std::string vendor;
};

struct ComponentDescription {
  std::string name;     // global component name, e.g. "video.mpeg.decoder"
  Version version;
  std::string summary;  // human-readable description

  // Static dimension.
  HardwareSpec hardware;
  std::vector<DependencySpec> dependencies;
  bool mobile = true;        // can be extracted & fetched; false = remote-only
  bool replicable = false;   // instances may be replicated
  bool aggregatable = false; // supports data-parallel split/gather
  bool stateless = false;    // no state transfer needed on migration
  LicenseSpec license;
  SecuritySpec security;

  // Dynamic dimension.
  std::vector<PortSpec> ports;
  QosSpec qos;
  std::string factory_interface;  // IDL interface its instances implement
  std::vector<std::string> framework_services;  // e.g. "events", "migration"

  [[nodiscard]] const PortSpec* find_port(const std::string& port_name) const;
  [[nodiscard]] std::vector<PortSpec> ports_of(PortKind kind) const;

  /// Serialize to the descriptor XML document.
  [[nodiscard]] std::string to_xml() const;
  /// Parse a descriptor document; validates required fields.
  static Result<ComponentDescription> from_xml(std::string_view xml_text);
};

}  // namespace clc::pkg
