#include "pkg/descriptor.hpp"

#include "util/strings.hpp"

namespace clc::pkg {

namespace {

std::string list_attr(const std::vector<std::string>& items) {
  return join(items, ",");
}

std::vector<std::string> parse_list(const std::string& text) {
  std::vector<std::string> out;
  for (const auto& part : split(text, ',')) {
    const auto t = trim(part);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

bool list_allows(const std::vector<std::string>& allowed,
                 const std::string& value) {
  if (allowed.empty()) return true;
  for (const auto& a : allowed) {
    if (a == value) return true;
  }
  return false;
}

Result<double> parse_double(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size())
      return Error{Errc::parse_error, std::string("bad number for ") + what};
    return v;
  } catch (...) {
    return Error{Errc::parse_error, std::string("bad number for ") + what};
  }
}

Result<std::uint64_t> parse_u64(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size())
      return Error{Errc::parse_error, std::string("bad integer for ") + what};
    return static_cast<std::uint64_t>(v);
  } catch (...) {
    return Error{Errc::parse_error, std::string("bad integer for ") + what};
  }
}

}  // namespace

bool HardwareSpec::allows(const std::string& arch, const std::string& os,
                          const std::string& orb,
                          std::uint64_t memory_kb) const {
  return list_allows(architectures, arch) &&
         list_allows(operating_systems, os) && list_allows(orbs, orb) &&
         memory_kb >= min_memory_kb;
}

const char* port_kind_name(PortKind k) noexcept {
  switch (k) {
    case PortKind::provides: return "provides";
    case PortKind::uses: return "uses";
    case PortKind::emits: return "emits";
    case PortKind::consumes: return "consumes";
  }
  return "?";
}

const PortSpec* ComponentDescription::find_port(
    const std::string& port_name) const {
  for (const auto& p : ports) {
    if (p.name == port_name) return &p;
  }
  return nullptr;
}

std::vector<PortSpec> ComponentDescription::ports_of(PortKind kind) const {
  std::vector<PortSpec> out;
  for (const auto& p : ports) {
    if (p.kind == kind) out.push_back(p);
  }
  return out;
}

std::string ComponentDescription::to_xml() const {
  xml::Element root("softpkg");
  root.set_attr("name", name);
  root.set_attr("version", version.to_string());
  if (!summary.empty()) root.add_child("description").set_text(summary);

  auto& props = root.add_child("properties");
  props.set_attr("mobile", mobile ? "true" : "false");
  props.set_attr("replicable", replicable ? "true" : "false");
  props.set_attr("aggregatable", aggregatable ? "true" : "false");
  props.set_attr("stateless", stateless ? "true" : "false");

  auto& hw = root.add_child("hardware");
  if (!hardware.architectures.empty())
    hw.set_attr("archs", list_attr(hardware.architectures));
  if (!hardware.operating_systems.empty())
    hw.set_attr("oses", list_attr(hardware.operating_systems));
  if (!hardware.orbs.empty()) hw.set_attr("orbs", list_attr(hardware.orbs));
  if (hardware.min_memory_kb != 0)
    hw.set_attr("min-memory-kb", std::to_string(hardware.min_memory_kb));

  if (!dependencies.empty()) {
    auto& deps = root.add_child("dependencies");
    for (const auto& d : dependencies) {
      auto& dep = deps.add_child("dependency");
      dep.set_attr("name", d.component);
      dep.set_attr("constraint", d.constraint.to_string());
    }
  }

  auto& lic = root.add_child("license");
  lic.set_attr("model", license.model);
  if (license.cost_per_use != 0)
    lic.set_attr("cost-per-use", std::to_string(license.cost_per_use));

  if (!security.vendor.empty()) {
    root.add_child("security").set_attr("vendor", security.vendor);
  }

  auto& qos_el = root.add_child("qos");
  qos_el.set_attr("max-cpu", std::to_string(qos.max_cpu_load));
  if (qos.max_memory_kb != 0)
    qos_el.set_attr("max-memory-kb", std::to_string(qos.max_memory_kb));
  if (qos.min_bandwidth_kbps != 0)
    qos_el.set_attr("min-bandwidth-kbps",
                    std::to_string(qos.min_bandwidth_kbps));

  if (!ports.empty()) {
    auto& ports_el = root.add_child("ports");
    for (const auto& p : ports) {
      auto& pe = ports_el.add_child(port_kind_name(p.kind));
      pe.set_attr("name", p.name);
      pe.set_attr("type", p.type);
    }
  }

  if (!factory_interface.empty())
    root.add_child("factory").set_attr("interface", factory_interface);

  if (!framework_services.empty()) {
    auto& svc = root.add_child("framework-services");
    for (const auto& s : framework_services)
      svc.add_child("service").set_attr("name", s);
  }

  xml::Document doc;
  doc.root = std::make_unique<xml::Element>(std::move(root));
  return doc.to_string();
}

Result<ComponentDescription> ComponentDescription::from_xml(
    std::string_view xml_text) {
  auto doc = xml::parse(xml_text);
  if (!doc) return doc.error();
  const xml::Element& root = *doc->root;
  if (root.name() != "softpkg")
    return Error{Errc::parse_error,
                 "descriptor root must be <softpkg>, got <" + root.name() + ">"};

  ComponentDescription d;
  d.name = root.attr("name");
  if (d.name.empty())
    return Error{Errc::parse_error, "descriptor missing component name"};
  auto version = Version::parse(root.attr("version"));
  if (!version)
    return Error{Errc::parse_error,
                 "descriptor for " + d.name + ": " + version.error().message};
  d.version = *version;
  d.summary = root.find_text("description");

  if (const auto* props = root.child("properties")) {
    d.mobile = props->attr("mobile") != "false";
    d.replicable = props->attr("replicable") == "true";
    d.aggregatable = props->attr("aggregatable") == "true";
    d.stateless = props->attr("stateless") == "true";
  }

  if (const auto* hw = root.child("hardware")) {
    d.hardware.architectures = parse_list(hw->attr("archs"));
    d.hardware.operating_systems = parse_list(hw->attr("oses"));
    d.hardware.orbs = parse_list(hw->attr("orbs"));
    if (hw->has_attr("min-memory-kb")) {
      auto v = parse_u64(hw->attr("min-memory-kb"), "min-memory-kb");
      if (!v) return v.error();
      d.hardware.min_memory_kb = *v;
    }
  }

  if (const auto* deps = root.child("dependencies")) {
    for (const auto* dep : deps->children_named("dependency")) {
      DependencySpec spec;
      spec.component = dep->attr("name");
      if (spec.component.empty())
        return Error{Errc::parse_error, "dependency missing name"};
      auto c = VersionConstraint::parse(dep->attr("constraint"));
      if (!c)
        return Error{Errc::parse_error, "dependency " + spec.component + ": " +
                                            c.error().message};
      spec.constraint = *c;
      d.dependencies.push_back(std::move(spec));
    }
  }

  if (const auto* lic = root.child("license")) {
    if (lic->has_attr("model")) d.license.model = lic->attr("model");
    if (lic->has_attr("cost-per-use")) {
      auto v = parse_double(lic->attr("cost-per-use"), "cost-per-use");
      if (!v) return v.error();
      d.license.cost_per_use = *v;
    }
  }

  if (const auto* sec = root.child("security"))
    d.security.vendor = sec->attr("vendor");

  if (const auto* q = root.child("qos")) {
    if (q->has_attr("max-cpu")) {
      auto v = parse_double(q->attr("max-cpu"), "max-cpu");
      if (!v) return v.error();
      d.qos.max_cpu_load = *v;
    }
    if (q->has_attr("max-memory-kb")) {
      auto v = parse_u64(q->attr("max-memory-kb"), "max-memory-kb");
      if (!v) return v.error();
      d.qos.max_memory_kb = *v;
    }
    if (q->has_attr("min-bandwidth-kbps")) {
      auto v = parse_double(q->attr("min-bandwidth-kbps"), "min-bandwidth-kbps");
      if (!v) return v.error();
      d.qos.min_bandwidth_kbps = *v;
    }
  }

  if (const auto* ports = root.child("ports")) {
    for (const auto& pe : ports->children()) {
      PortSpec p;
      if (pe->name() == "provides") {
        p.kind = PortKind::provides;
      } else if (pe->name() == "uses") {
        p.kind = PortKind::uses;
      } else if (pe->name() == "emits") {
        p.kind = PortKind::emits;
      } else if (pe->name() == "consumes") {
        p.kind = PortKind::consumes;
      } else {
        return Error{Errc::parse_error, "unknown port kind <" + pe->name() + ">"};
      }
      p.name = pe->attr("name");
      p.type = pe->attr("type");
      if (p.name.empty() || p.type.empty())
        return Error{Errc::parse_error, "port missing name or type"};
      if (d.find_port(p.name) != nullptr)
        return Error{Errc::parse_error, "duplicate port " + p.name};
      d.ports.push_back(std::move(p));
    }
  }

  if (const auto* f = root.child("factory"))
    d.factory_interface = f->attr("interface");

  if (const auto* svcs = root.child("framework-services")) {
    for (const auto* s : svcs->children_named("service"))
      d.framework_services.push_back(s->attr("name"));
  }
  return d;
}

}  // namespace clc::pkg
