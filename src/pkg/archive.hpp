// Archive container ("CLC package file", the paper's ".ZIP" equivalent).
//
// Layout (all integers CDR-encoded inside one encapsulation):
//   magic "CLCA", format version, entry count, then per entry:
//     name, flags (bit0 = lzss-compressed), original size, stored bytes,
//     SHA-256 digest of the original content.
// Requirements from §2.3 the format satisfies:
//   - binary + metadata entries side by side,
//   - per-entry compression (raw kept when compression does not pay),
//   - *partial extraction*: entries decode independently, so a PDA can pull
//     just the metadata and the one binary it needs,
//   - per-entry integrity digests.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pkg/sha256.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace clc::pkg {

class ArchiveWriter {
 public:
  /// Add one entry. Content is compressed when that makes it smaller,
  /// unless `force_raw`. Duplicate names are rejected.
  Result<void> add(const std::string& name, BytesView content,
                   bool force_raw = false);

  /// Serialize the archive.
  [[nodiscard]] Bytes finish() const;

 private:
  struct Entry {
    std::string name;
    bool compressed = false;
    std::uint64_t original_size = 0;
    Bytes stored;
    Sha256::Digest digest{};
  };
  std::vector<Entry> entries_;
};

class ArchiveReader {
 public:
  /// Parse the directory; entry payloads are referenced lazily.
  static Result<ArchiveReader> open(Bytes data);

  struct EntryInfo {
    std::string name;
    bool compressed = false;
    std::uint64_t original_size = 0;
    std::uint64_t stored_size = 0;
    std::string digest_hex;  // SHA-256 of the original content
  };

  [[nodiscard]] const std::vector<EntryInfo>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Decompress (if needed) and verify the digest of one entry.
  [[nodiscard]] Result<Bytes> extract(const std::string& name) const;

  /// Bytes that a partial fetch of exactly these entries would transfer
  /// (stored sizes + directory overhead) -- used by the PDA experiments.
  [[nodiscard]] std::uint64_t partial_fetch_size(
      const std::vector<std::string>& names) const;

 private:
  struct Stored {
    EntryInfo info;
    Bytes payload;
    Sha256::Digest digest{};
  };
  std::vector<EntryInfo> entries_;
  std::vector<Stored> stored_;
};

}  // namespace clc::pkg
