// Request interceptors, CORBA Portable-Interceptors style.
//
// The ORB exposes four hook points on the invocation path --
// send_request / receive_reply on the client side and receive_request /
// send_reply on the server side -- and interceptors registered with an Orb
// see every invocation through a RequestInfo. Interceptors may attach
// ServiceContexts (id + opaque bytes) that ride the message frame to the
// peer, exactly how CORBA propagates transaction/security/trace metadata
// without touching operation signatures. Walker et al. (PAPERS.md) argue
// for this separation: cross-cutting policy lives on the invocation path,
// not inside components.
//
// This header is deliberately free of ORB types so the obs library stays
// below orb in the dependency order; the Orb includes it and drives the
// chain.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"

namespace clc::obs {

/// Opaque per-message metadata, identified by a numeric tag. Carried in the
/// wire frame after the regular fields; old decoders ignore it.
struct ServiceContext {
  std::uint32_t id = 0;
  Bytes data;

  bool operator==(const ServiceContext&) const = default;
};

/// One invocation as seen by interceptors. The same object lives through
/// both hook points of a side (send_request..receive_reply on the client,
/// receive_request..send_reply on the server), so interceptors can stash
/// per-request state in their slot().
class RequestInfo {
 public:
  RequestInfo(std::uint64_t request_id, const std::string& operation,
              const std::string& interface_name)
      : request_id_(request_id),
        operation_(operation),
        interface_name_(interface_name) {}

  [[nodiscard]] std::uint64_t request_id() const noexcept { return request_id_; }
  [[nodiscard]] const std::string& operation() const noexcept {
    return operation_;
  }
  [[nodiscard]] const std::string& interface_name() const noexcept {
    return interface_name_;
  }

  /// Attach a context to the next outgoing message (the request on the
  /// client side, the reply on the server side).
  void add_context(ServiceContext ctx) { outgoing_.push_back(std::move(ctx)); }
  [[nodiscard]] const std::vector<ServiceContext>& outgoing() const noexcept {
    return outgoing_;
  }
  [[nodiscard]] std::vector<ServiceContext> take_outgoing() noexcept {
    return std::move(outgoing_);
  }

  /// Contexts received with the incoming message (the request on the server
  /// side, the reply on the client side).
  void set_incoming(std::vector<ServiceContext> contexts) {
    incoming_ = std::move(contexts);
  }
  [[nodiscard]] const std::vector<ServiceContext>& incoming() const noexcept {
    return incoming_;
  }
  [[nodiscard]] const ServiceContext* find_incoming(std::uint32_t id) const {
    for (const auto& c : incoming_)
      if (c.id == id) return &c;
    return nullptr;
  }

  /// Outcome, meaningful at the reply-side hooks.
  void set_failed(std::string error_id) {
    failed_ = true;
    error_id_ = std::move(error_id);
  }
  [[nodiscard]] bool success() const noexcept { return !failed_; }
  [[nodiscard]] const std::string& error_id() const noexcept {
    return error_id_;
  }

  /// Per-interceptor scratch slot, keyed by the interceptor's address;
  /// survives from the request-side hook to the reply-side hook. Inline
  /// storage keeps the common short chains allocation-free; longer chains
  /// spill to a heap map.
  std::uint64_t& slot(const void* key) {
    for (std::size_t i = 0; i < slot_count_; ++i)
      if (slots_[i].key == key) return slots_[i].value;
    if (slot_count_ < kInlineSlots) {
      slots_[slot_count_] = {key, 0};
      return slots_[slot_count_++].value;
    }
    if (spill_ == nullptr)
      spill_ = std::make_unique<std::map<const void*, std::uint64_t>>();
    return (*spill_)[key];
  }

 private:
  static constexpr std::size_t kInlineSlots = 4;
  struct Slot {
    const void* key = nullptr;
    std::uint64_t value = 0;
  };

  std::uint64_t request_id_;
  const std::string& operation_;
  const std::string& interface_name_;
  std::vector<ServiceContext> outgoing_;
  std::vector<ServiceContext> incoming_;
  bool failed_ = false;
  std::string error_id_;
  Slot slots_[kInlineSlots];
  std::size_t slot_count_ = 0;
  std::unique_ptr<std::map<const void*, std::uint64_t>> spill_;
};

class ClientInterceptor {
 public:
  virtual ~ClientInterceptor() = default;
  /// Before the request frame is sent; may add_context().
  virtual void send_request(RequestInfo& info) { (void)info; }
  /// After the reply arrived (or the invocation failed locally).
  virtual void receive_reply(RequestInfo& info) { (void)info; }
};

class ServerInterceptor {
 public:
  virtual ~ServerInterceptor() = default;
  /// After the request frame is decoded, before dispatch.
  virtual void receive_request(RequestInfo& info) { (void)info; }
  /// After dispatch, before the reply frame is sent; may add_context().
  virtual void send_reply(RequestInfo& info) { (void)info; }
};

/// Ordered interceptor registrations of one Orb. Request-direction hooks run
/// in registration order, reply-direction hooks in reverse order (proper
/// nesting, as in CORBA PI). Registration is mutex-guarded; the invocation
/// path takes one uncontended lock to snapshot the chain, and the common
/// "no interceptors" case is a relaxed atomic check.
///
/// A throwing interceptor must not take the invocation down with it:
/// observability is advisory, the call is not. Each hook runs inside a
/// catch-all; the faulty interceptor is skipped (its error counted in the
/// error counter when one is set) and the rest of the chain still runs, so
/// contexts attached by healthy interceptors keep riding the frame.
class InterceptorChain {
 public:
  void add_client(std::shared_ptr<ClientInterceptor> i);
  void add_server(std::shared_ptr<ServerInterceptor> i);

  /// Where swallowed interceptor exceptions are counted (non-owning; the
  /// Orb points this at its "orb.interceptor_errors" metric).
  void set_error_counter(Counter* counter) noexcept {
    error_counter_.store(counter, std::memory_order_relaxed);
  }

  [[nodiscard]] bool has_client() const noexcept {
    return has_client_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_server() const noexcept {
    return has_server_.load(std::memory_order_relaxed);
  }

  void send_request(RequestInfo& info) const;
  void receive_reply(RequestInfo& info) const;
  void receive_request(RequestInfo& info) const;
  void send_reply(RequestInfo& info) const;

 private:
  using ClientList = std::vector<std::shared_ptr<ClientInterceptor>>;
  using ServerList = std::vector<std::shared_ptr<ServerInterceptor>>;
  [[nodiscard]] std::shared_ptr<const ClientList> clients() const;
  [[nodiscard]] std::shared_ptr<const ServerList> servers() const;
  void note_error() const;
  template <typename F>
  void guarded(F&& hook) const {
    try {
      hook();
    } catch (...) {
      note_error();
    }
  }

  mutable std::mutex mutex_;
  std::shared_ptr<const ClientList> client_;
  std::shared_ptr<const ServerList> server_;
  std::atomic<bool> has_client_{false};
  std::atomic<bool> has_server_{false};
  std::atomic<Counter*> error_counter_{nullptr};
};

}  // namespace clc::obs
