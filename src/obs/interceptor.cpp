#include "obs/interceptor.hpp"

namespace clc::obs {

void InterceptorChain::add_client(std::shared_ptr<ClientInterceptor> i) {
  std::lock_guard lock(mutex_);
  auto next = client_ ? std::make_shared<ClientList>(*client_)
                      : std::make_shared<ClientList>();
  next->push_back(std::move(i));
  client_ = std::move(next);
  has_client_.store(true, std::memory_order_relaxed);
}

void InterceptorChain::add_server(std::shared_ptr<ServerInterceptor> i) {
  std::lock_guard lock(mutex_);
  auto next = server_ ? std::make_shared<ServerList>(*server_)
                      : std::make_shared<ServerList>();
  next->push_back(std::move(i));
  server_ = std::move(next);
  has_server_.store(true, std::memory_order_relaxed);
}

std::shared_ptr<const InterceptorChain::ClientList> InterceptorChain::clients()
    const {
  std::lock_guard lock(mutex_);
  return client_;
}

std::shared_ptr<const InterceptorChain::ServerList> InterceptorChain::servers()
    const {
  std::lock_guard lock(mutex_);
  return server_;
}

void InterceptorChain::note_error() const {
  if (Counter* c = error_counter_.load(std::memory_order_relaxed)) c->inc();
}

void InterceptorChain::send_request(RequestInfo& info) const {
  if (auto list = clients())
    for (const auto& i : *list) guarded([&] { i->send_request(info); });
}

void InterceptorChain::receive_reply(RequestInfo& info) const {
  if (auto list = clients())
    for (auto it = list->rbegin(); it != list->rend(); ++it)
      guarded([&] { (*it)->receive_reply(info); });
}

void InterceptorChain::receive_request(RequestInfo& info) const {
  if (auto list = servers())
    for (const auto& i : *list) guarded([&] { i->receive_request(info); });
}

void InterceptorChain::send_reply(RequestInfo& info) const {
  if (auto list = servers())
    for (auto it = list->rbegin(); it != list->rend(); ++it)
      guarded([&] { (*it)->send_reply(info); });
}

}  // namespace clc::obs
