#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace clc::obs {

// --------------------------------------------------------------------- Gauge

std::uint64_t Gauge::pack(double v) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double Gauge::unpack(std::uint64_t bits) noexcept {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// ----------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::observe(std::uint64_t value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const auto v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const auto n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::quantile(double q) const noexcept {
  const auto n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) {
      // Midpoint of the bucket's range; the overflow bucket reports the
      // observed max (its upper edge is unbounded).
      if (i >= bounds_.size()) return static_cast<double>(max());
      const std::uint64_t hi = bounds_[i];
      const std::uint64_t lo = i == 0 ? 0 : bounds_[i - 1];
      return static_cast<double>(lo + hi) / 2.0;
    }
  }
  return static_cast<double>(max());
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<std::uint64_t> default_latency_buckets_us() {
  return {1,     2,     5,      10,     20,     50,      100,     200,
          500,   1000,  2000,   5000,   10000,  20000,   50000,   100000,
          200000, 500000, 1000000, 2000000, 5000000, 10000000};
}

// ----------------------------------------------------------- MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot)
    slot = std::make_unique<Histogram>(
        bounds.empty() ? default_latency_buckets_us() : std::move(bounds));
  return *slot;
}

void MetricsRegistry::reset(std::string_view prefix) {
  std::lock_guard lock(mutex_);
  const auto matches = [&prefix](const std::string& name) {
    return prefix.empty() ||
           std::string_view(name).substr(0, prefix.size()) == prefix;
  };
  for (auto& [name, c] : counters_)
    if (matches(name)) c->reset();
  for (auto& [name, g] : gauges_)
    if (matches(name)) g->reset();
  for (auto& [name, h] : histograms_)
    if (matches(name)) h->reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) out << name << " " << c->value() << "\n";
  for (const auto& [name, g] : gauges_) out << name << " " << g->value() << "\n";
  for (const auto& [name, h] : histograms_) {
    out << name << " count=" << h->count() << " sum=" << h->sum()
        << " min=" << h->min() << " max=" << h->max() << " mean=" << h->mean()
        << " p50=" << h->quantile(0.5) << " p99=" << h->quantile(0.99)
        << " p999=" << h->quantile(0.999) << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << g->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":{\"count\":" << h->count()
        << ",\"sum\":" << h->sum() << ",\"min\":" << h->min()
        << ",\"max\":" << h->max() << ",\"mean\":" << h->mean()
        << ",\"p50\":" << h->quantile(0.5) << ",\"p99\":" << h->quantile(0.99)
        << ",\"p999\":" << h->quantile(0.999) << ",\"buckets\":[";
    const auto& bounds = h->bounds();
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) out << ",";
      out << "{\"le\":";
      if (i < bounds.size())
        out << bounds[i];
      else
        out << "\"inf\"";
      out << ",\"count\":" << counts[i] << "}";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace clc::obs
