// Unified metrics registry (observability subsystem).
//
// Every layer that used to keep an ad-hoc `Stats` struct (orb, transport,
// cohesion, sim network, resource manager) now publishes named counters,
// gauges and fixed-bucket histograms through one MetricsRegistry, so the
// benches and experiments read every number from one place and can emit it
// machine-readably (to_json) next to the human tables (to_text).
//
// Design constraints:
//  * Global-free: each Node/Orb owns (or is handed) a registry; nothing is
//    process-wide, so 1000 simulated nodes stay independent.
//  * Lock-cheap hot path: updating a metric is a relaxed atomic op. The
//    registry mutex is only taken to register (find-or-create) a metric or
//    to snapshot; callers cache the returned reference.
//  * Values reset, registrations persist: reset() (optionally scoped to a
//    name prefix) zeroes values so steady-state measurement windows work,
//    without invalidating cached references.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace clc::obs {

/// Monotonic event count. inc/add are wait-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void add(std::uint64_t n) noexcept { inc(n); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (load, queue depth, free memory, ...).
class Gauge {
 public:
  void set(double v) noexcept { bits_.store(pack(v), std::memory_order_relaxed); }
  void add(double delta) noexcept {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, pack(unpack(cur) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return unpack(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept { set(0); }

 private:
  static std::uint64_t pack(double v) noexcept;
  static double unpack(std::uint64_t bits) noexcept;
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram (cumulative-free: each bucket counts its own
/// range). Bounds are inclusive upper edges, ascending; one implicit
/// overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;  // 0 when empty
  [[nodiscard]] std::uint64_t max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Estimate the q-quantile (q in [0,1]) from bucket midpoints.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Default latency buckets in microseconds: 1µs .. 10s, roughly 1-2-5.
std::vector<std::uint64_t> default_latency_buckets_us();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned reference stays valid for the registry's
  /// lifetime; cache it on the hot path.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds = {});

  /// Zero every value whose name starts with `prefix` (all when empty).
  /// Registrations and cached references stay valid.
  void reset(std::string_view prefix = {});

  /// Human-readable snapshot, one `name value` line per metric.
  [[nodiscard]] std::string to_text() const;
  /// Machine-readable snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{...}}.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Escape a string for embedding in a JSON document.
std::string json_escape(std::string_view s);

}  // namespace clc::obs
