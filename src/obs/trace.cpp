#include "obs/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "orb/cdr.hpp"

namespace clc::obs {

// -------------------------------------------------------------- TraceContext

Bytes TraceContext::encode() const {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_ulonglong(trace_id.hi);
  w.write_ulonglong(trace_id.lo);
  w.write_ulonglong(span_id);
  w.write_ulonglong(parent_span_id);
  return w.take();
}

std::optional<TraceContext> TraceContext::decode(BytesView data) {
  orb::CdrReader r(data);
  if (!r.begin_encapsulation().ok()) return std::nullopt;
  TraceContext ctx;
  auto hi = r.read_ulonglong();
  auto lo = r.read_ulonglong();
  auto span = r.read_ulonglong();
  auto parent = r.read_ulonglong();
  if (!hi || !lo || !span || !parent) return std::nullopt;
  ctx.trace_id = Uuid{*hi, *lo};
  ctx.span_id = *span;
  ctx.parent_span_id = *parent;
  return ctx;
}

const char* span_kind_name(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::internal: return "internal";
    case SpanKind::client: return "client";
    case SpanKind::server: return "server";
  }
  return "?";
}

// ------------------------------------------------------------ TraceCollector

TraceCollector::TraceCollector(std::size_t capacity) : capacity_(capacity) {}

void TraceCollector::record(SpanRecord span) {
  std::lock_guard lock(mutex_);
  if (spans_.size() >= capacity_) {
    spans_.pop_front();
    ++evicted_;
  }
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> TraceCollector::spans() const {
  std::lock_guard lock(mutex_);
  return {spans_.begin(), spans_.end()};
}

std::vector<SpanRecord> TraceCollector::spans_of(const Uuid& trace_id) const {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out;
  for (const auto& s : spans_)
    if (s.trace_id == trace_id) out.push_back(s);
  return out;
}

std::size_t TraceCollector::span_count() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

std::uint64_t TraceCollector::evicted() const {
  std::lock_guard lock(mutex_);
  return evicted_;
}

void TraceCollector::clear() {
  std::lock_guard lock(mutex_);
  spans_.clear();
  evicted_ = 0;
}

namespace {

void build_subtree(const std::vector<SpanRecord>& spans,
                   const std::multimap<std::uint64_t, std::size_t>& by_parent,
                   std::size_t index, std::set<std::size_t>& used,
                   TraceCollector::TreeNode& out) {
  out.span = spans[index];
  auto [lo, hi] = by_parent.equal_range(spans[index].span_id);
  for (auto it = lo; it != hi; ++it) {
    if (!used.insert(it->second).second) continue;  // malformed cycle guard
    out.children.emplace_back();
    build_subtree(spans, by_parent, it->second, used, out.children.back());
  }
  std::sort(out.children.begin(), out.children.end(),
            [](const TraceCollector::TreeNode& a,
               const TraceCollector::TreeNode& b) {
              return a.span.start < b.span.start;
            });
}

std::size_t tree_depth(const TraceCollector::TreeNode& node) {
  std::size_t deepest = 0;
  for (const auto& c : node.children) deepest = std::max(deepest, tree_depth(c));
  return deepest + 1;
}

void render_node(const TraceCollector::TreeNode& node, int indent,
                 std::ostringstream& out) {
  for (int i = 0; i < indent; ++i) out << "  ";
  out << node.span.name << " [" << span_kind_name(node.span.kind) << " node="
      << node.span.node.to_string() << " span=" << node.span.span_id
      << " dur=" << (node.span.end - node.span.start) << "us"
      << (node.span.ok ? "" : " FAILED") << "]\n";
  for (const auto& c : node.children) render_node(c, indent + 1, out);
}

}  // namespace

std::vector<TraceCollector::TreeNode> TraceCollector::tree(
    const Uuid& trace_id) const {
  const auto spans = spans_of(trace_id);
  std::set<std::uint64_t> known;
  for (const auto& s : spans) known.insert(s.span_id);
  std::multimap<std::uint64_t, std::size_t> by_parent;
  for (std::size_t i = 0; i < spans.size(); ++i)
    by_parent.emplace(spans[i].parent_span_id, i);

  std::vector<TreeNode> roots;
  std::set<std::size_t> used;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const bool is_root = spans[i].parent_span_id == 0 ||
                         known.count(spans[i].parent_span_id) == 0;
    if (!is_root || !used.insert(i).second) continue;
    roots.emplace_back();
    build_subtree(spans, by_parent, i, used, roots.back());
  }
  std::sort(roots.begin(), roots.end(),
            [](const TreeNode& a, const TreeNode& b) {
              return a.span.start < b.span.start;
            });
  return roots;
}

std::set<NodeId> TraceCollector::nodes_of(const Uuid& trace_id) const {
  std::set<NodeId> out;
  for (const auto& s : spans_of(trace_id)) out.insert(s.node);
  return out;
}

std::size_t TraceCollector::depth_of(const Uuid& trace_id) const {
  std::size_t deepest = 0;
  for (const auto& root : tree(trace_id))
    deepest = std::max(deepest, tree_depth(root));
  return deepest;
}

std::string TraceCollector::render(const Uuid& trace_id) const {
  std::ostringstream out;
  out << "trace " << trace_id.to_string() << "\n";
  for (const auto& root : tree(trace_id)) render_node(root, 1, out);
  return out.str();
}

// -------------------------------------------------------------------- Tracer

Tracer::Tracer(NodeId node, std::shared_ptr<TraceCollector> sink,
               std::function<TimePoint()> now)
    : node_(node),
      sink_(std::move(sink)),
      now_(std::move(now)),
      rng_(0x7ace5eedULL ^ node.value) {}

std::uint64_t Tracer::next_span_id() noexcept {
  // Node id in the high bits keeps span ids globally unique without
  // coordination; 48 bits of sequence outlast any run.
  return (node_.value << 48) | (next_seq_++ & 0xFFFFFFFFFFFFULL);
}

std::uint64_t Tracer::begin_span(const std::string& name, SpanKind kind) {
  std::lock_guard lock(mutex_);
  if (stack_.empty())
    return begin_locked(name, kind, Uuid::random(rng_), 0);
  const SpanRecord& top = stack_.back();
  return begin_locked(name, kind, top.trace_id, top.span_id);
}

std::uint64_t Tracer::begin_span(const std::string& name, SpanKind kind,
                                 TraceContext& ctx_out) {
  std::lock_guard lock(mutex_);
  std::uint64_t id;
  if (stack_.empty()) {
    id = begin_locked(name, kind, Uuid::random(rng_), 0);
  } else {
    const SpanRecord& top = stack_.back();
    id = begin_locked(name, kind, top.trace_id, top.span_id);
  }
  const SpanRecord& opened = stack_.back();
  ctx_out = TraceContext{opened.trace_id, opened.span_id,
                         opened.parent_span_id};
  return id;
}

std::uint64_t Tracer::begin_span_remote(const std::string& name, SpanKind kind,
                                        const TraceContext& remote) {
  std::lock_guard lock(mutex_);
  if (!remote.valid())
    return begin_locked(name, kind, Uuid::random(rng_), 0);
  return begin_locked(name, kind, remote.trace_id, remote.span_id);
}

std::uint64_t Tracer::begin_locked(const std::string& name, SpanKind kind,
                                   const Uuid& trace_id,
                                   std::uint64_t parent_span_id) {
  SpanRecord span;
  span.trace_id = trace_id;
  span.span_id = next_span_id();
  span.parent_span_id = parent_span_id;
  span.node = node_;
  span.name = name;
  span.kind = kind;
  span.start = now_ ? now_() : 0;
  stack_.push_back(std::move(span));
  return stack_.back().span_id;
}

void Tracer::end_span(std::uint64_t span_id, bool ok) {
  SpanRecord finished;
  {
    std::lock_guard lock(mutex_);
    auto it = std::find_if(stack_.rbegin(), stack_.rend(),
                           [span_id](const SpanRecord& s) {
                             return s.span_id == span_id;
                           });
    if (it == stack_.rend()) return;
    finished = std::move(*it);
    stack_.erase(std::next(it).base());
  }
  finished.end = now_ ? now_() : 0;
  finished.ok = ok;
  if (sink_) sink_->record(std::move(finished));
}

TraceContext Tracer::context_of(std::uint64_t span_id) const {
  std::lock_guard lock(mutex_);
  for (const auto& s : stack_) {
    if (s.span_id == span_id)
      return TraceContext{s.trace_id, s.span_id, s.parent_span_id};
  }
  return {};
}

TraceContext Tracer::current() const {
  std::lock_guard lock(mutex_);
  if (stack_.empty()) return {};
  const SpanRecord& top = stack_.back();
  return TraceContext{top.trace_id, top.span_id, top.parent_span_id};
}

bool Tracer::active() const {
  std::lock_guard lock(mutex_);
  return !stack_.empty();
}

// -------------------------------------------------------- trace interceptors

void TraceClientInterceptor::send_request(RequestInfo& info) {
  TraceContext ctx;
  const std::uint64_t sid =
      tracer_.begin_span("call:" + info.operation(), SpanKind::client, ctx);
  info.slot(this) = sid;
  info.add_context({kTraceContextId, ctx.encode()});
}

void TraceClientInterceptor::receive_reply(RequestInfo& info) {
  tracer_.end_span(info.slot(this), info.success());
}

void TraceServerInterceptor::receive_request(RequestInfo& info) {
  TraceContext remote;
  if (const ServiceContext* ctx = info.find_incoming(kTraceContextId)) {
    if (auto decoded = TraceContext::decode(ctx->data)) remote = *decoded;
  }
  info.slot(this) = tracer_.begin_span_remote("serve:" + info.operation(),
                                              SpanKind::server, remote);
}

void TraceServerInterceptor::send_reply(RequestInfo& info) {
  tracer_.end_span(info.slot(this), info.success());
}

}  // namespace clc::obs
