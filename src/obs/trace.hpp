// Distributed invocation tracing.
//
// A TraceContext (trace id + span id + parent span id) rides remote
// invocations inside a ServiceContext, so one logical operation -- a
// Node::resolve fanning out through the cohesion tree, a migration shipping
// a package -- is visible hop-by-hop across the (simulated) network. Each
// node owns a Tracer that keeps the stack of active spans for the current
// synchronous call chain; finished spans land in a shared TraceCollector
// that stitches them into a causal tree by parent/child span ids.
//
// The Trace{Client,Server}Interceptor pair makes propagation automatic:
// every outgoing invocation opens a client span (child of whatever span is
// active) and attaches its context; every incoming invocation opens a
// server span parented to the propagated client span.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "obs/interceptor.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace clc::obs {

/// Service-context tag of the trace context ("TRAC").
inline constexpr std::uint32_t kTraceContextId = 0x54524143;

struct TraceContext {
  Uuid trace_id;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool valid() const noexcept {
    return !trace_id.is_nil() && span_id != 0;
  }
  [[nodiscard]] Bytes encode() const;
  static std::optional<TraceContext> decode(BytesView data);
};

enum class SpanKind : std::uint8_t { internal = 0, client = 1, server = 2 };

const char* span_kind_name(SpanKind k) noexcept;

struct SpanRecord {
  Uuid trace_id;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  NodeId node;
  std::string name;
  SpanKind kind = SpanKind::internal;
  TimePoint start = 0;
  TimePoint end = 0;
  bool ok = true;
};

/// Shared sink for finished spans. Bounded: when full, the oldest spans are
/// evicted (and counted), so always-on tracing cannot grow without limit.
class TraceCollector {
 public:
  explicit TraceCollector(std::size_t capacity = 65536);

  void record(SpanRecord span);

  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::vector<SpanRecord> spans_of(const Uuid& trace_id) const;
  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::uint64_t evicted() const;
  void clear();

  /// Causal tree of one trace; spans whose parent is absent become roots.
  struct TreeNode {
    SpanRecord span;
    std::vector<TreeNode> children;
  };
  [[nodiscard]] std::vector<TreeNode> tree(const Uuid& trace_id) const;
  /// Distinct nodes that contributed spans to a trace.
  [[nodiscard]] std::set<NodeId> nodes_of(const Uuid& trace_id) const;
  /// Depth of the deepest span chain in a trace (0 when unknown trace).
  [[nodiscard]] std::size_t depth_of(const Uuid& trace_id) const;
  /// Indented text rendering of the causal tree (debugging aid).
  [[nodiscard]] std::string render(const Uuid& trace_id) const;

 private:
  mutable std::mutex mutex_;
  std::deque<SpanRecord> spans_;
  std::size_t capacity_;
  std::uint64_t evicted_ = 0;
};

/// Per-node span factory. Spans of one synchronous call chain nest: a new
/// span's parent is the innermost active span. Thread-safe; under the
/// single-threaded sim the active stack is exactly the call stack.
class Tracer {
 public:
  Tracer(NodeId node, std::shared_ptr<TraceCollector> sink,
         std::function<TimePoint()> now = {});

  /// Open a span; roots a fresh trace when none is active.
  std::uint64_t begin_span(const std::string& name,
                           SpanKind kind = SpanKind::internal);
  /// Open a span and return its propagation context in one step (single
  /// lock acquisition; the client trace interceptor's hot path).
  std::uint64_t begin_span(const std::string& name, SpanKind kind,
                           TraceContext& ctx_out);
  /// Open a span continuing a trace propagated from a remote peer.
  std::uint64_t begin_span_remote(const std::string& name, SpanKind kind,
                                  const TraceContext& remote);
  /// Close a span and record it. Unknown ids are ignored.
  void end_span(std::uint64_t span_id, bool ok = true);

  /// Context of a specific open span (for propagation).
  [[nodiscard]] TraceContext context_of(std::uint64_t span_id) const;
  /// Context of the innermost active span; !valid() when idle.
  [[nodiscard]] TraceContext current() const;
  [[nodiscard]] bool active() const;
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] const std::shared_ptr<TraceCollector>& collector()
      const noexcept {
    return sink_;
  }

 private:
  std::uint64_t begin_locked(const std::string& name, SpanKind kind,
                             const Uuid& trace_id,
                             std::uint64_t parent_span_id);
  [[nodiscard]] std::uint64_t next_span_id() noexcept;

  mutable std::mutex mutex_;
  NodeId node_;
  std::shared_ptr<TraceCollector> sink_;
  std::function<TimePoint()> now_;
  std::vector<SpanRecord> stack_;
  std::uint64_t next_seq_ = 1;
  Rng rng_;
};

/// RAII span for instrumenting a scope (Node::resolve & co.).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const std::string& name,
             SpanKind kind = SpanKind::internal)
      : tracer_(tracer), id_(tracer.begin_span(name, kind)) {}
  ~ScopedSpan() { tracer_.end_span(id_, ok_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void fail() noexcept { ok_ = false; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] TraceContext context() const { return tracer_.context_of(id_); }

 private:
  Tracer& tracer_;
  std::uint64_t id_;
  bool ok_ = true;
};

/// Client-side half of automatic propagation: opens a client span per
/// outgoing invocation and attaches its TraceContext to the request frame.
class TraceClientInterceptor : public ClientInterceptor {
 public:
  explicit TraceClientInterceptor(Tracer& tracer) : tracer_(tracer) {}
  void send_request(RequestInfo& info) override;
  void receive_reply(RequestInfo& info) override;

 private:
  Tracer& tracer_;
};

/// Server-side half: opens a server span per incoming invocation, parented
/// to the propagated client span when a TraceContext arrived.
class TraceServerInterceptor : public ServerInterceptor {
 public:
  explicit TraceServerInterceptor(Tracer& tracer) : tracer_(tracer) {}
  void receive_request(RequestInfo& info) override;
  void send_reply(RequestInfo& info) override;

 private:
  Tracer& tracer_;
};

}  // namespace clc::obs
