// The ORB: object adapter + dynamic invocation engine.
//
// One Orb instance serves one CORBA-LC node (or one process in tests). It
// owns an object adapter mapping object keys to servants, serves incoming
// request frames (handed to it by whichever transports the node listens
// on), and performs outgoing invocations: marshal arguments per the
// Interface Repository's operation signature, route the frame (direct
// dispatch when the target lives in this Orb, transport otherwise), and
// unmarshal results, out/inout parameters and user exceptions.
//
// Invocation is dynamic (DII/DSI): there are no generated stubs. A servant
// receives a ServerRequest carrying decoded argument Values and fills in a
// result or a typed user exception.
//
// Invocations come in two flavours sharing one engine: invoke() blocks for
// the outcome, invoke_async() returns a PendingInvocation immediately and
// completes it when the transport delivers the reply -- CORBA AMI. Many
// pending invocations pipeline over one connection, and the hot path is
// deliberately lock-light: per-call state (policies + sleep fn) is one
// snapshot under a shared lock, the request frame is encoded once and
// reused across retries, and the servant/transport/breaker tables each sit
// behind their own lock so concurrent invocations do not serialize.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "idl/repository.hpp"
#include "obs/interceptor.hpp"
#include "obs/metrics.hpp"
#include "orb/health.hpp"
#include "orb/invocation.hpp"
#include "orb/message.hpp"
#include "orb/object_ref.hpp"
#include "orb/resilience.hpp"
#include "orb/transport.hpp"
#include "orb/value.hpp"
#include "util/clock.hpp"

namespace clc::orb {

/// Server-side view of one invocation, passed to Servant::dispatch.
class ServerRequest {
 public:
  ServerRequest(std::string operation, std::vector<Value> args)
      : operation_(std::move(operation)), args_(std::move(args)) {}

  [[nodiscard]] const std::string& operation() const noexcept {
    return operation_;
  }
  /// in/inout arguments are decoded; out arguments arrive as void Values
  /// and must be assigned before returning.
  [[nodiscard]] std::vector<Value>& args() noexcept { return args_; }
  [[nodiscard]] const Value& arg(std::size_t i) const { return args_.at(i); }

  void set_result(Value v) { result_ = std::move(v); }
  void raise(UserException ex) { exception_ = std::move(ex); }

  [[nodiscard]] const Value& result() const noexcept { return result_; }
  [[nodiscard]] const std::optional<UserException>& exception() const noexcept {
    return exception_;
  }

 private:
  std::string operation_;
  std::vector<Value> args_;
  Value result_;
  std::optional<UserException> exception_;
};

/// Base class for all object implementations.
class Servant {
 public:
  virtual ~Servant() = default;
  /// Scoped IDL name of the most-derived interface this servant implements.
  [[nodiscard]] virtual std::string interface_name() const = 0;
  /// Handle one decoded invocation. Recoverable model errors should be
  /// raised as user exceptions via req.raise(); returning an Error produces
  /// a system exception at the caller.
  virtual Result<void> dispatch(ServerRequest& req) = 0;
};

/// Convenience servant: operation name -> handler function.
class DynamicServant : public Servant {
 public:
  using Handler = std::function<Result<void>(ServerRequest&)>;

  explicit DynamicServant(std::string interface_name)
      : interface_(std::move(interface_name)) {}

  [[nodiscard]] std::string interface_name() const override {
    return interface_;
  }
  DynamicServant& on(const std::string& operation, Handler h) {
    handlers_[operation] = std::move(h);
    return *this;
  }
  Result<void> dispatch(ServerRequest& req) override {
    auto it = handlers_.find(req.operation());
    if (it == handlers_.end())
      return Error{Errc::unsupported,
                   interface_ + " does not handle " + req.operation()};
    return it->second(req);
  }

 private:
  std::string interface_;
  std::map<std::string, Handler> handlers_;
};

/// Interceptor treatment of collocated (same-Orb) invocations. `direct`
/// skips the interceptor chain on the collocated fast path -- the classic
/// ORB collocation optimization (TAO's direct strategy does the same), which
/// keeps always-on observability off the latency floor of local calls.
/// `through_frame` runs the full chain even when target and caller share an
/// Orb, matching the strict CORBA PI semantics at the cost of the chain.
enum class CollocationPolicy : std::uint8_t { direct, through_frame };

namespace detail {
struct AsyncCall;
struct HedgeJoin;
}  // namespace detail

/// Server-side admission gate (DESIGN.md §16). The owning Node installs an
/// adapter over core::AdmissionController; the Orb consults it before
/// dispatching each decoded request and answers shed calls with a BUSY
/// reply carrying Errc::overloaded -- retryable, so clients distinguish
/// "shed" from "dead". The gate also supplies the credit hint the server
/// piggybacks on replies while its queue is pressured.
class AdmissionGate {
 public:
  virtual ~AdmissionGate() = default;
  /// Gate one request before dispatch; an error sheds the call.
  virtual Result<void> admit(const std::string& interface_name,
                             const std::string& operation) = 0;
  /// Per-client in-flight window to piggyback on replies; 0 = no hint.
  virtual std::uint32_t credit_hint() = 0;
  /// Current queue-delay estimate in µs (rides the credit context).
  virtual std::uint64_t queue_delay_us() = 0;
  /// Observed service time of one dispatched request (µs), reported after
  /// the servant returns. Default no-op; the Node's gate feeds it into the
  /// AdmissionController's learned per-op cost estimator (DESIGN.md §17).
  virtual void record_service_time(const std::string& interface_name,
                                   const std::string& operation,
                                   std::uint64_t service_us) {
    (void)interface_name;
    (void)operation;
    (void)service_us;
  }
};

class Orb {
 public:
  /// `metrics` lets the owning Node share one registry across its layers;
  /// when null the Orb owns a private registry (standalone orbs, tests).
  Orb(NodeId node_id, std::shared_ptr<idl::InterfaceRepository> repo,
      obs::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] NodeId node_id() const noexcept { return node_id_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] idl::InterfaceRepository& repository() noexcept {
    return *repo_;
  }
  [[nodiscard]] const std::shared_ptr<idl::InterfaceRepository>&
  repository_ptr() const noexcept {
    return repo_;
  }

  // --------------------------------------------------------------- server

  /// The endpoint advertised in references minted by this Orb. Set it after
  /// registering with a transport (loopback or TCP).
  void set_endpoint(std::string endpoint) { endpoint_ = std::move(endpoint); }
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }

  /// Incarnation stamped into every reference this Orb mints. The Node
  /// bumps it on restart, after re-registering a fresh endpoint, so
  /// pre-crash references are distinguishable and fail retryably.
  void set_incarnation(std::uint64_t incarnation) noexcept {
    incarnation_ = incarnation;
  }
  [[nodiscard]] std::uint64_t incarnation() const noexcept {
    return incarnation_;
  }

  /// Activate a servant under a fresh object key; returns its reference.
  ObjectRef activate(std::shared_ptr<Servant> servant);
  /// Activate under a caller-chosen key (well-known objects).
  ObjectRef activate_with_key(std::shared_ptr<Servant> servant, Uuid key);
  Result<void> deactivate(const Uuid& key);
  /// Deactivate AND remember the key as retired: requests for it answer
  /// with a retryable `unreachable` system exception instead of the
  /// permanent `not_found`, so stale ObjectRefs held by remote callers are
  /// redirected through their retry/rebind path (dual-primary resolution
  /// kills the losing instance this way).
  void retire_object(const Uuid& key);
  [[nodiscard]] std::size_t active_count() const;
  [[nodiscard]] std::shared_ptr<Servant> find_servant(const Uuid& key) const;

  /// Transport-facing entry point: decode a frame, dispatch, encode reply.
  /// Thread-safe: a server worker pool may call it concurrently.
  Bytes handle_frame(BytesView frame);

  /// Install (or clear, with nullptr) the admission gate consulted before
  /// every dispatched request. Shed calls answer with a BUSY reply.
  void set_admission_gate(std::shared_ptr<AdmissionGate> gate) {
    std::unique_lock lock(policy_mutex_);
    admission_gate_ = std::move(gate);
  }

  // --------------------------------------------------------------- client

  /// Use this transport for remote endpoints with the given scheme prefix
  /// ("loop", "tcp").
  void add_transport(const std::string& scheme,
                     std::shared_ptr<Transport> transport);

  /// Full DII invocation. `args` must have one entry per IDL parameter
  /// (out params may be default Values); on return, out/inout entries are
  /// replaced with the values produced by the servant. `opts` marks the
  /// call idempotent (retry-eligible) and can tighten the deadline.
  Result<InvokeOutcome> invoke(const ObjectRef& target,
                               const std::string& operation,
                               std::vector<Value>& args,
                               const InvokeOptions& opts = {});

  /// Asynchronous DII invocation (CORBA AMI): returns immediately with a
  /// handle the caller may poll, wait on, or attach a continuation to.
  /// The resilience policies (deadline, retry with backoff, breaker) apply
  /// per pending call exactly as for invoke(); retries re-use the
  /// originally encoded frame and run on whichever thread completes the
  /// failed attempt. invoke() itself is invoke_async() + wait.
  PendingInvocation invoke_async(const ObjectRef& target,
                                 const std::string& operation,
                                 std::vector<Value> args,
                                 const InvokeOptions& opts = {});

  /// Convenience: invocation where a user exception is an Error
  /// (Errc::remote_exception with the exception name in the message).
  Result<Value> call(const ObjectRef& target, const std::string& operation,
                     std::vector<Value> args = {},
                     const InvokeOptions& opts = {});

  /// Hedged invocation over a replica set (DESIGN.md §17). Replicas are
  /// ranked by endpoint_health_score; the call goes to the healthiest, and
  /// — when the hedge policy is enabled, the call is idempotent, and the
  /// ~5% budget allows — a speculative second attempt goes to the next
  /// replica once the primary has been silent past its estimated p95
  /// latency (or immediately, if the primary fails retryably first). The
  /// first definitive outcome wins; the loser's reply is discarded. With
  /// hedging off (or a single replica) this is exactly invoke_async on the
  /// best replica. The wire sees only ordinary request frames.
  PendingInvocation invoke_hedged(std::vector<ObjectRef> replicas,
                                  const std::string& operation,
                                  std::vector<Value> args,
                                  const InvokeOptions& opts = {});

  /// call()-shaped wrapper over invoke_hedged.
  Result<Value> call_hedged(std::vector<ObjectRef> replicas,
                            const std::string& operation,
                            std::vector<Value> args = {},
                            const InvokeOptions& opts = {});

  /// One-way invocation (no reply, best effort).
  Result<void> send(const ObjectRef& target, const std::string& operation,
                    std::vector<Value> args = {},
                    const InvokeOptions& opts = {});

  /// Liveness probe of a peer endpoint.
  Result<void> ping(const std::string& endpoint);

  // ------------------------------------------------------------ resilience

  /// Deadline/retry/circuit-breaker defaults for every remote invocation.
  void set_invocation_policies(InvocationPolicies p) {
    std::unique_lock lock(policy_mutex_);
    policies_ = p;
  }
  [[nodiscard]] InvocationPolicies invocation_policies() const {
    std::shared_lock lock(policy_mutex_);
    return policies_;
  }

  /// Clock driving deadlines, backoff accounting and the invoke-latency
  /// histogram. Defaults to the real (steady) clock; a LocalNetwork hands
  /// its manual clock in so tests never read wall time. Non-owning.
  void set_clock(const Clock* clock) noexcept {
    clock_ = clock != nullptr ? clock : &default_clock_;
  }
  /// How retry backoff waits; defaults to a real sleep. Deterministic
  /// environments substitute a virtual-clock advance.
  void set_sleep_fn(std::function<void(Duration)> fn) {
    std::unique_lock lock(policy_mutex_);
    sleep_fn_ = std::move(fn);
  }

  /// How hedge timers wait: fn(delay, fire) must run `fire` once, `delay`
  /// from now, without blocking the caller. Defaults to a detached
  /// real-time thread; deterministic tests install a manual timer.
  using TimerFn = std::function<void(Duration, std::function<void()>)>;
  void set_timer_fn(TimerFn fn) {
    std::unique_lock lock(policy_mutex_);
    timer_fn_ = std::move(fn);
  }

  /// Breaker state of a remote endpoint (closed when never used).
  [[nodiscard]] CircuitBreaker::State breaker_state(
      const std::string& endpoint) const;

  // --------------------------------------------------------------- health

  /// Per-endpoint latency estimator fed by every completed remote
  /// invocation (hedge delays and health scores read it).
  [[nodiscard]] EndpointHealthTracker& health() noexcept { return health_; }

  /// One scalar ranking an endpoint for binding: smoothed latency (µs)
  /// scaled up by breaker state (half-open ×8, open ×64), a narrowed
  /// credit window (×(1 + 8/window)) and the failure streak (×2^streak,
  /// capped). Lower is healthier; collocated endpoints score 0.
  [[nodiscard]] double endpoint_health_score(const std::string& endpoint) const;

  /// Stable-sort references healthiest-first by endpoint_health_score.
  void rank_by_health(std::vector<ObjectRef>& replicas) const;

  // --------------------------------------------------------- backpressure

  /// Current credit window toward an endpoint (0 = unlimited: no credit
  /// hint received, or the server's pressure has cleared and the window
  /// ramped back up).
  [[nodiscard]] std::uint32_t endpoint_credit_window(
      const std::string& endpoint) const;
  /// Calls currently in flight toward / queued for an endpoint.
  [[nodiscard]] std::uint32_t endpoint_inflight(
      const std::string& endpoint) const;
  [[nodiscard]] std::size_t endpoint_deferred(
      const std::string& endpoint) const;
  /// Consecutive transport-class failures recorded against an endpoint
  /// (reset by any success). Feeds retry backoff so it survives breaker
  /// half-open probes instead of restarting from the base delay.
  [[nodiscard]] int endpoint_failure_streak(const std::string& endpoint) const;

  // --------------------------------------------------------- observability

  /// Portable-Interceptors-style hooks on the invocation path. Request-
  /// direction hooks run in registration order, reply-direction in reverse.
  void add_client_interceptor(std::shared_ptr<obs::ClientInterceptor> i) {
    interceptors_.add_client(std::move(i));
  }
  void add_server_interceptor(std::shared_ptr<obs::ServerInterceptor> i) {
    interceptors_.add_server(std::move(i));
  }

  /// See CollocationPolicy; the default is `direct`.
  void set_collocation_policy(CollocationPolicy p) noexcept {
    collocation_policy_ = p;
  }
  [[nodiscard]] CollocationPolicy collocation_policy() const noexcept {
    return collocation_policy_;
  }

  /// Legacy view of the invocation counters, assembled from the metrics
  /// registry ("orb.*" names).
  struct Stats {
    std::uint64_t invocations_sent = 0;
    std::uint64_t invocations_served = 0;
    std::uint64_t local_dispatches = 0;
  };
  [[nodiscard]] Stats stats() const;
  /// Zero every "orb.*" metric (counters and the latency histogram alike).
  void reset_stats();

 private:
  friend struct detail::AsyncCall;
  friend struct detail::HedgeJoin;

  /// Everything a single invocation needs from the mutable configuration,
  /// captured in ONE shared-lock acquisition at invocation start -- the
  /// retry loop never goes back to the lock.
  struct PolicySnapshot {
    InvocationPolicies policies;
    std::function<void(Duration)> sleep_fn;
  };
  [[nodiscard]] PolicySnapshot snapshot_policies() const;

  Result<Bytes> marshal_request_args(const idl::OperationDef& op,
                                     const std::vector<Value>& args);
  Bytes handle_frame_impl(BytesView frame, bool intercept_server);
  Result<ReplyMessage> dispatch_request(const RequestMessage& req);
  Result<InvokeOutcome> decode_reply(const idl::OperationDef& op,
                                     const ReplyMessage& reply,
                                     std::vector<Value>& args);
  Result<Transport*> transport_for(const std::string& endpoint);
  /// The shared engine behind invoke()/invoke_async(): validate, marshal,
  /// encode the frame once, then dispatch locally (inline) or start the
  /// asynchronous attempt state machine. Always returns a state that will
  /// complete (possibly already has).
  std::shared_ptr<detail::PendingState> invoke_pending(
      const ObjectRef& target, const std::string& operation,
      std::vector<Value> args, const InvokeOptions& opts);
  CircuitBreaker* breaker_for(const std::string& endpoint,
                              const BreakerPolicy& policy);

  // Per-endpoint credit-window flow control (DESIGN.md §16). A call either
  // acquires an in-flight slot immediately or parks in the deferred queue;
  // completions release the slot and grant queued calls. `limit == 0`
  // means unlimited (no server credit hint in effect).
  struct EndpointFlow {
    std::uint32_t limit = 0;
    std::uint32_t inflight = 0;
    bool draining = false;  // a drain loop is already running
    std::deque<std::shared_ptr<detail::AsyncCall>> deferred;
  };
  /// True: slot acquired, start the attempt now. False: call parked; the
  /// drain loop will start it when a slot frees up.
  bool flow_acquire(const std::string& endpoint,
                    const std::shared_ptr<detail::AsyncCall>& call);
  void flow_release(const std::string& endpoint);
  /// Grant deferred calls while slots are available (iterative, re-entrancy
  /// safe via EndpointFlow::draining).
  void flow_drain(const std::string& endpoint);
  /// Reply carried a credit hint: adopt the advertised window.
  void note_credit(const std::string& endpoint, std::uint32_t window);
  /// Successful reply without a hint: ramp a limited window back up.
  void note_credit_absent(const std::string& endpoint);
  /// Endpoint-level backoff memory (survives breaker half-open probes).
  /// The streak decays with a half-life (halved per elapsed half-life
  /// window since the last failure) so an idle endpoint's history fades
  /// instead of persisting forever; any success still resets it to 0.
  struct FailureStreak {
    int streak = 0;
    TimePoint last_failure = 0;
  };
  [[nodiscard]] static int decayed_streak(const FailureStreak& s,
                                          TimePoint now) noexcept;
  int note_endpoint_failure(const std::string& endpoint);
  void note_endpoint_success(const std::string& endpoint);

  /// Budget gate for one prospective hedge (counts it when allowed).
  bool hedge_budget_allows(const HedgePolicy& policy);
  /// Arm fn to run `delay` from now (TimerFn, or a detached thread).
  void arm_timer(Duration delay, std::function<void()> fn);

  NodeId node_id_;
  std::shared_ptr<idl::InterfaceRepository> repo_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* invocations_sent_;
  obs::Counter* invocations_async_;
  obs::Counter* invocations_served_;
  obs::Counter* local_dispatches_;
  obs::Counter* retries_;
  obs::Counter* deadline_exceeded_;
  obs::Counter* breaker_opened_;
  obs::Counter* breaker_rejected_;
  obs::Counter* server_shed_;
  obs::Counter* backpressure_deferred_;
  obs::Counter* credit_hints_;
  obs::Counter* hedges_;
  obs::Counter* hedge_wins_;
  obs::Gauge* inflight_gauge_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* invoke_us_;
  obs::InterceptorChain interceptors_;
  CollocationPolicy collocation_policy_ = CollocationPolicy::direct;
  std::string endpoint_;
  std::uint64_t incarnation_ = 1;
  SystemClock default_clock_;
  const Clock* clock_ = &default_clock_;

  // Sharded state: each table behind its own lock so the invocation hot
  // path never contends on a global mutex. Reader-heavy tables (policies,
  // servants, transports) use shared_mutex; the breaker table is a plain
  // mutex (touched once per remote invocation, for the map lookup only --
  // each CircuitBreaker synchronizes itself).
  mutable std::shared_mutex policy_mutex_;
  InvocationPolicies policies_;          // under policy_mutex_
  std::function<void(Duration)> sleep_fn_;  // under policy_mutex_
  TimerFn timer_fn_;                     // under policy_mutex_
  std::shared_ptr<AdmissionGate> admission_gate_;  // under policy_mutex_
  mutable std::mutex breaker_mutex_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  std::map<std::string, FailureStreak> failure_streaks_;  // under breaker_mutex_
  EndpointHealthTracker health_;         // internally synchronized
  // Hedge budget accounting: hedge-eligible calls seen / hedges issued.
  std::atomic<std::uint64_t> hedge_eligible_{0};
  std::atomic<std::uint64_t> hedges_issued_{0};
  mutable std::mutex flow_mutex_;
  std::map<std::string, EndpointFlow> flows_;   // under flow_mutex_
  mutable std::shared_mutex servants_mutex_;
  std::map<Uuid, std::shared_ptr<Servant>> servants_;
  std::set<Uuid> retired_;               // under servants_mutex_
  std::mutex rng_mutex_;
  Rng rng_{0x0bbf};  // object-key minting only; backoff jitter is per-call
  std::atomic<std::uint64_t> next_request_id_{1};
  // Declared last: destroying a transport joins its reader threads, and
  // completion callbacks running during that teardown still touch the
  // members above.
  mutable std::shared_mutex transports_mutex_;
  std::map<std::string, std::shared_ptr<Transport>> transports_;
};

}  // namespace clc::orb
