#include "orb/value.hpp"

#include <sstream>

namespace clc::orb {

using idl::TypeKind;
using idl::TypeRef;

const Value* StructValue::field(const std::string& name) const {
  for (const auto& [k, v] : fields) {
    if (k == name) return &v;
  }
  return nullptr;
}

Result<std::int64_t> Value::to_int() const {
  if (auto* v = get_if<std::int64_t>()) return *v;
  if (auto* v = get_if<std::uint64_t>()) return static_cast<std::int64_t>(*v);
  if (auto* v = get_if<std::int32_t>()) return static_cast<std::int64_t>(*v);
  if (auto* v = get_if<std::uint32_t>()) return static_cast<std::int64_t>(*v);
  if (auto* v = get_if<std::int16_t>()) return static_cast<std::int64_t>(*v);
  if (auto* v = get_if<std::uint16_t>()) return static_cast<std::int64_t>(*v);
  if (auto* v = get_if<std::uint8_t>()) return static_cast<std::int64_t>(*v);
  if (auto* v = get_if<bool>()) return *v ? 1 : 0;
  return Error{Errc::invalid_argument, "value is not integral"};
}

Result<double> Value::to_double() const {
  if (auto* v = get_if<double>()) return *v;
  if (auto* v = get_if<float>()) return static_cast<double>(*v);
  auto i = to_int();
  if (i.ok()) return static_cast<double>(*i);
  return Error{Errc::invalid_argument, "value is not numeric"};
}

bool Value::operator==(const Value& other) const {
  if (storage_.index() != other.storage_.index()) return false;
  return std::visit(
      [&](const auto& a) -> bool {
        using T = std::decay_t<decltype(a)>;
        const auto& b = std::get<T>(other.storage_);
        if constexpr (std::is_same_v<T, std::monostate>) {
          return true;
        } else if constexpr (std::is_same_v<T, StructValue>) {
          if (a.type_name != b.type_name || a.fields.size() != b.fields.size())
            return false;
          for (std::size_t i = 0; i < a.fields.size(); ++i) {
            if (a.fields[i].first != b.fields[i].first ||
                !(a.fields[i].second == b.fields[i].second))
              return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, EnumValue>) {
          return a.type_name == b.type_name && a.index == b.index;
        } else if constexpr (std::is_same_v<T, AnyValue>) {
          if (a.type.to_string() != b.type.to_string()) return false;
          if ((a.value == nullptr) != (b.value == nullptr)) return false;
          return a.value == nullptr || *a.value == *b.value;
        } else {
          return a == b;
        }
      },
      storage_);
}

std::string Value::to_string() const {
  std::ostringstream os;
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          os << "void";
        } else if constexpr (std::is_same_v<T, bool>) {
          os << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, std::uint8_t>) {
          os << static_cast<int>(v);
        } else if constexpr (std::is_same_v<T, std::string>) {
          os << '"' << v << '"';
        } else if constexpr (std::is_same_v<T, Value::Sequence>) {
          os << '[';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i > 0) os << ", ";
            os << v[i].to_string();
          }
          os << ']';
        } else if constexpr (std::is_same_v<T, StructValue>) {
          os << v.type_name << '{';
          for (std::size_t i = 0; i < v.fields.size(); ++i) {
            if (i > 0) os << ", ";
            os << v.fields[i].first << '=' << v.fields[i].second.to_string();
          }
          os << '}';
        } else if constexpr (std::is_same_v<T, EnumValue>) {
          os << v.type_name << '#' << v.index;
        } else if constexpr (std::is_same_v<T, ObjectRef>) {
          os << (v.is_nil() ? "nil-ref" : v.to_string());
        } else if constexpr (std::is_same_v<T, AnyValue>) {
          os << "any(" << v.type.to_string() << ", "
             << (v.value ? v.value->to_string() : "null") << ')';
        } else if constexpr (std::is_same_v<T, Bytes>) {
          os << "octets[" << v.size() << ']';
        } else {
          os << v;
        }
      },
      storage_);
  return os.str();
}

Value make_struct(std::string type_name,
                  std::vector<std::pair<std::string, Value>> fields) {
  StructValue s;
  s.type_name = std::move(type_name);
  s.fields = std::move(fields);
  return Value(std::move(s));
}

Result<Value> make_enum(const std::string& type_name, const std::string& label,
                        const idl::InterfaceRepository& repo) {
  const idl::EnumDef* def = repo.find_enum(type_name);
  if (def == nullptr)
    return Error{Errc::not_found, "unknown enum " + type_name};
  const int idx = def->index_of(label);
  if (idx < 0)
    return Error{Errc::invalid_argument,
                 type_name + " has no enumerator " + label};
  return Value(EnumValue{type_name, static_cast<std::uint32_t>(idx)});
}

// ---------------------------------------------------------------------------
// TypeRef descriptors on the wire (for `any`).

void marshal_typeref(const TypeRef& type, CdrWriter& w) {
  w.write_octet(static_cast<std::uint8_t>(type.kind));
  if (type.is_named()) w.write_string(type.name);
  if (type.kind == TypeKind::tk_sequence) {
    w.write_ulong(type.bound);
    marshal_typeref(*type.element, w);
  }
}

Result<TypeRef> unmarshal_typeref(CdrReader& r) {
  auto kind = r.read_octet();
  if (!kind) return kind.error();
  if (*kind > static_cast<std::uint8_t>(TypeKind::tk_alias))
    return Error{Errc::corrupt_data, "bad TypeKind on wire"};
  TypeRef t;
  t.kind = static_cast<TypeKind>(*kind);
  if (t.is_named()) {
    auto name = r.read_string();
    if (!name) return name.error();
    t.name = std::move(*name);
  }
  if (t.kind == TypeKind::tk_sequence) {
    auto bound = r.read_ulong();
    if (!bound) return bound.error();
    t.bound = *bound;
    auto elem = unmarshal_typeref(r);
    if (!elem) return elem.error();
    t.element = std::make_shared<TypeRef>(std::move(*elem));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Typed marshaling.

namespace {

Error mismatch(const TypeRef& type, const Value& v) {
  return Error{Errc::invalid_argument,
               "value " + v.to_string() + " does not match type " +
                   type.to_string()};
}

}  // namespace

Result<void> marshal_value(const Value& value, const TypeRef& declared,
                           const idl::InterfaceRepository& repo, CdrWriter& w) {
  auto resolved = repo.resolve_alias(declared);
  if (!resolved) return resolved.error();
  const TypeRef& type = *resolved;

  switch (type.kind) {
    case TypeKind::tk_void:
      if (!value.is_void()) return mismatch(type, value);
      return {};
    case TypeKind::tk_boolean: {
      if (auto* v = value.get_if<bool>()) {
        w.write_boolean(*v);
        return {};
      }
      return mismatch(type, value);
    }
    case TypeKind::tk_octet: {
      if (auto* v = value.get_if<std::uint8_t>()) {
        w.write_octet(*v);
        return {};
      }
      return mismatch(type, value);
    }
    case TypeKind::tk_short: {
      auto v = value.to_int();
      if (!v) return mismatch(type, value);
      w.write_short(static_cast<std::int16_t>(*v));
      return {};
    }
    case TypeKind::tk_ushort: {
      auto v = value.to_int();
      if (!v) return mismatch(type, value);
      w.write_ushort(static_cast<std::uint16_t>(*v));
      return {};
    }
    case TypeKind::tk_long: {
      auto v = value.to_int();
      if (!v) return mismatch(type, value);
      w.write_long(static_cast<std::int32_t>(*v));
      return {};
    }
    case TypeKind::tk_ulong: {
      auto v = value.to_int();
      if (!v) return mismatch(type, value);
      w.write_ulong(static_cast<std::uint32_t>(*v));
      return {};
    }
    case TypeKind::tk_longlong: {
      auto v = value.to_int();
      if (!v) return mismatch(type, value);
      w.write_longlong(*v);
      return {};
    }
    case TypeKind::tk_ulonglong: {
      auto v = value.to_int();
      if (!v) return mismatch(type, value);
      w.write_ulonglong(static_cast<std::uint64_t>(*v));
      return {};
    }
    case TypeKind::tk_float: {
      auto v = value.to_double();
      if (!v) return mismatch(type, value);
      w.write_float(static_cast<float>(*v));
      return {};
    }
    case TypeKind::tk_double: {
      auto v = value.to_double();
      if (!v) return mismatch(type, value);
      w.write_double(*v);
      return {};
    }
    case TypeKind::tk_string: {
      if (auto* v = value.get_if<std::string>()) {
        w.write_string(*v);
        return {};
      }
      return mismatch(type, value);
    }
    case TypeKind::tk_sequence: {
      // Fast path: sequence<octet> accepts a Bytes value directly, so
      // protocol blobs do not pay one Value per byte.
      if (type.element->kind == TypeKind::tk_octet) {
        if (auto* raw = value.get_if<Bytes>()) {
          if (type.bound != 0 && raw->size() > type.bound)
            return Error{Errc::invalid_argument, "octet sequence exceeds bound"};
          w.write_bytes(*raw);
          return {};
        }
      }
      auto* seq = value.get_if<Value::Sequence>();
      if (seq == nullptr) return mismatch(type, value);
      if (type.bound != 0 && seq->size() > type.bound)
        return Error{Errc::invalid_argument,
                     "sequence exceeds bound " + std::to_string(type.bound)};
      w.write_sequence_length(static_cast<std::uint32_t>(seq->size()));
      for (const auto& elem : *seq) {
        if (auto r = marshal_value(elem, *type.element, repo, w); !r.ok())
          return r;
      }
      return {};
    }
    case TypeKind::tk_struct: {
      auto* sv = value.get_if<StructValue>();
      if (sv == nullptr) return mismatch(type, value);
      const idl::StructDef* def = repo.find_struct(type.name);
      if (def == nullptr)
        return Error{Errc::not_found, "unknown struct " + type.name};
      if (sv->fields.size() != def->fields.size())
        return Error{Errc::invalid_argument,
                     "struct " + type.name + " expects " +
                         std::to_string(def->fields.size()) + " fields, got " +
                         std::to_string(sv->fields.size())};
      for (std::size_t i = 0; i < def->fields.size(); ++i) {
        if (sv->fields[i].first != def->fields[i].name)
          return Error{Errc::invalid_argument,
                       "struct " + type.name + " field " +
                           std::to_string(i) + " should be '" +
                           def->fields[i].name + "', got '" +
                           sv->fields[i].first + "'"};
        if (auto r = marshal_value(sv->fields[i].second, def->fields[i].type,
                                   repo, w);
            !r.ok())
          return r;
      }
      return {};
    }
    case TypeKind::tk_enum: {
      auto* ev = value.get_if<EnumValue>();
      if (ev == nullptr) return mismatch(type, value);
      const idl::EnumDef* def = repo.find_enum(type.name);
      if (def == nullptr)
        return Error{Errc::not_found, "unknown enum " + type.name};
      if (ev->index >= def->enumerators.size())
        return Error{Errc::invalid_argument,
                     "enum ordinal out of range for " + type.name};
      w.write_ulong(ev->index);
      return {};
    }
    case TypeKind::tk_objref: {
      auto* ref = value.get_if<ObjectRef>();
      if (ref == nullptr) return mismatch(type, value);
      // Interface conformance: nil is always ok; clc::Object is the
      // universal base (CORBA::Object equivalent); otherwise the ref's
      // interface must be `type.name` or derived from it (when known).
      if (!ref->is_nil() && type.name != "clc::Object" &&
          !ref->interface_name.empty() &&
          repo.find_interface(ref->interface_name) != nullptr &&
          !repo.is_a(ref->interface_name, type.name))
        return Error{Errc::invalid_argument,
                     ref->interface_name + " is not a " + type.name};
      ref->marshal(w);
      return {};
    }
    case TypeKind::tk_any: {
      auto* av = value.get_if<AnyValue>();
      if (av == nullptr || av->value == nullptr) return mismatch(type, value);
      marshal_typeref(av->type, w);
      return marshal_value(*av->value, av->type, repo, w);
    }
    case TypeKind::tk_alias:
      break;  // unreachable: resolve_alias above
  }
  return Error{Errc::unsupported, "cannot marshal " + type.to_string()};
}

Result<Value> unmarshal_value(const TypeRef& declared,
                              const idl::InterfaceRepository& repo,
                              CdrReader& r) {
  auto resolved = repo.resolve_alias(declared);
  if (!resolved) return resolved.error();
  const TypeRef& type = *resolved;

  switch (type.kind) {
    case TypeKind::tk_void:
      return Value{};
    case TypeKind::tk_boolean: {
      auto v = r.read_boolean();
      if (!v) return v.error();
      return Value(*v);
    }
    case TypeKind::tk_octet: {
      auto v = r.read_octet();
      if (!v) return v.error();
      return Value(*v);
    }
    case TypeKind::tk_short: {
      auto v = r.read_short();
      if (!v) return v.error();
      return Value(*v);
    }
    case TypeKind::tk_ushort: {
      auto v = r.read_ushort();
      if (!v) return v.error();
      return Value(*v);
    }
    case TypeKind::tk_long: {
      auto v = r.read_long();
      if (!v) return v.error();
      return Value(*v);
    }
    case TypeKind::tk_ulong: {
      auto v = r.read_ulong();
      if (!v) return v.error();
      return Value(*v);
    }
    case TypeKind::tk_longlong: {
      auto v = r.read_longlong();
      if (!v) return v.error();
      return Value(*v);
    }
    case TypeKind::tk_ulonglong: {
      auto v = r.read_ulonglong();
      if (!v) return v.error();
      return Value(*v);
    }
    case TypeKind::tk_float: {
      auto v = r.read_float();
      if (!v) return v.error();
      return Value(*v);
    }
    case TypeKind::tk_double: {
      auto v = r.read_double();
      if (!v) return v.error();
      return Value(*v);
    }
    case TypeKind::tk_string: {
      auto v = r.read_string();
      if (!v) return v.error();
      return Value(std::move(*v));
    }
    case TypeKind::tk_sequence: {
      if (type.element->kind == TypeKind::tk_octet) {
        auto raw = r.read_bytes();
        if (!raw) return raw.error();
        if (type.bound != 0 && raw->size() > type.bound)
          return Error{Errc::corrupt_data, "octet sequence exceeds bound"};
        return Value(std::move(*raw));
      }
      auto n = r.read_sequence_length();
      if (!n) return n.error();
      if (type.bound != 0 && *n > type.bound)
        return Error{Errc::corrupt_data, "sequence exceeds declared bound"};
      // Guard against hostile lengths: each element needs >= 1 byte.
      if (*n > r.remaining())
        return Error{Errc::corrupt_data, "sequence length exceeds payload"};
      Value::Sequence seq;
      seq.reserve(*n);
      for (std::uint32_t i = 0; i < *n; ++i) {
        auto elem = unmarshal_value(*type.element, repo, r);
        if (!elem) return elem.error();
        seq.push_back(std::move(*elem));
      }
      return Value(std::move(seq));
    }
    case TypeKind::tk_struct: {
      const idl::StructDef* def = repo.find_struct(type.name);
      if (def == nullptr)
        return Error{Errc::not_found, "unknown struct " + type.name};
      StructValue sv;
      sv.type_name = type.name;
      sv.fields.reserve(def->fields.size());
      for (const auto& f : def->fields) {
        auto v = unmarshal_value(f.type, repo, r);
        if (!v) return v.error();
        sv.fields.emplace_back(f.name, std::move(*v));
      }
      return Value(std::move(sv));
    }
    case TypeKind::tk_enum: {
      const idl::EnumDef* def = repo.find_enum(type.name);
      if (def == nullptr)
        return Error{Errc::not_found, "unknown enum " + type.name};
      auto idx = r.read_ulong();
      if (!idx) return idx.error();
      if (*idx >= def->enumerators.size())
        return Error{Errc::corrupt_data,
                     "enum ordinal out of range for " + type.name};
      return Value(EnumValue{type.name, *idx});
    }
    case TypeKind::tk_objref: {
      auto ref = ObjectRef::unmarshal(r);
      if (!ref) return ref.error();
      return Value(std::move(*ref));
    }
    case TypeKind::tk_any: {
      auto t = unmarshal_typeref(r);
      if (!t) return t.error();
      auto v = unmarshal_value(*t, repo, r);
      if (!v) return v.error();
      AnyValue av;
      av.type = std::move(*t);
      av.value = std::make_shared<Value>(std::move(*v));
      return Value(std::move(av));
    }
    case TypeKind::tk_alias:
      break;  // unreachable
  }
  return Error{Errc::unsupported, "cannot unmarshal " + type.to_string()};
}

}  // namespace clc::orb
