// TCP transport: real sockets, for cross-process CORBA-LC networks.
//
// Framing (v2, multiplexed): 4-byte big-endian length prefix covering an
// 8-byte big-endian correlation id plus the message frame. The correlation
// id is transport-level (the CLCP frame inside stays byte-identical to the
// loopback wire): the client stamps each submitted request with a fresh id,
// the server echoes it on the matching reply, and that is what lets many
// requests be in flight on one connection at once -- true pipelining --
// with replies correlated as they arrive, in any order. Correlation id 0
// marks a one-way record: the server does not reply to it.
//
// The server accepts connections on 127.0.0.1 (tests/benches run on one
// host); a per-connection reader thread decodes records and hands them to a
// small shared worker pool, so pipelined requests on one connection execute
// *concurrently*, and replies are written under a per-connection write lock
// as each completes. The client keeps one pooled connection per endpoint
// with its own reader thread demultiplexing replies to the pending
// callbacks; roundtrip() is submit() + wait.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "orb/transport.hpp"

namespace clc::orb {

/// Listening side. Owns the accept thread, per-connection reader threads
/// and the shared dispatch worker pool.
class TcpServer {
 public:
  TcpServer() = default;
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind to 127.0.0.1:<port> (0 = ephemeral) and start serving `handler`.
  /// `workers` sizes the dispatch pool (0 = a small hardware-based default);
  /// pipelined requests on one connection dispatch concurrently across it.
  /// Returns the endpoint string "tcp:127.0.0.1:<actual-port>".
  Result<std::string> start(MessageHandler handler, std::uint16_t port = 0,
                            std::size_t workers = 0);
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_size_;
  }

 private:
  /// One accepted connection: replies from concurrent dispatches serialize
  /// on `write_mutex`; `open` flips once on teardown so late completions
  /// drop their reply instead of writing to a recycled fd.
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
  };
  struct Job {
    std::shared_ptr<Connection> conn;
    std::uint64_t correlation = 0;
    Bytes frame;
  };

  void accept_loop();
  void read_loop(std::shared_ptr<Connection> conn);
  void dispatch_loop();

  MessageHandler handler_;
  // Atomic: stop() invalidates it while accept_loop() is reading it.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::size_t pool_size_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex state_mutex_;
  std::vector<std::thread> readers_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  std::vector<std::thread> pool_;
};

/// Connecting side; implements Transport for "tcp:host:port" endpoints.
/// One pooled connection per endpoint carries any number of in-flight
/// requests, multiplexed by correlation id.
class TcpTransport final : public Transport {
 public:
  ~TcpTransport() override;

  Result<Bytes> roundtrip(const std::string& endpoint,
                          BytesView frame) override;
  Result<void> send_oneway(const std::string& endpoint,
                           BytesView frame) override;
  void submit(const std::string& endpoint, BytesView frame,
              ReplyCallback cb) override;

  /// Drop pooled connections (e.g. after a peer restarted). Pending
  /// invocations fail with Errc::unreachable.
  void reset();

 private:
  struct Connection {
    std::string endpoint;
    int fd = -1;
    std::mutex write_mutex;
    std::mutex pending_mutex;
    std::map<std::uint64_t, ReplyCallback> pending;
    std::uint64_t next_correlation = 1;  // under pending_mutex
    std::atomic<bool> failed{false};
    std::thread reader;
  };

  Result<std::shared_ptr<Connection>> connection_for(
      const std::string& endpoint);
  void reader_loop(std::shared_ptr<Connection> conn);
  /// Tear a connection down once: shut the socket, evict it from the pool
  /// and fail every pending callback. Idempotent; safe from any thread.
  void fail_connection(const std::shared_ptr<Connection>& conn,
                       const std::string& why);

  std::mutex pool_mutex_;
  std::map<std::string, std::shared_ptr<Connection>> pool_;
  /// Failed connections parked until reset()/destruction can join their
  /// reader threads (a reader cannot join itself).
  std::vector<std::shared_ptr<Connection>> retired_;
};

}  // namespace clc::orb
