// TCP transport: real sockets, for cross-process CORBA-LC networks.
//
// Framing: 4-byte big-endian length prefix, then the message frame.
// The server accepts connections on 127.0.0.1 (tests/benches run on one
// host) and serves each connection from a worker thread; a connection
// carries sequential request/reply pairs. The client keeps one pooled
// connection per endpoint, guarded per-endpoint so concurrent callers
// serialize on the socket rather than interleaving frames.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "orb/transport.hpp"

namespace clc::orb {

/// Listening side. Owns the accept thread and per-connection workers.
class TcpServer {
 public:
  TcpServer() = default;
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind to 127.0.0.1:<port> (0 = ephemeral) and start serving `handler`.
  /// Returns the endpoint string "tcp:127.0.0.1:<actual-port>".
  Result<std::string> start(MessageHandler handler, std::uint16_t port = 0);
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  MessageHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  std::vector<int> connection_fds_;  // open connections, shut down on stop()
};

/// Connecting side; implements Transport for "tcp:host:port" endpoints.
class TcpTransport final : public Transport {
 public:
  ~TcpTransport() override;

  Result<Bytes> roundtrip(const std::string& endpoint,
                          BytesView frame) override;
  Result<void> send_oneway(const std::string& endpoint,
                           BytesView frame) override;

  /// Drop pooled connections (e.g. after a peer restarted).
  void reset();

 private:
  struct Connection {
    std::mutex mutex;
    int fd = -1;
  };
  Result<std::shared_ptr<Connection>> connection_for(
      const std::string& endpoint);

  std::mutex pool_mutex_;
  std::map<std::string, std::shared_ptr<Connection>> pool_;
};

}  // namespace clc::orb
