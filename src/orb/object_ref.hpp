// Object references (IOR equivalent).
//
// A reference names one CORBA-LC object anywhere in the network: the node
// hosting it, the object key within that node's object adapter, the
// interface it implements (repository scoped name) and the transport
// endpoint to reach the node. References are plain values and marshal with
// CDR, so they can be passed through operations and stored in registries.
#pragma once

#include <compare>
#include <string>

#include "orb/cdr.hpp"
#include "util/ids.hpp"

namespace clc::orb {

struct ObjectRef {
  NodeId node;
  Uuid key;
  std::string interface_name;  // scoped IDL name, e.g. "clc::Node"
  std::string endpoint;        // transport address, e.g. "loop:3" or "tcp:host:port"
  /// Incarnation of the hosting node when the reference was minted. A node
  /// that crashes and restarts registers a *fresh* endpoint under a higher
  /// incarnation, so a stale reference (older incarnation, dead endpoint)
  /// fails with Errc::unreachable -- a retryable error the client-side
  /// resilience policies recover from by re-resolving.
  std::uint64_t incarnation = 0;

  [[nodiscard]] bool is_nil() const noexcept { return key.is_nil(); }
  auto operator<=>(const ObjectRef&) const = default;

  [[nodiscard]] std::string to_string() const {
    return interface_name + "@" + endpoint + "/" + key.to_string();
  }

  void marshal(CdrWriter& w) const {
    w.write_ulonglong(node.value);
    w.write_ulonglong(key.hi);
    w.write_ulonglong(key.lo);
    w.write_string(interface_name);
    w.write_string(endpoint);
    w.write_ulonglong(incarnation);
  }

  static Result<ObjectRef> unmarshal(CdrReader& r) {
    ObjectRef ref;
    auto node = r.read_ulonglong();
    if (!node) return node.error();
    ref.node = NodeId{*node};
    auto hi = r.read_ulonglong();
    if (!hi) return hi.error();
    auto lo = r.read_ulonglong();
    if (!lo) return lo.error();
    ref.key = Uuid{*hi, *lo};
    auto iface = r.read_string();
    if (!iface) return iface.error();
    ref.interface_name = std::move(*iface);
    auto ep = r.read_string();
    if (!ep) return ep.error();
    ref.endpoint = std::move(*ep);
    auto inc = r.read_ulonglong();
    if (!inc) return inc.error();
    ref.incarnation = *inc;
    return ref;
  }
};

/// The nil reference.
inline const ObjectRef kNilRef{};

}  // namespace clc::orb
