// Wire protocol messages (GIOP-equivalent).
//
// Every transport payload is one framed message:
//   magic "CLCP", version octet, message-type octet, then a CDR
//   encapsulation (byte-order octet first) holding the header + body.
// Requests carry the object key, interface and operation names plus the
// already-marshaled argument encapsulation; replies carry a status and
// either results, a user exception (typed), or a system exception (Errc).
//
// Both carry an optional trailing list of service contexts (CORBA-style
// tagged metadata attached by interceptors, e.g. the trace context). The
// list is appended after the regular fields, so decoders that predate it
// simply never read those bytes, and new decoders treat an exhausted
// reader as "no contexts".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/interceptor.hpp"
#include "orb/cdr.hpp"
#include "util/ids.hpp"

namespace clc::orb {

enum class MessageType : std::uint8_t {
  request = 0,
  reply = 1,
  ping = 2,   // liveness probe, empty body, replied with pong
  pong = 3,
};

enum class ReplyStatus : std::uint8_t {
  no_exception = 0,
  user_exception = 1,
  system_exception = 2,
  object_not_found = 3,
  busy = 4,  // admission control shed the call; maps to Errc::overloaded
};

/// Interceptor-attached tagged metadata riding a message frame.
using ServiceContext = obs::ServiceContext;

struct RequestMessage {
  RequestId request_id;
  Uuid object_key;
  std::string interface_name;
  std::string operation;
  bool response_expected = true;
  Bytes args;  // CDR payload of marshaled in/inout arguments
  std::vector<ServiceContext> service_contexts;

  [[nodiscard]] Bytes encode() const;
  static Result<RequestMessage> decode(CdrReader& r);
};

struct ReplyMessage {
  RequestId request_id;
  ReplyStatus status = ReplyStatus::no_exception;
  std::string exception_id;  // user: exception scoped name; system: errc name
  Bytes payload;             // results, or marshaled exception, or message
  std::vector<ServiceContext> service_contexts;

  [[nodiscard]] Bytes encode() const;
  static Result<ReplyMessage> decode(CdrReader& r);
};

/// Service-context tag of the zone routing context ("ZONE"). Attached by
/// zoned deployments to invocations that cross a zone boundary, so the
/// receiving ORB can fence frames from a deposed zone hierarchy (stale
/// zone epoch) without decoding the request body. Unzoned deployments
/// never attach it, keeping their frames byte-identical to the pre-zone
/// protocol (pinned by wire_golden_test).
inline constexpr std::uint32_t kZoneContextId = 0x5a4f4e45;

struct ZoneContext {
  std::uint32_t zone = 0;       // sender's zone id
  std::uint64_t zone_epoch = 1; // sender zone's epoch (root's partition epoch)

  bool operator==(const ZoneContext&) const = default;

  [[nodiscard]] Bytes encode() const;
  static std::optional<ZoneContext> decode(BytesView data);

  /// Append this context to a message's service-context list.
  void attach(std::vector<ServiceContext>& contexts) const;
  /// The zone context riding `contexts`, if any.
  static std::optional<ZoneContext> find(
      const std::vector<ServiceContext>& contexts);
};

/// Service-context tag of the flow-credit context ("CRDT"). A server whose
/// dispatch queue crosses high-water piggybacks it on replies (normal and
/// BUSY alike) to tell the client how deep a pipeline this endpoint can
/// absorb right now. Unpressured servers never attach it, keeping their
/// replies byte-identical to the pre-credit protocol (pinned by
/// wire_golden_test).
inline constexpr std::uint32_t kCreditContextId = 0x43524454;

struct CreditContext {
  std::uint32_t window = 0;         // suggested max in-flight calls; >= 1
  std::uint64_t queue_delay_us = 0; // server's current queue-delay estimate

  bool operator==(const CreditContext&) const = default;

  [[nodiscard]] Bytes encode() const;
  static std::optional<CreditContext> decode(BytesView data);

  /// Append this context to a message's service-context list.
  void attach(std::vector<ServiceContext>& contexts) const;
  /// The credit context riding `contexts`, if any.
  static std::optional<CreditContext> find(
      const std::vector<ServiceContext>& contexts);
};

/// Peek at a framed message: validates magic/version, returns its type and
/// positions `r` at the start of the encapsulation.
Result<MessageType> decode_frame_header(CdrReader& r);

/// Encode a ping/pong frame.
Bytes encode_control(MessageType type);

}  // namespace clc::orb
