// Transport abstraction and the in-process loopback network.
//
// Transports move opaque framed messages between endpoints. The ORB is the
// only client: it encodes a request frame and either asks the transport for
// a blocking round-trip (or a one-way send), or *submits* the frame with a
// completion callback -- the asynchronous path that lets many requests be
// in flight on one connection at once (pipelining). Endpoint strings are
// scheme-prefixed: "loop:<n>" (in-process), "tcp:host:port".
//
// LoopbackNetwork connects all ORBs of one process and supports the failure
// and delay injection the tests and benches need: per-link latency,
// bandwidth modelling, message drop probability, and detached (crashed)
// endpoints. By default submit() completes inline on the caller thread
// (deterministic, what the virtual-time test harnesses rely on); a bench or
// stress test can start a worker pool so submissions genuinely overlap --
// including their modelled link latency, which is what makes pipelining
// measurable on a loopback link.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace clc::orb {

/// Server side of a transport: a registered handler consumes one request
/// frame and produces one reply frame (empty for one-ways).
using MessageHandler = std::function<Bytes(BytesView)>;

/// Completion of one submitted request: the reply frame, or the error that
/// ended the exchange. Invoked exactly once, possibly inline from submit().
using ReplyCallback = std::function<void(Result<Bytes>)>;

/// Client side of a transport.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Send a request frame and wait for the reply frame.
  virtual Result<Bytes> roundtrip(const std::string& endpoint,
                                  BytesView frame) = 0;
  /// Send a frame without expecting a reply.
  virtual Result<void> send_oneway(const std::string& endpoint,
                                   BytesView frame) = 0;
  /// Asynchronous request/reply: ship `frame`, invoke `cb` exactly once
  /// with the reply or the failure. `frame` need only stay alive for the
  /// duration of this call -- transports copy it if they keep it longer.
  /// The default implementation degrades to a synchronous roundtrip
  /// completing inline, so every transport supports the async API.
  virtual void submit(const std::string& endpoint, BytesView frame,
                      ReplyCallback cb) {
    cb(roundtrip(endpoint, frame));
  }
};

/// In-process "network": endpoints registered with handlers; calls are
/// synchronous function invocations plus optional injected delay.
class LoopbackNetwork : public Transport {
 public:
  /// `metrics` shares an external registry; when null the network owns one.
  explicit LoopbackNetwork(obs::MetricsRegistry* metrics = nullptr)
      : owned_metrics_(metrics == nullptr
                           ? std::make_unique<obs::MetricsRegistry>()
                           : nullptr),
        metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
        messages_(&metrics_->counter("transport.messages")),
        bytes_(&metrics_->counter("transport.bytes")),
        dropped_(&metrics_->counter("transport.dropped")),
        rng_(0x10bac) {}
  ~LoopbackNetwork() override;

  /// Tuning/failure knobs; applied to every message.
  struct Config {
    Duration latency{0};            // one-way delay (µs) applied per message
    double bytes_per_second = 0;    // 0 = infinite bandwidth
    double drop_probability = 0;    // chance a message is lost
  };

  void set_config(Config cfg) {
    std::lock_guard lock(mutex_);
    config_ = cfg;
  }

  /// How modelled latency passes; defaults to a real sleep. Deterministic
  /// harnesses (LocalNetwork) substitute a virtual-clock advance so no test
  /// ever blocks on wall time.
  void set_sleep_fn(std::function<void(Duration)> fn) {
    std::lock_guard lock(mutex_);
    sleep_fn_ = std::move(fn);
  }

  /// Register a serving endpoint; returns the endpoint string ("loop:<n>").
  std::string register_endpoint(MessageHandler handler);
  /// Simulate a crash: the endpoint stops answering (unreachable).
  void detach(const std::string& endpoint);
  /// Re-register a handler under an existing name (node re-join).
  Result<void> reattach(const std::string& endpoint, MessageHandler handler);

  Result<Bytes> roundtrip(const std::string& endpoint,
                          BytesView frame) override;
  Result<void> send_oneway(const std::string& endpoint,
                           BytesView frame) override;
  /// Async path. With no worker pool (the default) the exchange runs inline
  /// on the caller thread -- byte- and order-identical to roundtrip(), which
  /// keeps the deterministic virtual-time tiers exact. With workers started,
  /// submissions queue to the pool and their link latency overlaps.
  void submit(const std::string& endpoint, BytesView frame,
              ReplyCallback cb) override;

  /// Start `n` worker threads serving submit() concurrently (idempotent;
  /// capped at 32). Turns modelled latency into genuinely overlapping
  /// in-flight requests, as on a real network.
  void start_async_workers(std::size_t n);
  /// Drain the queue and join the workers (also runs at destruction).
  void stop_async_workers();

  /// Total messages and bytes moved (for bench accounting); a legacy view
  /// assembled from the metrics registry ("transport.*" names).
  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t dropped = 0;
  };
  [[nodiscard]] Stats stats() const {
    Stats s;
    s.messages = messages_->value();
    s.bytes = bytes_->value();
    s.dropped = dropped_->value();
    return s;
  }
  /// Zero every "transport.*" metric symmetrically.
  void reset_stats() { metrics_->reset("transport."); }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *metrics_; }

 private:
  struct Job {
    std::string endpoint;
    Bytes frame;
    ReplyCallback cb;
  };

  Result<MessageHandler> lookup(const std::string& endpoint);
  void apply_delay(std::size_t bytes);
  bool should_drop();
  Result<Bytes> exchange(const std::string& endpoint, BytesView frame);
  void worker_loop();

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* messages_;
  obs::Counter* bytes_;
  obs::Counter* dropped_;
  mutable std::mutex mutex_;
  std::map<std::string, MessageHandler> endpoints_;
  Config config_;
  std::function<void(Duration)> sleep_fn_;
  Rng rng_;
  int next_id_ = 1;

  // Async worker pool (only live between start/stop_async_workers).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace clc::orb
