#include "orb/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace clc::orb {

namespace {

/// Read exactly n bytes; false on EOF/error.
bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that went away must surface as an error result,
    // not kill the process with SIGPIPE.
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_framed(int fd, BytesView frame) {
  std::uint8_t len[4] = {
      static_cast<std::uint8_t>(frame.size() >> 24),
      static_cast<std::uint8_t>(frame.size() >> 16),
      static_cast<std::uint8_t>(frame.size() >> 8),
      static_cast<std::uint8_t>(frame.size()),
  };
  return write_exact(fd, len, 4) && write_exact(fd, frame.data(), frame.size());
}

/// Max frame we accept: 64 MiB, far above any component package chunk.
constexpr std::uint32_t kMaxFrame = 64u << 20;

bool read_framed(int fd, Bytes& out) {
  std::uint8_t len[4];
  if (!read_exact(fd, len, 4)) return false;
  const std::uint32_t n = (std::uint32_t{len[0]} << 24) |
                          (std::uint32_t{len[1]} << 16) |
                          (std::uint32_t{len[2]} << 8) | std::uint32_t{len[3]};
  if (n > kMaxFrame) return false;
  out.resize(n);
  return n == 0 || read_exact(fd, out.data(), n);
}

Result<int> connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error{Errc::io_error, "socket() failed"};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error{Errc::invalid_argument, "bad address " + host};
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Error{Errc::unreachable,
                 "connect to " + host + ":" + std::to_string(port) +
                     " failed: " + std::strerror(errno)};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

/// Parse "tcp:host:port".
Result<std::pair<std::string, std::uint16_t>> parse_endpoint(
    const std::string& endpoint) {
  const auto parts = split(endpoint, ':');
  if (parts.size() != 3 || parts[0] != "tcp")
    return Error{Errc::invalid_argument, "bad tcp endpoint " + endpoint};
  const int port = std::atoi(parts[2].c_str());
  if (port <= 0 || port > 65535)
    return Error{Errc::invalid_argument, "bad port in " + endpoint};
  return std::make_pair(parts[1], static_cast<std::uint16_t>(port));
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpServer

TcpServer::~TcpServer() { stop(); }

Result<std::string> TcpServer::start(MessageHandler handler,
                                     std::uint16_t port) {
  if (running_.load()) return Error{Errc::bad_state, "server already running"};
  handler_ = std::move(handler);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Error{Errc::io_error, "socket() failed"};
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error{Errc::io_error,
                 std::string("bind failed: ") + std::strerror(errno)};
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error{Errc::io_error, "listen failed"};
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return "tcp:127.0.0.1:" + std::to_string(port_);
}

void TcpServer::stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mutex_);
    // Wake workers blocked in read() on their connection sockets.
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    connection_fds_.clear();
    workers.swap(workers_);
  }
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket closed by stop()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard lock(workers_mutex_);
    connection_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void TcpServer::serve_connection(int fd) {
  Bytes frame;
  while (running_.load() && read_framed(fd, frame)) {
    Bytes reply = handler_(frame);
    // One-way frames produce an empty reply; still send the empty frame so
    // the client's oneway path never blocks waiting on nothing.
    if (!write_framed(fd, reply)) break;
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// TcpTransport

TcpTransport::~TcpTransport() { reset(); }

void TcpTransport::reset() {
  std::lock_guard lock(pool_mutex_);
  for (auto& [ep, conn] : pool_) {
    std::lock_guard cl(conn->mutex);
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  pool_.clear();
}

Result<std::shared_ptr<TcpTransport::Connection>> TcpTransport::connection_for(
    const std::string& endpoint) {
  {
    std::lock_guard lock(pool_mutex_);
    auto it = pool_.find(endpoint);
    if (it != pool_.end()) return it->second;
  }
  auto parsed = parse_endpoint(endpoint);
  if (!parsed) return parsed.error();
  auto fd = connect_to(parsed->first, parsed->second);
  if (!fd) return fd.error();
  auto conn = std::make_shared<Connection>();
  conn->fd = *fd;
  std::lock_guard lock(pool_mutex_);
  auto [it, inserted] = pool_.emplace(endpoint, conn);
  if (!inserted) {
    // Raced with another caller; use theirs and drop ours.
    ::close(conn->fd);
    return it->second;
  }
  return conn;
}

Result<Bytes> TcpTransport::roundtrip(const std::string& endpoint,
                                      BytesView frame) {
  auto conn = connection_for(endpoint);
  if (!conn) return conn.error();
  std::lock_guard lock((*conn)->mutex);
  if ((*conn)->fd < 0) return Error{Errc::unreachable, "connection closed"};
  Bytes reply;
  if (!write_framed((*conn)->fd, frame) ||
      !read_framed((*conn)->fd, reply)) {
    ::close((*conn)->fd);
    (*conn)->fd = -1;
    std::lock_guard pl(pool_mutex_);
    pool_.erase(endpoint);
    return Error{Errc::unreachable, "i/o failed on " + endpoint};
  }
  return reply;
}

Result<void> TcpTransport::send_oneway(const std::string& endpoint,
                                       BytesView frame) {
  // The server replies with an empty frame even to one-ways; consume it to
  // keep the stream in lockstep.
  auto r = roundtrip(endpoint, frame);
  if (!r) return r.error();
  return {};
}

}  // namespace clc::orb
