#include "orb/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace clc::orb {

namespace {

/// Read exactly n bytes; false on EOF/error.
bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that went away must surface as an error result,
    // not kill the process with SIGPIPE.
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

/// Max frame we accept: 64 MiB, far above any component package chunk.
constexpr std::uint32_t kMaxFrame = 64u << 20;

/// One record: u32 length (correlation id + frame), u64 correlation id,
/// frame bytes. Correlation id 0 = one-way, no reply record follows.
bool write_record(int fd, std::uint64_t correlation, BytesView frame) {
  const std::uint32_t n = static_cast<std::uint32_t>(frame.size()) + 8;
  std::uint8_t hdr[12] = {
      static_cast<std::uint8_t>(n >> 24),
      static_cast<std::uint8_t>(n >> 16),
      static_cast<std::uint8_t>(n >> 8),
      static_cast<std::uint8_t>(n),
      static_cast<std::uint8_t>(correlation >> 56),
      static_cast<std::uint8_t>(correlation >> 48),
      static_cast<std::uint8_t>(correlation >> 40),
      static_cast<std::uint8_t>(correlation >> 32),
      static_cast<std::uint8_t>(correlation >> 24),
      static_cast<std::uint8_t>(correlation >> 16),
      static_cast<std::uint8_t>(correlation >> 8),
      static_cast<std::uint8_t>(correlation),
  };
  return write_exact(fd, hdr, 12) &&
         write_exact(fd, frame.data(), frame.size());
}

bool read_record(int fd, std::uint64_t& correlation, Bytes& frame) {
  std::uint8_t hdr[12];
  if (!read_exact(fd, hdr, 12)) return false;
  const std::uint32_t n = (std::uint32_t{hdr[0]} << 24) |
                          (std::uint32_t{hdr[1]} << 16) |
                          (std::uint32_t{hdr[2]} << 8) | std::uint32_t{hdr[3]};
  if (n < 8 || n - 8 > kMaxFrame) return false;
  correlation = 0;
  for (int i = 4; i < 12; ++i) correlation = (correlation << 8) | hdr[i];
  frame.resize(n - 8);
  return n == 8 || read_exact(fd, frame.data(), n - 8);
}

Result<int> connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error{Errc::io_error, "socket() failed"};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error{Errc::invalid_argument, "bad address " + host};
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Error{Errc::unreachable,
                 "connect to " + host + ":" + std::to_string(port) +
                     " failed: " + std::strerror(errno)};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

/// Parse "tcp:host:port".
Result<std::pair<std::string, std::uint16_t>> parse_endpoint(
    const std::string& endpoint) {
  const auto parts = split(endpoint, ':');
  if (parts.size() != 3 || parts[0] != "tcp")
    return Error{Errc::invalid_argument, "bad tcp endpoint " + endpoint};
  const int port = std::atoi(parts[2].c_str());
  if (port <= 0 || port > 65535)
    return Error{Errc::invalid_argument, "bad port in " + endpoint};
  return std::make_pair(parts[1], static_cast<std::uint16_t>(port));
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpServer

TcpServer::~TcpServer() { stop(); }

Result<std::string> TcpServer::start(MessageHandler handler,
                                     std::uint16_t port, std::size_t workers) {
  if (running_.load()) return Error{Errc::bad_state, "server already running"};
  handler_ = std::move(handler);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error{Errc::io_error, "socket() failed"};
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Error{Errc::io_error,
                 std::string("bind failed: ") + std::strerror(errno)};
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Error{Errc::io_error, "listen failed"};
  }
  listen_fd_.store(fd);
  pool_size_ = workers != 0
                   ? workers
                   : std::clamp<std::size_t>(
                         std::thread::hardware_concurrency(), 2, 8);
  running_.store(true);
  pool_.reserve(pool_size_);
  for (std::size_t i = 0; i < pool_size_; ++i)
    pool_.emplace_back([this] { dispatch_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  return "tcp:127.0.0.1:" + std::to_string(port_);
}

void TcpServer::stop() {
  if (!running_.exchange(false)) return;
  // Shutdown wakes a blocked accept(); close only after the accept thread
  // is joined so the descriptor number cannot be recycled under it.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd >= 0) ::close(listen_fd);
  {
    // Wake readers blocked in read() on their connection sockets.
    std::lock_guard lock(state_mutex_);
    for (auto& conn : connections_) {
      conn->open.store(false);
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  queue_cv_.notify_all();
  for (auto& t : pool_) {
    if (t.joinable()) t.join();
  }
  pool_.clear();
  {
    std::lock_guard lock(state_mutex_);
    for (auto& t : readers_) {
      if (t.joinable()) t.join();
    }
    readers_.clear();
    // Close only after every worker and reader is gone, so no thread can
    // touch a recycled descriptor.
    for (auto& conn : connections_) {
      ::close(conn->fd);
      conn->fd = -1;
    }
    connections_.clear();
  }
  {
    std::lock_guard lock(queue_mutex_);
    queue_.clear();
  }
}

void TcpServer::accept_loop() {
  while (running_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket closed by stop()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard lock(state_mutex_);
    connections_.push_back(conn);
    readers_.emplace_back([this, conn] { read_loop(conn); });
  }
}

void TcpServer::read_loop(std::shared_ptr<Connection> conn) {
  std::uint64_t correlation = 0;
  Bytes frame;
  while (running_.load() && read_record(conn->fd, correlation, frame)) {
    {
      std::lock_guard lock(queue_mutex_);
      queue_.push_back(Job{conn, correlation, std::move(frame)});
    }
    queue_cv_.notify_one();
    frame = Bytes{};
  }
  conn->open.store(false);
}

void TcpServer::dispatch_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !running_.load() || !queue_.empty(); });
      if (!running_.load()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    Bytes reply = handler_(job.frame);
    // Correlation 0 marks a one-way record: the client expects no reply.
    if (job.correlation == 0) continue;
    std::lock_guard wl(job.conn->write_mutex);
    if (!job.conn->open.load()) continue;
    if (!write_record(job.conn->fd, job.correlation, reply)) {
      job.conn->open.store(false);
      ::shutdown(job.conn->fd, SHUT_RDWR);
    }
  }
}

// ---------------------------------------------------------------------------
// TcpTransport

TcpTransport::~TcpTransport() { reset(); }

void TcpTransport::fail_connection(const std::shared_ptr<Connection>& conn,
                                   const std::string& why) {
  if (conn->failed.exchange(true)) return;
  if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  {
    std::lock_guard lock(pool_mutex_);
    auto it = pool_.find(conn->endpoint);
    if (it != pool_.end() && it->second == conn) pool_.erase(it);
  }
  std::map<std::uint64_t, ReplyCallback> orphans;
  {
    std::lock_guard lock(conn->pending_mutex);
    orphans.swap(conn->pending);
  }
  for (auto& [corr, cb] : orphans)
    cb(Error{Errc::unreachable, why});
}

void TcpTransport::reset() {
  std::vector<std::shared_ptr<Connection>> all;
  {
    std::lock_guard lock(pool_mutex_);
    all.swap(retired_);
    pool_.clear();
  }
  for (auto& conn : all) fail_connection(conn, "transport reset");
  for (auto& conn : all) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
}

Result<std::shared_ptr<TcpTransport::Connection>> TcpTransport::connection_for(
    const std::string& endpoint) {
  {
    std::lock_guard lock(pool_mutex_);
    auto it = pool_.find(endpoint);
    if (it != pool_.end()) return it->second;
  }
  auto parsed = parse_endpoint(endpoint);
  if (!parsed) return parsed.error();
  auto fd = connect_to(parsed->first, parsed->second);
  if (!fd) return fd.error();
  auto conn = std::make_shared<Connection>();
  conn->endpoint = endpoint;
  conn->fd = *fd;
  {
    std::lock_guard lock(pool_mutex_);
    auto [it, inserted] = pool_.emplace(endpoint, conn);
    if (!inserted) {
      // Raced with another caller; use theirs and drop ours.
      ::close(conn->fd);
      return it->second;
    }
    // Every connection ever made is retained here until reset() so its
    // reader thread has a join point (a reader cannot join itself).
    retired_.push_back(conn);
  }
  conn->reader = std::thread([this, conn] { reader_loop(conn); });
  return conn;
}

void TcpTransport::reader_loop(std::shared_ptr<Connection> conn) {
  std::uint64_t correlation = 0;
  Bytes frame;
  while (read_record(conn->fd, correlation, frame)) {
    ReplyCallback cb;
    {
      std::lock_guard lock(conn->pending_mutex);
      auto it = conn->pending.find(correlation);
      if (it != conn->pending.end()) {
        cb = std::move(it->second);
        conn->pending.erase(it);
      }
    }
    // Records with no pending entry (e.g. a reply to an abandoned one-way)
    // are silently discarded.
    if (cb) cb(std::move(frame));
    frame = Bytes{};
  }
  fail_connection(conn, "i/o failed on " + conn->endpoint);
}

void TcpTransport::submit(const std::string& endpoint, BytesView frame,
                          ReplyCallback cb) {
  auto conn = connection_for(endpoint);
  if (!conn) {
    cb(conn.error());
    return;
  }
  std::uint64_t correlation = 0;
  {
    std::lock_guard lock((*conn)->pending_mutex);
    correlation = (*conn)->next_correlation++;
    (*conn)->pending.emplace(correlation, std::move(cb));
  }
  if ((*conn)->failed.load()) {
    // The reader died between lookup and registration; its drain may have
    // run before our insert, so fail our own entry if it is still there.
    ReplyCallback mine;
    {
      std::lock_guard lock((*conn)->pending_mutex);
      auto it = (*conn)->pending.find(correlation);
      if (it != (*conn)->pending.end()) {
        mine = std::move(it->second);
        (*conn)->pending.erase(it);
      }
    }
    if (mine) mine(Error{Errc::unreachable, "connection closed"});
    return;
  }
  bool wrote;
  {
    std::lock_guard lock((*conn)->write_mutex);
    wrote = write_record((*conn)->fd, correlation, frame);
  }
  // On write failure the teardown path fails every pending callback --
  // including the one just registered -- exactly once.
  if (!wrote) fail_connection(*conn, "i/o failed on " + endpoint);
}

Result<Bytes> TcpTransport::roundtrip(const std::string& endpoint,
                                      BytesView frame) {
  struct Waiter {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Result<Bytes> reply{Error{Errc::bad_state, "no reply"}};
  };
  auto w = std::make_shared<Waiter>();
  submit(endpoint, frame, [w](Result<Bytes> r) {
    {
      std::lock_guard lock(w->mutex);
      w->reply = std::move(r);
      w->done = true;
    }
    w->cv.notify_one();
  });
  std::unique_lock lock(w->mutex);
  w->cv.wait(lock, [&] { return w->done; });
  return std::move(w->reply);
}

Result<void> TcpTransport::send_oneway(const std::string& endpoint,
                                       BytesView frame) {
  auto conn = connection_for(endpoint);
  if (!conn) return conn.error();
  bool wrote;
  {
    std::lock_guard lock((*conn)->write_mutex);
    // Correlation 0: the server dispatches without replying, and nothing
    // blocks behind the send -- a true one-way.
    wrote = write_record((*conn)->fd, 0, frame);
  }
  if (!wrote) {
    fail_connection(*conn, "i/o failed on " + endpoint);
    return Error{Errc::unreachable, "i/o failed on " + endpoint};
  }
  return {};
}

}  // namespace clc::orb
