#include "orb/orb.hpp"

#include <chrono>
#include <thread>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace clc::orb {

using idl::OperationDef;
using idl::ParamDirection;

Orb::Orb(NodeId node_id, std::shared_ptr<idl::InterfaceRepository> repo,
         obs::MetricsRegistry* metrics)
    : node_id_(node_id),
      repo_(std::move(repo)),
      owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      invocations_sent_(&metrics_->counter("orb.invocations_sent")),
      invocations_served_(&metrics_->counter("orb.invocations_served")),
      local_dispatches_(&metrics_->counter("orb.local_dispatches")),
      retries_(&metrics_->counter("orb.retries")),
      deadline_exceeded_(&metrics_->counter("orb.deadline_exceeded")),
      breaker_opened_(&metrics_->counter("orb.breaker_opened")),
      breaker_rejected_(&metrics_->counter("orb.breaker_rejected")),
      invoke_us_(&metrics_->histogram("orb.invoke_us")) {
  interceptors_.set_error_counter(&metrics_->counter("orb.interceptor_errors"));
  // Base IDL every CORBA-LC peer shares.
  const char* kBaseIdl =
      "module clc {"
      "  interface Object { };"
      "  interface EventConsumer { oneway void push(in any event); };"
      "};";
  auto r = repo_->register_idl(kBaseIdl);
  (void)r;  // idempotent; conflicts impossible for the base IDL
}

// ---------------------------------------------------------------------------
// Object adapter

ObjectRef Orb::activate(std::shared_ptr<Servant> servant) {
  Uuid key;
  {
    std::lock_guard lock(mutex_);
    key = Uuid::random(rng_);
  }
  return activate_with_key(std::move(servant), key);
}

ObjectRef Orb::activate_with_key(std::shared_ptr<Servant> servant, Uuid key) {
  ObjectRef ref;
  ref.node = node_id_;
  ref.key = key;
  ref.interface_name = servant->interface_name();
  ref.endpoint = endpoint_;
  ref.incarnation = incarnation_;
  std::lock_guard lock(mutex_);
  servants_[key] = std::move(servant);
  return ref;
}

Result<void> Orb::deactivate(const Uuid& key) {
  std::lock_guard lock(mutex_);
  if (servants_.erase(key) == 0)
    return Error{Errc::not_found, "no servant with key " + key.to_string()};
  return {};
}

std::size_t Orb::active_count() const {
  std::lock_guard lock(mutex_);
  return servants_.size();
}

std::shared_ptr<Servant> Orb::find_servant(const Uuid& key) const {
  std::lock_guard lock(mutex_);
  auto it = servants_.find(key);
  return it == servants_.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------------------
// Server path

Bytes Orb::handle_frame(BytesView frame) {
  return handle_frame_impl(frame, /*intercept_server=*/true);
}

Bytes Orb::handle_frame_impl(BytesView frame, bool intercept_server) {
  CdrReader r(frame);
  auto type = decode_frame_header(r);
  if (!type) {
    ReplyMessage err;
    err.status = ReplyStatus::system_exception;
    err.exception_id = errc_name(type.error().code);
    err.payload = bytes_of(type.error().message);
    return err.encode();
  }
  if (*type == MessageType::ping) return encode_control(MessageType::pong);
  if (*type != MessageType::request) return {};  // stray reply/pong: ignore

  auto req = RequestMessage::decode(r);
  if (!req) {
    ReplyMessage err;
    err.status = ReplyStatus::system_exception;
    err.exception_id = errc_name(req.error().code);
    err.payload = bytes_of(req.error().message);
    return err.encode();
  }
  invocations_served_->inc();

  const bool intercept = intercept_server && interceptors_.has_server();
  obs::RequestInfo info(req->request_id.value, req->operation,
                        req->interface_name);
  if (intercept) {
    info.set_incoming(std::move(req->service_contexts));
    interceptors_.receive_request(info);
  }
  auto reply = dispatch_request(*req);
  if (intercept) {
    if (!reply)
      info.set_failed(errc_name(reply.error().code));
    else if (reply->status != ReplyStatus::no_exception)
      info.set_failed(reply->exception_id);
    interceptors_.send_reply(info);
  }
  if (!req->response_expected) return {};
  if (!reply) {
    ReplyMessage err;
    err.request_id = req->request_id;
    err.status = ReplyStatus::system_exception;
    err.exception_id = errc_name(reply.error().code);
    err.payload = bytes_of(reply.error().message);
    err.service_contexts = info.take_outgoing();
    return err.encode();
  }
  reply->service_contexts = info.take_outgoing();
  return reply->encode();
}

Result<ReplyMessage> Orb::dispatch_request(const RequestMessage& req) {
  std::shared_ptr<Servant> servant = find_servant(req.object_key);
  if (servant == nullptr) {
    ReplyMessage reply;
    reply.request_id = req.request_id;
    reply.status = ReplyStatus::object_not_found;
    reply.payload = bytes_of("no object " + req.object_key.to_string());
    return reply;
  }
  // Type-check the call against the servant's actual interface (the
  // caller's view may be a base interface; both must resolve the op).
  auto op = repo_->find_operation(servant->interface_name(), req.operation);
  if (!op) return op.error();

  // Decode in/inout arguments; out params start as void placeholders.
  std::vector<Value> args;
  args.reserve(op->params.size());
  CdrReader argr(req.args);
  if (auto enc = argr.begin_encapsulation(); !enc.ok()) return enc.error();
  for (const auto& p : op->params) {
    if (p.direction == ParamDirection::out) {
      args.emplace_back();
      continue;
    }
    auto v = unmarshal_value(p.type, *repo_, argr);
    if (!v) return v.error();
    args.push_back(std::move(*v));
  }

  ServerRequest sreq(req.operation, std::move(args));
  if (auto r = servant->dispatch(sreq); !r.ok()) return r.error();

  ReplyMessage reply;
  reply.request_id = req.request_id;
  if (sreq.exception().has_value()) {
    const UserException& ex = *sreq.exception();
    // Only declared exceptions may cross the wire, as in CORBA.
    bool declared = false;
    for (const auto& raised : op->raises) declared |= (raised == ex.type_name);
    if (!declared)
      return Error{Errc::remote_exception,
                   req.operation + " raised undeclared " + ex.type_name};
    reply.status = ReplyStatus::user_exception;
    reply.exception_id = ex.type_name;
    CdrWriter w;
    w.begin_encapsulation();
    auto m = marshal_value(ex.payload,
                           idl::TypeRef::named(idl::TypeKind::tk_struct,
                                               ex.type_name),
                           *repo_, w);
    if (!m.ok()) return m.error();
    reply.payload = w.take();
    return reply;
  }

  // Marshal result then out/inout params.
  CdrWriter w;
  w.begin_encapsulation();
  if (auto m = marshal_value(sreq.result(), op->result, *repo_, w); !m.ok())
    return m.error();
  for (std::size_t i = 0; i < op->params.size(); ++i) {
    if (op->params[i].direction == ParamDirection::in) continue;
    if (auto m = marshal_value(sreq.args()[i], op->params[i].type, *repo_, w);
        !m.ok())
      return m.error();
  }
  reply.status = ReplyStatus::no_exception;
  reply.payload = w.take();
  return reply;
}

// ---------------------------------------------------------------------------
// Client path

void Orb::add_transport(const std::string& scheme,
                        std::shared_ptr<Transport> transport) {
  std::lock_guard lock(mutex_);
  transports_[scheme] = std::move(transport);
}

Result<Transport*> Orb::transport_for(const std::string& endpoint) {
  const auto colon = endpoint.find(':');
  if (colon == std::string::npos)
    return Error{Errc::invalid_argument, "bad endpoint " + endpoint};
  const std::string scheme = endpoint.substr(0, colon);
  std::lock_guard lock(mutex_);
  auto it = transports_.find(scheme);
  if (it == transports_.end())
    return Error{Errc::unsupported, "no transport for scheme " + scheme};
  return it->second.get();
}

Result<Bytes> Orb::marshal_request_args(const OperationDef& op,
                                        const std::vector<Value>& args) {
  if (args.size() != op.params.size())
    return Error{Errc::invalid_argument,
                 op.name + " expects " + std::to_string(op.params.size()) +
                     " arguments, got " + std::to_string(args.size())};
  CdrWriter w;
  w.begin_encapsulation();
  for (std::size_t i = 0; i < op.params.size(); ++i) {
    if (op.params[i].direction == ParamDirection::out) continue;
    if (auto r = marshal_value(args[i], op.params[i].type, *repo_, w); !r.ok())
      return r.error();
  }
  return w.take();
}

Result<InvokeOutcome> Orb::decode_reply(const OperationDef& op,
                                        const ReplyMessage& reply,
                                        std::vector<Value>& args) {
  switch (reply.status) {
    case ReplyStatus::system_exception:
      // The wire carries the errc name; recover the original category so
      // transport-class failures (a corrupted request the server could not
      // decode, a server-side timeout) stay retryable at the caller.
      return Error{errc_from_name(reply.exception_id),
                   "system exception " + reply.exception_id + ": " +
                       string_of(reply.payload)};
    case ReplyStatus::object_not_found:
      return Error{Errc::not_found, string_of(reply.payload)};
    case ReplyStatus::user_exception: {
      CdrReader r(reply.payload);
      if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
      auto v = unmarshal_value(idl::TypeRef::named(idl::TypeKind::tk_struct,
                                                   reply.exception_id),
                               *repo_, r);
      if (!v) return v.error();
      InvokeOutcome out;
      out.exception = UserException{reply.exception_id, std::move(*v)};
      return out;
    }
    case ReplyStatus::no_exception: {
      CdrReader r(reply.payload);
      if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
      InvokeOutcome out;
      auto result = unmarshal_value(op.result, *repo_, r);
      if (!result) return result.error();
      out.result = std::move(*result);
      for (std::size_t i = 0; i < op.params.size(); ++i) {
        if (op.params[i].direction == ParamDirection::in) continue;
        auto v = unmarshal_value(op.params[i].type, *repo_, r);
        if (!v) return v.error();
        args[i] = std::move(*v);
      }
      return out;
    }
  }
  return Error{Errc::corrupt_data, "bad reply status"};
}

Result<InvokeOutcome> Orb::invoke(const ObjectRef& target,
                                  const std::string& operation,
                                  std::vector<Value>& args,
                                  const InvokeOptions& opts) {
  if (target.is_nil())
    return Error{Errc::invalid_argument, "invocation on nil reference"};
  auto op = repo_->find_operation(target.interface_name, operation);
  if (!op) return op.error();
  auto marshaled = marshal_request_args(*op, args);
  if (!marshaled) return marshaled.error();

  RequestMessage req;
  req.request_id = RequestId{next_request_id_.fetch_add(1)};
  req.object_key = target.key;
  req.interface_name = target.interface_name;
  req.operation = operation;
  req.response_expected = !op->oneway;
  req.args = std::move(*marshaled);
  invocations_sent_->inc();

  const TimePoint started = clock_->now();
  // Collocation optimization: with the default `direct` policy, same-Orb
  // calls bypass the interceptor chain on both sides (the frame round trip
  // itself is kept -- marshalling semantics stay identical).
  const bool local = target.endpoint == endpoint_ || target.endpoint.empty();
  const bool run_chain =
      !local || collocation_policy_ == CollocationPolicy::through_frame;
  const bool intercept = run_chain && interceptors_.has_client();
  obs::RequestInfo info(req.request_id.value, operation, target.interface_name);
  if (intercept) {
    interceptors_.send_request(info);
    req.service_contexts = info.take_outgoing();
  }
  auto out = transmit_resilient(req, *op, target, args,
                                intercept ? &info : nullptr, run_chain, local,
                                opts);
  if (intercept) {
    if (!out)
      info.set_failed(errc_name(out.error().code));
    else if (out->exception.has_value())
      info.set_failed(out->exception->type_name);
    interceptors_.receive_reply(info);
  }
  invoke_us_->observe(static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, clock_->now() - started)));
  return out;
}

CircuitBreaker* Orb::breaker_for(const std::string& endpoint) {
  std::lock_guard lock(mutex_);
  if (!policies_.breaker.enabled) return nullptr;
  auto it = breakers_.find(endpoint);
  if (it == breakers_.end())
    it = breakers_
             .emplace(endpoint,
                      std::make_unique<CircuitBreaker>(policies_.breaker))
             .first;
  return it->second.get();
}

CircuitBreaker::State Orb::breaker_state(const std::string& endpoint) const {
  std::lock_guard lock(mutex_);
  auto it = breakers_.find(endpoint);
  return it == breakers_.end() ? CircuitBreaker::State::closed
                               : it->second->state();
}

void Orb::backoff_sleep(Duration d) {
  if (d <= 0) return;
  std::function<void(Duration)> fn;
  {
    std::lock_guard lock(mutex_);
    fn = sleep_fn_;
  }
  if (fn)
    fn(d);
  else
    std::this_thread::sleep_for(std::chrono::microseconds(d));
}

Result<InvokeOutcome> Orb::transmit_resilient(RequestMessage& req,
                                              const OperationDef& op,
                                              const ObjectRef& target,
                                              std::vector<Value>& args,
                                              obs::RequestInfo* info,
                                              bool run_chain, bool local,
                                              const InvokeOptions& opts) {
  // Local dispatch is deterministic: a retry cannot change the outcome, and
  // there is no endpoint to break on. The deadline still applies (trivially,
  // since the dispatch is synchronous).
  if (local) return transmit(req, op, target, args, info, run_chain);

  InvocationPolicies policies;
  {
    std::lock_guard lock(mutex_);
    policies = policies_;
  }
  const Duration deadline =
      opts.deadline > 0 ? opts.deadline : policies.deadline;
  const bool may_retry =
      opts.idempotent || policies.retry.retry_non_idempotent;
  const int max_attempts =
      may_retry ? std::max(1, policies.retry.max_attempts) : 1;
  CircuitBreaker* breaker = breaker_for(target.endpoint);
  const TimePoint started = clock_->now();

  Result<InvokeOutcome> out =
      Error{Errc::bad_state, "invocation never attempted"};
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (deadline > 0 && clock_->now() - started >= deadline) {
      deadline_exceeded_->inc();
      return Error{Errc::timeout,
                   "deadline exceeded invoking " + req.operation + " on " +
                       target.endpoint};
    }
    if (breaker != nullptr) {
      if (auto admitted = breaker->admit(clock_->now()); !admitted.ok()) {
        breaker_rejected_->inc();
        return Error{Errc::refused, admitted.error().message + " for " +
                                        target.endpoint};
      }
    }
    out = transmit(req, op, target, args, info, run_chain);
    if (out.ok()) {
      if (breaker != nullptr) breaker->on_success();
      return out;
    }
    const Errc code = out.error().code;
    if (errc_is_retryable(code)) {
      if (breaker != nullptr && breaker->on_failure(clock_->now())) {
        breaker_opened_->inc();
        CLC_LOG(warn, "orb") << "circuit opened for " << target.endpoint
                             << " after " << errc_name(code);
      }
    } else {
      // Model-level failure: the peer answered; nothing to retry or break.
      return out;
    }
    if (attempt == max_attempts) break;
    retries_->inc();
    Duration wait;
    {
      std::lock_guard lock(mutex_);
      wait = backoff_delay(policies.retry, attempt, rng_);
    }
    if (deadline > 0) {
      const Duration remaining = deadline - (clock_->now() - started);
      if (remaining <= 0) break;  // loop head reports deadline_exceeded
      wait = std::min(wait, remaining);
    }
    backoff_sleep(wait);
  }
  return out;
}

Result<InvokeOutcome> Orb::transmit(RequestMessage& req,
                                    const OperationDef& op,
                                    const ObjectRef& target,
                                    std::vector<Value>& args,
                                    obs::RequestInfo* info, bool run_chain) {
  Bytes reply_frame;
  const bool local = target.endpoint == endpoint_ || target.endpoint.empty();
  if (local) {
    local_dispatches_->inc();
    reply_frame = handle_frame_impl(req.encode(), run_chain);
  } else {
    auto transport = transport_for(target.endpoint);
    if (!transport) return transport.error();
    if (op.oneway) {
      if (auto r = (*transport)->send_oneway(target.endpoint, req.encode());
          !r.ok())
        return r.error();
      return InvokeOutcome{};
    }
    auto r = (*transport)->roundtrip(target.endpoint, req.encode());
    if (!r) return r.error();
    reply_frame = std::move(*r);
  }
  if (op.oneway) return InvokeOutcome{};

  CdrReader r(reply_frame);
  auto type = decode_frame_header(r);
  if (!type) return type.error();
  if (*type != MessageType::reply)
    return Error{Errc::corrupt_data, "expected reply frame"};
  auto reply = ReplyMessage::decode(r);
  if (!reply) return reply.error();
  if (info != nullptr) info->set_incoming(std::move(reply->service_contexts));
  return decode_reply(op, *reply, args);
}

Orb::Stats Orb::stats() const {
  Stats s;
  s.invocations_sent = invocations_sent_->value();
  s.invocations_served = invocations_served_->value();
  s.local_dispatches = local_dispatches_->value();
  return s;
}

void Orb::reset_stats() { metrics_->reset("orb."); }

Result<Value> Orb::call(const ObjectRef& target, const std::string& operation,
                        std::vector<Value> args, const InvokeOptions& opts) {
  auto out = invoke(target, operation, args, opts);
  if (!out) return out.error();
  if (out->exception.has_value())
    return Error{Errc::remote_exception, out->exception->type_name};
  return std::move(out->result);
}

Result<void> Orb::send(const ObjectRef& target, const std::string& operation,
                       std::vector<Value> args, const InvokeOptions& opts) {
  auto out = invoke(target, operation, args, opts);
  if (!out) return out.error();
  return {};
}

Result<void> Orb::ping(const std::string& endpoint) {
  if (endpoint == endpoint_) return {};
  auto transport = transport_for(endpoint);
  if (!transport) return transport.error();
  auto reply = (*transport)->roundtrip(endpoint, encode_control(MessageType::ping));
  if (!reply) return reply.error();
  CdrReader r(*reply);
  auto type = decode_frame_header(r);
  if (!type) return type.error();
  if (*type != MessageType::pong)
    return Error{Errc::corrupt_data, "expected pong"};
  return {};
}

}  // namespace clc::orb
