#include "orb/orb.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace clc::orb {

using idl::OperationDef;
using idl::ParamDirection;

namespace {
/// An endpoint whose credit window ramps (additively, one per hint-free
/// reply) past this is considered unpressured again: the window resets to
/// unlimited so steady-state pipelines pay no accounting.
constexpr std::uint32_t kFlowRecoveryLimit = 256;
/// Cap on the per-endpoint consecutive-failure streak: bounds the backoff
/// exponent contributed by endpoint memory (initial * multiplier^(cap-1)).
constexpr int kMaxFailureStreak = 8;
/// Failure-streak half-life: the streak halves per window elapsed since
/// the last recorded failure, so an endpoint nobody has called in a while
/// re-enters the backoff curve low instead of at its historical worst.
/// (Any success still resets the streak to zero instantly.)
constexpr Duration kStreakHalfLife = seconds(10);
/// Latency assumed for an endpoint the health tracker has never seen (µs):
/// unknown replicas rank behind a warmed sub-millisecond one but ahead of
/// anything the breaker or streak history is punishing.
constexpr double kUnknownEndpointLatencyUs = 1000.0;
/// Streak contribution to the health score saturates at 2^6.
constexpr int kMaxStreakPenaltyShift = 6;
}  // namespace

namespace detail {

/// One in-flight remote invocation: owns the encoded frame, the policy
/// snapshot and the retry state machine. Attempts complete via transport
/// callbacks, so a retry runs on whichever thread delivered the failure --
/// inline on the caller for the deterministic loopback, on the connection
/// reader for TCP. Keeps itself alive (shared_from_this) across the
/// asynchronous gap between submit and completion.
struct AsyncCall : std::enable_shared_from_this<AsyncCall> {
  Orb* orb;
  std::shared_ptr<PendingState> state;
  OperationDef op;
  // Stable homes for the strings RequestInfo references.
  std::string operation;
  std::string interface_name;
  std::string endpoint;
  bool run_chain = false;
  bool intercept = false;
  obs::RequestInfo info;
  Bytes frame;  // encoded once; every retry re-sends these bytes
  Orb::PolicySnapshot snap;
  Duration deadline = 0;
  int max_attempts = 1;
  int attempt = 1;
  bool holds_flow_slot = false;  // set under Orb::flow_mutex_
  CircuitBreaker* breaker = nullptr;
  TimePoint started = 0;         // resilience budget epoch
  TimePoint invoke_started = 0;  // latency histogram epoch
  Rng rng;  // per-call jitter: no shared locked rng on the hot path

  AsyncCall(Orb* o, std::shared_ptr<PendingState> s, OperationDef opdef,
            std::string op_name, std::string iface, std::string ep,
            std::uint64_t request_id)
      : orb(o),
        state(std::move(s)),
        op(std::move(opdef)),
        operation(std::move(op_name)),
        interface_name(std::move(iface)),
        endpoint(std::move(ep)),
        info(request_id, operation, interface_name),
        rng(0x0bbf ^ request_id) {}

  void start_attempt() {
    if (deadline > 0 && orb->clock_->now() - started >= deadline) {
      orb->deadline_exceeded_->inc();
      finish(Error{Errc::timeout, "deadline exceeded invoking " + operation +
                                      " on " + endpoint});
      return;
    }
    if (breaker != nullptr) {
      if (auto admitted = breaker->admit(orb->clock_->now()); !admitted.ok()) {
        orb->breaker_rejected_->inc();
        finish(Error{Errc::refused,
                     admitted.error().message + " for " + endpoint});
        return;
      }
    }
    auto transport = orb->transport_for(endpoint);
    if (!transport) {
      finish(transport.error());
      return;
    }
    if (op.oneway) {
      if (auto r = (*transport)->send_oneway(endpoint, frame); !r.ok()) {
        handle_failure(r.error());
      } else {
        if (breaker != nullptr) breaker->on_success();
        orb->note_endpoint_success(endpoint);
        finish(InvokeOutcome{});
      }
      return;
    }
    auto self = shared_from_this();
    (*transport)->submit(endpoint, frame, [self](Result<Bytes> r) {
      self->on_reply(std::move(r));
    });
  }

  void on_reply(Result<Bytes> r) {
    if (!r) {
      handle_failure(r.error());
      return;
    }
    auto out = decode_frame(*r);
    if (out.ok()) {
      if (breaker != nullptr) breaker->on_success();
      orb->note_endpoint_success(endpoint);
      finish(std::move(out));
      return;
    }
    handle_failure(out.error());
  }

  Result<InvokeOutcome> decode_frame(BytesView reply_frame) {
    CdrReader r(reply_frame);
    auto type = decode_frame_header(r);
    if (!type) return type.error();
    if (*type != MessageType::reply)
      return Error{Errc::corrupt_data, "expected reply frame"};
    auto reply = ReplyMessage::decode(r);
    if (!reply) return reply.error();
    // Backpressure: adopt a piggybacked credit hint before the contexts
    // move on; a successful hint-free reply instead ramps a narrowed
    // window back toward unlimited.
    if (auto credit = CreditContext::find(reply->service_contexts)) {
      orb->note_credit(endpoint, credit->window);
    } else if (reply->status == ReplyStatus::no_exception ||
               reply->status == ReplyStatus::user_exception) {
      orb->note_credit_absent(endpoint);
    }
    if (intercept) info.set_incoming(std::move(reply->service_contexts));
    // Before completion the args vector is owned by this machinery alone,
    // so out/inout values decode straight into their final home.
    return orb->decode_reply(op, *reply, state->args);
  }

  void handle_failure(const Error& e) {
    if (!errc_is_retryable(e.code)) {
      // Model-level failure: the peer answered; nothing to retry or break.
      finish(e);
      return;
    }
    // A BUSY reply is backpressure, not death: the server answered, it just
    // shed the call. It never counts as a breaker failure (shed != dead),
    // but it does feed the endpoint backoff memory below, so retries slow
    // down instead of re-hammering the overloaded peer.
    if (e.code != Errc::overloaded && breaker != nullptr &&
        breaker->on_failure(orb->clock_->now())) {
      orb->breaker_opened_->inc();
      CLC_LOG(warn, "orb") << "circuit opened for " << endpoint << " after "
                           << errc_name(e.code);
    }
    const int streak = orb->note_endpoint_failure(endpoint);
    if (attempt >= max_attempts) {
      finish(e);
      return;
    }
    orb->retries_->inc();
    // Backoff position is max(this call's attempt, the endpoint's failure
    // streak): a fresh invocation after a failed breaker half-open probe
    // resumes the backoff curve where the endpoint's history left it
    // instead of restarting from the base delay.
    Duration wait =
        backoff_delay(snap.policies.retry, std::max(attempt, streak), rng);
    if (deadline > 0) {
      const Duration remaining = deadline - (orb->clock_->now() - started);
      if (remaining <= 0) {
        finish(e);
        return;
      }
      wait = std::min(wait, remaining);
    }
    ++attempt;
    {
      std::lock_guard lock(state->mutex);
      state->attempts = attempt;
    }
    if (wait > 0) {
      if (snap.sleep_fn)
        snap.sleep_fn(wait);
      else
        std::this_thread::sleep_for(std::chrono::microseconds(wait));
    }
    start_attempt();
  }

  /// Publish the outcome: reply-side interceptors, latency histogram, then
  /// wake the PendingInvocation (and run its continuations).
  void finish(Result<InvokeOutcome> out) {
    if (holds_flow_slot) {
      // Release the endpoint's in-flight slot first: a continuation may
      // immediately issue the next pipelined call.
      holds_flow_slot = false;
      orb->flow_release(endpoint);
    }
    if (intercept) {
      if (!out)
        info.set_failed(errc_name(out.error().code));
      else if (out->exception.has_value())
        info.set_failed(out->exception->type_name);
      orb->interceptors_.receive_reply(info);
    }
    const Duration elapsed =
        std::max<std::int64_t>(0, orb->clock_->now() - invoke_started);
    // Feed the endpoint latency estimator (remote invocations only): hedge
    // delays and health-aware binding read it. Failures count too -- the
    // time to a definitive verdict is exactly what a hedging caller would
    // have waited, and a gray endpoint's inflated estimate is the signal.
    // A *fast* failure (connection refused in microseconds) is floored at
    // the unknown-endpoint fallback, so instant rejection can never score
    // healthier than an endpoint we have simply not tried yet -- the
    // failure streak must demote it, not be cancelled by a tiny EWMA.
    if (!endpoint.empty() && endpoint != orb->endpoint_) {
      const bool failed = !out.ok();
      const Duration floored =
          failed ? std::max<Duration>(
                       elapsed, static_cast<Duration>(kUnknownEndpointLatencyUs))
                 : elapsed;
      orb->health_.record(endpoint, floored);
    }
    orb->invoke_us_->observe(static_cast<std::uint64_t>(elapsed));
    {
      // Freeze the failover-observability fields before completion so a
      // continuation reading attempts()/final_endpoint() sees the totals.
      std::lock_guard lock(state->mutex);
      state->attempts = attempt;
      state->final_endpoint = endpoint;
    }
    state->complete(std::move(out));
  }
};

/// Joins a primary attempt and an optional speculative hedge into the one
/// PendingState the caller holds (DESIGN.md §17). The first *definitive*
/// outcome -- success, or a model-level error the peer actually answered
/// with -- wins and completes the outer state; the loser's eventual reply
/// is discarded on arrival. A leg that dies with a transport-class error
/// merely defers to the other leg; only when both legs are dead does the
/// join surface the primary's error. The hedge leg launches either when
/// the arm_timer fires (the primary has been silent past its estimated
/// p95) or immediately when the primary fails retryably first; either way
/// it passes through the hedge budget gate exactly once.
struct HedgeJoin : std::enable_shared_from_this<HedgeJoin> {
  enum class Hedge : std::uint8_t {
    not_launched,  // timer pending, budget not yet consulted
    launching,     // claimed by one thread; budget check in progress
    launched,      // speculative leg in flight
    declined,      // budget said no; primary is the only leg
    failed,        // hedge leg finished with a transport-class error
  };

  Orb* orb = nullptr;
  std::shared_ptr<PendingState> outer;
  std::string operation;
  InvokeOptions opts;
  HedgePolicy policy;
  ObjectRef hedge_target;
  std::vector<Value> hedge_args;  // pre-copied for the speculative leg

  std::mutex mutex;
  bool decided = false;       // outer completion claimed
  bool primary_failed = false;
  Hedge hedge_state = Hedge::not_launched;
  std::shared_ptr<PendingState> primary_leg;  // kept for error surfacing

  void watch(const std::shared_ptr<PendingState>& leg, bool is_hedge) {
    auto self = shared_from_this();
    PendingInvocation handle(leg);
    handle.then([self, leg, is_hedge](const Result<InvokeOutcome>&) {
      self->on_leg_done(leg, is_hedge);
    });
  }

  /// Timer callback: launch the hedge unless the race is already over.
  void fire() {
    {
      std::lock_guard lock(mutex);
      if (decided || hedge_state != Hedge::not_launched) return;
    }
    launch_hedge();
  }

  void launch_hedge() {
    {
      std::lock_guard lock(mutex);
      if (decided || hedge_state != Hedge::not_launched) return;
      hedge_state = Hedge::launching;
    }
    if (!orb->hedge_budget_allows(policy)) {
      std::unique_lock lock(mutex);
      hedge_state = Hedge::declined;
      if (primary_failed && !decided) {
        decided = true;
        auto p = primary_leg;
        lock.unlock();
        complete_from(p);
      }
      return;
    }
    orb->hedges_->inc();
    auto leg =
        orb->invoke_pending(hedge_target, operation, std::move(hedge_args),
                            opts);
    {
      std::lock_guard lock(mutex);
      hedge_state = Hedge::launched;
    }
    watch(leg, /*is_hedge=*/true);
  }

  void on_leg_done(const std::shared_ptr<PendingState>& leg, bool is_hedge) {
    bool is_definitive;
    {
      std::lock_guard leg_lock(leg->mutex);
      is_definitive = leg->outcome.ok() ||
                      !errc_is_retryable(leg->outcome.error().code);
    }
    std::unique_lock lock(mutex);
    if (decided) return;  // the loser: reply discarded
    if (is_definitive) {
      decided = true;
      lock.unlock();
      if (is_hedge) orb->hedge_wins_->inc();
      complete_from(leg);
      return;
    }
    // Transport-class failure: this leg is out of the race.
    if (is_hedge) {
      hedge_state = Hedge::failed;
      if (primary_failed) {
        decided = true;
        auto p = primary_leg;
        lock.unlock();
        complete_from(p);
      }
      return;
    }
    primary_failed = true;
    primary_leg = leg;
    switch (hedge_state) {
      case Hedge::not_launched:
        // Failure-triggered hedge: don't wait out the p95 timer when the
        // primary has already told us it is in trouble.
        lock.unlock();
        launch_hedge();
        return;
      case Hedge::launching:
      case Hedge::launched:
        return;  // the hedge leg will decide
      case Hedge::declined:
      case Hedge::failed:
        decided = true;
        lock.unlock();
        complete_from(leg);
        return;
    }
  }

  /// Publish one leg's outcome (and its out-args and failover
  /// observability) through the outer state. Called exactly once, by
  /// whichever path set `decided`.
  void complete_from(const std::shared_ptr<PendingState>& leg) {
    Result<InvokeOutcome> out{Error{Errc::bad_state, "hedge join"}};
    std::vector<Value> args;
    int attempts = 1;
    std::string final_endpoint;
    std::uint64_t request_id = 0;
    {
      std::lock_guard leg_lock(leg->mutex);
      out = std::move(leg->outcome);
      args = std::move(leg->args);
      attempts = leg->attempts;
      final_endpoint = leg->final_endpoint;
      request_id = leg->request_id;
    }
    {
      std::lock_guard outer_lock(outer->mutex);
      outer->args = std::move(args);
      outer->attempts = attempts;
      outer->final_endpoint = std::move(final_endpoint);
      outer->request_id = request_id;
    }
    outer->complete(std::move(out));
  }
};

}  // namespace detail

Orb::Orb(NodeId node_id, std::shared_ptr<idl::InterfaceRepository> repo,
         obs::MetricsRegistry* metrics)
    : node_id_(node_id),
      repo_(std::move(repo)),
      owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      invocations_sent_(&metrics_->counter("orb.invocations_sent")),
      invocations_async_(&metrics_->counter("orb.invocations_async")),
      invocations_served_(&metrics_->counter("orb.invocations_served")),
      local_dispatches_(&metrics_->counter("orb.local_dispatches")),
      retries_(&metrics_->counter("orb.retries")),
      deadline_exceeded_(&metrics_->counter("orb.deadline_exceeded")),
      breaker_opened_(&metrics_->counter("orb.breaker_opened")),
      breaker_rejected_(&metrics_->counter("orb.breaker_rejected")),
      server_shed_(&metrics_->counter("orb.server_shed")),
      backpressure_deferred_(&metrics_->counter("orb.backpressure_deferred")),
      credit_hints_(&metrics_->counter("orb.credit_hints")),
      hedges_(&metrics_->counter("orb.hedges")),
      hedge_wins_(&metrics_->counter("orb.hedge_wins")),
      inflight_gauge_(&metrics_->gauge("orb.inflight")),
      queue_depth_gauge_(&metrics_->gauge("orb.queue_depth")),
      invoke_us_(&metrics_->histogram("orb.invoke_us")) {
  interceptors_.set_error_counter(&metrics_->counter("orb.interceptor_errors"));
  // Base IDL every CORBA-LC peer shares.
  const char* kBaseIdl =
      "module clc {"
      "  interface Object { };"
      "  interface EventConsumer { oneway void push(in any event); };"
      "};";
  auto r = repo_->register_idl(kBaseIdl);
  (void)r;  // idempotent; conflicts impossible for the base IDL
}

// ---------------------------------------------------------------------------
// Object adapter

ObjectRef Orb::activate(std::shared_ptr<Servant> servant) {
  Uuid key;
  {
    std::lock_guard lock(rng_mutex_);
    key = Uuid::random(rng_);
  }
  return activate_with_key(std::move(servant), key);
}

ObjectRef Orb::activate_with_key(std::shared_ptr<Servant> servant, Uuid key) {
  ObjectRef ref;
  ref.node = node_id_;
  ref.key = key;
  ref.interface_name = servant->interface_name();
  ref.endpoint = endpoint_;
  ref.incarnation = incarnation_;
  std::unique_lock lock(servants_mutex_);
  servants_[key] = std::move(servant);
  return ref;
}

Result<void> Orb::deactivate(const Uuid& key) {
  std::unique_lock lock(servants_mutex_);
  if (servants_.erase(key) == 0)
    return Error{Errc::not_found, "no servant with key " + key.to_string()};
  return {};
}

void Orb::retire_object(const Uuid& key) {
  std::unique_lock lock(servants_mutex_);
  servants_.erase(key);
  retired_.insert(key);
}

std::size_t Orb::active_count() const {
  std::shared_lock lock(servants_mutex_);
  return servants_.size();
}

std::shared_ptr<Servant> Orb::find_servant(const Uuid& key) const {
  std::shared_lock lock(servants_mutex_);
  auto it = servants_.find(key);
  return it == servants_.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------------------
// Server path

Bytes Orb::handle_frame(BytesView frame) {
  return handle_frame_impl(frame, /*intercept_server=*/true);
}

Bytes Orb::handle_frame_impl(BytesView frame, bool intercept_server) {
  CdrReader r(frame);
  auto type = decode_frame_header(r);
  if (!type) {
    ReplyMessage err;
    err.status = ReplyStatus::system_exception;
    err.exception_id = errc_name(type.error().code);
    err.payload = bytes_of(type.error().message);
    return err.encode();
  }
  if (*type == MessageType::ping) return encode_control(MessageType::pong);
  if (*type != MessageType::request) return {};  // stray reply/pong: ignore

  auto req = RequestMessage::decode(r);
  if (!req) {
    ReplyMessage err;
    err.status = ReplyStatus::system_exception;
    err.exception_id = errc_name(req.error().code);
    err.payload = bytes_of(req.error().message);
    return err.encode();
  }
  invocations_served_->inc();

  // Admission control (DESIGN.md §16): gate before any dispatch work. A
  // shed call answers with a BUSY reply carrying Errc::overloaded (plus a
  // credit hint), skipping unmarshalling and the servant entirely.
  std::shared_ptr<AdmissionGate> gate;
  {
    std::shared_lock lock(policy_mutex_);
    gate = admission_gate_;
  }
  std::uint32_t credit = 0;
  if (gate != nullptr) {
    if (auto admitted = gate->admit(req->interface_name, req->operation);
        !admitted.ok()) {
      server_shed_->inc();
      if (!req->response_expected) return {};
      ReplyMessage busy;
      busy.request_id = req->request_id;
      busy.status = ReplyStatus::busy;
      busy.exception_id = errc_name(Errc::overloaded);
      busy.payload = bytes_of(admitted.error().message);
      if (const std::uint32_t w = gate->credit_hint(); w > 0)
        CreditContext{w, gate->queue_delay_us()}.attach(busy.service_contexts);
      return busy.encode();
    }
    credit = gate->credit_hint();
  }

  const bool intercept = intercept_server && interceptors_.has_server();
  obs::RequestInfo info(req->request_id.value, req->operation,
                        req->interface_name);
  if (intercept) {
    info.set_incoming(std::move(req->service_contexts));
    interceptors_.receive_request(info);
  }
  const TimePoint dispatch_started = clock_->now();
  auto reply = dispatch_request(*req);
  // Feed the admission controller's learned per-op cost model with the
  // observed service time (DESIGN.md §16/§17): the static cost table is
  // only the prior until real samples arrive.
  if (gate != nullptr)
    gate->record_service_time(
        req->interface_name, req->operation,
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, clock_->now() - dispatch_started)));
  if (intercept) {
    if (!reply)
      info.set_failed(errc_name(reply.error().code));
    else if (reply->status != ReplyStatus::no_exception)
      info.set_failed(reply->exception_id);
    interceptors_.send_reply(info);
  }
  if (!req->response_expected) return {};
  if (!reply) {
    ReplyMessage err;
    err.request_id = req->request_id;
    err.status = ReplyStatus::system_exception;
    err.exception_id = errc_name(reply.error().code);
    err.payload = bytes_of(reply.error().message);
    err.service_contexts = info.take_outgoing();
    if (credit > 0)
      CreditContext{credit, gate->queue_delay_us()}.attach(
          err.service_contexts);
    return err.encode();
  }
  reply->service_contexts = info.take_outgoing();
  // Piggyback the credit hint while the dispatch queue is pressured; an
  // unpressured server attaches nothing, keeping replies byte-identical to
  // the pre-credit protocol.
  if (credit > 0)
    CreditContext{credit, gate->queue_delay_us()}.attach(
        reply->service_contexts);
  return reply->encode();
}

Result<ReplyMessage> Orb::dispatch_request(const RequestMessage& req) {
  std::shared_ptr<Servant> servant = find_servant(req.object_key);
  if (servant == nullptr) {
    {
      // A retired object (killed dual-primary loser) answers *retryably*:
      // the caller's retry/rebind path re-resolves toward the surviving
      // copy instead of treating the reference as permanently gone.
      std::shared_lock lock(servants_mutex_);
      if (retired_.count(req.object_key) != 0)
        return Error{Errc::unreachable,
                     "object retired " + req.object_key.to_string()};
    }
    ReplyMessage reply;
    reply.request_id = req.request_id;
    reply.status = ReplyStatus::object_not_found;
    reply.payload = bytes_of("no object " + req.object_key.to_string());
    return reply;
  }
  // Type-check the call against the servant's actual interface (the
  // caller's view may be a base interface; both must resolve the op).
  auto op = repo_->find_operation(servant->interface_name(), req.operation);
  if (!op) return op.error();

  // Decode in/inout arguments; out params start as void placeholders.
  std::vector<Value> args;
  args.reserve(op->params.size());
  CdrReader argr(req.args);
  if (auto enc = argr.begin_encapsulation(); !enc.ok()) return enc.error();
  for (const auto& p : op->params) {
    if (p.direction == ParamDirection::out) {
      args.emplace_back();
      continue;
    }
    auto v = unmarshal_value(p.type, *repo_, argr);
    if (!v) return v.error();
    args.push_back(std::move(*v));
  }

  ServerRequest sreq(req.operation, std::move(args));
  if (auto r = servant->dispatch(sreq); !r.ok()) return r.error();

  ReplyMessage reply;
  reply.request_id = req.request_id;
  if (sreq.exception().has_value()) {
    const UserException& ex = *sreq.exception();
    // Only declared exceptions may cross the wire, as in CORBA.
    bool declared = false;
    for (const auto& raised : op->raises) declared |= (raised == ex.type_name);
    if (!declared)
      return Error{Errc::remote_exception,
                   req.operation + " raised undeclared " + ex.type_name};
    reply.status = ReplyStatus::user_exception;
    reply.exception_id = ex.type_name;
    CdrWriter w;
    w.begin_encapsulation();
    auto m = marshal_value(ex.payload,
                           idl::TypeRef::named(idl::TypeKind::tk_struct,
                                               ex.type_name),
                           *repo_, w);
    if (!m.ok()) return m.error();
    reply.payload = w.take();
    return reply;
  }

  // Marshal result then out/inout params.
  CdrWriter w;
  w.begin_encapsulation();
  if (auto m = marshal_value(sreq.result(), op->result, *repo_, w); !m.ok())
    return m.error();
  for (std::size_t i = 0; i < op->params.size(); ++i) {
    if (op->params[i].direction == ParamDirection::in) continue;
    if (auto m = marshal_value(sreq.args()[i], op->params[i].type, *repo_, w);
        !m.ok())
      return m.error();
  }
  reply.status = ReplyStatus::no_exception;
  reply.payload = w.take();
  return reply;
}

// ---------------------------------------------------------------------------
// Client path

void Orb::add_transport(const std::string& scheme,
                        std::shared_ptr<Transport> transport) {
  std::unique_lock lock(transports_mutex_);
  transports_[scheme] = std::move(transport);
}

Result<Transport*> Orb::transport_for(const std::string& endpoint) {
  const auto colon = endpoint.find(':');
  if (colon == std::string::npos)
    return Error{Errc::invalid_argument, "bad endpoint " + endpoint};
  const std::string scheme = endpoint.substr(0, colon);
  std::shared_lock lock(transports_mutex_);
  auto it = transports_.find(scheme);
  if (it == transports_.end())
    return Error{Errc::unsupported, "no transport for scheme " + scheme};
  return it->second.get();
}

Result<Bytes> Orb::marshal_request_args(const OperationDef& op,
                                        const std::vector<Value>& args) {
  if (args.size() != op.params.size())
    return Error{Errc::invalid_argument,
                 op.name + " expects " + std::to_string(op.params.size()) +
                     " arguments, got " + std::to_string(args.size())};
  CdrWriter w;
  w.begin_encapsulation();
  for (std::size_t i = 0; i < op.params.size(); ++i) {
    if (op.params[i].direction == ParamDirection::out) continue;
    if (auto r = marshal_value(args[i], op.params[i].type, *repo_, w); !r.ok())
      return r.error();
  }
  return w.take();
}

Result<InvokeOutcome> Orb::decode_reply(const OperationDef& op,
                                        const ReplyMessage& reply,
                                        std::vector<Value>& args) {
  switch (reply.status) {
    case ReplyStatus::system_exception:
      // The wire carries the errc name; recover the original category so
      // transport-class failures (a corrupted request the server could not
      // decode, a server-side timeout) stay retryable at the caller.
      return Error{errc_from_name(reply.exception_id),
                   "system exception " + reply.exception_id + ": " +
                       string_of(reply.payload)};
    case ReplyStatus::object_not_found:
      return Error{Errc::not_found, string_of(reply.payload)};
    case ReplyStatus::busy:
      // Admission control shed the call: retryable, and deliberately not a
      // breaker failure at the caller -- the server is alive.
      return Error{Errc::overloaded, string_of(reply.payload)};
    case ReplyStatus::user_exception: {
      CdrReader r(reply.payload);
      if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
      auto v = unmarshal_value(idl::TypeRef::named(idl::TypeKind::tk_struct,
                                                   reply.exception_id),
                               *repo_, r);
      if (!v) return v.error();
      InvokeOutcome out;
      out.exception = UserException{reply.exception_id, std::move(*v)};
      return out;
    }
    case ReplyStatus::no_exception: {
      CdrReader r(reply.payload);
      if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
      InvokeOutcome out;
      auto result = unmarshal_value(op.result, *repo_, r);
      if (!result) return result.error();
      out.result = std::move(*result);
      for (std::size_t i = 0; i < op.params.size(); ++i) {
        if (op.params[i].direction == ParamDirection::in) continue;
        auto v = unmarshal_value(op.params[i].type, *repo_, r);
        if (!v) return v.error();
        args[i] = std::move(*v);
      }
      return out;
    }
  }
  return Error{Errc::corrupt_data, "bad reply status"};
}

Orb::PolicySnapshot Orb::snapshot_policies() const {
  std::shared_lock lock(policy_mutex_);
  return PolicySnapshot{policies_, sleep_fn_};
}

CircuitBreaker* Orb::breaker_for(const std::string& endpoint,
                                 const BreakerPolicy& policy) {
  if (!policy.enabled) return nullptr;
  std::lock_guard lock(breaker_mutex_);
  auto it = breakers_.find(endpoint);
  if (it == breakers_.end())
    it = breakers_
             .emplace(endpoint, std::make_unique<CircuitBreaker>(policy))
             .first;
  return it->second.get();
}

CircuitBreaker::State Orb::breaker_state(const std::string& endpoint) const {
  std::lock_guard lock(breaker_mutex_);
  auto it = breakers_.find(endpoint);
  return it == breakers_.end() ? CircuitBreaker::State::closed
                               : it->second->state();
}

// ---------------------------------------------------------------------------
// Credit-window flow control (client side of the backpressure loop)

bool Orb::flow_acquire(const std::string& endpoint,
                       const std::shared_ptr<detail::AsyncCall>& call) {
  std::lock_guard lock(flow_mutex_);
  auto& f = flows_[endpoint];
  if (f.limit == 0 || f.inflight < f.limit) {
    ++f.inflight;
    inflight_gauge_->add(1);
    call->holds_flow_slot = true;
    return true;
  }
  f.deferred.push_back(call);
  queue_depth_gauge_->add(1);
  backpressure_deferred_->inc();
  return false;
}

void Orb::flow_release(const std::string& endpoint) {
  {
    std::lock_guard lock(flow_mutex_);
    auto it = flows_.find(endpoint);
    if (it == flows_.end()) return;
    if (it->second.inflight > 0) {
      --it->second.inflight;
      inflight_gauge_->add(-1);
    }
  }
  flow_drain(endpoint);
}

void Orb::flow_drain(const std::string& endpoint) {
  {
    std::lock_guard lock(flow_mutex_);
    auto it = flows_.find(endpoint);
    if (it == flows_.end() || it->second.draining) return;
    it->second.draining = true;
  }
  // Iterative drain: a granted call may complete inline (loopback) and
  // re-enter flow_release, which sees `draining` set and returns after the
  // decrement -- this loop picks the freed slot up on its next pass, so
  // chains of fast completions never recurse.
  for (;;) {
    std::shared_ptr<detail::AsyncCall> next;
    {
      std::lock_guard lock(flow_mutex_);
      auto& f = flows_[endpoint];
      if (f.deferred.empty() || (f.limit != 0 && f.inflight >= f.limit)) {
        f.draining = false;
        return;
      }
      next = std::move(f.deferred.front());
      f.deferred.pop_front();
      queue_depth_gauge_->add(-1);
      ++f.inflight;
      inflight_gauge_->add(1);
      next->holds_flow_slot = true;
    }
    // start_attempt re-checks the deadline, so a call that expired while
    // parked finishes with timeout here rather than hitting the wire.
    next->start_attempt();
  }
}

void Orb::note_credit(const std::string& endpoint, std::uint32_t window) {
  credit_hints_->inc();
  {
    std::lock_guard lock(flow_mutex_);
    flows_[endpoint].limit = std::max<std::uint32_t>(1, window);
  }
  flow_drain(endpoint);  // the window may have widened
}

void Orb::note_credit_absent(const std::string& endpoint) {
  {
    std::lock_guard lock(flow_mutex_);
    auto it = flows_.find(endpoint);
    if (it == flows_.end() || it->second.limit == 0) return;
    // Additive ramp back toward unlimited once the server stops hinting.
    if (++it->second.limit >= kFlowRecoveryLimit) it->second.limit = 0;
  }
  flow_drain(endpoint);
}

std::uint32_t Orb::endpoint_credit_window(const std::string& endpoint) const {
  std::lock_guard lock(flow_mutex_);
  auto it = flows_.find(endpoint);
  return it == flows_.end() ? 0 : it->second.limit;
}

std::uint32_t Orb::endpoint_inflight(const std::string& endpoint) const {
  std::lock_guard lock(flow_mutex_);
  auto it = flows_.find(endpoint);
  return it == flows_.end() ? 0 : it->second.inflight;
}

std::size_t Orb::endpoint_deferred(const std::string& endpoint) const {
  std::lock_guard lock(flow_mutex_);
  auto it = flows_.find(endpoint);
  return it == flows_.end() ? 0 : it->second.deferred.size();
}

// ---------------------------------------------------------------------------
// Endpoint backoff memory (survives breaker half-open probes)

int Orb::decayed_streak(const FailureStreak& s, TimePoint now) noexcept {
  if (s.streak <= 0) return 0;
  const Duration elapsed = now - s.last_failure;
  if (elapsed < kStreakHalfLife) return s.streak;
  const std::int64_t half_lives = elapsed / kStreakHalfLife;
  if (half_lives >= 31) return 0;
  return s.streak >> half_lives;
}

int Orb::note_endpoint_failure(const std::string& endpoint) {
  const TimePoint now = clock_->now();
  std::lock_guard lock(breaker_mutex_);
  FailureStreak& s = failure_streaks_[endpoint];
  s.streak = decayed_streak(s, now);  // fold in idle-time decay first
  if (s.streak < kMaxFailureStreak) ++s.streak;
  s.last_failure = now;
  return s.streak;
}

void Orb::note_endpoint_success(const std::string& endpoint) {
  std::lock_guard lock(breaker_mutex_);
  auto it = failure_streaks_.find(endpoint);
  if (it != failure_streaks_.end()) it->second = FailureStreak{};
}

int Orb::endpoint_failure_streak(const std::string& endpoint) const {
  const TimePoint now = clock_->now();
  std::lock_guard lock(breaker_mutex_);
  auto it = failure_streaks_.find(endpoint);
  return it == failure_streaks_.end() ? 0 : decayed_streak(it->second, now);
}

// ---------------------------------------------------------------------------
// Endpoint health (DESIGN.md §17)

double Orb::endpoint_health_score(const std::string& endpoint) const {
  if (endpoint.empty() || endpoint == endpoint_) return 0.0;  // collocated
  double score = health_.latency_ewma(endpoint, kUnknownEndpointLatencyUs);
  switch (breaker_state(endpoint)) {
    case CircuitBreaker::State::closed:
      break;
    case CircuitBreaker::State::half_open:
      score *= 8.0;
      break;
    case CircuitBreaker::State::open:
      score *= 64.0;
      break;
  }
  // A narrowed credit window means the server told us it is pressured.
  if (const std::uint32_t w = endpoint_credit_window(endpoint); w > 0)
    score *= 1.0 + 8.0 / static_cast<double>(w);
  const int streak =
      std::min(endpoint_failure_streak(endpoint), kMaxStreakPenaltyShift);
  score *= static_cast<double>(1 << streak);
  return score;
}

void Orb::rank_by_health(std::vector<ObjectRef>& replicas) const {
  std::vector<std::pair<double, std::size_t>> keyed;
  keyed.reserve(replicas.size());
  for (std::size_t i = 0; i < replicas.size(); ++i)
    keyed.emplace_back(endpoint_health_score(replicas[i].endpoint), i);
  // Stable on the original index: equal scores keep caller priority order.
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ObjectRef> ranked;
  ranked.reserve(replicas.size());
  for (const auto& [score, idx] : keyed) ranked.push_back(std::move(replicas[idx]));
  replicas = std::move(ranked);
}

std::shared_ptr<detail::PendingState> Orb::invoke_pending(
    const ObjectRef& target, const std::string& operation,
    std::vector<Value> args, const InvokeOptions& opts) {
  auto state = std::make_shared<detail::PendingState>();
  state->args = std::move(args);
  if (target.is_nil()) {
    state->complete(Error{Errc::invalid_argument,
                          "invocation on nil reference"});
    return state;
  }
  auto op = repo_->find_operation(target.interface_name, operation);
  if (!op) {
    state->complete(op.error());
    return state;
  }
  auto marshaled = marshal_request_args(*op, state->args);
  if (!marshaled) {
    state->complete(marshaled.error());
    return state;
  }

  RequestMessage req;
  req.request_id = RequestId{next_request_id_.fetch_add(1)};
  state->request_id = req.request_id.value;
  req.object_key = target.key;
  req.interface_name = target.interface_name;
  req.operation = operation;
  req.response_expected = !op->oneway;
  req.args = std::move(*marshaled);
  invocations_sent_->inc();

  // Collocation optimization: with the default `direct` policy, same-Orb
  // calls bypass the interceptor chain on both sides (the frame round trip
  // itself is kept -- marshalling semantics stay identical).
  const bool local = target.endpoint == endpoint_ || target.endpoint.empty();
  const bool run_chain =
      !local || collocation_policy_ == CollocationPolicy::through_frame;

  auto call = std::make_shared<detail::AsyncCall>(
      this, state, std::move(*op), operation, target.interface_name,
      target.endpoint, req.request_id.value);
  call->run_chain = run_chain;
  call->intercept = run_chain && interceptors_.has_client();
  call->invoke_started = clock_->now();
  if (call->intercept) {
    interceptors_.send_request(call->info);
    req.service_contexts = call->info.take_outgoing();
  }
  // Encode ONCE, after the interceptor contexts are attached; the local
  // path, the first attempt and every retry all send these same bytes.
  call->frame = req.encode();

  if (local) {
    // Collocated fast path: dispatch synchronously on the caller thread,
    // completing the pending state inline (no queues, no extra copies).
    local_dispatches_->inc();
    Bytes reply_frame = handle_frame_impl(call->frame, run_chain);
    if (call->op.oneway)
      call->finish(InvokeOutcome{});
    else
      call->finish(call->decode_frame(reply_frame));
    return state;
  }

  call->snap = snapshot_policies();  // ONE lock acquisition per invocation
  call->deadline =
      opts.deadline > 0 ? opts.deadline : call->snap.policies.deadline;
  const bool may_retry =
      opts.idempotent || call->snap.policies.retry.retry_non_idempotent;
  call->max_attempts =
      may_retry ? std::max(1, call->snap.policies.retry.max_attempts) : 1;
  call->breaker = breaker_for(target.endpoint, call->snap.policies.breaker);
  call->started = clock_->now();
  // Credit-window flow control: either an in-flight slot is free now, or
  // the call parks in the endpoint's deferred queue and a completion will
  // start it. Deadlines keep counting while parked.
  if (flow_acquire(target.endpoint, call)) call->start_attempt();
  return state;
}

Result<InvokeOutcome> Orb::invoke(const ObjectRef& target,
                                  const std::string& operation,
                                  std::vector<Value>& args,
                                  const InvokeOptions& opts) {
  auto state = invoke_pending(target, operation, std::move(args), opts);
  {
    std::unique_lock lock(state->mutex);
    state->cv.wait(lock, [&] { return state->done; });
  }
  args = std::move(state->args);
  return std::move(state->outcome);
}

PendingInvocation Orb::invoke_async(const ObjectRef& target,
                                    const std::string& operation,
                                    std::vector<Value> args,
                                    const InvokeOptions& opts) {
  invocations_async_->inc();
  return PendingInvocation(
      invoke_pending(target, operation, std::move(args), opts));
}

bool Orb::hedge_budget_allows(const HedgePolicy& policy) {
  const std::uint64_t eligible =
      hedge_eligible_.load(std::memory_order_relaxed);
  std::uint64_t issued = hedges_issued_.load(std::memory_order_relaxed);
  for (;;) {
    const bool allowed =
        issued < policy.burst ||
        static_cast<double>(issued + 1) <=
            policy.budget * static_cast<double>(eligible);
    if (!allowed) return false;
    if (hedges_issued_.compare_exchange_weak(issued, issued + 1,
                                             std::memory_order_relaxed))
      return true;
    // Raced with another hedge; re-evaluate against the updated count.
  }
}

void Orb::arm_timer(Duration delay, std::function<void()> fn) {
  TimerFn timer;
  {
    std::shared_lock lock(policy_mutex_);
    timer = timer_fn_;
  }
  if (timer) {
    timer(delay, std::move(fn));
    return;
  }
  std::thread([delay, fn = std::move(fn)] {
    if (delay > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    fn();
  }).detach();
}

PendingInvocation Orb::invoke_hedged(std::vector<ObjectRef> replicas,
                                     const std::string& operation,
                                     std::vector<Value> args,
                                     const InvokeOptions& opts) {
  invocations_async_->inc();
  if (replicas.empty()) {
    auto outer = std::make_shared<detail::PendingState>();
    outer->complete(
        Error{Errc::invalid_argument, "hedged invocation with no replicas"});
    return PendingInvocation(outer);
  }
  rank_by_health(replicas);
  HedgePolicy policy;
  {
    std::shared_lock lock(policy_mutex_);
    policy = policies_.hedge;
  }
  const ObjectRef& primary = replicas.front();
  const bool local = primary.endpoint == endpoint_ || primary.endpoint.empty();
  // Hedging needs the policy on, an idempotent call (a lost reply is
  // indistinguishable from a lost request, exactly as for retry), a spare
  // replica, and a remote primary (a collocated dispatch completes
  // synchronously -- there is no tail to cut).
  if (!policy.enabled || !opts.idempotent || replicas.size() < 2 || local)
    return PendingInvocation(
        invoke_pending(primary, operation, std::move(args), opts));
  hedge_eligible_.fetch_add(1, std::memory_order_relaxed);

  auto join = std::make_shared<detail::HedgeJoin>();
  join->orb = this;
  join->outer = std::make_shared<detail::PendingState>();
  join->operation = operation;
  join->opts = opts;
  join->policy = policy;
  join->hedge_target = replicas[1];
  join->hedge_args = args;  // copy before the primary leg consumes them

  // Hedge delay: the primary endpoint's estimated p95, clamped to the
  // policy window; a cold tracker falls back to the policy default.
  Duration delay = health_.p95(primary.endpoint);
  if (delay <= 0) delay = policy.default_delay;
  delay = std::clamp(delay, policy.min_delay, policy.max_delay);

  join->watch(invoke_pending(primary, operation, std::move(args), opts),
              /*is_hedge=*/false);
  bool race_over;
  {
    std::lock_guard lock(join->mutex);
    race_over = join->decided || join->hedge_state !=
                                     detail::HedgeJoin::Hedge::not_launched;
  }
  if (!race_over) arm_timer(delay, [join] { join->fire(); });
  return PendingInvocation(join->outer);
}

Result<Value> Orb::call_hedged(std::vector<ObjectRef> replicas,
                               const std::string& operation,
                               std::vector<Value> args,
                               const InvokeOptions& opts) {
  auto pending =
      invoke_hedged(std::move(replicas), operation, std::move(args), opts);
  auto out = pending.take();
  if (!out) return out.error();
  if (out->exception.has_value())
    return Error{Errc::remote_exception, out->exception->type_name};
  return std::move(out->result);
}

Orb::Stats Orb::stats() const {
  Stats s;
  s.invocations_sent = invocations_sent_->value();
  s.invocations_served = invocations_served_->value();
  s.local_dispatches = local_dispatches_->value();
  return s;
}

void Orb::reset_stats() { metrics_->reset("orb."); }

Result<Value> Orb::call(const ObjectRef& target, const std::string& operation,
                        std::vector<Value> args, const InvokeOptions& opts) {
  auto out = invoke(target, operation, args, opts);
  if (!out) return out.error();
  if (out->exception.has_value())
    return Error{Errc::remote_exception, out->exception->type_name};
  return std::move(out->result);
}

Result<void> Orb::send(const ObjectRef& target, const std::string& operation,
                       std::vector<Value> args, const InvokeOptions& opts) {
  auto out = invoke(target, operation, args, opts);
  if (!out) return out.error();
  return {};
}

Result<void> Orb::ping(const std::string& endpoint) {
  if (endpoint == endpoint_) return {};
  auto transport = transport_for(endpoint);
  if (!transport) return transport.error();
  auto reply =
      (*transport)->roundtrip(endpoint, encode_control(MessageType::ping));
  if (!reply) return reply.error();
  CdrReader r(*reply);
  auto type = decode_frame_header(r);
  if (!type) return type.error();
  if (*type != MessageType::pong)
    return Error{Errc::corrupt_data, "expected pong"};
  return {};
}

}  // namespace clc::orb
