#include "orb/health.hpp"

#include <cmath>

namespace clc::orb {

void EndpointHealthTracker::record(const std::string& endpoint,
                                   Duration latency) {
  if (latency < 0) latency = 0;
  const double sample = static_cast<double>(latency);
  std::lock_guard lock(mutex_);
  State& s = endpoints_[endpoint];
  if (s.samples == 0) {
    // First sample seeds the estimator (RFC 6298 initialization shape).
    s.ewma = sample;
    s.dev = sample / 2.0;
  } else {
    const double err = std::abs(sample - s.ewma);
    s.dev = (1.0 - kBeta) * s.dev + kBeta * err;
    s.ewma = (1.0 - kAlpha) * s.ewma + kAlpha * sample;
  }
  ++s.samples;
}

double EndpointHealthTracker::latency_ewma(const std::string& endpoint,
                                           double fallback_us) const {
  std::lock_guard lock(mutex_);
  auto it = endpoints_.find(endpoint);
  return it == endpoints_.end() ? fallback_us : it->second.ewma;
}

Duration EndpointHealthTracker::p95(const std::string& endpoint) const {
  std::lock_guard lock(mutex_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) return 0;
  return static_cast<Duration>(it->second.ewma + 2.0 * it->second.dev);
}

std::uint64_t EndpointHealthTracker::samples(
    const std::string& endpoint) const {
  std::lock_guard lock(mutex_);
  auto it = endpoints_.find(endpoint);
  return it == endpoints_.end() ? 0 : it->second.samples;
}

EndpointHealthTracker::Snapshot EndpointHealthTracker::snapshot(
    const std::string& endpoint) const {
  std::lock_guard lock(mutex_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) return {};
  return Snapshot{it->second.ewma, it->second.dev, it->second.samples};
}

void EndpointHealthTracker::forget(const std::string& endpoint) {
  std::lock_guard lock(mutex_);
  endpoints_.erase(endpoint);
}

void EndpointHealthTracker::clear() {
  std::lock_guard lock(mutex_);
  endpoints_.clear();
}

}  // namespace clc::orb
