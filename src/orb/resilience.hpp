// Client-side invocation resilience: deadlines, retry, circuit breaking.
//
// The policies follow the classic supervision patterns (CORBA FT-style
// request retry, Erlang/OTP-style failure isolation): a per-invocation
// deadline bounds the total time spent including retries; retry re-sends
// transport-class failures with exponential backoff plus jitter, and is
// restricted to invocations the caller marked idempotent (a lost *reply*
// is indistinguishable from a lost request, so blind re-send of
// non-idempotent work would double-execute it); a per-endpoint circuit
// breaker stops hammering a peer that keeps failing, failing fast with
// Errc::refused until a cool-down passes and a half-open probe succeeds.
//
// The Orb owns one CircuitBreaker per remote endpoint and consults the
// policies inside invoke(); Node wires its resolve/query/heartbeat traffic
// through them.
#pragma once

#include <cstdint>
#include <mutex>

#include "util/clock.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace clc::orb {

/// Transport-class failures that a retry can plausibly cure. Model errors
/// (not_found, invalid_argument, user exceptions, ...) never retry.
/// Errc::overloaded is retryable -- the server is alive, it shed the call
/// under admission control -- but it is deliberately *not* a breaker
/// failure (see Orb's retry machine): shed != dead.
[[nodiscard]] constexpr bool errc_is_retryable(Errc c) noexcept {
  return c == Errc::timeout || c == Errc::unreachable ||
         c == Errc::io_error || c == Errc::corrupt_data ||
         c == Errc::overloaded;
}

struct RetryPolicy {
  int max_attempts = 1;                        // 1 = no retry
  Duration initial_backoff = milliseconds(1);  // doubles each attempt
  double backoff_multiplier = 2.0;
  double jitter = 0.2;             // backoff scaled by 1 ± jitter
  bool retry_non_idempotent = false;
};

struct BreakerPolicy {
  bool enabled = false;
  int failure_threshold = 5;            // consecutive failures to open
  Duration open_duration = seconds(1);  // cool-down before a probe
};

/// Hedged requests (DESIGN.md §17): for an *idempotent* call with a known
/// replica set, a speculative second attempt goes to the next-best replica
/// once the primary has been silent past its estimated p95 latency; the
/// first definitive reply wins and the loser's reply is discarded. Purely
/// client-side — the wire carries two ordinary requests, byte-identical to
/// unhedged traffic (no new service contexts).
struct HedgePolicy {
  bool enabled = false;
  /// Hedge delay = clamp(primary endpoint p95, min_delay, max_delay).
  Duration min_delay = milliseconds(1);
  Duration max_delay = seconds(1);
  /// Delay until the latency tracker has samples for the primary.
  Duration default_delay = milliseconds(10);
  /// Extra-load cap: hedges may be at most this fraction of hedge-eligible
  /// calls ("the tail at scale" budget; ~5%).
  double budget = 0.05;
  /// Hedges always allowed below this absolute count, so the budget ratio
  /// has a denominator to converge on at startup.
  std::uint32_t burst = 16;
};

struct InvocationPolicies {
  Duration deadline = 0;  // total budget across attempts; 0 = unbounded
  RetryPolicy retry;
  BreakerPolicy breaker;
  HedgePolicy hedge;
};

/// Per-call overrides, passed alongside invoke()/call()/send().
struct InvokeOptions {
  bool idempotent = false;  // opt into retry (policy gates the rest)
  Duration deadline = 0;    // 0 = use the policy deadline
};

/// Per-endpoint failure gate. Closed passes everything; `failure_threshold`
/// consecutive transport failures open it; open rejects instantly until
/// `open_duration` elapses, then one half-open probe decides: success
/// closes, failure re-opens.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { closed = 0, open = 1, half_open = 2 };

  explicit CircuitBreaker(BreakerPolicy policy) : policy_(policy) {}

  /// Gate a call attempt. Errc::refused when the circuit is open.
  Result<void> admit(TimePoint now);
  /// Report the outcome of an admitted call (transport verdict only).
  void on_success();
  /// Returns true when this failure flipped the breaker to open.
  bool on_failure(TimePoint now);

  [[nodiscard]] State state() const;

 private:
  BreakerPolicy policy_;
  mutable std::mutex mutex_;
  State state_ = State::closed;
  int consecutive_failures_ = 0;
  TimePoint opened_at_ = 0;
};

const char* breaker_state_name(CircuitBreaker::State s) noexcept;

/// Exponential backoff with jitter: initial * multiplier^(attempt-1),
/// scaled by a deterministic draw in [1-jitter, 1+jitter].
[[nodiscard]] Duration backoff_delay(const RetryPolicy& policy, int attempt,
                                     Rng& rng) noexcept;

}  // namespace clc::orb
