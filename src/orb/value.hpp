// Dynamic typed values (the DII/DSI data model).
//
// CORBA-LC invokes operations dynamically: arguments and results travel as
// `Value`s whose wire form is dictated by the IDL type model in the
// Interface Repository. A Value is deliberately permissive in memory
// (a tagged union) -- type checking happens when marshaling against a
// TypeRef, mirroring how a CORBA Any pairs a TypeCode with data.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "idl/repository.hpp"
#include "orb/cdr.hpp"
#include "orb/object_ref.hpp"

namespace clc::orb {

class Value;

/// Ordered named fields of a struct/exception value.
struct StructValue {
  std::string type_name;  // scoped IDL name (informative; wire uses TypeRef)
  std::vector<std::pair<std::string, Value>> fields;

  [[nodiscard]] const Value* field(const std::string& name) const;
};

/// An enum value: ordinal within its EnumDef.
struct EnumValue {
  std::string type_name;
  std::uint32_t index = 0;
};

/// An `any`: a self-describing value (type + payload).
struct AnyValue {
  idl::TypeRef type;
  std::shared_ptr<Value> value;  // shared_ptr to break recursion
};

class Value {
 public:
  using Sequence = std::vector<Value>;
  using Storage =
      std::variant<std::monostate, bool, std::uint8_t, std::int16_t,
                   std::uint16_t, std::int32_t, std::uint32_t, std::int64_t,
                   std::uint64_t, float, double, std::string, Sequence,
                   StructValue, EnumValue, ObjectRef, AnyValue, Bytes>;

  Value() = default;
  template <typename T,
            typename = std::enable_if_t<std::is_constructible_v<Storage, T&&>>>
  Value(T&& v) : storage_(std::forward<T>(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* s) : storage_(std::string(s)) {}  // NOLINT

  [[nodiscard]] bool is_void() const noexcept {
    return std::holds_alternative<std::monostate>(storage_);
  }
  template <typename T>
  [[nodiscard]] bool is() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  template <typename T>
  [[nodiscard]] const T& as() const {
    return std::get<T>(storage_);
  }
  template <typename T>
  [[nodiscard]] T& as() {
    return std::get<T>(storage_);
  }
  template <typename T>
  [[nodiscard]] const T* get_if() const noexcept {
    return std::get_if<T>(&storage_);
  }

  [[nodiscard]] const Storage& storage() const noexcept { return storage_; }

  /// Numeric widening accessor: any integral/floating alternative as i64 /
  /// double; Errc::invalid_argument otherwise. Convenient for tests and
  /// resource-manager arithmetic.
  [[nodiscard]] Result<std::int64_t> to_int() const;
  [[nodiscard]] Result<double> to_double() const;

  /// Render for logs/debugging (not a wire format).
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Value& other) const;

 private:
  Storage storage_;
};

/// Typed marshaling: append `value` as type `type` (aliases resolved through
/// `repo`). Fails with invalid_argument on a type/value mismatch.
Result<void> marshal_value(const Value& value, const idl::TypeRef& type,
                           const idl::InterfaceRepository& repo, CdrWriter& w);

/// Typed unmarshaling: decode one value of type `type`.
Result<Value> unmarshal_value(const idl::TypeRef& type,
                              const idl::InterfaceRepository& repo,
                              CdrReader& r);

/// Marshal/unmarshal a TypeRef descriptor itself (used by `any`).
void marshal_typeref(const idl::TypeRef& type, CdrWriter& w);
Result<idl::TypeRef> unmarshal_typeref(CdrReader& r);

/// Build a struct Value from (name, value) pairs.
Value make_struct(std::string type_name,
                  std::vector<std::pair<std::string, Value>> fields);

/// Build an enum Value from its label, validated against the repository.
Result<Value> make_enum(const std::string& type_name, const std::string& label,
                        const idl::InterfaceRepository& repo);

}  // namespace clc::orb
