#include "orb/message.hpp"

namespace clc::orb {

namespace {
constexpr std::uint8_t kMagic[4] = {'C', 'L', 'C', 'P'};
constexpr std::uint8_t kVersion = 1;

void write_frame_header(CdrWriter& w, MessageType type) {
  for (std::uint8_t m : kMagic) w.write_octet(m);
  w.write_octet(kVersion);
  w.write_octet(static_cast<std::uint8_t>(type));
  w.begin_encapsulation();
}

/// Worst-case encoded size of a service-context block (count + per-entry
/// id/length words, padding included), for pre-sizing frame buffers.
std::size_t contexts_size_hint(const std::vector<ServiceContext>& contexts) {
  if (contexts.empty()) return 0;
  std::size_t n = 8;
  for (const auto& c : contexts) n += 12 + c.data.size();
  return n;
}

// Service contexts trail the regular fields: count, then id + data per
// entry. Writers omit the block entirely when there are no contexts, which
// keeps new frames byte-identical to pre-context ones.
void write_service_contexts(CdrWriter& w,
                            const std::vector<ServiceContext>& contexts) {
  if (contexts.empty()) return;
  w.write_ulong(static_cast<std::uint32_t>(contexts.size()));
  for (const auto& c : contexts) {
    w.write_ulong(c.id);
    w.write_bytes(c.data);
  }
}

Result<std::vector<ServiceContext>> read_service_contexts(CdrReader& r) {
  std::vector<ServiceContext> contexts;
  if (r.exhausted()) return contexts;  // frame from a pre-context encoder
  auto count = r.read_ulong();
  if (!count) return count.error();
  contexts.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto id = r.read_ulong();
    if (!id) return id.error();
    auto data = r.read_bytes();
    if (!data) return data.error();
    contexts.push_back(ServiceContext{*id, std::move(*data)});
  }
  return contexts;
}
}  // namespace

Result<MessageType> decode_frame_header(CdrReader& r) {
  for (std::uint8_t expect : kMagic) {
    auto b = r.read_octet();
    if (!b) return b.error();
    if (*b != expect) return Error{Errc::corrupt_data, "bad message magic"};
  }
  auto version = r.read_octet();
  if (!version) return version.error();
  if (*version != kVersion)
    return Error{Errc::unsupported,
                 "protocol version " + std::to_string(*version)};
  auto type = r.read_octet();
  if (!type) return type.error();
  if (*type > static_cast<std::uint8_t>(MessageType::pong))
    return Error{Errc::corrupt_data, "bad message type"};
  if (auto enc = r.begin_encapsulation(); !enc.ok()) {
    // Control frames have no encapsulation; tolerate EOF for those.
    const auto t = static_cast<MessageType>(*type);
    if (t == MessageType::ping || t == MessageType::pong) return t;
    return enc.error();
  }
  return static_cast<MessageType>(*type);
}

Bytes encode_control(MessageType type) {
  CdrWriter w;
  for (std::uint8_t m : kMagic) w.write_octet(m);
  w.write_octet(kVersion);
  w.write_octet(static_cast<std::uint8_t>(type));
  return w.take();
}

Bytes RequestMessage::encode() const {
  CdrWriter w;
  // Header + fixed fields + strings (length word, NUL, padding) + args
  // blob + contexts: generous enough that encoding never reallocates.
  w.reserve(64 + interface_name.size() + operation.size() + args.size() +
            contexts_size_hint(service_contexts));
  write_frame_header(w, MessageType::request);
  w.write_ulonglong(request_id.value);
  w.write_ulonglong(object_key.hi);
  w.write_ulonglong(object_key.lo);
  w.write_string(interface_name);
  w.write_string(operation);
  w.write_boolean(response_expected);
  w.write_bytes(args);
  write_service_contexts(w, service_contexts);
  return w.take();
}

Result<RequestMessage> RequestMessage::decode(CdrReader& r) {
  RequestMessage m;
  auto id = r.read_ulonglong();
  if (!id) return id.error();
  m.request_id = RequestId{*id};
  auto hi = r.read_ulonglong();
  if (!hi) return hi.error();
  auto lo = r.read_ulonglong();
  if (!lo) return lo.error();
  m.object_key = Uuid{*hi, *lo};
  auto iface = r.read_string();
  if (!iface) return iface.error();
  m.interface_name = std::move(*iface);
  auto op = r.read_string();
  if (!op) return op.error();
  m.operation = std::move(*op);
  auto expected = r.read_boolean();
  if (!expected) return expected.error();
  m.response_expected = *expected;
  auto args = r.read_bytes();
  if (!args) return args.error();
  m.args = std::move(*args);
  auto contexts = read_service_contexts(r);
  if (!contexts) return contexts.error();
  m.service_contexts = std::move(*contexts);
  return m;
}

Bytes ReplyMessage::encode() const {
  CdrWriter w;
  w.reserve(48 + exception_id.size() + payload.size() +
            contexts_size_hint(service_contexts));
  write_frame_header(w, MessageType::reply);
  w.write_ulonglong(request_id.value);
  w.write_octet(static_cast<std::uint8_t>(status));
  w.write_string(exception_id);
  w.write_bytes(payload);
  write_service_contexts(w, service_contexts);
  return w.take();
}

Result<ReplyMessage> ReplyMessage::decode(CdrReader& r) {
  ReplyMessage m;
  auto id = r.read_ulonglong();
  if (!id) return id.error();
  m.request_id = RequestId{*id};
  auto status = r.read_octet();
  if (!status) return status.error();
  if (*status > static_cast<std::uint8_t>(ReplyStatus::busy))
    return Error{Errc::corrupt_data, "bad reply status"};
  m.status = static_cast<ReplyStatus>(*status);
  auto ex = r.read_string();
  if (!ex) return ex.error();
  m.exception_id = std::move(*ex);
  auto payload = r.read_bytes();
  if (!payload) return payload.error();
  m.payload = std::move(*payload);
  auto contexts = read_service_contexts(r);
  if (!contexts) return contexts.error();
  m.service_contexts = std::move(*contexts);
  return m;
}

Bytes ZoneContext::encode() const {
  CdrWriter w;
  w.begin_encapsulation();
  w.write_ulong(zone);
  w.write_ulonglong(zone_epoch);
  return w.take();
}

std::optional<ZoneContext> ZoneContext::decode(BytesView data) {
  CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return std::nullopt;
  auto zone = r.read_ulong();
  auto epoch = r.read_ulonglong();
  if (!zone || !epoch) return std::nullopt;
  ZoneContext ctx;
  ctx.zone = *zone;
  ctx.zone_epoch = *epoch;
  return ctx;
}

void ZoneContext::attach(std::vector<ServiceContext>& contexts) const {
  for (auto& c : contexts) {
    if (c.id == kZoneContextId) {
      c.data = encode();
      return;
    }
  }
  contexts.push_back({kZoneContextId, encode()});
}

std::optional<ZoneContext> ZoneContext::find(
    const std::vector<ServiceContext>& contexts) {
  for (const auto& c : contexts)
    if (c.id == kZoneContextId) return decode(c.data);
  return std::nullopt;
}

Bytes CreditContext::encode() const {
  CdrWriter w;
  w.begin_encapsulation();
  w.write_ulong(window);
  w.write_ulonglong(queue_delay_us);
  return w.take();
}

std::optional<CreditContext> CreditContext::decode(BytesView data) {
  CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return std::nullopt;
  auto window = r.read_ulong();
  auto delay = r.read_ulonglong();
  if (!window || !delay) return std::nullopt;
  CreditContext ctx;
  ctx.window = *window;
  ctx.queue_delay_us = *delay;
  return ctx;
}

void CreditContext::attach(std::vector<ServiceContext>& contexts) const {
  for (auto& c : contexts) {
    if (c.id == kCreditContextId) {
      c.data = encode();
      return;
    }
  }
  contexts.push_back({kCreditContextId, encode()});
}

std::optional<CreditContext> CreditContext::find(
    const std::vector<ServiceContext>& contexts) {
  for (const auto& c : contexts)
    if (c.id == kCreditContextId) return decode(c.data);
  return std::nullopt;
}

}  // namespace clc::orb
