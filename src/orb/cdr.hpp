// CDR (Common Data Representation) encoder/decoder.
//
// Implements the CORBA 2 CDR rules the CORBA-LC wire protocol relies on:
// primitives aligned to their natural size relative to the start of the
// encapsulation, both byte orders (the encapsulation carries a byte-order
// flag, receiver-makes-right), strings as length-prefixed with a
// terminating NUL, and sequences as a u32 element count.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace clc::orb {

enum class ByteOrder : std::uint8_t { big_endian = 0, little_endian = 1 };

/// Byte order of this host.
constexpr ByteOrder native_order() noexcept {
  return std::endian::native == std::endian::little ? ByteOrder::little_endian
                                                    : ByteOrder::big_endian;
}

/// Serializes into a growing buffer. The first byte written by
/// `begin_encapsulation` records the byte order so any peer can decode.
class CdrWriter {
 public:
  explicit CdrWriter(ByteOrder order = native_order()) : order_(order) {}

  /// Write the encapsulation header (byte-order octet). Usually the first
  /// call; kept explicit so nested encapsulations can be composed.
  void begin_encapsulation() { write_octet(static_cast<std::uint8_t>(order_)); }

  /// Pre-size for `n` further bytes so a frame of known shape is built with
  /// one allocation instead of a grow-by-insert cascade.
  void reserve(std::size_t n) { buffer_.reserve(buffer_.size() + n); }

  void write_octet(std::uint8_t v) { buffer_.push_back(v); }
  void write_boolean(bool v) { write_octet(v ? 1 : 0); }
  void write_short(std::int16_t v) { write_integral(v); }
  void write_ushort(std::uint16_t v) { write_integral(v); }
  void write_long(std::int32_t v) { write_integral(v); }
  void write_ulong(std::uint32_t v) { write_integral(v); }
  void write_longlong(std::int64_t v) { write_integral(v); }
  void write_ulonglong(std::uint64_t v) { write_integral(v); }
  void write_float(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    write_integral(bits);
  }
  void write_double(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    write_integral(bits);
  }
  /// CDR string: u32 length including NUL, bytes, NUL.
  void write_string(std::string_view s) {
    write_ulong(static_cast<std::uint32_t>(s.size() + 1));
    buffer_.insert(buffer_.end(), s.begin(), s.end());
    buffer_.push_back(0);
  }
  /// Raw octet sequence: u32 count + bytes.
  void write_bytes(BytesView data) {
    write_ulong(static_cast<std::uint32_t>(data.size()));
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }
  /// Sequence element count.
  void write_sequence_length(std::uint32_t n) { write_ulong(n); }

  [[nodiscard]] const Bytes& data() const noexcept { return buffer_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] ByteOrder order() const noexcept { return order_; }

 private:
  void align(std::size_t n) {
    while (buffer_.size() % n != 0) buffer_.push_back(0);
  }
  template <typename T>
  void write_integral(T v) {
    align(sizeof(T));
    if (order_ != native_order()) v = byteswap(v);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buffer_.insert(buffer_.end(), p, p + sizeof(T));
  }
  template <typename T>
  static T byteswap(T v) noexcept {
    T out;
    const auto* src = reinterpret_cast<const std::uint8_t*>(&v);
    auto* dst = reinterpret_cast<std::uint8_t*>(&out);
    for (std::size_t i = 0; i < sizeof(T); ++i) dst[i] = src[sizeof(T) - 1 - i];
    return out;
  }

  ByteOrder order_;
  Bytes buffer_;
};

/// Deserializes from a byte view; all reads are bounds-checked and report
/// Errc::corrupt_data on truncation (wire data is never trusted).
class CdrReader {
 public:
  explicit CdrReader(BytesView data, ByteOrder order = native_order())
      : data_(data), order_(order) {}

  /// Read the encapsulation byte-order octet and switch decoding order.
  Result<void> begin_encapsulation() {
    auto b = read_octet();
    if (!b) return b.error();
    if (*b > 1) return Error{Errc::corrupt_data, "bad byte-order flag"};
    order_ = static_cast<ByteOrder>(*b);
    return {};
  }

  Result<std::uint8_t> read_octet() {
    if (pos_ >= data_.size()) return truncated("octet");
    return data_[pos_++];
  }
  Result<bool> read_boolean() {
    auto o = read_octet();
    if (!o) return o.error();
    return *o != 0;
  }
  Result<std::int16_t> read_short() { return read_integral<std::int16_t>(); }
  Result<std::uint16_t> read_ushort() { return read_integral<std::uint16_t>(); }
  Result<std::int32_t> read_long() { return read_integral<std::int32_t>(); }
  Result<std::uint32_t> read_ulong() { return read_integral<std::uint32_t>(); }
  Result<std::int64_t> read_longlong() { return read_integral<std::int64_t>(); }
  Result<std::uint64_t> read_ulonglong() {
    return read_integral<std::uint64_t>();
  }
  Result<float> read_float() {
    auto bits = read_integral<std::uint32_t>();
    if (!bits) return bits.error();
    float v;
    std::memcpy(&v, &*bits, sizeof v);
    return v;
  }
  Result<double> read_double() {
    auto bits = read_integral<std::uint64_t>();
    if (!bits) return bits.error();
    double v;
    std::memcpy(&v, &*bits, sizeof v);
    return v;
  }
  Result<std::string> read_string() {
    auto len = read_ulong();
    if (!len) return len.error();
    if (*len == 0) return Error{Errc::corrupt_data, "string length 0"};
    if (pos_ + *len > data_.size()) return truncated("string");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len - 1);
    if (data_[pos_ + *len - 1] != 0)
      return Error{Errc::corrupt_data, "string missing NUL"};
    pos_ += *len;
    return s;
  }
  Result<Bytes> read_bytes() {
    auto len = read_ulong();
    if (!len) return len.error();
    if (pos_ + *len > data_.size()) return truncated("octet sequence");
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
    pos_ += *len;
    return out;
  }
  Result<std::uint32_t> read_sequence_length() { return read_ulong(); }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] ByteOrder order() const noexcept { return order_; }

 private:
  Error truncated(const char* what) {
    return Error{Errc::corrupt_data,
                 std::string("truncated CDR data reading ") + what};
  }
  void align(std::size_t n) {
    while (pos_ % n != 0 && pos_ < data_.size()) ++pos_;
  }
  template <typename T>
  Result<T> read_integral() {
    align(sizeof(T));
    if (pos_ + sizeof(T) > data_.size()) return truncated("integral");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    if (order_ != native_order()) v = byteswap(v);
    return v;
  }
  template <typename T>
  static T byteswap(T v) noexcept {
    T out;
    const auto* src = reinterpret_cast<const std::uint8_t*>(&v);
    auto* dst = reinterpret_cast<std::uint8_t*>(&out);
    for (std::size_t i = 0; i < sizeof(T); ++i) dst[i] = src[sizeof(T) - 1 - i];
    return out;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  ByteOrder order_;
};

}  // namespace clc::orb
