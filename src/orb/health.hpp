// Per-endpoint latency health tracking (DESIGN.md §17).
//
// Every completed remote invocation feeds its end-to-end latency into an
// EWMA + mean-absolute-deviation pair per endpoint (the TCP RTT estimator
// shape: cheap, O(1) state, no histogram). Two consumers hang off it:
//
//  * Hedged requests — the hedge delay for an endpoint is its estimated
//    p95 (ewma + 2·deviation): a speculative second attempt fires only
//    once the primary is already slower than ~95% of its history.
//
//  * Health-aware binding — Orb::endpoint_health_score combines this
//    latency estimate with breaker state, the credit window and the
//    failure streak into one scalar; Session and the directory rank
//    replicas by it (lower = healthier).
//
// The tracker is deliberately value-only (no clocks): callers pass
// measured durations, so deterministic tests drive it with virtual time.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/clock.hpp"

namespace clc::orb {

class EndpointHealthTracker {
 public:
  /// EWMA gain; 1/8 mirrors the classic RTT estimator (RFC 6298 shape).
  static constexpr double kAlpha = 0.125;
  /// Deviation gain (RFC 6298 beta).
  static constexpr double kBeta = 0.25;

  struct Snapshot {
    double ewma_us = 0;       // smoothed latency
    double deviation_us = 0;  // smoothed |sample - ewma|
    std::uint64_t samples = 0;
  };

  /// Record one completed invocation's end-to-end latency.
  void record(const std::string& endpoint, Duration latency);

  /// Smoothed latency in µs; `fallback_us` when the endpoint is unknown.
  [[nodiscard]] double latency_ewma(const std::string& endpoint,
                                    double fallback_us = 0) const;

  /// Estimated p95: ewma + 2·deviation (normal-ish tail), 0 when unknown.
  [[nodiscard]] Duration p95(const std::string& endpoint) const;

  [[nodiscard]] std::uint64_t samples(const std::string& endpoint) const;
  [[nodiscard]] Snapshot snapshot(const std::string& endpoint) const;

  /// Forget one endpoint (it re-warms from scratch) or everything.
  void forget(const std::string& endpoint);
  void clear();

 private:
  struct State {
    double ewma = 0;
    double dev = 0;
    std::uint64_t samples = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, State> endpoints_;
};

}  // namespace clc::orb
