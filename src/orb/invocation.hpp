// Invocation outcome types and the asynchronous-invocation handle (AMI).
//
// An invocation either produces a result Value (plus out/inout argument
// values) or a typed user exception; transport/system failures surface as
// Errors. PendingInvocation is the future-like handle Orb::invoke_async
// returns: the caller may poll it, block on it, or attach a continuation,
// and many handles can be in flight at once -- that is what lets one
// client pipeline requests over a single connection instead of performing
// strictly serialized roundtrips.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "orb/value.hpp"
#include "util/result.hpp"

namespace clc::orb {

/// A typed user exception (IDL `raises`) crossing the wire.
struct UserException {
  std::string type_name;  // scoped exception name
  Value payload;          // StructValue matching the exception definition

  [[nodiscard]] std::string field_text(const std::string& name) const {
    if (auto* sv = payload.get_if<StructValue>()) {
      if (const Value* f = sv->field(name)) {
        if (auto* s = f->get_if<std::string>()) return *s;
      }
    }
    return {};
  }
};

/// Result of an invocation that may have raised a user exception.
struct InvokeOutcome {
  Value result;
  std::optional<UserException> exception;
};

namespace detail {

/// Shared state between a PendingInvocation handle and the in-flight
/// invocation machinery. The args vector is owned here so out/inout values
/// have a stable home until the caller collects them; before completion it
/// is touched only by the invocation machinery (single logical owner), and
/// after completion only by the handle, so no lock covers it beyond the
/// done-flag handoff.
struct PendingState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Result<InvokeOutcome> outcome{Error{Errc::bad_state, "invocation pending"}};
  std::vector<Value> args;
  std::vector<std::function<void(const Result<InvokeOutcome>&)>> continuations;
  std::uint64_t request_id = 0;
  /// Transparent-failover observability: how many transport attempts this
  /// invocation took (1 = no retry) and the endpoint the final attempt was
  /// sent to (the caller's own endpoint, or empty, when the dispatch was
  /// collocated). Written by the retry machinery under `mutex`, stable
  /// once `done`.
  int attempts = 1;
  std::string final_endpoint;

  /// Publish the outcome exactly once: flips done, wakes waiters, then runs
  /// the continuations outside the lock (they may issue new invocations).
  void complete(Result<InvokeOutcome> result) {
    std::vector<std::function<void(const Result<InvokeOutcome>&)>> run;
    {
      std::lock_guard lock(mutex);
      if (done) return;
      outcome = std::move(result);
      done = true;
      run.swap(continuations);
    }
    cv.notify_all();
    for (auto& fn : run) fn(outcome);
  }
};

}  // namespace detail

/// Future-like handle for one asynchronous invocation. Copyable (all copies
/// observe the same invocation); default-constructed handles are invalid.
class PendingInvocation {
 public:
  PendingInvocation() = default;
  explicit PendingInvocation(std::shared_ptr<detail::PendingState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  /// Wire request id of this invocation (ids are monotone per Orb).
  [[nodiscard]] std::uint64_t request_id() const noexcept {
    return state_ == nullptr ? 0 : state_->request_id;
  }

  /// Poll: true once the outcome is available.
  [[nodiscard]] bool ready() const {
    if (state_ == nullptr) return false;
    std::lock_guard lock(state_->mutex);
    return state_->done;
  }

  /// Block until the invocation completes.
  void wait() const {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [this] { return state_->done; });
  }

  /// Block, then view the outcome (stays owned by the handle).
  [[nodiscard]] const Result<InvokeOutcome>& outcome() const {
    wait();
    return state_->outcome;
  }

  /// Block, then move the outcome out (call once).
  [[nodiscard]] Result<InvokeOutcome> take() {
    wait();
    return std::move(state_->outcome);
  }

  /// Block, then move the argument vector out: out/inout entries carry the
  /// values produced by the servant (in entries are unchanged).
  [[nodiscard]] std::vector<Value> take_args() {
    wait();
    return std::move(state_->args);
  }

  /// How many transport attempts the invocation took so far (1 = first
  /// attempt, no retry yet). After completion this is the total, letting
  /// callers and tests assert that transparent failover actually happened.
  [[nodiscard]] int attempts() const {
    std::lock_guard lock(state_->mutex);
    return state_->attempts;
  }

  /// Endpoint the most recent attempt was sent to (the caller's own
  /// endpoint, or empty, when the dispatch was collocated). After a
  /// rebind-driven retry this is where the call finally landed.
  [[nodiscard]] std::string final_endpoint() const {
    std::lock_guard lock(state_->mutex);
    return state_->final_endpoint;
  }

  /// Attach a continuation. Runs on whichever thread completes the
  /// invocation -- or immediately, on this thread, when already complete.
  /// Continuations must not block on other pending invocations of the same
  /// connection (they run on its reader loop).
  void then(std::function<void(const Result<InvokeOutcome>&)> fn) {
    {
      std::lock_guard lock(state_->mutex);
      if (!state_->done) {
        state_->continuations.push_back(std::move(fn));
        return;
      }
    }
    fn(state_->outcome);
  }

 private:
  std::shared_ptr<detail::PendingState> state_;
};

}  // namespace clc::orb
