#include "orb/resilience.hpp"

#include <algorithm>
#include <cmath>

namespace clc::orb {

Result<void> CircuitBreaker::admit(TimePoint now) {
  std::lock_guard lock(mutex_);
  switch (state_) {
    case State::closed:
      return {};
    case State::half_open:
      // One probe is already in flight; fail fast until it reports.
      return Error{Errc::refused, "circuit half-open, probe in flight"};
    case State::open:
      if (now - opened_at_ >= policy_.open_duration) {
        state_ = State::half_open;
        return {};
      }
      return Error{Errc::refused, "circuit open"};
  }
  return {};
}

void CircuitBreaker::on_success() {
  std::lock_guard lock(mutex_);
  state_ = State::closed;
  consecutive_failures_ = 0;
}

bool CircuitBreaker::on_failure(TimePoint now) {
  std::lock_guard lock(mutex_);
  ++consecutive_failures_;
  const bool was_open = state_ == State::open;
  if (state_ == State::half_open ||
      consecutive_failures_ >= policy_.failure_threshold) {
    state_ = State::open;
    opened_at_ = now;
  }
  return state_ == State::open && !was_open;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

const char* breaker_state_name(CircuitBreaker::State s) noexcept {
  switch (s) {
    case CircuitBreaker::State::closed: return "closed";
    case CircuitBreaker::State::open: return "open";
    case CircuitBreaker::State::half_open: return "half_open";
  }
  return "unknown";
}

Duration backoff_delay(const RetryPolicy& policy, int attempt,
                       Rng& rng) noexcept {
  const double base =
      static_cast<double>(std::max<Duration>(policy.initial_backoff, 0)) *
      std::pow(policy.backoff_multiplier, attempt - 1);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const double scale = 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
  return static_cast<Duration>(base * scale);
}

}  // namespace clc::orb
