#include "orb/transport.hpp"

#include <algorithm>
#include <thread>

#include "util/clock.hpp"

namespace clc::orb {

LoopbackNetwork::~LoopbackNetwork() { stop_async_workers(); }

std::string LoopbackNetwork::register_endpoint(MessageHandler handler) {
  std::lock_guard lock(mutex_);
  std::string endpoint = "loop:" + std::to_string(next_id_++);
  endpoints_.emplace(endpoint, std::move(handler));
  return endpoint;
}

void LoopbackNetwork::detach(const std::string& endpoint) {
  std::lock_guard lock(mutex_);
  endpoints_.erase(endpoint);
}

Result<void> LoopbackNetwork::reattach(const std::string& endpoint,
                                       MessageHandler handler) {
  std::lock_guard lock(mutex_);
  if (endpoints_.count(endpoint) != 0)
    return Error{Errc::already_exists, endpoint + " is already attached"};
  endpoints_.emplace(endpoint, std::move(handler));
  return {};
}

Result<MessageHandler> LoopbackNetwork::lookup(const std::string& endpoint) {
  std::lock_guard lock(mutex_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end())
    return Error{Errc::unreachable, "no endpoint " + endpoint};
  return it->second;
}

bool LoopbackNetwork::should_drop() {
  std::lock_guard lock(mutex_);
  if (config_.drop_probability <= 0) return false;
  const bool drop = rng_.chance(config_.drop_probability);
  if (drop) dropped_->inc();
  return drop;
}

void LoopbackNetwork::apply_delay(std::size_t bytes) {
  Config cfg;
  std::function<void(Duration)> sleep_fn;
  {
    std::lock_guard lock(mutex_);
    cfg = config_;
    sleep_fn = sleep_fn_;
  }
  messages_->inc();
  bytes_->add(bytes);
  Duration delay = cfg.latency;
  if (cfg.bytes_per_second > 0) {
    delay += static_cast<Duration>(static_cast<double>(bytes) /
                                   cfg.bytes_per_second * 1e6);
  }
  if (delay <= 0) return;
  if (sleep_fn)
    sleep_fn(delay);
  else
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
}

Result<Bytes> LoopbackNetwork::exchange(const std::string& endpoint,
                                        BytesView frame) {
  auto handler = lookup(endpoint);
  if (!handler) return handler.error();
  if (should_drop()) return Error{Errc::timeout, "request dropped"};
  apply_delay(frame.size());
  Bytes reply = (*handler)(frame);
  if (should_drop()) return Error{Errc::timeout, "reply dropped"};
  apply_delay(reply.size());
  return reply;
}

Result<Bytes> LoopbackNetwork::roundtrip(const std::string& endpoint,
                                         BytesView frame) {
  return exchange(endpoint, frame);
}

Result<void> LoopbackNetwork::send_oneway(const std::string& endpoint,
                                          BytesView frame) {
  auto handler = lookup(endpoint);
  if (!handler) return handler.error();
  if (should_drop()) return {};  // silently lost, as on a real network
  apply_delay(frame.size());
  (*handler)(frame);
  return {};
}

void LoopbackNetwork::submit(const std::string& endpoint, BytesView frame,
                             ReplyCallback cb) {
  {
    std::lock_guard lock(queue_mutex_);
    if (!workers_.empty() && !stopping_) {
      queue_.push_back(Job{endpoint, Bytes(frame.begin(), frame.end()),
                           std::move(cb)});
      queue_cv_.notify_one();
      return;
    }
  }
  cb(exchange(endpoint, frame));  // no pool: complete inline, deterministic
}

void LoopbackNetwork::start_async_workers(std::size_t n) {
  std::lock_guard lock(queue_mutex_);
  if (!workers_.empty()) return;
  stopping_ = false;
  n = std::clamp<std::size_t>(n, 1, 32);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void LoopbackNetwork::stop_async_workers() {
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
    workers.swap(workers_);
  }
  queue_cv_.notify_all();
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
  // Fail anything still queued so no callback is silently lost.
  std::deque<Job> leftover;
  {
    std::lock_guard lock(queue_mutex_);
    leftover.swap(queue_);
    stopping_ = false;
  }
  for (auto& job : leftover)
    job.cb(Error{Errc::unreachable, "loopback workers stopped"});
}

void LoopbackNetwork::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      if (queue_.empty()) continue;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job.cb(exchange(job.endpoint, job.frame));
  }
}

}  // namespace clc::orb
