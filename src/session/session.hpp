// Client session: durable service identity over a resilient Orb.
//
// A Session names components by service string instead of ObjectRef. It
// resolves names through the replicated directory (src/dir), caches the
// resulting references, subscribes to directory change notifications so
// cached entries invalidate/rebind the moment a service moves or retires,
// and — when an invocation still lands on a dead or retired ref — rebinds
// transparently: invalidate, re-resolve through the directory, replay the
// call under the Orb's idempotent-retry machinery, backing off between
// rounds until the rebind deadline. The result is the paper's contract
// seen from the client: the runtime migrates, fails over and retires
// component instances freely, and the application never observes an error.
//
// Fencing mirrors the directory replicas: every record that reaches the
// session (lookup reply or pushed notification, in any order, possibly
// duplicated across R replicas) is admitted only if it is newer_than the
// record currently cached for that service, so a split-brain loser's
// resurrection notice can never re-point the session at a retired ref.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dir/record.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orb/orb.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace clc::session {

struct SessionConfig {
  /// Directory replicas, in priority order; lookups try them in turn.
  std::vector<orb::ObjectRef> directory;
  /// Total budget for a single call() including every rebind round.
  Duration rebind_deadline = seconds(60);
  /// Backoff between rebind rounds (attempt-indexed, jittered).
  orb::RetryPolicy backoff{.max_attempts = 32,
                           .initial_backoff = milliseconds(50),
                           .backoff_multiplier = 2.0,
                           .jitter = 0.2};
  /// Longest single backoff wait; keeps late rounds responsive.
  Duration max_backoff = seconds(2);
  /// Subscribe to change notifications from every replica at attach time.
  bool subscribe = true;
};

class Session {
 public:
  /// Binds to `orb` (which must outlive the session), activates the
  /// DirSubscriber servant, and subscribes to the configured replicas
  /// (best effort: an unreachable replica degrades to lazy re-resolution).
  Session(orb::Orb& orb, SessionConfig config, obs::Tracer* tracer = nullptr);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Resolve a service name to its current reference: session cache first
  /// (`session.cache_hits`), then the directory replicas in order.
  Result<orb::ObjectRef> resolve(const std::string& service);

  /// Invoke `operation` on the component serving `service`, rebinding
  /// transparently across crashes, migrations and retirements. Calls are
  /// marked idempotent (replay-safe) unless `opts` says otherwise — the
  /// session's whole point is replaying through failover.
  Result<orb::Value> call(const std::string& service,
                          const std::string& operation,
                          std::vector<orb::Value> args = {},
                          const orb::InvokeOptions& opts = {.idempotent =
                                                                true});

  /// Resolve every active member of a replica group (records named `group`
  /// or `group "#" tag`), healthiest first (Orb::endpoint_health_score).
  /// Cached members win (`session.cache_hits`); otherwise the directory
  /// replicas answer lookup_group. `session.rebind_health` counts the
  /// resolutions where health ranking overrode the default priority order.
  Result<std::vector<orb::ObjectRef>> resolve_group(const std::string& group);

  /// Invoke `operation` on a replica group through the Orb's hedged path:
  /// the call goes to the healthiest member, and a budget-capped
  /// speculative attempt covers its tail (DESIGN.md §17). Rebinds like
  /// call(): a rebindable failure drops the cached members, re-resolves
  /// and replays until the rebind deadline.
  Result<orb::Value> call_group(const std::string& group,
                                const std::string& operation,
                                std::vector<orb::Value> args = {},
                                const orb::InvokeOptions& opts = {
                                    .idempotent = true});

  /// Drop the cached binding for one service (next call re-resolves).
  void invalidate(const std::string& service);

  /// Drop every cached member of a replica group.
  void invalidate_group(const std::string& group);

  /// Currently cached record, if any (tests/introspection).
  [[nodiscard]] Result<dir::ServiceRecord> cached(
      const std::string& service) const;

  /// The session's DirSubscriber reference (what replicas notify).
  [[nodiscard]] const orb::ObjectRef& subscriber_ref() const noexcept {
    return subscriber_ref_;
  }

  /// Deterministic, time-free log of every notification and rebind, used
  /// by the chaos replay test to fingerprint a run.
  [[nodiscard]] std::vector<std::string> event_log() const;

  /// Clock for rebind deadlines; defaults to real time. A LocalNetwork
  /// test hands in its manual clock.
  void set_clock(const Clock* clock) noexcept;
  /// How rebind backoff waits; deterministic tests substitute a
  /// virtual-clock advance (exactly like Orb::set_sleep_fn).
  void set_sleep_fn(std::function<void(Duration)> fn);

  [[nodiscard]] std::size_t cache_size() const;

 private:
  /// A failure class the session can cure by rebinding: transport-flavoured
  /// errors, a retired/vanished object, or a breaker-refused endpoint.
  static bool rebindable(Errc c) noexcept;

  Result<orb::ObjectRef> resolve_uncached(const std::string& service);
  /// Configured directory replicas, healthiest first; bumps
  /// `session.rebind_health` when ranking demoted the configured favorite.
  std::vector<orb::ObjectRef> ranked_directory();
  /// Admit a record under newer_than fencing; returns true if it won.
  bool admit(const dir::ServiceRecord& record);
  void on_notification(BytesView payload);
  void log_event(std::string line);

  orb::Orb& orb_;
  SessionConfig config_;
  obs::Tracer* tracer_;
  const Clock* clock_;
  SystemClock default_clock_;
  std::function<void(Duration)> sleep_fn_;
  orb::ObjectRef subscriber_ref_;
  Rng rng_;

  mutable std::mutex mutex_;  // guards records_ + event_log_; never held
                              // across an Orb invocation (loopback
                              // delivery re-enters on_notification)
  std::map<std::string, dir::ServiceRecord> records_;
  std::vector<std::string> event_log_;

  obs::Counter* cache_hits_;
  obs::Counter* rebinds_;
  obs::Counter* rebind_health_;
  obs::Counter* notifications_;
  obs::Counter* calls_;
  obs::Counter* errors_;
  obs::Counter* backpressure_backoffs_;
};

}  // namespace clc::session
