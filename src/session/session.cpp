#include "session/session.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

namespace clc::session {

namespace {
constexpr orb::InvokeOptions kIdempotent{.idempotent = true};
}  // namespace

Session::Session(orb::Orb& orb, SessionConfig config, obs::Tracer* tracer)
    : orb_(orb),
      config_(std::move(config)),
      tracer_(tracer),
      clock_(&default_clock_),
      sleep_fn_([](Duration d) {
        std::this_thread::sleep_for(std::chrono::microseconds(d));
      }),
      rng_(0x5e5510BEACULL ^ (orb.node_id().value * 0x9E3779B97F4A7C15ULL)),
      cache_hits_(&orb.metrics().counter("session.cache_hits")),
      rebinds_(&orb.metrics().counter("session.rebinds")),
      rebind_health_(&orb.metrics().counter("session.rebind_health")),
      notifications_(&orb.metrics().counter("dir.notifications")),
      calls_(&orb.metrics().counter("session.calls")),
      errors_(&orb.metrics().counter("session.errors")),
      backpressure_backoffs_(
          &orb.metrics().counter("session.backpressure_backoffs")) {
  // Byte-identical to the node-side registration, so either side may go
  // first (the InterfaceRepository admits identical redefinitions).
  (void)orb_.repository().register_idl(dir::directory_idl());
  auto servant = std::make_shared<orb::DynamicServant>("clc::DirSubscriber");
  servant->on("notify", [this](orb::ServerRequest& req) -> Result<void> {
    const Bytes payload = req.arg(0).as<Bytes>();
    on_notification(payload);
    return {};
  });
  subscriber_ref_ = orb_.activate(std::move(servant));
  if (config_.subscribe) {
    for (const auto& replica : config_.directory) {
      // Best effort: an unreachable replica just means this session leans
      // on lazy re-resolution (and the other replicas' pushes) instead.
      (void)orb_.call(replica, "subscribe", {orb::Value(subscriber_ref_)},
                      kIdempotent);
    }
  }
}

Session::~Session() {
  if (config_.subscribe) {
    for (const auto& replica : config_.directory)
      (void)orb_.call(replica, "unsubscribe", {orb::Value(subscriber_ref_)});
  }
  (void)orb_.deactivate(subscriber_ref_.key);
}

bool Session::rebindable(Errc c) noexcept {
  return orb::errc_is_retryable(c) || c == Errc::not_found ||
         c == Errc::refused;
}

Result<orb::ObjectRef> Session::resolve(const std::string& service) {
  {
    std::lock_guard lock(mutex_);
    auto it = records_.find(service);
    if (it != records_.end() && !it->second.retired) {
      cache_hits_->inc();
      return it->second.ref;
    }
  }
  return resolve_uncached(service);
}

std::vector<orb::ObjectRef> Session::ranked_directory() {
  auto replicas = config_.directory;
  orb_.rank_by_health(replicas);
  // Health-aware binding (DESIGN.md §17): the configured order is only the
  // priority among equally healthy replicas. Count the times health data
  // actually overrode it -- that is the signal the obs tests assert on.
  if (!replicas.empty() && !(replicas.front() == config_.directory.front()))
    rebind_health_->inc();
  return replicas;
}

Result<orb::ObjectRef> Session::resolve_uncached(const std::string& service) {
  Error last{Errc::not_found, "no directory replica answered for " + service};
  for (const auto& replica : ranked_directory()) {
    auto out = orb_.call(replica, "lookup", {orb::Value(service)},
                         kIdempotent);
    if (!out) {
      last = out.error();
      continue;
    }
    auto rec = dir::ServiceRecord::decode(out->as<Bytes>());
    if (!rec) {
      last = rec.error();
      continue;
    }
    admit(*rec);
    if (!rec->retired) return rec->ref;
    last = Error{Errc::not_found, service + " is retired"};
  }
  return last;
}

Result<orb::Value> Session::call(const std::string& service,
                                 const std::string& operation,
                                 std::vector<orb::Value> args,
                                 const orb::InvokeOptions& opts) {
  std::optional<obs::ScopedSpan> span;
  if (tracer_) span.emplace(*tracer_, "session:" + service + "." + operation);
  calls_->inc();
  const TimePoint deadline = clock_->now() + config_.rebind_deadline;
  Error last{Errc::not_found, "service " + service + " never resolved"};
  int round = 1;
  for (;;) {
    auto ref = resolve(service);
    if (ref) {
      auto out = orb_.call(*ref, operation, args, opts);
      if (out) return out;
      last = out.error();
      if (!rebindable(last.code)) break;
      if (last.code == Errc::overloaded) {
        // The binding is alive, it shed us: keep the cached ref (a
        // re-resolve would only add load) and just back off before the
        // next round.
        backpressure_backoffs_->inc();
        log_event("backpressure " + service);
      } else {
        // The cached binding is dead, retired, or mid-failover: drop it and
        // resolve afresh through the directory on the next round.
        invalidate(service);
        rebinds_->inc();
        log_event("rebind " + service + " after " + errc_name(last.code));
      }
    } else {
      last = ref.error();
      if (!rebindable(last.code)) break;
    }
    const TimePoint now = clock_->now();
    if (now >= deadline) break;
    // Clamp the exponent: with max_backoff capping the wait anyway, a long
    // outage would otherwise push 2^round past what fits in a Duration.
    Duration wait =
        orb::backoff_delay(config_.backoff, std::min(round, 20), rng_);
    if (wait > config_.max_backoff) wait = config_.max_backoff;
    if (wait > deadline - now) wait = deadline - now;
    std::function<void(Duration)> sleep;
    {
      std::lock_guard lock(mutex_);
      sleep = sleep_fn_;
    }
    if (wait > 0 && sleep) sleep(wait);
    ++round;
  }
  errors_->inc();
  if (span) span->fail();
  return last;
}

Result<std::vector<orb::ObjectRef>> Session::resolve_group(
    const std::string& group) {
  {
    // Cache first, exactly like resolve(): the members admitted from a
    // previous lookup_group (or pushed notifications) are name-contiguous
    // in the record map.
    std::lock_guard lock(mutex_);
    std::vector<orb::ObjectRef> refs;
    for (auto it = records_.lower_bound(group); it != records_.end(); ++it) {
      if (it->first.compare(0, group.size(), group) != 0) break;
      if (dir::service_in_group(it->first, group) && !it->second.retired)
        refs.push_back(it->second.ref);
    }
    if (!refs.empty()) {
      cache_hits_->inc();
      const orb::ObjectRef first = refs.front();
      orb_.rank_by_health(refs);
      if (!(refs.front() == first)) rebind_health_->inc();
      return refs;
    }
  }
  Error last{Errc::not_found,
             "no directory replica answered for group " + group};
  for (const auto& replica : ranked_directory()) {
    auto out = orb_.call(replica, "lookup_group", {orb::Value(group)},
                         kIdempotent);
    if (!out) {
      last = out.error();
      continue;
    }
    auto recs = dir::decode_records(out->as<Bytes>());
    if (!recs) {
      last = recs.error();
      continue;
    }
    std::vector<orb::ObjectRef> refs;
    for (const auto& rec : *recs) {
      admit(rec);
      if (!rec.retired) refs.push_back(rec.ref);
    }
    if (refs.empty()) {
      last = Error{Errc::not_found, "group " + group + " has no members"};
      continue;
    }
    const orb::ObjectRef first = refs.front();
    orb_.rank_by_health(refs);
    if (!(refs.front() == first)) rebind_health_->inc();
    return refs;
  }
  return last;
}

Result<orb::Value> Session::call_group(const std::string& group,
                                       const std::string& operation,
                                       std::vector<orb::Value> args,
                                       const orb::InvokeOptions& opts) {
  std::optional<obs::ScopedSpan> span;
  if (tracer_) span.emplace(*tracer_, "session:" + group + "." + operation);
  calls_->inc();
  const TimePoint deadline = clock_->now() + config_.rebind_deadline;
  Error last{Errc::not_found, "group " + group + " never resolved"};
  int round = 1;
  for (;;) {
    auto refs = resolve_group(group);
    if (refs) {
      auto out = orb_.call_hedged(std::move(*refs), operation, args, opts);
      if (out) return out;
      last = out.error();
      if (!rebindable(last.code)) break;
      if (last.code == Errc::overloaded) {
        backpressure_backoffs_->inc();
        log_event("backpressure " + group);
      } else {
        invalidate_group(group);
        rebinds_->inc();
        log_event("rebind group " + group + " after " + errc_name(last.code));
      }
    } else {
      last = refs.error();
      if (!rebindable(last.code)) break;
    }
    const TimePoint now = clock_->now();
    if (now >= deadline) break;
    Duration wait =
        orb::backoff_delay(config_.backoff, std::min(round, 20), rng_);
    if (wait > config_.max_backoff) wait = config_.max_backoff;
    if (wait > deadline - now) wait = deadline - now;
    std::function<void(Duration)> sleep;
    {
      std::lock_guard lock(mutex_);
      sleep = sleep_fn_;
    }
    if (wait > 0 && sleep) sleep(wait);
    ++round;
  }
  errors_->inc();
  if (span) span->fail();
  return last;
}

void Session::invalidate(const std::string& service) {
  std::lock_guard lock(mutex_);
  records_.erase(service);
}

void Session::invalidate_group(const std::string& group) {
  std::lock_guard lock(mutex_);
  auto it = records_.lower_bound(group);
  while (it != records_.end() &&
         it->first.compare(0, group.size(), group) == 0) {
    if (dir::service_in_group(it->first, group))
      it = records_.erase(it);
    else
      ++it;
  }
}

Result<dir::ServiceRecord> Session::cached(const std::string& service) const {
  std::lock_guard lock(mutex_);
  auto it = records_.find(service);
  if (it == records_.end())
    return Error{Errc::not_found, "no cached record for " + service};
  return it->second;
}

std::vector<std::string> Session::event_log() const {
  std::lock_guard lock(mutex_);
  return event_log_;
}

void Session::set_clock(const Clock* clock) noexcept {
  clock_ = clock != nullptr ? clock : &default_clock_;
}

void Session::set_sleep_fn(std::function<void(Duration)> fn) {
  std::lock_guard lock(mutex_);
  sleep_fn_ = std::move(fn);
}

std::size_t Session::cache_size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

bool Session::admit(const dir::ServiceRecord& record) {
  // The record ships its interface's IDL: register it so the raw Orb call
  // on the cached ref can marshal without a node-level fetch. Identical
  // redefinitions are admitted, so replica-duplicate pushes are free.
  if (!record.retired && !record.idl.empty())
    (void)orb_.repository().register_idl(record.idl);
  std::lock_guard lock(mutex_);
  auto it = records_.find(record.service);
  if (it == records_.end()) {
    records_.emplace(record.service, record);
    return true;
  }
  if (record == it->second) return false;  // replica-duplicate push
  // Same max-over-total-order rule as the replicas (newer_than covers the
  // establishment-epoch tombstone fencing).
  if (!record.newer_than(it->second)) return false;
  it->second = record;
  return true;
}

void Session::on_notification(BytesView payload) {
  auto n = dir::DirNotification::decode(payload);
  if (!n) return;  // corrupt push: ignore, lazy resolution self-heals
  notifications_->inc();
  const bool won = admit(n->record);
  log_event(std::string("notify ") + dir::change_kind_name(n->kind) + " " +
            n->record.service + (won ? " admitted" : " fenced") +
            " host=" + std::to_string(n->record.host.value) +
            " inc=" + std::to_string(n->record.incarnation) +
            " epoch=" + std::to_string(n->record.epoch));
}

void Session::log_event(std::string line) {
  std::lock_guard lock(mutex_);
  event_log_.push_back(std::move(line));
}

}  // namespace clc::session
