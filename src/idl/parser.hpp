// Recursive-descent parser for the IDL subset.
//
// IDL requires declare-before-use, so the parser resolves every named type
// reference while parsing (searching enclosing scopes outward, as IDL scoping
// rules dictate) and emits fully-scoped names in the resulting
// Specification. Semantic rules enforced here:
//   - duplicate definitions in a scope are rejected,
//   - `raises` clauses may only name exceptions,
//   - `oneway` operations must return void, take only `in` parameters and
//     have no raises clause,
//   - interface bases must be previously-declared interfaces.
#pragma once

#include <functional>
#include <optional>
#include <string_view>

#include "idl/ast.hpp"
#include "util/result.hpp"

namespace clc::idl {

/// External symbol oracle: lets a parse resolve names defined by earlier
/// sources (the Interface Repository supplies one, so IDL files can build
/// on types registered before them -- e.g. clc::Object).
struct ExternalSymbol {
  TypeKind kind;
  bool is_exception = false;
};
using SymbolLookup =
    std::function<std::optional<ExternalSymbol>(const std::string& scoped)>;

/// Parse one IDL source file into a specification with resolved names.
Result<Specification> parse(std::string_view source,
                            const SymbolLookup& externals = {});

}  // namespace clc::idl
