#include "idl/lexer.hpp"

#include <array>
#include <cctype>

namespace clc::idl {

namespace {
constexpr std::array<std::string_view, 29> kKeywords = {
    "module",   "interface", "struct",  "enum",     "exception", "typedef",
    "sequence", "attribute", "readonly", "oneway",  "raises",    "in",
    "out",      "inout",     "void",    "boolean",  "octet",     "short",
    "long",     "unsigned",  "float",   "double",   "string",    "any",
    "const",    "TRUE",      "FALSE",   "union",    "case",
};
}  // namespace

bool is_idl_keyword(std::string_view word) {
  for (auto kw : kKeywords) {
    if (kw == word) return true;
  }
  return false;
}

Result<std::vector<Token>> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1, col = 1;
  auto advance = [&]() {
    if (src[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  };
  auto error = [&](const std::string& what) {
    return Error{Errc::parse_error, "idl:" + std::to_string(line) + ":" +
                                        std::to_string(col) + ": " + what};
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      advance();
      advance();
      bool closed = false;
      while (i < src.size()) {
        if (src[i] == '*' && i + 1 < src.size() && src[i + 1] == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) return error("unterminated block comment");
      continue;
    }
    if (c == '#') {  // preprocessor line: ignore
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    const int tline = line, tcol = col;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        word.push_back(src[i]);
        advance();
      }
      out.push_back(Token{is_idl_keyword(word) ? TokKind::keyword
                                               : TokKind::identifier,
                          std::move(word), tline, tcol});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
        num.push_back(src[i]);
        advance();
      }
      out.push_back(Token{TokKind::integer, std::move(num), tline, tcol});
      continue;
    }
    if (c == ':' && i + 1 < src.size() && src[i + 1] == ':') {
      advance();
      advance();
      out.push_back(Token{TokKind::punct, "::", tline, tcol});
      continue;
    }
    constexpr std::string_view kPunct = "{}()<>,;:=";
    if (kPunct.find(c) != std::string_view::npos) {
      out.push_back(Token{TokKind::punct, std::string(1, c), tline, tcol});
      advance();
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }
  out.push_back(Token{TokKind::end, "", line, col});
  return out;
}

}  // namespace clc::idl
