#include "idl/parser.hpp"

#include <map>
#include <set>
#include <string>

#include "idl/lexer.hpp"

namespace clc::idl {

namespace {

/// What a scoped name denotes, for resolution and checking.
struct Symbol {
  TypeKind kind;          // tk_struct / tk_enum / tk_objref / tk_alias
  bool is_exception = false;
};

class Parser {
 public:
  Parser(std::vector<Token> toks, const SymbolLookup& externals)
      : toks_(std::move(toks)), externals_(externals) {}

  Result<Specification> run() {
    while (!at_end()) {
      if (auto r = parse_definition(); !r.ok()) return r.error();
    }
    return std::move(spec_);
  }

 private:
  // ------------------------------------------------------------- helpers

  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] bool at_end() const { return cur().kind == TokKind::end; }
  const Token& next() { return toks_[pos_++]; }

  Error error_at(const Token& t, const std::string& what) {
    return Error{Errc::parse_error, "idl:" + std::to_string(t.line) + ":" +
                                        std::to_string(t.col) + ": " + what};
  }
  Error error(const std::string& what) { return error_at(cur(), what); }

  Result<void> expect_punct(std::string_view p) {
    if (!cur().is_punct(p))
      return error("expected '" + std::string(p) + "', got '" + cur().text + "'");
    next();
    return {};
  }

  Result<std::string> expect_identifier(const char* role) {
    if (cur().kind != TokKind::identifier)
      return error(std::string("expected ") + role + ", got '" + cur().text + "'");
    return next().text;
  }

  [[nodiscard]] std::string scope_prefix() const {
    std::string s;
    for (const auto& part : scope_) {
      s += part;
      s += "::";
    }
    return s;
  }

  Result<void> declare(const std::string& scoped, Symbol sym) {
    if (symbols_.count(scoped) != 0) {
      // Re-declaring a symbol known only from *previous* sources is fine --
      // the repository checks shape-compatibility at registration. Within
      // one source it is a duplicate.
      if (external_names_.erase(scoped) == 0)
        return error("duplicate definition of '" + scoped + "'");
      symbols_[scoped] = sym;
      return {};
    }
    symbols_.emplace(scoped, sym);
    return {};
  }

  /// A name is known if declared in this source or by the external oracle
  /// (previously registered sources). External hits are cached into
  /// symbols_ so later checks see them uniformly.
  bool known(const std::string& scoped) {
    if (symbols_.count(scoped) != 0) return true;
    if (!externals_) return false;
    auto ext = externals_(scoped);
    if (!ext.has_value()) return false;
    symbols_.emplace(scoped, Symbol{ext->kind, ext->is_exception});
    external_names_.insert(scoped);
    return true;
  }

  /// Resolve a (possibly qualified) name against enclosing scopes, outward.
  Result<std::string> resolve(const std::string& name, const Token& at) {
    if (name.rfind("::", 0) == 0) {  // globally qualified
      const std::string global = name.substr(2);
      if (known(global)) return global;
      return error_at(at, "undefined type '" + name + "'");
    }
    for (std::size_t depth = scope_.size() + 1; depth-- > 0;) {
      std::string candidate;
      for (std::size_t i = 0; i < depth; ++i) {
        candidate += scope_[i];
        candidate += "::";
      }
      candidate += name;
      if (known(candidate)) return candidate;
    }
    return error_at(at, "undefined type '" + name + "'");
  }

  // ------------------------------------------------------------- types

  /// Parse a scoped name token sequence: [::] ident (:: ident)*.
  Result<std::string> parse_scoped_name() {
    std::string name;
    if (cur().is_punct("::")) {
      next();
      name = "::";
    }
    auto first = expect_identifier("type name");
    if (!first) return first.error();
    name += *first;
    while (cur().is_punct("::")) {
      next();
      auto part = expect_identifier("scoped name part");
      if (!part) return part.error();
      name += "::";
      name += *part;
    }
    return name;
  }

  Result<TypeRef> parse_type() {
    const Token& t = cur();
    if (t.kind == TokKind::keyword) {
      if (t.text == "void") { next(); return TypeRef::primitive(TypeKind::tk_void); }
      if (t.text == "boolean") { next(); return TypeRef::primitive(TypeKind::tk_boolean); }
      if (t.text == "octet") { next(); return TypeRef::primitive(TypeKind::tk_octet); }
      if (t.text == "short") { next(); return TypeRef::primitive(TypeKind::tk_short); }
      if (t.text == "float") { next(); return TypeRef::primitive(TypeKind::tk_float); }
      if (t.text == "double") { next(); return TypeRef::primitive(TypeKind::tk_double); }
      if (t.text == "string") { next(); return TypeRef::primitive(TypeKind::tk_string); }
      if (t.text == "any") { next(); return TypeRef::primitive(TypeKind::tk_any); }
      if (t.text == "long") {
        next();
        if (cur().is_kw("long")) {
          next();
          return TypeRef::primitive(TypeKind::tk_longlong);
        }
        return TypeRef::primitive(TypeKind::tk_long);
      }
      if (t.text == "unsigned") {
        next();
        if (cur().is_kw("short")) {
          next();
          return TypeRef::primitive(TypeKind::tk_ushort);
        }
        if (cur().is_kw("long")) {
          next();
          if (cur().is_kw("long")) {
            next();
            return TypeRef::primitive(TypeKind::tk_ulonglong);
          }
          return TypeRef::primitive(TypeKind::tk_ulong);
        }
        return error("expected 'short' or 'long' after 'unsigned'");
      }
      if (t.text == "sequence") {
        next();
        if (auto r = expect_punct("<"); !r.ok()) return r.error();
        auto elem = parse_type();
        if (!elem) return elem.error();
        if (elem->kind == TypeKind::tk_void)
          return error("sequence of void is not allowed");
        std::uint32_t bound = 0;
        if (cur().is_punct(",")) {
          next();
          if (cur().kind != TokKind::integer)
            return error("expected sequence bound");
          bound = static_cast<std::uint32_t>(std::stoul(next().text));
        }
        if (auto r = expect_punct(">"); !r.ok()) return r.error();
        return TypeRef::sequence(std::move(*elem), bound);
      }
      return error("unexpected keyword '" + t.text + "' in type position");
    }
    // Named type.
    const Token at = cur();
    auto name = parse_scoped_name();
    if (!name) return name.error();
    auto scoped = resolve(*name, at);
    if (!scoped) return scoped.error();
    const Symbol& sym = symbols_.at(*scoped);
    return TypeRef::named(sym.kind, *scoped);
  }

  // ------------------------------------------------------------- definitions

  Result<void> parse_definition() {
    if (cur().is_kw("module")) return parse_module();
    if (cur().is_kw("interface")) return parse_interface();
    if (cur().is_kw("struct")) return parse_struct(false);
    if (cur().is_kw("exception")) return parse_struct(true);
    if (cur().is_kw("enum")) return parse_enum();
    if (cur().is_kw("typedef")) return parse_typedef();
    return error("expected definition, got '" + cur().text + "'");
  }

  Result<void> parse_module() {
    next();  // 'module'
    auto name = expect_identifier("module name");
    if (!name) return name.error();
    if (auto r = expect_punct("{"); !r.ok()) return r.error();
    scope_.push_back(*name);
    while (!cur().is_punct("}")) {
      if (at_end()) return error("unterminated module");
      if (auto r = parse_definition(); !r.ok()) return r.error();
    }
    next();  // '}'
    scope_.pop_back();
    if (auto r = expect_punct(";"); !r.ok()) return r.error();
    return {};
  }

  Result<void> parse_struct(bool is_exception) {
    next();  // 'struct' / 'exception'
    auto name = expect_identifier(is_exception ? "exception name" : "struct name");
    if (!name) return name.error();
    StructDef def;
    def.scoped_name = scope_prefix() + *name;
    def.is_exception = is_exception;
    if (auto r = declare(def.scoped_name, {TypeKind::tk_struct, is_exception});
        !r.ok())
      return r.error();
    if (auto r = expect_punct("{"); !r.ok()) return r.error();
    while (!cur().is_punct("}")) {
      if (at_end()) return error("unterminated struct");
      auto type = parse_type();
      if (!type) return type.error();
      if (type->kind == TypeKind::tk_void)
        return error("struct field cannot be void");
      for (;;) {
        auto fname = expect_identifier("field name");
        if (!fname) return fname.error();
        for (const auto& f : def.fields) {
          if (f.name == *fname)
            return error("duplicate field '" + *fname + "'");
        }
        def.fields.push_back(FieldDef{*fname, *type});
        if (!cur().is_punct(",")) break;
        next();
      }
      if (auto r = expect_punct(";"); !r.ok()) return r.error();
    }
    next();  // '}'
    if (auto r = expect_punct(";"); !r.ok()) return r.error();
    spec_.structs.push_back(std::move(def));
    return {};
  }

  Result<void> parse_enum() {
    next();  // 'enum'
    auto name = expect_identifier("enum name");
    if (!name) return name.error();
    EnumDef def;
    def.scoped_name = scope_prefix() + *name;
    if (auto r = declare(def.scoped_name, {TypeKind::tk_enum}); !r.ok())
      return r.error();
    if (auto r = expect_punct("{"); !r.ok()) return r.error();
    for (;;) {
      auto label = expect_identifier("enumerator");
      if (!label) return label.error();
      if (def.index_of(*label) >= 0)
        return error("duplicate enumerator '" + *label + "'");
      def.enumerators.push_back(*label);
      if (cur().is_punct(",")) {
        next();
        continue;
      }
      break;
    }
    if (auto r = expect_punct("}"); !r.ok()) return r.error();
    if (auto r = expect_punct(";"); !r.ok()) return r.error();
    spec_.enums.push_back(std::move(def));
    return {};
  }

  Result<void> parse_typedef() {
    next();  // 'typedef'
    auto target = parse_type();
    if (!target) return target.error();
    if (target->kind == TypeKind::tk_void)
      return error("typedef of void is not allowed");
    auto name = expect_identifier("typedef name");
    if (!name) return name.error();
    TypedefDef def;
    def.scoped_name = scope_prefix() + *name;
    def.target = *target;
    if (auto r = declare(def.scoped_name, {TypeKind::tk_alias}); !r.ok())
      return r.error();
    if (auto r = expect_punct(";"); !r.ok()) return r.error();
    spec_.typedefs.push_back(std::move(def));
    return {};
  }

  Result<void> parse_interface() {
    next();  // 'interface'
    auto name = expect_identifier("interface name");
    if (!name) return name.error();
    InterfaceDef def;
    def.scoped_name = scope_prefix() + *name;
    // Forward declaration: `interface Foo;`
    if (cur().is_punct(";")) {
      next();
      if (symbols_.count(def.scoped_name) == 0)
        symbols_.emplace(def.scoped_name, Symbol{TypeKind::tk_objref});
      forward_only_.insert(def.scoped_name);
      return {};
    }
    // Full definition: allowed to complete a forward declaration.
    if (auto it = forward_only_.find(def.scoped_name); it != forward_only_.end()) {
      forward_only_.erase(it);
    } else if (auto r = declare(def.scoped_name, {TypeKind::tk_objref}); !r.ok()) {
      return r.error();
    }
    if (cur().is_punct(":")) {
      next();
      for (;;) {
        const Token at = cur();
        auto base = parse_scoped_name();
        if (!base) return base.error();
        auto scoped = resolve(*base, at);
        if (!scoped) return scoped.error();
        if (symbols_.at(*scoped).kind != TypeKind::tk_objref)
          return error_at(at, "base '" + *scoped + "' is not an interface");
        if (forward_only_.count(*scoped))
          return error_at(at, "base '" + *scoped + "' is only forward-declared");
        def.bases.push_back(*scoped);
        if (!cur().is_punct(",")) break;
        next();
      }
    }
    if (auto r = expect_punct("{"); !r.ok()) return r.error();
    scope_.push_back(*name);
    while (!cur().is_punct("}")) {
      if (at_end()) return error("unterminated interface");
      if (cur().is_kw("struct")) {
        if (auto r = parse_struct(false); !r.ok()) return r.error();
      } else if (cur().is_kw("exception")) {
        if (auto r = parse_struct(true); !r.ok()) return r.error();
      } else if (cur().is_kw("enum")) {
        if (auto r = parse_enum(); !r.ok()) return r.error();
      } else if (cur().is_kw("typedef")) {
        if (auto r = parse_typedef(); !r.ok()) return r.error();
      } else if (cur().is_kw("readonly") || cur().is_kw("attribute")) {
        if (auto r = parse_attribute(def); !r.ok()) return r.error();
      } else {
        if (auto r = parse_operation(def); !r.ok()) return r.error();
      }
    }
    next();  // '}'
    scope_.pop_back();
    if (auto r = expect_punct(";"); !r.ok()) return r.error();
    spec_.interfaces.push_back(std::move(def));
    return {};
  }

  Result<void> parse_attribute(InterfaceDef& def) {
    bool readonly = false;
    if (cur().is_kw("readonly")) {
      readonly = true;
      next();
    }
    if (!cur().is_kw("attribute")) return error("expected 'attribute'");
    next();
    auto type = parse_type();
    if (!type) return type.error();
    if (type->kind == TypeKind::tk_void)
      return error("attribute cannot be void");
    for (;;) {
      auto name = expect_identifier("attribute name");
      if (!name) return name.error();
      def.attributes.push_back(AttributeDef{*name, *type, readonly});
      if (!cur().is_punct(",")) break;
      next();
    }
    if (auto r = expect_punct(";"); !r.ok()) return r.error();
    return {};
  }

  Result<void> parse_operation(InterfaceDef& def) {
    OperationDef op;
    if (cur().is_kw("oneway")) {
      op.oneway = true;
      next();
    }
    auto result = parse_type();
    if (!result) return result.error();
    op.result = *result;
    const Token name_tok = cur();
    auto name = expect_identifier("operation name");
    if (!name) return name.error();
    op.name = *name;
    if (def.find_operation(op.name) != nullptr)
      return error_at(name_tok, "duplicate operation '" + op.name + "'");
    if (auto r = expect_punct("("); !r.ok()) return r.error();
    if (!cur().is_punct(")")) {
      for (;;) {
        ParamDef p;
        if (cur().is_kw("in")) {
          p.direction = ParamDirection::in;
        } else if (cur().is_kw("out")) {
          p.direction = ParamDirection::out;
        } else if (cur().is_kw("inout")) {
          p.direction = ParamDirection::inout;
        } else {
          return error("expected parameter direction (in/out/inout)");
        }
        next();
        auto type = parse_type();
        if (!type) return type.error();
        if (type->kind == TypeKind::tk_void)
          return error("parameter cannot be void");
        p.type = *type;
        auto pname = expect_identifier("parameter name");
        if (!pname) return pname.error();
        p.name = *pname;
        for (const auto& q : op.params) {
          if (q.name == p.name)
            return error("duplicate parameter '" + p.name + "'");
        }
        op.params.push_back(std::move(p));
        if (!cur().is_punct(",")) break;
        next();
      }
    }
    if (auto r = expect_punct(")"); !r.ok()) return r.error();
    if (cur().is_kw("raises")) {
      next();
      if (auto r = expect_punct("("); !r.ok()) return r.error();
      for (;;) {
        const Token at = cur();
        auto exname = parse_scoped_name();
        if (!exname) return exname.error();
        auto scoped = resolve(*exname, at);
        if (!scoped) return scoped.error();
        const Symbol& sym = symbols_.at(*scoped);
        if (sym.kind != TypeKind::tk_struct || !sym.is_exception)
          return error_at(at, "'" + *scoped + "' is not an exception");
        op.raises.push_back(*scoped);
        if (!cur().is_punct(",")) break;
        next();
      }
      if (auto r = expect_punct(")"); !r.ok()) return r.error();
    }
    if (op.oneway) {
      if (op.result.kind != TypeKind::tk_void)
        return error_at(name_tok, "oneway operation must return void");
      for (const auto& p : op.params) {
        if (p.direction != ParamDirection::in)
          return error_at(name_tok,
                          "oneway operation may take only 'in' parameters");
      }
      if (!op.raises.empty())
        return error_at(name_tok, "oneway operation may not raise exceptions");
    }
    if (auto r = expect_punct(";"); !r.ok()) return r.error();
    def.operations.push_back(std::move(op));
    return {};
  }

  std::vector<Token> toks_;
  const SymbolLookup& externals_;
  std::size_t pos_ = 0;
  Specification spec_;
  std::vector<std::string> scope_;
  std::map<std::string, Symbol> symbols_;
  std::set<std::string> external_names_;  // symbols seeded from the oracle
  std::set<std::string> forward_only_;
};

}  // namespace

Result<Specification> parse(std::string_view source,
                            const SymbolLookup& externals) {
  auto toks = tokenize(source);
  if (!toks) return toks.error();
  return Parser(std::move(*toks), externals).run();
}

const char* type_kind_name(TypeKind k) noexcept {
  switch (k) {
    case TypeKind::tk_void: return "void";
    case TypeKind::tk_boolean: return "boolean";
    case TypeKind::tk_octet: return "octet";
    case TypeKind::tk_short: return "short";
    case TypeKind::tk_ushort: return "unsigned short";
    case TypeKind::tk_long: return "long";
    case TypeKind::tk_ulong: return "unsigned long";
    case TypeKind::tk_longlong: return "long long";
    case TypeKind::tk_ulonglong: return "unsigned long long";
    case TypeKind::tk_float: return "float";
    case TypeKind::tk_double: return "double";
    case TypeKind::tk_string: return "string";
    case TypeKind::tk_any: return "any";
    case TypeKind::tk_sequence: return "sequence";
    case TypeKind::tk_struct: return "struct";
    case TypeKind::tk_enum: return "enum";
    case TypeKind::tk_objref: return "interface";
    case TypeKind::tk_alias: return "alias";
  }
  return "?";
}

std::string TypeRef::to_string() const {
  if (kind == TypeKind::tk_sequence) {
    std::string s = "sequence<" + (element ? element->to_string() : "?");
    if (bound != 0) s += "," + std::to_string(bound);
    return s + ">";
  }
  if (is_named()) return name;
  return type_kind_name(kind);
}

}  // namespace clc::idl
