// Interface Repository.
//
// CORBA-LC performs *dynamic* typed invocation: instead of compiling IDL to
// stub/skeleton code, every node registers the IDL of its installed
// components here, and the ORB marshals requests by walking the type model
// (DII/DSI style). The repository is also part of the Reflection
// Architecture (§2.4.2): visual builders and the Distributed Registry query
// it to learn what an interface offers.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "idl/ast.hpp"
#include "util/result.hpp"

namespace clc::idl {

class InterfaceRepository {
 public:
  /// Register every definition of a parsed specification. Fails (without
  /// partial registration) if any name collides with an existing definition
  /// of different shape, or an interface inheritance cycle would form.
  /// Re-registering an identical spec is idempotent.
  Result<void> register_spec(const Specification& spec);

  /// Convenience: parse + register.
  Result<void> register_idl(std::string_view source);

  [[nodiscard]] const StructDef* find_struct(const std::string& scoped) const;
  [[nodiscard]] const EnumDef* find_enum(const std::string& scoped) const;
  [[nodiscard]] const InterfaceDef* find_interface(
      const std::string& scoped) const;
  [[nodiscard]] const TypedefDef* find_typedef(const std::string& scoped) const;

  /// Follow tk_alias links until a non-alias type; cycle-safe.
  [[nodiscard]] Result<TypeRef> resolve_alias(const TypeRef& type) const;

  /// All operations of an interface including inherited ones, base-first.
  /// Attribute accessors are included as synthesized operations
  /// (_get_<name> / _set_<name>), matching CORBA's attribute mapping.
  [[nodiscard]] Result<std::vector<OperationDef>> flatten_operations(
      const std::string& interface_name) const;

  /// Find one operation (own, inherited, or attribute accessor).
  [[nodiscard]] Result<OperationDef> find_operation(
      const std::string& interface_name, const std::string& op_name) const;

  /// True if `derived` equals `base` or inherits from it (transitively).
  [[nodiscard]] bool is_a(const std::string& derived,
                          const std::string& base) const;

  [[nodiscard]] std::vector<std::string> interface_names() const;

 private:
  Result<void> check_interface_cycles(const InterfaceDef& def) const;

  std::map<std::string, StructDef> structs_;
  std::map<std::string, EnumDef> enums_;
  std::map<std::string, InterfaceDef> interfaces_;
  std::map<std::string, TypedefDef> typedefs_;
};

}  // namespace clc::idl
