// Tokenizer for the IDL subset.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace clc::idl {

enum class TokKind {
  identifier,
  keyword,
  integer,
  punct,       // one of { } ( ) < > , ; : = and "::"
  end,
};

struct Token {
  TokKind kind = TokKind::end;
  std::string text;
  int line = 0;
  int col = 0;

  [[nodiscard]] bool is_kw(std::string_view kw) const {
    return kind == TokKind::keyword && text == kw;
  }
  [[nodiscard]] bool is_punct(std::string_view p) const {
    return kind == TokKind::punct && text == p;
  }
};

/// Tokenize a full IDL source; strips // and /* */ comments and #pragma /
/// #include preprocessor lines (treated as opaque and ignored).
Result<std::vector<Token>> tokenize(std::string_view source);

/// True if `word` is an IDL keyword in our subset.
bool is_idl_keyword(std::string_view word);

}  // namespace clc::idl
