#include "idl/repository.hpp"

#include <set>

#include "idl/parser.hpp"

namespace clc::idl {

namespace {

bool same_type(const TypeRef& a, const TypeRef& b) {
  if (a.kind != b.kind || a.name != b.name || a.bound != b.bound) return false;
  if ((a.element == nullptr) != (b.element == nullptr)) return false;
  return a.element == nullptr || same_type(*a.element, *b.element);
}

bool same_struct(const StructDef& a, const StructDef& b) {
  if (a.is_exception != b.is_exception || a.fields.size() != b.fields.size())
    return false;
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    if (a.fields[i].name != b.fields[i].name ||
        !same_type(a.fields[i].type, b.fields[i].type))
      return false;
  }
  return true;
}

bool same_op(const OperationDef& a, const OperationDef& b) {
  if (a.name != b.name || a.oneway != b.oneway || a.raises != b.raises ||
      !same_type(a.result, b.result) || a.params.size() != b.params.size())
    return false;
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    if (a.params[i].name != b.params[i].name ||
        a.params[i].direction != b.params[i].direction ||
        !same_type(a.params[i].type, b.params[i].type))
      return false;
  }
  return true;
}

bool same_interface(const InterfaceDef& a, const InterfaceDef& b) {
  if (a.bases != b.bases || a.operations.size() != b.operations.size() ||
      a.attributes.size() != b.attributes.size())
    return false;
  for (std::size_t i = 0; i < a.operations.size(); ++i) {
    if (!same_op(a.operations[i], b.operations[i])) return false;
  }
  for (std::size_t i = 0; i < a.attributes.size(); ++i) {
    if (a.attributes[i].name != b.attributes[i].name ||
        a.attributes[i].readonly != b.attributes[i].readonly ||
        !same_type(a.attributes[i].type, b.attributes[i].type))
      return false;
  }
  return true;
}

/// Synthesized accessor operations for an attribute, per CORBA mapping.
void append_attribute_ops(const AttributeDef& attr,
                          std::vector<OperationDef>& out) {
  OperationDef getter;
  getter.name = "_get_" + attr.name;
  getter.result = attr.type;
  out.push_back(std::move(getter));
  if (!attr.readonly) {
    OperationDef setter;
    setter.name = "_set_" + attr.name;
    setter.result = TypeRef::primitive(TypeKind::tk_void);
    setter.params.push_back(
        ParamDef{ParamDirection::in, "value", attr.type});
    out.push_back(std::move(setter));
  }
}

}  // namespace

Result<void> InterfaceRepository::register_spec(const Specification& spec) {
  // Validate first so a failure leaves the repository untouched.
  for (const auto& s : spec.structs) {
    if (auto it = structs_.find(s.scoped_name);
        it != structs_.end() && !same_struct(it->second, s))
      return Error{Errc::already_exists,
                   "conflicting redefinition of struct " + s.scoped_name};
  }
  for (const auto& e : spec.enums) {
    if (auto it = enums_.find(e.scoped_name);
        it != enums_.end() && it->second.enumerators != e.enumerators)
      return Error{Errc::already_exists,
                   "conflicting redefinition of enum " + e.scoped_name};
  }
  for (const auto& t : spec.typedefs) {
    if (auto it = typedefs_.find(t.scoped_name);
        it != typedefs_.end() && !same_type(it->second.target, t.target))
      return Error{Errc::already_exists,
                   "conflicting redefinition of typedef " + t.scoped_name};
  }
  for (const auto& i : spec.interfaces) {
    if (auto it = interfaces_.find(i.scoped_name);
        it != interfaces_.end() && !same_interface(it->second, i))
      return Error{Errc::already_exists,
                   "conflicting redefinition of interface " + i.scoped_name};
    if (auto r = check_interface_cycles(i); !r.ok()) return r;
  }
  for (const auto& s : spec.structs) structs_.insert_or_assign(s.scoped_name, s);
  for (const auto& e : spec.enums) enums_.insert_or_assign(e.scoped_name, e);
  for (const auto& t : spec.typedefs)
    typedefs_.insert_or_assign(t.scoped_name, t);
  for (const auto& i : spec.interfaces)
    interfaces_.insert_or_assign(i.scoped_name, i);
  return {};
}

Result<void> InterfaceRepository::register_idl(std::string_view source) {
  // New sources may reference anything already registered here.
  SymbolLookup externals =
      [this](const std::string& scoped) -> std::optional<ExternalSymbol> {
    if (const StructDef* s = find_struct(scoped))
      return ExternalSymbol{TypeKind::tk_struct, s->is_exception};
    if (find_enum(scoped) != nullptr)
      return ExternalSymbol{TypeKind::tk_enum};
    if (find_interface(scoped) != nullptr)
      return ExternalSymbol{TypeKind::tk_objref};
    if (find_typedef(scoped) != nullptr)
      return ExternalSymbol{TypeKind::tk_alias};
    return std::nullopt;
  };
  auto spec = parse(source, externals);
  if (!spec) return spec.error();
  return register_spec(*spec);
}

Result<void> InterfaceRepository::check_interface_cycles(
    const InterfaceDef& def) const {
  // DFS from the new interface through bases already registered (the parser
  // enforces declare-before-use within one spec; across specs a cycle could
  // only appear via redefinition, which same_interface already blocks, but
  // we keep the check cheap and explicit).
  std::set<std::string> visiting;
  std::vector<const InterfaceDef*> stack = {&def};
  visiting.insert(def.scoped_name);
  while (!stack.empty()) {
    const InterfaceDef* cur = stack.back();
    stack.pop_back();
    for (const auto& base : cur->bases) {
      if (base == def.scoped_name)
        return Error{Errc::invalid_argument,
                     "inheritance cycle through " + def.scoped_name};
      if (!visiting.insert(base).second) continue;
      if (auto it = interfaces_.find(base); it != interfaces_.end())
        stack.push_back(&it->second);
    }
  }
  return {};
}

const StructDef* InterfaceRepository::find_struct(
    const std::string& scoped) const {
  auto it = structs_.find(scoped);
  return it == structs_.end() ? nullptr : &it->second;
}

const EnumDef* InterfaceRepository::find_enum(const std::string& scoped) const {
  auto it = enums_.find(scoped);
  return it == enums_.end() ? nullptr : &it->second;
}

const InterfaceDef* InterfaceRepository::find_interface(
    const std::string& scoped) const {
  auto it = interfaces_.find(scoped);
  return it == interfaces_.end() ? nullptr : &it->second;
}

const TypedefDef* InterfaceRepository::find_typedef(
    const std::string& scoped) const {
  auto it = typedefs_.find(scoped);
  return it == typedefs_.end() ? nullptr : &it->second;
}

Result<TypeRef> InterfaceRepository::resolve_alias(const TypeRef& type) const {
  TypeRef cur = type;
  std::set<std::string> seen;
  while (cur.kind == TypeKind::tk_alias) {
    if (!seen.insert(cur.name).second)
      return Error{Errc::invalid_argument, "typedef cycle at " + cur.name};
    const TypedefDef* td = find_typedef(cur.name);
    if (td == nullptr)
      return Error{Errc::not_found, "unknown typedef " + cur.name};
    cur = td->target;
  }
  return cur;
}

Result<std::vector<OperationDef>> InterfaceRepository::flatten_operations(
    const std::string& interface_name) const {
  std::vector<OperationDef> out;
  std::set<std::string> visited;
  // Recursive base-first walk.
  auto walk = [&](auto&& self, const std::string& name) -> Result<void> {
    if (!visited.insert(name).second) return {};
    const InterfaceDef* def = find_interface(name);
    if (def == nullptr)
      return Error{Errc::not_found, "unknown interface " + name};
    for (const auto& base : def->bases) {
      if (auto r = self(self, base); !r.ok()) return r;
    }
    for (const auto& op : def->operations) out.push_back(op);
    for (const auto& attr : def->attributes) append_attribute_ops(attr, out);
    return {};
  };
  if (auto r = walk(walk, interface_name); !r.ok()) return r.error();
  return out;
}

Result<OperationDef> InterfaceRepository::find_operation(
    const std::string& interface_name, const std::string& op_name) const {
  auto ops = flatten_operations(interface_name);
  if (!ops) return ops.error();
  for (const auto& op : *ops) {
    if (op.name == op_name) return op;
  }
  return Error{Errc::not_found,
               interface_name + " has no operation " + op_name};
}

bool InterfaceRepository::is_a(const std::string& derived,
                               const std::string& base) const {
  if (derived == base) return find_interface(derived) != nullptr;
  const InterfaceDef* def = find_interface(derived);
  if (def == nullptr) return false;
  for (const auto& b : def->bases) {
    if (is_a(b, base)) return true;
  }
  return false;
}

std::vector<std::string> InterfaceRepository::interface_names() const {
  std::vector<std::string> out;
  out.reserve(interfaces_.size());
  for (const auto& [name, def] : interfaces_) out.push_back(name);
  return out;
}

}  // namespace clc::idl
