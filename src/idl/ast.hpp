// IDL type model (AST) for the CORBA-LC IDL subset.
//
// The paper keeps plain CORBA 2 IDL for component contracts (§2.1.2), so we
// implement the subset those contracts use: modules, interfaces (with
// inheritance, operations, attributes, raises, oneway), structs, enums,
// exceptions, typedefs, sequences and the primitive types. Parsed
// definitions are registered in an InterfaceRepository (repository.hpp)
// which the ORB uses for dynamic typed invocation -- there is no generated
// stub code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace clc::idl {

/// CORBA TCKind-style type discriminator.
enum class TypeKind {
  tk_void,
  tk_boolean,
  tk_octet,
  tk_short,
  tk_ushort,
  tk_long,
  tk_ulong,
  tk_longlong,
  tk_ulonglong,
  tk_float,
  tk_double,
  tk_string,
  tk_any,
  tk_sequence,
  tk_struct,     // named: struct or exception
  tk_enum,       // named
  tk_objref,     // named: interface reference
  tk_alias,      // named: typedef (resolved through the repository)
};

const char* type_kind_name(TypeKind k) noexcept;

/// Reference to a type: a kind plus, for named kinds, the scoped name
/// ("clc::Point"), plus an element type for sequences.
struct TypeRef {
  TypeKind kind = TypeKind::tk_void;
  std::string name;                       // for named kinds
  std::shared_ptr<TypeRef> element;       // for tk_sequence
  std::uint32_t bound = 0;                // sequence bound, 0 = unbounded

  [[nodiscard]] bool is_named() const noexcept {
    return kind == TypeKind::tk_struct || kind == TypeKind::tk_enum ||
           kind == TypeKind::tk_objref || kind == TypeKind::tk_alias;
  }
  [[nodiscard]] std::string to_string() const;

  static TypeRef primitive(TypeKind k) { return TypeRef{k, {}, nullptr, 0}; }
  static TypeRef named(TypeKind k, std::string scoped) {
    return TypeRef{k, std::move(scoped), nullptr, 0};
  }
  static TypeRef sequence(TypeRef elem, std::uint32_t bound = 0) {
    TypeRef t;
    t.kind = TypeKind::tk_sequence;
    t.element = std::make_shared<TypeRef>(std::move(elem));
    t.bound = bound;
    return t;
  }
};

struct FieldDef {
  std::string name;
  TypeRef type;
};

/// struct and exception share the shape; `is_exception` distinguishes them.
struct StructDef {
  std::string scoped_name;
  std::vector<FieldDef> fields;
  bool is_exception = false;
};

struct EnumDef {
  std::string scoped_name;
  std::vector<std::string> enumerators;

  /// Index of an enumerator, or -1.
  [[nodiscard]] int index_of(const std::string& label) const {
    for (std::size_t i = 0; i < enumerators.size(); ++i) {
      if (enumerators[i] == label) return static_cast<int>(i);
    }
    return -1;
  }
};

struct TypedefDef {
  std::string scoped_name;
  TypeRef target;
};

enum class ParamDirection { in, out, inout };

struct ParamDef {
  ParamDirection direction = ParamDirection::in;
  std::string name;
  TypeRef type;
};

struct OperationDef {
  std::string name;                // unqualified
  TypeRef result;
  std::vector<ParamDef> params;
  std::vector<std::string> raises;  // scoped exception names
  bool oneway = false;
};

struct AttributeDef {
  std::string name;
  TypeRef type;
  bool readonly = false;
};

struct InterfaceDef {
  std::string scoped_name;
  std::vector<std::string> bases;  // scoped names
  std::vector<OperationDef> operations;
  std::vector<AttributeDef> attributes;

  /// Find a locally declared operation (no inheritance walk).
  [[nodiscard]] const OperationDef* find_operation(
      const std::string& name) const {
    for (const auto& op : operations) {
      if (op.name == name) return &op;
    }
    return nullptr;
  }
};

/// Everything one IDL source contributes, in declaration order.
struct Specification {
  std::vector<StructDef> structs;       // includes exceptions
  std::vector<EnumDef> enums;
  std::vector<TypedefDef> typedefs;
  std::vector<InterfaceDef> interfaces;
};

}  // namespace clc::idl
