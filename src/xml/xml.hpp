// Minimal XML DOM: parser, tree, writer.
//
// CORBA-LC component descriptors (§2.1, §2.3 of the paper) are XML files
// following an OSD-derived schema. This parser supports the subset those
// descriptors need: elements, attributes, character data, comments, CDATA,
// XML declaration, and the five predefined entities plus numeric character
// references. DOCTYPE declarations are skipped (descriptors reference a DTD
// but we validate structurally in clc::pkg instead).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace clc::xml {

class Element;
using ElementPtr = std::unique_ptr<Element>;

/// One XML element: name, attributes, text content and child elements.
/// Mixed content is normalized: all character data inside an element is
/// concatenated into `text()` (descriptor files never rely on interleaving).
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  void set_text(std::string t) { text_ = std::move(t); }
  void append_text(std::string_view t) { text_.append(t); }

  /// Attributes, in document order of first assignment.
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  attributes() const noexcept {
    return attrs_;
  }
  void set_attr(const std::string& key, std::string value);
  /// Attribute value or empty string when absent.
  [[nodiscard]] std::string attr(const std::string& key) const;
  [[nodiscard]] bool has_attr(const std::string& key) const;

  [[nodiscard]] const std::vector<ElementPtr>& children() const noexcept {
    return children_;
  }
  Element& add_child(std::string name);
  /// Take ownership of an already-built subtree.
  void adopt_child(ElementPtr child) { children_.push_back(std::move(child)); }
  /// First child with the given name, or nullptr.
  [[nodiscard]] const Element* child(std::string_view name) const;
  /// All children with the given name.
  [[nodiscard]] std::vector<const Element*> children_named(
      std::string_view name) const;
  /// Descend a '/'-separated path of child names; nullptr if any hop missing.
  [[nodiscard]] const Element* find(std::string_view path) const;
  /// Text of the element at `path`, or fallback when missing.
  [[nodiscard]] std::string find_text(std::string_view path,
                                      std::string fallback = "") const;

  /// Serialize this element (and subtree). `indent` < 0 → single line.
  [[nodiscard]] std::string to_string(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<ElementPtr> children_;
};

/// A parsed document: XML declaration (if any) plus the root element.
struct Document {
  std::string version = "1.0";
  std::string encoding = "UTF-8";
  ElementPtr root;

  [[nodiscard]] std::string to_string(int indent = 2) const;
};

/// Parse a complete document. Errors carry a line:column location.
Result<Document> parse(std::string_view input);

/// Escape text for use as XML character data / attribute values.
std::string escape(std::string_view text);

}  // namespace clc::xml
