#include "xml/xml.hpp"

#include <cctype>

namespace clc::xml {

// ---------------------------------------------------------------------------
// Element

void Element::set_attr(const std::string& key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(key, std::move(value));
}

std::string Element::attr(const std::string& key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return {};
}

bool Element::has_attr(const std::string& key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return true;
  }
  return false;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

const Element* Element::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

const Element* Element::find(std::string_view path) const {
  const Element* cur = this;
  std::size_t start = 0;
  while (start <= path.size() && cur != nullptr) {
    const std::size_t slash = path.find('/', start);
    const std::string_view hop = (slash == std::string_view::npos)
                                     ? path.substr(start)
                                     : path.substr(start, slash - start);
    if (!hop.empty()) cur = cur->child(hop);
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return cur;
}

std::string Element::find_text(std::string_view path,
                               std::string fallback) const {
  const Element* e = find(path);
  return e != nullptr ? e->text() : std::move(fallback);
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void Element::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto pad = [&](int d) {
    if (pretty) out.append(static_cast<std::size_t>(d) * indent, ' ');
  };
  pad(depth);
  out += '<';
  out += name_;
  for (const auto& [k, v] : attrs_) {
    out += ' ';
    out += k;
    out += "=\"";
    out += escape(v);
    out += '"';
  }
  if (text_.empty() && children_.empty()) {
    out += "/>";
    if (pretty) out += '\n';
    return;
  }
  out += '>';
  if (!text_.empty()) out += escape(text_);
  if (!children_.empty()) {
    if (pretty) out += '\n';
    for (const auto& c : children_) c->write(out, indent, depth + 1);
    pad(depth);
  }
  out += "</";
  out += name_;
  out += '>';
  if (pretty) out += '\n';
}

std::string Element::to_string(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

std::string Document::to_string(int indent) const {
  std::string out = "<?xml version=\"" + version + "\" encoding=\"" +
                    encoding + "\"?>";
  if (indent >= 0) out += '\n';
  if (root) out += root->to_string(indent);
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  Result<Document> parse_document() {
    Document doc;
    skip_prolog(doc);
    if (!skip_misc()) return error("unterminated comment or PI");
    if (eof()) return error("document has no root element");
    if (peek() != '<') return error("expected root element");
    auto root = parse_element();
    if (!root) return root.error();
    doc.root = std::move(*root);
    if (!skip_misc()) return error("unterminated trailing comment");
    skip_ws();
    if (!eof()) return error("content after root element");
    return doc;
  }

 private:
  Error error(const std::string& what) {
    return Error{Errc::parse_error, "xml:" + std::to_string(line_) + ":" +
                                        std::to_string(col_) + ": " + what};
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= in_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < in_.size() ? in_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    const char c = in_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool match(std::string_view lit) noexcept {
    if (in_.substr(pos_).substr(0, lit.size()) != lit) return false;
    for (std::size_t i = 0; i < lit.size(); ++i) advance();
    return true;
  }
  void skip_ws() noexcept {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  static bool is_name_start(char c) noexcept {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool is_name_char(char c) noexcept {
    return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  std::string parse_name() {
    std::string name;
    if (eof() || !is_name_start(peek())) return name;
    while (!eof() && is_name_char(peek())) name.push_back(advance());
    return name;
  }

  void skip_prolog(Document& doc) {
    skip_ws();
    if (!match("<?xml")) return;
    // Capture version/encoding pseudo-attributes, then find "?>".
    std::string decl;
    while (!eof() && !(peek() == '?' && peek(1) == '>')) decl.push_back(advance());
    if (!eof()) {
      advance();
      advance();
    }
    auto grab = [&](std::string_view key) -> std::string {
      const std::size_t at = decl.find(key);
      if (at == std::string::npos) return {};
      const std::size_t q1 = decl.find_first_of("\"'", at);
      if (q1 == std::string::npos) return {};
      const std::size_t q2 = decl.find(decl[q1], q1 + 1);
      if (q2 == std::string::npos) return {};
      return decl.substr(q1 + 1, q2 - q1 - 1);
    };
    if (auto v = grab("version"); !v.empty()) doc.version = v;
    if (auto e = grab("encoding"); !e.empty()) doc.encoding = e;
  }

  /// Skip whitespace, comments, PIs and DOCTYPE. False on unterminated.
  bool skip_misc() {
    for (;;) {
      skip_ws();
      if (match("<!--")) {
        bool closed = false;
        while (!eof() && !(closed = match("-->"))) advance();
        if (!closed) return false;
      } else if (match("<?")) {
        bool closed = false;
        while (!eof() && !(closed = match("?>"))) advance();
        if (!closed) return false;
      } else if (match("<!DOCTYPE")) {
        // Skip to matching '>' honoring internal-subset brackets.
        int bracket = 0;
        while (!eof()) {
          const char c = advance();
          if (c == '[') ++bracket;
          else if (c == ']') --bracket;
          else if (c == '>' && bracket == 0) break;
        }
        if (eof()) return false;
      } else {
        return true;
      }
    }
  }

  Result<std::string> parse_reference() {
    // Called after consuming '&'.
    std::string ent;
    while (!eof() && peek() != ';') {
      ent.push_back(advance());
      if (ent.size() > 10) return error("entity reference too long");
    }
    if (eof()) return error("unterminated entity reference");
    advance();  // ';'
    if (ent == "amp") return std::string("&");
    if (ent == "lt") return std::string("<");
    if (ent == "gt") return std::string(">");
    if (ent == "quot") return std::string("\"");
    if (ent == "apos") return std::string("'");
    if (!ent.empty() && ent[0] == '#') {
      long code = 0;
      try {
        code = (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X'))
                   ? std::stol(ent.substr(2), nullptr, 16)
                   : std::stol(ent.substr(1), nullptr, 10);
      } catch (...) {
        return error("bad character reference &" + ent + ";");
      }
      // Encode as UTF-8.
      std::string out;
      const auto cp = static_cast<unsigned long>(code);
      if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
      } else if (cp < 0x10000) {
        out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
      } else if (cp < 0x110000) {
        out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
      } else {
        return error("character reference out of range");
      }
      return out;
    }
    return error("unknown entity &" + ent + ";");
  }

  Result<std::string> parse_attr_value() {
    if (eof() || (peek() != '"' && peek() != '\''))
      return error("expected quoted attribute value");
    const char quote = advance();
    std::string value;
    while (!eof() && peek() != quote) {
      if (peek() == '&') {
        advance();
        auto r = parse_reference();
        if (!r) return r.error();
        value += *r;
      } else {
        value.push_back(advance());
      }
    }
    if (eof()) return error("unterminated attribute value");
    advance();  // closing quote
    return value;
  }

  Result<ElementPtr> parse_element() {
    // Caller guarantees peek() == '<'.
    advance();
    std::string name = parse_name();
    if (name.empty()) return error("expected element name");
    auto elem = std::make_unique<Element>(std::move(name));

    for (;;) {
      skip_ws();
      if (eof()) return error("unterminated start tag");
      if (peek() == '/') {
        advance();
        if (eof() || advance() != '>') return error("malformed empty-element tag");
        return elem;
      }
      if (peek() == '>') {
        advance();
        break;
      }
      std::string key = parse_name();
      if (key.empty()) return error("expected attribute name");
      skip_ws();
      if (eof() || advance() != '=') return error("expected '=' after attribute");
      skip_ws();
      auto value = parse_attr_value();
      if (!value) return value.error();
      if (elem->has_attr(key)) return error("duplicate attribute " + key);
      elem->set_attr(key, std::move(*value));
    }

    // Content until matching end tag.
    std::string text;
    for (;;) {
      if (eof()) return error("unterminated element <" + elem->name() + ">");
      if (peek() == '<') {
        if (match("<!--")) {
          while (!eof() && !match("-->")) advance();
          if (eof()) return error("unterminated comment");
          continue;
        }
        if (match("<![CDATA[")) {
          while (!eof() && !match("]]>")) text.push_back(advance());
          if (eof()) return error("unterminated CDATA");
          continue;
        }
        if (peek(1) == '/') {
          advance();
          advance();
          std::string end = parse_name();
          skip_ws();
          if (eof() || advance() != '>') return error("malformed end tag");
          if (end != elem->name())
            return error("mismatched end tag </" + end + "> for <" +
                         elem->name() + ">");
          // Normalize: trim pure-whitespace text around child elements.
          std::string_view trimmed = text;
          if (!elem->children().empty() || !text.empty()) {
            std::size_t b = 0, e = trimmed.size();
            while (b < e && std::isspace(static_cast<unsigned char>(trimmed[b]))) ++b;
            while (e > b && std::isspace(static_cast<unsigned char>(trimmed[e - 1]))) --e;
            elem->set_text(std::string(trimmed.substr(b, e - b)));
          }
          return elem;
        }
        if (match("<?")) {
          while (!eof() && !match("?>")) advance();
          if (eof()) return error("unterminated processing instruction");
          continue;
        }
        auto childr = parse_element();
        if (!childr) return childr.error();
        elem->adopt_child(std::move(*childr));
        continue;
      }
      if (peek() == '&') {
        advance();
        auto r = parse_reference();
        if (!r) return r.error();
        text += *r;
        continue;
      }
      text.push_back(advance());
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<Document> parse(std::string_view input) {
  return Parser(input).parse_document();
}

}  // namespace clc::xml
