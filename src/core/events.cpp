#include "core/events.hpp"

#include <algorithm>

namespace clc::core {

EventChannelHub::SubscriptionId EventChannelHub::subscribe_local(
    const std::string& event_type, LocalConsumer consumer) {
  const SubscriptionId id = next_id_++;
  channels_[event_type].locals.emplace(id, std::move(consumer));
  return id;
}

void EventChannelHub::unsubscribe_local(const std::string& event_type,
                                        SubscriptionId id) {
  auto it = channels_.find(event_type);
  if (it != channels_.end()) it->second.locals.erase(id);
}

Result<void> EventChannelHub::subscribe_remote(const std::string& event_type,
                                               const orb::ObjectRef& consumer) {
  if (consumer.is_nil())
    return Error{Errc::invalid_argument, "nil consumer reference"};
  auto& channel = channels_[event_type];
  for (const auto& e : channel.remotes) {
    if (e.ref == consumer)
      return Error{Errc::already_exists, "consumer already subscribed"};
  }
  channel.remotes.push_back(RemoteEntry{consumer, 0});
  return {};
}

void EventChannelHub::unsubscribe_remote(const std::string& event_type,
                                         const orb::ObjectRef& consumer) {
  auto it = channels_.find(event_type);
  if (it == channels_.end()) return;
  auto& remotes = it->second.remotes;
  remotes.erase(std::remove_if(remotes.begin(), remotes.end(),
                               [&](const RemoteEntry& e) {
                                 return e.ref == consumer;
                               }),
                remotes.end());
}

void EventChannelHub::publish(const std::string& event_type,
                              const orb::Value& event) {
  ++published_;
  auto it = channels_.find(event_type);
  if (it == channels_.end()) return;

  // Every consumer -- local callback or remote EventConsumer -- receives
  // the event boxed in an any (the push signature is
  // `oneway void push(in any event)`), so handlers are location-agnostic.
  orb::AnyValue boxed;
  // Self-describe the payload type: infer a TypeRef from the value shape.
  // Struct/enum values know their type names; primitives map directly.
  boxed.type = [&]() -> idl::TypeRef {
    if (auto* sv = event.get_if<orb::StructValue>())
      return idl::TypeRef::named(idl::TypeKind::tk_struct, sv->type_name);
    if (auto* ev = event.get_if<orb::EnumValue>())
      return idl::TypeRef::named(idl::TypeKind::tk_enum, ev->type_name);
    if (event.is<std::string>())
      return idl::TypeRef::primitive(idl::TypeKind::tk_string);
    if (event.is<double>())
      return idl::TypeRef::primitive(idl::TypeKind::tk_double);
    if (event.is<std::int32_t>())
      return idl::TypeRef::primitive(idl::TypeKind::tk_long);
    if (event.is<std::int64_t>())
      return idl::TypeRef::primitive(idl::TypeKind::tk_longlong);
    if (event.is<bool>())
      return idl::TypeRef::primitive(idl::TypeKind::tk_boolean);
    if (event.is<Bytes>())
      return idl::TypeRef::sequence(
          idl::TypeRef::primitive(idl::TypeKind::tk_octet));
    return idl::TypeRef::primitive(idl::TypeKind::tk_string);
  }();
  boxed.value = std::make_shared<orb::Value>(event);

  for (const auto& [id, consumer] : it->second.locals)
    consumer(orb::Value(boxed));

  auto& remotes = it->second.remotes;
  for (auto& entry : remotes) {
    auto r = orb_.send(entry.ref, "push", {orb::Value(boxed)});
    entry.failures = r.ok() ? 0 : entry.failures + 1;
  }
  remotes.erase(std::remove_if(remotes.begin(), remotes.end(),
                               [](const RemoteEntry& e) {
                                 return e.failures >= kMaxFailures;
                               }),
                remotes.end());
}

std::size_t EventChannelHub::consumer_count(
    const std::string& event_type) const {
  auto it = channels_.find(event_type);
  if (it == channels_.end()) return 0;
  return it->second.locals.size() + it->second.remotes.size();
}

std::vector<std::string> EventChannelHub::channels() const {
  std::vector<std::string> out;
  out.reserve(channels_.size());
  for (const auto& [name, c] : channels_) out.push_back(name);
  return out;
}

}  // namespace clc::core
