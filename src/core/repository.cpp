#include "core/repository.hpp"

namespace clc::core {

void ComponentRepository::trust_vendor(const std::string& vendor, Bytes key) {
  vendor_keys_[vendor] = std::move(key);
}

Result<void> ComponentRepository::install(const Bytes& package_bytes) {
  auto package = pkg::Package::open(package_bytes);
  if (!package) return package.error();
  const auto& d = package->description();

  if (!profile_.can_install())
    return Error{Errc::unsupported,
                 "device class '" + std::string(device_class_name(
                                        profile_.device)) +
                     "' uses components remotely and cannot install"};

  // Producer verification when we know the vendor's key.
  if (auto it = vendor_keys_.find(d.security.vendor);
      it != vendor_keys_.end()) {
    if (auto v = package->verify(it->second); !v.ok()) return v;
  }

  // Platform check: a binary we can actually run here.
  if (!package->supports(profile_.arch, profile_.os, profile_.orb))
    return Error{Errc::unsupported,
                 d.name + " has no binary for " + profile_.arch + "-" +
                     profile_.os + "-" + profile_.orb};
  if (!d.hardware.allows(profile_.arch, profile_.os, profile_.orb,
                         profile_.total_memory_kb))
    return Error{Errc::unsupported,
                 d.name + " hardware requirements exclude this node"};

  const Key key{d.name, d.version};
  if (installed_.count(key) != 0)
    return Error{Errc::already_exists,
                 d.name + " " + d.version.to_string() + " already installed"};

  // Component IDL becomes part of this node's type system.
  if (!package->idl().empty()) {
    if (auto r = types_->register_idl(package->idl()); !r.ok())
      return Error{r.error().code,
                   "IDL of " + d.name + ": " + r.error().message};
  }

  auto binary = package->binary_for(profile_.arch, profile_.os, profile_.orb);
  if (!binary) return binary.error();

  InstalledComponent ic;
  ic.description = d;
  ic.binary = std::move(*binary);
  ic.package_size = package->total_size();
  installed_.emplace(key, std::move(ic));
  raw_packages_.emplace(key, package_bytes);
  ++revision_;
  return {};
}

Result<void> ComponentRepository::remove(const std::string& name,
                                         const Version& version) {
  const Key key{name, version};
  if (installed_.erase(key) == 0)
    return Error{Errc::not_found,
                 name + " " + version.to_string() + " is not installed"};
  raw_packages_.erase(key);
  ++revision_;
  return {};
}

bool ComponentRepository::has(const std::string& name,
                              const VersionConstraint& c) const {
  return find(name, c).ok();
}

Result<const InstalledComponent*> ComponentRepository::find(
    const std::string& name, const VersionConstraint& c) const {
  const InstalledComponent* best = nullptr;
  for (const auto& [key, ic] : installed_) {
    if (key.first != name || !c.matches(key.second)) continue;
    if (best == nullptr || key.second > best->description.version) best = &ic;
  }
  if (best == nullptr)
    return Error{Errc::not_found,
                 "no installed " + name + " " + c.to_string()};
  return best;
}

Result<const InstalledComponent*> ComponentRepository::find_exact(
    const std::string& name, const Version& version) const {
  auto it = installed_.find(Key{name, version});
  if (it == installed_.end())
    return Error{Errc::not_found,
                 name + " " + version.to_string() + " is not installed"};
  return &it->second;
}

std::vector<const InstalledComponent*> ComponentRepository::list() const {
  std::vector<const InstalledComponent*> out;
  out.reserve(installed_.size());
  for (const auto& [key, ic] : installed_) out.push_back(&ic);
  return out;
}

Result<InstanceFactory> ComponentRepository::load(const std::string& name,
                                                  const Version& version) {
  auto it = installed_.find(Key{name, version});
  if (it == installed_.end())
    return Error{Errc::not_found,
                 name + " " + version.to_string() + " is not installed"};
  auto factory = ExecutorRegistry::global().resolve(it->second.binary.entry_symbol);
  if (!factory) return factory.error();
  it->second.loaded = true;
  return factory;
}

Result<void> ComponentRepository::unload(const std::string& name,
                                         const Version& version) {
  auto it = installed_.find(Key{name, version});
  if (it == installed_.end())
    return Error{Errc::not_found,
                 name + " " + version.to_string() + " is not installed"};
  if (!it->second.loaded)
    return Error{Errc::bad_state,
                 name + " " + version.to_string() + " is not loaded"};
  it->second.loaded = false;
  return {};
}

Result<std::string> ComponentRepository::idl_of(const std::string& name,
                                                const Version& version) const {
  auto raw = raw_packages_.find(Key{name, version});
  if (raw == raw_packages_.end())
    return Error{Errc::not_found,
                 name + " " + version.to_string() + " is not installed"};
  auto package = pkg::Package::open(raw->second);
  if (!package) return package.error();
  return package->idl();
}

Result<Bytes> ComponentRepository::export_package(
    const std::string& name, const Version& version,
    const NodeProfile& target_platform) const {
  auto raw = raw_packages_.find(Key{name, version});
  if (raw == raw_packages_.end())
    return Error{Errc::not_found,
                 name + " " + version.to_string() + " is not installed"};
  auto ic = installed_.find(Key{name, version});
  if (!ic->second.description.mobile)
    return Error{Errc::refused,
                 name + " is not mobile and must be used remotely"};
  auto package = pkg::Package::open(raw->second);
  if (!package) return package.error();
  // PDA-class targets get the stripped slice; full nodes the whole package
  // (they may re-export it to other platforms later).
  if (target_platform.device == DeviceClass::pda)
    return package->slice_for_platform(target_platform.arch,
                                       target_platform.os,
                                       target_platform.orb);
  if (!package->supports(target_platform.arch, target_platform.os,
                         target_platform.orb))
    return Error{Errc::unsupported,
                 name + " has no binary for the requesting platform"};
  return raw->second;
}

}  // namespace clc::core
