#include "core/introspect.hpp"

#include <sstream>

#include "xml/xml.hpp"

namespace clc::core {

std::string network_view_xml(LocalNetwork& net) {
  xml::Element root("network");
  for (Node* node : net.nodes()) {
    auto& n = root.add_child("node");
    n.set_attr("id", node->id().to_string());
    n.set_attr("endpoint", node->endpoint());
    const NodeProfile& p = node->resources().profile();
    auto& hw = n.add_child("profile");
    hw.set_attr("arch", p.arch);
    hw.set_attr("os", p.os);
    hw.set_attr("orb", p.orb);
    hw.set_attr("device", device_class_name(p.device));
    hw.set_attr("cpu-power", std::to_string(p.cpu_power));
    auto& load = n.add_child("load");
    const NodeLoad l = node->resources().load();
    load.set_attr("cpu", std::to_string(l.cpu_load));
    load.set_attr("memory-used-kb", std::to_string(l.memory_used_kb));
    load.set_attr("instances", std::to_string(l.instance_count));

    auto& palette = n.add_child("palette");
    for (const auto* ic : node->repository().list()) {
      auto& c = palette.add_child("component");
      c.set_attr("name", ic->description.name);
      c.set_attr("version", ic->description.version.to_string());
      c.set_attr("mobile", ic->description.mobile ? "true" : "false");
      if (!ic->description.summary.empty())
        c.set_text(ic->description.summary);
    }

    auto& instances = n.add_child("instances");
    for (const auto* rec : node->registry().instances()) {
      auto& i = instances.add_child("instance");
      i.set_attr("id", rec->id.to_string());
      i.set_attr("component", rec->component);
      i.set_attr("version", rec->version.to_string());
      i.set_attr("state", instance_state_name(rec->state));
      for (const auto& [port, ref] : rec->provided_ports) {
        auto& pe = i.add_child("provides");
        pe.set_attr("port", port);
        pe.set_attr("interface", ref.interface_name);
      }
      for (const auto& [port, ref] : rec->used_ports) {
        auto& ce = i.add_child("connection");
        ce.set_attr("port", port);
        ce.set_attr("to", ref.to_string());
      }
    }
  }
  xml::Document doc;
  doc.root = std::make_unique<xml::Element>(std::move(root));
  return doc.to_string();
}

std::string network_view_text(LocalNetwork& net) {
  std::ostringstream os;
  for (Node* node : net.nodes()) {
    const NodeProfile& p = node->resources().profile();
    const NodeLoad l = node->resources().load();
    os << "node " << node->id().to_string() << " (" << p.arch << "/" << p.os
       << ", " << device_class_name(p.device) << ", cpu "
       << l.cpu_load << ")\n";
    for (const auto* ic : node->repository().list()) {
      os << "  [pkg] " << ic->description.name << " "
         << ic->description.version.to_string()
         << (ic->description.mobile ? "" : " (remote-only)") << "\n";
    }
    for (const auto* rec : node->registry().instances()) {
      os << "  [run] " << rec->component << "#" << rec->id.to_string() << " "
         << instance_state_name(rec->state);
      for (const auto& [port, ref] : rec->used_ports)
        os << "  " << port << "->" << ref.interface_name;
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace clc::core
