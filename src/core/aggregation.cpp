#include "core/aggregation.hpp"

namespace clc::core {

Result<AggregationReport> run_data_parallel(
    Node& origin, InstanceId aggregator, std::size_t parts,
    const std::vector<NodeId>& volunteers) {
  auto impl = origin.container().implementation(aggregator);
  if (!impl) return impl.error();
  auto description = origin.container().description_of(aggregator);
  if (!description) return description.error();
  if (!(*description)->aggregatable)
    return Error{Errc::unsupported,
                 (*description)->name + " is not aggregatable"};

  auto chunks = (*impl)->split_work(parts);
  if (!chunks) return chunks.error();

  VersionConstraint exact;
  exact.op = VersionConstraint::Op::eq;
  exact.bound = (*description)->version;

  AggregationReport report;
  report.chunks = chunks->size();
  std::vector<Bytes> partials;
  partials.reserve(chunks->size());
  for (std::size_t i = 0; i < chunks->size(); ++i) {
    const Bytes& chunk = (*chunks)[i];
    if (!volunteers.empty()) {
      const NodeId worker = volunteers[i % volunteers.size()];
      if (worker != origin.id()) {
        auto partial = origin.process_chunk_on(worker, (*description)->name,
                                               exact, chunk);
        if (partial.ok()) {
          ++report.remote_chunks;
          partials.push_back(std::move(*partial));
          continue;
        }
        ++report.recovered_chunks;  // volunteer failed: fall through to local
      }
    }
    auto partial = (*impl)->process_chunk(chunk);
    if (!partial) return partial.error();
    partials.push_back(std::move(*partial));
  }
  auto result = (*impl)->gather(partials);
  if (!result) return result.error();
  report.result = std::move(*result);
  return report;
}

}  // namespace clc::core
