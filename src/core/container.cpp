#include "core/container.hpp"

namespace clc::core {

// ---------------------------------------------------------------------------
// InstanceContext implementation

class Container::ContextImpl final : public InstanceContext {
 public:
  ContextImpl(Container& container, InstanceId id,
              const pkg::ComponentDescription& description)
      : container_(container), id_(id), description_(description) {}

  [[nodiscard]] InstanceId id() const override { return id_; }
  [[nodiscard]] const pkg::ComponentDescription& description()
      const override {
    return description_;
  }

  Result<orb::ObjectRef> provide_port(
      const std::string& port_name,
      std::shared_ptr<orb::Servant> servant) override {
    const pkg::PortSpec* spec = description_.find_port(port_name);
    if (spec == nullptr || spec->kind != pkg::PortKind::provides)
      return Error{Errc::invalid_argument,
                   description_.name + " declares no provides-port '" +
                       port_name + "'"};
    orb::ObjectRef ref = container_.services_.orb->activate(std::move(servant));
    provided_[port_name] = ref;
    if (container_.services_.registry != nullptr)
      container_.services_.registry->record_provided_port(id_, port_name, ref);
    return ref;
  }

  [[nodiscard]] orb::ObjectRef used_port(
      const std::string& port_name) const override {
    auto it = connections_.find(port_name);
    return it == connections_.end() ? orb::kNilRef : it->second;
  }

  Result<orb::Value> call_port(const std::string& port_name,
                               const std::string& operation,
                               std::vector<orb::Value> args) override {
    const pkg::PortSpec* spec = description_.find_port(port_name);
    if (spec == nullptr || spec->kind != pkg::PortKind::uses)
      return Error{Errc::invalid_argument,
                   description_.name + " declares no uses-port '" + port_name +
                       "'"};
    auto it = connections_.find(port_name);
    if (it == connections_.end() || it->second.is_nil()) {
      // Unconnected: ask the container to resolve the dependency through
      // the network (automatic dependency management, requirement 6).
      auto resolved = require_port(*spec);
      if (!resolved) return resolved.error();
    }
    return container_.services_.orb->call(connections_.at(port_name), operation,
                                          std::move(args));
  }

  Result<void> emit(const std::string& port_name, orb::Value event) override {
    const pkg::PortSpec* spec = description_.find_port(port_name);
    if (spec == nullptr || spec->kind != pkg::PortKind::emits)
      return Error{Errc::invalid_argument,
                   description_.name + " declares no emits-port '" + port_name +
                       "'"};
    container_.services_.events->publish(spec->type, event);
    return {};
  }

  Result<void> on_event(
      const std::string& port_name,
      std::function<void(const orb::Value&)> handler) override {
    const pkg::PortSpec* spec = description_.find_port(port_name);
    if (spec == nullptr || spec->kind != pkg::PortKind::consumes)
      return Error{Errc::invalid_argument,
                   description_.name + " declares no consumes-port '" +
                       port_name + "'"};
    subscriptions_.emplace_back(
        spec->type, container_.services_.events->subscribe_local(
                        spec->type, std::move(handler)));
    return {};
  }

  Result<orb::ObjectRef> require(const std::string& component,
                                 const VersionConstraint& c) override {
    if (!container_.services_.resolver)
      return Error{Errc::unsupported, "container has no network resolver"};
    return container_.services_.resolver(component, c);
  }

  // --- container-side access
  void set_connection(const std::string& port, const orb::ObjectRef& ref) {
    connections_[port] = ref;
  }
  [[nodiscard]] const std::map<std::string, orb::ObjectRef>& connections()
      const {
    return connections_;
  }
  [[nodiscard]] const std::map<std::string, orb::ObjectRef>& provided() const {
    return provided_;
  }
  void teardown() {
    for (const auto& [type, sub] : subscriptions_)
      container_.services_.events->unsubscribe_local(type, sub);
    subscriptions_.clear();
    for (const auto& [port, ref] : provided_)
      (void)container_.services_.orb->deactivate(ref.key);
    provided_.clear();
  }

 private:
  Result<void> require_port(const pkg::PortSpec& spec) {
    // A uses-port names the interface it needs; resolve a component whose
    // matching dependency entry (if declared) or the port type provides it.
    // Resolution is by component dependency declaration when present.
    for (const auto& dep : description_.dependencies) {
      auto ref = require(dep.component, dep.constraint);
      if (ref.ok() && ref->interface_name == spec.type) {
        set_connection(spec.name, *ref);
        if (container_.services_.registry != nullptr)
          container_.services_.registry->record_connection(id_, spec.name,
                                                           *ref);
        return {};
      }
    }
    return Error{Errc::not_found,
                 "used port '" + spec.name + "' (" + spec.type +
                     ") is unconnected and no declared dependency provides it"};
  }

  Container& container_;
  InstanceId id_;
  const pkg::ComponentDescription& description_;
  std::map<std::string, orb::ObjectRef> connections_;
  std::map<std::string, orb::ObjectRef> provided_;
  std::vector<std::pair<std::string, EventChannelHub::SubscriptionId>>
      subscriptions_;
};

// ---------------------------------------------------------------------------
// Container

Container::Container(Services services, std::uint64_t seed)
    : services_(std::move(services)), rng_(seed) {}

Container::~Container() = default;
Container::Entry::Entry() = default;
Container::Entry::~Entry() = default;

Result<Container::Entry*> Container::entry(InstanceId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end())
    return Error{Errc::not_found, "no instance " + id.to_string()};
  return it->second.get();
}

Result<InstanceId> Container::create(const std::string& component,
                                     const VersionConstraint& constraint) {
  auto installed = services_.repository->find(component, constraint);
  if (!installed) return installed.error();
  const pkg::ComponentDescription& d = (*installed)->description;

  auto factory =
      services_.repository->load(component, d.version);
  if (!factory) return factory.error();

  const InstanceId id{(services_.orb->node_id().value << 32) |
                      (next_instance_++ & 0xffffffff)};
  if (auto r = services_.resources->reserve(id, d); !r.ok()) return r.error();

  auto e = std::make_unique<Entry>();
  e->id = id;
  e->description = d;
  e->impl = (*factory)();
  if (e->impl == nullptr) {
    services_.resources->release(id);
    return Error{Errc::bad_state, "factory for " + component + " returned null"};
  }
  e->context = std::make_unique<ContextImpl>(*this, id, e->description);

  Entry* raw = e.get();
  entries_.emplace(id, std::move(e));
  if (auto r = raw->impl->initialize(*raw->context); !r.ok()) {
    raw->context->teardown();
    services_.resources->release(id);
    entries_.erase(id);
    return r.error();
  }

  if (services_.registry != nullptr) {
    InstanceRecord rec;
    rec.id = id;
    rec.component = component;
    rec.version = d.version;
    rec.state = InstanceState::created;
    rec.provided_ports = raw->context->provided();
    services_.registry->record_instance(rec);
  }
  if (auto r = activate(id); !r.ok()) return r.error();
  return id;
}

Result<void> Container::activate(InstanceId id) {
  auto e = entry(id);
  if (!e) return e.error();
  if ((*e)->state == InstanceState::active) return {};
  (*e)->impl->activate();
  (*e)->state = InstanceState::active;
  if (services_.registry != nullptr)
    services_.registry->update_state(id, InstanceState::active);
  return {};
}

Result<void> Container::passivate(InstanceId id) {
  auto e = entry(id);
  if (!e) return e.error();
  if ((*e)->state != InstanceState::active)
    return Error{Errc::bad_state, "instance is not active"};
  (*e)->impl->passivate();
  (*e)->state = InstanceState::passive;
  if (services_.registry != nullptr)
    services_.registry->update_state(id, InstanceState::passive);
  return {};
}

Result<void> Container::destroy(InstanceId id) {
  auto e = entry(id);
  if (!e) return e.error();
  (*e)->context->teardown();
  services_.resources->release(id);
  if (services_.registry != nullptr) services_.registry->remove_instance(id);
  entries_.erase(id);
  return {};
}

Result<orb::ObjectRef> Container::provided_port(InstanceId id,
                                                const std::string& port) const {
  auto e = entry(id);
  if (!e) return e.error();
  const auto& provided = (*e)->context->provided();
  auto it = provided.find(port);
  if (it == provided.end())
    return Error{Errc::not_found,
                 (*e)->description.name + " exposes no port '" + port + "'"};
  return it->second;
}

Result<void> Container::connect(InstanceId id, const std::string& port,
                                const orb::ObjectRef& target) {
  auto e = entry(id);
  if (!e) return e.error();
  const pkg::PortSpec* spec = (*e)->description.find_port(port);
  if (spec == nullptr || spec->kind != pkg::PortKind::uses)
    return Error{Errc::invalid_argument,
                 (*e)->description.name + " declares no uses-port '" + port +
                     "'"};
  // Interface compatibility check when both sides are known.
  if (!target.interface_name.empty() &&
      services_.orb->repository().find_interface(target.interface_name) !=
          nullptr &&
      !services_.orb->repository().is_a(target.interface_name, spec->type))
    return Error{Errc::invalid_argument,
                 "port '" + port + "' needs " + spec->type + ", got " +
                     target.interface_name};
  (*e)->context->set_connection(port, target);
  if (services_.registry != nullptr)
    services_.registry->record_connection(id, port, target);
  return {};
}

Result<Container::Snapshot> Container::capture(InstanceId id) {
  auto e = entry(id);
  if (!e) return e.error();
  if (!(*e)->description.mobile && !(*e)->description.replicable)
    return Error{Errc::refused,
                 (*e)->description.name + " is neither mobile nor replicable"};
  if ((*e)->state == InstanceState::active) {
    if (auto r = passivate(id); !r.ok()) return r.error();
  }
  (*e)->state = InstanceState::migrating;
  if (services_.registry != nullptr)
    services_.registry->update_state(id, InstanceState::migrating);
  auto state = (*e)->impl->externalize_state();
  if (!state) return state.error();
  Snapshot s;
  s.component = (*e)->description.name;
  s.version = (*e)->description.version;
  s.state = std::move(*state);
  s.connections = (*e)->context->connections();
  return s;
}

Result<Container::Snapshot> Container::checkpoint(InstanceId id) {
  auto e = entry(id);
  if (!e) return e.error();
  if (!(*e)->description.mobile && !(*e)->description.replicable)
    return Error{Errc::refused,
                 (*e)->description.name + " is neither mobile nor replicable"};
  auto state = (*e)->impl->externalize_state();
  if (!state) return state.error();
  Snapshot s;
  s.component = (*e)->description.name;
  s.version = (*e)->description.version;
  s.state = std::move(*state);
  s.connections = (*e)->context->connections();
  return s;
}

std::vector<InstanceId> Container::instance_ids() const {
  std::vector<InstanceId> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) out.push_back(id);
  return out;
}

void Container::destroy_all() {
  while (!entries_.empty()) (void)destroy(entries_.begin()->first);
}

Result<InstanceId> Container::restore(const Snapshot& snapshot) {
  VersionConstraint exact;
  exact.op = VersionConstraint::Op::eq;
  exact.bound = snapshot.version;
  auto id = create(snapshot.component, exact);
  if (!id) return id.error();
  auto e = entry(*id);
  if (auto r = (*e)->impl->internalize_state(snapshot.state); !r.ok()) {
    (void)destroy(*id);
    return r.error();
  }
  for (const auto& [port, target] : snapshot.connections) {
    if (auto r = connect(*id, port, target); !r.ok()) {
      (void)destroy(*id);
      return r.error();
    }
  }
  return *id;
}

Result<ComponentInstance*> Container::implementation(InstanceId id) const {
  auto e = entry(id);
  if (!e) return e.error();
  return (*e)->impl.get();
}

Result<const pkg::ComponentDescription*> Container::description_of(
    InstanceId id) const {
  auto e = entry(id);
  if (!e) return e.error();
  return &(*e)->description;
}

Result<InstanceId> Container::find_active(const std::string& component,
                                          const VersionConstraint& c) const {
  for (const auto& [id, e] : entries_) {
    if (e->description.name == component && c.matches(e->description.version) &&
        e->state == InstanceState::active)
      return id;
  }
  return Error{Errc::not_found, "no active instance of " + component};
}

}  // namespace clc::core
