#include "core/proto.hpp"

#include <cstdio>

namespace clc::core {

std::int64_t ProtoMessage::field_int(const std::string& key,
                                     std::int64_t fallback) const {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return fallback;
  }
}

double ProtoMessage::field_double(const std::string& key,
                                  double fallback) const {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

void ProtoMessage::set_double(const std::string& key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  fields[key] = buf;
}

Bytes ProtoMessage::encode() const {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_string(kind);
  w.write_ulonglong(sender.value);
  w.write_ulong(static_cast<std::uint32_t>(fields.size()));
  for (const auto& [k, v] : fields) {
    w.write_string(k);
    w.write_string(v);
  }
  w.write_bytes(blob);
  return w.take();
}

Result<ProtoMessage> ProtoMessage::decode(BytesView data) {
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
  ProtoMessage m;
  auto kind = r.read_string();
  if (!kind) return kind.error();
  m.kind = std::move(*kind);
  auto sender = r.read_ulonglong();
  if (!sender) return sender.error();
  m.sender = NodeId{*sender};
  auto count = r.read_ulong();
  if (!count) return count.error();
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto k = r.read_string();
    if (!k) return k.error();
    auto v = r.read_string();
    if (!v) return v.error();
    m.fields.emplace(std::move(*k), std::move(*v));
  }
  auto blob = r.read_bytes();
  if (!blob) return blob.error();
  m.blob = std::move(*blob);
  return m;
}

}  // namespace clc::core
