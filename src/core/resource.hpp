// Resource Manager: the node's reflection of its own hardware (Fig. 1).
//
// Exposes static characteristics (CPU type, OS, ORB, device class, total
// memory, relative CPU power) and dynamic system information (CPU load,
// memory in use, bandwidth) -- exactly the two kinds of node information
// §2.4.1 requires. The manager also does QoS admission: placing an instance
// reserves the CPU/memory its description declares, and `can_host` is the
// filter the Distributed Registry applies before considering a node for
// placement.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "pkg/descriptor.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"

namespace clc::core {

/// How capable a node is; PDAs integrate as peers with remote-only use
/// (paper requirement 8).
enum class DeviceClass { server, workstation, pda };

const char* device_class_name(DeviceClass c) noexcept;

/// Static node characteristics.
struct NodeProfile {
  std::string arch = "x86_64";
  std::string os = "linux";
  std::string orb = "clc";
  DeviceClass device = DeviceClass::workstation;
  double cpu_power = 1.0;            // relative to a reference workstation
  std::uint64_t total_memory_kb = 512 * 1024;
  double link_bandwidth_kbps = 100000;  // node's uplink

  [[nodiscard]] bool can_install() const noexcept {
    // PDA-class devices use components remotely; they never host binaries.
    return device != DeviceClass::pda;
  }
};

/// Dynamic load snapshot, as shipped in heartbeats.
struct NodeLoad {
  double cpu_load = 0.0;             // 0..1+ (can oversubscribe)
  std::uint64_t memory_used_kb = 0;
  double bandwidth_used_kbps = 0.0;
  std::uint32_t instance_count = 0;
};

class ResourceManager {
 public:
  /// `metrics` (optional) publishes the load snapshot as "resource.*"
  /// gauges every recompute; the manager never owns a registry.
  explicit ResourceManager(NodeProfile profile,
                           obs::MetricsRegistry* metrics = nullptr)
      : profile_(std::move(profile)) {
    if (metrics != nullptr) {
      cpu_load_gauge_ = &metrics->gauge("resource.cpu_load");
      memory_used_gauge_ = &metrics->gauge("resource.memory_used_kb");
      instance_count_gauge_ = &metrics->gauge("resource.instance_count");
    }
  }

  [[nodiscard]] const NodeProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] NodeLoad load() const noexcept { return load_; }

  /// External (non-component) load, e.g. the owner using their workstation;
  /// the volunteer-computing experiments drive this.
  void set_ambient_cpu_load(double load) { ambient_cpu_ = load; recompute(); }
  [[nodiscard]] double ambient_cpu_load() const noexcept { return ambient_cpu_; }

  /// QoS admission filter: does this node satisfy the component's hardware
  /// requirements and have headroom for its QoS declaration?
  [[nodiscard]] bool can_host(const pkg::ComponentDescription& d) const;

  /// Reserve resources for a placed instance; fails if that would exceed
  /// the node (admission control).
  Result<void> reserve(const InstanceId& id,
                       const pkg::ComponentDescription& d);
  void release(const InstanceId& id);
  [[nodiscard]] std::size_t reservations() const noexcept {
    return reserved_.size();
  }

  /// Headroom metrics used by placement scoring.
  [[nodiscard]] double cpu_headroom() const noexcept {
    const double idle = 1.0 - load_.cpu_load;
    return idle > 0 ? idle * profile_.cpu_power : 0.0;
  }
  [[nodiscard]] std::uint64_t memory_free_kb() const noexcept {
    return profile_.total_memory_kb > load_.memory_used_kb
               ? profile_.total_memory_kb - load_.memory_used_kb
               : 0;
  }

 private:
  struct Reservation {
    double cpu = 0;
    std::uint64_t memory_kb = 0;
  };
  void recompute();

  NodeProfile profile_;
  NodeLoad load_;
  double ambient_cpu_ = 0.0;
  std::map<InstanceId, Reservation> reserved_;
  obs::Gauge* cpu_load_gauge_ = nullptr;
  obs::Gauge* memory_used_gauge_ = nullptr;
  obs::Gauge* instance_count_gauge_ = nullptr;
};

}  // namespace clc::core
