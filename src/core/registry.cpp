#include "core/registry.hpp"

namespace clc::core {

const char* instance_state_name(InstanceState s) noexcept {
  switch (s) {
    case InstanceState::created: return "created";
    case InstanceState::active: return "active";
    case InstanceState::passive: return "passive";
    case InstanceState::migrating: return "migrating";
    case InstanceState::destroyed: return "destroyed";
  }
  return "?";
}

void ComponentRegistry::record_instance(const InstanceRecord& record) {
  instances_[record.id] = record;
}

void ComponentRegistry::update_state(InstanceId id, InstanceState state) {
  auto it = instances_.find(id);
  if (it != instances_.end()) it->second.state = state;
}

void ComponentRegistry::record_provided_port(InstanceId id,
                                             const std::string& port,
                                             const orb::ObjectRef& ref) {
  auto it = instances_.find(id);
  if (it != instances_.end()) it->second.provided_ports[port] = ref;
}

void ComponentRegistry::record_connection(InstanceId id,
                                          const std::string& port,
                                          const orb::ObjectRef& target) {
  auto it = instances_.find(id);
  if (it != instances_.end()) it->second.used_ports[port] = target;
}

void ComponentRegistry::remove_instance(InstanceId id) {
  instances_.erase(id);
}

const InstanceRecord* ComponentRegistry::instance(InstanceId id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

std::vector<const InstanceRecord*> ComponentRegistry::instances() const {
  std::vector<const InstanceRecord*> out;
  out.reserve(instances_.size());
  for (const auto& [id, rec] : instances_) out.push_back(&rec);
  return out;
}

std::vector<const InstanceRecord*> ComponentRegistry::instances_of(
    const std::string& component) const {
  std::vector<const InstanceRecord*> out;
  for (const auto& [id, rec] : instances_) {
    if (rec.component == component) out.push_back(&rec);
  }
  return out;
}

std::vector<ConnectionRecord> ComponentRegistry::assembly() const {
  std::vector<ConnectionRecord> out;
  for (const auto& [id, rec] : instances_) {
    for (const auto& [port, target] : rec.used_ports)
      out.push_back(ConnectionRecord{id, port, target});
  }
  return out;
}

std::vector<QueryHit> ComponentRegistry::match(const ComponentQuery& q) const {
  std::vector<QueryHit> hits;
  const RegistryDigest d = digest();
  for (const auto& c : d.components) {
    if (!q.matches(c)) continue;
    QueryHit h;
    h.node = node_;
    h.component = c.name;
    h.version = c.version;
    h.mobile = c.mobile;
    h.cost_per_use = c.cost_per_use;
    h.node_cpu_load = d.cpu_load;
    h.node_device = d.device;
    hits.push_back(std::move(h));
  }
  return hits;
}

RegistryDigest ComponentRegistry::digest() const {
  RegistryDigest d;
  d.node = node_;
  for (const auto* ic : repository_.list()) {
    ComponentSummary s;
    s.name = ic->description.name;
    s.version = ic->description.version;
    s.mobile = ic->description.mobile;
    s.cost_per_use = ic->description.license.cost_per_use;
    d.components.push_back(std::move(s));
  }
  const NodeLoad load = resources_.load();
  d.cpu_load = load.cpu_load;
  d.memory_free_kb = resources_.memory_free_kb();
  d.device = resources_.profile().device;
  d.revision = repository_.revision();
  return d;
}

}  // namespace clc::core
