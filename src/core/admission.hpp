// Server-side admission control (overload robustness, DESIGN.md §16).
//
// Each Node owns one AdmissionController gating every dispatched request.
// The controller keeps a fluid model of the dispatch queue: admitted calls
// deposit their estimated service cost into a backlog that drains at the
// node's service rate, so the current queue-delay estimate is simply
// backlog / drain_rate. The model is exact under the deterministic
// virtual-time harness (where dispatch is inline and a real queue never
// forms) and a good first-order estimate under the threaded TCP runtime --
// either way admission decisions are a pure function of (config, admitted
// history, clock), which keeps every overload scenario replayable.
//
// Two shedding mechanisms layer on top:
//  * A hard bound: application calls shed once the delay estimate exceeds
//    max_queue_delay. Control-plane calls (cohesion heartbeats, failover
//    checkpoints, directory traffic) get extra headroom on top of that
//    bound, so control traffic is never shed before application traffic --
//    under overload the cluster keeps agreeing on who is alive ("shed !=
//    dead") while it sheds user work.
//  * CoDel-style early shedding: if the delay estimate stays above
//    codel_target for a full codel_interval, the controller starts
//    shedding application calls at increasing frequency (interval /
//    sqrt(drop_count)) until the delay drops back below target. This keeps
//    the standing queue short instead of letting every request ride the
//    hard bound.
//
// Shed calls are answered with a BUSY reply carrying Errc::overloaded --
// retryable, but deliberately not a circuit-breaker failure.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/result.hpp"

namespace clc::core {

/// Priority class of a dispatched call. Control covers the clc::* internal
/// services (cohesion, failover, directory, zone routing); everything else
/// is application traffic and sheds first.
enum class CallClass : std::uint8_t { control = 0, application = 1 };

struct AdmissionConfig {
  /// Pass-through until enabled: every call admits, nothing is modeled.
  /// Nodes construct with admission disabled so existing deployments are
  /// byte- and behavior-identical; overload tiers switch it on.
  bool enabled = false;
  /// Microseconds of service work drained per microsecond of wall time
  /// (~ cores x relative cpu power of the node).
  double drain_rate = 1.0;
  /// Hard bound: application calls shed once the queue-delay estimate
  /// exceeds this. LoadManager tightens/relaxes it at run time.
  Duration max_queue_delay = milliseconds(100);
  /// Control calls are only shed beyond max_queue_delay * (1 + headroom),
  /// i.e. strictly after application traffic.
  double control_headroom = 1.0;
  /// CoDel knobs: sustained delay above target for a full interval starts
  /// early shedding.
  Duration codel_target = milliseconds(5);
  Duration codel_interval = milliseconds(100);
  /// Service-cost estimate charged per admitted call when the caller does
  /// not supply a measured one.
  Duration default_app_cost = microseconds(200);
  Duration control_cost = microseconds(10);
  /// Learned per-op cost (DESIGN.md §17): once an operation has this many
  /// observed service-time samples, the EWMA of those observations replaces
  /// the static per-class default as its admission charge. Until then the
  /// static default stands (the estimator stays a fallback-safe prior).
  std::uint32_t learned_cost_min_samples = 8;
  double learned_cost_alpha = 0.125;  // EWMA gain for observed service time
  /// Credit window advertised when unpressured (delay <= codel_target no
  /// hint is sent at all); shrinks toward 1 as the delay approaches the
  /// hard bound.
  std::uint32_t credit_full_window = 32;
  /// Floor below which LoadManager tightening cannot push max_queue_delay.
  Duration min_queue_delay = milliseconds(5);
};

class AdmissionController {
 public:
  explicit AdmissionController(obs::MetricsRegistry& metrics,
                               AdmissionConfig config = {});

  /// Gate one call at dispatch time. Ok admits the call and charges `cost`
  /// (or the per-class default when 0) to the backlog; Errc::overloaded
  /// sheds it. Deterministic in (state, now).
  Result<void> admit(CallClass cls, TimePoint now, Duration cost = 0);

  /// Current queue-delay estimate in microseconds (drains lazily to now).
  [[nodiscard]] Duration queue_delay(TimePoint now);
  /// True once the delay estimate crosses codel_target: replies should
  /// start carrying credit hints.
  [[nodiscard]] bool under_pressure(TimePoint now);
  /// Suggested per-client in-flight window; 0 = unpressured, no hint.
  [[nodiscard]] std::uint32_t credit_window(TimePoint now);

  /// LoadManager knobs: scale the hard bound down (factor < 1) when p99
  /// queue delay breaches the SLO, back up (factor > 1) when healthy.
  /// Clamped to [min_queue_delay, config.max_queue_delay].
  void tighten(double factor);
  [[nodiscard]] Duration max_queue_delay() const;

  /// Feed one observed dispatch service time (µs) for an operation into
  /// the learned cost estimator. Cheap; called after every dispatch.
  void record_service_time(const std::string& op_key,
                           std::uint64_t service_us);
  /// EWMA cost for an operation, or 0 (meaning "use the static default")
  /// until learned_cost_min_samples observations have arrived.
  [[nodiscard]] Duration learned_cost(const std::string& op_key) const;
  /// Number of operations with a warmed (trusted) learned cost.
  [[nodiscard]] std::size_t learned_op_count() const;

  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;
  /// Replace the whole config (tests/benches); resets the model state.
  void configure(AdmissionConfig config);
  [[nodiscard]] AdmissionConfig config() const;

  // Introspection (mirrors the admission.* metrics).
  [[nodiscard]] std::uint64_t admitted_count() const { return admitted_->value(); }
  [[nodiscard]] std::uint64_t shed_count() const { return shed_->value(); }
  [[nodiscard]] std::uint64_t shed_control_count() const {
    return shed_control_->value();
  }

 private:
  struct OpCost {
    double ewma_us = 0;
    std::uint64_t samples = 0;
  };

  /// Drain the backlog to `now`; returns the delay estimate in µs.
  Duration drain_locked(TimePoint now);
  Result<void> shed_locked(CallClass cls, const char* why, Duration delay);

  mutable std::mutex mutex_;
  std::map<std::string, OpCost> op_costs_;  // learned per-op service time
  AdmissionConfig config_;
  Duration max_queue_delay_;   // live hard bound (LoadManager-adjusted)
  double backlog_us_ = 0;      // outstanding service work, µs
  TimePoint last_drain_ = 0;
  // CoDel state.
  TimePoint first_above_ = 0;  // when sustained-above-target becomes actionable
  bool dropping_ = false;
  std::uint64_t drop_count_ = 0;
  TimePoint drop_next_ = 0;

  obs::Counter* admitted_;
  obs::Counter* admitted_control_;
  obs::Counter* shed_;
  obs::Counter* shed_capacity_;
  obs::Counter* shed_codel_;
  obs::Counter* shed_control_;
  obs::Gauge* backlog_gauge_;
  obs::Gauge* bound_gauge_;
  obs::Histogram* queue_delay_us_;
};

}  // namespace clc::core
