#include "core/resource.hpp"

namespace clc::core {

const char* device_class_name(DeviceClass c) noexcept {
  switch (c) {
    case DeviceClass::server: return "server";
    case DeviceClass::workstation: return "workstation";
    case DeviceClass::pda: return "pda";
  }
  return "?";
}

bool ResourceManager::can_host(const pkg::ComponentDescription& d) const {
  if (!profile_.can_install()) return false;
  if (!d.hardware.allows(profile_.arch, profile_.os, profile_.orb,
                         profile_.total_memory_kb))
    return false;
  // Effective CPU demand scales inversely with node power: a 0.5-CPU
  // component on a 2x node consumes 0.25 of it.
  const double demand = d.qos.max_cpu_load / profile_.cpu_power;
  if (load_.cpu_load + demand > 1.0 + 1e-9) return false;
  if (d.qos.max_memory_kb > memory_free_kb()) return false;
  return true;
}

Result<void> ResourceManager::reserve(const InstanceId& id,
                                      const pkg::ComponentDescription& d) {
  if (reserved_.count(id) != 0)
    return Error{Errc::already_exists,
                 "instance " + id.to_string() + " already reserved"};
  if (!can_host(d))
    return Error{Errc::no_resources,
                 "node cannot host " + d.name + " (QoS admission failed)"};
  Reservation r;
  r.cpu = d.qos.max_cpu_load / profile_.cpu_power;
  r.memory_kb = d.qos.max_memory_kb;
  reserved_.emplace(id, r);
  recompute();
  return {};
}

void ResourceManager::release(const InstanceId& id) {
  reserved_.erase(id);
  recompute();
}

void ResourceManager::recompute() {
  NodeLoad l;
  l.cpu_load = ambient_cpu_;
  for (const auto& [id, r] : reserved_) {
    l.cpu_load += r.cpu;
    l.memory_used_kb += r.memory_kb;
  }
  l.instance_count = static_cast<std::uint32_t>(reserved_.size());
  load_ = l;
  if (cpu_load_gauge_ != nullptr) {
    cpu_load_gauge_->set(l.cpu_load);
    memory_used_gauge_->set(static_cast<double>(l.memory_used_kb));
    instance_count_gauge_->set(static_cast<double>(l.instance_count));
  }
}

}  // namespace clc::core
