// Component Repository: per-node store of installed component packages
// (Fig. 1, lower half).
//
// Installation verifies the producer signature when the vendor's key is
// known (§2.1.1 security requirement), checks that the package ships a
// binary loadable on this node's platform, registers the package IDL into
// the node's Interface Repository, and resolves the binary's entry symbol
// through the ExecutorRegistry so instances can be created. Multiple
// versions of a component install side by side; dependency resolution
// picks the best one satisfying the constraint.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/resource.hpp"
#include "idl/repository.hpp"
#include "pkg/package.hpp"

namespace clc::core {

struct InstalledComponent {
  pkg::ComponentDescription description;
  pkg::BinaryImpl binary;          // the platform-matching binary
  std::uint64_t package_size = 0;  // full package size (fetch accounting)
  bool loaded = false;             // factory resolved ("DLL" mapped)
};

class ComponentRepository {
 public:
  ComponentRepository(NodeProfile profile,
                      std::shared_ptr<idl::InterfaceRepository> types)
      : profile_(std::move(profile)), types_(std::move(types)) {}

  /// Trust a vendor: packages claiming this vendor must verify against the
  /// key; packages from unknown vendors install unverified (and are flagged).
  void trust_vendor(const std::string& vendor, Bytes key);

  /// Install from package bytes (the Component Acceptor hands bytes here).
  Result<void> install(const Bytes& package_bytes);

  Result<void> remove(const std::string& name, const Version& version);

  [[nodiscard]] bool has(const std::string& name,
                         const VersionConstraint& c) const;
  /// Best (highest) installed version satisfying the constraint.
  [[nodiscard]] Result<const InstalledComponent*> find(
      const std::string& name, const VersionConstraint& c) const;
  [[nodiscard]] Result<const InstalledComponent*> find_exact(
      const std::string& name, const Version& version) const;

  [[nodiscard]] std::vector<const InstalledComponent*> list() const;
  [[nodiscard]] std::size_t size() const noexcept { return installed_.size(); }

  /// Load = resolve the entry symbol to a factory (dlopen+dlsym analogue).
  Result<InstanceFactory> load(const std::string& name,
                               const Version& version);
  /// Unload bookkeeping (refused while instances exist -- the container
  /// tracks that; here we only flip the flag).
  Result<void> unload(const std::string& name, const Version& version);

  /// Raw package bytes for shipping this component to another node
  /// (network-as-repository, §2.4.3). Sliced for the requesting platform.
  [[nodiscard]] Result<Bytes> export_package(
      const std::string& name, const Version& version,
      const NodeProfile& target_platform) const;

  /// The IDL text shipped inside an installed component's package (shared
  /// with peers so they can invoke the component's interfaces dynamically;
  /// available even for non-mobile components).
  [[nodiscard]] Result<std::string> idl_of(const std::string& name,
                                           const Version& version) const;

  /// Install/version-change counter; heartbeat digests use it to detect
  /// "repository changed since last digest".
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  /// Every installed package in raw (wire) form -- the node's persistent
  /// "disk" image, snapshotted on crash and re-installed on restart.
  [[nodiscard]] std::vector<Bytes> raw_package_images() const {
    std::vector<Bytes> out;
    out.reserve(raw_packages_.size());
    for (const auto& [key, bytes] : raw_packages_) out.push_back(bytes);
    return out;
  }

  /// Crash teardown: drop every installed package from memory (the caller
  /// holds the disk image and re-installs after restart). Trusted vendor
  /// keys persist -- they model configuration, not run-time state.
  void clear() {
    installed_.clear();
    raw_packages_.clear();
    ++revision_;
  }

 private:
  using Key = std::pair<std::string, Version>;

  NodeProfile profile_;
  std::shared_ptr<idl::InterfaceRepository> types_;
  std::map<Key, InstalledComponent> installed_;
  std::map<Key, Bytes> raw_packages_;
  std::map<std::string, Bytes> vendor_keys_;
  std::uint64_t revision_ = 0;
};

}  // namespace clc::core
