// Push event channels (§2.1.2).
//
// "For each event kind produced by a component, the framework opens a push
// event channel. Components can subscribe to this channel to express its
// interest in the event kind produced by the component." Channels are keyed
// by event type name; consumers are either local callbacks or remote
// clc::EventConsumer object references reached by oneway push() through the
// ORB (the paper's notification-service role).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "orb/orb.hpp"

namespace clc::core {

class EventChannelHub {
 public:
  explicit EventChannelHub(orb::Orb& orb) : orb_(orb) {}

  using LocalConsumer = std::function<void(const orb::Value&)>;
  /// Token to unsubscribe a local consumer.
  using SubscriptionId = std::uint64_t;

  SubscriptionId subscribe_local(const std::string& event_type,
                                 LocalConsumer consumer);
  void unsubscribe_local(const std::string& event_type, SubscriptionId id);

  /// Remote consumer: must implement clc::EventConsumer.
  Result<void> subscribe_remote(const std::string& event_type,
                                const orb::ObjectRef& consumer);
  void unsubscribe_remote(const std::string& event_type,
                          const orb::ObjectRef& consumer);

  /// Push one event to every subscriber. Remote delivery is best-effort
  /// oneway; unreachable consumers are dropped from the channel after
  /// `max_failures` consecutive failures.
  void publish(const std::string& event_type, const orb::Value& event);

  [[nodiscard]] std::size_t consumer_count(const std::string& event_type) const;
  [[nodiscard]] std::vector<std::string> channels() const;

  /// Events published per channel (benchmarks).
  [[nodiscard]] std::uint64_t published_count() const noexcept {
    return published_;
  }

 private:
  struct RemoteEntry {
    orb::ObjectRef ref;
    int failures = 0;
  };
  struct Channel {
    std::map<SubscriptionId, LocalConsumer> locals;
    std::vector<RemoteEntry> remotes;
  };
  static constexpr int kMaxFailures = 3;

  orb::Orb& orb_;
  std::map<std::string, Channel> channels_;
  SubscriptionId next_id_ = 1;
  std::uint64_t published_ = 0;
};

/// Helper servant adapting a callback into a clc::EventConsumer object.
class CallbackEventConsumer : public orb::Servant {
 public:
  explicit CallbackEventConsumer(
      std::function<void(const orb::Value&)> handler)
      : handler_(std::move(handler)) {}

  [[nodiscard]] std::string interface_name() const override {
    return "clc::EventConsumer";
  }
  Result<void> dispatch(orb::ServerRequest& req) override {
    if (req.operation() != "push")
      return Error{Errc::unsupported, "EventConsumer only handles push"};
    handler_(req.arg(0));
    return {};
  }

 private:
  std::function<void(const orb::Value&)> handler_;
};

}  // namespace clc::core
