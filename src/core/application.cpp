#include "core/application.hpp"

namespace clc::core {

// ---------------------------------------------------------------------------
// AssemblySpec XML

std::string AssemblySpec::to_xml() const {
  xml::Element root("assembly");
  root.set_attr("name", name);
  for (const auto& i : instances) {
    auto& e = root.add_child("instance");
    e.set_attr("name", i.name);
    e.set_attr("component", i.component);
    e.set_attr("constraint", i.constraint.to_string());
    if (i.binding == Binding::remote) e.set_attr("binding", "remote");
    if (i.binding == Binding::fetch_local) e.set_attr("binding", "fetch-local");
  }
  for (const auto& c : connections) {
    auto& e = root.add_child("connection");
    e.set_attr("from", c.from);
    e.set_attr("port", c.from_port);
    e.set_attr("to", c.to);
    if (!c.to_port.empty()) e.set_attr("to-port", c.to_port);
  }
  xml::Document doc;
  doc.root = std::make_unique<xml::Element>(std::move(root));
  return doc.to_string();
}

Result<AssemblySpec> AssemblySpec::from_xml(std::string_view xml_text) {
  auto doc = xml::parse(xml_text);
  if (!doc) return doc.error();
  const xml::Element& root = *doc->root;
  if (root.name() != "assembly")
    return Error{Errc::parse_error, "expected <assembly> root"};
  AssemblySpec spec;
  spec.name = root.attr("name");
  if (spec.name.empty())
    return Error{Errc::parse_error, "assembly missing name"};
  for (const auto* e : root.children_named("instance")) {
    InstanceSpec i;
    i.name = e->attr("name");
    i.component = e->attr("component");
    if (i.name.empty() || i.component.empty())
      return Error{Errc::parse_error, "instance missing name or component"};
    for (const auto& other : spec.instances) {
      if (other.name == i.name)
        return Error{Errc::parse_error, "duplicate instance " + i.name};
    }
    auto c = VersionConstraint::parse(
        e->has_attr("constraint") ? e->attr("constraint") : "any");
    if (!c) return c.error();
    i.constraint = *c;
    const std::string binding = e->attr("binding");
    if (binding == "remote") {
      i.binding = Binding::remote;
    } else if (binding == "fetch-local") {
      i.binding = Binding::fetch_local;
    } else if (!binding.empty() && binding != "auto") {
      return Error{Errc::parse_error, "unknown binding '" + binding + "'"};
    }
    spec.instances.push_back(std::move(i));
  }
  auto has_instance = [&](const std::string& n) {
    for (const auto& i : spec.instances) {
      if (i.name == n) return true;
    }
    return false;
  };
  for (const auto* e : root.children_named("connection")) {
    ConnectionSpec c;
    c.from = e->attr("from");
    c.from_port = e->attr("port");
    c.to = e->attr("to");
    c.to_port = e->attr("to-port");
    if (c.from.empty() || c.from_port.empty() || c.to.empty())
      return Error{Errc::parse_error, "connection missing from/port/to"};
    if (!has_instance(c.from) || !has_instance(c.to))
      return Error{Errc::parse_error,
                   "connection references unknown instance"};
    spec.connections.push_back(std::move(c));
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Application deployment

Result<Application> Application::deploy(Node& origin,
                                        const AssemblySpec& spec) {
  Application app(origin);
  app.name_ = spec.name;

  // Run-time placement: every instance goes through the network resolver.
  for (const auto& i : spec.instances) {
    auto bound = origin.resolve(i.component, i.constraint, i.binding);
    if (!bound)
      return Error{bound.error().code,
                   "deploying " + spec.name + ": instance '" + i.name + "' (" +
                       i.component + "): " + bound.error().message};
    app.bound_.emplace(i.name, std::move(*bound));
  }

  // Wire the user-stated connection pattern.
  for (const auto& c : spec.connections) {
    auto target = app.port(c.to, c.to_port);
    if (!target)
      return Error{target.error().code,
                   "deploying " + spec.name + ": connection to '" + c.to +
                       "': " + target.error().message};
    const BoundComponent& from = app.bound_.at(c.from);
    if (auto r = origin.connect_remote(from, c.from_port, *target); !r.ok())
      return Error{r.error().code,
                   "deploying " + spec.name + ": connection " + c.from + "." +
                       c.from_port + ": " + r.error().message};
  }
  return app;
}

Result<const BoundComponent*> Application::instance(
    const std::string& instance_name) const {
  auto it = bound_.find(instance_name);
  if (it == bound_.end())
    return Error{Errc::not_found,
                 name_ + " has no instance '" + instance_name + "'"};
  return &it->second;
}

Result<orb::ObjectRef> Application::port(const std::string& instance_name,
                                         const std::string& port_name) const {
  auto bound = instance(instance_name);
  if (!bound) return bound.error();
  if (port_name.empty()) return (*bound)->primary;
  return origin_->instance_port(**bound, port_name);
}

Result<orb::Value> Application::call(const std::string& instance_name,
                                     const std::string& operation,
                                     std::vector<orb::Value> args) {
  auto bound = instance(instance_name);
  if (!bound) return bound.error();
  return origin_->orb().call((*bound)->primary, operation, std::move(args));
}

std::size_t Application::remote_instance_count() const {
  std::size_t n = 0;
  for (const auto& [name, b] : bound_) n += (b.host != origin_->id());
  return n;
}

}  // namespace clc::core
