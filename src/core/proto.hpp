// Protocol messages for Network Cohesion and the Distributed Registry.
//
// A ProtoMessage is a small self-describing record (kind + string fields +
// optional binary blob). It CDR-serializes, so the simulator's bandwidth
// accounting and the real runtime's ORB transport both move exactly the
// bytes the protocol would cost on a wire; the soft-vs-strong consistency
// experiment (E3) depends on that honesty.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "orb/cdr.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"

namespace clc::core {

struct ProtoMessage {
  std::string kind;  // e.g. "join", "heartbeat", "query", "mrm_announce"
  NodeId sender;
  std::map<std::string, std::string> fields;
  Bytes blob;  // digests, query payloads, replica snapshots

  [[nodiscard]] std::string field(const std::string& key,
                                  std::string fallback = "") const {
    auto it = fields.find(key);
    return it == fields.end() ? std::move(fallback) : it->second;
  }
  [[nodiscard]] std::int64_t field_int(const std::string& key,
                                       std::int64_t fallback = 0) const;
  [[nodiscard]] double field_double(const std::string& key,
                                    double fallback = 0) const;
  void set(const std::string& key, std::string value) {
    fields[key] = std::move(value);
  }
  void set_int(const std::string& key, std::int64_t value) {
    fields[key] = std::to_string(value);
  }
  void set_double(const std::string& key, double value);

  [[nodiscard]] Bytes encode() const;
  static Result<ProtoMessage> decode(BytesView data);
};

}  // namespace clc::core
