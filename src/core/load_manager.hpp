// Closed-loop load management (overload robustness, DESIGN.md §16).
//
// The paper motivates run-time deployment with "intelligent scheduling,
// migration and load balancing"; LoadManager is that control loop. Each
// control round it samples every live node's admission model (instantaneous
// queue-delay estimate, windowed p99 of the queue-delay histogram, shed
// deltas, CPU headroom) and closes three feedback paths:
//
//  * Admission feedback: a node whose windowed p99 queue delay breaches the
//    SLO gets its admission bound tightened (shedding earlier, keeping the
//    latency of admitted work bounded); a calm node's bound relaxes back
//    toward its configured maximum.
//  * Replication: the hottest node's busiest component gains a replica on
//    the most idle node, so subsequent bindings spread the offered load.
//  * Migration: a saturated node (delay at a multiple of the replicate
//    threshold) actively moves an instance away instead of just copying.
//
// All decisions are pure functions of the sampled metrics and the virtual
// clock, so overload scenarios replay deterministically. Placement actions
// carry a per-node cooldown to prevent thrash.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "util/clock.hpp"

namespace clc::core {

struct LoadManagerConfig {
  /// Minimum spacing between control rounds; tick() is a no-op in between.
  Duration interval = seconds(2);
  /// SLO on the windowed p99 queue delay (µs); a breach tightens admission.
  double slo_p99_queue_delay_us = 50000.0;
  /// Instantaneous queue delay marking a node hot enough to replicate off.
  Duration replicate_above = milliseconds(20);
  /// Saturation: delay at this multiple of replicate_above migrates an
  /// instance away instead of replicating a copy.
  double migrate_multiple = 3.0;
  /// A node this idle is a placement target (and its admission relaxes).
  Duration idle_below = milliseconds(1);
  double tighten_factor = 0.7;
  double relax_factor = 1.25;
  /// Per-node spacing between placement actions (source or target).
  Duration cooldown = seconds(4);
};

class LoadManager {
 public:
  explicit LoadManager(LocalNetwork& network, LoadManagerConfig config = {});

  /// One control round (rate-limited to config.interval). Reads metrics,
  /// then acts; every action lands in the deterministic action log.
  void tick(TimePoint now);

  [[nodiscard]] const std::vector<std::string>& action_log() const noexcept {
    return actions_;
  }
  [[nodiscard]] std::uint64_t replications() const noexcept {
    return replications_;
  }
  [[nodiscard]] std::uint64_t migrations() const noexcept {
    return migrations_;
  }
  [[nodiscard]] std::uint64_t tightenings() const noexcept {
    return tightenings_;
  }
  [[nodiscard]] std::uint64_t relaxations() const noexcept {
    return relaxations_;
  }

 private:
  struct Sample {
    Node* node = nullptr;
    Duration delay = 0;          // instantaneous queue-delay estimate
    double p99 = 0.0;            // windowed p99 queue delay, µs
    std::uint64_t shed_delta = 0;
    double headroom = 0.0;
  };
  void act_on_placement(std::vector<Sample>& samples, TimePoint now);

  LocalNetwork& network_;
  LoadManagerConfig config_;
  TimePoint last_round_ = 0;
  std::map<std::uint64_t, std::uint64_t> last_shed_;    // node id -> count
  std::map<std::uint64_t, TimePoint> last_placement_;   // node id -> time
  std::vector<std::string> actions_;
  std::uint64_t replications_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t tightenings_ = 0;
  std::uint64_t relaxations_ = 0;
};

}  // namespace clc::core
