#include "core/instance.hpp"

namespace clc::core {

ExecutorRegistry& ExecutorRegistry::global() {
  static ExecutorRegistry instance;
  return instance;
}

Result<void> ExecutorRegistry::register_symbol(const std::string& entry_symbol,
                                               InstanceFactory factory) {
  if (entry_symbol.empty())
    return Error{Errc::invalid_argument, "empty entry symbol"};
  // Re-registration with a new factory is allowed: installing a new version
  // of a component re-binds its entry point, mirroring a DLL upgrade.
  symbols_[entry_symbol] = std::move(factory);
  return {};
}

Result<InstanceFactory> ExecutorRegistry::resolve(
    const std::string& entry_symbol) const {
  auto it = symbols_.find(entry_symbol);
  if (it == symbols_.end())
    return Error{Errc::not_found,
                 "unresolved component entry symbol '" + entry_symbol + "'"};
  return it->second;
}

bool ExecutorRegistry::has(const std::string& entry_symbol) const {
  return symbols_.count(entry_symbol) != 0;
}

void ExecutorRegistry::unregister_symbol(const std::string& entry_symbol) {
  symbols_.erase(entry_symbol);
}

}  // namespace clc::core
