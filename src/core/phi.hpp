// Phi-accrual failure detection (Hayashibara et al., "The phi accrual
// failure detector", SRDS 2004) — the adaptive half of the gray-failure
// tolerance layer (DESIGN.md §17).
//
// A PhiAccrualDetector watches one peer's heartbeat inter-arrival times and
// turns "how long since the last beat" into a continuous suspicion level
// phi = -log10(P(a later arrival)), instead of a binary timeout. Detection
// latency then tracks the network the node actually observes: on a quiet
// link phi climbs fast, on a jittery one it stays patient.
//
// The detector is deliberately arithmetic-only (no clocks, no RNG, no
// allocation after construction): the same seeded heartbeat trace replays
// to a byte-identical phi timeline under the simulator and under a real
// transport, which is what the grayfail determinism tests pin.
//
// It also carries the *slow-peer* verdict that classic accrual detectors
// lack: a peer whose beats keep arriving but whose mean inter-arrival has
// stretched past `slow_factor` times the expected period is gray — alive,
// so never tombstoned, but degraded, so deprioritized for binding and
// checkpoint-holder election. Hysteresis (`slow_recover_factor`) keeps the
// verdict from flapping at the boundary.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/clock.hpp"

namespace clc::core {

struct PhiConfig {
  /// Expected heartbeat period; seeds the window and floors the stddev.
  Duration expected_interval = seconds(2);
  /// Sliding window of inter-arrival samples (ring buffer, fixed size).
  std::size_t window = 16;
  /// Samples required before phi()/slow() report anything but "unknown":
  /// until warmed the caller falls back to its fixed timeouts.
  std::size_t min_samples = 5;
  /// Stddev floor, as a fraction of expected_interval. Virtual-time
  /// networks deliver beats with *zero* jitter; without a floor the
  /// first late beat would spike phi to infinity.
  double min_stddev_fraction = 0.25;
  /// Mean inter-arrival beyond slow_factor * expected_interval => slow.
  double slow_factor = 2.0;
  /// Slow verdict clears only below slow_recover_factor * expected
  /// (hysteresis; must be < slow_factor).
  double slow_recover_factor = 1.4;
};

class PhiAccrualDetector {
 public:
  static constexpr std::size_t kMaxWindow = 64;

  explicit PhiAccrualDetector(PhiConfig cfg = {});

  /// Record one heartbeat arrival. The first call only anchors time; the
  /// second onward append an inter-arrival sample. Monotonicity is the
  /// caller's contract (cohesion feeds it a single clock).
  void record_arrival(TimePoint now);

  /// Suspicion level given the current silence. Returns 0 until warmed.
  /// phi = -log10(P(an arrival later than `silence`)), under a normal
  /// approximation of the observed inter-arrival distribution (logistic
  /// CDF approximation, as in the Akka/Cassandra implementations).
  [[nodiscard]] double phi(Duration silence) const;

  /// Gray verdict: beats still arrive, but slowly. Sticky (hysteresis):
  /// set above slow_factor, cleared below slow_recover_factor.
  [[nodiscard]] bool slow() const noexcept { return slow_; }

  /// True once min_samples inter-arrivals accrued; before that phi() is 0
  /// and the caller must rely on its fixed timeout bounds.
  [[nodiscard]] bool warmed() const noexcept { return count_ >= cfg_.min_samples; }

  [[nodiscard]] std::size_t sample_count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] TimePoint last_arrival() const noexcept { return last_; }

  /// Forget everything (peer restarted / purged); keeps the config.
  void reset() noexcept;

 private:
  void append(double interval_us);

  PhiConfig cfg_;
  double samples_[kMaxWindow] = {};
  std::size_t head_ = 0;       // next slot to overwrite
  std::size_t count_ = 0;      // samples currently in the window (≤ window)
  double sum_ = 0;             // running sum over the window
  double sum_sq_ = 0;          // running sum of squares over the window
  TimePoint last_ = 0;
  bool have_last_ = false;
  bool slow_ = false;
};

}  // namespace clc::core
