// Containers: the run-time environment of component instances (§2.2).
//
// "Containers become the instances view of the world. Instances ask the
// container for the required services and it in turn informs the instance
// of its environment." The container owns the non-functional aspects the
// paper lists: activation/de-activation, resource reservation (QoS
// admission through the Resource Manager), dependency resolution (through
// the node and the Distributed Registry), event wiring, and migration /
// replication support via the agreed local interfaces
// (externalize_state/internalize_state on ComponentInstance).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/events.hpp"
#include "core/instance.hpp"
#include "core/registry.hpp"
#include "core/repository.hpp"
#include "core/resource.hpp"
#include "orb/orb.hpp"
#include "util/rng.hpp"

namespace clc::core {

class Container {
 public:
  /// Node facilities injected into the container.
  struct Services {
    orb::Orb* orb = nullptr;
    ComponentRepository* repository = nullptr;
    ResourceManager* resources = nullptr;
    EventChannelHub* events = nullptr;
    ComponentRegistry* registry = nullptr;
    /// Network-wide dependency resolution (requirement 6); wired to
    /// Node::resolve. May be empty in unit tests.
    std::function<Result<orb::ObjectRef>(const std::string&,
                                         const VersionConstraint&)>
        resolver;
  };

  explicit Container(Services services, std::uint64_t seed = 0xC04);
  ~Container();  // out of line: Entry holds the ContextImpl defined in .cpp
  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  /// Create an instance of an installed component: load the binary, run
  /// QoS admission, initialize ports, activate.
  Result<InstanceId> create(const std::string& component,
                            const VersionConstraint& constraint);

  Result<void> destroy(InstanceId id);

  /// Reference to a provided port of an instance.
  [[nodiscard]] Result<orb::ObjectRef> provided_port(
      InstanceId id, const std::string& port) const;

  /// Connect a used port to a target object (assembly edge).
  Result<void> connect(InstanceId id, const std::string& port,
                       const orb::ObjectRef& target);

  /// Lifecycle control.
  Result<void> activate(InstanceId id);
  Result<void> passivate(InstanceId id);

  /// Migration/replication: passivate, capture state + wiring. The
  /// instance stays passive (caller destroys it once the move commits, or
  /// re-activates on abort).
  struct Snapshot {
    std::string component;
    Version version;
    Bytes state;
    std::map<std::string, orb::ObjectRef> connections;  // used ports
  };
  Result<Snapshot> capture(InstanceId id);
  /// Recreate an instance from a snapshot (the receiving side of a
  /// migration, or a replica).
  Result<InstanceId> restore(const Snapshot& snapshot);

  /// Failover checkpoint: externalize state + wiring *without* passivating
  /// -- the instance keeps serving while the snapshot travels to its
  /// checkpoint holders. Only mobile/replicable components checkpoint (the
  /// same set capture() accepts).
  Result<Snapshot> checkpoint(InstanceId id);

  /// Every instance currently held (any state), in creation order.
  [[nodiscard]] std::vector<InstanceId> instance_ids() const;

  /// Crash teardown: destroy every instance (their in-memory state is what
  /// a real crash loses; installed packages -- the "disk" -- survive).
  void destroy_all();

  /// Direct access for aggregation chunks and tests.
  [[nodiscard]] Result<ComponentInstance*> implementation(InstanceId id) const;
  [[nodiscard]] Result<const pkg::ComponentDescription*> description_of(
      InstanceId id) const;

  /// Reuse an existing active instance of the component, if any.
  [[nodiscard]] Result<InstanceId> find_active(
      const std::string& component, const VersionConstraint& c) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  class ContextImpl;
  struct Entry {
    Entry();
    ~Entry();  // out of line: ContextImpl is defined in the .cpp
    InstanceId id;
    pkg::ComponentDescription description;
    std::unique_ptr<ComponentInstance> impl;
    std::unique_ptr<ContextImpl> context;
    InstanceState state = InstanceState::created;
  };

  Result<Entry*> entry(InstanceId id) const;

  Services services_;
  Rng rng_;
  std::map<InstanceId, std::unique_ptr<Entry>> entries_;
  std::uint64_t next_instance_ = 1;
};

}  // namespace clc::core
