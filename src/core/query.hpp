// Distributed component queries and candidate scoring (§2.4.3).
//
// "The network issues the corresponding distributed queries to each node's
// Component Registry in order to find the component which match better with
// the stated QoS requirements. Once the set of best suited components have
// been found, the network must select one of them to be instantiated
// attending to characteristics such as location, cost, migration, etc."
//
// RegistryDigest is the per-node summary a node piggybacks on heartbeats;
// MRMs cache digests for their group and answer queries from them (soft
// consistency: a digest may be one heartbeat stale).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/resource.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"
#include "util/version.hpp"

namespace clc::core {

/// One installed component as advertised in a digest.
struct ComponentSummary {
  std::string name;
  Version version;
  bool mobile = true;
  double cost_per_use = 0.0;
};

/// Per-node registry digest: what's installed + current load.
struct RegistryDigest {
  NodeId node;
  std::vector<ComponentSummary> components;
  double cpu_load = 0.0;
  std::uint64_t memory_free_kb = 0;
  DeviceClass device = DeviceClass::workstation;
  std::uint64_t revision = 0;
  /// The advertising node's incarnation: bumped on every crash/restart, so
  /// registries can order digests across reboots and fence stale pre-crash
  /// registrations ((incarnation, revision) is the digest's version).
  std::uint64_t incarnation = 1;

  [[nodiscard]] Bytes encode() const;
  static Result<RegistryDigest> decode(BytesView data);
};

/// Aggregate ("subtree"/shard) digest entries are "name@major.minor.patch"
/// labels; carrying the version lets version-constrained queries descend
/// past an ancestor that hosts a different version of the same component.
/// Names are dotted identifiers and never contain '\n' or '@'.
[[nodiscard]] std::string component_label(const ComponentSummary& c);
/// Inverse of component_label: (name, version). A label without '@' (or
/// with an unparsable version) yields the whole label + Version{0,0,0}.
[[nodiscard]] std::pair<std::string, Version> split_label(
    const std::string& label);

/// A component lookup as routed through the Distributed Registry.
struct ComponentQuery {
  std::string name_pattern;  // glob, e.g. "video.*" or exact name
  VersionConstraint constraint;
  bool require_mobile = false;     // caller intends to fetch & install
  std::uint32_t max_results = 8;

  [[nodiscard]] bool matches(const ComponentSummary& s) const;
  /// True when the pattern is one exact name (no glob metacharacters), so
  /// the sharded registry can route it straight to owner(name) instead of
  /// fanning out to every shard.
  [[nodiscard]] bool shardable() const noexcept;
  [[nodiscard]] Bytes encode() const;
  static Result<ComponentQuery> decode(BytesView data);
};

/// One match, annotated with the hosting node's state for scoring.
struct QueryHit {
  NodeId node;
  std::string component;
  Version version;
  bool mobile = true;
  double cost_per_use = 0.0;
  double node_cpu_load = 0.0;
  DeviceClass node_device = DeviceClass::workstation;

  [[nodiscard]] bool operator==(const QueryHit&) const = default;
};

/// Context the scorer evaluates hits against.
struct PlacementContext {
  NodeId querying_node;
  NodeId group_mrm;                        // for locality tiers
  std::vector<NodeId> group_members;       // same-group nodes
  double link_bandwidth_kbps = 100000;     // to remote nodes
};

/// Score a hit: higher is better. Factors per the paper: location (same
/// node > same group > remote), hosting node load, licensing cost, version
/// recency, mobility (fetchable components are worth more to callers who
/// want local installation).
double score_hit(const QueryHit& hit, const PlacementContext& ctx);

/// Sort hits best-first (stable, deterministic tie-break on node id).
void rank_hits(std::vector<QueryHit>& hits, const PlacementContext& ctx);

/// Digest-list wire helpers (MRM replica sync, query replies).
Bytes encode_hits(const std::vector<QueryHit>& hits);
Result<std::vector<QueryHit>> decode_hits(BytesView data);

}  // namespace clc::core
