// Consistent-hash shard map for the zone-sharded Distributed Registry.
//
// The mega-cluster directory is sharded by component name across the zone
// roots: owner(name) = the zone whose virtual node follows hash(name) on a
// 64-bit ring. Each holder (zone) projects `vnodes` points onto the ring so
// load spreads evenly and a holder's arrival or departure remaps only the
// keys adjacent to its own points (~K/R of K keys across R holders) instead
// of rehashing the world -- the property the shard_property tests pin.
//
// Holders are zone ids, not node ids, on purpose: the ring survives a zone
// root's crash untouched, because the replacement root inherits the zone's
// ring points along with the role.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string_view>
#include <vector>

namespace clc::core {

/// FNV-1a 64-bit: cheap, seedless and identical on every platform, so two
/// nodes always agree on owner(name) without exchanging hash state.
[[nodiscard]] std::uint64_t shard_hash(std::string_view key) noexcept;

class ShardMap {
 public:
  /// More virtual nodes -> tighter key spread (relative imbalance shrinks
  /// roughly with 1/sqrt(vnodes)) at the cost of a bigger ring.
  explicit ShardMap(int vnodes = 128) : vnodes_(vnodes) {}

  void add_holder(std::uint32_t holder);
  void remove_holder(std::uint32_t holder);
  [[nodiscard]] bool contains(std::uint32_t holder) const {
    return holders_.count(holder) != 0;
  }

  /// The holder owning `key`: first ring point at or after hash(key),
  /// wrapping. Returns 0 when the ring is empty (0 is not a valid zone id).
  [[nodiscard]] std::uint32_t owner_of(std::string_view key) const;

  [[nodiscard]] std::vector<std::uint32_t> holders() const {
    return {holders_.begin(), holders_.end()};
  }
  [[nodiscard]] std::size_t holder_count() const { return holders_.size(); }
  [[nodiscard]] std::size_t ring_points() const { return ring_.size(); }

 private:
  int vnodes_;
  std::map<std::uint64_t, std::uint32_t> ring_;  // point -> holder
  std::set<std::uint32_t> holders_;
};

}  // namespace clc::core
