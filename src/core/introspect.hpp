// Network introspection: the Reflection Architecture's view for visual
// building tools (§2.4.2).
//
// "This information is used ... by visual builder tools to offer to the
// user the palette of available components, instances and connections among
// them." These helpers walk a LocalNetwork and emit the palette as an XML
// document (the format a builder UI would consume) and as a human-readable
// text rendering.
#pragma once

#include <string>

#include "core/node.hpp"

namespace clc::core {

/// XML network view: one <node> per host with its profile, load, installed
/// components (the palette), running instances and assembly edges.
std::string network_view_xml(LocalNetwork& net);

/// Compact text rendering of the same view (for terminals/logs).
std::string network_view_text(LocalNetwork& net);

}  // namespace clc::core
