#include "core/node.hpp"

#include <algorithm>

#include "dir/record.hpp"
#include "orb/resilience.hpp"
#include "session/session.hpp"
#include "util/log.hpp"

namespace clc::core {

namespace {

/// Well-known object key of a node's NodeService servant: peers construct
/// references to it from the NodeId alone (CORBA "corbaloc" analogue).
Uuid node_service_key(NodeId id) {
  return Uuid{0xC0DEC0DE00000001ULL, id.value};
}

/// Remote calls that are safe to retry: reads, get-or-create acquisition,
/// and cohesion protocol messages (which the protocol already dedupes).
constexpr orb::InvokeOptions kIdempotent{.idempotent = true};

/// Orb-facing adapter over the node's AdmissionController. Classifies
/// clc::* internal interfaces (NodeService cohesion/failover traffic, the
/// directory, zone routing) as control-plane -- shed strictly after
/// application calls -- and everything else as application traffic.
class NodeAdmissionGate final : public orb::AdmissionGate {
 public:
  NodeAdmissionGate(AdmissionController& ctrl, const Clock& clock)
      : ctrl_(ctrl), clock_(clock) {}

  Result<void> admit(const std::string& interface_name,
                     const std::string& operation) override {
    const auto cls = interface_name.rfind("clc::", 0) == 0
                         ? CallClass::control
                         : CallClass::application;
    // Learned per-op cost: 0 (not warmed) falls back to the static
    // per-class default inside the controller.
    return ctrl_.admit(cls, clock_.now(),
                       ctrl_.learned_cost(interface_name + "." + operation));
  }
  std::uint32_t credit_hint() override {
    return ctrl_.credit_window(clock_.now());
  }
  std::uint64_t queue_delay_us() override {
    return static_cast<std::uint64_t>(ctrl_.queue_delay(clock_.now()));
  }
  void record_service_time(const std::string& interface_name,
                           const std::string& operation,
                           std::uint64_t service_us) override {
    ctrl_.record_service_time(interface_name + "." + operation, service_us);
  }

 private:
  AdmissionController& ctrl_;
  const Clock& clock_;
};

constexpr const char* kNodeIdl = R"(
module clc {
  typedef sequence<octet> Blob;
  interface NodeService {
    // Component Acceptor (Fig. 1): accept a package for local installation.
    void accept_package(in Blob package);
    // Reflection: descriptor XML and IDL of an installed component.
    string describe_component(in string component, in string version);
    string get_component_idl(in string component, in string version);
    // Network-as-repository: ship a package to the requesting platform.
    Blob fetch_package(in string component, in string version,
                       in string arch, in string os, in string orb_name,
                       in string device);
    // Instance acquisition (get-or-create) and assembly wiring.
    string acquire_instance(in string component, in string constraint,
                            out Object primary);
    void connect_instance(in string token, in string port, in Object target);
    Object instance_port(in string token, in string port);
    // Migration: restore a captured instance here.
    string receive_instance(in string component, in string version,
                            in Blob state, out Object primary);
    // Event channels across nodes.
    void subscribe_events(in string event_type, in Object consumer);
    // Aggregation (data-parallel) chunk execution.
    Blob process_chunk(in string component, in string constraint,
                       in Blob chunk);
    // Failover: hold a peer instance's checkpoint (fenced by incarnation).
    void store_checkpoint(in Blob record);
    // Network Cohesion transport: protocol messages ride oneway calls.
    oneway void deliver(in Blob message);
  };
};
)";

/// Per-node client-side partition gate. The shared FaultyTransport is
/// destination-addressed and knows nothing about who is sending, so
/// directed link cuts need a decorator that does: one per node, carrying
/// the node's own id, consulting the LocalNetwork's cut table before
/// handing the frame on. Blocked traffic fails with Errc::unreachable --
/// retryable, exactly like a detached endpoint -- and counts in the
/// sender's `orb.partitioned` metric.
class PartitionedTransport final : public orb::Transport {
 public:
  PartitionedTransport(NodeId self, LocalNetwork& net,
                       std::shared_ptr<orb::Transport> inner,
                       obs::MetricsRegistry* metrics)
      : self_(self),
        net_(net),
        inner_(std::move(inner)),
        partitioned_(&metrics->counter("orb.partitioned")) {}

  Result<Bytes> roundtrip(const std::string& endpoint,
                          BytesView frame) override {
    if (auto blocked = gate(endpoint)) return *blocked;
    return inner_->roundtrip(endpoint, frame);
  }

  Result<void> send_oneway(const std::string& endpoint,
                           BytesView frame) override {
    if (auto blocked = gate(endpoint)) return *blocked;
    return inner_->send_oneway(endpoint, frame);
  }

  void submit(const std::string& endpoint, BytesView frame,
              orb::ReplyCallback cb) override {
    if (auto blocked = gate(endpoint)) {
      cb(*blocked);
      return;
    }
    inner_->submit(endpoint, frame, std::move(cb));
  }

 private:
  std::optional<Error> gate(const std::string& endpoint) const {
    if (!net_.link_blocked_to(self_, endpoint)) return std::nullopt;
    partitioned_->inc();
    return Error{Errc::unreachable,
                 "link cut " + self_.to_string() + " -> " + endpoint};
  }

  NodeId self_;
  LocalNetwork& net_;
  std::shared_ptr<orb::Transport> inner_;
  obs::Counter* partitioned_;
};

}  // namespace

// ---------------------------------------------------------------------------
// LocalNetwork

LocalNetwork::LocalNetwork(CohesionConfig cohesion_defaults,
                           FailoverConfig failover_defaults)
    : transport_(std::make_shared<orb::LoopbackNetwork>()),
      faulty_(std::make_shared<fault::FaultyTransport>(transport_)),
      collector_(std::make_shared<obs::TraceCollector>()),
      cohesion_defaults_(cohesion_defaults),
      failover_defaults_(failover_defaults) {
  // Injected delays and modelled latency advance the shared virtual clock
  // instead of sleeping, so chaos runs stay deterministic and fast under
  // `ctest -j`.
  faulty_->set_sleep_fn([this](Duration d) { clock_.advance(d); });
  transport_->set_sleep_fn([this](Duration d) { clock_.advance(d); });
}

Node& LocalNetwork::add_node(NodeProfile profile, bool auto_join) {
  return add_node(std::move(profile), cohesion_defaults_, auto_join);
}

Node& LocalNetwork::add_node(NodeProfile profile,
                             CohesionConfig cohesion_config, bool auto_join) {
  const NodeId id{next_id_++};
  owned_.push_back(std::make_unique<Node>(id, std::move(profile), *this,
                                          cohesion_config,
                                          failover_defaults_));
  Node& node = *owned_.back();
  if (auto_join) {
    if (owned_.size() == 1) {
      node.start_network(now());
    } else {
      node.join(owned_.front()->id(), now());
    }
  }
  return node;
}

void LocalNetwork::register_node(Node& node, const std::string& endpoint) {
  directory_[node.id()] = {endpoint, &node};
  // Old endpoints of restarted nodes stay mapped: they are permanently
  // detached, so the partition gate never needs to un-learn them.
  endpoint_owner_[endpoint] = node.id();
}

void LocalNetwork::partition(const std::vector<NodeId>& side_a,
                             const std::vector<NodeId>& side_b) {
  for (NodeId a : side_a) {
    for (NodeId b : side_b) {
      cut_links_.insert({a, b});
      cut_links_.insert({b, a});
    }
  }
}

bool LocalNetwork::link_blocked_to(NodeId from,
                                   const std::string& endpoint) const {
  auto it = endpoint_owner_.find(endpoint);
  return it != endpoint_owner_.end() && link_blocked(from, it->second);
}

void LocalNetwork::set_partition_schedule(
    const fault::PartitionSchedule& schedule) {
  for (const fault::PartitionEvent& ev : schedule.events) {
    for (const fault::LinkCut& cut : ev.cuts) {
      partition_actions_.emplace(ev.at, std::make_pair(true, cut));
      if (ev.heal_after > 0)
        partition_actions_.emplace(ev.at + ev.heal_after,
                                   std::make_pair(false, cut));
    }
  }
  apply_due_partition_actions();  // events at or before "now" apply at once
}

void LocalNetwork::apply_due_partition_actions() {
  while (!partition_actions_.empty() &&
         partition_actions_.begin()->first <= clock_.now()) {
    const auto [install, link] = partition_actions_.begin()->second;
    if (install) {
      cut_links_.insert(link);
    } else {
      cut_links_.erase(link);
    }
    partition_actions_.erase(partition_actions_.begin());
  }
}

Result<std::string> LocalNetwork::endpoint_of(NodeId id) const {
  auto it = directory_.find(id);
  if (it == directory_.end())
    return Error{Errc::not_found, "unknown node " + id.to_string()};
  return it->second.first;
}

Node* LocalNetwork::node(NodeId id) const {
  auto it = directory_.find(id);
  return it == directory_.end() ? nullptr : it->second.second;
}

std::vector<Node*> LocalNetwork::nodes() const {
  std::vector<Node*> out;
  for (const auto& [id, entry] : directory_) {
    if (crashed_.count(id) == 0) out.push_back(entry.second);
  }
  return out;
}

void LocalNetwork::advance(Duration duration, Duration step) {
  const TimePoint deadline = clock_.now() + duration;
  while (clock_.now() < deadline) {
    clock_.advance(std::min(step, deadline - clock_.now()));
    apply_due_partition_actions();
    for (const auto& [id, entry] : directory_) {
      if (crashed_.count(id) == 0) entry.second->tick(clock_.now());
    }
  }
}

void LocalNetwork::settle() { advance(cohesion_defaults_.heartbeat * 8); }

void LocalNetwork::crash(NodeId id) {
  auto it = directory_.find(id);
  if (it == directory_.end() || crashed_.count(id) != 0) return;
  it->second.second->crash_local();
  transport_->detach(it->second.first);
  crashed_.insert(id);
}

void LocalNetwork::restart(NodeId id) {
  auto it = directory_.find(id);
  if (it == directory_.end() || crashed_.count(id) == 0) return;
  crashed_.erase(id);
  // Re-join through the lowest-id live peer (the well-known bootstrap
  // analogue); a lone survivor re-founds the network instead.
  NodeId bootstrap{};
  for (const auto& [nid, entry] : directory_) {
    if (nid != id && crashed_.count(nid) == 0) {
      bootstrap = nid;
      break;
    }
  }
  it->second.second->restart_local(bootstrap, now());
}

// ---------------------------------------------------------------------------
// Node

Node::Node(NodeId id, NodeProfile profile, LocalNetwork& network,
           CohesionConfig cohesion_config, FailoverConfig failover_config)
    : id_(id),
      network_(network),
      tracer_(id, network.trace_collector(),
              [this] { return network_.now(); }),
      admission_(metrics_),
      types_(std::make_shared<idl::InterfaceRepository>()),
      orb_(std::make_unique<orb::Orb>(id, types_, &metrics_)),
      resources_(profile, &metrics_),
      repository_(profile, types_),
      registry_(id, repository_, resources_),
      events_(*orb_),
      container_(
          Container::Services{
              orb_.get(), &repository_, &resources_, &events_, &registry_,
              [this](const std::string& component,
                     const VersionConstraint& c) -> Result<orb::ObjectRef> {
                auto bound = resolve(component, c);
                if (!bound) return bound.error();
                return bound->primary;
              }},
          id.value),
      cohesion_(id, cohesion_config,
                [this](NodeId to, const ProtoMessage& m) {
                  auto service = node_service_ref(to);
                  if (!service) return;  // unknown peer: message lost
                  (void)orb_->send(*service, "deliver",
                                   {orb::Value(m.encode())}, kIdempotent);
                },
                &metrics_),
      failover_(failover_config),
      retry_rng_(0xFA11BACCULL ^ (id.value * 0x9E3779B97F4A7C15ULL)),
      directory_(&metrics_) {
  install_node_idl();
  orb_->add_client_interceptor(
      std::make_shared<obs::TraceClientInterceptor>(tracer_));
  orb_->add_server_interceptor(
      std::make_shared<obs::TraceServerInterceptor>(tracer_));
  auto* orb_raw = orb_.get();
  const std::string endpoint = network_.transport().register_endpoint(
      [orb_raw](BytesView frame) { return orb_raw->handle_frame(frame); });
  orb_->set_endpoint(endpoint);
  // Client traffic crosses the per-node partition gate, then the shared
  // fault decorator (a pass-through until a chaos test arms a plan); time
  // and backoff run on the shared virtual clock so no test ever sleeps or
  // reads wall time.
  orb_->add_transport("loop", std::make_shared<PartitionedTransport>(
                                  id, network_,
                                  network_.faulty_transport_ptr(),
                                  &metrics_));
  orb_->set_clock(&network_.clock());
  orb_->set_sleep_fn([this](Duration d) { network_.clock().advance(d); });
  orb_->set_admission_gate(
      std::make_shared<NodeAdmissionGate>(admission_, network_.clock()));
  orb::InvocationPolicies policies;
  policies.deadline = seconds(5);
  policies.retry.max_attempts = 4;
  policies.retry.initial_backoff = milliseconds(2);
  policies.breaker.enabled = true;
  policies.breaker.failure_threshold = 6;
  policies.breaker.open_duration = cohesion_config.heartbeat * 2;
  orb_->set_invocation_policies(policies);
  make_node_servant();
  install_directory();
  network_.register_node(*this, endpoint);
  cohesion_.set_digest_provider([this] { return registry_.digest(); });
  cohesion_.set_node_dead_handler(
      [this](NodeId dead, std::uint64_t dead_incarnation,
             std::vector<NodeId> alive) {
        on_peer_dead(dead, dead_incarnation, alive);
      });
  cohesion_.set_node_revived_handler(
      [this](NodeId origin, std::uint64_t origin_inc) {
        on_peer_revived(origin, origin_inc);
      });
  cohesion_.set_failover_claim_handler(
      [this](const FailoverClaim& claim) { on_failover_claim(claim); });
  // Protocol transitions ("suspected:<id>", "promoted", ...) surface as
  // zero-length spans in the shared collector, so a partition's timeline
  // reads straight out of the cross-node trace.
  cohesion_.set_transition_hook([this](const std::string& what) {
    obs::ScopedSpan span(tracer_, "cohesion:" + what);
  });
  if (cohesion_config.zone != 0) {
    // Zoned deployment: the router links this zone's root into the
    // roots-of-roots layer. It rides the same oneway "deliver" channel as
    // cohesion traffic (the servant splits inbound frames by kind).
    ZoneConfig zc;
    zc.zone = cohesion_config.zone;
    zc.hello_interval = cohesion_config.heartbeat;
    zc.publish_interval = cohesion_config.heartbeat * 2;
    zc.suspect_after = cohesion_config.suspect_after;
    zc.resolve_timeout = cohesion_config.query_timeout;
    zone_router_ = std::make_unique<ZoneRouter>(
        id, zc, cohesion_,
        [this](NodeId to, const ProtoMessage& m) {
          auto service = node_service_ref(to);
          if (!service) return;  // unknown peer: message lost
          (void)orb_->send(*service, "deliver", {orb::Value(m.encode())},
                           kIdempotent);
        },
        &metrics_);
  }
}

Node::~Node() = default;

void Node::install_node_idl() {
  auto r = types_->register_idl(kNodeIdl);
  if (!r.ok())
    CLC_LOG(error, "node") << "node IDL failed to register: "
                           << r.error().to_string();
}

Result<orb::ObjectRef> Node::node_service_ref(NodeId peer) const {
  auto endpoint = network_.endpoint_of(peer);
  if (!endpoint) return endpoint.error();
  orb::ObjectRef ref;
  ref.node = peer;
  ref.key = node_service_key(peer);
  ref.interface_name = "clc::NodeService";
  ref.endpoint = *endpoint;
  return ref;
}

// ---------------------------------------------------------------------------
// Replicated service directory (DESIGN.md §14)

void Node::install_directory() {
  auto r = types_->register_idl(dir::directory_idl());
  if (!r.ok())
    CLC_LOG(error, "node") << "directory IDL failed to register: "
                           << r.error().to_string();
  // Change notifications ride oneway CLCP sends: best effort, never
  // blocking the publish path on a slow or dead subscriber.
  directory_.set_notify_fn(
      [this](const orb::ObjectRef& subscriber, const dir::DirNotification& n) {
        (void)orb_->send(subscriber, "notify", {orb::Value(n.encode())},
                         kIdempotent);
      });
  auto servant = std::make_shared<orb::DynamicServant>("clc::Directory");
  servant->on("publish", [this](orb::ServerRequest& req) -> Result<void> {
    auto rec = dir::ServiceRecord::decode(req.arg(0).as<Bytes>());
    if (!rec) return rec.error();
    directory_.apply(*rec);
    return {};
  });
  servant->on("lookup", [this](orb::ServerRequest& req) -> Result<void> {
    auto rec = directory_.lookup(req.arg(0).as<std::string>());
    if (!rec) return rec.error();
    req.set_result(orb::Value(rec->encode()));
    return {};
  });
  servant->on("lookup_group", [this](orb::ServerRequest& req) -> Result<void> {
    req.set_result(orb::Value(dir::encode_records(
        directory_.lookup_group(req.arg(0).as<std::string>()))));
    return {};
  });
  servant->on("exchange_table",
              [this](orb::ServerRequest& req) -> Result<void> {
    // Merge the caller's table, answer with ours: one roundtrip carries
    // both directions of the anti-entropy exchange.
    auto merged = directory_.merge_table(req.arg(0).as<Bytes>());
    if (!merged) return merged.error();
    req.set_result(orb::Value(directory_.encode_table()));
    return {};
  });
  servant->on("subscribe", [this](orb::ServerRequest& req) -> Result<void> {
    directory_.subscribe(req.arg(0).as<orb::ObjectRef>());
    return {};
  });
  servant->on("unsubscribe", [this](orb::ServerRequest& req) -> Result<void> {
    directory_.unsubscribe(req.arg(0).as<orb::ObjectRef>());
    return {};
  });
  (void)orb_->activate_with_key(std::move(servant),
                                dir::directory_service_key(id_));
}

Result<orb::ObjectRef> Node::directory_ref(NodeId replica) const {
  auto endpoint = network_.endpoint_of(replica);
  if (!endpoint) return endpoint.error();
  orb::ObjectRef ref;
  ref.node = replica;
  ref.key = dir::directory_service_key(replica);
  ref.interface_name = "clc::Directory";
  ref.endpoint = *endpoint;
  return ref;
}

std::vector<NodeId> Node::directory_replicas() const {
  // Same lowest-id election as checkpoint holders, but including self:
  // the directory wants R well-known replicas total, wherever they run.
  // network_.nodes() is id-ordered, so every node derives the same set.
  std::vector<NodeId> replicas;
  const int want = std::max(1, failover_.replicas);
  for (Node* p : network_.nodes()) {
    replicas.push_back(p->id());
    if (static_cast<int>(replicas.size()) >= want) break;
  }
  return replicas;
}

void Node::publish_service(const std::string& service,
                           const orb::ObjectRef& ref) {
  dir::ServiceRecord rec;
  rec.service = service;
  rec.ref = ref;
  rec.host = id_;
  rec.incarnation = incarnation_;
  rec.epoch = cohesion_.epoch();
  rec.stamp = static_cast<std::uint64_t>(network_.now());
  // Ship the component's IDL inside the record (libqi-style complete
  // service info): a session that learns this binding can register the
  // types into its own Orb and invoke immediately, with no node-level
  // IDL fetch -- which is what keeps name-based calls working across a
  // failover, where the original host is gone.
  if (auto active = container_.find_active(service, VersionConstraint{});
      active.ok())
    if (auto desc = container_.description_of(*active); desc.ok())
      if (auto idl = repository_.idl_of(service, (*desc)->version); idl.ok())
        rec.idl = *idl;
  publish_record(rec);
}

void Node::publish_record(const dir::ServiceRecord& record) {
  // Always into the local table first: if every replica is unreachable
  // (mid-partition restore), anti-entropy carries the record over after
  // the heal -- that round-trip bounds directory convergence.
  directory_.apply(record);
  const Bytes blob = record.encode();
  for (NodeId replica : directory_replicas()) {
    if (replica == id_) continue;
    auto service = directory_ref(replica);
    if (!service) continue;
    (void)orb_->call(*service, "publish", {orb::Value(blob)}, kIdempotent);
  }
  metrics_.counter("dir.publishes").inc();
}

void Node::gossip_directory() {
  std::vector<NodeId> targets;
  for (NodeId replica : directory_replicas())
    if (replica != id_) targets.push_back(replica);
  if (targets.empty()) return;
  const NodeId target = targets[dir_gossip_rotor_++ % targets.size()];
  auto service = directory_ref(target);
  if (!service) return;
  auto theirs = orb_->call(*service, "exchange_table",
                           {orb::Value(directory_.encode_table())},
                           kIdempotent);
  if (!theirs) return;
  (void)directory_.merge_table(theirs->as<Bytes>());
  metrics_.counter("dir.gossip_rounds").inc();
}

void Node::start_network(TimePoint now) { cohesion_.start_as_first(now); }

void Node::join(NodeId bootstrap, TimePoint now) {
  cohesion_.start_joining(bootstrap, now);
}

void Node::tick(TimePoint now) {
  cohesion_.on_tick(now);
  if (zone_router_) zone_router_->on_tick(now);
  if (failover_.checkpoint_interval > 0 && cohesion_.joined()) {
    if (last_checkpoint_ == 0) {
      last_checkpoint_ = now;  // first joined tick starts the timer
    } else if (now - last_checkpoint_ >= failover_.checkpoint_interval) {
      last_checkpoint_ = now;
      run_checkpoints();
    }
  }
  // Directory anti-entropy rides the same cadence as the registry's
  // (every anti_entropy_every heartbeats). EVERY joined node trades with
  // one replica per round -- not just replica-to-replica -- so a record
  // published while the replicas were unreachable (e.g. a mid-partition
  // failover restore) still flows back into the replica set after a heal.
  const Duration gossip_every =
      cohesion_.config().heartbeat *
      std::max(1, cohesion_.config().anti_entropy_every);
  if (cohesion_.joined() && directory_.size() > 0) {
    if (last_dir_gossip_ == 0) {
      last_dir_gossip_ = now;
    } else if (now - last_dir_gossip_ >= gossip_every) {
      last_dir_gossip_ = now;
      gossip_directory();
    }
  }
}

Result<void> Node::install(const Bytes& package_bytes) {
  if (auto r = repository_.install(package_bytes); !r.ok()) return r;
  cohesion_.broadcast_update(network_.now());  // strong-mode hook (no-op otherwise)
  return {};
}

Result<std::vector<QueryHit>> Node::query_network(const ComponentQuery& q) {
  auto r = query_network_detailed(q);
  if (!r) return r.error();
  return std::move(r->hits);
}

Result<QueryResult> Node::query_network_detailed(const ComponentQuery& q) {
  obs::ScopedSpan span(tracer_, "query:" + q.name_pattern);
  auto r = query_network_impl(q);
  if (!r.ok()) span.fail();
  return r;
}

Result<QueryResult> Node::query_network_impl(const ComponentQuery& q) {
  // Query messages are idempotent protocol traffic, so a lost broadcast is
  // safely re-asked. The attempt budget, total deadline and backoff come
  // from the ORB's InvocationPolicies, so the one knob that tunes ordinary
  // invocation retry tunes distributed-query retry too.
  const orb::InvocationPolicies policies = orb_->invocation_policies();
  const int max_attempts = std::max(1, policies.retry.max_attempts);
  const TimePoint budget_end =
      policies.deadline > 0 ? network_.now() + policies.deadline : TimePoint{0};
  for (int attempt = 1;; ++attempt) {
    std::optional<QueryResult> result;
    cohesion_.query_ex(q, network_.now(), [&result](QueryResult qr) {
      result = std::move(qr);
    });
    // Loopback delivery is synchronous, so most queries complete before
    // query_ex() returns; the rest (unreachable peers) end at the timeout.
    const TimePoint deadline =
        network_.now() + cohesion_.config().query_timeout +
        cohesion_.config().heartbeat;
    while (!result.has_value() && network_.now() < deadline) {
      network_.advance(cohesion_.config().heartbeat / 2);
    }
    if (result.has_value()) {
      if (result->degraded) metrics_.counter("node.degraded_queries").inc();
      return std::move(*result);
    }
    if (attempt >= max_attempts ||
        (budget_end != 0 && network_.now() >= budget_end))
      return Error{Errc::timeout, "distributed query never completed"};
    metrics_.counter("node.query_retries").inc();
    network_.advance(orb::backoff_delay(policies.retry, attempt, retry_rng_));
  }
}

Result<ZoneResolveResult> Node::resolve_zone(const std::string& pattern) {
  if (!zone_router_)
    return Error{Errc::unsupported, "node is not part of a zoned deployment"};
  obs::ScopedSpan span(tracer_, "resolve_zone:" + pattern);
  std::optional<ZoneResolveResult> result;
  zone_router_->resolve(pattern, network_.now(), [&result](ZoneResolveResult r) {
    result = std::move(r);
  });
  // Loopback delivery is synchronous; anything still pending (an owner a
  // ring hop away, a glob fan-out) completes within the router's timeout.
  const TimePoint deadline =
      network_.now() + 3 * cohesion_.config().query_timeout;
  while (!result.has_value() && network_.now() < deadline) {
    network_.advance(cohesion_.config().heartbeat / 2);
  }
  if (!result.has_value()) {
    span.fail();
    return Error{Errc::timeout, "zone resolve never completed"};
  }
  if (result->degraded) metrics_.counter("node.degraded_zone_resolves").inc();
  return std::move(*result);
}

Result<std::string> Node::remote_idl(NodeId peer, const std::string& component,
                                     const Version& version) {
  auto service = node_service_ref(peer);
  if (!service) return service.error();
  auto idl_text = orb_->call(*service, "get_component_idl",
                             {orb::Value(component),
                              orb::Value(version.to_string())},
                             kIdempotent);
  if (!idl_text) return idl_text.error();
  return idl_text->as<std::string>();
}

Result<BoundComponent> Node::acquire_local(const std::string& component,
                                           const VersionConstraint& constraint) {
  InstanceId id;
  bool created_new = false;
  if (auto existing = container_.find_active(component, constraint);
      existing.ok()) {
    id = *existing;
  } else {
    auto created = container_.create(component, constraint);
    if (!created) return created.error();
    id = *created;
    instance_epochs_[id] = cohesion_.epoch();
    created_new = true;
  }
  auto primary = primary_port(id);
  if (!primary) return primary.error();
  // A fresh instance is a directory event (service appeared here);
  // re-acquiring an existing one is not.
  if (created_new) publish_service(component, *primary);
  BoundComponent bound;
  bound.primary = *primary;
  bound.host = id_;
  bound.instance_token = id.to_string();
  return bound;
}

Result<orb::ObjectRef> Node::primary_port(InstanceId id) const {
  auto d = container_.description_of(id);
  if (!d) return d.error();
  const auto provides = (*d)->ports_of(pkg::PortKind::provides);
  if (provides.empty())
    return Error{Errc::bad_state,
                 (*d)->name + " declares no provides-port to bind to"};
  return container_.provided_port(id, provides.front().name);
}

Result<BoundComponent> Node::resolve(const std::string& component,
                                     const VersionConstraint& constraint,
                                     Binding binding) {
  obs::ScopedSpan span(tracer_, "resolve:" + component);
  auto r = resolve_impl(component, constraint, binding);
  if (!r.ok()) span.fail();
  return r;
}

Result<BoundComponent> Node::resolve_impl(const std::string& component,
                                          const VersionConstraint& constraint,
                                          Binding binding) {
  // 1. Local repository first (zero network cost).
  if (binding != Binding::remote && repository_.has(component, constraint))
    return acquire_local(component, constraint);

  // 1b. An attached session's notification-maintained cache answers next:
  // retried resolves used to re-run the whole distributed query from the
  // hierarchy root every attempt, when the directory already knows where
  // the component runs.
  if (session_ != nullptr && binding != Binding::fetch_local) {
    if (auto cached = session_->resolve(component); cached.ok()) {
      metrics_.counter("node.query_cache_hits").inc();
      BoundComponent bound;
      bound.primary = *cached;
      bound.host = cached->node;
      return bound;
    }
  }

  // 2. Distributed query.
  ComponentQuery q;
  q.name_pattern = component;
  q.constraint = constraint;
  q.require_mobile = binding == Binding::fetch_local;
  auto hits = query_network(q);
  if (!hits) return hits.error();
  if (hits->empty())
    return Error{Errc::not_found,
                 "no node in the network offers " + component + " " +
                     constraint.to_string()};

  // Prefetch every mobile candidate's description in parallel (AMI
  // fan-out): the describe_component calls pipeline over the pooled
  // connections instead of serializing one roundtrip per candidate, and
  // the loop below consumes each reply as it reaches that candidate.
  std::map<std::string, orb::PendingInvocation> descriptions;
  if (binding == Binding::auto_decide && resources_.profile().can_install()) {
    for (const QueryHit& hit : *hits) {
      if (!hit.mobile) continue;
      auto service = node_service_ref(hit.node);
      if (!service) continue;
      const std::string key = hit.node.to_string() + "|" + hit.component +
                              "|" + hit.version.to_string();
      if (descriptions.count(key) != 0) continue;
      descriptions.emplace(
          key, orb_->invoke_async(*service, "describe_component",
                                  {orb::Value(hit.component),
                                   orb::Value(hit.version.to_string())},
                                  kIdempotent));
    }
  }

  for (const QueryHit& hit : *hits) {
    // 3. Decide fetch-vs-remote for this candidate.
    bool fetch = binding == Binding::fetch_local;
    if (binding == Binding::auto_decide && hit.mobile &&
        resources_.profile().can_install()) {
      const std::string key = hit.node.to_string() + "|" + hit.component +
                              "|" + hit.version.to_string();
      auto pending = descriptions.find(key);
      if (pending != descriptions.end()) {
        const auto& outcome = pending->second.outcome();
        if (outcome.ok() && !outcome->exception.has_value()) {
          auto d = pkg::ComponentDescription::from_xml(
              outcome->result.as<std::string>());
          // Bandwidth-sensitive components (the paper's MPEG-decoder case)
          // are worth fetching; others bind remotely.
          if (d.ok() && d->qos.min_bandwidth_kbps > 0) fetch = true;
        }
      }
    }

    if (fetch) {
      auto fetched = fetch_component(hit.node, hit.component, hit.version);
      if (fetched.ok()) {
        auto bound = acquire_local(component, constraint);
        if (bound.ok()) {
          bound->fetched = true;
          return bound;
        }
      }
      if (binding == Binding::fetch_local) continue;  // try next candidate
    }

    // 4. Remote bind: import the component's types, then acquire.
    auto idl_text = remote_idl(hit.node, hit.component, hit.version);
    if (idl_text.ok() && !idl_text->empty())
      (void)types_->register_idl(*idl_text);
    auto service = node_service_ref(hit.node);
    if (!service) continue;
    std::vector<orb::Value> args = {orb::Value(component),
                                    orb::Value(constraint.to_string()),
                                    orb::Value()};
    auto outcome = orb_->invoke(*service, "acquire_instance", args,
                                kIdempotent);
    if (!outcome || outcome->exception.has_value()) continue;
    BoundComponent bound;
    bound.instance_token = outcome->result.as<std::string>();
    bound.primary = args[2].as<orb::ObjectRef>();
    bound.host = hit.node;
    return bound;
  }
  return Error{Errc::unreachable,
               "every candidate for " + component + " failed to bind"};
}

Result<void> Node::fetch_component(NodeId from, const std::string& component,
                                   const Version& version) {
  auto service = node_service_ref(from);
  if (!service) return service.error();
  const NodeProfile& p = resources_.profile();
  auto package = orb_->call(
      *service, "fetch_package",
      {orb::Value(component), orb::Value(version.to_string()),
       orb::Value(p.arch), orb::Value(p.os), orb::Value(p.orb),
       orb::Value(std::string(device_class_name(p.device)))},
      kIdempotent);
  if (!package) return package.error();
  auto installed = install(package->as<Bytes>());
  if (!installed.ok() && installed.error().code != Errc::already_exists)
    return installed;
  return {};
}

Result<BoundComponent> Node::migrate_instance(InstanceId id, NodeId target) {
  obs::ScopedSpan span(tracer_, "migrate:" + id.to_string());
  auto r = migrate_instance_impl(id, target);
  if (!r.ok()) span.fail();
  return r;
}

Result<BoundComponent> Node::migrate_instance_impl(InstanceId id,
                                                   NodeId target) {
  auto snapshot = container_.capture(id);
  if (!snapshot) return snapshot.error();
  auto service = node_service_ref(target);
  if (!service) {
    (void)container_.activate(id);  // abort: resume locally
    return service.error();
  }

  auto try_receive = [&]() -> Result<BoundComponent> {
    std::vector<orb::Value> args = {
        orb::Value(snapshot->component),
        orb::Value(snapshot->version.to_string()),
        orb::Value(snapshot->state), orb::Value()};
    auto outcome = orb_->invoke(*service, "receive_instance", args);
    if (!outcome) return outcome.error();
    if (outcome->exception.has_value())
      return Error{Errc::remote_exception, outcome->exception->type_name};
    BoundComponent bound;
    bound.instance_token = outcome->result.as<std::string>();
    bound.primary = args[3].as<orb::ObjectRef>();
    bound.host = target;
    return bound;
  };

  auto received = try_receive();
  if (!received.ok()) {
    // Likely not installed there: ship the package (in its binary form, as
    // §2.2 describes) and retry once.
    auto raw = repository_.export_package(
        snapshot->component, snapshot->version,
        network_.node(target) != nullptr
            ? network_.node(target)->resources().profile()
            : resources_.profile());
    if (raw.ok()) {
      (void)orb_->call(*service, "accept_package", {orb::Value(*raw)});
      received = try_receive();
    }
  }
  if (!received.ok()) {
    (void)container_.activate(id);  // abort: resume locally
    return received.error();
  }

  // Re-establish the instance's outgoing connections on the target: one
  // pipelined invocation per port, all in flight at once (they address
  // distinct ports, so order is immaterial), collected before the local
  // original is destroyed.
  std::vector<orb::PendingInvocation> wiring;
  wiring.reserve(snapshot->connections.size());
  for (const auto& [port, ref] : snapshot->connections) {
    wiring.push_back(orb_->invoke_async(
        *service, "connect_instance",
        {orb::Value(received->instance_token), orb::Value(port),
         orb::Value(ref)}));
  }
  for (auto& pending : wiring) pending.wait();
  (void)container_.destroy(id);
  return received;
}

Result<BoundComponent> Node::replicate_instance(InstanceId id, NodeId target) {
  auto description = container_.description_of(id);
  if (!description) return description.error();
  if (!(*description)->replicable)
    return Error{Errc::refused,
                 (*description)->name + " is not declared replicable"};
  auto snapshot = container_.capture(id);
  if (!snapshot) return snapshot.error();
  // The original resumes immediately; the snapshot travels to the replica.
  (void)container_.activate(id);

  auto service = node_service_ref(target);
  if (!service) return service.error();
  auto try_receive = [&]() -> Result<BoundComponent> {
    std::vector<orb::Value> args = {
        orb::Value(snapshot->component),
        orb::Value(snapshot->version.to_string()),
        orb::Value(snapshot->state), orb::Value()};
    auto outcome = orb_->invoke(*service, "receive_instance", args);
    if (!outcome) return outcome.error();
    if (outcome->exception.has_value())
      return Error{Errc::remote_exception, outcome->exception->type_name};
    BoundComponent bound;
    bound.instance_token = outcome->result.as<std::string>();
    bound.primary = args[3].as<orb::ObjectRef>();
    bound.host = target;
    return bound;
  };
  auto replica = try_receive();
  if (!replica.ok()) {
    auto raw = repository_.export_package(
        snapshot->component, snapshot->version,
        network_.node(target) != nullptr
            ? network_.node(target)->resources().profile()
            : resources_.profile());
    if (raw.ok()) {
      (void)orb_->call(*service, "accept_package", {orb::Value(*raw)});
      replica = try_receive();
    }
  }
  if (!replica.ok()) return replica.error();
  // Same parallel wiring fan-out as migration.
  std::vector<orb::PendingInvocation> wiring;
  wiring.reserve(snapshot->connections.size());
  for (const auto& [port, ref] : snapshot->connections) {
    wiring.push_back(orb_->invoke_async(
        *service, "connect_instance",
        {orb::Value(replica->instance_token), orb::Value(port),
         orb::Value(ref)}));
  }
  for (auto& pending : wiring) pending.wait();
  return replica;
}

Result<void> Node::connect_remote(const BoundComponent& from,
                                  const std::string& port,
                                  const orb::ObjectRef& target) {
  if (from.host == id_) {
    const InstanceId id{
        static_cast<std::uint64_t>(std::stoull(from.instance_token))};
    return container_.connect(id, port, target);
  }
  auto service = node_service_ref(from.host);
  if (!service) return service.error();
  auto r = orb_->call(*service, "connect_instance",
                      {orb::Value(from.instance_token), orb::Value(port),
                       orb::Value(target)});
  if (!r) return r.error();
  return {};
}

Result<orb::ObjectRef> Node::instance_port(const BoundComponent& of,
                                           const std::string& port) {
  if (of.host == id_) {
    const InstanceId id{
        static_cast<std::uint64_t>(std::stoull(of.instance_token))};
    return container_.provided_port(id, port);
  }
  auto service = node_service_ref(of.host);
  if (!service) return service.error();
  auto r = orb_->call(*service, "instance_port",
                      {orb::Value(of.instance_token), orb::Value(port)},
                      kIdempotent);
  if (!r) return r.error();
  return r->as<orb::ObjectRef>();
}

Result<void> Node::subscribe_on(NodeId peer, const std::string& event_type,
                                const orb::ObjectRef& consumer) {
  auto service = node_service_ref(peer);
  if (!service) return service.error();
  auto r = orb_->call(*service, "subscribe_events",
                      {orb::Value(event_type), orb::Value(consumer)});
  if (!r) return r.error();
  return {};
}

Result<Bytes> Node::process_chunk_on(NodeId peer, const std::string& component,
                                     const VersionConstraint& constraint,
                                     BytesView chunk) {
  auto service = node_service_ref(peer);
  if (!service) return service.error();
  auto r = orb_->call(*service, "process_chunk",
                      {orb::Value(component), orb::Value(constraint.to_string()),
                       orb::Value(Bytes(chunk.begin(), chunk.end()))},
                      kIdempotent);
  if (!r) return r.error();
  return r->as<Bytes>();
}

// ---------------------------------------------------------------------------
// Crash fault model: crash / restart / checkpointing / failover

void Node::crash_local() {
  // Snapshot the "disk" (raw installed package images), then lose every bit
  // of RAM: instances, registry records, held checkpoints, protocol state.
  disk_image_ = repository_.raw_package_images();
  container_.destroy_all();
  repository_.clear();
  held_checkpoints_.clear();
  checkpoint_seq_.clear();
  package_shipped_.clear();
  restored_.clear();
  instance_epochs_.clear();
  last_checkpoint_ = 0;
  directory_.clear();  // RAM state: repopulated by post-restart gossip
  last_dir_gossip_ = 0;
  dir_gossip_rotor_ = 0;
  metrics_.counter("node.crashes").inc();
  recovery_log_.push_back("crash inc=" + std::to_string(incarnation_));
}

void Node::restart_local(NodeId bootstrap, TimePoint now) {
  ++incarnation_;
  cohesion_.set_incarnation(incarnation_);
  cohesion_.restart(now);
  orb_->set_incarnation(incarnation_);
  // Register a *fresh* endpoint: references minted before the crash point
  // at the old, permanently detached one, so stale refs fail with
  // Errc::unreachable -- retryable, and a re-resolve finds the new home.
  auto* orb_raw = orb_.get();
  const std::string endpoint = network_.transport().register_endpoint(
      [orb_raw](BytesView frame) { return orb_raw->handle_frame(frame); });
  orb_->set_endpoint(endpoint);
  network_.register_node(*this, endpoint);
  // Reload the disk image; the NodeService servant survived in the (still
  // live) object adapter, so the well-known key answers on the new endpoint.
  for (const Bytes& image : disk_image_) (void)repository_.install(image);
  disk_image_.clear();
  metrics_.counter("node.restarts").inc();
  recovery_log_.push_back("restart inc=" + std::to_string(incarnation_));
  if (bootstrap.value != 0 && bootstrap != id_) {
    join(bootstrap, now);
  } else {
    start_network(now);  // lone survivor: re-found the network
  }
}

void Node::run_checkpoints() {
  if (failover_.replicas <= 0) return;
  // Holder set: the R lowest-id live peers, except that peers the phi
  // detector currently marks *slow* (gray, not dead -- DESIGN.md §17) are
  // deprioritized: they hold checkpoints only when there are not enough
  // healthy peers to fill R. Safe to decide locally: the chosen set ships
  // inside every CheckpointRecord (rec.holders), and the restore-side
  // election runs over that carried list, never over a recomputation.
  std::vector<NodeId> holders;
  std::vector<NodeId> slow;
  for (Node* p : network_.nodes()) {
    if (p->id() == id_) continue;
    if (cohesion_.is_slow(p->id())) {
      slow.push_back(p->id());
      continue;
    }
    holders.push_back(p->id());
    if (static_cast<int>(holders.size()) >= failover_.replicas) break;
  }
  for (NodeId s : slow) {
    if (static_cast<int>(holders.size()) >= failover_.replicas) break;
    holders.push_back(s);
  }
  if (holders.empty()) return;
  for (InstanceId iid : container_.instance_ids()) {
    auto snap = container_.checkpoint(iid);
    if (!snap.ok()) continue;  // not checkpointable (immobile, not active)
    CheckpointRecord rec;
    rec.origin = id_;
    rec.origin_incarnation = incarnation_;
    rec.instance = iid;
    rec.component = snap->component;
    rec.version = snap->version;
    rec.seq = ++checkpoint_seq_[iid];
    rec.epoch = cohesion_.epoch();
    rec.state = snap->state;
    rec.connections = snap->connections;
    rec.holders = holders;
    const std::string pkg_key =
        snap->component + "@" + snap->version.to_string();
    for (NodeId h : holders) {
      auto service = node_service_ref(h);
      if (!service) continue;
      CheckpointRecord out = rec;
      // Ship the package bytes with the first checkpoint to each holder
      // only; later ones carry state alone.
      const auto ship_key = std::make_pair(h.value, pkg_key);
      const bool ship_package = package_shipped_.count(ship_key) == 0;
      if (ship_package) {
        Node* holder = network_.node(h);
        auto raw = repository_.export_package(
            snap->component, snap->version,
            holder != nullptr ? holder->resources().profile()
                              : resources_.profile());
        if (raw.ok()) out.package = std::move(*raw);
      }
      auto sent = orb_->call(*service, "store_checkpoint",
                             {orb::Value(out.encode())}, kIdempotent);
      if (sent) {
        if (ship_package && !out.package.empty())
          package_shipped_.insert(ship_key);
        metrics_.counter("failover.checkpoints_sent").inc();
      }
    }
    recovery_log_.push_back("ckpt " + snap->component + "#" + iid.to_string() +
                            " seq=" + std::to_string(rec.seq));
  }
}

void Node::on_peer_dead(NodeId dead, std::uint64_t dead_incarnation,
                        const std::vector<NodeId>& alive) {
  // Checkpoints from earlier lives of the node are unrestorable garbage: a
  // restart already revived those instances on the origin itself.
  held_checkpoints_.purge_origin_below(dead, dead_incarnation);
  for (const CheckpointRecord* rec : held_checkpoints_.records_for(dead)) {
    const std::string key = dead.to_string() + ":" +
                            std::to_string(rec->origin_incarnation) + ":" +
                            rec->instance.to_string();
    if (restored_.count(key) != 0) continue;  // duplicate death verdict
    // Deterministic coordination-free election: rec->holders is id-ordered,
    // so the first holder still believed alive is the unique winner -- every
    // holder computes the same answer from the same death verdict.
    NodeId winner{};
    for (NodeId h : rec->holders) {
      if (h == id_ || std::find(alive.begin(), alive.end(), h) != alive.end()) {
        winner = h;
        break;
      }
    }
    if (winner != id_) continue;
    restored_[key] = RestoredCopy{dead, rec->origin_incarnation,
                                  rec->instance.value, InstanceId{}};
    obs::ScopedSpan span(tracer_, "failover:" + rec->component);
    VersionConstraint exact;
    exact.op = VersionConstraint::Op::eq;
    exact.bound = rec->version;
    if (!repository_.has(rec->component, exact) && !rec->package.empty())
      (void)install(rec->package);
    Container::Snapshot snapshot;
    snapshot.component = rec->component;
    snapshot.version = rec->version;
    snapshot.state = rec->state;
    snapshot.connections = rec->connections;
    auto restored = container_.restore(snapshot);
    if (!restored) {
      span.fail();
      metrics_.counter("failover.restore_failures").inc();
      recovery_log_.push_back("restore-failed " + rec->component + " from " +
                              dead.to_string());
      continue;
    }
    restored_[key].local = *restored;
    instance_epochs_[*restored] = cohesion_.epoch();
    // Failover win: advertise the restored copy. The record carries the
    // post-verdict epoch, so it outranks anything the dead (or cut-off)
    // origin published -- and if every replica is on the wrong side of a
    // partition right now, the publish degrades to the local table and
    // anti-entropy delivers it after the heal.
    if (auto primary = primary_port(*restored); primary.ok())
      publish_service(rec->component, *primary);
    // Publish the restore as a failover claim: it gossips through the
    // anti-entropy tables, so after a heal the (possibly still alive)
    // origin learns a second primary exists and the loser yields.
    FailoverClaim claim;
    claim.origin = dead;
    claim.origin_inc = rec->origin_incarnation;
    claim.instance = rec->instance.value;
    claim.epoch = cohesion_.epoch();
    claim.host = id_;
    cohesion_.add_failover_claim(claim);
    metrics_.counter("failover.instances_restored").inc();
    recovery_log_.push_back("restore " + rec->component + " from " +
                            dead.to_string() + " seq=" +
                            std::to_string(rec->seq) + " ep=" +
                            std::to_string(claim.epoch));
    cohesion_.broadcast_update(network_.now());  // strong-mode hook
  }
}

std::uint64_t Node::instance_epoch(InstanceId id) const {
  auto it = instance_epochs_.find(id);
  return it == instance_epochs_.end() ? 1 : it->second;
}

void Node::retire_instance(InstanceId id, const std::string& why) {
  std::string service;
  orb::ObjectRef primary;
  if (auto d = container_.description_of(id); d.ok()) {
    service = (*d)->name;
    for (const auto& port : (*d)->ports_of(pkg::PortKind::provides)) {
      if (auto ref = container_.provided_port(id, port.name); ref.ok()) {
        if (primary.is_nil()) primary = *ref;
        orb_->retire_object(ref->key);
      }
    }
  }
  // Tombstone the binding under the *instance's* establishment epoch, not
  // the current (post-heal, merged-up) one: the tombstone then kills
  // exactly the binding generation it names, and can never outrank the
  // dual-primary winner's record, which rode a later epoch -- in either
  // arrival order, since every table keeps a pure max over newer_than()'s
  // total order (see ServiceDirectory::apply).
  const std::uint64_t establishment_epoch = instance_epoch(id);
  (void)container_.destroy(id);
  instance_epochs_.erase(id);
  if (!service.empty()) {
    dir::ServiceRecord rec;
    rec.service = service;
    rec.ref = primary;
    rec.host = id_;
    rec.incarnation = incarnation_;
    rec.epoch = establishment_epoch;
    rec.stamp = static_cast<std::uint64_t>(network_.now());
    rec.retired = true;
    publish_record(rec);
  }
  metrics_.counter("failover.dual_primary_resolved").inc();
  recovery_log_.push_back(why);
}

void Node::on_failover_claim(const FailoverClaim& claim) {
  // Only the named origin arbitrates its own live instance; claims about
  // an earlier incarnation are fenced (that life's instances are gone).
  if (claim.origin != id_ || claim.host == id_) return;
  if (claim.origin_inc != incarnation_) return;
  const InstanceId iid{claim.instance};
  const auto ids = container_.instance_ids();
  if (std::find(ids.begin(), ids.end(), iid) == ids.end()) return;
  // Deterministic total order on primaries: higher epoch wins (the restore
  // rode a quorum death verdict, which bumped it past anything the cut-off
  // side established), then lower host id. Equal-epoch claims cannot carry
  // a higher incarnation than ours here -- on_peer_dead fences those.
  const std::uint64_t local_epoch = instance_epoch(iid);
  const bool claim_wins = claim.epoch != local_epoch
                              ? claim.epoch > local_epoch
                              : claim.host.value < id_.value;
  if (!claim_wins) return;  // keep ours; the holder revokes on our revival
  obs::ScopedSpan span(tracer_, "dual_primary:yield:" + iid.to_string());
  retire_instance(iid, "dual-primary yield inst=" + iid.to_string() + " to=" +
                           claim.host.to_string() + " ep=" +
                           std::to_string(claim.epoch));
}

void Node::on_peer_revived(NodeId origin, std::uint64_t origin_inc) {
  // The origin was never dead (equal-incarnation revival): every restored
  // copy of its instances hosted here is half of a dual primary. Keep the
  // copy only while our claim is the dominant one for that instance -- the
  // origin then yields via on_failover_claim; otherwise the copy dies now.
  for (auto it = restored_.begin(); it != restored_.end();) {
    const RestoredCopy& copy = it->second;
    if (copy.origin != origin || copy.origin_inc != origin_inc ||
        copy.local.value == 0) {
      ++it;
      continue;
    }
    bool dominant = false;
    for (const FailoverClaim& c : cohesion_.failover_claims()) {
      if (c.origin == origin && c.instance == copy.instance) {
        dominant = c.host == id_;
        break;
      }
    }
    if (dominant) {
      ++it;
      continue;
    }
    obs::ScopedSpan span(tracer_,
                         "dual_primary:revoke:" + copy.local.to_string());
    retire_instance(copy.local,
                    "dual-primary revoke inst=" + copy.local.to_string() +
                        " origin=" + origin.to_string());
    it = restored_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// NodeService servant

void Node::make_node_servant() {
  auto servant = std::make_shared<orb::DynamicServant>("clc::NodeService");

  servant->on("accept_package", [this](orb::ServerRequest& req) -> Result<void> {
    auto r = install(req.arg(0).as<Bytes>());
    if (!r.ok() && r.error().code != Errc::already_exists) return r;
    return {};
  });

  servant->on("describe_component",
              [this](orb::ServerRequest& req) -> Result<void> {
    auto version = Version::parse(req.arg(1).as<std::string>());
    if (!version) return version.error();
    auto ic = repository_.find_exact(req.arg(0).as<std::string>(), *version);
    if (!ic) return ic.error();
    req.set_result(orb::Value((*ic)->description.to_xml()));
    return {};
  });

  servant->on("get_component_idl",
              [this](orb::ServerRequest& req) -> Result<void> {
    auto version = Version::parse(req.arg(1).as<std::string>());
    if (!version) return version.error();
    auto idl_text = repository_.idl_of(req.arg(0).as<std::string>(), *version);
    if (!idl_text) return idl_text.error();
    req.set_result(orb::Value(std::move(*idl_text)));
    return {};
  });

  servant->on("fetch_package", [this](orb::ServerRequest& req) -> Result<void> {
    auto version = Version::parse(req.arg(1).as<std::string>());
    if (!version) return version.error();
    NodeProfile target;
    target.arch = req.arg(2).as<std::string>();
    target.os = req.arg(3).as<std::string>();
    target.orb = req.arg(4).as<std::string>();
    target.device = req.arg(5).as<std::string>() == "pda"
                        ? DeviceClass::pda
                        : DeviceClass::workstation;
    auto raw = repository_.export_package(req.arg(0).as<std::string>(),
                                          *version, target);
    if (!raw) return raw.error();
    req.set_result(orb::Value(std::move(*raw)));
    return {};
  });

  servant->on("acquire_instance",
              [this](orb::ServerRequest& req) -> Result<void> {
    auto constraint = VersionConstraint::parse(req.arg(1).as<std::string>());
    if (!constraint) return constraint.error();
    auto bound = acquire_local(req.arg(0).as<std::string>(), *constraint);
    if (!bound) return bound.error();
    req.set_result(orb::Value(bound->instance_token));
    req.args()[2] = orb::Value(bound->primary);
    return {};
  });

  servant->on("connect_instance",
              [this](orb::ServerRequest& req) -> Result<void> {
    const InstanceId id{
        static_cast<std::uint64_t>(std::stoull(req.arg(0).as<std::string>()))};
    return container_.connect(id, req.arg(1).as<std::string>(),
                              req.arg(2).as<orb::ObjectRef>());
  });

  servant->on("instance_port", [this](orb::ServerRequest& req) -> Result<void> {
    const InstanceId id{
        static_cast<std::uint64_t>(std::stoull(req.arg(0).as<std::string>()))};
    auto ref = container_.provided_port(id, req.arg(1).as<std::string>());
    if (!ref) return ref.error();
    req.set_result(orb::Value(*ref));
    return {};
  });

  servant->on("receive_instance",
              [this](orb::ServerRequest& req) -> Result<void> {
    auto version = Version::parse(req.arg(1).as<std::string>());
    if (!version) return version.error();
    Container::Snapshot snapshot;
    snapshot.component = req.arg(0).as<std::string>();
    snapshot.version = *version;
    snapshot.state = req.arg(2).as<Bytes>();
    auto id = container_.restore(snapshot);
    if (!id) return id.error();
    instance_epochs_[*id] = cohesion_.epoch();
    auto primary = primary_port(*id);
    if (!primary) return primary.error();
    // Migration landed here: the directory's later-stamp record supersedes
    // the source's and subscribed sessions rebind on the `moved` push.
    publish_service(snapshot.component, *primary);
    req.set_result(orb::Value(id->to_string()));
    req.args()[3] = orb::Value(*primary);
    return {};
  });

  servant->on("subscribe_events",
              [this](orb::ServerRequest& req) -> Result<void> {
    return events_.subscribe_remote(req.arg(0).as<std::string>(),
                                    req.arg(1).as<orb::ObjectRef>());
  });

  servant->on("process_chunk", [this](orb::ServerRequest& req) -> Result<void> {
    const std::string component = req.arg(0).as<std::string>();
    auto constraint = VersionConstraint::parse(req.arg(1).as<std::string>());
    if (!constraint) return constraint.error();
    InstanceId id;
    if (auto existing = container_.find_active(component, *constraint);
        existing.ok()) {
      id = *existing;
    } else {
      // Volunteer nodes fetch the aggregatable component on first use
      // (the network acts as the repository, §2.4.3).
      auto bound = resolve(component, *constraint, Binding::fetch_local);
      if (!bound) return bound.error();
      id = InstanceId{
          static_cast<std::uint64_t>(std::stoull(bound->instance_token))};
    }
    auto impl = container_.implementation(id);
    if (!impl) return impl.error();
    auto result = (*impl)->process_chunk(req.arg(2).as<Bytes>());
    if (!result) return result.error();
    req.set_result(orb::Value(std::move(*result)));
    return {};
  });

  servant->on("store_checkpoint",
              [this](orb::ServerRequest& req) -> Result<void> {
    auto rec = CheckpointRecord::decode(req.arg(0).as<Bytes>());
    if (!rec) return rec.error();
    if (held_checkpoints_.store(std::move(*rec))) {
      metrics_.counter("failover.checkpoints_stored").inc();
    } else {
      metrics_.counter("failover.checkpoints_fenced").inc();
    }
    return {};
  });

  servant->on("deliver", [this](orb::ServerRequest& req) -> Result<void> {
    auto m = ProtoMessage::decode(req.arg(0).as<Bytes>());
    if (!m.ok()) return {};
    if (zone_router_ && ZoneRouter::handles(*m))
      zone_router_->on_message(*m, network_.now());
    else
      cohesion_.on_message(*m, network_.now());
    return {};
  });

  node_service_ = orb_->activate_with_key(servant, node_service_key(id_));
}

}  // namespace clc::core
