// Multi-level MRM hierarchy: zone routing above the per-zone cohesion tree.
//
// A mega-cluster is divided into *zones*. Each zone runs the full Network
// Cohesion protocol (cohesion.hpp) among its own members only -- its MRM
// tree, quorum death verdicts and replica promotion are all scoped to the
// zone. The ZoneRouter is the level above: zone roots gossip `z_hello`
// beacons to each other, forming a roots-of-roots layer in which
//
//  * each zone is identified by (zone id, zone epoch, current root). The
//    zone epoch *is* the zone root's cohesion partition epoch, so the PR 5
//    fencing story layers: a replica promotion inside a zone bumps the
//    epoch, and the promoted root's hellos displace the old root from every
//    peer's zone table. Hellos from a deposed root (lower epoch, or equal
//    epoch + higher id) are dropped (zone.stale_zone_fenced).
//
//  * the *super root* (root of roots) is the lowest-id non-suspect zone's
//    root. It owns nothing durable -- it is only the rendezvous for
//    non-shardable (glob) queries, so its failover is just "the next zone
//    id takes over", with no state to rebuild.
//
//  * the Distributed Registry is sharded across zones by consistent
//    hashing (shard.hpp): every zone root periodically publishes its
//    zone's aggregate "name@version" labels to the owner zone of each
//    name (`z_publish`), and an exact-name resolve routes member -> own
//    zone root -> (locality fast path: answered on the spot when the name
//    lives in this zone) -> one ring hop to the owner root (`z_fwd`) ->
//    reply. No single root ever holds the full directory, and a resolve
//    costs O(1) messages regardless of cluster size.
//
// Like CohesionNode, the router is a pure message-driven state machine
// (injected Sender, time through on_tick), so it runs unchanged under the
// discrete-event simulator and the threaded Node runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/cohesion.hpp"
#include "core/proto.hpp"
#include "core/shard.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/version.hpp"

namespace clc::core {

struct ZoneConfig {
  std::uint32_t zone = 0;           // this node's zone id (0 = unzoned)
  Duration hello_interval = seconds(2);
  Duration publish_interval = seconds(4);
  int suspect_after = 3;            // missed hellos until a zone is suspect
  Duration resolve_timeout = seconds(2);
  int ring_vnodes = 128;
  std::uint32_t max_results = 8;
  /// Shard entries not refreshed by a publish within this window expire
  /// (their zone stopped publishing: dead or partitioned away).
  Duration entry_ttl = seconds(12);
};

/// One match from the sharded registry: which zone (and its root, the
/// contact point for that zone) advertises `name` at `version`.
struct ZoneHit {
  std::string name;
  Version version;
  std::uint32_t zone = 0;
  NodeId root;

  bool operator==(const ZoneHit&) const = default;
};

/// `degraded` = some zone was suspect while answering: coverage is partial
/// (mirrors cohesion's QueryResult marker one level up).
struct ZoneResolveResult {
  std::vector<ZoneHit> hits;
  bool degraded = false;
};

class ZoneRouter {
 public:
  using Sender = CohesionNode::Sender;
  using ResolveCallback = std::function<void(ZoneResolveResult)>;

  /// The router wraps an existing CohesionNode (whose config().zone must
  /// match cfg.zone) and installs itself as its role hook.
  ZoneRouter(NodeId id, ZoneConfig cfg, CohesionNode& cohesion, Sender send,
             obs::MetricsRegistry* metrics = nullptr);

  /// Static cluster config (felis-style): the founding member of every
  /// zone, so any node -- in particular a freshly promoted replacement
  /// root -- can reach the other zones without discovery.
  void set_zone_bootstraps(std::vector<std::pair<std::uint32_t, NodeId>> b);
  /// Seed the zone table from the bootstraps and start duty cycles.
  void attach(TimePoint now);

  /// True for frames the router owns ("z_*" kinds).
  [[nodiscard]] static bool handles(const ProtoMessage& m) {
    return m.kind.size() > 2 && m.kind[0] == 'z' && m.kind[1] == '_';
  }
  void on_message(const ProtoMessage& m, TimePoint now);
  /// Drive timers; call at least every hello_interval/2.
  void on_tick(TimePoint now);

  /// Resolve `pattern` through the sharded registry. Exact names route
  /// member -> zone root -> owner; glob patterns escalate to the super
  /// root which fans out to every zone root. The callback fires exactly
  /// once (empty + degraded on timeout).
  void resolve(const std::string& pattern, TimePoint now, ResolveCallback cb);

  // ------------------------------------------------------------ introspection
  [[nodiscard]] std::uint32_t zone() const noexcept { return cfg_.zone; }
  [[nodiscard]] bool is_zone_root() const noexcept { return cohesion_.is_root(); }
  /// The zone epoch this zone currently announces.
  [[nodiscard]] std::uint64_t zone_epoch() const noexcept {
    return cohesion_.epoch();
  }
  struct ZonePeer {
    std::uint32_t zone = 0;
    NodeId root;
    std::uint64_t epoch = 1;
    bool suspect = false;
  };
  [[nodiscard]] std::vector<ZonePeer> zone_table(TimePoint now) const;
  /// (zone, root) of the current super root (roots-of-roots rendezvous).
  [[nodiscard]] std::pair<std::uint32_t, NodeId> super_root(TimePoint now) const;
  [[nodiscard]] bool is_super_root(TimePoint now) const {
    return super_root(now).second == id_;
  }
  /// Which zone owns `name` on the current ring (0 = empty ring).
  [[nodiscard]] std::uint32_t owner_zone(const std::string& name,
                                         TimePoint now) const;
  /// Shard-store size at this node (nonzero only at zone roots).
  [[nodiscard]] std::size_t shard_entries() const;

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *metrics_; }

  // Wire codecs for the zone-layer blobs (public so the golden wire tests
  // can pin their byte layout; the encodings are frozen interop surface).
  static Bytes encode_labels(const std::set<std::string>& labels);
  static std::vector<std::string> decode_labels(BytesView data);
  static Bytes encode_zone_hits(const std::vector<ZoneHit>& hits);
  static std::vector<ZoneHit> decode_zone_hits(BytesView data);

 private:
  struct PeerState {
    NodeId root;
    std::uint64_t epoch = 1;
    TimePoint last_heard = 0;
    bool heard = false;  // bootstrap-only entries get a grace period
  };
  struct ShardEntry {
    std::uint32_t zone = 0;
    NodeId root;
    Version version;
    std::uint64_t epoch = 1;
    TimePoint stamp = 0;
  };
  struct Pending {  // origin side of a resolve
    ResolveCallback cb;
    TimePoint deadline = 0;
  };
  struct Relay {  // root / super-root side
    NodeId reply_to;           // member (or self) awaiting the answer
    std::uint64_t reply_qid = 0;
    TimePoint deadline = 0;
    std::vector<ZoneHit> hits;
    int awaiting = 0;
    bool degraded = false;
  };

  [[nodiscard]] ProtoMessage make(const std::string& kind) const;
  void send(NodeId to, const ProtoMessage& m) const;
  [[nodiscard]] bool zone_suspect(const PeerState& p, TimePoint now) const;
  /// Best-known root of `z` (own zone: cohesion's view; else zone table,
  /// falling back to the static bootstrap).
  [[nodiscard]] NodeId root_of(std::uint32_t z) const;
  /// Non-suspect zones (own zone always included), the ring's holder set.
  [[nodiscard]] std::set<std::uint32_t> alive_zones(TimePoint now) const;
  void rebuild_ring(TimePoint now) const;
  /// Update the zone table from an inbound root announcement (hello or
  /// publish). Returns false when the sender is a fenced stale root.
  bool note_zone_root(std::uint32_t z, NodeId root, std::uint64_t epoch,
                      TimePoint now);
  void send_hellos(TimePoint now);
  void send_publishes(TimePoint now);
  /// Entry point shared by resolve()-at-root and inbound z_resolve.
  void root_resolve(std::uint64_t reply_qid, NodeId reply_to,
                    const std::string& pattern, TimePoint now);
  /// Local-zone matches for `pattern` out of cohesion's aggregate names.
  [[nodiscard]] std::vector<ZoneHit> local_hits(
      const std::string& pattern) const;
  [[nodiscard]] std::vector<ZoneHit> store_hits(const std::string& name) const;
  void finish_relay(std::uint64_t qid, TimePoint now);
  void complete_pending(std::uint64_t qid, ZoneResolveResult r);
  void deliver_hits(NodeId to, std::uint64_t qid,
                    const std::vector<ZoneHit>& hits, bool degraded,
                    TimePoint now);

  NodeId id_;
  ZoneConfig cfg_;
  CohesionNode& cohesion_;
  Sender send_;

  std::vector<std::pair<std::uint32_t, NodeId>> bootstraps_;
  std::map<std::uint32_t, PeerState> zones_;  // other zones only
  std::map<std::string, std::vector<ShardEntry>> store_;
  mutable ShardMap ring_;
  mutable std::set<std::uint32_t> ring_zones_;  // holder set ring_ reflects

  std::map<std::uint64_t, Pending> pending_;
  std::map<std::uint64_t, Relay> relays_;
  std::uint64_t next_qid_ = 1;

  TimePoint last_hello_ = 0;
  TimePoint last_publish_ = 0;
  bool announce_pending_ = false;  // role gained: hello+publish on next tick
  bool attached_ = false;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* hellos_sent_;
  obs::Counter* publishes_sent_;
  obs::Counter* resolves_;
  obs::Counter* local_fast_path_;
  obs::Counter* ring_hops_;
  obs::Counter* glob_fanouts_;
  obs::Counter* stale_zone_fenced_;
  obs::Counter* forwards_;
};

}  // namespace clc::core
