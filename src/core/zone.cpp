#include "core/zone.hpp"

#include <algorithm>
#include <tuple>

#include "util/strings.hpp"

namespace clc::core {

ZoneRouter::ZoneRouter(NodeId id, ZoneConfig cfg, CohesionNode& cohesion,
                       Sender send, obs::MetricsRegistry* metrics)
    : id_(id),
      cfg_(cfg),
      cohesion_(cohesion),
      send_(std::move(send)),
      ring_(cfg.ring_vnodes),
      owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      hellos_sent_(&metrics_->counter("zone.hellos_sent")),
      publishes_sent_(&metrics_->counter("zone.publishes_sent")),
      resolves_(&metrics_->counter("zone.resolves")),
      local_fast_path_(&metrics_->counter("zone.local_fast_path")),
      ring_hops_(&metrics_->counter("zone.ring_hops")),
      glob_fanouts_(&metrics_->counter("zone.glob_fanouts")),
      stale_zone_fenced_(&metrics_->counter("zone.stale_zone_fenced")),
      forwards_(&metrics_->counter("zone.forwards")) {
  // Gaining the root role makes this node the zone's face to the other
  // zones: announce (hello + publish) on the next tick. Losing it orphans
  // the shard store -- the replacement root repopulates its own from the
  // next publish round, and peers' z_fwd traffic follows the new root via
  // the hello fencing, so keeping stale entries here only risks serving
  // them to a misrouted query.
  cohesion_.set_role_hook([this](bool is_root) {
    if (is_root) {
      announce_pending_ = true;
    } else {
      store_.clear();
    }
  });
}

void ZoneRouter::set_zone_bootstraps(
    std::vector<std::pair<std::uint32_t, NodeId>> b) {
  bootstraps_ = std::move(b);
}

void ZoneRouter::attach(TimePoint now) {
  attached_ = true;
  last_hello_ = now;
  last_publish_ = now;
  for (const auto& [z, n] : bootstraps_) {
    if (z == cfg_.zone || z == 0) continue;
    auto [it, inserted] = zones_.emplace(z, PeerState{});
    if (inserted) {
      it->second.root = n;
      it->second.last_heard = now;  // grace until the first real hello
    }
  }
  if (cohesion_.is_root()) announce_pending_ = true;
}

ProtoMessage ZoneRouter::make(const std::string& kind) const {
  ProtoMessage m;
  m.kind = kind;
  m.sender = id_;
  return m;
}

void ZoneRouter::send(NodeId to, const ProtoMessage& m) const {
  if (to == id_ || !to.valid()) return;
  send_(to, m);
}

bool ZoneRouter::zone_suspect(const PeerState& p, TimePoint now) const {
  return now - p.last_heard > cfg_.suspect_after * cfg_.hello_interval;
}

NodeId ZoneRouter::root_of(std::uint32_t z) const {
  if (z == cfg_.zone)
    return cohesion_.is_root() ? id_ : cohesion_.current_root();
  if (auto it = zones_.find(z); it != zones_.end() && it->second.root.valid())
    return it->second.root;
  for (const auto& [bz, n] : bootstraps_)
    if (bz == z) return n;
  return NodeId{};
}

std::set<std::uint32_t> ZoneRouter::alive_zones(TimePoint now) const {
  std::set<std::uint32_t> out{cfg_.zone};
  for (const auto& [z, p] : zones_)
    if (!zone_suspect(p, now)) out.insert(z);
  return out;
}

void ZoneRouter::rebuild_ring(TimePoint now) const {
  const std::set<std::uint32_t> az = alive_zones(now);
  if (az == ring_zones_) return;
  ring_ = ShardMap(cfg_.ring_vnodes);
  for (std::uint32_t z : az) ring_.add_holder(z);
  ring_zones_ = az;
}

std::uint32_t ZoneRouter::owner_zone(const std::string& name,
                                     TimePoint now) const {
  rebuild_ring(now);
  return ring_.owner_of(name);
}

std::size_t ZoneRouter::shard_entries() const {
  std::size_t n = 0;
  for (const auto& [name, entries] : store_) n += entries.size();
  return n;
}

std::vector<ZoneRouter::ZonePeer> ZoneRouter::zone_table(TimePoint now) const {
  std::vector<ZonePeer> out;
  out.push_back({cfg_.zone, root_of(cfg_.zone), cohesion_.epoch(), false});
  for (const auto& [z, p] : zones_)
    out.push_back({z, p.root, p.epoch, zone_suspect(p, now)});
  std::sort(out.begin(), out.end(),
            [](const ZonePeer& a, const ZonePeer& b) { return a.zone < b.zone; });
  return out;
}

std::pair<std::uint32_t, NodeId> ZoneRouter::super_root(TimePoint now) const {
  const auto az = alive_zones(now);
  const std::uint32_t z = *az.begin();  // lowest alive zone id
  return {z, root_of(z)};
}

bool ZoneRouter::note_zone_root(std::uint32_t z, NodeId root,
                                std::uint64_t epoch, TimePoint now) {
  if (z == 0 || z == cfg_.zone) return false;
  auto [it, inserted] = zones_.emplace(z, PeerState{});
  PeerState& p = it->second;
  if (inserted || !p.heard) {
    p.root = root;
    p.epoch = epoch;
    p.last_heard = now;
    p.heard = true;
    return true;
  }
  if (root == p.root) {
    if (epoch > p.epoch) p.epoch = epoch;
    p.last_heard = now;
    return true;
  }
  // A different node claims the zone's root role: the zone epoch decides,
  // exactly like the in-zone split-brain tie-break (higher epoch wins,
  // lower id breaks ties). A deposed root's announcements die here.
  const bool wins = epoch != p.epoch ? epoch > p.epoch : root.value < p.root.value;
  if (!wins) {
    stale_zone_fenced_->inc();
    return false;
  }
  p.root = root;
  p.epoch = epoch;
  p.last_heard = now;
  return true;
}

// ---------------------------------------------------------------------------
// Duty cycles (zone roots only)

void ZoneRouter::send_hellos(TimePoint now) {
  (void)now;
  ProtoMessage m = make("z_hello");
  m.set_int("zn", static_cast<std::int64_t>(cfg_.zone));
  m.set_int("zep", static_cast<std::int64_t>(cohesion_.epoch()));
  std::set<std::uint32_t> targets;
  for (const auto& [z, p] : zones_) targets.insert(z);
  for (const auto& [z, n] : bootstraps_) targets.insert(z);
  for (std::uint32_t z : targets) {
    if (z == cfg_.zone || z == 0) continue;
    const NodeId to = root_of(z);
    if (!to.valid()) continue;
    hellos_sent_->inc();
    send(to, m);
  }
}

void ZoneRouter::send_publishes(TimePoint now) {
  rebuild_ring(now);
  std::map<std::uint32_t, std::set<std::string>> batches;
  for (const auto& label : cohesion_.aggregate_names()) {
    const auto [name, version] = split_label(label);
    (void)version;
    const std::uint32_t owner = ring_.owner_of(name);
    if (owner != 0) batches[owner].insert(label);
  }
  // Own-zone batch applies locally (and an *empty* own batch still clears
  // entries for components this zone no longer hosts).
  batches[cfg_.zone];
  for (const auto& [owner, labels] : batches) {
    if (owner == cfg_.zone) {
      for (auto it = store_.begin(); it != store_.end();) {
        auto& entries = it->second;
        entries.erase(std::remove_if(entries.begin(), entries.end(),
                                     [&](const ShardEntry& e) {
                                       return e.zone == cfg_.zone;
                                     }),
                      entries.end());
        it = entries.empty() ? store_.erase(it) : std::next(it);
      }
      for (const auto& label : labels) {
        const auto [name, version] = split_label(label);
        store_[name].push_back(
            {cfg_.zone, id_, version, cohesion_.epoch(), now});
      }
      continue;
    }
    const NodeId to = root_of(owner);
    if (!to.valid()) continue;
    ProtoMessage m = make("z_publish");
    m.set_int("zn", static_cast<std::int64_t>(cfg_.zone));
    m.set_int("zep", static_cast<std::int64_t>(cohesion_.epoch()));
    m.blob = encode_labels(labels);
    publishes_sent_->inc();
    send(to, m);
  }
}

void ZoneRouter::on_tick(TimePoint now) {
  if (!attached_) attach(now);
  // Expire shard entries whose zone stopped publishing (dead or cut off).
  for (auto it = store_.begin(); it != store_.end();) {
    auto& entries = it->second;
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const ShardEntry& e) {
                                   return now - e.stamp > cfg_.entry_ttl;
                                 }),
                  entries.end());
    it = entries.empty() ? store_.erase(it) : std::next(it);
  }
  if (cohesion_.is_root()) {
    if (announce_pending_ || now - last_hello_ >= cfg_.hello_interval) {
      send_hellos(now);
      last_hello_ = now;
    }
    if (announce_pending_ || now - last_publish_ >= cfg_.publish_interval) {
      send_publishes(now);
      last_publish_ = now;
    }
    announce_pending_ = false;
  }
  // Resolve timeouts: answer with what we have (degraded) rather than
  // leaving callers hanging.
  std::vector<std::uint64_t> expired;
  for (const auto& [qid, r] : relays_)
    if (now >= r.deadline) expired.push_back(qid);
  for (std::uint64_t qid : expired) {
    relays_[qid].degraded = true;
    finish_relay(qid, now);
  }
  expired.clear();
  for (const auto& [qid, p] : pending_)
    if (now >= p.deadline) expired.push_back(qid);
  for (std::uint64_t qid : expired)
    complete_pending(qid, {{}, /*degraded=*/true});
}

// ---------------------------------------------------------------------------
// Resolve path

std::vector<ZoneHit> ZoneRouter::local_hits(const std::string& pattern) const {
  std::vector<ZoneHit> hits;
  const NodeId zone_root =
      cohesion_.is_root() ? id_ : cohesion_.current_root();
  for (const auto& label : cohesion_.aggregate_names()) {
    auto [name, version] = split_label(label);
    if (!glob_match(pattern, name)) continue;
    hits.push_back({std::move(name), version, cfg_.zone, zone_root});
  }
  return hits;
}

std::vector<ZoneHit> ZoneRouter::store_hits(const std::string& name) const {
  std::vector<ZoneHit> hits;
  if (auto it = store_.find(name); it != store_.end()) {
    for (const auto& e : it->second)
      hits.push_back({name, e.version, e.zone, e.root});
  }
  return hits;
}

void ZoneRouter::resolve(const std::string& pattern, TimePoint now,
                         ResolveCallback cb) {
  const std::uint64_t qid = (id_.value << 20) | next_qid_++;
  // Members wait out one extra relay deadline so a root's partial
  // (degraded) answer still beats the local timeout.
  pending_[qid] = {std::move(cb), now + 2 * cfg_.resolve_timeout};
  if (cohesion_.is_root()) {
    root_resolve(qid, id_, pattern, now);
    return;
  }
  const NodeId root = cohesion_.current_root();
  if (!root.valid()) {
    complete_pending(qid, {{}, /*degraded=*/true});
    return;
  }
  ProtoMessage m = make("z_resolve");
  m.set_int("qid", static_cast<std::int64_t>(qid));
  m.set("pat", pattern);
  send(root, m);
}

void ZoneRouter::root_resolve(std::uint64_t reply_qid, NodeId reply_to,
                              const std::string& pattern, TimePoint now) {
  resolves_->inc();
  rebuild_ring(now);
  bool degraded = false;
  for (const auto& [z, p] : zones_)
    if (zone_suspect(p, now)) degraded = true;

  std::vector<ZoneHit> local = local_hits(pattern);
  const bool exact = pattern.find_first_of("*?") == std::string::npos;
  if (exact) {
    // Locality fast path: a name hosted in the caller's own zone never
    // leaves the zone, whatever the ring says.
    if (!local.empty()) {
      local_fast_path_->inc();
      deliver_hits(reply_to, reply_qid, local, degraded, now);
      return;
    }
    const std::uint32_t owner = ring_.owner_of(pattern);
    if (owner == cfg_.zone || owner == 0) {
      deliver_hits(reply_to, reply_qid, store_hits(pattern),
                   degraded || owner == 0, now);
      return;
    }
    ring_hops_->inc();
    const std::uint64_t qid = (id_.value << 20) | next_qid_++;
    relays_[qid] = {reply_to, reply_qid, now + cfg_.resolve_timeout,
                    {}, 1, degraded};
    ProtoMessage m = make("z_fwd");
    m.set_int("qid", static_cast<std::int64_t>(qid));
    m.set("pat", pattern);
    send(root_of(owner), m);
    return;
  }

  // Glob: escalate to the super root (roots-of-roots), which fans out to
  // every zone root. When we *are* the super root, fan out directly.
  glob_fanouts_->inc();
  const auto [super_zone, super] = super_root(now);
  const std::uint64_t qid = (id_.value << 20) | next_qid_++;
  Relay r{reply_to, reply_qid, now + cfg_.resolve_timeout, std::move(local),
          0, degraded};
  if (super == id_) {
    ProtoMessage m = make("z_scan");
    m.set_int("qid", static_cast<std::int64_t>(qid));
    m.set("pat", pattern);
    for (std::uint32_t z : alive_zones(now)) {
      if (z == cfg_.zone) continue;
      const NodeId to = root_of(z);
      if (!to.valid()) continue;
      ++r.awaiting;
      send(to, m);
    }
  } else {
    ProtoMessage m = make("z_glob");
    m.set_int("qid", static_cast<std::int64_t>(qid));
    m.set("pat", pattern);
    m.set_int("zn", static_cast<std::int64_t>(cfg_.zone));
    r.awaiting = 1;
    send(super, m);
  }
  if (r.awaiting == 0) {
    deliver_hits(reply_to, reply_qid, r.hits, r.degraded, now);
    return;
  }
  relays_[qid] = std::move(r);
}

void ZoneRouter::finish_relay(std::uint64_t qid, TimePoint now) {
  auto it = relays_.find(qid);
  if (it == relays_.end()) return;
  Relay r = std::move(it->second);
  relays_.erase(it);
  deliver_hits(r.reply_to, r.reply_qid, r.hits, r.degraded, now);
}

void ZoneRouter::deliver_hits(NodeId to, std::uint64_t qid,
                              const std::vector<ZoneHit>& hits, bool degraded,
                              TimePoint now) {
  (void)now;
  if (to == id_) {
    complete_pending(qid, {hits, degraded});
    return;
  }
  ProtoMessage m = make("z_hits");
  m.set_int("qid", static_cast<std::int64_t>(qid));
  if (degraded) m.set_int("deg", 1);
  m.blob = encode_zone_hits(hits);
  send(to, m);
}

void ZoneRouter::complete_pending(std::uint64_t qid, ZoneResolveResult r) {
  auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  ResolveCallback cb = std::move(it->second.cb);
  pending_.erase(it);
  std::sort(r.hits.begin(), r.hits.end(),
            [](const ZoneHit& a, const ZoneHit& b) {
              return std::tie(a.name, a.version, a.zone, a.root.value) <
                     std::tie(b.name, b.version, b.zone, b.root.value);
            });
  r.hits.erase(std::unique(r.hits.begin(), r.hits.end()), r.hits.end());
  if (r.hits.size() > cfg_.max_results) r.hits.resize(cfg_.max_results);
  if (cb) cb(std::move(r));
}

// ---------------------------------------------------------------------------
// Inbound

void ZoneRouter::on_message(const ProtoMessage& m, TimePoint now) {
  if (!handles(m)) return;
  if (!attached_) attach(now);
  const std::string& k = m.kind;

  // Replies are addressed to a specific waiter; everything else is root
  // business. A frame that lands on a non-root (stale zone table after a
  // failover, or a bootstrap member fronting its zone) is forwarded one
  // hop to the zone's current root -- once, to keep misconfigured tables
  // from looping frames forever.
  if (k == "z_hits") {
    auto hits = decode_zone_hits(m.blob);
    const auto qid = static_cast<std::uint64_t>(m.field_int("qid"));
    const bool deg = m.field_int("deg", 0) != 0;
    if (auto it = relays_.find(qid); it != relays_.end()) {
      Relay& r = it->second;
      r.hits.insert(r.hits.end(), hits.begin(), hits.end());
      r.degraded = r.degraded || deg;
      if (--r.awaiting <= 0) finish_relay(qid, now);
      return;
    }
    complete_pending(qid, {std::move(hits), deg});
    return;
  }

  if (!cohesion_.is_root()) {
    if (m.field_int("fw", 0) != 0) return;  // already forwarded once
    const NodeId root = cohesion_.current_root();
    if (root.valid() && root != id_ && root != m.sender) {
      ProtoMessage fwd = m;
      fwd.set_int("fw", 1);
      forwards_->inc();
      send(root, fwd);
    } else if (k == "z_resolve" || k == "z_fwd" || k == "z_glob" ||
               k == "z_scan") {
      // No root to forward to: fail the query fast instead of silently.
      deliver_hits(m.sender, static_cast<std::uint64_t>(m.field_int("qid")),
                   {}, /*degraded=*/true, now);
    }
    return;
  }

  if (k == "z_hello") {
    const auto z = static_cast<std::uint32_t>(m.field_int("zn"));
    const auto ep = static_cast<std::uint64_t>(m.field_int("zep", 1));
    const NodeId prev = root_of(z);
    if (note_zone_root(z, m.sender, ep, now) && prev != m.sender) {
      // A root we did not know (first contact, or a replacement after
      // failover): introduce ourselves so the discovery is mutual.
      ProtoMessage reply = make("z_hello");
      reply.set_int("zn", static_cast<std::int64_t>(cfg_.zone));
      reply.set_int("zep", static_cast<std::int64_t>(cohesion_.epoch()));
      hellos_sent_->inc();
      send(m.sender, reply);
    }
    return;
  }

  if (k == "z_publish") {
    const auto z = static_cast<std::uint32_t>(m.field_int("zn"));
    const auto ep = static_cast<std::uint64_t>(m.field_int("zep", 1));
    if (!note_zone_root(z, m.sender, ep, now)) return;  // fenced stale root
    // The batch is the publishing zone's complete current name set hashed
    // to us: replace wholesale so uninstalled components disappear.
    for (auto it = store_.begin(); it != store_.end();) {
      auto& entries = it->second;
      entries.erase(std::remove_if(
                        entries.begin(), entries.end(),
                        [&](const ShardEntry& e) { return e.zone == z; }),
                    entries.end());
      it = entries.empty() ? store_.erase(it) : std::next(it);
    }
    for (const auto& label : decode_labels(m.blob)) {
      const auto [name, version] = split_label(label);
      store_[name].push_back({z, m.sender, version, ep, now});
    }
    return;
  }

  if (k == "z_resolve") {
    root_resolve(static_cast<std::uint64_t>(m.field_int("qid")), m.sender,
                 m.field("pat"), now);
    return;
  }

  if (k == "z_fwd") {
    // We own this name's shard: answer from the store, stateless.
    const std::string name = m.field("pat");
    bool degraded = false;
    for (const auto& [z, p] : zones_)
      if (zone_suspect(p, now)) degraded = true;
    deliver_hits(m.sender, static_cast<std::uint64_t>(m.field_int("qid")),
                 store_hits(name), degraded, now);
    return;
  }

  if (k == "z_glob") {
    // Super-root duty: fan the scan to every alive zone root except the
    // origin (whose local hits are already in its relay) and ourselves.
    const auto origin_zone = static_cast<std::uint32_t>(m.field_int("zn"));
    const std::uint64_t qid = (id_.value << 20) | next_qid_++;
    Relay r{m.sender, static_cast<std::uint64_t>(m.field_int("qid")),
            now + cfg_.resolve_timeout, local_hits(m.field("pat")), 0, false};
    for (const auto& [z, p] : zones_)
      if (zone_suspect(p, now)) r.degraded = true;
    ProtoMessage scan = make("z_scan");
    scan.set_int("qid", static_cast<std::int64_t>(qid));
    scan.set("pat", m.field("pat"));
    for (std::uint32_t z : alive_zones(now)) {
      if (z == cfg_.zone || z == origin_zone) continue;
      const NodeId to = root_of(z);
      if (!to.valid() || to == m.sender) continue;
      ++r.awaiting;
      send(to, scan);
    }
    if (r.awaiting == 0) {
      deliver_hits(m.sender, r.reply_qid, r.hits, r.degraded, now);
      return;
    }
    relays_[qid] = std::move(r);
    return;
  }

  if (k == "z_scan") {
    deliver_hits(m.sender, static_cast<std::uint64_t>(m.field_int("qid")),
                 local_hits(m.field("pat")), /*degraded=*/false, now);
    return;
  }
}

// ---------------------------------------------------------------------------
// Wire helpers

Bytes ZoneRouter::encode_labels(const std::set<std::string>& labels) {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_ulong(static_cast<std::uint32_t>(labels.size()));
  for (const auto& l : labels) w.write_string(l);
  return w.take();
}

std::vector<std::string> ZoneRouter::decode_labels(BytesView data) {
  std::vector<std::string> out;
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return out;
  auto count = r.read_ulong();
  if (!count) return out;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto s = r.read_string();
    if (!s) return out;
    out.push_back(std::move(*s));
  }
  return out;
}

Bytes ZoneRouter::encode_zone_hits(const std::vector<ZoneHit>& hits) {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_ulong(static_cast<std::uint32_t>(hits.size()));
  for (const auto& h : hits) {
    w.write_string(h.name);
    w.write_string(h.version.to_string());
    w.write_ulong(h.zone);
    w.write_ulonglong(h.root.value);
  }
  return w.take();
}

std::vector<ZoneHit> ZoneRouter::decode_zone_hits(BytesView data) {
  std::vector<ZoneHit> out;
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return out;
  auto count = r.read_ulong();
  if (!count) return out;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto name = r.read_string();
    auto ver = r.read_string();
    auto zone = r.read_ulong();
    auto root = r.read_ulonglong();
    if (!name || !ver || !zone || !root) return out;
    ZoneHit h;
    h.name = std::move(*name);
    if (auto v = Version::parse(*ver); v.ok()) h.version = *v;
    h.zone = *zone;
    h.root = NodeId{*root};
    out.push_back(std::move(h));
  }
  return out;
}

}  // namespace clc::core
