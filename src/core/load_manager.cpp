#include "core/load_manager.hpp"

#include <algorithm>

namespace clc::core {

LoadManager::LoadManager(LocalNetwork& network, LoadManagerConfig config)
    : network_(network), config_(config) {}

void LoadManager::tick(TimePoint now) {
  if (last_round_ != 0 && now - last_round_ < config_.interval) return;
  last_round_ = now;

  auto nodes = network_.nodes();
  if (nodes.empty()) return;

  std::vector<Sample> samples;
  samples.reserve(nodes.size());
  for (Node* n : nodes) {
    Sample s;
    s.node = n;
    s.delay = n->admission().queue_delay(now);
    s.p99 = n->metrics().histogram("admission.queue_delay_us").quantile(0.99);
    const std::uint64_t shed = n->admission().shed_count();
    std::uint64_t& prev = last_shed_[n->id().value];
    s.shed_delta = shed >= prev ? shed - prev : shed;
    prev = shed;
    s.headroom = n->resources().cpu_headroom();
    // Consume the histogram so the next round's p99 is a fresh window, not
    // the whole run's history (the SLO is about *current* tail latency).
    n->metrics().reset("admission.queue_delay_us");
    samples.push_back(s);
  }

  // Admission feedback: tighten on SLO breach, relax when calm.
  for (Sample& s : samples) {
    if (!s.node->admission().enabled()) continue;
    const auto delay_us = static_cast<double>(s.delay);
    if (s.p99 > config_.slo_p99_queue_delay_us ||
        delay_us > config_.slo_p99_queue_delay_us) {
      s.node->admission().tighten(config_.tighten_factor);
      ++tightenings_;
      actions_.push_back("tighten node=" + std::to_string(s.node->id().value) +
                         " bound=" +
                         std::to_string(s.node->admission().max_queue_delay()));
    } else if (s.delay <= config_.idle_below && s.shed_delta == 0) {
      // tighten() clamps at the configured maximum, so relaxing is just a
      // factor > 1.
      s.node->admission().tighten(config_.relax_factor);
      ++relaxations_;
    }
  }

  act_on_placement(samples, now);
}

void LoadManager::act_on_placement(std::vector<Sample>& samples,
                                   TimePoint now) {
  // Hottest node first (ties broken by id for determinism).
  std::sort(samples.begin(), samples.end(), [](const Sample& a,
                                               const Sample& b) {
    if (a.delay != b.delay) return a.delay > b.delay;
    return a.node->id().value < b.node->id().value;
  });
  Sample& hot = samples.front();
  const bool pressured =
      hot.delay >= config_.replicate_above || hot.shed_delta > 0;
  if (!pressured) return;
  const TimePoint hot_last = last_placement_[hot.node->id().value];
  if (hot_last != 0 && now - hot_last < config_.cooldown) return;

  // Idlest target: most headroom among sufficiently calm peers that are
  // not mid-cooldown themselves.
  Sample* target = nullptr;
  for (Sample& s : samples) {
    if (s.node == hot.node || s.delay > config_.idle_below) continue;
    const TimePoint t_last = last_placement_[s.node->id().value];
    if (t_last != 0 && now - t_last < config_.cooldown) continue;
    if (target == nullptr || s.headroom > target->headroom) target = &s;
  }
  if (target == nullptr) return;

  const auto instances = hot.node->container().instance_ids();
  if (instances.empty()) return;
  const InstanceId instance = instances.front();

  const auto saturated = static_cast<Duration>(
      static_cast<double>(config_.replicate_above) * config_.migrate_multiple);
  const NodeId to = target->node->id();
  if (hot.delay >= saturated && instances.size() > 1) {
    // Saturated with multiple instances: actively move one away.
    if (auto moved = hot.node->migrate_instance(instance, to); moved.ok()) {
      ++migrations_;
      actions_.push_back("migrate instance=" + std::to_string(instance.value) +
                         " from=" + std::to_string(hot.node->id().value) +
                         " to=" + std::to_string(to.value));
    } else {
      actions_.push_back("migrate_failed from=" +
                         std::to_string(hot.node->id().value) + " " +
                         moved.error().to_string());
      return;
    }
  } else {
    if (auto copy = hot.node->replicate_instance(instance, to); copy.ok()) {
      ++replications_;
      actions_.push_back("replicate instance=" +
                         std::to_string(instance.value) + " from=" +
                         std::to_string(hot.node->id().value) + " to=" +
                         std::to_string(to.value));
    } else {
      actions_.push_back("replicate_failed from=" +
                         std::to_string(hot.node->id().value) + " " +
                         copy.error().to_string());
      return;
    }
  }
  last_placement_[hot.node->id().value] = now;
  last_placement_[to.value] = now;
}

}  // namespace clc::core
