// Network Cohesion + Distributed Registry protocol (§2.4.1, §2.4.3).
//
// One CohesionNode is the protocol endpoint of one CORBA-LC node. It is a
// pure message-driven state machine: messages go out through an injected
// Sender, time comes in through on_tick(now). The same code therefore runs
// under the discrete-event simulator (1000-node benches) and under the
// threaded ORB runtime (real Node objects), as DESIGN.md requires.
//
// The protocol realizes the paper's three §2.4.3 guidelines:
//
//  * Hierarchical protocol -- nodes form groups of at most `group_size`;
//    the Meta-Resource Manager (MRM) of each group is the group member
//    designated by the (replicated) root directory; MRMs of level-k groups
//    are grouped again at level k+1 until a single root remains. Group
//    formation is carried out by the protocol itself: the root computes the
//    tree from the membership directory and pushes `topology` updates.
//    Resource lookup is incremental: a query consults the local level
//    first and climbs one level at a time, pruning sibling subtrees whose
//    aggregated digests cannot match.
//
//  * Soft consistency -- members send periodic `heartbeat`s to their MRM
//    carrying their RegistryDigest; these double as keep-alives. An MRM
//    considers a member suspect after `suspect_after` missed heartbeats and
//    dead after `dead_after`; re-joins are seamless. MRMs have an
//    *approximate* view, never a synchronously consistent one.
//
//  * Peer-replicated MRMs -- the root replicates the membership directory
//    to its `root_replicas` lowest-id children; on root death the lowest
//    alive replica promotes itself and rebuilds the tree. Interior MRM
//    death needs no replica: the directory survives at the root, which
//    recomputes the tree and re-parents the orphans.
//
// Baseline modes (for the E2/E3/E4 experiments):
//  * flat_query  -- no hierarchy; every node knows the roster; queries are
//    broadcast to all nodes, which answer directly.
//  * strong      -- full-replication "strong consistency": every registry
//    revision is broadcast to every node immediately (plus periodically);
//    queries are answered from the local full copy.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <cstdio>
#include <optional>
#include <set>
#include <vector>

#include "core/phi.hpp"
#include "core/proto.hpp"
#include "core/query.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"

namespace clc::core {

struct CohesionConfig {
  enum class Mode { hierarchical, flat_query, strong };

  Mode mode = Mode::hierarchical;
  Duration heartbeat = seconds(2);
  int suspect_after = 3;   // missed heartbeats until suspect
  int dead_after = 5;      // missed heartbeats until dead
  std::size_t group_size = 8;
  int root_replicas = 2;
  Duration query_timeout = seconds(2);
  /// Anti-entropy reconciliation: every N heartbeats each node swaps its
  /// (node -> incarnation, tombstone) table with one peer, so registries
  /// that missed a death or a rebirth (partition, lost oneways) converge
  /// instead of serving entries for dead hosts forever. 0 disables.
  int anti_entropy_every = 4;
  /// Zone id for mega-cluster deployments: a zoned node runs the cohesion
  /// protocol only with members of its own zone (its tree is one zone's
  /// tree; the ZoneRouter links zone roots above it). Carried as the "zn"
  /// wire field, elided while 0 so unzoned networks keep the pre-zone frame
  /// bytes; inbound frames from a *different* nonzero zone are dropped at
  /// the protocol boundary (cohesion.fenced_cross_zone).
  std::uint32_t zone = 0;

  // ---- adaptive (phi-accrual) failure detection, DESIGN.md §17 ----
  /// Run a per-peer phi-accrual detector next to the fixed timeouts. Phi
  /// can only *accelerate* suspicion/death (the fixed `suspect_after` /
  /// `dead_after` bounds remain hard ceilings), so detection latency tracks
  /// the observed network without ever regressing past the classic bound.
  bool adaptive = true;
  /// Phi at which a peer becomes suspect (phi 8 = P(still alive) ~ 1e-8).
  double phi_suspect = 8.0;
  /// Phi at which a peer is treated as timed out (probe/eviction path).
  double phi_dead = 16.0;
  /// Inter-arrival window per peer (ring buffer; capped at 64).
  std::size_t phi_window = 16;
  /// Samples before phi applies; until then only the fixed timeouts act.
  std::size_t phi_min_samples = 5;
  /// Stddev floor as a fraction of `heartbeat` (virtual-time networks
  /// deliver zero-jitter beats; the floor keeps phi finite).
  double phi_min_stddev_fraction = 0.25;
  /// Gray verdict: mean inter-arrival above slow_factor * heartbeat marks
  /// the peer *slow* — deprioritized for binding and checkpoint-holder
  /// election, but never tombstoned (it is alive, just degraded).
  double slow_factor = 2.0;
  /// Slow clears only below slow_recover_factor * heartbeat (hysteresis).
  double slow_recover_factor = 1.4;
};

/// A checkpoint holder's public record that it restored `origin`'s stateful
/// instance after a death verdict. Claims ride the anti-entropy tables, so
/// a healed partition reveals dual primaries; resolution is deterministic
/// on (epoch, origin incarnation, host id) -- see DESIGN.md §13.
struct FailoverClaim {
  NodeId origin;                  // node whose instance was restored
  std::uint64_t origin_inc = 1;   // origin's incarnation at checkpoint time
  std::uint64_t instance = 0;     // InstanceId.value of the lost instance
  std::uint64_t epoch = 1;        // partition epoch of the restore verdict
  NodeId host;                    // where the restored copy runs

  bool operator==(const FailoverClaim&) const = default;
};

/// Ranked hits plus a partial-coverage marker: `degraded` means part of the
/// network was unreachable (partition / orphaned subtree / timed-out peers)
/// and the hits cover only the reachable side.
struct QueryResult {
  std::vector<QueryHit> hits;
  bool degraded = false;
};

class CohesionNode {
 public:
  using Sender = std::function<void(NodeId to, const ProtoMessage&)>;
  using QueryCallback = std::function<void(std::vector<QueryHit>)>;
  using QueryCallbackEx = std::function<void(QueryResult)>;

  /// `metrics` shares an external registry; when null the node owns one.
  CohesionNode(NodeId id, CohesionConfig cfg, Sender send,
               obs::MetricsRegistry* metrics = nullptr);

  /// The digest the node advertises (own installed components + load).
  void set_digest_provider(std::function<RegistryDigest()> provider) {
    digest_provider_ = std::move(provider);
  }

  /// Invoked when this node learns (root confirmation or `node_dead`
  /// broadcast) that a member died: (dead, dead's incarnation, nodes still
  /// believed alive). The Node layer hangs instance failover off this.
  using DeadHandler =
      std::function<void(NodeId, std::uint64_t, std::vector<NodeId>)>;
  void set_node_dead_handler(DeadHandler handler) {
    dead_handler_ = std::move(handler);
  }

  /// Invoked when a tombstoned node turns out to be alive at the *same*
  /// incarnation (false death: partition, lost probes). The Node layer uses
  /// it to resolve dual primaries against stored failover claims.
  using RevivedHandler = std::function<void(NodeId, std::uint64_t)>;
  void set_node_revived_handler(RevivedHandler handler) {
    revived_handler_ = std::move(handler);
  }

  /// Invoked whenever this node gains or loses the root (zone-MRM) role:
  /// start_as_first / replica promotion -> true, demotion / restart ->
  /// false. The ZoneRouter hangs its hello/publish duty cycle off this.
  void set_role_hook(std::function<void(bool is_root)> hook) {
    role_hook_ = std::move(hook);
  }

  /// Invoked on every observable protocol transition ("suspected:<id>",
  /// "death:<id>", "verdict_deferred:<id>", "promoted", "demoted",
  /// "query_degraded"); the Node layer turns these into trace spans.
  void set_transition_hook(std::function<void(const std::string&)> hook) {
    transition_hook_ = std::move(hook);
  }

  /// Record a failover claim made by this node (it restored someone's
  /// instance); gossiped through anti-entropy. Claims learned from peers
  /// fire the handler below.
  void add_failover_claim(const FailoverClaim& claim);
  void set_failover_claim_handler(std::function<void(const FailoverClaim&)> h) {
    claim_handler_ = std::move(h);
  }
  [[nodiscard]] std::vector<FailoverClaim> failover_claims() const;

  /// The partition epoch: bumped by the root on every quorum-confirmed
  /// death verdict and on replica promotion, adopted (monotone max) from
  /// every admitted message. Carried as the "ep" wire field (elided at 1)
  /// and stamped into checkpoints, so after a heal both sides can order
  /// their diverged histories deterministically.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// This node's incarnation, carried on every protocol message (as the
  /// "inc" field, elided while still 1) and inside digests. Bumped by the
  /// Node on restart *before* rejoining.
  void set_incarnation(std::uint64_t incarnation) noexcept {
    incarnation_ = incarnation;
  }
  [[nodiscard]] std::uint64_t incarnation() const noexcept {
    return incarnation_;
  }

  /// Post-crash reset: forget all membership, directory, roster and query
  /// state (it lived in RAM and died with the process). Identity, config
  /// and metrics survive; the caller then re-joins via start_joining.
  void restart(TimePoint now);

  /// Found a new network (this node becomes root).
  void start_as_first(TimePoint now);
  /// Join an existing network through any known peer.
  void start_joining(NodeId bootstrap, TimePoint now);

  void on_message(const ProtoMessage& m, TimePoint now);
  /// Drive timers; call at least every heartbeat/2.
  void on_tick(TimePoint now);

  /// Issue a distributed component query. The callback fires exactly once:
  /// with ranked hits (possibly empty) when replies or the timeout arrive.
  void query(const ComponentQuery& q, TimePoint now, QueryCallback cb);
  /// Same, with the degraded-coverage marker (partition-aware callers).
  void query_ex(const ComponentQuery& q, TimePoint now, QueryCallbackEx cb);

  /// In strong mode, force an immediate update broadcast (called by the
  /// node when its repository revision changes).
  void broadcast_update(TimePoint now);

  // ------------------------------------------------------------ introspection
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] bool joined() const noexcept { return joined_; }
  [[nodiscard]] bool is_root() const noexcept { return root_; }
  /// The node this one currently believes is the root (itself when root,
  /// invalid while orphaned / not yet joined).
  [[nodiscard]] NodeId current_root() const noexcept { return current_root_; }
  /// Every "name@version" label this node's subtree advertises (own digest
  /// plus the aggregate names cached from children). At a zone root this is
  /// the whole zone's component set -- what the ZoneRouter publishes to the
  /// shard owners.
  [[nodiscard]] std::set<std::string> aggregate_names() const;
  [[nodiscard]] NodeId parent() const noexcept { return parent_; }
  [[nodiscard]] std::vector<NodeId> children() const;
  [[nodiscard]] bool is_mrm() const noexcept { return !children_.empty(); }
  /// Root only: every node believed alive.
  [[nodiscard]] std::vector<NodeId> directory_nodes() const;
  /// Nodes this one currently believes alive (roster in flat/strong modes,
  /// directory at the root, parent+children elsewhere).
  [[nodiscard]] std::vector<NodeId> known_nodes() const;
  /// Tree depth below this node (1 = leaf); meaningful at the root.
  [[nodiscard]] int subtree_depth() const;
  [[nodiscard]] const CohesionConfig& config() const noexcept { return cfg_; }
  /// Highest incarnation this node has seen for `n` (0 = never heard).
  [[nodiscard]] std::uint64_t known_incarnation(NodeId n) const {
    auto it = peer_incarnations_.find(n);
    return it == peer_incarnations_.end() ? 0 : it->second;
  }
  /// True while `n` is tombstoned (declared dead, not yet reborn).
  [[nodiscard]] bool has_tombstone(NodeId n) const {
    return tombstones_.count(n) != 0;
  }
  /// True while `n` timed out but lacks a quorum death verdict: it may be
  /// partitioned away rather than dead (root bookkeeping + suspect flags).
  [[nodiscard]] bool is_suspected(NodeId n) const {
    if (suspected_.count(n) != 0) return true;
    auto it = children_.find(n);
    return it != children_.end() && it->second.suspect;
  }
  /// Gray verdict: `n`'s heartbeats keep arriving but their mean interval
  /// has stretched past slow_factor * heartbeat. Slow peers stay members
  /// (never tombstoned); callers deprioritize them for placement.
  [[nodiscard]] bool is_slow(NodeId n) const {
    return slow_peers_.count(n) != 0;
  }
  /// Every peer currently carrying the slow verdict (sorted by id).
  [[nodiscard]] std::vector<NodeId> slow_peers() const {
    return {slow_peers_.begin(), slow_peers_.end()};
  }
  /// Current phi for `n` given silence up to `now` (0 until the detector
  /// warms or when `n` is unknown). Exposed for the determinism tests.
  [[nodiscard]] double phi_of(NodeId n, TimePoint now) const;

  /// Legacy view assembled from the metrics registry ("cohesion.*" names).
  struct Stats {
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t beacons_sent = 0;
    std::uint64_t queries_issued = 0;
    std::uint64_t queries_answered = 0;
    std::uint64_t topology_updates = 0;
    std::uint64_t promotions = 0;  // became root via replica promotion
  };
  [[nodiscard]] Stats stats() const noexcept {
    Stats s;
    s.heartbeats_sent = heartbeats_sent_->value();
    s.beacons_sent = beacons_sent_->value();
    s.queries_issued = queries_issued_->value();
    s.queries_answered = queries_answered_->value();
    s.topology_updates = topology_updates_->value();
    s.promotions = promotions_->value();
    return s;
  }
  void reset_stats() { metrics_->reset("cohesion."); }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *metrics_; }

 private:
  // ---- membership / tree (hierarchical mode)
  struct ChildInfo {
    TimePoint last_heard = 0;
    bool suspect = false;
    RegistryDigest digest;                 // child's own registry
    std::set<std::string> subtree_names;   // aggregate digest for pruning
    bool have_digest = false;  // ordering check applies only once one landed
  };
  struct Directory {
    std::vector<NodeId> join_order;  // alive nodes, in join order
    [[nodiscard]] bool contains(NodeId n) const;
    void add(NodeId n);
    void remove(NodeId n);
    [[nodiscard]] Bytes encode() const;
    static Result<Directory> decode(BytesView data);
  };

  void send(NodeId to, ProtoMessage m) const;
  ProtoMessage make(const std::string& kind) const;

  // Tree computation at the root: parent-of map from the directory.
  [[nodiscard]] std::map<NodeId, NodeId> compute_tree() const;
  [[nodiscard]] std::vector<NodeId> root_replica_list() const;
  void root_recompute_and_publish(TimePoint now);
  void adopt_topology(NodeId new_parent, TimePoint now);
  void handle_member_dead(NodeId dead, TimePoint now);
  void promote_to_root(TimePoint now);
  void demote_from_root(NodeId winner);
  /// Split-brain tie-break between us (a root) and a rival root: higher
  /// partition epoch wins, lower node id breaks ties. Returns true when we
  /// keep the role (after re-asserting toward the rival); false when we
  /// demoted and joined the winner.
  bool contest_root(NodeId rival, std::uint64_t rival_epoch);
  void note_transition(const std::string& what) const {
#ifdef CLC_TRACE_TRANSITIONS
    std::fprintf(stderr, "[%s] %s\n", id_.to_string().c_str(), what.c_str());
#endif
    if (transition_hook_) transition_hook_(what);
  }
  void note_role(bool is_root) const {
    if (role_hook_) role_hook_(is_root);
  }

  // Quorum-fenced death verdicts (root): a timed-out member becomes
  // `suspected`; eviction additionally needs indirect-reachability
  // confirmations from a majority of the directory.
  void root_begin_probe(NodeId suspect, TimePoint now);
  [[nodiscard]] std::size_t quorum_needed() const;
  void clear_suspicion(NodeId n);

  // Crash fault handling (incarnation fencing + tombstones + anti-entropy).
  /// Gate every inbound message on the sender's incarnation; returns false
  /// when the message is stale (older incarnation / tombstoned) and must be
  /// dropped at the protocol boundary.
  bool admit_message(const ProtoMessage& m);
  /// Feed one keep-alive arrival from `from` into its phi detector and
  /// maintain the slow-peer verdict (hysteresis + transitions + metrics).
  void record_arrival(NodeId from, TimePoint now);
  /// Fixed-timeout verdicts OR phi-accelerated ones: `silence` against the
  /// classic bounds, phi against phi_suspect/phi_dead once warmed. Phi for
  /// a slow-marked peer is not consulted — its stretched window already
  /// absorbs the latency, and a gray peer must never be fast-tracked to a
  /// death verdict by the detector that just flagged it.
  [[nodiscard]] bool phi_says_suspect(NodeId n, Duration silence) const;
  [[nodiscard]] bool phi_says_dead(NodeId n, Duration silence) const;
  /// Record a confirmed death: tombstone, purge cached state, notify the
  /// Node layer, and (root only, when `broadcast`) tell every member.
  void note_death(NodeId dead, std::uint64_t dead_inc,
                  std::vector<NodeId> alive, TimePoint now, bool broadcast);
  void purge_peer_state(NodeId n);
  /// True while `n` is in this node's live membership view (parent, child,
  /// roster or directory member) -- i.e. we have first-hand evidence it is
  /// up, not just a cached incarnation number.
  [[nodiscard]] bool believes_alive(NodeId n) const;
  [[nodiscard]] bool heard_recently(NodeId n, TimePoint now) const;
  [[nodiscard]] Bytes encode_incarnation_table(TimePoint now) const;
  void merge_incarnation_table(BytesView data, TimePoint now);
  void send_anti_entropy(TimePoint now);

  // Digest/heartbeat helpers.
  [[nodiscard]] RegistryDigest own_digest() const;
  [[nodiscard]] std::vector<RegistryDigest> subtree_digests() const;
  void send_heartbeat(TimePoint now);

  // ---- queries
  struct PendingQuery {         // as original requester
    ComponentQuery q;
    QueryCallbackEx cb;
    TimePoint deadline = 0;
    std::vector<QueryHit> hits;
    std::set<NodeId> awaiting;  // flat mode: nodes still to answer
    bool degraded = false;      // partial coverage (partition / timeout)
  };
  struct RelayedQuery {         // as interior tree node
    ComponentQuery q;
    NodeId reply_to;            // next hop toward the requester
    std::uint64_t reply_qid = 0;
    TimePoint deadline = 0;
    std::vector<QueryHit> hits;
    std::set<NodeId> awaiting_children;
    bool escalated = false;     // already passed up to parent
    NodeId came_from;           // don't descend back into this subtree
    bool degraded = false;      // some subtree never answered
  };
  void local_and_cached_hits(const ComponentQuery& q,
                             std::vector<QueryHit>& hits) const;
  /// True when some part of the tree we are responsible for cannot be
  /// asked: a suspect child subtree, or (at the root) a directory member
  /// whose death verdict is still pending quorum. Queries answered over
  /// such a view carry the `degraded` marker.
  [[nodiscard]] bool coverage_gap() const;
  void process_tree_query(std::uint64_t qid, RelayedQuery&& relay,
                          TimePoint now);
  void finish_relay(std::uint64_t qid, TimePoint now);
  void finish_pending(std::uint64_t qid);
  static void append_hits(std::vector<QueryHit>& into,
                          const std::vector<QueryHit>& from);

  NodeId id_;
  CohesionConfig cfg_;
  Sender send_;
  std::function<RegistryDigest()> digest_provider_;
  DeadHandler dead_handler_;
  RevivedHandler revived_handler_;
  std::function<void(const std::string&)> transition_hook_;
  std::function<void(bool)> role_hook_;
  std::function<void(const FailoverClaim&)> claim_handler_;

  std::uint64_t incarnation_ = 1;
  std::uint64_t epoch_ = 1;
  // Per-peer phi-accrual detectors (keyed by keep-alive sender) and the
  // set currently carrying the gray verdict.
  std::map<NodeId, PhiAccrualDetector> arrivals_;
  std::set<NodeId> slow_peers_;
  std::map<NodeId, std::uint64_t> peer_incarnations_;
  std::map<NodeId, std::uint64_t> tombstones_;  // dead node -> incarnation
  TimePoint last_anti_entropy_ = 0;
  std::size_t ae_rotor_ = 0;  // round-robin peer pick for anti-entropy

  bool joined_ = false;
  bool root_ = false;
  NodeId parent_{};
  std::map<NodeId, ChildInfo> children_;
  TimePoint parent_last_heard_ = 0;
  TimePoint last_heartbeat_ = 0;
  TimePoint last_beacon_ = 0;
  NodeId bootstrap_{};
  TimePoint join_started_ = 0;

  Directory directory_;               // root (and replicas, as a copy)
  bool have_directory_copy_ = false;  // am I a root replica?
  int replica_rank_ = 0;              // my position in the replica list
  TimePoint root_death_detected_ = 0; // when I noticed the root was gone
  NodeId current_root_{};
  std::map<NodeId, NodeId> last_published_;  // root: last parent pushed
  std::map<NodeId, TimePoint> probe_pending_;  // root: liveness probes
  int republish_countdown_ = 0;                // root: periodic re-publish
  std::set<NodeId> suspected_;                 // root: timed out, no quorum
  std::map<NodeId, std::set<NodeId>> probe_votes_;  // root: unreach confirms
  // Peer side of an indirect probe: target -> (requesting root, started).
  std::map<NodeId, std::pair<NodeId, TimePoint>> indirect_probes_;
  // Replica side of majority-gated promotion: who acked our poll.
  std::set<NodeId> promotion_acks_;
  TimePoint promotion_poll_last_ = 0;
  TimePoint last_rejoin_attempt_ = 0;  // orphan: periodic re-join knocks
  // (origin, instance) -> best claim; gossiped via anti-entropy tables.
  std::map<std::pair<std::uint64_t, std::uint64_t>, FailoverClaim> claims_;

  // flat/strong modes
  std::set<NodeId> roster_;
  std::map<NodeId, RegistryDigest> full_registry_;  // strong mode cache
  std::map<NodeId, TimePoint> roster_last_heard_;

  std::map<std::uint64_t, PendingQuery> pending_;
  std::map<std::uint64_t, RelayedQuery> relayed_;
  std::uint64_t next_qid_ = 1;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* heartbeats_sent_;
  obs::Counter* beacons_sent_;
  obs::Counter* queries_issued_;
  obs::Counter* queries_answered_;
  obs::Counter* topology_updates_;
  obs::Counter* promotions_;
  obs::Counter* fenced_stale_;
  obs::Counter* fenced_cross_zone_;
  obs::Counter* slow_marked_;
  obs::Counter* slow_recovered_;
  obs::Counter* phi_suspects_;
};

}  // namespace clc::core
