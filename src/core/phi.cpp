#include "core/phi.hpp"

#include <algorithm>
#include <cmath>

namespace clc::core {

PhiAccrualDetector::PhiAccrualDetector(PhiConfig cfg) : cfg_(cfg) {
  if (cfg_.window == 0) cfg_.window = 1;
  if (cfg_.window > kMaxWindow) cfg_.window = kMaxWindow;
  if (cfg_.min_samples == 0) cfg_.min_samples = 1;
}

void PhiAccrualDetector::record_arrival(TimePoint now) {
  if (have_last_) {
    const Duration gap = now - last_;
    if (gap >= 0) append(static_cast<double>(gap));
  }
  last_ = now;
  have_last_ = true;
  if (warmed()) {
    const double m = mean();
    const double expected = static_cast<double>(cfg_.expected_interval);
    if (!slow_ && m > cfg_.slow_factor * expected) {
      slow_ = true;
    } else if (slow_ && m < cfg_.slow_recover_factor * expected) {
      slow_ = false;
    }
  }
}

void PhiAccrualDetector::append(double interval_us) {
  if (count_ == cfg_.window) {
    const double evicted = samples_[head_];
    sum_ -= evicted;
    sum_sq_ -= evicted * evicted;
  } else {
    ++count_;
  }
  samples_[head_] = interval_us;
  sum_ += interval_us;
  sum_sq_ += interval_us * interval_us;
  head_ = (head_ + 1) % cfg_.window;
}

double PhiAccrualDetector::mean() const noexcept {
  if (count_ == 0) return static_cast<double>(cfg_.expected_interval);
  return sum_ / static_cast<double>(count_);
}

double PhiAccrualDetector::stddev() const noexcept {
  const double floor =
      cfg_.min_stddev_fraction * static_cast<double>(cfg_.expected_interval);
  if (count_ < 2) return floor;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  double var = sum_sq_ / n - m * m;
  if (var < 0) var = 0;  // running-sum rounding can dip fractionally below 0
  return std::max(std::sqrt(var), floor);
}

double PhiAccrualDetector::phi(Duration silence) const {
  if (!warmed() || silence <= 0) return 0.0;
  const double m = mean();
  const double sd = stddev();
  const double z = (static_cast<double>(silence) - m) / sd;
  // Logistic approximation of the normal CDF tail (Akka/Cassandra form):
  // P(X > silence) computed without erf so the result is bit-stable across
  // libm implementations within the precision the tests pin.
  const double e = std::exp(-z * (1.5976 + 0.070566 * z * z));
  double p_later;  // probability a beat arrives later than `silence`
  if (z > 0) {
    p_later = e / (1.0 + e);
  } else {
    p_later = 1.0 - 1.0 / (1.0 + e);
  }
  if (p_later < 1e-300) p_later = 1e-300;  // cap phi ~= 300, avoid -inf
  return -std::log10(p_later);
}

void PhiAccrualDetector::reset() noexcept {
  head_ = 0;
  count_ = 0;
  sum_ = 0;
  sum_sq_ = 0;
  last_ = 0;
  have_last_ = false;
  slow_ = false;
}

}  // namespace clc::core
