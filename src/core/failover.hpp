// Instance failover: periodic checkpointing to peer nodes and restore on
// MRM-confirmed death (crash fault tolerance, DESIGN.md §11).
//
// Every checkpointable instance (the mobile/replicable set that already
// supports externalize_state for migration, §2.2) is snapshotted by its
// container every `checkpoint_interval` and shipped to R peer "holder"
// nodes. When the cohesion layer confirms a node death, each holder runs a
// deterministic, coordination-free election -- the lowest-id holder still
// believed alive restores -- so exactly one replacement instance appears
// without any extra agreement protocol. Records are fenced by the origin's
// (incarnation, seq): checkpoints from a previous life of a restarted node
// can never be restored or overwrite fresher ones.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "orb/object_ref.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"
#include "util/version.hpp"

namespace clc::core {

struct FailoverConfig {
  /// How often a node checkpoints its instances to the holders. 0 disables
  /// checkpointing (and with it stateful failover) entirely.
  Duration checkpoint_interval = seconds(4);
  /// R: how many peer nodes hold a copy of every checkpoint.
  int replicas = 2;
};

/// One checkpoint of one instance, as stored on a holder node.
struct CheckpointRecord {
  NodeId origin;                        // node the instance lives on
  std::uint64_t origin_incarnation = 1; // fences pre-crash checkpoints
  InstanceId instance;                  // instance id on the origin
  std::string component;
  Version version;
  std::uint64_t seq = 0;                // per-instance checkpoint counter
  /// Partition epoch of the origin's cohesion layer at checkpoint time: a
  /// restore after a quorum death verdict (which bumps the epoch) is
  /// provably newer than anything the cut-off origin checkpointed, which
  /// is what makes post-heal dual-primary resolution deterministic.
  std::uint64_t epoch = 1;
  Bytes state;                          // externalized instance state
  std::map<std::string, orb::ObjectRef> connections;  // used-port wiring
  std::vector<NodeId> holders;          // full holder set (for election)
  /// Raw package bytes; shipped with the first checkpoint to each holder
  /// only (empty afterwards), so the holder can install + restore even
  /// after the origin -- the only other copy -- is gone.
  Bytes package;

  [[nodiscard]] Bytes encode() const;
  static Result<CheckpointRecord> decode(BytesView data);
};

/// Per-node store of checkpoints held on behalf of peers. In-memory like
/// everything else a crash destroys: a holder that crashes loses the
/// checkpoints it held, which is why there are R of them.
class CheckpointStore {
 public:
  /// Keep the record unless it is stale -- an existing record for the same
  /// (origin, instance) with a higher (incarnation, seq) wins. A record
  /// arriving without package bytes inherits them from its predecessor.
  /// Returns false (and drops the record) when fenced.
  bool store(CheckpointRecord rec);

  /// All records originating at `origin`, deterministic (instance) order.
  [[nodiscard]] std::vector<const CheckpointRecord*> records_for(
      NodeId origin) const;

  /// Drop every record of `origin` older than `incarnation` (the origin
  /// restarted; its previous life's instances are gone for good).
  void purge_origin_below(NodeId origin, std::uint64_t incarnation);

  void clear() { records_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (origin, instance)
  std::map<Key, CheckpointRecord> records_;
};

}  // namespace clc::core
