// Applications: "just special components" (§2.4.4).
//
// An application encapsulates the explicit rules to connect components and
// their instances -- which components, how many named instances, and the
// port wiring -- i.e. what CCM calls an assembly. The crucial CORBA-LC
// difference is *when* placement happens: deploy() resolves every instance
// at run time through the Distributed Registry, so the node each instance
// lands on is decided when the application starts, not at assembly-design
// time ("the difference between static and dynamic linking ... augmented to
// the distributed, heterogeneous case").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "xml/xml.hpp"

namespace clc::core {

struct AssemblySpec {
  struct InstanceSpec {
    std::string name;        // instance name within the application
    std::string component;   // component to instantiate
    VersionConstraint constraint;
    Binding binding = Binding::auto_decide;
  };
  struct ConnectionSpec {
    std::string from;        // instance name (its uses-port side)
    std::string from_port;
    std::string to;          // instance name (its provides-port side)
    std::string to_port;     // empty = the component's primary port
  };

  std::string name;
  std::vector<InstanceSpec> instances;
  std::vector<ConnectionSpec> connections;

  [[nodiscard]] std::string to_xml() const;
  static Result<AssemblySpec> from_xml(std::string_view xml_text);
};

/// A deployed application: the run-time incarnation of an assembly.
class Application {
 public:
  /// Deploy: resolve every instance network-wide from `origin`, then wire
  /// every connection. Rolls nothing back on failure (errors report which
  /// instance/connection failed); deploys are idempotent per instance name.
  static Result<Application> deploy(Node& origin, const AssemblySpec& spec);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::map<std::string, BoundComponent>& instances()
      const noexcept {
    return bound_;
  }
  [[nodiscard]] Result<const BoundComponent*> instance(
      const std::string& instance_name) const;
  /// Reference to a provided port of a deployed instance.
  [[nodiscard]] Result<orb::ObjectRef> port(const std::string& instance_name,
                                            const std::string& port_name) const;
  /// Convenience: invoke an operation on an instance's primary port.
  Result<orb::Value> call(const std::string& instance_name,
                          const std::string& operation,
                          std::vector<orb::Value> args = {});

  /// How many instances ended up on remote nodes (deployment telemetry).
  [[nodiscard]] std::size_t remote_instance_count() const;

 private:
  explicit Application(Node& origin) : origin_(&origin) {}

  Node* origin_;
  std::string name_;
  std::map<std::string, BoundComponent> bound_;
};

}  // namespace clc::core
