// Component instances and the executor registry.
//
// Instances are "run-time incarnations of the behavior stored in a
// component" (§2.1.2). A component binary names an entry symbol; at load
// time the node resolves that symbol to an InstanceFactory through the
// process-wide ExecutorRegistry -- the in-process equivalent of
// dlopen()/dlsym() on the DLL shipped in the package (see DESIGN.md
// substitutions; lifecycle and failure modes are preserved: missing symbol,
// platform mismatch, load/unload accounting).
//
// The container/instance contract ("agreed local interfaces", §2.2) is the
// InstanceContext the container hands to the instance plus the virtual
// hooks the instance implements: activation, passivation and state
// externalization for migration/replication, and split/gather for
// aggregation-capable components.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "orb/orb.hpp"
#include "pkg/descriptor.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"

namespace clc::core {

class InstanceContext;

/// Base class for all component implementations.
class ComponentInstance {
 public:
  virtual ~ComponentInstance() = default;

  /// Wire up ports: call ctx.provide_port / ctx.on_event; invoked once,
  /// before activation.
  virtual Result<void> initialize(InstanceContext& ctx) = 0;

  /// Lifecycle notifications from the container.
  virtual void activate() {}
  virtual void passivate() {}

  /// Migration/replication support: serialize internal state. Stateless
  /// components keep the default (empty state).
  virtual Result<Bytes> externalize_state() { return Bytes{}; }
  virtual Result<void> internalize_state(BytesView /*state*/) { return {}; }

  /// Aggregation (data-parallel) components override these (§2.1.1):
  /// split the pending work into `parts` chunks...
  virtual Result<std::vector<Bytes>> split_work(std::size_t /*parts*/) {
    return Error{Errc::unsupported, "component is not aggregatable"};
  }
  /// ...process one chunk (possibly on another node)...
  virtual Result<Bytes> process_chunk(BytesView /*chunk*/) {
    return Error{Errc::unsupported, "component is not aggregatable"};
  }
  /// ...and gather partial results into the final one.
  virtual Result<Bytes> gather(const std::vector<Bytes>& /*partials*/) {
    return Error{Errc::unsupported, "component is not aggregatable"};
  }
};

/// Creates instances of one component implementation.
using InstanceFactory = std::function<std::unique_ptr<ComponentInstance>()>;

/// Process-wide symbol table: entry symbol -> factory. Stands in for the
/// dynamic linker resolving the factory entry point of a shipped DLL.
class ExecutorRegistry {
 public:
  static ExecutorRegistry& global();

  Result<void> register_symbol(const std::string& entry_symbol,
                               InstanceFactory factory);
  [[nodiscard]] Result<InstanceFactory> resolve(
      const std::string& entry_symbol) const;
  [[nodiscard]] bool has(const std::string& entry_symbol) const;
  void unregister_symbol(const std::string& entry_symbol);

 private:
  std::map<std::string, InstanceFactory> symbols_;
};

/// View of the container the instance programs against.
class InstanceContext {
 public:
  virtual ~InstanceContext() = default;

  [[nodiscard]] virtual InstanceId id() const = 0;
  [[nodiscard]] virtual const pkg::ComponentDescription& description()
      const = 0;

  /// Expose a provided port: the container activates the servant and
  /// records the reference in the registry (visible to assemblies).
  virtual Result<orb::ObjectRef> provide_port(
      const std::string& port_name, std::shared_ptr<orb::Servant> servant) = 0;

  /// Current connection of a used port (nil if unconnected).
  [[nodiscard]] virtual orb::ObjectRef used_port(
      const std::string& port_name) const = 0;

  /// Invoke an operation through a used port (dependency injection done by
  /// the container per requirement 6).
  virtual Result<orb::Value> call_port(const std::string& port_name,
                                       const std::string& operation,
                                       std::vector<orb::Value> args) = 0;

  /// Publish an event on an emits-port (push channel, §2.1.2).
  virtual Result<void> emit(const std::string& port_name,
                            orb::Value event) = 0;

  /// Register the handler of a consumes-port.
  virtual Result<void> on_event(
      const std::string& port_name,
      std::function<void(const orb::Value&)> handler) = 0;

  /// Ask the container (and through it the network) for a component that
  /// satisfies the named dependency; returns a reference to an instance of
  /// it (requirement 6: automatic dependency management).
  virtual Result<orb::ObjectRef> require(const std::string& component,
                                         const VersionConstraint& c) = 0;
};

}  // namespace clc::core
