// Component Registry: the external view of one node's component state
// (Fig. 1: "reflects the internal Component Repository and helps in
// performing distributed component queries").
//
// Per §2.4.2 it tracks (a) installed components (reflecting the
// repository), (b) running instances and their properties, and (c) how
// instances are connected via ports (assemblies). Its digest() is the
// summary heartbeats carry to the MRM, and visual builders / tests read its
// tables directly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/query.hpp"
#include "core/repository.hpp"
#include "core/resource.hpp"
#include "orb/object_ref.hpp"

namespace clc::core {

enum class InstanceState { created, active, passive, migrating, destroyed };

const char* instance_state_name(InstanceState s) noexcept;

/// Registry row for one running instance.
struct InstanceRecord {
  InstanceId id;
  std::string component;
  Version version;
  InstanceState state = InstanceState::created;
  std::map<std::string, orb::ObjectRef> provided_ports;
  std::map<std::string, orb::ObjectRef> used_ports;  // current connections
};

/// One port-to-port connection (an assembly edge).
struct ConnectionRecord {
  InstanceId from;
  std::string from_port;
  orb::ObjectRef to;
};

class ComponentRegistry {
 public:
  ComponentRegistry(NodeId node, const ComponentRepository& repository,
                    const ResourceManager& resources)
      : node_(node), repository_(repository), resources_(resources) {}

  // ---- instance bookkeeping (driven by the Container)
  void record_instance(const InstanceRecord& record);
  void update_state(InstanceId id, InstanceState state);
  void record_provided_port(InstanceId id, const std::string& port,
                            const orb::ObjectRef& ref);
  void record_connection(InstanceId id, const std::string& port,
                         const orb::ObjectRef& target);
  void remove_instance(InstanceId id);

  [[nodiscard]] const InstanceRecord* instance(InstanceId id) const;
  [[nodiscard]] std::vector<const InstanceRecord*> instances() const;
  [[nodiscard]] std::vector<const InstanceRecord*> instances_of(
      const std::string& component) const;
  [[nodiscard]] std::vector<ConnectionRecord> assembly() const;

  /// Local query over installed components (the per-node leg of a
  /// distributed query).
  [[nodiscard]] std::vector<QueryHit> match(const ComponentQuery& q) const;

  /// The digest advertised in heartbeats (installed components + load).
  [[nodiscard]] RegistryDigest digest() const;

 private:
  NodeId node_;
  const ComponentRepository& repository_;
  const ResourceManager& resources_;
  std::map<InstanceId, InstanceRecord> instances_;
};

}  // namespace clc::core
