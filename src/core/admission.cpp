#include "core/admission.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace clc::core {

AdmissionController::AdmissionController(obs::MetricsRegistry& metrics,
                                         AdmissionConfig config)
    : config_(config),
      max_queue_delay_(config.max_queue_delay),
      admitted_(&metrics.counter("admission.admitted")),
      admitted_control_(&metrics.counter("admission.admitted_control")),
      shed_(&metrics.counter("admission.shed")),
      shed_capacity_(&metrics.counter("admission.shed_capacity")),
      shed_codel_(&metrics.counter("admission.shed_codel")),
      shed_control_(&metrics.counter("admission.shed_control")),
      backlog_gauge_(&metrics.gauge("admission.backlog_us")),
      bound_gauge_(&metrics.gauge("admission.max_queue_delay_us")),
      queue_delay_us_(&metrics.histogram("admission.queue_delay_us",
                                         obs::default_latency_buckets_us())) {
  bound_gauge_->set(static_cast<double>(max_queue_delay_));
}

Duration AdmissionController::drain_locked(TimePoint now) {
  if (now > last_drain_) {
    backlog_us_ = std::max(
        0.0, backlog_us_ - static_cast<double>(now - last_drain_) *
                               config_.drain_rate);
    last_drain_ = now;
  }
  backlog_gauge_->set(backlog_us_);
  const double rate = config_.drain_rate > 0 ? config_.drain_rate : 1.0;
  return static_cast<Duration>(backlog_us_ / rate);
}

Result<void> AdmissionController::shed_locked(CallClass cls, const char* why,
                                              Duration delay) {
  shed_->inc();
  if (cls == CallClass::control) shed_control_->inc();
  return Error{Errc::overloaded, std::string(why) + " (queue delay " +
                                     std::to_string(delay) + "us, bound " +
                                     std::to_string(max_queue_delay_) + "us)"};
}

Result<void> AdmissionController::admit(CallClass cls, TimePoint now,
                                        Duration cost) {
  std::lock_guard lock(mutex_);
  const Duration delay = drain_locked(now);
  if (cost <= 0)
    cost = cls == CallClass::control ? config_.control_cost
                                     : config_.default_app_cost;
  if (!config_.enabled) {
    admitted_->inc();
    if (cls == CallClass::control) admitted_control_->inc();
    return ok_result();
  }

  queue_delay_us_->observe(static_cast<std::uint64_t>(delay));

  // Hard bound: control traffic gets headroom above the application bound,
  // so it is never shed before application calls are.
  const auto control_bound = static_cast<Duration>(
      static_cast<double>(max_queue_delay_) * (1.0 + config_.control_headroom));
  const Duration bound =
      cls == CallClass::control ? control_bound : max_queue_delay_;
  if (delay > bound) {
    shed_capacity_->inc();
    return shed_locked(cls, "admission queue full", delay);
  }

  // CoDel: sustained delay above target for a full interval starts shedding
  // application calls at increasing frequency until the queue drains.
  if (delay >= config_.codel_target) {
    if (first_above_ == 0) first_above_ = now + config_.codel_interval;
    if (cls == CallClass::application && now >= first_above_) {
      if (!dropping_) {
        dropping_ = true;
        drop_count_ = 0;
        drop_next_ = now;
      }
      if (now >= drop_next_) {
        ++drop_count_;
        drop_next_ =
            now + static_cast<Duration>(
                      static_cast<double>(config_.codel_interval) /
                      std::sqrt(static_cast<double>(drop_count_)));
        shed_codel_->inc();
        return shed_locked(cls, "codel shed", delay);
      }
    }
  } else {
    first_above_ = 0;
    dropping_ = false;
    drop_count_ = 0;
  }

  backlog_us_ += static_cast<double>(cost);
  backlog_gauge_->set(backlog_us_);
  admitted_->inc();
  if (cls == CallClass::control) admitted_control_->inc();
  return ok_result();
}

Duration AdmissionController::queue_delay(TimePoint now) {
  std::lock_guard lock(mutex_);
  return drain_locked(now);
}

bool AdmissionController::under_pressure(TimePoint now) {
  std::lock_guard lock(mutex_);
  if (!config_.enabled) return false;
  return drain_locked(now) >= config_.codel_target;
}

std::uint32_t AdmissionController::credit_window(TimePoint now) {
  std::lock_guard lock(mutex_);
  if (!config_.enabled) return 0;
  const Duration delay = drain_locked(now);
  if (delay < config_.codel_target) return 0;  // unpressured: no hint
  // Shrink the advertised window as the delay approaches the hard bound:
  // full at target, 1 at (or beyond) the bound.
  const double span = static_cast<double>(
      std::max<Duration>(1, max_queue_delay_ - config_.codel_target));
  const double frac =
      1.0 - static_cast<double>(delay - config_.codel_target) / span;
  const auto window = static_cast<std::uint32_t>(
      static_cast<double>(config_.credit_full_window) *
      std::clamp(frac, 0.0, 1.0));
  return std::max<std::uint32_t>(1, window);
}

void AdmissionController::tighten(double factor) {
  std::lock_guard lock(mutex_);
  const auto scaled =
      static_cast<Duration>(static_cast<double>(max_queue_delay_) * factor);
  max_queue_delay_ = std::clamp(scaled, config_.min_queue_delay,
                                config_.max_queue_delay);
  bound_gauge_->set(static_cast<double>(max_queue_delay_));
}

Duration AdmissionController::max_queue_delay() const {
  std::lock_guard lock(mutex_);
  return max_queue_delay_;
}

void AdmissionController::record_service_time(const std::string& op_key,
                                              std::uint64_t service_us) {
  std::lock_guard lock(mutex_);
  OpCost& c = op_costs_[op_key];
  if (c.samples == 0)
    c.ewma_us = static_cast<double>(service_us);
  else
    c.ewma_us += config_.learned_cost_alpha *
                 (static_cast<double>(service_us) - c.ewma_us);
  ++c.samples;
}

Duration AdmissionController::learned_cost(const std::string& op_key) const {
  std::lock_guard lock(mutex_);
  auto it = op_costs_.find(op_key);
  if (it == op_costs_.end() ||
      it->second.samples < config_.learned_cost_min_samples)
    return 0;  // not warmed: caller falls back to the static default
  return static_cast<Duration>(it->second.ewma_us);
}

std::size_t AdmissionController::learned_op_count() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [_, c] : op_costs_)
    if (c.samples >= config_.learned_cost_min_samples) ++n;
  return n;
}

void AdmissionController::set_enabled(bool enabled) {
  std::lock_guard lock(mutex_);
  config_.enabled = enabled;
}

bool AdmissionController::enabled() const {
  std::lock_guard lock(mutex_);
  return config_.enabled;
}

void AdmissionController::configure(AdmissionConfig config) {
  std::lock_guard lock(mutex_);
  config_ = config;
  max_queue_delay_ = config.max_queue_delay;
  op_costs_.clear();
  backlog_us_ = 0;
  first_above_ = 0;
  dropping_ = false;
  drop_count_ = 0;
  drop_next_ = 0;
  bound_gauge_->set(static_cast<double>(max_queue_delay_));
}

AdmissionConfig AdmissionController::config() const {
  std::lock_guard lock(mutex_);
  return config_;
}

}  // namespace clc::core
