// The Node service: the logical internal node structure of Fig. 1.
//
// Each participating host runs one Node, which owns:
//   - an Orb (object adapter + dynamic invocation) and its endpoint,
//   - the Component Repository (installed packages) and its external view,
//     the Component Registry,
//   - the Resource Manager (static profile + dynamic load + QoS admission),
//   - the Component Acceptor (accept packages at run time),
//   - a Container for its instances,
//   - the Network Cohesion endpoint (CohesionNode), whose messages travel
//     as oneway ORB invocations between Node services,
//   - an event channel hub.
//
// Node::resolve implements the §2.4.3 flow end to end: local repository →
// distributed query → rank candidates → decide "fetch the component and run
// it locally" vs "use it remotely" → bind.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/cohesion.hpp"
#include "core/container.hpp"
#include "core/failover.hpp"
#include "dir/directory.hpp"
#include "fault/faulty_transport.hpp"
#include "fault/plan.hpp"
#include "core/events.hpp"
#include "core/registry.hpp"
#include "core/zone.hpp"
#include "core/repository.hpp"
#include "core/resource.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orb/orb.hpp"
#include "orb/transport.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace clc::session {
class Session;
}  // namespace clc::session

namespace clc::core {

class LocalNetwork;

/// How resolve() binds a dependency.
enum class Binding {
  auto_decide,  // fetch locally when the component is bandwidth-sensitive
                // and mobile; use remotely otherwise
  remote,       // always bind to a remote instance
  fetch_local,  // always fetch, install and instantiate locally
};

/// A resolved component dependency.
struct BoundComponent {
  orb::ObjectRef primary;     // the component's primary provided port
  NodeId host;                // where the instance runs
  std::string instance_token; // instance id on the hosting node
  bool fetched = false;       // true if the package moved to this node
};

class Node {
 public:
  Node(NodeId id, NodeProfile profile, LocalNetwork& network,
       CohesionConfig cohesion_config = {},
       FailoverConfig failover_config = {});
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // ------------------------------------------------------------ identity
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return orb_->endpoint();
  }
  [[nodiscard]] orb::Orb& orb() noexcept { return *orb_; }
  [[nodiscard]] ComponentRepository& repository() noexcept {
    return repository_;
  }
  [[nodiscard]] ComponentRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] ResourceManager& resources() noexcept { return resources_; }
  [[nodiscard]] Container& container() noexcept { return container_; }
  [[nodiscard]] EventChannelHub& events() noexcept { return events_; }
  [[nodiscard]] CohesionNode& cohesion() noexcept { return cohesion_; }
  /// Zone routing layer; present only in zoned deployments (nonzero
  /// CohesionConfig.zone), null otherwise.
  [[nodiscard]] ZoneRouter* zone_router() noexcept { return zone_router_.get(); }
  /// The node's unified metrics registry ("orb.*", "cohesion.*", ...).
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }
  /// Per-node admission controller gating every dispatched request
  /// (disabled by default; overload tiers enable and configure it).
  [[nodiscard]] AdmissionController& admission() noexcept {
    return admission_;
  }

  // ------------------------------------------------------------ lifecycle
  /// Found a new logical network (first node).
  void start_network(TimePoint now);
  /// Join via any existing node.
  void join(NodeId bootstrap, TimePoint now);
  /// Drive protocol timers; LocalNetwork::advance calls this.
  void tick(TimePoint now);

  // ------------------------------------------------------ crash fault model
  /// This node's incarnation: 1 at first boot, +1 per restart. Carried in
  /// cohesion messages, registry digests and minted object references.
  [[nodiscard]] std::uint64_t incarnation() const noexcept {
    return incarnation_;
  }
  /// Checkpoints this node holds on behalf of peers.
  [[nodiscard]] const CheckpointStore& held_checkpoints() const noexcept {
    return held_checkpoints_;
  }
  /// Deterministic, append-only record of this node's recovery actions
  /// (checkpoints shipped, instances restored, restarts); chaos tests
  /// compare it across same-seed runs.
  [[nodiscard]] const std::vector<std::string>& recovery_log() const noexcept {
    return recovery_log_;
  }
  [[nodiscard]] const FailoverConfig& failover_config() const noexcept {
    return failover_;
  }
  /// Force an immediate checkpoint round (tests/benches).
  void checkpoint_now() { run_checkpoints(); }

  // ------------------------------------------------------------- directory
  /// This node's directory replica table (every node keeps one; the R
  /// lowest-id live nodes are the well-known lookup points).
  [[nodiscard]] dir::ServiceDirectory& directory() noexcept {
    return directory_;
  }
  /// Reference to a peer's Directory servant (well-known key, like the
  /// NodeService); sessions use these as their replica set.
  Result<orb::ObjectRef> directory_ref(NodeId replica) const;
  /// The R lowest-id live nodes (including this one), same election as
  /// checkpoint holders -- every node derives the same set.
  [[nodiscard]] std::vector<NodeId> directory_replicas() const;
  /// Publish `service -> ref` (hosted here, current incarnation + epoch)
  /// to the local table and every directory replica. Lifecycle transitions
  /// (install, migrate, failover win, retirement) call this themselves.
  void publish_service(const std::string& service, const orb::ObjectRef& ref);
  /// Force an immediate anti-entropy exchange with one replica
  /// (tests/benches; tick() drives this on the anti-entropy cadence).
  void gossip_directory_now() { gossip_directory(); }

  /// Attach a client session: Node::resolve short-circuits through its
  /// notification-maintained cache before falling back to a distributed
  /// query (`node.query_cache_hits`). The session must outlive the
  /// attachment; pass nullptr to detach.
  void attach_session(session::Session* session) noexcept {
    session_ = session;
  }

  // ------------------------------------------------------------ acceptor
  /// Component Acceptor: install a package at run time (requirement 5).
  Result<void> install(const Bytes& package_bytes);

  // ------------------------------------------------------------ resolution
  /// Resolve a component network-wide and bind to an instance of it.
  Result<BoundComponent> resolve(const std::string& component,
                                 const VersionConstraint& constraint,
                                 Binding binding = Binding::auto_decide);

  /// Raw distributed query (no binding); synchronous over the network.
  Result<std::vector<QueryHit>> query_network(const ComponentQuery& q);

  /// Same, with the degraded-coverage marker: during a partition the
  /// reachable side answers with partial hits tagged `degraded` instead of
  /// erroring (minority-side availability, DESIGN.md §13).
  Result<QueryResult> query_network_detailed(const ComponentQuery& q);

  /// Resolve `pattern` through the zone-sharded registry (zoned
  /// deployments only): exact names take the locality-aware shard route,
  /// globs fan out through the super root. Drives the network until the
  /// answer (or its timeout) arrives.
  Result<ZoneResolveResult> resolve_zone(const std::string& pattern);

  /// Fetch a package from a peer's repository into ours.
  Result<void> fetch_component(NodeId from, const std::string& component,
                               const Version& version);

  // ------------------------------------------------------------ instances
  /// Get-or-create a local instance and return its primary port.
  Result<BoundComponent> acquire_local(const std::string& component,
                                       const VersionConstraint& constraint);

  /// Move a running instance to another node: capture state, ship the
  /// package if needed, restore remotely, destroy locally. Returns the new
  /// binding on the target node.
  Result<BoundComponent> migrate_instance(InstanceId id, NodeId target);

  /// Replicate a running instance onto another node (§2.1.1 replication):
  /// same mechanics as migration but the original keeps running. Only
  /// components declared `replicable` may be replicated; stateful replicas
  /// start from a snapshot of the original's state.
  Result<BoundComponent> replicate_instance(InstanceId id, NodeId target);

  /// Connect a used port of a bound instance (local or remote) to a target
  /// object -- the assembly-wiring primitive Application::deploy uses.
  Result<void> connect_remote(const BoundComponent& from,
                              const std::string& port,
                              const orb::ObjectRef& target);

  /// A named provided port of a bound instance (local or remote).
  Result<orb::ObjectRef> instance_port(const BoundComponent& of,
                                       const std::string& port);

  /// Subscribe a consumer to an event type on a remote node's hub.
  Result<void> subscribe_on(NodeId peer, const std::string& event_type,
                            const orb::ObjectRef& consumer);

  /// Ask a peer to run one aggregation chunk of a component (grid mode).
  Result<Bytes> process_chunk_on(NodeId peer, const std::string& component,
                                 const VersionConstraint& constraint,
                                 BytesView chunk);

 private:
  friend class LocalNetwork;

  /// Crash: snapshot the "disk" (installed packages), then lose every bit
  /// of RAM state -- instances, registry records, held checkpoints,
  /// membership. LocalNetwork::crash calls this before detaching the
  /// endpoint.
  void crash_local();
  /// Restart after a crash: bump the incarnation, register a *fresh*
  /// endpoint (stale refs now fail retryably), re-install packages from
  /// the disk image and re-join through `bootstrap`.
  void restart_local(NodeId bootstrap, TimePoint now);

  /// Checkpoint every checkpointable instance to the R lowest-id peers.
  void run_checkpoints();
  /// Cohesion-confirmed death of `dead`: restore the checkpoints we hold
  /// for it if we win the deterministic holder election.
  void on_peer_dead(NodeId dead, std::uint64_t dead_incarnation,
                    const std::vector<NodeId>& alive);
  /// A gossiped failover claim names one of this node's own live instances:
  /// a holder restored it behind a partition. Resolve the dual primary
  /// deterministically on (epoch, incarnation, host id); the loser here is
  /// this node's original, which is destroyed and its ports retired.
  void on_failover_claim(const FailoverClaim& claim);
  /// A tombstoned peer turned out alive at the *same* incarnation (false
  /// death verdict): any restored copy of its instances hosted here whose
  /// claim lost the comparison dies now; a winning claim keeps the copy and
  /// the origin yields via on_failover_claim instead.
  void on_peer_revived(NodeId origin, std::uint64_t origin_inc);
  /// Destroy a local instance and retire its provided-port object keys, so
  /// references to the losing primary fail with retryable Errc::unreachable
  /// and clients re-resolve to the surviving one.
  void retire_instance(InstanceId id, const std::string& why);
  /// Epoch under which the instance's authority was established (creation
  /// or restore time); deliberately never advanced afterwards, so post-heal
  /// claim comparisons are immune to checkpoint-timing races.
  [[nodiscard]] std::uint64_t instance_epoch(InstanceId id) const;

  void install_node_idl();
  void make_node_servant();
  /// Register the directory IDL + servant and hook change notification
  /// delivery to oneway `notify` sends.
  void install_directory();
  /// Apply a record locally, then push it to every live replica.
  void publish_record(const dir::ServiceRecord& record);
  /// One anti-entropy round: trade whole tables with one replica
  /// (round-robin over the replica set, skipping self).
  void gossip_directory();
  Result<BoundComponent> resolve_impl(const std::string& component,
                                      const VersionConstraint& constraint,
                                      Binding binding);
  Result<QueryResult> query_network_impl(const ComponentQuery& q);
  Result<BoundComponent> migrate_instance_impl(InstanceId id, NodeId target);
  Result<orb::ObjectRef> node_service_ref(NodeId peer) const;
  /// The primary provided port of an instance (first provides-port in the
  /// description, by convention the component's main facet).
  Result<orb::ObjectRef> primary_port(InstanceId id) const;
  Result<std::string> remote_idl(NodeId peer, const std::string& component,
                                 const Version& version);

  NodeId id_;
  LocalNetwork& network_;
  obs::MetricsRegistry metrics_;  // before orb_/cohesion_: they cache into it
  obs::Tracer tracer_;
  // Before orb_: the orb's admission gate adapter points at it, and the orb
  // (destroyed first) must not outlive the controller.
  AdmissionController admission_;
  std::shared_ptr<idl::InterfaceRepository> types_;
  std::unique_ptr<orb::Orb> orb_;
  ResourceManager resources_;
  ComponentRepository repository_;
  ComponentRegistry registry_;
  EventChannelHub events_;
  Container container_;
  CohesionNode cohesion_;
  std::unique_ptr<ZoneRouter> zone_router_;  // zoned deployments only
  orb::ObjectRef node_service_;

  // Crash fault tolerance state.
  FailoverConfig failover_;
  std::uint64_t incarnation_ = 1;
  TimePoint last_checkpoint_ = 0;
  std::map<InstanceId, std::uint64_t> checkpoint_seq_;
  /// (holder, component@version) pairs whose package bytes already went out
  /// -- later checkpoints to that holder ship state only.
  std::set<std::pair<std::uint64_t, std::string>> package_shipped_;
  CheckpointStore held_checkpoints_;
  /// A peer instance restored here after a death verdict; kept so a healed
  /// partition can revoke the copy if its claim loses the dual-primary
  /// comparison. `local.value == 0` marks a failed restore (still recorded,
  /// so a re-broadcast verdict can't retry into a duplicate).
  struct RestoredCopy {
    NodeId origin;
    std::uint64_t origin_inc = 1;
    std::uint64_t instance = 0;  // InstanceId.value on the origin
    InstanceId local;            // the copy running on this node
  };
  /// Keyed "origin:incarnation:instance" (the death-verdict dedupe key).
  std::map<std::string, RestoredCopy> restored_;
  /// See instance_epoch(); absent entries read as epoch 1.
  std::map<InstanceId, std::uint64_t> instance_epochs_;
  std::vector<std::string> recovery_log_;
  std::vector<Bytes> disk_image_;  // packages, snapshotted at crash time
  Rng retry_rng_;                  // backoff jitter for distributed queries

  // Replicated service directory state.
  dir::ServiceDirectory directory_;
  session::Session* session_ = nullptr;   // attached client session, if any
  TimePoint last_dir_gossip_ = 0;
  std::size_t dir_gossip_rotor_ = 0;      // round-robin over the replicas
};

/// The in-process world: a set of Nodes over one loopback transport, a
/// shared manual clock, and the NodeId -> endpoint directory (the naming-
/// service analogue; see DESIGN.md). Drives ticks deterministically.
class LocalNetwork {
 public:
  explicit LocalNetwork(CohesionConfig cohesion_defaults = {},
                        FailoverConfig failover_defaults = {});

  /// Create a node; the first created node founds the logical network and
  /// later ones join through it automatically (pass `auto_join = false` to
  /// manage joining manually).
  Node& add_node(NodeProfile profile = {}, bool auto_join = true);
  /// Same, with a per-node cohesion config override (multi-zone tests:
  /// nodes of different zones run separate trees, so no auto-join).
  Node& add_node(NodeProfile profile, CohesionConfig cohesion_config,
                 bool auto_join = false);

  /// Advance the shared clock, ticking every node each `step`.
  void advance(Duration duration, Duration step = milliseconds(500));

  /// Let protocol state converge: advance by several heartbeats.
  void settle();

  [[nodiscard]] TimePoint now() const { return clock_.now(); }
  [[nodiscard]] ManualClock& clock() noexcept { return clock_; }
  [[nodiscard]] orb::LoopbackNetwork& transport() noexcept {
    return *transport_;
  }
  [[nodiscard]] std::shared_ptr<orb::LoopbackNetwork> transport_ptr() {
    return transport_;
  }
  /// The fault-injection decorator every node's client traffic crosses.
  /// Disarmed (pure pass-through) unless a chaos test arms a plan.
  [[nodiscard]] fault::FaultyTransport& faults() noexcept { return *faulty_; }
  [[nodiscard]] std::shared_ptr<fault::FaultyTransport> faulty_transport_ptr() {
    return faulty_;
  }
  /// Shared span sink: every node's tracer records here, so cross-node
  /// traces stitch into one causal tree.
  [[nodiscard]] const std::shared_ptr<obs::TraceCollector>& trace_collector()
      const noexcept {
    return collector_;
  }

  [[nodiscard]] Result<std::string> endpoint_of(NodeId id) const;
  [[nodiscard]] Node* node(NodeId id) const;
  [[nodiscard]] std::vector<Node*> nodes() const;

  /// Simulate a host crash: the node loses all RAM state (instances,
  /// registry, held checkpoints, membership), keeps its "disk" (installed
  /// packages), its endpoint detaches and it stops ticking.
  void crash(NodeId id);

  /// Restart a crashed node: it comes back under a higher incarnation with
  /// a fresh endpoint, re-installs its packages from the disk image and
  /// re-joins through the lowest-id live node. No-op unless crashed.
  void restart(NodeId id);

  [[nodiscard]] bool is_crashed(NodeId id) const {
    return crashed_.count(id) != 0;
  }

  // ------------------------------------------------------------- partitions
  /// Cut one direction of one link: frames from -> to fail retryably
  /// (Errc::unreachable) at the sender; the reverse direction still works,
  /// which is what makes asymmetric partitions expressible.
  void cut_link(NodeId from, NodeId to) { cut_links_.insert({from, to}); }
  void restore_link(NodeId from, NodeId to) { cut_links_.erase({from, to}); }
  /// Cut every link between the two sides, both directions (symmetric split).
  void partition(const std::vector<NodeId>& side_a,
                 const std::vector<NodeId>& side_b);
  /// Restore every cut link (scheduled future events still fire).
  void heal_partition() { cut_links_.clear(); }
  [[nodiscard]] bool link_blocked(NodeId from, NodeId to) const {
    return cut_links_.count({from, to}) != 0;
  }
  /// Is the directed path from `from` to the node owning `endpoint` cut?
  /// Unknown endpoints are never blocked (they fail in the transport).
  [[nodiscard]] bool link_blocked_to(NodeId from,
                                     const std::string& endpoint) const;
  /// Arm a seeded PartitionSchedule: its cuts and heals fire at their
  /// virtual times as advance() crosses them, so a chaos run replays
  /// identically from the seed alone.
  void set_partition_schedule(const fault::PartitionSchedule& schedule);

  [[nodiscard]] const CohesionConfig& cohesion_defaults() const {
    return cohesion_defaults_;
  }
  [[nodiscard]] const FailoverConfig& failover_defaults() const {
    return failover_defaults_;
  }

 private:
  friend class Node;
  void register_node(Node& node, const std::string& endpoint);
  /// Apply every scheduled cut/restore whose virtual time has arrived.
  void apply_due_partition_actions();

  ManualClock clock_;
  std::shared_ptr<orb::LoopbackNetwork> transport_;
  std::shared_ptr<fault::FaultyTransport> faulty_;
  std::shared_ptr<obs::TraceCollector> collector_;
  CohesionConfig cohesion_defaults_;
  FailoverConfig failover_defaults_;
  std::vector<std::unique_ptr<Node>> owned_;
  std::map<NodeId, std::pair<std::string, Node*>> directory_;
  std::set<NodeId> crashed_;
  std::set<fault::LinkCut> cut_links_;          // directed cuts in force
  std::map<std::string, NodeId> endpoint_owner_;  // reverse directory
  /// Scheduled (time, cut?, link) actions, drained by advance(). true
  /// installs the cut, false removes it.
  std::multimap<TimePoint, std::pair<bool, fault::LinkCut>> partition_actions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace clc::core
